#!/bin/sh
# Tier-1 gate. Every change must pass this script before it lands:
# formatting, vet, the documentation bar, a clean build, the full test
# suite, a race-detector pass over the parallel refinement paths, and a
# lint run (the static verification stage) over the examples and the
# benchmark corpus with zero proven violations.
#
# Each step prints its wall-clock cost so regressions in CI time are
# visible in the log.
set -eu

cd "$(dirname "$0")"

step() {
    name=$1
    shift
    echo "== $name"
    start=$(date +%s)
    "$@"
    echo "-- $name: $(($(date +%s) - start))s"
}

check_gofmt() {
    unformatted=$(gofmt -l .)
    if [ -n "$unformatted" ]; then
        echo "gofmt: the following files need formatting:" >&2
        echo "$unformatted" >&2
        exit 1
    fi
}

check_examples() {
    for dir in examples/*/; do
        echo "-- go run ./$dir"
        go run "./$dir" >/dev/null
    done
}

step "gofmt" check_gofmt
step "go vet" go vet ./...
step "doclint" go run ./cmd/doclint ./internal ./cmd
step "go build" go build ./...
step "go test" go test ./...
step "go test -race" go test -race -short ./...
step "wytiwyg lint (benchmark corpus)" sh -c '
    go build -o /tmp/wytiwyg-ci ./cmd/wytiwyg
    /tmp/wytiwyg-ci lint -all'
step "examples" check_examples

# Superblock differential under the race detector: the full corpus compared
# between superblock and per-instruction dispatch, all hook configurations.
# The corpus/random-IR differentials skip under -short, so the blanket
# `go test -race -short` above does not duplicate this step.
step "superblock differential (-race)" \
    go test -race -run 'TestSuperblock|TestStepInterleavesWithRun' -count=1 ./internal/machine/

# Bench smoke: one iteration of every interpreter/emulator micro-benchmark.
# Catches benchmarks that stop compiling or crash. The smoke numbers go to
# a scratch copy, never the committed artifact: 1-iteration timings are
# noise, and the committed BENCH_interp.json holds only full-protocol runs
# (bench.sh). benchjson -check then validates both files' structure so a
# malformed artifact fails CI instead of being published.
check_bench() {
    cp BENCH_interp.json /tmp/wytiwyg-bench-smoke.json
    go test -bench=. -benchtime=1x -run '^$' \
        ./internal/machine/ ./internal/irexec/ |
        go run ./cmd/benchjson -mode smoke -o /tmp/wytiwyg-bench-smoke.json
    go run ./cmd/benchjson -vsa -o /tmp/wytiwyg-bench-smoke.json
    go run ./cmd/benchjson -static -o /tmp/wytiwyg-bench-smoke.json
    go run ./cmd/benchjson -types -o /tmp/wytiwyg-bench-smoke.json
    go run ./cmd/benchjson -check -o /tmp/wytiwyg-bench-smoke.json
    go run ./cmd/benchjson -check -o BENCH_interp.json
    go run ./cmd/benchjson -serve -o /tmp/wytiwyg-bench-serve.json
    go run ./cmd/benchjson -check -o /tmp/wytiwyg-bench-serve.json
    go run ./cmd/benchjson -check -o BENCH_serve.json
}
step "bench smoke" check_bench

# Partial-coverage smoke: static recovery of untraced code end to end.
# examples/coverage (run above) performs the differential check against the
# original binary; this step re-runs the acceptance tests for the admission
# rate, determinism across worker counts, and the cache-key split.
step "partial-coverage smoke" go test -run 'TestStaticRecover' -count=1 ./internal/core/

# Streaming smoke: the streaming trace→lift pipeline on a tiny corpus slice.
# The CLI run checks -stream -j2 end to end (functionality MATCH or the tool
# exits 1) and diffs its default output against the phase-barriered run —
# the byte-identity contract, observed at the user-facing surface. The
# race-detector pass re-runs the scheduling, ordering and backpressure tests
# (kept small: this box has few cores).
check_stream() {
    go build -o /tmp/wytiwyg-ci ./cmd/wytiwyg
    /tmp/wytiwyg-ci -bench mcf -j 2 >/tmp/wytiwyg-ci-barriered.out
    /tmp/wytiwyg-ci -bench mcf -stream -j 2 >/tmp/wytiwyg-ci-streamed.out
    grep -v '^stream:' /tmp/wytiwyg-ci-streamed.out >/tmp/wytiwyg-ci-streamed-cmp.out
    if ! diff /tmp/wytiwyg-ci-barriered.out /tmp/wytiwyg-ci-streamed-cmp.out; then
        echo "streaming smoke: -stream output differs from the barriered run" >&2
        exit 1
    fi
    go test -race -run 'TestStreamOverlap|TestStream(Close|Backpressure|WorkerPanic|Prefix)|TestOrderedPipe' \
        -count=1 ./internal/core/ ./internal/stream/ ./internal/par/
}
step "streaming smoke" check_stream

# Serve smoke: the recompilation daemon end to end. Start a daemon on a
# throwaway unix socket and cache, submit the same binary twice, and check
# (a) the repeat submission is answered warm from the shared cache, and
# (b) both the cold and the warm payloads are byte-identical to the same
# job run in-process (`submit -local`) — the determinism invariant
# observed at the serving surface. Then drain gracefully.
check_serve() {
    go build -o /tmp/wytiwyg-ci ./cmd/wytiwyg
    d=$(mktemp -d /tmp/wytiwyg-ci-serve.XXXXXX)
    sock="unix:$d/d.sock"
    /tmp/wytiwyg-ci serve -addr "$sock" -cache-dir "$d/cache" >"$d/serve.log" 2>&1 &
    pid=$!
    trap 'kill "$pid" 2>/dev/null || true; rm -rf "$d"' EXIT
    i=0
    until /tmp/wytiwyg-ci submit -addr "$sock" -ping >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "serve smoke: daemon never became ready" >&2
            cat "$d/serve.log" >&2
            exit 1
        fi
        sleep 0.1
    done
    /tmp/wytiwyg-ci submit -addr "$sock" -bench mcf -json >"$d/cold.json" 2>"$d/cold.err"
    /tmp/wytiwyg-ci submit -addr "$sock" -bench mcf -json >"$d/warm.json" 2>"$d/warm.err"
    if ! grep -q '^stats: warm' "$d/warm.err"; then
        echo "serve smoke: repeat submission was not served warm" >&2
        cat "$d/warm.err" >&2
        exit 1
    fi
    /tmp/wytiwyg-ci submit -local -bench mcf -json >"$d/local.json" 2>/dev/null
    if ! diff "$d/cold.json" "$d/warm.json" || ! diff "$d/cold.json" "$d/local.json"; then
        echo "serve smoke: daemon payload differs between cold/warm/local runs" >&2
        exit 1
    fi
    /tmp/wytiwyg-ci submit -addr "$sock" -shutdown >/dev/null
    i=0
    while kill -0 "$pid" 2>/dev/null; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "serve smoke: daemon did not exit after shutdown" >&2
            exit 1
        fi
        sleep 0.1
    done
    trap - EXIT
    rm -rf "$d"
}
step "serve smoke" check_serve

echo "ci: all checks passed"
