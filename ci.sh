#!/bin/sh
# Tier-1 gate. Every change must pass this script before it lands:
# formatting, vet, a clean build, the full test suite, and a lint run
# (the static verification stage) over the examples and the benchmark
# corpus with zero proven violations.
set -eu

cd "$(dirname "$0")"

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== wytiwyg lint (benchmark corpus)"
go build -o /tmp/wytiwyg-ci ./cmd/wytiwyg
/tmp/wytiwyg-ci lint -all

echo "== examples"
for dir in examples/*/; do
    echo "-- go run ./$dir"
    go run "./$dir" >/dev/null
done

echo "ci: all checks passed"
