// Partial-coverage recovery: the hybrid static+dynamic story. A binary is
// traced on ONE input that exercises a single operation of a function-pointer
// dispatch table; the other operations never execute and would normally
// recompile to trap stubs. With static recovery enabled, the cold operations
// are disassembled from the image, lifted, and admitted when value-set
// analysis proves their frames safe — so inputs the trace never saw now run
// correctly. One operation deliberately leaks the address of a local; its
// layout cannot be verified, so it stays behind a trap stub (the fallback
// ladder: traced, then static-verified, then trap).
package main

import (
	"fmt"
	"log"

	"wytiwyg/internal/codegen"
	"wytiwyg/internal/core"
	"wytiwyg/internal/machine"
	"wytiwyg/internal/minicc/gen"
	"wytiwyg/internal/opt"
)

const src = `
extern int input_int(int i);
extern int printf(char *fmt, ...);

int op_add(int a, int b) { return a + b; }

int op_mul(int a, int b) { return a * b; }

int op_tab(int a, int b) {
	int t[4];
	t[0] = a; t[1] = b; t[2] = a + b; t[3] = a - b;
	return t[0] + t[1] + t[2] + t[3];
}

int *leak;
int op_leak(int a, int b) {
	int x;
	x = a + b;
	leak = &x;          /* the local's address escapes: unverifiable */
	return *leak + b;
}

int apply(fnptr f, int a, int b) { return f(a, b); }

fnptr ops[4];

int main() {
	int op, a, b, r;
	ops[0] = &op_add;
	ops[1] = &op_mul;
	ops[2] = &op_tab;
	ops[3] = &op_leak;
	op = input_int(0);
	a = input_int(1);
	b = input_int(2);
	r = apply(ops[op & 3], a, b);
	printf("r=%d\n", r);
	return r & 63;
}
`

// build compiles the source, lifts it from traces over traceInputs, and
// recompiles; static cold-code recovery is optional.
func build(traceInputs []machine.Input, static bool) *core.Pipeline {
	img, err := gen.Build(src, gen.GCC12O3, "coverage")
	if err != nil {
		log.Fatal(err)
	}
	p, err := core.LiftBinaryOpts(img, traceInputs, core.Options{StaticRecover: static})
	if err != nil {
		log.Fatal(err)
	}
	if err := p.Refine(); err != nil {
		log.Fatal(err)
	}
	return p
}

type writer struct{ s string }

func (w *writer) Write(p []byte) (int, error) { w.s += string(p); return len(p), nil }

func main() {
	traceInput := machine.Input{Ints: []int32{0, 5, 7}} // op_add only
	coldInputs := []machine.Input{
		{Ints: []int32{1, 5, 7}}, // op_mul: statically recoverable
		{Ints: []int32{2, 5, 7}}, // op_tab: bounded local array, recoverable
		{Ints: []int32{3, 9, 4}}, // op_leak: escaping local, must stay a trap
	}

	img, err := gen.Build(src, gen.GCC12O3, "coverage")
	if err != nil {
		log.Fatal(err)
	}

	for _, static := range []bool{false, true} {
		mode := "dynamic only"
		if static {
			mode = "with -static-recover"
		}
		fmt.Printf("== trace {op=0} %s ==\n", mode)
		p := build([]machine.Input{traceInput}, static)
		if static {
			admitted := 0
			for _, st := range p.ColdStats {
				verdict := "degraded: " + st.Reason
				if st.Admitted {
					verdict = "admitted"
					admitted++
				}
				fmt.Printf("  %-8s %s\n", st.Func, verdict)
			}
			fmt.Printf("  %d/%d cold candidates admitted\n", admitted, len(p.ColdStats))
		}
		opt.Pipeline(p.Mod)
		out, err := codegen.Compile(p.Mod, "coverage-rec")
		if err != nil {
			log.Fatal(err)
		}

		trapped := 0
		for _, in := range coldInputs {
			w := &writer{}
			res, err := machine.Execute(out, in, w)
			if err != nil {
				log.Fatal(err)
			}
			nw := &writer{}
			nat, err := machine.Execute(img, in, nw)
			if err != nil {
				log.Fatal(err)
			}
			if len(res.StubHits) > 0 {
				trapped++
				fmt.Printf("  op=%d: trap stub (exit=%d) %v\n", in.Ints[0], res.ExitCode, res.StubHits)
				continue
			}
			if res.ExitCode != nat.ExitCode || w.s != nw.s {
				log.Fatalf("recovered run diverged on op=%d: exit=%d vs %d, %q vs %q",
					in.Ints[0], res.ExitCode, nat.ExitCode, w.s, nw.s)
			}
			fmt.Printf("  op=%d: exit=%d output=%q  MATCH\n", in.Ints[0], res.ExitCode, w.s)
		}
		fmt.Printf("  stub-hit rate: %d/%d untraced input(s)\n\n", trapped, len(coldInputs))
	}
	fmt.Println("Static recovery lifted the provably safe cold operations;")
	fmt.Println("the unverifiable one kept its trap. No unsound admissions.")
}
