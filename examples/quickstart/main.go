// Quickstart: lift, symbolize and recompile a small binary, then verify the
// recovered binary behaves identically and inspect the recovered stack
// layout. This walks the whole WYTIWYG pipeline (Figure 4 of the paper) on
// a program tiny enough to read.
package main

import (
	"bytes"
	"fmt"
	"log"

	"wytiwyg/internal/codegen"
	"wytiwyg/internal/core"
	"wytiwyg/internal/machine"
	"wytiwyg/internal/minicc/gen"
	"wytiwyg/internal/opt"
	"wytiwyg/internal/symbolize"
)

const src = `
extern int printf(char *fmt, ...);

int sum(int *v, int n) {
	int i, s = 0;
	for (i = 0; i < n; i++) s += v[i];
	return s;
}

int main() {
	int data[10];
	int i;
	for (i = 0; i < 10; i++) data[i] = i * i;
	printf("sum=%d\n", sum(data, 10));
	return 0;
}
`

func main() {
	// 1. The "COTS input binary": compiled at -O3 by the gcc12 profile.
	img, err := gen.Build(src, gen.GCC12O3, "quickstart")
	if err != nil {
		log.Fatal(err)
	}
	var nativeOut bytes.Buffer
	native, err := machine.Execute(img, machine.Input{}, &nativeOut)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("input binary: %d instructions, %d cycles, prints %q\n",
		len(img.Code), native.Cycles, nativeOut.String())

	// 2. Trace and lift. In a real deployment the binary would be stripped;
	// the pipeline only uses the symbol table for diagnostics.
	p, err := core.LiftBinary(img, []machine.Input{{}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lifted: %d functions recovered from the trace\n", len(p.Rec.Funcs))

	// 3. Refinement lifting: saved registers, variadic calls, stack
	// references, and finally full stack symbolization.
	if err := p.Refine(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("refined: the emulated stack is gone; signatures are explicit:")
	for _, f := range p.Mod.Funcs {
		fmt.Printf("  %s: %d parameters (%d recovered from the stack)\n",
			f.Name, len(f.Params), f.StackArgs)
	}

	// 4. Optimize and inspect what symbolization unlocked.
	opt.Pipeline(p.Mod)
	rec := symbolize.RecoveredLayout(p.Mod)
	fmt.Println("recovered stack objects (after optimization):")
	for _, name := range rec.FuncNames() {
		if fr := rec.Frame(name); len(fr.Vars) > 0 {
			fmt.Printf("  %s\n", fr)
		}
	}

	// 5. Recompile and compare.
	out, err := codegen.Compile(p.Mod, "recovered")
	if err != nil {
		log.Fatal(err)
	}
	var recOut bytes.Buffer
	res, err := machine.Execute(out, machine.Input{}, &recOut)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered binary: %d instructions, %d cycles, prints %q\n",
		len(out.Code), res.Cycles, recOut.String())
	if recOut.String() == nativeOut.String() && res.ExitCode == native.ExitCode {
		fmt.Printf("functionality preserved; normalized runtime %.2f\n",
			float64(res.Cycles)/float64(native.Cycles))
	} else {
		log.Fatal("behaviour mismatch!")
	}
}
