// Accuracy: compare the dynamically recovered stack layout against the
// compiler's ground truth for one program, in the style of the paper's §6.3
// and Figure 7. Each ground-truth object is classified as matched,
// oversized, undersized or missed; the paper's deliberate
// partial-coverage property ("if f3 returns 0 in every invocation across
// all traces, the array will be split") is demonstrated directly.
package main

import (
	"fmt"
	"log"

	"wytiwyg/internal/core"
	"wytiwyg/internal/layout"
	"wytiwyg/internal/machine"
	"wytiwyg/internal/minicc/gen"
	"wytiwyg/internal/opt"
	"wytiwyg/internal/symbolize"
)

// The paper's Figure 2 program. f3's return value decides which element of
// b the struct assignment touches — and therefore how much of b the dynamic
// analysis can connect into one object.
const srcTemplate = `
struct p { int x; int y; };
int f3(int n) { return n / %d; }
struct p *f2(struct p *a, struct p *b) { return a; }
int f1() {
	struct p *ptr; struct p a; struct p b[3];
	a.x = 3; a.y = 4;
	ptr = f2(&a, b);
	b[f3(sizeof(b))] = a;
	ptr->y = b[1].x;
	return ptr->y * 100 + b[2].x * 10 + b[2].y;
}
int main() { return f1(); }`

func analyze(divisor int) (*layout.Frame, *layout.Frame, layout.Accuracy) {
	src := fmt.Sprintf(srcTemplate, divisor)
	img, err := gen.Build(src, gen.GCC12O0, "fig2")
	if err != nil {
		log.Fatal(err)
	}
	p, err := core.LiftBinary(img, []machine.Input{{}})
	if err != nil {
		log.Fatal(err)
	}
	if err := p.Refine(); err != nil {
		log.Fatal(err)
	}
	opt.Pipeline(p.Mod)
	rec := symbolize.RecoveredLayout(p.Mod).Frame("f1")
	truth := img.Truth.Frame("f1")
	return truth, rec, layout.CompareFrame(truth, rec)
}

func show(title string, truth, rec *layout.Frame, acc layout.Accuracy) {
	fmt.Println(title)
	fmt.Printf("  ground truth: %s\n", truth)
	fmt.Printf("  recovered:    %s\n", rec)
	fmt.Printf("  matched=%d oversized=%d undersized=%d missed=%d  precision=%.0f%% recall=%.0f%%\n\n",
		acc.Counts[layout.Matched], acc.Counts[layout.Oversized],
		acc.Counts[layout.Undersized], acc.Counts[layout.Missed],
		acc.Precision()*100, acc.Recall()*100)
}

func main() {
	// sizeof(b) = 24; divisor 12 makes f3 return 2, so the traced store
	// lands in b[2] and links the whole array into one object.
	t1, r1, a1 := analyze(12)
	show("f3 returns 2 (access to the third element observed):", t1, r1, a1)

	// Divisor 100 makes f3 return 0 on every traced input: the analysis
	// has no evidence that b[0] and b[1] belong together, so b splits —
	// exactly the behaviour §4.2 describes. The recompiled program still
	// behaves correctly for every traced input.
	t2, r2, a2 := analyze(100)
	show("f3 returns 0 in every trace (the paper's splitting case):", t2, r2, a2)
}
