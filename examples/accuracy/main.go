// Accuracy: compare the dynamically recovered stack layout against the
// compiler's ground truth for one program, in the style of the paper's §6.3
// and Figure 7. Each ground-truth object is classified as matched,
// oversized, undersized or missed; the paper's deliberate
// partial-coverage property ("if f3 returns 0 in every invocation across
// all traces, the array will be split") is demonstrated directly, along
// with the value-set-analysis backstop that widens the layout until no
// statically possible access can cross an object boundary — restoring
// coverage (recall) where the traces were incomplete, at precision cost.
package main

import (
	"fmt"
	"log"

	"wytiwyg/internal/bench"
	"wytiwyg/internal/bench/progs"
	"wytiwyg/internal/core"
	"wytiwyg/internal/layout"
	"wytiwyg/internal/machine"
	"wytiwyg/internal/minicc/gen"
	"wytiwyg/internal/opt"
	"wytiwyg/internal/symbolize"
	"wytiwyg/internal/vsa"
)

// The paper's Figure 2 program. f3's return value decides which element of
// b the struct assignment touches — and therefore how much of b the dynamic
// analysis can connect into one object.
const srcTemplate = `
struct p { int x; int y; };
int f3(int n) { return n / %d; }
struct p *f2(struct p *a, struct p *b) { return a; }
int f1() {
	struct p *ptr; struct p a; struct p b[3];
	a.x = 3; a.y = 4;
	ptr = f2(&a, b);
	b[f3(sizeof(b))] = a;
	ptr->y = b[1].x;
	return ptr->y * 100 + b[2].x * 10 + b[2].y;
}
int main() { return f1(); }`

// result is one configuration's layouts: the dynamic recovery and the
// VSA-widened backstop, both against the same ground truth.
type result struct {
	truth, rec, back *layout.Frame
}

func analyze(divisor int) result {
	src := fmt.Sprintf(srcTemplate, divisor)
	img, err := gen.Build(src, gen.GCC12O0, "fig2")
	if err != nil {
		log.Fatal(err)
	}
	p, err := core.LiftBinary(img, []machine.Input{{}})
	if err != nil {
		log.Fatal(err)
	}
	if err := p.Refine(); err != nil {
		log.Fatal(err)
	}
	// The backstop widens the refined (pre-optimization) layout: the
	// optimizer folds never-traced accesses away, and it is exactly those
	// the static analysis must account for.
	back, _ := vsa.Backstop(vsa.Analyze(p.Mod.FuncByName("f1")),
		symbolize.RecoveredLayout(p.Mod).Frame("f1"))
	opt.Pipeline(p.Mod)
	rec := symbolize.RecoveredLayout(p.Mod).Frame("f1")
	return result{truth: img.Truth.Frame("f1"), rec: rec, back: back}
}

func show(title string, r result) {
	fmt.Println(title)
	fmt.Printf("  ground truth:  %s\n", r.truth)
	line := func(label string, rec *layout.Frame) {
		acc := layout.CompareFrame(r.truth, rec)
		fmt.Printf("  %s %s\n", label, rec)
		fmt.Printf("    matched=%d oversized=%d undersized=%d missed=%d  precision=%.0f%% recall=%.0f%%\n",
			acc.Counts[layout.Matched], acc.Counts[layout.Oversized],
			acc.Counts[layout.Undersized], acc.Counts[layout.Missed],
			acc.Precision()*100, acc.Recall()*100)
	}
	line("recovered:    ", r.rec)
	line("vsa backstop: ", r.back)
	fmt.Println()
}

// typedCorpus is the second accuracy table: the type-recovery stage's
// claims over the whole benchmark corpus, scored per program against
// minicc's declared slot types (the same data `wytiwyg -emit-types`
// writes as the ground-truth sidecar). Claims are only counted on slots
// whose byte range the layout recovery already got exactly right, so
// the score isolates the *type* question on top of Figure 7's
// positional one.
func typedCorpus() {
	fmt.Println("typed slots over the benchmark corpus (vs -emit-types ground truth):")
	var total layout.TypeAccuracy
	for _, prog := range progs.All {
		p := bench.Scaled(prog, 6)
		img, err := gen.Build(p.Src, gen.GCC12O3, p.Name)
		if err != nil {
			log.Fatal(err)
		}
		pl, err := core.LiftBinaryOpts(img, p.Inputs(),
			core.Options{Lint: core.LintWarn, Types: true})
		if err != nil {
			log.Fatal(err)
		}
		if err := pl.Refine(); err != nil {
			log.Fatal(err)
		}
		acc := layout.CompareTyped(img.TypedTruth, pl.Typed)
		total.Add(acc)
		fmt.Printf("  %-12s claims=%2d truth=%2d  precision=%.3f recall=%.3f\n",
			p.Name, acc.Claims, acc.TruthSlots, acc.Precision(), acc.Recall())
	}
	fmt.Printf("  %-12s claims=%2d truth=%2d  precision=%.3f recall=%.3f\n",
		"corpus", total.Claims, total.TruthSlots, total.Precision(), total.Recall())
	if total.Precision() < 0.9 {
		log.Fatalf("corpus type precision %.3f below the 0.9 bar", total.Precision())
	}
}

func main() {
	// sizeof(b) = 24; divisor 12 makes f3 return 2, so the traced store
	// lands in b[2] and links the whole array into one object.
	show("f3 returns 2 (access to the third element observed):", analyze(12))

	// Divisor 100 makes f3 return 0 on every traced input: the analysis
	// has no evidence that b[0] and b[1] belong together, so b splits —
	// exactly the behaviour §4.2 describes. The recompiled program still
	// behaves correctly for every traced input; the backstop is what makes
	// untraced inputs safe, by refusing to keep any boundary a static
	// access could cross.
	show("f3 returns 0 in every trace (the paper's splitting case):", analyze(100))

	typedCorpus()
}
