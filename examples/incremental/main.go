// Incremental re-lifting: the paper's titular property, "what you trace is
// what you get", demonstrated end to end. A binary lifted from a trace that
// covered only one branch of its input space recompiles to a binary that
// works perfectly on that branch — and hits an explicit trap, rather than
// computing garbage, the moment an input leaves traced coverage (§5.1).
// Re-lifting with one more input extends coverage and the trap disappears.
package main

import (
	"fmt"
	"log"

	"wytiwyg/internal/codegen"
	"wytiwyg/internal/core"
	"wytiwyg/internal/machine"
	"wytiwyg/internal/minicc/gen"
	"wytiwyg/internal/opt"
)

const src = `
extern int input_int(int i);
extern int printf(char *fmt, ...);

int triangle(int n) {
	int s = 0, i;
	for (i = 1; i <= n; i++) s += i;
	return s;
}

int power2(int n) {
	int r = 1;
	while (n > 0) { r *= 2; n--; }
	return r;
}

int main() {
	int n = input_int(0);
	int r;
	if (n < 10) {
		r = triangle(n);    /* small inputs: triangular number */
	} else {
		r = power2(n - 10); /* large inputs: a power of two */
	}
	printf("result=%d\n", r);
	return r % 251;
}
`

// buildRecompiled compiles the source, lifts it with the given trace
// inputs, refines, optimizes, and recompiles. The returned closure runs the
// recompiled binary on an input.
func buildRecompiled(inputs []machine.Input) func(machine.Input) (int32, string) {
	img, err := gen.Build(src, gen.GCC12O3, "incremental")
	if err != nil {
		log.Fatal(err)
	}
	p, err := core.LiftBinary(img, inputs)
	if err != nil {
		log.Fatal(err)
	}
	if err := p.Refine(); err != nil {
		log.Fatal(err)
	}
	opt.Pipeline(p.Mod)
	out, err := codegen.Compile(p.Mod, "incremental-rec")
	if err != nil {
		log.Fatal(err)
	}
	return func(in machine.Input) (int32, string) {
		w := &writer{}
		res, err := machine.Execute(out, in, w)
		if err != nil {
			log.Fatal(err)
		}
		return res.ExitCode, w.s
	}
}

type writer struct{ s string }

func (w *writer) Write(p []byte) (int, error) { w.s += string(p); return len(p), nil }

func main() {
	small := machine.Input{Ints: []int32{7}}  // triangle path
	large := machine.Input{Ints: []int32{15}} // power2 path

	fmt.Println("== lift with ONE trace input (n=7, triangle path only) ==")
	run := buildRecompiled([]machine.Input{small})

	code, out := run(small)
	fmt.Printf("recompiled(n=7):  exit=%d output=%q   (traced path: works)\n", code, out)

	code, out = run(large)
	fmt.Printf("recompiled(n=15): exit=%d output=%q  (untraced path: explicit trap, not garbage)\n",
		code, out)
	if code != 254 {
		log.Fatalf("expected the trap exit code 254 on the untraced path, got %d", code)
	}

	fmt.Println()
	fmt.Println("== re-lift with BOTH inputs (n=7 and n=15) ==")
	run = buildRecompiled([]machine.Input{small, large})

	code, out = run(small)
	fmt.Printf("recompiled(n=7):  exit=%d output=%q\n", code, out)
	code, out = run(large)
	fmt.Printf("recompiled(n=15): exit=%d output=%q\n", code, out)
	if out != "result=32\n" || code != 32 {
		log.Fatalf("re-lifted binary wrong on n=15: exit=%d %q", code, out)
	}

	fmt.Println()
	fmt.Println("Coverage extended; the trap is gone. What you trace is what you get.")
}
