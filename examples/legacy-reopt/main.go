// Legacy reoptimization: the paper's headline use case (§1, Table 1's GCC
// 4.4 column). A compute-heavy binary produced by a legacy compiler is
// "stuck in time": nobody can rebuild it, so it never benefits from modern
// optimizers. WYTIWYG lifts it, recovers its stack layout dynamically, and
// lets a modern optimizer loose on it — producing a faster binary without
// any source code.
package main

import (
	"bytes"
	"fmt"
	"log"

	"wytiwyg/internal/bench/progs"
	"wytiwyg/internal/codegen"
	"wytiwyg/internal/core"
	"wytiwyg/internal/machine"
	"wytiwyg/internal/minicc/gen"
	"wytiwyg/internal/opt"
)

func main() {
	// The "legacy vendor binary": hmmer-like DP kernel built by the GCC 4.4
	// profile (frame pointers, weak register allocation, no modern loop
	// transforms).
	prog, _ := progs.ByName("hmmer")
	input := machine.Input{Ints: []int32{12}}
	legacy, err := gen.Build(prog.Src, gen.GCC44O3, "legacy")
	if err != nil {
		log.Fatal(err)
	}
	var legacyOut bytes.Buffer
	base, err := machine.Execute(legacy, input, &legacyOut)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("legacy binary (GCC 4.4 -O3 profile): %d cycles\n", base.Cycles)

	// What a modern compiler would do WITH source (for context).
	modern, err := gen.Build(prog.Src, gen.GCC12O3, "modern")
	if err != nil {
		log.Fatal(err)
	}
	m, err := machine.Execute(modern, input, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("same source, modern compiler:        %d cycles (%.2fx)\n",
		m.Cycles, float64(m.Cycles)/float64(base.Cycles))

	// WYTIWYG: no source needed. Trace with two inputs, refine, reoptimize.
	p, err := core.LiftBinary(legacy, []machine.Input{
		{Ints: []int32{5}}, input,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := p.Refine(); err != nil {
		log.Fatal(err)
	}
	opt.Pipeline(p.Mod)
	recovered, err := codegen.Compile(p.Mod, "recovered")
	if err != nil {
		log.Fatal(err)
	}
	var recOut bytes.Buffer
	r, err := machine.Execute(recovered, input, &recOut)
	if err != nil {
		log.Fatal(err)
	}
	if recOut.String() != legacyOut.String() || r.ExitCode != base.ExitCode {
		log.Fatalf("functionality broken: %q vs %q", recOut.String(), legacyOut.String())
	}
	fmt.Printf("WYTIWYG-recompiled (no source):      %d cycles (%.2fx)\n",
		r.Cycles, float64(r.Cycles)/float64(base.Cycles))
	if r.Cycles < base.Cycles {
		fmt.Printf("=> the legacy binary got %.2fx faster without its source code\n",
			float64(base.Cycles)/float64(r.Cycles))
	} else {
		fmt.Println("=> no speedup on this kernel (see EXPERIMENTS.md for the full suite)")
	}
}
