// Lint: run the static verification stage on a recovered program and see
// how it reacts to a corrupted layout. The linter (internal/analysis) is
// the static gate over WYTIWYG's dynamic recovery: it re-derives stack
// heights by abstract interpretation, proves stack accesses stay inside
// their recovered objects, and cross-checks the layout table against the
// symbolized IR — so an unsound recovery is caught before codegen rather
// than as a crash in a recompiled binary.
package main

import (
	"fmt"
	"log"

	"wytiwyg/internal/analysis"
	"wytiwyg/internal/core"
	"wytiwyg/internal/machine"
	"wytiwyg/internal/minicc/gen"
)

const src = `
extern int printf(char *fmt, ...);

int dot(int *a, int *b, int n) {
	int i, s = 0;
	for (i = 0; i < n; i++) s += a[i] * b[i];
	return s;
}

int main() {
	int x[4];
	int y[4];
	int i;
	for (i = 0; i < 4; i++) { x[i] = i + 1; y[i] = 5 - i; }
	printf("dot=%d\n", dot(x, y, 4));
	return 0;
}
`

func main() {
	img, err := gen.Build(src, gen.GCC12O3, "lintdemo")
	if err != nil {
		log.Fatal(err)
	}
	p, err := core.LiftBinary(img, []machine.Input{{}})
	if err != nil {
		log.Fatal(err)
	}

	// Refine with the verification stage enabled: every refinement's
	// output is audited and the findings accumulate in p.Report.
	p.Lint = core.LintWarn
	if err := p.Refine(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clean recovery: %d error(s), %d warning(s), %d info finding(s)\n",
		p.Report.Errors(), p.Report.Count(analysis.Warn), p.Report.Count(analysis.Info))

	// Now corrupt the recovery the way a buggy tracer would: mis-record
	// one variable's frame offset in the layout table. The table no
	// longer describes the symbolized IR, and the frame check proves it.
	frame := p.Recovered.Frame("main")
	if frame == nil || len(frame.Vars) == 0 {
		log.Fatal("no recovered frame for main")
	}
	v := &frame.Vars[0]
	v.Offset += 4
	fmt.Printf("\ncorrupting %s: shifting %q to offset %d in the layout table\n",
		frame.Func, v.Name, v.Offset)
	var rep analysis.Report
	analysis.LintModule(p.Mod, p.Recovered, p.Heights, &rep)
	for _, d := range rep.Diags {
		if d.Severity == analysis.Error {
			fmt.Println(d)
		}
	}
	if rep.Errors() == 0 {
		log.Fatal("linter missed the seeded corruption")
	}
}
