// Sanitizer: harden a binary without source code. The paper's introduction
// argues that users of legacy binaries "cannot ... deploy sanitizers and
// mitigations that are readily available in existing compilers" — and that
// memory-layout-affecting transformations like AddressSanitizer require
// recovered local variables. This example retrofits stack bounds checks
// onto a recompiled binary, which is only possible because symbolization
// partitioned the frame into distinct objects.
package main

import (
	"fmt"
	"log"

	"wytiwyg/internal/codegen"
	"wytiwyg/internal/core"
	"wytiwyg/internal/ir"
	"wytiwyg/internal/machine"
	"wytiwyg/internal/minicc/gen"
	"wytiwyg/internal/opt"
	"wytiwyg/internal/sanitize"
	"wytiwyg/internal/vsa"
)

// A classic latent bug: the index is attacker-controlled, the buffer is 4
// elements, and `secret` sits right above it in the frame.
const src = `
extern int input_int(int i);
extern int printf(char *fmt, ...);
int main() {
	int buf[4];
	int secret;
	secret = 1234;
	buf[input_int(0)] = 9999;     /* no bounds check in the original! */
	printf("secret=%d\n", secret);
	return 0;
}
`

func main() {
	img, err := gen.Build(src, gen.GCC44O3, "legacy")
	if err != nil {
		log.Fatal(err)
	}

	// The vendor is gone; all we have is the binary and benign inputs.
	p, err := core.LiftBinary(img, []machine.Input{{Ints: []int32{1}}})
	if err != nil {
		log.Fatal(err)
	}
	if err := p.Refine(); err != nil {
		log.Fatal(err)
	}
	checks := sanitize.Apply(p.Mod)
	opt.Pipeline(p.Mod)
	// Let the value-set analysis discharge the checks it can prove
	// redundant; the attacker-controlled index below defeats it, so that
	// guard — the one that matters — survives.
	var guards codegen.GuardStats
	hardened, err := codegen.CompileWith(p.Mod, "hardened", codegen.Options{
		Oracle: func(f *ir.Func) codegen.BoundsOracle { return vsa.NewOracle(f) },
		Guards: &guards,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inserted %d stack bounds checks into the recovered binary\n", checks)
	fmt.Printf("VSA proved %d of %d guards redundant and elided them\n\n", guards.Elided, guards.Guards)

	for _, idx := range []int32{1, 5} {
		input := machine.Input{Ints: []int32{idx}}
		orig, err := machine.Execute(img, input, nil)
		if err != nil {
			log.Fatal(err)
		}
		hard, err := machine.Execute(hardened, input, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("index %d:\n", idx)
		fmt.Printf("  original binary: exit=%d (buf[%d] written blindly)\n", orig.ExitCode, idx)
		if hard.ExitCode == sanitize.ViolationExitCode {
			fmt.Printf("  hardened binary: exit=%d — OUT-OF-BOUNDS STACK WRITE BLOCKED\n\n", hard.ExitCode)
		} else {
			fmt.Printf("  hardened binary: exit=%d (in bounds, behaviour unchanged)\n\n", hard.ExitCode)
		}
	}
}
