package wytiwyg_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// Build and exercise the command-line tools end to end: the smoke test a
// release would gate on. Skipped with -short (it compiles two binaries).
func TestCommandLineTools(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	dir := t.TempDir()
	wytiwyg := filepath.Join(dir, "wytiwyg")
	experiments := filepath.Join(dir, "experiments")

	for bin, pkg := range map[string]string{
		wytiwyg:     "./cmd/wytiwyg",
		experiments: "./cmd/experiments",
	} {
		out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput()
		if err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
	}

	srcFile := filepath.Join(dir, "demo.c")
	src := `
extern int printf(char *fmt, ...);
int sq(int x) { return x * x; }
int main() {
	int a[4];
	int i, s = 0;
	for (i = 0; i < 4; i++) a[i] = sq(i + 1);
	for (i = 0; i < 4; i++) s += a[i];
	printf("%d\n", s);
	return 0;
}
`
	if err := os.WriteFile(srcFile, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}

	t.Run("wytiwyg-src-layout", func(t *testing.T) {
		out, err := exec.Command(wytiwyg, "-src", srcFile, "-profile", "gcc44-O3", "-emit", "layout").CombinedOutput()
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		s := string(out)
		for _, want := range []string{"frame", "main"} {
			if !strings.Contains(s, want) {
				t.Errorf("output lacks %q:\n%s", want, s)
			}
		}
	})

	t.Run("wytiwyg-emit-ir", func(t *testing.T) {
		out, err := exec.Command(wytiwyg, "-src", srcFile, "-emit", "ir").CombinedOutput()
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		if !strings.Contains(string(out), "func") {
			t.Errorf("no IR in output:\n%.400s", out)
		}
	})

	t.Run("wytiwyg-bench", func(t *testing.T) {
		out, err := exec.Command(wytiwyg, "-bench", "mcf", "-profile", "gcc12-O0").CombinedOutput()
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
	})

	t.Run("wytiwyg-sanitize", func(t *testing.T) {
		out, err := exec.Command(wytiwyg, "-src", srcFile, "-sanitize").CombinedOutput()
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		if !strings.Contains(string(out), "sanitizer:") ||
			strings.Contains(string(out), "sanitizer: 0 ") {
			t.Errorf("sanitizer inserted no checks:\n%s", out)
		}
		if !strings.Contains(string(out), "MATCH") {
			t.Errorf("sanitized binary diverged:\n%s", out)
		}
	})

	t.Run("wytiwyg-bad-profile", func(t *testing.T) {
		if err := exec.Command(wytiwyg, "-src", srcFile, "-profile", "icc").Run(); err == nil {
			t.Error("unknown profile accepted")
		}
	})

	t.Run("wytiwyg-lint-src", func(t *testing.T) {
		out, err := exec.Command(wytiwyg, "lint", "-src", srcFile).CombinedOutput()
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		if !strings.Contains(string(out), "lint: 0 error(s)") {
			t.Errorf("clean source should lint with zero errors:\n%s", out)
		}
	})

	t.Run("wytiwyg-lint-json", func(t *testing.T) {
		out, err := exec.Command(wytiwyg, "lint", "-bench", "mcf", "-json").CombinedOutput()
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		s := string(out)
		for _, want := range []string{`"program": "mcf"`, `"errors": 0`, `"diagnostics"`} {
			if !strings.Contains(s, want) {
				t.Errorf("JSON output lacks %q:\n%.600s", want, s)
			}
		}
	})

	t.Run("wytiwyg-debug-passes", func(t *testing.T) {
		out, err := exec.Command(wytiwyg, "-src", srcFile, "-debug-passes").CombinedOutput()
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		if !strings.Contains(string(out), "MATCH") {
			t.Errorf("recompiled binary diverged under -debug-passes:\n%s", out)
		}
	})

	t.Run("wytiwyg-lint-fail-mode", func(t *testing.T) {
		// -lint fail on a clean program must not abort refinement.
		out, err := exec.Command(wytiwyg, "-src", srcFile, "-lint", "fail").CombinedOutput()
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		if !strings.Contains(string(out), "lint: 0 error(s)") {
			t.Errorf("expected lint summary line:\n%s", out)
		}
	})

	t.Run("experiments-table1", func(t *testing.T) {
		out, err := exec.Command(experiments, "-exp", "table1", "-scale", "2", "-progs", "mcf").CombinedOutput()
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		s := string(out)
		for _, want := range []string{"Table 1", "mcf", "Geomean"} {
			if !strings.Contains(s, want) {
				t.Errorf("output lacks %q:\n%s", want, s)
			}
		}
	})

	t.Run("experiments-unknown-prog", func(t *testing.T) {
		if err := exec.Command(experiments, "-exp", "table1", "-progs", "nope").Run(); err == nil {
			t.Error("unknown benchmark accepted")
		}
	})
}
