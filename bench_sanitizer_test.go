package wytiwyg_test

import (
	"testing"

	"wytiwyg/internal/bench"
	"wytiwyg/internal/bench/progs"
	"wytiwyg/internal/codegen"
	"wytiwyg/internal/core"
	"wytiwyg/internal/ir"
	"wytiwyg/internal/machine"
	"wytiwyg/internal/minicc/gen"
	"wytiwyg/internal/opt"
	"wytiwyg/internal/sanitize"
	"wytiwyg/internal/vsa"
)

// BenchmarkSanitizerOverhead measures the downstream-application extension:
// the runtime cost of retrofitting stack-bounds checks onto a recompiled
// binary, reported as sanitized/unsanitized cycle ratio. The paper's §1
// motivation is that this hardening is impossible without recovered
// variables; this reports what it costs once they are recovered.
func BenchmarkSanitizerOverhead(b *testing.B) {
	// bzip2 keeps its hot arrays on the stack (workloads whose arrays are
	// globals have no stack accesses to harden); astar would also qualify
	// but its ref run is too slow for the bench budget.
	for _, name := range []string{"bzip2"} {
		b.Run(name, func(b *testing.B) {
			p, ok := progs.ByName(name)
			if !ok {
				b.Fatal("missing workload")
			}
			p = bench.Scaled(p, benchScale)
			img, err := gen.Build(p.Src, gen.GCC12O3, p.Name)
			if err != nil {
				b.Fatal(err)
			}

			build := func(sanitized, elide bool) *machine.Result {
				pl, err := core.LiftBinary(img, p.Inputs())
				if err != nil {
					b.Fatal(err)
				}
				if err := pl.Refine(); err != nil {
					b.Fatal(err)
				}
				// Checks go in before optimization (like the example):
				// the optimizer then hoists or folds whatever it can
				// prove, exactly how a compiler-inserted sanitizer works.
				if sanitized {
					if checks := sanitize.Apply(pl.Mod); checks == 0 {
						b.Fatal("sanitizer instrumented nothing")
					}
				}
				opt.Pipeline(pl.Mod)
				var opts codegen.Options
				var guards codegen.GuardStats
				if elide {
					opts.Oracle = func(f *ir.Func) codegen.BoundsOracle { return vsa.NewOracle(f) }
					opts.Guards = &guards
				}
				out, err := codegen.CompileWith(pl.Mod, p.Name+"-san", opts)
				if err != nil {
					b.Fatal(err)
				}
				if elide {
					b.ReportMetric(float64(guards.Guards), "guards")
					b.ReportMetric(float64(guards.Elided), "guards-elided")
				}
				res, err := machine.Execute(out, p.Ref, nil)
				if err != nil {
					b.Fatal(err)
				}
				return &res
			}

			for i := 0; i < b.N; i++ {
				plain := build(false, false)
				hard := build(true, false)
				lean := build(true, true)
				b.ReportMetric(float64(hard.Cycles)/float64(plain.Cycles), "sanitized-ratio")
				b.ReportMetric(float64(lean.Cycles)/float64(plain.Cycles), "sanitized-elided-ratio")
			}
		})
	}
}
