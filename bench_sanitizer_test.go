package wytiwyg_test

import (
	"testing"

	"wytiwyg/internal/bench"
	"wytiwyg/internal/bench/progs"
	"wytiwyg/internal/codegen"
	"wytiwyg/internal/core"
	"wytiwyg/internal/machine"
	"wytiwyg/internal/minicc/gen"
	"wytiwyg/internal/opt"
	"wytiwyg/internal/sanitize"
)

// BenchmarkSanitizerOverhead measures the downstream-application extension:
// the runtime cost of retrofitting stack-bounds checks onto a recompiled
// binary, reported as sanitized/unsanitized cycle ratio. The paper's §1
// motivation is that this hardening is impossible without recovered
// variables; this reports what it costs once they are recovered.
func BenchmarkSanitizerOverhead(b *testing.B) {
	// bzip2 keeps its hot arrays on the stack (workloads whose arrays are
	// globals have no stack accesses to harden); astar would also qualify
	// but its ref run is too slow for the bench budget.
	for _, name := range []string{"bzip2"} {
		b.Run(name, func(b *testing.B) {
			p, ok := progs.ByName(name)
			if !ok {
				b.Fatal("missing workload")
			}
			p = bench.Scaled(p, benchScale)
			img, err := gen.Build(p.Src, gen.GCC12O3, p.Name)
			if err != nil {
				b.Fatal(err)
			}

			build := func(sanitized bool) *machine.Result {
				pl, err := core.LiftBinary(img, p.Inputs())
				if err != nil {
					b.Fatal(err)
				}
				if err := pl.Refine(); err != nil {
					b.Fatal(err)
				}
				// Checks go in before optimization (like the example):
				// the optimizer then hoists or folds whatever it can
				// prove, exactly how a compiler-inserted sanitizer works.
				if sanitized {
					if checks := sanitize.Apply(pl.Mod); checks == 0 {
						b.Fatal("sanitizer instrumented nothing")
					}
				}
				opt.Pipeline(pl.Mod)
				out, err := codegen.Compile(pl.Mod, p.Name+"-san")
				if err != nil {
					b.Fatal(err)
				}
				res, err := machine.Execute(out, p.Ref, nil)
				if err != nil {
					b.Fatal(err)
				}
				return &res
			}

			for i := 0; i < b.N; i++ {
				plain := build(false)
				hard := build(true)
				b.ReportMetric(float64(hard.Cycles)/float64(plain.Cycles), "sanitized-ratio")
			}
		})
	}
}
