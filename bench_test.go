// Package wytiwyg_test hosts the top-level benchmark harness: one
// testing.B benchmark per table and figure of the paper's evaluation. The
// benchmarks measure the reproduction's own pipeline (wall-clock per phase)
// and report the paper's metrics (normalized runtimes, accuracy ratios) via
// b.ReportMetric, so `go test -bench=. -benchmem` regenerates every
// headline number at reduced scale. cmd/experiments runs the full-scale
// version.
package wytiwyg_test

import (
	"testing"

	"wytiwyg/internal/bench"
	"wytiwyg/internal/bench/progs"
	"wytiwyg/internal/codegen"
	"wytiwyg/internal/core"
	"wytiwyg/internal/layout"
	"wytiwyg/internal/machine"
	"wytiwyg/internal/minicc/gen"
	"wytiwyg/internal/opt"
)

// benchScale keeps benchmark iterations affordable (the whole root-package
// bench run must fit go test's default 10-minute budget); cmd/experiments
// uses the full ref inputs.
const benchScale = 2

// benchRow runs the full Table 1 measurement for one (program, config)
// cell and reports the ratios.
func benchRow(b *testing.B, name string, prof gen.Profile) {
	p, ok := progs.ByName(name)
	if !ok {
		b.Fatalf("no benchmark %q", name)
	}
	p = bench.Scaled(p, benchScale)
	var row *bench.Row
	for i := 0; i < b.N; i++ {
		var err error
		row, err = bench.RunProgram(p, prof)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(row.NoSymRatio(), "nosym-ratio")
	b.ReportMetric(row.SymRatio(), "sym-ratio")
	if !row.SW.Failed {
		b.ReportMetric(row.SWRatio(), "sw-ratio")
	}
}

// --- Table 1: one benchmark per configuration column, sub-benchmarks per
// program row. ---

func BenchmarkTable1(b *testing.B) {
	for _, prof := range bench.Configs {
		prof := prof
		b.Run(prof.Name, func(b *testing.B) {
			for _, p := range progs.All {
				p := p
				b.Run(p.Name, func(b *testing.B) { benchRow(b, p.Name, prof) })
			}
		})
	}
}

// --- Figure 6: runtime normalized to the native GCC 12.2 -O3 binary. ---

func BenchmarkFigure6(b *testing.B) {
	for _, p := range progs.All[:4] { // representative subset per iteration cost
		p := bench.Scaled(p, benchScale)
		b.Run(p.Name, func(b *testing.B) {
			baseImg, err := gen.Build(p.Src, gen.GCC12O3, p.Name)
			if err != nil {
				b.Fatal(err)
			}
			base, err := machine.Execute(baseImg, p.Ref, nil)
			if err != nil {
				b.Fatal(err)
			}
			var row *bench.Row
			for i := 0; i < b.N; i++ {
				row, err = bench.RunProgram(p, gen.GCC44O3)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(row.Native.Cycles)/float64(base.Cycles), "gcc44-native-vs-gcc12")
			b.ReportMetric(float64(row.Sym.Cycles)/float64(base.Cycles), "gcc44-recompiled-vs-gcc12")
		})
	}
}

// --- Figure 7: splitting accuracy. ---

func BenchmarkFigure7(b *testing.B) {
	var agg layout.Accuracy
	for i := 0; i < b.N; i++ {
		agg = layout.Accuracy{}
		for _, p := range progs.All {
			p := bench.Scaled(p, benchScale)
			row, err := bench.RunProgram(p, gen.GCC12O0)
			if err != nil {
				b.Fatal(err)
			}
			agg.Add(row.Accuracy)
		}
	}
	b.ReportMetric(agg.Precision()*100, "precision-%")
	b.ReportMetric(agg.Recall()*100, "recall-%")
	b.ReportMetric(agg.Ratio(layout.Matched)*100, "matched-%")
}

// --- Ablation (§6.2 analysis): which optimizations the symbolized IR
// unlocks. ---

func BenchmarkAblation(b *testing.B) {
	p, _ := progs.ByName("hmmer")
	p = bench.Scaled(p, benchScale)
	var row *bench.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		row, err = bench.Ablation(p, gen.GCC12O0)
		if err != nil {
			b.Fatal(err)
		}
	}
	n := float64(row.Native)
	b.ReportMetric(float64(row.NoSym)/n, "nosym")
	b.ReportMetric(float64(row.SymNoMem)/n, "sym-no-mem")
	b.ReportMetric(float64(row.SymNoLICM)/n, "sym-no-licm")
	b.ReportMetric(float64(row.SymFull)/n, "sym-full")
}

// --- Pipeline phase costs (the reproduction's own performance). ---

func pipelineInputs(b *testing.B) (*core.Pipeline, []machine.Input) {
	p, _ := progs.ByName("bzip2")
	p = bench.Scaled(p, benchScale)
	img, err := gen.Build(p.Src, gen.GCC12O3, p.Name)
	if err != nil {
		b.Fatal(err)
	}
	pl, err := core.LiftBinary(img, p.Inputs())
	if err != nil {
		b.Fatal(err)
	}
	return pl, p.Inputs()
}

func BenchmarkPhaseLift(b *testing.B) {
	p, _ := progs.ByName("bzip2")
	p = bench.Scaled(p, benchScale)
	img, err := gen.Build(p.Src, gen.GCC12O3, p.Name)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.LiftBinary(img, p.Inputs()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPhaseRefine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		pl, _ := pipelineInputs(b)
		b.StartTimer()
		if err := pl.Refine(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPhaseOptimize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		pl, _ := pipelineInputs(b)
		if err := pl.Refine(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		opt.Pipeline(pl.Mod)
	}
}

func BenchmarkPhaseCodegen(b *testing.B) {
	pl, _ := pipelineInputs(b)
	if err := pl.Refine(); err != nil {
		b.Fatal(err)
	}
	opt.Pipeline(pl.Mod)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codegen.Compile(pl.Mod, "bench"); err != nil {
			b.Fatal(err)
		}
	}
}
