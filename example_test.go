package wytiwyg_test

import (
	"fmt"
	"log"

	"wytiwyg/internal/codegen"
	"wytiwyg/internal/core"
	"wytiwyg/internal/machine"
	"wytiwyg/internal/minicc/gen"
	"wytiwyg/internal/opt"
)

// Example walks the whole pipeline on a binary whose source is about to be
// thrown away: compile (this stands in for the vendor's long-lost build),
// trace, lift, refine, optimize, recompile, and run the recovered binary.
func Example() {
	src := `
int fib(int n) {
	if (n < 2) return n;
	return fib(n-1) + fib(n-2);
}
int main() { return fib(12); }
`
	img, err := gen.Build(src, gen.GCC44O3, "example")
	if err != nil {
		log.Fatal(err)
	}
	// From here on, only the binary exists.
	p, err := core.LiftBinary(img, nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := p.Refine(); err != nil {
		log.Fatal(err)
	}
	opt.Pipeline(p.Mod)
	out, err := codegen.Compile(p.Mod, "example-recovered")
	if err != nil {
		log.Fatal(err)
	}
	res, err := machine.Execute(out, machine.Input{}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("functions recovered: %d\n", len(p.Rec.Funcs))
	fmt.Printf("recovered binary exit code: %d\n", res.ExitCode)
	// Output:
	// functions recovered: 3
	// recovered binary exit code: 144
}
