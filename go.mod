module wytiwyg

go 1.22
