package main

import (
	"fmt"

	"wytiwyg/internal/bench"
	"wytiwyg/internal/bench/progs"
	"wytiwyg/internal/codegen"
	"wytiwyg/internal/core"
	"wytiwyg/internal/ir"
	"wytiwyg/internal/machine"
	"wytiwyg/internal/minicc/gen"
	"wytiwyg/internal/opt"
	"wytiwyg/internal/sanitize"
	"wytiwyg/internal/vsa"
)

// The -guards mode re-measures the paper's Table 1 story for the sanitizer
// extension: the cycle overhead of stack-bounds hardening on a recompiled
// binary, before and after the VSA oracle elides the guards it can prove
// redundant (codegen/guards.go). Each measured program is lifted, refined,
// sanitized, optimized, and compiled three ways — unsanitized, sanitized,
// and sanitized with elision — then run on its ref input.

// guardsPrograms is the corpus slice -guards measures: workloads that keep
// hot arrays on the stack, so the sanitizer has accesses to bracket.
var guardsPrograms = []string{"bzip2"}

// maskedSrc is an extra workload built so some guards are provably
// redundant: the buffer indices are masked to the buffer size, the bound
// VSA recovers exactly. Its elided count is the regression canary for the
// oracle→codegen wiring (the corpus programs' indices are input-scaled,
// which nothing can bound statically).
const maskedSrc = `
extern int input_int(int i);
extern int printf(char *fmt, ...);

int main() {
	int buf[8];
	int n = input_int(0);
	int acc = 0;
	int i;
	for (i = 0; i < n; i++) {
		buf[i & 7] = i;
		acc += buf[(i + 3) & 7];
	}
	printf("masked checksum=%d\n", acc);
	return acc % 251;
}
`

// masked wraps maskedSrc as a runnable program.
func masked() progs.Program {
	return progs.Program{
		Name:  "masked",
		Src:   maskedSrc,
		Train: machine.Input{Ints: []int32{5}},
		Ref:   machine.Input{Ints: []int32{23}},
	}
}

// guardsScale is the ref-input scale for -guards runs.
const guardsScale = 4

// GuardSection is one program's sanitizer-overhead measurements.
type GuardSection struct {
	Program string `json:"program"` // benchmark name
	Checks  int    `json:"checks"`  // sanitizer checks inserted
	Guards  int    `json:"guards"`  // guard blocks codegen recognized post-opt
	Elided  int    `json:"elided"`  // guards the VSA oracle discharged
	// PlainCycles is the ref-input cycle count of the unsanitized build.
	PlainCycles uint64 `json:"plain_cycles"`
	// SanitizedCycles is the ref-input cycle count with all guards kept.
	SanitizedCycles uint64 `json:"sanitized_cycles"`
	// ElidedCycles is the ref-input cycle count after VSA guard elision.
	ElidedCycles uint64 `json:"elided_cycles"`
	// SanitizedRatio is the Table 1-style overhead ratio of the fully
	// guarded build over the unsanitized build.
	SanitizedRatio float64 `json:"sanitized_ratio"`
	// ElidedRatio is the same ratio after VSA guard elision.
	ElidedRatio float64 `json:"elided_ratio"`
}

// guardsSections builds the artifact's "guards" section.
func guardsSections() ([]GuardSection, error) {
	var out []GuardSection
	for _, name := range guardsPrograms {
		p, ok := progs.ByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown guards program %q", name)
		}
		sec, err := guardsOne(bench.Scaled(p, guardsScale))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		out = append(out, sec)
	}
	sec, err := guardsOne(masked())
	if err != nil {
		return nil, fmt.Errorf("masked: %w", err)
	}
	return append(out, sec), nil
}

// guardsOne builds one program three ways and measures the overhead
// ratios. Each build lifts afresh: sanitization and optimization mutate
// the module.
func guardsOne(p progs.Program) (GuardSection, error) {
	img, err := gen.Build(p.Src, gen.GCC12O3, p.Name)
	if err != nil {
		return GuardSection{}, fmt.Errorf("build: %w", err)
	}
	sec := GuardSection{Program: p.Name}

	run := func(sanitized, elide bool) (uint64, error) {
		pl, err := refined(img, p, core.Options{Lint: core.LintOff})
		if err != nil {
			return 0, err
		}
		if sanitized {
			checks := sanitize.Apply(pl.Mod)
			if checks == 0 {
				return 0, fmt.Errorf("sanitizer instrumented nothing")
			}
			sec.Checks = checks
		}
		opt.Pipeline(pl.Mod)
		var opts codegen.Options
		var st codegen.GuardStats
		if elide {
			opts.Oracle = func(f *ir.Func) codegen.BoundsOracle { return vsa.NewOracle(f) }
			opts.Guards = &st
		}
		bin, err := codegen.CompileWith(pl.Mod, p.Name+"-guards", opts)
		if err != nil {
			return 0, fmt.Errorf("codegen: %w", err)
		}
		if elide {
			sec.Guards = st.Guards
			sec.Elided = st.Elided
		}
		res, err := machine.Execute(bin, p.Ref, nil)
		if err != nil {
			return 0, fmt.Errorf("execute: %w", err)
		}
		return res.Cycles, nil
	}

	if sec.PlainCycles, err = run(false, false); err != nil {
		return GuardSection{}, err
	}
	if sec.SanitizedCycles, err = run(true, false); err != nil {
		return GuardSection{}, err
	}
	if sec.ElidedCycles, err = run(true, true); err != nil {
		return GuardSection{}, err
	}
	sec.SanitizedRatio = round2(float64(sec.SanitizedCycles) / float64(sec.PlainCycles))
	sec.ElidedRatio = round2(float64(sec.ElidedCycles) / float64(sec.PlainCycles))
	return sec, nil
}

// writeGuards merges a freshly measured "guards" section into the
// artifact, leaving the other sections untouched.
func writeGuards(path string) error {
	sections, err := guardsSections()
	if err != nil {
		return err
	}
	f, err := readArtifact(path)
	if err != nil {
		return err
	}
	f.Guards = sections
	return writeArtifact(path, f, fmt.Sprintf("guards section for %d programs", len(sections)))
}
