package main

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"time"

	"wytiwyg/internal/refcache"
	"wytiwyg/internal/serve"
)

// The -serve mode measures the recompilation daemon (internal/serve):
// for each program, one cold submission that runs the full pipeline and
// one identical warm submission answered from the shared response cache.
// The interesting numbers are the cold/warm latency gap — the daemon's
// whole value proposition — and the hit rates on both sides. The numbers
// land in the artifact's "serve" section (conventionally
// BENCH_serve.json).

// servePrograms is the measured corpus slice: small enough for a CI
// smoke run, varied enough to exercise different pipeline shapes.
var servePrograms = []string{"mcf", "bzip2", "libquantum"}

// ServeSection is one program's daemon measurements.
type ServeSection struct {
	// Program is the benchmark name.
	Program string `json:"program"`
	// ColdMs is the end-to-end latency of the first submission (full
	// pipeline execution); WarmMs is the latency of the identical repeat
	// submission (response-cache read, no pipeline).
	ColdMs float64 `json:"cold_ms"`
	// WarmMs is the warm-path latency (see ColdMs).
	WarmMs float64 `json:"warm_ms"`
	// Speedup is ColdMs over WarmMs.
	Speedup float64 `json:"speedup"`
	// FuncMisses counts the functions the cold run had to compute (its
	// per-function cache found nothing: the cache starts empty).
	FuncMisses int `json:"func_misses"`
	// WarmHitRate is the warm response's reported hit rate (1.0: the
	// whole payload came from the cache).
	WarmHitRate float64 `json:"warm_hit_rate"`
}

// serveSections starts a daemon on a throwaway socket and cache and
// measures every program against it.
func serveSections() ([]ServeSection, error) {
	dir, err := os.MkdirTemp("", "wytiwyg-benchserve-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	cache, err := refcache.Open(filepath.Join(dir, "cache"))
	if err != nil {
		return nil, err
	}
	l, err := net.Listen("unix", filepath.Join(dir, "d.sock"))
	if err != nil {
		return nil, err
	}
	srv := serve.New(serve.Config{Cache: cache})
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	c := serve.Dial("unix:" + filepath.Join(dir, "d.sock"))
	if err := c.WaitReady(5 * time.Second); err != nil {
		return nil, err
	}

	out := make([]ServeSection, 0, len(servePrograms))
	for _, name := range servePrograms {
		sec, err := serveOne(c, name)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		out = append(out, sec)
	}
	if err := c.Shutdown(); err != nil {
		return nil, err
	}
	if err := <-done; err != nil {
		return nil, err
	}
	return out, nil
}

// serveOne submits one program's recompile job twice: cold, then warm.
func serveOne(c *serve.Client, name string) (ServeSection, error) {
	submit := func() (*serve.Response, float64, error) {
		start := time.Now()
		resp, err := c.Submit(&serve.Job{Kind: serve.KindRecompile, Bench: name})
		if err != nil {
			return nil, 0, err
		}
		if resp.Error != "" {
			return nil, 0, fmt.Errorf("daemon: %s", resp.Error)
		}
		return resp, roundMs(time.Since(start)), nil
	}
	cold, coldMs, err := submit()
	if err != nil {
		return ServeSection{}, err
	}
	if cold.Stats.Warm {
		return ServeSection{}, fmt.Errorf("first submission served warm from a fresh cache")
	}
	warm, warmMs, err := submit()
	if err != nil {
		return ServeSection{}, err
	}
	if !warm.Stats.Warm {
		return ServeSection{}, fmt.Errorf("repeat submission not served warm")
	}
	sec := ServeSection{
		Program:     name,
		ColdMs:      coldMs,
		WarmMs:      warmMs,
		FuncMisses:  cold.Stats.FuncMisses,
		WarmHitRate: warm.Stats.HitRate,
	}
	if warmMs > 0 {
		sec.Speedup = round2(coldMs / warmMs)
	}
	return sec, nil
}

// writeServe merges a freshly measured "serve" section into the
// artifact, leaving the other sections untouched.
func writeServe(path string) error {
	sections, err := serveSections()
	if err != nil {
		return err
	}
	f, err := readArtifact(path)
	if err != nil {
		return err
	}
	f.Serve = sections
	return writeArtifact(path, f, fmt.Sprintf("serve section for %d programs", len(sections)))
}
