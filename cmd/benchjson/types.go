package main

import (
	"fmt"

	"wytiwyg/internal/bench/progs"
	"wytiwyg/internal/core"
	"wytiwyg/internal/layout"
	"wytiwyg/internal/minicc/gen"
	"wytiwyg/internal/opt"
)

// The -types mode measures the type-recovery stage instead of parsing
// benchmark output: per-function inference wall time, typed-slot coverage,
// the precision/recall against the compiler's declared slot types, and the
// optimizer's promoted-slot counts with and without the typed slot
// splitter. The numbers land in the artifact's "types" section next to the
// interpreter benchmarks so one file tracks both costs and payoffs.

// typePrograms is the corpus slice the -types mode measures: programs
// whose frames carry aggregates (arrays, structs, pointer tables) where
// inference has work to do, plus one scalar-heavy control.
var typePrograms = []string{"bzip2", "astar", "xalancbmk", "hmmer"}

// TypeFunc is one function's inference cost and coverage.
type TypeFunc struct {
	Func        string  `json:"func"`         // function name
	InferenceMs float64 `json:"inference_ms"` // per-function inference wall time
	TypedSlots  int     `json:"typed_slots"`  // slots with a committed type
	Slots       int     `json:"slots"`        // layout slots considered
}

// TypeSection is one program's type-recovery measurements.
type TypeSection struct {
	Program          string     `json:"program"`           // benchmark name
	Funcs            []TypeFunc `json:"funcs"`             // per-function costs and coverage
	TypedSlots       int        `json:"typed_slots"`       // committed types, whole program
	TotalSlots       int        `json:"total_slots"`       // layout slots, whole program
	Conflicts        int        `json:"conflicts"`         // irreconcilable-evidence events
	Precision        float64    `json:"precision"`         // correct claims / claims (vs declared types)
	Recall           float64    `json:"recall"`            // correct claims / truth slots
	PromotedBaseline int        `json:"promoted_baseline"` // slots promoted without the typed splitter
	PromotedTyped    int        `json:"promoted_typed"`    // slots promoted with it
}

// typeSections builds the artifact's "types" section.
func typeSections() ([]TypeSection, error) {
	out := make([]TypeSection, 0, len(typePrograms))
	for _, name := range typePrograms {
		p, ok := progs.ByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown types program %q", name)
		}
		sec, err := typeOne(p)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		out = append(out, sec)
	}
	return out, nil
}

// typeOne lifts one program twice — the modules are mutated by
// optimization — and reports inference cost, accuracy against the
// compiler's declared types, and both promotion counts.
func typeOne(p progs.Program) (TypeSection, error) {
	img, err := gen.Build(p.Src, gen.GCC12O3, p.Name)
	if err != nil {
		return TypeSection{}, fmt.Errorf("build: %w", err)
	}
	typed, err := refined(img, p, core.Options{Lint: core.LintWarn, Types: true})
	if err != nil {
		return TypeSection{}, err
	}
	baseline, err := refined(img, p, core.Options{Lint: core.LintOff})
	if err != nil {
		return TypeSection{}, err
	}
	sec := TypeSection{
		Program:          p.Name,
		PromotedBaseline: countVars(opt.PipelineWith(baseline.Mod, opt.PipelineOpts{})),
		PromotedTyped:    countVars(opt.PipelineWith(typed.Mod, opt.PipelineOpts{Typed: typed.TypedInfo()})),
	}
	for _, st := range typed.TypeStats {
		sec.Funcs = append(sec.Funcs, TypeFunc{
			Func:        st.Func,
			InferenceMs: round2(st.Elapsed.Seconds() * 1000),
			TypedSlots:  st.TypedSlots,
			Slots:       st.Slots,
		})
		sec.TypedSlots += st.TypedSlots
		sec.TotalSlots += st.Slots
		sec.Conflicts += st.Conflicts
	}
	if img.TypedTruth != nil {
		acc := layout.CompareTyped(img.TypedTruth, typed.Typed)
		sec.Precision = round2(acc.Precision())
		sec.Recall = round2(acc.Recall())
	}
	return sec, nil
}

// writeTypes merges a freshly measured "types" section into the artifact,
// leaving the benchmark sections untouched.
func writeTypes(path string) error {
	sections, err := typeSections()
	if err != nil {
		return err
	}
	f, err := readArtifact(path)
	if err != nil {
		return err
	}
	f.Types = sections
	return writeArtifact(path, f, fmt.Sprintf("types section for %d programs", len(sections)))
}
