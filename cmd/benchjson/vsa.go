package main

import (
	"fmt"

	"wytiwyg/internal/bench"
	"wytiwyg/internal/bench/progs"
	"wytiwyg/internal/core"
	"wytiwyg/internal/layout"
	"wytiwyg/internal/machine"
	"wytiwyg/internal/minicc/gen"
	"wytiwyg/internal/obj"
	"wytiwyg/internal/opt"
)

// The -vsa mode measures the value-set analysis itself instead of parsing
// benchmark output: per-function analysis wall time on a slice of the
// corpus, and the optimizer's promoted-slot counts with and without the
// alias oracle. The numbers land in the artifact's "vsa" section next to
// the interpreter benchmarks so one file tracks both costs and payoffs.

// vsaPrograms is the corpus slice the -vsa mode measures: the pointer- and
// dispatch-heavy programs where the alias oracle has work to do.
var vsaPrograms = []string{"mcf", "astar", "xalancbmk"}

// ptrtableSrc is an extra measured workload outside the paper's corpus: a
// stack pointer table, the pattern a syntactic escape analysis can never
// untangle but the oracle resolves to exact frame slots. With complete
// trace coverage the dynamic pipeline resolves it too (symbolization
// rewrites each traced dereference to its observed slot), so the expected
// delta here is zero — a nonzero delta is the oracle recovering
// promotions that tracing missed, which is exactly what the section is
// recorded to watch.
const ptrtableSrc = `
extern int printf(char *fmt, ...);
extern int input_int(int i);

int main() {
	int rounds = input_int(0);
	int a = 1;
	int b = 2;
	int *tab[2];
	tab[0] = &a;
	tab[1] = &b;
	int s = 0;
	int r;
	for (r = 0; r < rounds; r++) {
		if (r % 2 == 0) {
			s += *tab[0] + r;
		} else {
			s += *tab[1] * 2;
		}
		*tab[0] = s % 97;
		*tab[1] = (s + r) % 89;
	}
	printf("ptrtable checksum=%d\n", s + a + b);
	return (s + a + b) % 251;
}
`

// ptrtable wraps the source as a runnable program.
func ptrtable() progs.Program {
	return progs.Program{
		Name:  "ptrtable",
		Src:   ptrtableSrc,
		Train: machine.Input{Ints: []int32{3}},
		Ref:   machine.Input{Ints: []int32{11}},
	}
}

// vsaScale is the ref-input scale for -vsa runs (small: the analysis cost
// per function is input-independent; only tracing depends on it).
const vsaScale = 4

// VSAFunc is one function's analysis cost.
type VSAFunc struct {
	Func       string  `json:"func"`        // function name
	AnalysisMs float64 `json:"analysis_ms"` // fixpoint wall time
}

// VSASection is one program's VSA measurements.
type VSASection struct {
	Program          string    `json:"program"`           // benchmark name
	Funcs            []VSAFunc `json:"funcs"`             // per-function analysis costs
	PromotedBaseline int       `json:"promoted_baseline"` // slots promoted without the oracle
	PromotedOracle   int       `json:"promoted_oracle"`   // slots promoted with the oracle
}

// vsaSections builds the artifact's "vsa" section.
func vsaSections() ([]VSASection, error) {
	out := make([]VSASection, 0, len(vsaPrograms))
	for _, name := range vsaPrograms {
		p, ok := progs.ByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown vsa program %q", name)
		}
		sec, err := vsaOne(bench.Scaled(p, vsaScale))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		out = append(out, sec)
	}
	sec, err := vsaOne(ptrtable())
	if err != nil {
		return nil, fmt.Errorf("ptrtable: %w", err)
	}
	return append(out, sec), nil
}

// vsaOne lifts one program twice — the modules are mutated by optimization
// — and reports the analysis cost plus both promotion counts.
func vsaOne(p progs.Program) (VSASection, error) {
	img, err := gen.Build(p.Src, gen.GCC12O3, p.Name)
	if err != nil {
		return VSASection{}, fmt.Errorf("build: %w", err)
	}
	withVSA, err := refined(img, p, core.Options{Lint: core.LintWarn, VSA: true})
	if err != nil {
		return VSASection{}, err
	}
	baseline, err := refined(img, p, core.Options{Lint: core.LintOff})
	if err != nil {
		return VSASection{}, err
	}
	sec := VSASection{
		Program:          p.Name,
		PromotedBaseline: countVars(opt.PipelineWith(baseline.Mod, opt.PipelineOpts{})),
		PromotedOracle:   countVars(opt.PipelineWith(withVSA.Mod, opt.PipelineOpts{Oracle: withVSA.Oracle()})),
	}
	for _, st := range withVSA.VSAStats {
		sec.Funcs = append(sec.Funcs, VSAFunc{
			Func:       st.Func,
			AnalysisMs: round2(st.Elapsed.Seconds() * 1000),
		})
	}
	return sec, nil
}

func refined(img *obj.Image, p progs.Program, o core.Options) (*core.Pipeline, error) {
	pl, err := core.LiftBinaryOpts(img, p.Inputs(), o)
	if err != nil {
		return nil, fmt.Errorf("lift: %w", err)
	}
	if err := pl.Refine(); err != nil {
		return nil, fmt.Errorf("refine: %w", err)
	}
	return pl, nil
}

func countVars(pr *layout.Program) int {
	n := 0
	for _, name := range pr.FuncNames() {
		n += len(pr.Frame(name).Vars)
	}
	return n
}
