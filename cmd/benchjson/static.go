package main

import (
	"fmt"

	"wytiwyg/internal/bench"
	"wytiwyg/internal/bench/progs"
	"wytiwyg/internal/core"
	"wytiwyg/internal/machine"
	"wytiwyg/internal/minicc/gen"
)

// The -static mode measures the static cold-code recovery stage: how many
// candidates discovery finds when tracing covers only part of a program, how
// many the value-set admission gate accepts, and what each function's
// analysis costs. The numbers land in the artifact's "static" section.

// dispatchSrc is the measured partial-coverage workload: a function-pointer
// dispatch traced on a single operation, leaving three operations cold — two
// statically verifiable, one (an escaping local) forever behind a trap stub.
const dispatchSrc = `
extern int input_int(int i);
extern int printf(char *fmt, ...);

int op_add(int a, int b) { return a + b; }

int op_mul(int a, int b) { return a * b; }

int op_tab(int a, int b) {
	int t[4];
	t[0] = a; t[1] = b; t[2] = a + b; t[3] = a - b;
	return t[0] + t[1] + t[2] + t[3];
}

int *leak;
int op_leak(int a, int b) {
	int x;
	x = a + b;
	leak = &x;
	return *leak + b;
}

int apply(fnptr f, int a, int b) { return f(a, b); }

fnptr ops[4];

int main() {
	int op, a, b, r;
	ops[0] = &op_add;
	ops[1] = &op_mul;
	ops[2] = &op_tab;
	ops[3] = &op_leak;
	op = input_int(0);
	a = input_int(1);
	b = input_int(2);
	r = apply(ops[op & 3], a, b);
	printf("r=%d\n", r);
	return r & 63;
}
`

// staticScale is the ref-input scale for the corpus slice (small — the
// discovery and admission costs are trace-size independent).
const staticScale = 4

// StaticFunc is one cold candidate's admission verdict and analysis cost.
type StaticFunc struct {
	Func       string  `json:"func"`             // function name
	Admitted   bool    `json:"admitted"`         // admission verdict
	Reason     string  `json:"reason,omitempty"` // rejection reason, if any
	AnalysisMs float64 `json:"analysis_ms"`      // admission analysis wall time
}

// StaticSection is one program's static-coverage measurements.
type StaticSection struct {
	Program string `json:"program"` // benchmark name
	// Seeds counts the cold entry addresses discovery started from;
	// Candidates the plausible functions among them; Admitted and Rejected
	// split the candidates by the VSA admission verdict. Seeds minus
	// Candidates were refused by the disassembly pass itself.
	Seeds      int          `json:"seeds"`
	Candidates int          `json:"candidates"`      // see Seeds
	Admitted   int          `json:"admitted"`        // see Seeds
	Rejected   int          `json:"rejected"`        // see Seeds
	Funcs      []StaticFunc `json:"funcs,omitempty"` // per-candidate verdicts
}

// staticSections builds the artifact's "static" section: the dispatch
// workload traced on one operation, plus the VSA corpus slice traced on the
// train input only (the ref input stays unseen, leaving whatever code it
// alone exercises cold).
func staticSections() ([]StaticSection, error) {
	out := make([]StaticSection, 0, len(vsaPrograms)+1)
	sec, err := staticOne("dispatch", dispatchSrc, []machine.Input{{Ints: []int32{0, 5, 7}}})
	if err != nil {
		return nil, fmt.Errorf("dispatch: %w", err)
	}
	out = append(out, sec)
	for _, name := range vsaPrograms {
		p, ok := progs.ByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown static program %q", name)
		}
		p = bench.Scaled(p, staticScale)
		sec, err := staticOne(p.Name, p.Src, []machine.Input{p.Train})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		out = append(out, sec)
	}
	return out, nil
}

// staticOne lifts one program with static recovery from the given partial
// trace and collects the discovery and admission counters.
func staticOne(name, src string, inputs []machine.Input) (StaticSection, error) {
	img, err := gen.Build(src, gen.GCC12O3, name)
	if err != nil {
		return StaticSection{}, fmt.Errorf("build: %w", err)
	}
	pl, err := refined(img, progs.Program{Name: name, Src: src, Train: inputs[0], Ref: inputs[len(inputs)-1]},
		core.Options{Lint: core.LintWarn, StaticRecover: true})
	if err != nil {
		return StaticSection{}, err
	}
	sec := StaticSection{Program: name}
	if pl.Cold == nil {
		return sec, nil
	}
	sec.Seeds = pl.Cold.Seeds
	sec.Candidates = len(pl.ColdStats)
	for _, st := range pl.ColdStats {
		if st.Admitted {
			sec.Admitted++
		}
		sec.Funcs = append(sec.Funcs, StaticFunc{
			Func:       st.Func,
			Admitted:   st.Admitted,
			Reason:     st.Reason,
			AnalysisMs: round2(st.Elapsed.Seconds() * 1000),
		})
	}
	sec.Rejected = sec.Seeds - sec.Admitted
	return sec, nil
}

// writeStatic merges a freshly measured "static" section into the artifact,
// leaving the other sections untouched.
func writeStatic(path string) error {
	sections, err := staticSections()
	if err != nil {
		return err
	}
	f, err := readArtifact(path)
	if err != nil {
		return err
	}
	f.Static = sections
	return writeArtifact(path, f, fmt.Sprintf("static section for %d programs", len(sections)))
}
