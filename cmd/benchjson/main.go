// Command benchjson converts `go test -bench` output (on stdin) into a JSON
// artifact tracking the interpreter/emulator micro-benchmarks. The output
// file keeps two sections: "baseline", written once (or refreshed with
// -set-baseline) to pin the pre-optimization numbers, and "current",
// overwritten on every run. When both are present a "speedup" section
// reports baseline/current per benchmark.
//
// With -vsa the tool ignores stdin and instead measures the value-set
// analysis on a pointer-heavy slice of the benchmark corpus — per-function
// analysis wall time plus the optimizer's promoted-slot counts with and
// without the alias oracle — and merges the result into the artifact's
// "vsa" section.
//
// With -static the tool likewise ignores stdin and measures static
// cold-code recovery under partial trace coverage: how many cold candidates
// discovery finds, how many the VSA admission gate accepts, and each
// function's analysis cost. The result lands in the artifact's "static"
// section.
//
// With -stream the tool measures the streaming trace→lift pipeline against
// the phase-barriered one — end-to-end wall clock in both modes, bounded-
// channel record traffic, and how long refinement overlapped the still-
// running trace — and merges the result into the artifact's "stream"
// section (conventionally BENCH_stream.json).
//
// Usage:
//
//	go test -bench=. -benchtime=1x ./... | benchjson -o BENCH_interp.json
//	go test -bench=. ./... | benchjson -o BENCH_interp.json -set-baseline
//	benchjson -vsa -o BENCH_interp.json
//	benchjson -static -o BENCH_interp.json
//	benchjson -stream -o BENCH_stream.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Metrics is one benchmark's parsed result line.
type Metrics struct {
	NsPerOp     float64 `json:"ns_per_op"`              // wall time per iteration
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"` // heap bytes per iteration
	AllocsPerOp int64   `json:"allocs_per_op"`          // allocations per iteration
	Iterations  int64   `json:"iterations,omitempty"`   // iteration count of the run
}

// File is the on-disk artifact layout.
type File struct {
	Baseline map[string]Metrics `json:"baseline,omitempty"` // pinned pre-optimization numbers
	Current  map[string]Metrics `json:"current"`            // latest run's numbers
	Speedup  map[string]float64 `json:"speedup,omitempty"`  // baseline/current per benchmark
	VSA      []VSASection       `json:"vsa,omitempty"`      // value-set analysis measurements
	Static   []StaticSection    `json:"static,omitempty"`   // cold-code recovery measurements
	Stream   []StreamSection    `json:"stream,omitempty"`   // streaming-pipeline measurements
}

// readArtifact loads an existing artifact, or an empty one if absent.
func readArtifact(path string) (*File, error) {
	var f File
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &f); err != nil {
			return nil, fmt.Errorf("existing %s: %v", path, err)
		}
	}
	return &f, nil
}

// writeArtifact marshals and writes the artifact, logging what was merged.
func writeArtifact(path string, f *File, what string) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("benchjson: %s -> %s\n", what, path)
	return nil
}

func main() {
	out := flag.String("o", "BENCH_interp.json", "output JSON file (merged if it exists)")
	setBaseline := flag.Bool("set-baseline", false, "record this run as the baseline instead of the current numbers")
	vsaFlag := flag.Bool("vsa", false, "measure the value-set analysis (cost and promoted slots) instead of reading bench output")
	staticFlag := flag.Bool("static", false, "measure static cold-code recovery (candidates, admissions, analysis cost) instead of reading bench output")
	streamFlag := flag.Bool("stream", false, "measure the streaming pipeline (wall clock, record traffic, trace/refine overlap) instead of reading bench output")
	flag.Parse()

	if *vsaFlag {
		if err := writeVSA(*out); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *staticFlag {
		if err := writeStatic(*out); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *streamFlag {
		if err := writeStream(*out); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	}

	parsed, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(parsed) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	var f File
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &f); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: existing %s: %v\n", *out, err)
			os.Exit(1)
		}
	}
	if *setBaseline {
		f.Baseline = parsed
	} else {
		f.Current = parsed
	}
	f.Speedup = nil
	if len(f.Baseline) > 0 && len(f.Current) > 0 {
		f.Speedup = make(map[string]float64)
		for name, base := range f.Baseline {
			if cur, ok := f.Current[name]; ok && cur.NsPerOp > 0 {
				f.Speedup[name] = round2(base.NsPerOp / cur.NsPerOp)
			}
		}
	}
	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: %d benchmarks -> %s\n", len(parsed), *out)
}

func round2(x float64) float64 { return float64(int64(x*100+0.5)) / 100 }

// writeVSA merges a freshly measured "vsa" section into the artifact,
// leaving the benchmark sections untouched.
func writeVSA(path string) error {
	sections, err := vsaSections()
	if err != nil {
		return err
	}
	var f File
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &f); err != nil {
			return fmt.Errorf("existing %s: %v", path, err)
		}
	}
	f.VSA = sections
	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("benchjson: vsa section for %d programs -> %s\n", len(sections), path)
	return nil
}

// parse extracts benchmark result lines ("BenchmarkX-8  N  T ns/op ...")
// from mixed go-test output.
func parse(src *os.File) (map[string]Metrics, error) {
	out := make(map[string]Metrics)
	sc := bufio.NewScanner(src)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i] // strip the GOMAXPROCS suffix
		}
		var m Metrics
		m.Iterations, _ = strconv.ParseInt(fields[1], 10, 64)
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			val, unit := fields[i], fields[i+1]
			switch unit {
			case "ns/op":
				f, err := strconv.ParseFloat(val, 64)
				if err != nil {
					return nil, fmt.Errorf("bad ns/op %q for %s", val, name)
				}
				m.NsPerOp = f
				ok = true
			case "B/op":
				m.BytesPerOp, _ = strconv.ParseInt(val, 10, 64)
			case "allocs/op":
				m.AllocsPerOp, _ = strconv.ParseInt(val, 10, 64)
			}
		}
		if ok {
			out[name] = m
		}
	}
	return out, sc.Err()
}
