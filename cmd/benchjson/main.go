// Command benchjson converts `go test -bench` output (on stdin) into a JSON
// artifact tracking the interpreter/emulator micro-benchmarks. The output
// file keeps two sections: "baseline", written once (or refreshed with
// -set-baseline) to pin the pre-optimization numbers, and "current",
// overwritten on every run.
//
// Sampling is first-class: feed the tool a multi-sample run (`go test
// -bench=. -count=5`) and each benchmark's entry reports the minimum,
// mean, standard deviation and maximum across samples plus the sample
// count. The minimum is the headline ns_per_op — on a noisy shared box,
// scheduler interference only ever adds time, so the smallest sample is
// the least-contaminated estimate of the true cost (the same reasoning as
// Python's timeit). The mean and standard deviation are reported alongside
// so the spread is visible rather than hidden.
//
// The artifact records which protocol produced it in its "mode" field:
//
//   - "full" (-mode full): every benchmark must carry at least 3 samples;
//     the tool refuses to publish otherwise. Only full artifacts get a
//     "speedup" section (baseline ns_per_op / current ns_per_op).
//   - "smoke" (-mode smoke, the default): any sample count is accepted —
//     CI's 1-iteration crash check — but the speedup section is dropped:
//     1-iteration timings are noise and ratios computed from them are
//     disinformation.
//
// With -check the tool instead validates an existing artifact (structure,
// required benchmarks, sample-count/mode consistency) and exits non-zero
// on malformed or missing fields, so CI fails instead of publishing junk.
//
// With -vsa the tool ignores stdin and instead measures the value-set
// analysis on a pointer-heavy slice of the benchmark corpus — per-function
// analysis wall time plus the optimizer's promoted-slot counts with and
// without the alias oracle — and merges the result into the artifact's
// "vsa" section.
//
// With -types the tool ignores stdin and measures the type-recovery stage
// on an aggregate-heavy slice of the corpus — per-function inference wall
// time, typed-slot coverage, precision/recall against the compiler's
// declared slot types, and the optimizer's promoted-slot counts with and
// without the typed slot splitter — and merges the result into the
// artifact's "types" section.
//
// With -static the tool likewise ignores stdin and measures static
// cold-code recovery under partial trace coverage: how many cold candidates
// discovery finds, how many the VSA admission gate accepts, and each
// function's analysis cost. The result lands in the artifact's "static"
// section.
//
// With -stream the tool measures the streaming trace→lift pipeline against
// the phase-barriered one — end-to-end wall clock in both modes, bounded-
// channel record traffic, and how long refinement overlapped the still-
// running trace — and merges the result into the artifact's "stream"
// section (conventionally BENCH_stream.json).
//
// With -guards the tool re-measures the sanitizer-overhead ratios (the
// Table 1 extension): unsanitized vs sanitized vs sanitized-with-VSA-guard-
// elision cycle counts, merged into the artifact's "guards" section.
//
// With -serve the tool measures the recompilation daemon (internal/serve):
// each program is submitted twice against a freshly started daemon with an
// empty cache — the cold submission runs the full pipeline, the warm repeat
// is answered from the shared response cache — and the cold/warm latencies,
// speedup and hit rates land in the artifact's "serve" section
// (conventionally BENCH_serve.json).
//
// Usage:
//
//	go test -bench=. -count=5 ./... | benchjson -mode full -o BENCH_interp.json
//	go test -bench=. -benchtime=1x ./... | benchjson -mode smoke -o /tmp/smoke.json
//	benchjson -check -o BENCH_interp.json
//	benchjson -vsa -o BENCH_interp.json
//	benchjson -types -o BENCH_interp.json
//	benchjson -static -o BENCH_interp.json
//	benchjson -guards -o BENCH_interp.json
//	benchjson -stream -o BENCH_stream.json
//	benchjson -serve -o BENCH_serve.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// minSamples is the sample count below which timing ratios are considered
// noise: full-mode artifacts require it, and the checker rejects speedup
// sections computed from fewer current-side samples.
const minSamples = 3

// requiredBenchmarks must be present in a valid artifact's current
// section; they are the numbers the project's acceptance criteria track.
var requiredBenchmarks = []string{"BenchmarkStep", "BenchmarkRun"}

// Metrics is one benchmark's aggregate over all samples of a run.
type Metrics struct {
	NsPerOp       float64 `json:"ns_per_op"`                  // minimum across samples (least scheduler-contaminated)
	MeanNsPerOp   float64 `json:"mean_ns_per_op,omitempty"`   // mean across samples
	StddevNsPerOp float64 `json:"stddev_ns_per_op,omitempty"` // sample standard deviation (0 for a single sample)
	MaxNsPerOp    float64 `json:"max_ns_per_op,omitempty"`    // maximum across samples
	Samples       int     `json:"samples"`                    // number of samples aggregated
	BytesPerOp    int64   `json:"bytes_per_op,omitempty"`     // heap bytes per iteration (fastest sample)
	AllocsPerOp   int64   `json:"allocs_per_op"`              // allocations per iteration (fastest sample)
	Iterations    int64   `json:"iterations,omitempty"`       // iteration count of the fastest sample
}

// File is the on-disk artifact layout.
type File struct {
	Mode     string             `json:"mode,omitempty"`     // "full" (≥3 samples, speedups) or "smoke" (crash check, no speedups)
	Baseline map[string]Metrics `json:"baseline,omitempty"` // pinned pre-optimization numbers
	Current  map[string]Metrics `json:"current"`            // latest run's numbers
	Speedup  map[string]float64 `json:"speedup,omitempty"`  // baseline/current per benchmark; full mode only
	VSA      []VSASection       `json:"vsa,omitempty"`      // value-set analysis measurements
	Types    []TypeSection      `json:"types,omitempty"`    // type-recovery measurements
	Static   []StaticSection    `json:"static,omitempty"`   // cold-code recovery measurements
	Stream   []StreamSection    `json:"stream,omitempty"`   // streaming-pipeline measurements
	Guards   []GuardSection     `json:"guards,omitempty"`   // sanitizer guard-elision measurements
	Serve    []ServeSection     `json:"serve,omitempty"`    // recompilation-daemon measurements
}

// readArtifact loads an existing artifact, or an empty one if absent.
func readArtifact(path string) (*File, error) {
	var f File
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &f); err != nil {
			return nil, fmt.Errorf("existing %s: %v", path, err)
		}
	}
	return &f, nil
}

// writeArtifact marshals and writes the artifact, logging what was merged.
func writeArtifact(path string, f *File, what string) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("benchjson: %s -> %s\n", what, path)
	return nil
}

func main() {
	out := flag.String("o", "BENCH_interp.json", "output JSON file (merged if it exists)")
	mode := flag.String("mode", "smoke", `sampling protocol: "full" requires ≥3 samples per benchmark and computes speedups; "smoke" accepts anything and suppresses them`)
	setBaseline := flag.Bool("set-baseline", false, "record this run as the baseline instead of the current numbers")
	check := flag.Bool("check", false, "validate the artifact named by -o instead of writing; exit non-zero on malformed or missing fields")
	vsaFlag := flag.Bool("vsa", false, "measure the value-set analysis (cost and promoted slots) instead of reading bench output")
	typesFlag := flag.Bool("types", false, "measure the type-recovery stage (cost, accuracy, promoted slots) instead of reading bench output")
	staticFlag := flag.Bool("static", false, "measure static cold-code recovery (candidates, admissions, analysis cost) instead of reading bench output")
	streamFlag := flag.Bool("stream", false, "measure the streaming pipeline (wall clock, record traffic, trace/refine overlap) instead of reading bench output")
	guardsFlag := flag.Bool("guards", false, "measure sanitizer overhead with and without VSA guard elision instead of reading bench output")
	serveFlag := flag.Bool("serve", false, "measure the recompilation daemon (cold vs warm latency, hit rates) instead of reading bench output")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	switch {
	case *check:
		if err := checkArtifact(*out); err != nil {
			fail(fmt.Errorf("%s: %v", *out, err))
		}
		fmt.Printf("benchjson: %s is well-formed\n", *out)
		return
	case *vsaFlag:
		if err := writeVSA(*out); err != nil {
			fail(err)
		}
		return
	case *typesFlag:
		if err := writeTypes(*out); err != nil {
			fail(err)
		}
		return
	case *staticFlag:
		if err := writeStatic(*out); err != nil {
			fail(err)
		}
		return
	case *streamFlag:
		if err := writeStream(*out); err != nil {
			fail(err)
		}
		return
	case *guardsFlag:
		if err := writeGuards(*out); err != nil {
			fail(err)
		}
		return
	case *serveFlag:
		if err := writeServe(*out); err != nil {
			fail(err)
		}
		return
	}

	if *mode != "full" && *mode != "smoke" {
		fail(fmt.Errorf("unknown -mode %q (want full or smoke)", *mode))
	}
	parsed, err := parse(os.Stdin)
	if err != nil {
		fail(err)
	}
	if len(parsed) == 0 {
		fail(fmt.Errorf("no benchmark lines on stdin"))
	}
	if *mode == "full" {
		var short []string
		for name, m := range parsed {
			if m.Samples < minSamples {
				short = append(short, fmt.Sprintf("%s (%d)", name, m.Samples))
			}
		}
		if len(short) > 0 {
			sort.Strings(short)
			fail(fmt.Errorf("full mode requires ≥%d samples per benchmark; short: %s — run with -count=%d or use -mode smoke",
				minSamples, strings.Join(short, ", "), minSamples))
		}
	}

	f, err := readArtifact(*out)
	if err != nil {
		fail(err)
	}
	if *setBaseline {
		f.Baseline = parsed
	} else {
		f.Current = parsed
	}
	f.Mode = *mode
	// Speedups only from a full-protocol run: ratios of 1-iteration smoke
	// samples are noise, and publishing them as "speedup" is how the old
	// artifact ended up claiming 0.01×–0.19× regressions that were pure
	// measurement error.
	f.Speedup = nil
	if *mode == "full" && len(f.Baseline) > 0 && len(f.Current) > 0 {
		f.Speedup = make(map[string]float64)
		for name, base := range f.Baseline {
			if cur, ok := f.Current[name]; ok && cur.NsPerOp > 0 && cur.Samples >= minSamples {
				f.Speedup[name] = round2(base.NsPerOp / cur.NsPerOp)
			}
		}
	}
	if err := writeArtifact(*out, f, fmt.Sprintf("%d benchmarks (%s mode)", len(parsed), *mode)); err != nil {
		fail(err)
	}
}

// checkArtifact validates an artifact's structure: CI runs this so a junk
// or truncated file fails the build instead of being published.
func checkArtifact(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("not valid JSON: %v", err)
	}
	// A serve-only artifact (conventionally BENCH_serve.json) carries no
	// benchmark sections; validate just the daemon measurements.
	if len(f.Current) == 0 && len(f.Serve) > 0 {
		return checkServeSections(f.Serve)
	}
	if f.Mode != "full" && f.Mode != "smoke" {
		return fmt.Errorf(`missing or unknown "mode" %q (want "full" or "smoke")`, f.Mode)
	}
	if len(f.Current) == 0 {
		return fmt.Errorf(`empty "current" section`)
	}
	for _, name := range requiredBenchmarks {
		if _, ok := f.Current[name]; !ok {
			return fmt.Errorf("current section is missing %s", name)
		}
	}
	for name, m := range f.Current {
		if m.NsPerOp <= 0 {
			return fmt.Errorf("current %s: ns_per_op %v is not positive", name, m.NsPerOp)
		}
		if m.Samples < 1 {
			return fmt.Errorf("current %s: missing samples count", name)
		}
		if m.Iterations < 1 {
			return fmt.Errorf("current %s: missing iterations", name)
		}
		if f.Mode == "full" {
			if m.Samples < minSamples {
				return fmt.Errorf("current %s: full-mode artifact with only %d samples", name, m.Samples)
			}
			if m.MeanNsPerOp <= 0 {
				return fmt.Errorf("current %s: full-mode artifact without mean_ns_per_op", name)
			}
		}
	}
	for name, m := range f.Baseline {
		if m.NsPerOp <= 0 {
			return fmt.Errorf("baseline %s: ns_per_op %v is not positive", name, m.NsPerOp)
		}
	}
	if len(f.Speedup) > 0 {
		if f.Mode != "full" {
			return fmt.Errorf(`"speedup" section present in a %q-mode artifact — smoke ratios are noise`, f.Mode)
		}
		for name, r := range f.Speedup {
			if r <= 0 {
				return fmt.Errorf("speedup %s: ratio %v is not positive", name, r)
			}
			base, okB := f.Baseline[name]
			cur, okC := f.Current[name]
			if !okB || !okC {
				return fmt.Errorf("speedup %s: benchmark missing from baseline or current", name)
			}
			if cur.Samples < minSamples {
				return fmt.Errorf("speedup %s: computed from %d samples (<%d)", name, cur.Samples, minSamples)
			}
			if want := round2(base.NsPerOp / cur.NsPerOp); math.Abs(want-r) > 0.01 {
				return fmt.Errorf("speedup %s: %v does not match baseline/current = %v", name, r, want)
			}
		}
	}
	for _, sec := range f.Types {
		if sec.Program == "" {
			return fmt.Errorf("types section entry missing program")
		}
		if sec.TypedSlots > sec.TotalSlots {
			return fmt.Errorf("types %s: typed %d exceeds total %d", sec.Program, sec.TypedSlots, sec.TotalSlots)
		}
		if sec.Precision < 0 || sec.Precision > 1 || sec.Recall < 0 || sec.Recall > 1 {
			return fmt.Errorf("types %s: precision/recall out of [0,1]", sec.Program)
		}
		if sec.PromotedTyped < sec.PromotedBaseline {
			return fmt.Errorf("types %s: typed splitting lost promotions (%d < %d)",
				sec.Program, sec.PromotedTyped, sec.PromotedBaseline)
		}
	}
	for _, sec := range f.Guards {
		if sec.Program == "" || sec.PlainCycles == 0 {
			return fmt.Errorf("guards section entry missing program or cycles")
		}
		if sec.Elided > sec.Guards {
			return fmt.Errorf("guards %s: elided %d exceeds recognized %d", sec.Program, sec.Elided, sec.Guards)
		}
	}
	return checkServeSections(f.Serve)
}

// checkServeSections validates a "serve" section: the warm path must
// actually be warm — below the cold latency, fully cache-served — or the
// artifact is advertising a daemon that does nothing.
func checkServeSections(secs []ServeSection) error {
	for _, sec := range secs {
		if sec.Program == "" {
			return fmt.Errorf("serve section entry missing program")
		}
		if sec.ColdMs <= 0 || sec.WarmMs <= 0 {
			return fmt.Errorf("serve %s: non-positive latency (cold %v, warm %v)",
				sec.Program, sec.ColdMs, sec.WarmMs)
		}
		if sec.WarmMs >= sec.ColdMs {
			return fmt.Errorf("serve %s: warm latency %.2fms is not below cold %.2fms",
				sec.Program, sec.WarmMs, sec.ColdMs)
		}
		if sec.WarmHitRate != 1 {
			return fmt.Errorf("serve %s: warm hit rate %v, want 1", sec.Program, sec.WarmHitRate)
		}
		if sec.FuncMisses <= 0 {
			return fmt.Errorf("serve %s: cold run reports no function computations", sec.Program)
		}
	}
	return nil
}

func round2(x float64) float64 { return float64(int64(x*100+0.5)) / 100 }

// writeVSA merges a freshly measured "vsa" section into the artifact,
// leaving the benchmark sections untouched.
func writeVSA(path string) error {
	sections, err := vsaSections()
	if err != nil {
		return err
	}
	f, err := readArtifact(path)
	if err != nil {
		return err
	}
	f.VSA = sections
	return writeArtifact(path, f, fmt.Sprintf("vsa section for %d programs", len(sections)))
}

// sample is one parsed benchmark result line.
type sample struct {
	ns     float64
	iters  int64
	bytes  int64
	allocs int64
}

// parse extracts benchmark result lines ("BenchmarkX-8  N  T ns/op ...")
// from mixed go-test output and aggregates repeated runs of the same
// benchmark (as produced by -count=N) into per-benchmark sample sets.
func parse(src *os.File) (map[string]Metrics, error) {
	samples := make(map[string][]sample)
	sc := bufio.NewScanner(src)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i] // strip the GOMAXPROCS suffix
		}
		var s sample
		s.iters, _ = strconv.ParseInt(fields[1], 10, 64)
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			val, unit := fields[i], fields[i+1]
			switch unit {
			case "ns/op":
				f, err := strconv.ParseFloat(val, 64)
				if err != nil {
					return nil, fmt.Errorf("bad ns/op %q for %s", val, name)
				}
				s.ns = f
				ok = true
			case "B/op":
				s.bytes, _ = strconv.ParseInt(val, 10, 64)
			case "allocs/op":
				s.allocs, _ = strconv.ParseInt(val, 10, 64)
			}
		}
		if ok {
			samples[name] = append(samples[name], s)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make(map[string]Metrics, len(samples))
	for name, ss := range samples {
		out[name] = aggregate(ss)
	}
	return out, nil
}

// aggregate folds one benchmark's samples into its artifact entry.
func aggregate(ss []sample) Metrics {
	best := ss[0]
	sum, max := 0.0, ss[0].ns
	for _, s := range ss {
		sum += s.ns
		if s.ns < best.ns {
			best = s
		}
		if s.ns > max {
			max = s.ns
		}
	}
	mean := sum / float64(len(ss))
	var dev float64
	if len(ss) > 1 {
		for _, s := range ss {
			dev += (s.ns - mean) * (s.ns - mean)
		}
		dev = math.Sqrt(dev / float64(len(ss)-1))
	}
	return Metrics{
		NsPerOp:       best.ns,
		MeanNsPerOp:   round2(mean),
		StddevNsPerOp: round2(dev),
		MaxNsPerOp:    max,
		Samples:       len(ss),
		BytesPerOp:    best.bytes,
		AllocsPerOp:   best.allocs,
		Iterations:    best.iters,
	}
}
