package main

import (
	"fmt"
	"sync"
	"time"

	"wytiwyg/internal/bench"
	"wytiwyg/internal/bench/progs"
	"wytiwyg/internal/core"
	"wytiwyg/internal/machine"
	"wytiwyg/internal/minicc/gen"
	"wytiwyg/internal/obj"
)

// The -stream mode measures the streaming trace→lift pipeline against the
// phase-barriered one: end-to-end wall clock in both modes, the record
// traffic through the bounded channel, and — the point of the exercise —
// how long the refinement stages ran while tracing was still in flight
// (overlap). The numbers land in the artifact's "stream" section.

// streamPrograms is the measured corpus slice: loop-heavy workloads whose
// ref input traces long enough for refine-ahead to start inside the trace.
var streamPrograms = []string{"bzip2", "hmmer", "libquantum"}

// streamScale is the ref-input scale for the measured runs: large enough
// for a visible trace phase, small enough for CI.
const streamScale = 12

// StreamSection is one program's streaming measurements.
type StreamSection struct {
	Program string `json:"program"` // benchmark name
	// BarrieredMs and StreamedMs are the end-to-end lift+refine wall
	// clocks of the two modes; OverlapMs is the wall-clock span during
	// which a refinement stage and the trace stage ran concurrently in the
	// streamed run (0 when no refine-ahead launched or it started after
	// the trace drained).
	BarrieredMs float64 `json:"barriered_ms"`
	StreamedMs  float64 `json:"streamed_ms"` // see BarrieredMs
	OverlapMs   float64 `json:"overlap_ms"`  // see BarrieredMs
	// Records, Blocks and Closes mirror core.StreamStats.
	Records int `json:"records"`
	Blocks  int `json:"blocks"` // see Records
	Closes  int `json:"closes"` // see Records
	// Speculated and Adopted report the refine-ahead outcome.
	Speculated bool `json:"speculated"`
	Adopted    bool `json:"adopted"` // see Speculated
}

// stampLog records stage events with wall-clock stamps; it is the
// goroutine-safe Observer the overlap measurement hangs off.
type stampLog struct {
	mu     sync.Mutex
	stamps map[string]time.Time
}

func (l *stampLog) observe(e core.StageEvent) {
	l.mu.Lock()
	defer l.mu.Unlock()
	key := e.Stage + "/" + e.Action
	if _, seen := l.stamps[key]; !seen {
		l.stamps[key] = time.Now()
	}
}

// overlap returns how long any refinement stage ran before the trace stage
// finished.
func (l *stampLog) overlap() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	traceEnd, ok := l.stamps["trace/finish"]
	if !ok {
		return 0
	}
	var best time.Duration
	for _, stage := range []string{"regsave", "varargs", "stackref", "symbolize", "vsa"} {
		if start, ok := l.stamps[stage+"/start"]; ok && start.Before(traceEnd) {
			if d := traceEnd.Sub(start); d > best {
				best = d
			}
		}
	}
	return best
}

// streamSections measures every program in both modes.
func streamSections() ([]StreamSection, error) {
	out := make([]StreamSection, 0, len(streamPrograms))
	for _, name := range streamPrograms {
		p, ok := progs.ByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown stream program %q", name)
		}
		sec, err := streamOne(bench.Scaled(p, streamScale))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		out = append(out, sec)
	}
	return out, nil
}

// refineWall runs lift+refine once and returns the wall clock.
func refineWall(img *obj.Image, inputs []machine.Input, opts core.Options) (time.Duration, *core.Pipeline, error) {
	start := time.Now()
	p, err := core.LiftBinaryOpts(img, inputs, opts)
	if err != nil {
		return 0, nil, err
	}
	if err := p.Refine(); err != nil {
		return 0, nil, err
	}
	return time.Since(start), p, nil
}

// streamOne measures one program: a barriered run, then a streamed run with
// a stamping observer.
func streamOne(p progs.Program) (StreamSection, error) {
	img, err := gen.Build(p.Src, gen.GCC12O3, p.Name)
	if err != nil {
		return StreamSection{}, fmt.Errorf("build: %w", err)
	}
	inputs := p.Inputs()

	barr, _, err := refineWall(img, inputs, core.Options{Lint: core.LintWarn})
	if err != nil {
		return StreamSection{}, fmt.Errorf("barriered: %w", err)
	}

	log := &stampLog{stamps: make(map[string]time.Time)}
	strm, pl, err := refineWall(img, inputs,
		core.Options{Lint: core.LintWarn, Stream: true, Observer: log.observe})
	if err != nil {
		return StreamSection{}, fmt.Errorf("streamed: %w", err)
	}

	sec := StreamSection{
		Program:     p.Name,
		BarrieredMs: roundMs(barr),
		StreamedMs:  roundMs(strm),
		OverlapMs:   roundMs(log.overlap()),
	}
	if st := pl.StreamStats; st != nil {
		sec.Records = st.Records
		sec.Blocks = st.Blocks
		sec.Closes = st.Closes
		sec.Speculated = st.Speculated
		sec.Adopted = st.Adopted
	}
	return sec, nil
}

func roundMs(d time.Duration) float64 { return round2(float64(d.Microseconds()) / 1000) }

// writeStream merges a freshly measured "stream" section into the artifact,
// leaving the other sections untouched.
func writeStream(path string) error {
	sections, err := streamSections()
	if err != nil {
		return err
	}
	f, err := readArtifact(path)
	if err != nil {
		return err
	}
	f.Stream = sections
	return writeArtifact(path, f, fmt.Sprintf("stream section for %d programs", len(sections)))
}
