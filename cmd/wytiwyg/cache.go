package main

import (
	"fmt"

	"wytiwyg/internal/core"
	"wytiwyg/internal/refcache"
)

// openCache resolves the -cache/-cache-dir flags into a cache handle, or
// nil when caching is disabled.
func openCache(enabled bool, dir string) *refcache.Cache {
	if !enabled && dir == "" {
		return nil
	}
	if dir == "" {
		d, err := refcache.DefaultDir()
		if err != nil {
			fail("cache: %v", err)
		}
		dir = d
	}
	c, err := refcache.Open(dir)
	if err != nil {
		fail("cache: %v", err)
	}
	return c
}

// printTimings prints the per-stage wall-clock breakdown of one run.
func printTimings(times []core.StageTime) {
	fmt.Println("stage timings:")
	for _, st := range times {
		fmt.Printf("  %-10s %s\n", st.Stage, st.Elapsed)
	}
}
