package main

// The serve subcommand: run the recompilation daemon. It wraps the same
// pipeline the one-shot commands use behind a local HTTP API (unix
// socket by default), multiplexes jobs onto a bounded worker pool, and
// shares the content-addressed cache across requests; see
// internal/serve and DESIGN.md §15.

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"wytiwyg/internal/serve"
)

// defaultSocket is the address `wytiwyg serve` listens on and `wytiwyg
// submit` dials when -addr is not given.
func defaultSocket() string {
	return "unix:" + filepath.Join(os.TempDir(), "wytiwyg.sock")
}

// listen resolves an -addr value into a listener: "unix:/path" for a
// unix socket (removing a stale socket file first), anything else as a
// TCP host:port.
func listen(addr string) (net.Listener, error) {
	if path, ok := strings.CutPrefix(addr, "unix:"); ok {
		if info, err := os.Stat(path); err == nil && info.Mode()&os.ModeSocket != 0 {
			os.Remove(path)
		}
		return net.Listen("unix", path)
	}
	return net.Listen("tcp", addr)
}

func serveMain(args []string) int {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", defaultSocket(), "listen address: unix:/path/to.sock or host:port")
	cacheDir := fs.String("cache-dir", "", "shared cache directory ($WYTIWYG_CACHE or the user cache directory by default)")
	jobs := fs.Int("j", 0, "per-pipeline refinement worker pool size (0 = one per CPU)")
	workers := fs.Int("workers", 0, "concurrently executing jobs (0 = one per CPU)")
	drain := fs.Duration("drain", time.Minute, "how long a signal-initiated shutdown waits for in-flight jobs")
	fs.Parse(args)

	cache := openCache(true, *cacheDir)
	l, err := listen(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wytiwyg serve: %v\n", err)
		return 1
	}
	srv := serve.New(serve.Config{Cache: cache, Jobs: *jobs, Workers: *workers})

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "wytiwyg serve: draining")
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	fmt.Printf("wytiwyg serve: listening on %s (cache %s)\n", *addr, cache.Dir())
	if err := srv.Serve(l); err != nil {
		fmt.Fprintf(os.Stderr, "wytiwyg serve: %v\n", err)
		return 1
	}
	fmt.Println("wytiwyg serve: drained, exiting")
	return 0
}
