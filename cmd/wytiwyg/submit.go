package main

// The submit subcommand: the daemon's client. It sends one job to a
// running `wytiwyg serve` and prints the response; -local runs the
// identical job in-process instead (no daemon needed), producing a
// byte-identical payload — the CI smoke test pins that equivalence.

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"wytiwyg/internal/serve"
)

func submitMain(args []string) int {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	addr := fs.String("addr", defaultSocket(), "daemon address: unix:/path/to.sock or host:port")
	kind := fs.String("kind", "recompile", "job kind: lift, lint, recompile")
	benchName := fs.String("bench", "", "built-in benchmark name (exclusive with -src)")
	srcPath := fs.String("src", "", "mini-C source file (exclusive with -bench)")
	profName := fs.String("profile", "", "compiler profile (daemon default gcc12-O3)")
	inputsFlag := fs.String("inputs", "", "comma-separated integer inputs for tracing")
	lintMode := fs.String("lint", "", "verification mode: off, warn, fail")
	vsaFlag := fs.Bool("vsa", false, "enable the value-set analysis stage")
	typesFlag := fs.Bool("types", false, "enable the type-recovery stage")
	staticFlag := fs.Bool("static-recover", false, "statically recover untraced functions")
	streamFlag := fs.Bool("stream", false, "stream the trace through the bounded-channel pipeline")
	local := fs.Bool("local", false, "run the job in-process instead of contacting a daemon")
	jobs := fs.Int("j", 0, "with -local: refinement worker pool size (0 = one per CPU)")
	cacheOn := fs.Bool("cache", false, "with -local: memoize results in the on-disk cache")
	cacheDir := fs.String("cache-dir", "", "with -local: cache directory (implies -cache)")
	jsonOut := fs.Bool("json", false, "print the payload as JSON on stdout (stats still go to stderr)")
	statsFlag := fs.Bool("stats", false, "print the daemon's counter snapshot and exit")
	ping := fs.Bool("ping", false, "check the daemon is up and exit")
	shutdown := fs.Bool("shutdown", false, "ask the daemon to drain and exit")
	fs.Parse(args)

	if *ping || *statsFlag || *shutdown {
		return controlMain(*addr, *ping, *statsFlag, *shutdown)
	}

	job := &serve.Job{
		Kind:          *kind,
		Bench:         *benchName,
		Profile:       *profName,
		Lint:          *lintMode,
		VSA:           *vsaFlag,
		Types:         *typesFlag,
		StaticRecover: *staticFlag,
		Stream:        *streamFlag,
	}
	if *srcPath != "" {
		data, err := os.ReadFile(*srcPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wytiwyg submit: read source: %v\n", err)
			return 1
		}
		job.Source = string(data)
	}
	if *inputsFlag != "" {
		for _, f := range strings.Split(*inputsFlag, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				fmt.Fprintf(os.Stderr, "wytiwyg submit: bad input %q\n", f)
				return 1
			}
			job.Inputs = append(job.Inputs, int32(v))
		}
	}

	var resp *serve.Response
	if *local {
		if err := job.Normalize(); err != nil {
			fmt.Fprintf(os.Stderr, "wytiwyg submit: %v\n", err)
			return 1
		}
		r := &serve.Runner{Jobs: *jobs, Cache: openCache(*cacheOn, *cacheDir)}
		pay, info, err := r.Run(job)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wytiwyg submit: %v\n", err)
			return 1
		}
		resp = &serve.Response{Payload: pay}
		resp.Stats.FuncHits = info.FuncHits
		resp.Stats.FuncMisses = info.FuncMisses
	} else {
		var err error
		resp, err = serve.Dial(*addr).Submit(job)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wytiwyg submit: %v\n", err)
			return 1
		}
		if resp.Error != "" {
			fmt.Fprintf(os.Stderr, "wytiwyg submit: daemon: %s\n", resp.Error)
			return 1
		}
	}
	printStats(&resp.Stats, *local)
	if err := printPayload(resp.Payload, *jsonOut); err != nil {
		fmt.Fprintf(os.Stderr, "wytiwyg submit: %v\n", err)
		return 1
	}
	if resp.Payload.Kind == serve.KindRecompile && !resp.Payload.Match {
		return 1
	}
	return 0
}

// controlMain handles the daemon-control flags (-ping, -stats,
// -shutdown), in that order of precedence.
func controlMain(addr string, ping, stats, shutdown bool) int {
	c := serve.Dial(addr)
	switch {
	case ping:
		if err := c.Health(); err != nil {
			fmt.Fprintf(os.Stderr, "wytiwyg submit: %v\n", err)
			return 1
		}
		fmt.Println("ok")
	case stats:
		st, err := c.Stats()
		if err != nil {
			fmt.Fprintf(os.Stderr, "wytiwyg submit: %v\n", err)
			return 1
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(st)
	case shutdown:
		if err := c.Shutdown(); err != nil {
			fmt.Fprintf(os.Stderr, "wytiwyg submit: %v\n", err)
			return 1
		}
		fmt.Println("draining")
	}
	return 0
}

// printPayload renders the deterministic half of a response on stdout.
// The output is a pure function of the payload — the CI smoke test
// byte-compares a daemon submission against a -local run.
func printPayload(p *serve.Payload, asJSON bool) error {
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(p)
	}
	fmt.Printf("%s %s: %d function(s) recovered\n", p.Kind, p.Program, p.Funcs)
	for _, line := range p.Layout {
		fmt.Printf("  %s\n", line)
	}
	for _, d := range p.Degraded {
		fmt.Printf("degraded: %s\n", d)
	}
	for _, d := range p.Diags {
		fmt.Printf("  %s\n", d)
	}
	fmt.Printf("lint: %d error(s), %d warning(s)\n", p.Errors, p.Warnings)
	if p.Kind == serve.KindRecompile {
		status := "MATCH"
		if !p.Match {
			status = "MISMATCH"
		}
		fmt.Printf("recovered binary: %d instructions, code digest %s\n", p.CodeLen, p.CodeDigest)
		fmt.Printf("recovered run: exit=%d cycles=%d  functionality: %s\n", p.ExitCode, p.Cycles, status)
	}
	return nil
}

// printStats renders the per-request statistics on stderr, keeping
// stdout a pure function of the payload.
func printStats(st *serve.Stats, local bool) {
	if local {
		fmt.Fprintf(os.Stderr, "stats: local run, %d func cache hit(s), %d miss(es)\n",
			st.FuncHits, st.FuncMisses)
		return
	}
	how := "executed"
	if st.Warm {
		how = "warm"
	}
	fmt.Fprintf(os.Stderr, "stats: %s, hit rate %.2f (%d func hit(s), %d miss(es)), queue depth %d, %.2fms\n",
		how, st.HitRate, st.FuncHits, st.FuncMisses, st.QueueDepth, st.TotalMs)
	for _, s := range st.Stages {
		fmt.Fprintf(os.Stderr, "  stage %-10s %8.2fms\n", s.Stage, s.Ms)
	}
}
