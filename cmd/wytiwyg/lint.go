package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"wytiwyg/internal/analysis"
	"wytiwyg/internal/bench/progs"
	"wytiwyg/internal/core"
	"wytiwyg/internal/machine"
	"wytiwyg/internal/minicc/gen"
)

// The lint subcommand: run the pipeline through refinement on one or more
// programs and print the static verification report instead of
// recompiling. Exit status 1 means at least one proven violation (Error).

func parseLintMode(s string) core.LintMode {
	switch s {
	case "off":
		return core.LintOff
	case "warn":
		return core.LintWarn
	case "fail":
		return core.LintFail
	}
	fail("unknown -lint mode %q (want off, warn, fail)", s)
	return core.LintOff
}

// lintTarget is one program to audit.
type lintTarget struct {
	name   string
	src    string
	inputs []machine.Input
}

func lintMain(args []string) int {
	fs := flag.NewFlagSet("lint", flag.ExitOnError)
	srcPath := fs.String("src", "", "mini-C source file to lint")
	benchName := fs.String("bench", "", "built-in benchmark name")
	all := fs.Bool("all", false, "lint every built-in benchmark")
	profName := fs.String("profile", "gcc12-O3", "compiler profile")
	inputsFlag := fs.String("inputs", "", "comma-separated integer inputs for tracing")
	jsonOut := fs.Bool("json", false, "machine-readable JSON output")
	vsaFlag := fs.Bool("vsa", false, "add the value-set analysis verifier's findings to the report")
	typesFlag := fs.Bool("types", false, "add the type-recovery stage's typed-conflict findings to the report")
	staticFlag := fs.Bool("static-recover", false, "statically recover untraced functions before linting")
	streamFlag := fs.Bool("stream", false, "stream the trace through the bounded-channel pipeline (byte-identical output)")
	jobs := fs.Int("j", 0, "refinement worker pool size (0 = one per CPU)")
	cacheOn := fs.Bool("cache", false, "memoize refinement results in the on-disk cache")
	cacheDir := fs.String("cache-dir", "", "cache directory (implies -cache)")
	fs.Parse(args)
	cache := openCache(*cacheOn, *cacheDir)

	prof, ok := gen.ProfileByName(*profName)
	if !ok {
		fail("unknown profile %q", *profName)
	}

	var targets []lintTarget
	switch {
	case *all:
		for _, p := range progs.All {
			targets = append(targets, lintTarget{name: p.Name, src: p.Src, inputs: p.Inputs()})
		}
	case *benchName != "":
		p, ok := progs.ByName(*benchName)
		if !ok {
			fail("unknown benchmark %q", *benchName)
		}
		targets = append(targets, lintTarget{name: p.Name, src: p.Src, inputs: p.Inputs()})
	case *srcPath != "":
		data, err := os.ReadFile(*srcPath)
		if err != nil {
			fail("read source: %v", err)
		}
		targets = append(targets, lintTarget{name: *srcPath, src: string(data)})
	default:
		fs.Usage()
		return 2
	}
	if *inputsFlag != "" {
		var inputs []machine.Input
		for _, f := range strings.Split(*inputsFlag, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				fail("bad input %q", f)
			}
			inputs = append(inputs, machine.Input{Ints: []int32{int32(v)}})
		}
		for i := range targets {
			targets[i].inputs = inputs
		}
	}

	type jsonEntry struct {
		Program  string          `json:"program"`
		Report   json.RawMessage `json:"report"`
		Degraded []degradedFn    `json:"degraded,omitempty"`
	}
	var entries []jsonEntry
	errors := 0
	for _, tgt := range targets {
		rep, err := lintOne(tgt, prof,
			core.Options{Jobs: *jobs, Lint: core.LintWarn, Cache: cache, VSA: *vsaFlag,
				Types: *typesFlag, StaticRecover: *staticFlag, Stream: *streamFlag})
		if err != nil {
			fail("%s: %v", tgt.name, err)
		}
		errors += rep.Errors()
		degraded := degradedFns(rep)
		if *jsonOut {
			raw, err := rep.JSON()
			if err != nil {
				fail("encode report: %v", err)
			}
			entries = append(entries, jsonEntry{Program: tgt.name, Report: raw, Degraded: degraded})
			continue
		}
		if len(targets) > 1 {
			fmt.Printf("== %s\n", tgt.name)
		}
		fmt.Print(rep.String())
		for _, d := range degraded {
			fmt.Printf("degraded: %s: %s\n", d.Func, d.Reason)
		}
	}
	if *jsonOut {
		out, err := json.MarshalIndent(entries, "", "  ")
		if err != nil {
			fail("encode: %v", err)
		}
		fmt.Println(string(out))
	} else if cache != nil {
		fmt.Printf("cache: %s (%s)\n", cache.Stats(), cache.Dir())
	}
	if errors > 0 {
		return 1
	}
	return 0
}

// degradedFn is one trap-stubbed function surfaced in lint output.
type degradedFn struct {
	Func   string `json:"func"`
	Reason string `json:"reason"`
}

// degradedFns extracts the degradations from a report's pipeline warnings.
// Reading them back out of the report (rather than Pipeline.Degraded) keeps
// cache-served runs — which carry only the layout and the report — accurate.
func degradedFns(rep *analysis.Report) []degradedFn {
	var out []degradedFn
	for _, d := range rep.Diags {
		if d.Check == "pipeline" && strings.Contains(d.Msg, "degraded to a trap stub") {
			out = append(out, degradedFn{Func: d.Func, Reason: d.Msg})
		}
	}
	return out
}

// lintOne builds, lifts and refines one program with linting enabled and
// returns the verification report. With a cache in the options, an
// unchanged program is served from its recorded entry without re-running
// the pipeline.
func lintOne(tgt lintTarget, prof gen.Profile, opts core.Options) (*analysis.Report, error) {
	img, err := gen.Build(tgt.src, prof, "input")
	if err != nil {
		return nil, fmt.Errorf("compile: %w", err)
	}
	p, err := core.RecoverLayout(img, tgt.inputs, opts)
	if err != nil {
		return nil, fmt.Errorf("refine: %w", err)
	}
	p.Report.Sort()
	return p.Report, nil
}
