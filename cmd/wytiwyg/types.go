package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"wytiwyg/internal/bench/progs"
	"wytiwyg/internal/core"
	"wytiwyg/internal/layout"
	"wytiwyg/internal/machine"
	"wytiwyg/internal/minicc/gen"
	"wytiwyg/internal/obj"
)

// The types subcommand: run the pipeline through refinement with the
// type-recovery stage on and print the typed frames — the closest thing
// the tool has to a decompiler view of the recovered program. With -truth
// the compiler's declared slot types are printed alongside and the typed
// precision/recall is reported.

// writeTypedTruth serializes the image's declared slot types to a JSON
// sidecar — the -emit-types artifact the accuracy evaluation consumes.
func writeTypedTruth(img *obj.Image, path string) error {
	if img.TypedTruth == nil {
		return fmt.Errorf("image carries no type ground truth (not built by minicc?)")
	}
	data, err := json.MarshalIndent(img.TypedTruth.Frames, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func typesMain(args []string) int {
	fs := flag.NewFlagSet("types", flag.ExitOnError)
	srcPath := fs.String("src", "", "mini-C source file to type")
	benchName := fs.String("bench", "", "built-in benchmark name")
	profName := fs.String("profile", "gcc12-O3", "compiler profile")
	inputsFlag := fs.String("inputs", "", "comma-separated integer inputs for tracing")
	jsonOut := fs.Bool("json", false, "machine-readable JSON output")
	truth := fs.Bool("truth", false, "print the compiler's declared types and the precision/recall score")
	jobs := fs.Int("j", 0, "refinement worker pool size (0 = one per CPU)")
	fs.Parse(args)

	prof, ok := gen.ProfileByName(*profName)
	if !ok {
		fail("unknown profile %q", *profName)
	}

	var name, src string
	var inputs []machine.Input
	switch {
	case *benchName != "":
		p, ok := progs.ByName(*benchName)
		if !ok {
			fail("unknown benchmark %q", *benchName)
		}
		name, src, inputs = p.Name, p.Src, p.Inputs()
	case *srcPath != "":
		data, err := os.ReadFile(*srcPath)
		if err != nil {
			fail("read source: %v", err)
		}
		name, src = *srcPath, string(data)
	default:
		fs.Usage()
		return 2
	}
	if *inputsFlag != "" {
		inputs = nil
		for _, f := range strings.Split(*inputsFlag, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				fail("bad input %q", f)
			}
			inputs = append(inputs, machine.Input{Ints: []int32{int32(v)}})
		}
	}

	img, err := gen.Build(src, prof, "input")
	if err != nil {
		fail("compile: %v", err)
	}
	// The cached front door (RecoverLayout) returns only the layout and
	// report; the typed frames need the full refined pipeline.
	p, err := core.LiftBinaryOpts(img, inputs,
		core.Options{Jobs: *jobs, Lint: core.LintWarn, Types: true})
	if err != nil {
		fail("lift: %v", err)
	}
	if err := p.Refine(); err != nil {
		fail("refine: %v", err)
	}

	if *jsonOut {
		out := struct {
			Program   string          `json:"program"`
			Report    json.RawMessage `json:"report"`
			Precision *float64        `json:"precision,omitempty"`
			Recall    *float64        `json:"recall,omitempty"`
		}{Program: name}
		raw, err := p.TypeReport.JSON()
		if err != nil {
			fail("encode report: %v", err)
		}
		out.Report = raw
		if *truth && img.TypedTruth != nil {
			acc := layout.CompareTyped(img.TypedTruth, p.Typed)
			pr, rc := acc.Precision(), acc.Recall()
			out.Precision, out.Recall = &pr, &rc
		}
		enc, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fail("encode: %v", err)
		}
		fmt.Println(string(enc))
		return 0
	}

	fmt.Print(p.TypeReport.String())
	if *truth {
		if img.TypedTruth == nil {
			fail("image carries no type ground truth")
		}
		fmt.Println("compiler ground truth:")
		for _, fn := range img.TypedTruth.FuncNames() {
			fr := img.TypedTruth.Frame(fn)
			if len(fr.Vars) == 0 || p.Mod.FuncByName(fn) == nil {
				continue
			}
			fmt.Printf("func %s:\n", fn)
			for _, v := range fr.Vars {
				fmt.Printf("  %s@[%d,%d): %s\n", v.Name, v.Offset, v.Offset+int32(v.Size), v.Type)
			}
		}
		acc := layout.CompareTyped(img.TypedTruth, p.Typed)
		fmt.Printf("typed accuracy: %d claim(s) on %d truth slot(s), precision %.3f recall %.3f\n",
			acc.Claims, acc.TruthSlots, acc.Precision(), acc.Recall())
	}
	return 0
}
