// Command wytiwyg drives the recompilation pipeline on a single program:
// compile a mini-C source with a chosen compiler profile, trace it, lift it,
// run the refinement-lifting sequence, optimize, recompile, and compare the
// recovered binary against the original.
//
// Usage:
//
//	wytiwyg -src prog.c [-profile gcc12-O3] [-inputs 3,9] [-emit ir|asm|layout] [-sanitize]
//	wytiwyg -bench hmmer [-profile gcc44-O3] [-j 8] [-stream] [-cache] [-timings] [-vsa] [-types]
//	wytiwyg lint [-src prog.c | -bench hmmer | -all] [-json] [-j 8] [-cache] [-vsa] [-types]
//	wytiwyg types [-src prog.c | -bench hmmer] [-json] [-truth] [-j 8]
//	wytiwyg serve [-addr unix:/tmp/wytiwyg.sock] [-cache-dir DIR] [-j 8] [-workers 4]
//	wytiwyg submit [-addr ...] -kind lift|lint|recompile [-src prog.c | -bench hmmer] [-json] [-local]
//	wytiwyg submit [-addr ...] -ping | -stats | -shutdown
//
// The serve subcommand runs the pipeline as a long-lived daemon behind a
// local HTTP API (unix socket by default) with a shared on-disk cache;
// submit is its client. `submit -local` runs the identical job
// in-process and prints a byte-identical payload — see internal/serve
// and DESIGN.md §15.
//
// Steps and outputs mirror the paper's Figure 4: the tool reports the trace
// size, recovered functions, refined signatures, recovered stack layout and
// the performance of the recompiled binary. The lint subcommand runs the
// pipeline up to symbolization and prints the static verification report
// (internal/analysis) instead of recompiling.
//
// -vsa runs the value-set analysis stage after refinement: the recovered
// layout is verified against the statically provable access offsets, and
// the optimizer gains a per-function alias oracle that promotes and
// forwards address-taken stack slots the syntactic escape analysis must
// leave in memory.
//
// -types runs the type-recovery stage after refinement: every recovered
// frame slot gets a type from a small lattice (integers by width,
// pointers, arrays, structs), inferred from access widths, value-set
// stride facts and cross-call unification, and the optimizer gains a
// typed slot splitter that melts proven struct slots into promotable
// scalars. The types subcommand prints the typed frames themselves;
// -emit-types writes the compiler's declared slot types to a JSON
// sidecar for ground-truth comparison.
//
// -j bounds the refinement worker pool (0, the default, means one worker
// per CPU); every output is byte-identical regardless of the worker count.
// -cache memoizes refinement results in a content-addressed on-disk cache
// so repeat runs on unchanged binaries skip recomputation; -cache-dir
// overrides its location ($WYTIWYG_CACHE or the user cache directory by
// default). -timings prints the per-stage wall-clock breakdown.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"wytiwyg/internal/analysis"
	"wytiwyg/internal/bench/progs"
	"wytiwyg/internal/codegen"
	"wytiwyg/internal/core"
	"wytiwyg/internal/ir"
	"wytiwyg/internal/layout"
	"wytiwyg/internal/machine"
	"wytiwyg/internal/minicc/gen"
	"wytiwyg/internal/obj"
	"wytiwyg/internal/opt"
	"wytiwyg/internal/profiling"
	"wytiwyg/internal/sanitize"
	"wytiwyg/internal/symbolize"
	"wytiwyg/internal/vsa"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "lint" {
		os.Exit(lintMain(os.Args[2:]))
	}
	if len(os.Args) > 1 && os.Args[1] == "types" {
		os.Exit(typesMain(os.Args[2:]))
	}
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		os.Exit(serveMain(os.Args[2:]))
	}
	if len(os.Args) > 1 && os.Args[1] == "submit" {
		os.Exit(submitMain(os.Args[2:]))
	}
	srcPath := flag.String("src", "", "mini-C source file to recompile")
	benchName := flag.String("bench", "", "built-in benchmark name (alternative to -src)")
	profName := flag.String("profile", "gcc12-O3", "compiler profile: gcc12-O3, gcc12-O0, clang16-O3, gcc44-O3")
	inputsFlag := flag.String("inputs", "", "comma-separated integer inputs for tracing/validation")
	emit := flag.String("emit", "", "additionally print: ir, asm, layout")
	sanitizeFlag := flag.Bool("sanitize", false, "retrofit stack-bounds checks onto the recompiled binary")
	sanElide := flag.Bool("sanitize-elide", false, "with -sanitize: let the value-set analysis elide provably redundant bounds checks")
	lintMode := flag.String("lint", "warn", "post-refinement verification: off, warn, fail")
	vsaFlag := flag.Bool("vsa", false, "run the value-set analysis stage: verify the layout and enable alias-oracle optimizations")
	typesFlag := flag.Bool("types", false, "run the type-recovery stage: infer slot types and enable typed slot splitting in the optimizer")
	emitTypes := flag.String("emit-types", "", "write the compiler's declared slot types (ground truth) to this JSON file")
	staticFlag := flag.Bool("static-recover", false, "statically recover untraced functions, admitting only VSA-verified layouts")
	debugPasses := flag.Bool("debug-passes", false, "re-verify IR invariants between every optimization pass")
	streamFlag := flag.Bool("stream", false, "stream the trace through the bounded-channel pipeline, overlapping tracing with lifting and refinement (output is byte-identical)")
	jobs := flag.Int("j", 0, "refinement worker pool size (0 = one per CPU)")
	cacheOn := flag.Bool("cache", false, "memoize refinement results in the on-disk cache")
	cacheDir := flag.String("cache-dir", "", "cache directory (implies -cache)")
	timings := flag.Bool("timings", false, "print the per-stage wall-clock breakdown")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	stopProf, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fail("%v", err)
	}
	defer stopProf()

	prof, ok := gen.ProfileByName(*profName)
	if !ok {
		fail("unknown profile %q", *profName)
	}
	lint := parseLintMode(*lintMode)
	cache := openCache(*cacheOn, *cacheDir)

	var src string
	var inputs []machine.Input
	switch {
	case *benchName != "":
		p, ok := progs.ByName(*benchName)
		if !ok {
			fail("unknown benchmark %q", *benchName)
		}
		src = p.Src
		inputs = p.Inputs()
	case *srcPath != "":
		data, err := os.ReadFile(*srcPath)
		if err != nil {
			fail("read source: %v", err)
		}
		src = string(data)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if *inputsFlag != "" {
		inputs = nil
		for _, f := range strings.Split(*inputsFlag, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				fail("bad input %q", f)
			}
			inputs = append(inputs, machine.Input{Ints: []int32{int32(v)}})
		}
	}
	if len(inputs) == 0 {
		inputs = []machine.Input{{}}
	}

	img, err := gen.Build(src, prof, "input")
	if err != nil {
		fail("compile: %v", err)
	}
	fmt.Printf("input binary: %d instructions, profile %s\n", len(img.Code), prof.Name)

	var nativeOut bytes.Buffer
	nat, err := machine.Execute(img, inputs[len(inputs)-1], &nativeOut)
	if err != nil {
		fail("native run: %v", err)
	}
	fmt.Printf("native run: exit=%d cycles=%d\n", nat.ExitCode, nat.Cycles)

	if *emitTypes != "" {
		if err := writeTypedTruth(img, *emitTypes); err != nil {
			fail("emit-types: %v", err)
		}
		fmt.Printf("emit-types: wrote ground truth to %s\n", *emitTypes)
	}

	p, err := core.LiftBinaryOpts(img, inputs,
		core.Options{Jobs: *jobs, Lint: lint, Cache: cache, VSA: *vsaFlag,
			Types: *typesFlag, StaticRecover: *staticFlag, Stream: *streamFlag})
	if err != nil {
		fail("lift: %v", err)
	}
	fmt.Printf("trace: %d instructions covered, %d functions recovered, %d tail calls\n",
		len(p.Trace.Executed), len(p.Rec.Funcs), len(p.Rec.TailCalls))

	if err := p.Refine(); err != nil {
		fail("refinement lifting: %v", err)
	}
	fmt.Printf("refined: emulated stack removed, %d functions symbolized\n", len(p.Mod.Funcs))
	for _, f := range p.Mod.Funcs {
		fmt.Printf("  %-20s %2d params (%d from the stack)\n", f.Name, len(f.Params), f.StackArgs)
	}
	degraded := make([]string, 0, len(p.Degraded))
	for name := range p.Degraded {
		degraded = append(degraded, name)
	}
	sort.Strings(degraded)
	for _, name := range degraded {
		fmt.Printf("degraded: %s replaced by a trap stub (%v)\n", name, p.Degraded[name])
	}
	if p.Report != nil {
		fmt.Printf("lint: %d error(s), %d warning(s), %d info\n",
			p.Report.Errors(), p.Report.Count(analysis.Warn), p.Report.Count(analysis.Info))
	}
	if *streamFlag {
		printStreamStats(p.StreamStats, *timings)
	}
	if *vsaFlag {
		printVSAStats(p.VSAStats, *timings)
	}
	if *typesFlag {
		printTypeStats(p, *timings)
	}
	if *staticFlag {
		printStaticStats(p, *timings)
	}
	if *timings {
		printTimings(p.Times)
	}
	if cache != nil {
		fmt.Printf("cache: %s (%s)\n", cache.Stats(), cache.Dir())
	}

	if *sanitizeFlag {
		checks := sanitize.Apply(p.Mod)
		fmt.Printf("sanitizer: %d stack-bounds checks inserted\n", checks)
	}
	pipeOpts := opt.PipelineOpts{Oracle: p.Oracle(), Typed: p.TypedInfo()}
	if *debugPasses {
		if _, err := opt.PipelineWithDebug(p.Mod, pipeOpts, func(pass string) error {
			var rep analysis.Report
			analysis.LintIR(p.Mod, &rep)
			if rep.Errors() > 0 {
				return fmt.Errorf("after pass %s:\n%s", pass, rep.String())
			}
			return nil
		}); err != nil {
			fail("debug-passes: %v", err)
		}
	} else {
		opt.PipelineWith(p.Mod, pipeOpts)
	}

	if *emit == "layout" || *emit == "ir" {
		if *emit == "ir" {
			fmt.Println(p.Mod)
		}
		rec := symbolize.RecoveredLayout(p.Mod)
		fmt.Println("recovered stack layouts (post-optimization):")
		for _, name := range rec.FuncNames() {
			fr := rec.Frame(name)
			if len(fr.Vars) > 0 {
				fmt.Printf("  %s\n", fr)
			}
		}
		if img.Truth != nil {
			fmt.Println("compiler ground truth:")
			for _, name := range img.Truth.FuncNames() {
				fr := img.Truth.Frame(name)
				if len(fr.Vars) > 0 && p.Mod.FuncByName(name) != nil {
					fmt.Printf("  %s\n", fr)
				}
			}
		}
	}

	var cgOpts codegen.Options
	var guardStats codegen.GuardStats
	if *sanElide {
		if !*sanitizeFlag {
			fail("-sanitize-elide requires -sanitize")
		}
		cgOpts.Oracle = func(f *ir.Func) codegen.BoundsOracle { return vsa.NewOracle(f) }
		cgOpts.Guards = &guardStats
	}
	out, err := codegen.CompileWith(p.Mod, "recovered", cgOpts)
	if err != nil {
		fail("recompile: %v", err)
	}
	if *sanElide {
		fmt.Printf("sanitizer: %d of %d guards proven redundant and elided\n",
			guardStats.Elided, guardStats.Guards)
	}
	fmt.Printf("recovered binary: %d instructions\n", len(out.Code))
	if *emit == "asm" {
		for i, in := range out.Code {
			fmt.Printf("%6x: %s\n", i*16+0x1000, in.String())
		}
	}

	var recOut bytes.Buffer
	rec, err := machine.Execute(out, inputs[len(inputs)-1], &recOut)
	if err != nil {
		fail("recovered run: %v", err)
	}
	status := "MATCH"
	if recOut.String() != nativeOut.String() || rec.ExitCode != nat.ExitCode {
		status = "MISMATCH"
	}
	fmt.Printf("recovered run: exit=%d cycles=%d  functionality: %s\n", rec.ExitCode, rec.Cycles, status)
	fmt.Printf("normalized runtime: %.3f (recovered / input)\n",
		float64(rec.Cycles)/float64(nat.Cycles))
	printStubRate(out, inputs)
	if status != "MATCH" {
		stopProf()
		os.Exit(1)
	}
}

// printStreamStats summarizes a streaming run. The record/block/close
// counts are deterministic (per-producer dedup makes them a function of the
// trace, not of scheduling); whether the refine-ahead speculation launched
// and was adopted is scheduling-dependent, so it is printed only under
// -timings — the default output must stay byte-identical across runs and
// worker counts (the determinism contract).
func printStreamStats(st *core.StreamStats, showSched bool) {
	if st == nil {
		return
	}
	fmt.Printf("stream: %d records (%d blocks), %d function closes", st.Records, st.Blocks, st.Closes)
	if showSched {
		switch {
		case st.Adopted:
			fmt.Printf("; refine-ahead adopted")
		case st.Speculated:
			fmt.Printf("; refine-ahead discarded")
		default:
			fmt.Printf("; no refine-ahead")
		}
	}
	fmt.Println()
}

// printVSAStats summarizes the value-set analysis stage: the total verified
// access count and the two finding classes. The analysis wall time is
// appended only under -timings — the default output must stay byte-identical
// across runs and worker counts (the determinism contract).
func printVSAStats(stats []core.VSAStat, showTime bool) {
	checked, cross, oof := 0, 0, 0
	var elapsed time.Duration
	for _, st := range stats {
		checked += st.Checked
		cross += st.CrossSlot
		oof += st.OutOfFrame
		elapsed += st.Elapsed
	}
	fmt.Printf("vsa: %d accesses verified, %d cross-slot warning(s), %d out-of-frame error(s)",
		checked, cross, oof)
	if showTime {
		fmt.Printf(" in %v", elapsed.Round(time.Microsecond))
	}
	fmt.Println()
}

// printTypeStats summarizes the type-recovery stage: typed-slot coverage,
// conflict count, and — when ground-truth types are available — the typed
// precision/recall. The inference wall time appears only under -timings
// (the determinism contract, as with printVSAStats).
func printTypeStats(p *core.Pipeline, showTime bool) {
	typed, total, conflicts := 0, 0, 0
	var elapsed time.Duration
	for _, st := range p.TypeStats {
		typed += st.TypedSlots
		total += st.Slots
		conflicts += st.Conflicts
		elapsed += st.Elapsed
	}
	fmt.Printf("types: %d of %d slot(s) typed, %d conflict(s)", typed, total, conflicts)
	if p.Img.TypedTruth != nil && p.Typed != nil {
		acc := layout.CompareTyped(p.Img.TypedTruth, p.Typed)
		fmt.Printf(", precision %.3f recall %.3f", acc.Precision(), acc.Recall())
	}
	if showTime {
		fmt.Printf(" in %v", elapsed.Round(time.Microsecond))
	}
	fmt.Println()
}

// printStaticStats summarizes the static cold-code recovery stage: the seed
// and candidate counts, each candidate's admission verdict and every
// rejection with its reason. Analysis wall time appears only under -timings
// (the determinism contract, as with printVSAStats).
func printStaticStats(p *core.Pipeline, showTime bool) {
	if p.Cold == nil {
		return
	}
	admitted := 0
	var elapsed time.Duration
	for _, st := range p.ColdStats {
		if st.Admitted {
			admitted++
		}
		elapsed += st.Elapsed
	}
	fmt.Printf("static recovery: %d cold seed(s), %d candidate(s) lifted, %d admitted",
		p.Cold.Seeds, len(p.ColdStats), admitted)
	if showTime {
		fmt.Printf(" in %v", elapsed.Round(time.Microsecond))
	}
	fmt.Println()
	for _, st := range p.ColdStats {
		if st.Admitted {
			fmt.Printf("  admitted %-20s %d frame access(es) verified\n", st.Func, st.Checked)
		} else {
			fmt.Printf("  degraded %-20s %s\n", st.Func, st.Reason)
		}
	}
	for _, r := range p.Cold.Rejected {
		fmt.Printf("  rejected %-20s %s\n", r.Name, r.Reason)
	}
}

// printStubRate reports how much of the validation input set escapes the
// recovered binary's coverage: the fraction of inputs whose run reached a
// trap stub, and which stubbed functions were hit.
func printStubRate(out *obj.Image, inputs []machine.Input) {
	trapped := 0
	hits := make(map[string]uint64)
	for _, in := range inputs {
		r, err := machine.Execute(out, in, io.Discard)
		if err != nil {
			continue
		}
		if len(r.StubHits) > 0 {
			trapped++
		}
		for fn, n := range r.StubHits {
			hits[fn] += n
		}
	}
	fmt.Printf("stub-hit rate: %d/%d validation input(s) reached a trap stub\n", trapped, len(inputs))
	fns := make([]string, 0, len(hits))
	for fn := range hits {
		fns = append(fns, fn)
	}
	sort.Strings(fns)
	for _, fn := range fns {
		fmt.Printf("  stub hit: %s (%d)\n", fn, hits[fn])
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "wytiwyg: "+format+"\n", args...)
	os.Exit(1)
}
