// Command doclint enforces the repository's documentation bar: every
// package must carry a package comment and every exported identifier a doc
// comment. It walks the directories given on the command line (the whole
// module when none are given), prints one finding per line in
// file:line: message form, and exits nonzero when anything is missing —
// ci.sh runs it as a gate.
//
// String and Error methods are exempt: their contracts are fixed by
// fmt.Stringer and the error interface, so a comment on them rarely says
// more than the name does. Test files and generated files are skipped.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}
	var dirs []string
	for _, root := range roots {
		filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				if name := d.Name(); name != "." && (strings.HasPrefix(name, ".") || name == "testdata") {
					return filepath.SkipDir
				}
				dirs = append(dirs, path)
			}
			return nil
		})
	}
	sort.Strings(dirs)

	findings := 0
	for _, dir := range dirs {
		findings += lintDir(dir)
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

// lintDir checks one directory's package and returns the finding count.
func lintDir(dir string) int {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doclint: %s: %v\n", dir, err)
		return 1
	}
	findings := 0
	for _, pkg := range pkgs {
		hasDoc := false
		var files []string
		for name, f := range pkg.Files {
			files = append(files, name)
			if f.Doc != nil {
				hasDoc = true
			}
		}
		if !hasDoc {
			sort.Strings(files)
			report(&findings, fset, token.NoPos, "%s: package %s has no package comment", files[0], pkg.Name)
		}
		for _, name := range files {
			lintFile(&findings, fset, pkg.Files[name])
		}
	}
	return findings
}

// lintFile checks the exported declarations of one file.
func lintFile(findings *int, fset *token.FileSet, f *ast.File) {
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			lintFunc(findings, fset, d)
		case *ast.GenDecl:
			lintGen(findings, fset, d)
		}
	}
}

// lintFunc checks one function or method declaration.
func lintFunc(findings *int, fset *token.FileSet, d *ast.FuncDecl) {
	if !d.Name.IsExported() || d.Doc != nil {
		return
	}
	if d.Recv != nil {
		// fmt.Stringer and error fix these contracts; the names say it all.
		if d.Name.Name == "String" || d.Name.Name == "Error" {
			return
		}
		// Methods on unexported types surface only through interfaces;
		// their docs live there.
		if !exportedRecv(d.Recv) {
			return
		}
	}
	report(findings, fset, d.Pos(), "exported %s %s is undocumented", kindOf(d), d.Name.Name)
}

// lintGen checks one const/var/type declaration group. A comment on the
// group documents every name in it; otherwise each exported spec needs its
// own. The bodies of exported types are checked regardless: a comment on
// the type does not document its fields.
func lintGen(findings *int, fset *token.FileSet, d *ast.GenDecl) {
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if d.Doc == nil && s.Doc == nil && s.Comment == nil && s.Name.IsExported() {
				report(findings, fset, s.Pos(), "exported type %s is undocumented", s.Name.Name)
			}
			if s.Name.IsExported() {
				lintTypeBody(findings, fset, s)
			}
		case *ast.ValueSpec:
			if d.Doc != nil || s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, n := range s.Names {
				if n.IsExported() {
					report(findings, fset, n.Pos(), "exported %s %s is undocumented", d.Tok, n.Name)
				}
			}
		}
	}
}

// lintTypeBody checks the members of one exported type: every exported
// struct field and every exported interface method needs a doc or line
// comment of its own (embedded members are exempt — their docs live on the
// embedded type, as do String and Error, whose contracts are fixed by
// fmt.Stringer and error).
func lintTypeBody(findings *int, fset *token.FileSet, s *ast.TypeSpec) {
	switch t := s.Type.(type) {
	case *ast.StructType:
		lintMembers(findings, fset, t.Fields, s.Name.Name, "field")
	case *ast.InterfaceType:
		lintMembers(findings, fset, t.Methods, s.Name.Name, "method")
	}
}

// lintMembers checks one field or method list for undocumented exported
// names.
func lintMembers(findings *int, fset *token.FileSet, list *ast.FieldList, typeName, kind string) {
	if list == nil {
		return
	}
	for _, f := range list.List {
		if f.Doc != nil || f.Comment != nil || len(f.Names) == 0 {
			continue
		}
		for _, n := range f.Names {
			if !n.IsExported() || n.Name == "String" || n.Name == "Error" {
				continue
			}
			report(findings, fset, n.Pos(), "exported %s %s.%s is undocumented", kind, typeName, n.Name)
		}
	}
}

// exportedRecv reports whether a method's receiver base type is exported.
func exportedRecv(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}

func kindOf(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

// report prints one finding and bumps the count. A NoPos finding carries
// its own location in the format string.
func report(findings *int, fset *token.FileSet, pos token.Pos, format string, args ...any) {
	*findings++
	if pos != token.NoPos {
		fmt.Printf("%s: ", fset.Position(pos))
	}
	fmt.Printf(format+"\n", args...)
}
