// Command experiments regenerates the paper's evaluation artifacts — Table 1,
// Figure 6, Figure 7, the §6.1 functionality matrix, and the ablation study
// — over the reproduction's benchmark suite.
//
// Usage:
//
//	experiments [-exp all|table1|figure6|figure7|functionality|ablation]
//	            [-scale N] [-progs bzip2,gcc,...]
//
// -scale overrides the benchmarks' ref input size (useful for quick runs);
// the default -1 uses the full ref datasets.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"wytiwyg/internal/bench"
	"wytiwyg/internal/bench/progs"
	"wytiwyg/internal/minicc/gen"
	"wytiwyg/internal/profiling"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all, table1, figure6, figure7, functionality, ablation")
	scale := flag.Int("scale", -1, "override ref input scale (-1 = full ref datasets)")
	progList := flag.String("progs", "", "comma-separated benchmark subset (default: all)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	stopProf, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(1)
	}
	defer stopProf()

	selected := progs.All
	if *progList != "" {
		selected = nil
		for _, name := range strings.Split(*progList, ",") {
			p, ok := progs.ByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", name)
				os.Exit(2)
			}
			selected = append(selected, p)
		}
	}

	switch *exp {
	case "all", "table1", "figure6", "figure7", "functionality":
		fmt.Fprintf(os.Stderr, "running %d benchmarks x %d configurations...\n",
			len(selected), len(bench.Configs))
		rows, err := bench.Suite(selected, int32(*scale))
		if err != nil {
			fmt.Fprintf(os.Stderr, "suite: %v\n", err)
			os.Exit(1)
		}
		switch *exp {
		case "table1":
			bench.Table1(os.Stdout, rows)
		case "figure6":
			bench.Figure6(os.Stdout, rows)
		case "figure7":
			bench.Figure7(os.Stdout, rows)
		case "functionality":
			bench.Functionality(os.Stdout, rows)
		default:
			bench.Functionality(os.Stdout, rows)
			fmt.Println()
			bench.Table1(os.Stdout, rows)
			fmt.Println()
			bench.Figure6(os.Stdout, rows)
			fmt.Println()
			bench.Figure7(os.Stdout, rows)
		}
	case "ablation":
		var rows []*bench.AblationRow
		for _, p := range selected {
			if *scale > 0 {
				p = bench.Scaled(p, int32(*scale))
			}
			for _, prof := range []gen.Profile{gen.GCC12O0, gen.GCC44O3} {
				fmt.Fprintf(os.Stderr, "ablation %s/%s...\n", p.Name, prof.Name)
				row, err := bench.Ablation(p, prof)
				if err != nil {
					fmt.Fprintf(os.Stderr, "ablation %s/%s: %v\n", p.Name, prof.Name, err)
					os.Exit(1)
				}
				rows = append(rows, row)
			}
		}
		bench.AblationReport(os.Stdout, rows)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
