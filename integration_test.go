package wytiwyg_test

import (
	"bytes"
	"fmt"
	"testing"

	"wytiwyg/internal/bench"
	"wytiwyg/internal/bench/progs"
	"wytiwyg/internal/codegen"
	"wytiwyg/internal/core"
	"wytiwyg/internal/machine"
	"wytiwyg/internal/minicc/gen"
	"wytiwyg/internal/opt"
)

// Top-level integration: one benchmark program through the complete public
// pipeline at every compiler profile — compile, trace, lift, refine,
// optimize, recompile — with output equality, a reasonable layout, and the
// headline performance property (symbolized beats non-symbolized) all
// checked in one place.
func TestEndToEndAllProfiles(t *testing.T) {
	p, ok := progs.ByName("mcf")
	if !ok {
		t.Fatal("mcf workload missing")
	}
	p = bench.Scaled(p, benchScale)
	for _, prof := range gen.Profiles {
		prof := prof
		t.Run(prof.Name, func(t *testing.T) {
			img, err := gen.Build(p.Src, prof, p.Name)
			if err != nil {
				t.Fatal(err)
			}
			var natOut bytes.Buffer
			nat, err := machine.Execute(img, p.Ref, &natOut)
			if err != nil {
				t.Fatal(err)
			}

			pl, err := core.LiftBinary(img, p.Inputs())
			if err != nil {
				t.Fatal(err)
			}
			if err := pl.Refine(); err != nil {
				t.Fatal(err)
			}
			if pl.Recovered == nil || len(pl.Recovered.Frames) == 0 {
				t.Fatal("no recovered layout")
			}
			opt.Pipeline(pl.Mod)
			rec, err := codegen.Compile(pl.Mod, p.Name+"-rec")
			if err != nil {
				t.Fatal(err)
			}

			var recOut bytes.Buffer
			res, err := machine.Execute(rec, p.Ref, &recOut)
			if err != nil {
				t.Fatal(err)
			}
			if res.ExitCode != nat.ExitCode || recOut.String() != natOut.String() {
				t.Fatalf("behaviour diverged: exit %d vs %d, output %q vs %q",
					res.ExitCode, nat.ExitCode, recOut.String(), natOut.String())
			}

			ratio := float64(res.Cycles) / float64(nat.Cycles)
			if ratio > 2.5 {
				t.Errorf("symbolized recompile is %.2fx the input binary; expected well under the ~3x no-sym baseline", ratio)
			}
			t.Logf("%s: recompiled/native = %.2f, %d frames recovered",
				prof.Name, ratio, len(pl.Recovered.Frames))
		})
	}
}

// The README's four-line quickstart, as a test: everything a new user runs
// first must keep working.
func TestQuickstartFlow(t *testing.T) {
	src := `
extern int printf(char *fmt, ...);
int sum(int *v, int n) {
	int i, s = 0;
	for (i = 0; i < n; i++) s += v[i];
	return s;
}
int main() {
	int data[10];
	int i;
	for (i = 0; i < 10; i++) data[i] = i * i;
	printf("sum=%d\n", sum(data, 10));
	return 0;
}
`
	img, err := gen.Build(src, gen.GCC12O3, "quickstart")
	if err != nil {
		t.Fatal(err)
	}
	pl, err := core.LiftBinary(img, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Refine(); err != nil {
		t.Fatal(err)
	}
	opt.Pipeline(pl.Mod)
	out, err := codegen.Compile(pl.Mod, "quickstart-rec")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res, err := machine.Execute(out, machine.Input{}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("sum=%d\n", 285)
	if res.ExitCode != 0 || buf.String() != want {
		t.Fatalf("exit=%d output=%q, want 0/%q", res.ExitCode, buf.String(), want)
	}
}
