package wytiwyg_test

import (
	"testing"

	"wytiwyg/internal/bench"
	"wytiwyg/internal/bench/progs"
	"wytiwyg/internal/codegen"
	"wytiwyg/internal/core"
	"wytiwyg/internal/machine"
	"wytiwyg/internal/minicc/gen"
	"wytiwyg/internal/opt"
)

// BenchmarkCodegenAblation quantifies the code generator's own design
// choices (DESIGN.md §5) on real workloads: scaled-index address tiling,
// the one-instruction EAX forwarding window, and phi-web copy coalescing.
// Reported metrics are cycle ratios vs the full generator (>= 1.0; higher
// = that feature mattered more).
func BenchmarkCodegenAblation(b *testing.B) {
	// hmmer is tiling-heavy (DP matrix), mcf loop-carried (coalescing).
	for _, name := range []string{"hmmer", "mcf"} {
		b.Run(name, func(b *testing.B) {
			p, ok := progs.ByName(name)
			if !ok {
				b.Fatal("missing workload")
			}
			p = bench.Scaled(p, benchScale)
			img, err := gen.Build(p.Src, gen.GCC12O3, p.Name)
			if err != nil {
				b.Fatal(err)
			}
			pl, err := core.LiftBinary(img, p.Inputs())
			if err != nil {
				b.Fatal(err)
			}
			if err := pl.Refine(); err != nil {
				b.Fatal(err)
			}
			opt.Pipeline(pl.Mod)

			measure := func(o codegen.Options) uint64 {
				out, err := codegen.CompileWith(pl.Mod, p.Name+"-cg", o)
				if err != nil {
					b.Fatal(err)
				}
				res, err := machine.Execute(out, p.Ref, nil)
				if err != nil {
					b.Fatal(err)
				}
				return res.Cycles
			}

			for i := 0; i < b.N; i++ {
				full := measure(codegen.Options{})
				b.ReportMetric(float64(measure(codegen.Options{NoTiles: true}))/float64(full), "no-tiles-ratio")
				b.ReportMetric(float64(measure(codegen.Options{NoEAXFuse: true}))/float64(full), "no-eaxfuse-ratio")
				b.ReportMetric(float64(measure(codegen.Options{NoCoalesce: true}))/float64(full), "no-coalesce-ratio")
			}
		})
	}
}
