#!/bin/sh
# Opt-in full benchmark harness. CI only smoke-tests the benchmarks (one
# iteration, crash check — see ci.sh); this script produces the numbers
# that are actually published in BENCH_interp.json, using the full
# protocol benchjson enforces:
#
#   - a fixed -benchtime (iteration count, not wall time, so every sample
#     does identical work and samples are comparable),
#   - at least 3 samples per benchmark (-count; default 6 here),
#   - min/mean/stddev/max recorded per benchmark, speedups computed from
#     the min (scheduler noise on a shared box is strictly additive, so
#     the smallest sample is the least-contaminated estimate).
#
# Environment knobs: COUNT (samples per benchmark), BENCHTIME (go test
# -benchtime value). Run on an otherwise-idle machine.
set -eu

cd "$(dirname "$0")"

COUNT=${COUNT:-6}
BENCHTIME=${BENCHTIME:-2000000x}

echo "== bench: ${COUNT} samples x ${BENCHTIME}"
go test -bench=. -benchtime="$BENCHTIME" -count="$COUNT" -run '^$' \
    ./internal/machine/ ./internal/irexec/ |
    go run ./cmd/benchjson -mode full -o BENCH_interp.json

echo "== bench: artifact sections (vsa, static, guards)"
go run ./cmd/benchjson -vsa -o BENCH_interp.json
go run ./cmd/benchjson -static -o BENCH_interp.json
go run ./cmd/benchjson -guards -o BENCH_interp.json

echo "== bench: validate"
go run ./cmd/benchjson -check -o BENCH_interp.json

echo "bench: BENCH_interp.json updated"
