package asm

import (
	"testing"

	"wytiwyg/internal/isa"
	"wytiwyg/internal/obj"
)

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder("t")
	b.Func("main")
	b.MovI(isa.EAX, 42)
	b.Halt()
	img, err := b.Link("main")
	if err != nil {
		t.Fatal(err)
	}
	if img.Entry != isa.CodeBase {
		t.Errorf("entry = %#x", img.Entry)
	}
	if len(img.Code) != 2 {
		t.Fatalf("len(code) = %d", len(img.Code))
	}
	if img.Code[0].Op != isa.MOVI || img.Code[0].Imm != 42 {
		t.Errorf("instr 0 = %v", img.Code[0])
	}
	if n, ok := img.SymName(isa.CodeBase); !ok || n != "main" {
		t.Errorf("symbol lookup: %q %v", n, ok)
	}
}

func TestBuilderLabelsAndBranches(t *testing.T) {
	b := NewBuilder("t")
	b.Func("main")
	b.Jmp("target") // forward reference
	b.MovI(isa.EAX, 1)
	b.Label("target")
	b.Halt()
	img, err := b.Link("main")
	if err != nil {
		t.Fatal(err)
	}
	if uint32(img.Code[0].Imm) != obj.AddrOf(2) {
		t.Errorf("jump target = %#x, want %#x", uint32(img.Code[0].Imm), obj.AddrOf(2))
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder("t")
	b.Func("main")
	b.Jmp("nowhere")
	b.Halt()
	if _, err := b.Link("main"); err == nil {
		t.Fatal("undefined label accepted")
	}
}

func TestBuilderDuplicateLabelPanics(t *testing.T) {
	b := NewBuilder("t")
	b.Label("x")
	defer func() {
		if recover() == nil {
			t.Error("duplicate label did not panic")
		}
	}()
	b.Label("x")
}

func TestBuilderData(t *testing.T) {
	b := NewBuilder("t")
	b.Asciz("msg", "hi")
	addr := b.Space("buf", 16, 8)
	if addr%8 != 0 {
		t.Errorf("buf not aligned: %#x", addr)
	}
	b.Words("w", 1, 2, 3)
	b.Func("main")
	b.MovDataAddr(isa.EAX, "msg", 0)
	b.LeaSym(isa.ECX, "buf", 4)
	b.Halt()
	img, err := b.Link("main")
	if err != nil {
		t.Fatal(err)
	}
	msgAddr, _ := b.DataAddr("msg")
	if uint32(img.Code[0].Imm) != msgAddr {
		t.Errorf("movi data fixup wrong: %#x want %#x", uint32(img.Code[0].Imm), msgAddr)
	}
	bufAddr, _ := b.DataAddr("buf")
	if uint32(img.Code[1].Mem.Disp) != bufAddr+4 {
		t.Errorf("lea fixup wrong")
	}
	if img.Data[0] != 'h' || img.Data[1] != 'i' || img.Data[2] != 0 {
		t.Errorf("data = %v", img.Data[:3])
	}
}

func TestBuilderJumpTable(t *testing.T) {
	b := NewBuilder("t")
	b.Func("main")
	b.Jmp("c1")
	b.Label("c0")
	b.Halt()
	b.Label("c1")
	b.Halt()
	b.JumpTable("tbl", "c0", "c1")
	img, err := b.Link("main")
	if err != nil {
		t.Fatal(err)
	}
	got0 := uint32(img.Data[0]) | uint32(img.Data[1])<<8 | uint32(img.Data[2])<<16 | uint32(img.Data[3])<<24
	if got0 != obj.AddrOf(1) {
		t.Errorf("table[0] = %#x, want %#x", got0, obj.AddrOf(1))
	}
}

func TestBuilderExtern(t *testing.T) {
	b := NewBuilder("t")
	b.Func("main")
	b.CallExt("printf")
	b.CallExt("printf") // same address both times
	b.CallExt("puts")
	b.Halt()
	img, err := b.Link("main")
	if err != nil {
		t.Fatal(err)
	}
	if img.Code[0].Imm != img.Code[1].Imm {
		t.Error("extern address not stable")
	}
	if img.Code[0].Imm == img.Code[2].Imm {
		t.Error("distinct externs share an address")
	}
	name, ok := img.ExtName(uint32(img.Code[0].Imm))
	if !ok || name != "printf" {
		t.Errorf("ExtName = %q, %v", name, ok)
	}
	if a, ok := img.ExtAddr("puts"); !ok || a != uint32(img.Code[2].Imm) {
		t.Errorf("ExtAddr(puts) = %#x, %v", a, ok)
	}
}

func TestAssembleText(t *testing.T) {
	src := `
; a tiny program
.data
msg: .asciz "x"
buf: .space 8
.text
main:
    movi eax, 10
    push ebp
    mov ebp, esp
    subi esp, 16
    store4 [ebp-4], eax
    load4 ecx, [ebp-4]
    lea edx, [ebp+ecx*4-8]
    lea ebx, [buf+4]
    cmpi ecx, 10
    jne .bad
    movi eax, 0
    halt
.bad:
    movi eax, 1
    halt
`
	img, err := Assemble("t", src, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(img.Code) != 14 {
		t.Errorf("code len = %d", len(img.Code))
	}
	// lea with scaled index parsed correctly
	in := img.Code[6]
	if in.Op != isa.LEA || in.Mem.Base != isa.EBP || in.Mem.Index != isa.ECX ||
		in.Mem.Scale != 4 || in.Mem.Disp != -8 {
		t.Errorf("lea parsed as %v", in)
	}
	// .bad is a local label: not in symbol table
	if _, ok := img.SymAddr(".bad"); ok {
		t.Error("local label leaked into symbol table")
	}
	if _, ok := img.SymAddr("main"); !ok {
		t.Error("main symbol missing")
	}
}

func TestAssembleErrors(t *testing.T) {
	bad := []string{
		"main:\n  bogus eax\n  halt",
		"main:\n  movi\n  halt",
		"main:\n  load4 eax, ebp\n  halt",
		"main:\n  jmp\n  halt",
		".data\nx: .space zz\n.text\nmain:\n  halt",
		"main:\n  mov eax, qqq\n  halt",
	}
	for _, src := range bad {
		if _, err := Assemble("t", src, ""); err == nil {
			t.Errorf("accepted bad program %q", src)
		}
	}
	if _, err := Assemble("t", "f:\n  halt", ""); err == nil {
		t.Error("missing main accepted")
	}
}

func TestParseMemForms(t *testing.T) {
	cases := []struct {
		in   string
		want isa.MemRef
		sym  string
	}{
		{"[ebp-20]", isa.MemRef{Base: isa.EBP, Index: isa.NoReg, Disp: -20}, ""},
		{"[ebp+eax*8-44]", isa.MemRef{Base: isa.EBP, Index: isa.EAX, Scale: 8, Disp: -44}, ""},
		{"[esp]", isa.MemRef{Base: isa.ESP, Index: isa.NoReg}, ""},
		{"[msg]", isa.MemRef{Base: isa.NoReg, Index: isa.NoReg}, "msg"},
		{"[buf+12]", isa.MemRef{Base: isa.NoReg, Index: isa.NoReg, Disp: 12}, "buf"},
		{"[eax+ecx]", isa.MemRef{Base: isa.EAX, Index: isa.ECX, Scale: 1}, ""},
		{"[4096]", isa.MemRef{Base: isa.NoReg, Index: isa.NoReg, Disp: 4096}, ""},
	}
	for _, tc := range cases {
		mo, err := parseMem(tc.in)
		if err != nil {
			t.Errorf("parseMem(%q): %v", tc.in, err)
			continue
		}
		if mo.mem != tc.want || mo.sym != tc.sym {
			t.Errorf("parseMem(%q) = %+v/%q, want %+v/%q", tc.in, mo.mem, mo.sym, tc.want, tc.sym)
		}
	}
	for _, bad := range []string{"ebp", "[ebp", "[-eax]", "[eax*z]", "[a+b]", "[eax+ebx+ecx]"} {
		if _, err := parseMem(bad); err == nil {
			t.Errorf("parseMem(%q) accepted", bad)
		}
	}
}
