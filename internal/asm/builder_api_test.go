package asm_test

import (
	"bytes"
	"testing"

	"wytiwyg/internal/asm"
	"wytiwyg/internal/isa"
	"wytiwyg/internal/layout"
	"wytiwyg/internal/machine"
)

// A whole-API smoke test: build a program that exercises every Builder
// emitter — ALU, memory, stack, control flow, data symbols, jump tables,
// externals — link it and run it to a checked exit code.
func TestBuilderFullAPI(t *testing.T) {
	b := asm.NewBuilder("api")
	if b.Len() != 0 {
		t.Fatalf("fresh builder has %d instructions", b.Len())
	}

	b.Words("counter", 5)
	b.Asciz("greet", "hi")
	b.Space("scratch", 16, 4)
	b.JumpTable("jt", "case0", "case1")

	b.Func("main")
	b.Truth(&layout.Frame{Func: "main", Vars: []layout.Var{{Name: "local", Offset: -4, Size: 4}}})

	// ALU + mov forms: eax = (((5 | 8) & 13) ^ 1) => 12; edx = eax*2 - 4 => 20
	b.MovI(isa.EAX, 5)
	b.MovI(isa.ECX, 8)
	b.Bin(isa.OR, isa.EAX, isa.ECX)
	b.BinI(isa.ANDI, isa.EAX, 13)
	b.BinI(isa.XORI, isa.EAX, 1)
	b.Mov(isa.EDX, isa.EAX)
	b.BinI(isa.SHLI, isa.EDX, 1)
	b.BinI(isa.SUBI, isa.EDX, 4)

	// Neg/Not round trips: neg(neg(x)) == x; not(not(x)) == x.
	b.Neg(isa.EDX)
	b.Neg(isa.EDX)
	b.Not(isa.EDX)
	b.Not(isa.EDX)

	// Memory: store edx to the scratch global, load it back into ebx.
	b.StoreSym("scratch", 0, isa.EDX, 4)
	b.LoadSym(isa.EBX, "scratch", 0, 4, false)

	// LeaSym + Load through a register-based operand.
	b.LeaSym(isa.ESI, "counter", 0)
	b.Load(isa.EDI, asm.Mem(isa.ESI, 0), 4, false) // edi = 5

	// Scaled-index addressing: scratch[1]*4 via MemIdx.
	b.MovI(isa.ECX, 1)
	b.LeaSym(isa.ESI, "scratch", 0)
	b.StoreI(asm.MemIdx(isa.ESI, isa.ECX, 4, 0), 7, 4) // scratch[1] = 7
	b.Load(isa.EAX, asm.MemIdx(isa.ESI, isa.ECX, 4, 0), 4, false)

	// Stack ops.
	b.Push(isa.EAX)                  // 7
	b.PushI(3)                       // 3
	b.Pop(isa.ECX)                   // ecx = 3
	b.Pop(isa.EAX)                   // eax = 7
	b.Bin(isa.ADD, isa.EAX, isa.ECX) // 10

	// Sub-register ops: eax = (eax &^ 0xFF) | (edi & 0xFF) = 5.
	b.MovLo8(isa.EAX, isa.EDI)
	b.LeaSym(isa.ESI, "greet", 0)
	b.LoadLo8(isa.EDX, asm.Mem(isa.ESI, 0)) // edx low byte = 'h'

	// Compare / set / branch.
	b.CmpI(isa.EAX, 5)
	b.Set(isa.CondEQ, isa.EBX) // ebx = 1
	b.Cmp(isa.EBX, isa.EAX)
	b.Jcc(isa.CondLT, "less")
	b.Jmp("fail")

	b.Label("less")
	// Jump table dispatch: select case1 via jt[1].
	b.MovDataAddr(isa.ESI, "jt", 0)
	b.Load(isa.ESI, asm.Mem(isa.ESI, 4), 4, false)
	b.JmpR(isa.ESI)

	b.Label("case0")
	b.Jmp("fail")

	b.Label("case1")
	// Indirect call through a code-label address.
	b.MovLabelAddr(isa.EDI, "ok_fn")
	b.CallR(isa.EDI)
	// Direct call.
	b.Call("bump")
	// eax = 41 + 1 = 42 now; print then exit with it.
	b.Push(isa.EAX)
	b.CallExt("putint")
	b.CallExt("exit")
	b.Halt()

	b.Label("fail")
	b.PushI(99)
	b.CallExt("exit")
	b.Halt()

	b.Func("ok_fn")
	b.MovI(isa.EAX, 41)
	b.Ret()

	b.Func("bump")
	b.BinI(isa.ADDI, isa.EAX, 1)
	b.Ret()

	if _, ok := b.DataAddr("greet"); !ok {
		t.Error("greet data symbol not recorded")
	}
	if _, ok := b.DataAddr("nope"); ok {
		t.Error("phantom data symbol resolved")
	}

	img, err := b.Link("main")
	if err != nil {
		t.Fatal(err)
	}
	if img.Truth == nil || img.Truth.Frames["main"] == nil {
		t.Error("ground-truth side-table not propagated")
	}
	var out bytes.Buffer
	res, err := machine.Execute(img, machine.Input{}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 42 {
		t.Fatalf("exit = %d, want 42 (output %q)", res.ExitCode, out.String())
	}
	if out.String() != "42" {
		t.Errorf("output = %q, want \"42\"", out.String())
	}
}

// Link must fail cleanly on dangling references.
func TestLinkErrors(t *testing.T) {
	b := asm.NewBuilder("bad")
	b.Func("main")
	b.Jmp("nowhere")
	b.Halt()
	if _, err := b.Link("main"); err == nil {
		t.Error("undefined label linked")
	}

	b2 := asm.NewBuilder("bad2")
	b2.Func("main")
	b2.Halt()
	if _, err := b2.Link("absent"); err == nil {
		t.Error("undefined entry label linked")
	}

	b3 := asm.NewBuilder("bad3")
	b3.Func("main")
	b3.MovDataAddr(isa.EAX, "ghost", 0)
	b3.Halt()
	if _, err := b3.Link("main"); err == nil {
		t.Error("undefined data symbol linked")
	}
}

// Bin/BinI reject non-ALU opcodes by panicking — programmer error, caught
// in development.
func TestBinRejectsNonALU(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Bin(JMP) did not panic")
		}
	}()
	b := asm.NewBuilder("p")
	b.Func("main")
	b.Bin(isa.JMP, isa.EAX, isa.ECX)
}
