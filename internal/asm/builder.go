// Package asm provides two ways to construct binary images: a programmatic
// Builder (used by the mini-C code generator and by tests) and a small
// textual assembler (used by examples and by tests that transcribe the
// paper's x86 listings, such as Figure 2's f1).
package asm

import (
	"encoding/binary"
	"fmt"

	"wytiwyg/internal/isa"
	"wytiwyg/internal/layout"
	"wytiwyg/internal/obj"
)

type fixupKind uint8

const (
	fixImm      fixupKind = iota // code label -> Imm (branch/call targets)
	fixImmCode                   // code label -> Imm (address materialization)
	fixImmData                   // data symbol -> Imm (+addend)
	fixDispData                  // data symbol -> Mem.Disp (+addend)
	fixWord                      // code label -> 32-bit data word (jump tables)
)

type fixup struct {
	kind   fixupKind
	instr  int // instruction index (fixImm/fixImmData/fixDispData)
	off    uint32
	name   string
	addend int32
}

// Builder assembles an image incrementally.
type Builder struct {
	code    []isa.Instr
	labels  map[string]int
	fixups  []fixup
	data    []byte
	dataSym map[string]uint32
	externs map[string]uint32
	nextExt uint32
	syms    []obj.Symbol
	truth   *layout.Program
	typed   *layout.TypedProgram
	name    string

	// pendingDataLabel holds a data-section label awaiting its directive
	// (textual assembler only).
	pendingDataLabel string
}

// NewBuilder returns an empty builder for an image with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		labels:  make(map[string]int),
		dataSym: make(map[string]uint32),
		externs: make(map[string]uint32),
		nextExt: isa.ExtBase,
		truth:   layout.NewProgram(),
		typed:   layout.NewTypedProgram(),
		name:    name,
	}
}

// PC returns the address the next emitted instruction will have.
func (b *Builder) PC() uint32 { return obj.AddrOf(len(b.code)) }

// Len returns the number of instructions emitted so far.
func (b *Builder) Len() int { return len(b.code) }

// Label binds a name to the current position.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		panic("asm: duplicate label " + name)
	}
	b.labels[name] = len(b.code)
}

// Func binds a label and records a symbol for it.
func (b *Builder) Func(name string) {
	b.Label(name)
	b.syms = append(b.syms, obj.Symbol{Name: name, Addr: b.PC()})
}

// Truth records the ground-truth frame layout for a function.
func (b *Builder) Truth(f *layout.Frame) { b.truth.Add(f) }

// TypedTruth records the typed ground-truth frame for a function (the
// compiler's declared slot types).
func (b *Builder) TypedTruth(f *layout.TypedFrame) { b.typed.Add(f) }

// Emit appends a raw instruction and returns its index.
func (b *Builder) Emit(in isa.Instr) int {
	b.code = append(b.code, in)
	return len(b.code) - 1
}

// Extern returns the PLT address for an external function, assigning one on
// first use.
func (b *Builder) Extern(name string) uint32 {
	if a, ok := b.externs[name]; ok {
		return a
	}
	a := b.nextExt
	b.nextExt += isa.InstrSize
	b.externs[name] = a
	return a
}

// --- data section ---

func (b *Builder) align(n uint32) {
	for uint32(len(b.data))%n != 0 {
		b.data = append(b.data, 0)
	}
}

// Space reserves size zeroed bytes of data under name and returns its
// address.
func (b *Builder) Space(name string, size uint32, alignTo uint32) uint32 {
	if alignTo == 0 {
		alignTo = 4
	}
	b.align(alignTo)
	addr := isa.DataBase + uint32(len(b.data))
	b.data = append(b.data, make([]byte, size)...)
	if name != "" {
		b.dataSym[name] = addr
	}
	return addr
}

// Bytes places raw bytes in the data section under name.
func (b *Builder) Bytes(name string, data []byte) uint32 {
	addr := isa.DataBase + uint32(len(b.data))
	b.data = append(b.data, data...)
	if name != "" {
		b.dataSym[name] = addr
	}
	return addr
}

// Asciz places a NUL-terminated string and returns its address.
func (b *Builder) Asciz(name, s string) uint32 {
	return b.Bytes(name, append([]byte(s), 0))
}

// Words places 32-bit little-endian values.
func (b *Builder) Words(name string, vals ...uint32) uint32 {
	b.align(4)
	buf := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(buf[4*i:], v)
	}
	return b.Bytes(name, buf)
}

// JumpTable places a table of code-label addresses; entries are fixed up at
// Link time.
func (b *Builder) JumpTable(name string, codeLabels ...string) uint32 {
	b.align(4)
	addr := isa.DataBase + uint32(len(b.data))
	for _, l := range codeLabels {
		b.fixups = append(b.fixups, fixup{kind: fixWord, off: uint32(len(b.data)), name: l})
		b.data = append(b.data, 0, 0, 0, 0)
	}
	if name != "" {
		b.dataSym[name] = addr
	}
	return addr
}

// DataAddr returns the address of a previously placed data symbol.
func (b *Builder) DataAddr(name string) (uint32, bool) {
	a, ok := b.dataSym[name]
	return a, ok
}

// --- instruction helpers ---

// Mem builds a memory operand.
func Mem(base isa.Reg, disp int32) isa.MemRef {
	return isa.MemRef{Base: base, Index: isa.NoReg, Disp: disp}
}

// MemIdx builds a scaled-index memory operand.
func MemIdx(base, index isa.Reg, scale uint8, disp int32) isa.MemRef {
	return isa.MemRef{Base: base, Index: index, Scale: scale, Disp: disp}
}

// MemAbs builds an absolute (no register) memory operand.
func MemAbs(addr uint32) isa.MemRef {
	return isa.MemRef{Base: isa.NoReg, Index: isa.NoReg, Disp: int32(addr)}
}

// Mov emits dst = src.
func (b *Builder) Mov(dst, src isa.Reg) { b.Emit(isa.Instr{Op: isa.MOV, Dst: dst, Src: src}) }

// MovI emits dst = imm.
func (b *Builder) MovI(dst isa.Reg, imm int32) {
	b.Emit(isa.Instr{Op: isa.MOVI, Dst: dst, Imm: imm})
}

// MovDataAddr emits dst = address of data symbol + addend (fixed up at
// link).
func (b *Builder) MovDataAddr(dst isa.Reg, sym string, addend int32) {
	i := b.Emit(isa.Instr{Op: isa.MOVI, Dst: dst})
	b.fixups = append(b.fixups, fixup{kind: fixImmData, instr: i, name: sym, addend: addend})
}

// MovLabelAddr emits dst = address of a code label (function pointers).
func (b *Builder) MovLabelAddr(dst isa.Reg, label string) {
	i := b.Emit(isa.Instr{Op: isa.MOVI, Dst: dst})
	b.fixups = append(b.fixups, fixup{kind: fixImmCode, instr: i, name: label})
}

// FixDataDisp registers a link-time fixup adding a data symbol's address
// (plus addend) to the memory displacement of an already-emitted
// instruction. Used for scaled accesses into global arrays.
func (b *Builder) FixDataDisp(instr int, sym string, addend int32) {
	b.fixups = append(b.fixups, fixup{kind: fixDispData, instr: instr, name: sym, addend: addend})
}

// Load emits dst = mem[size].
func (b *Builder) Load(dst isa.Reg, m isa.MemRef, size uint8, signed bool) {
	b.Emit(isa.Instr{Op: isa.LOAD, Dst: dst, Mem: m, Size: size, Signed: signed})
}

// LoadSym emits dst = mem[data symbol + addend].
func (b *Builder) LoadSym(dst isa.Reg, sym string, addend int32, size uint8, signed bool) {
	i := b.Emit(isa.Instr{Op: isa.LOAD, Dst: dst, Mem: isa.MemRef{Base: isa.NoReg, Index: isa.NoReg}, Size: size, Signed: signed})
	b.fixups = append(b.fixups, fixup{kind: fixDispData, instr: i, name: sym, addend: addend})
}

// Store emits mem[size] = src.
func (b *Builder) Store(m isa.MemRef, src isa.Reg, size uint8) {
	b.Emit(isa.Instr{Op: isa.STORE, Src: src, Mem: m, Size: size})
}

// StoreSym emits mem[data symbol + addend] = src.
func (b *Builder) StoreSym(sym string, addend int32, src isa.Reg, size uint8) {
	i := b.Emit(isa.Instr{Op: isa.STORE, Src: src, Mem: isa.MemRef{Base: isa.NoReg, Index: isa.NoReg}, Size: size})
	b.fixups = append(b.fixups, fixup{kind: fixDispData, instr: i, name: sym, addend: addend})
}

// StoreI emits mem[size] = imm.
func (b *Builder) StoreI(m isa.MemRef, imm int32, size uint8) {
	b.Emit(isa.Instr{Op: isa.STOREI, Imm: imm, Mem: m, Size: size})
}

// Lea emits dst = effective address.
func (b *Builder) Lea(dst isa.Reg, m isa.MemRef) {
	b.Emit(isa.Instr{Op: isa.LEA, Dst: dst, Mem: m})
}

// LeaSym emits dst = address of data symbol + addend.
func (b *Builder) LeaSym(dst isa.Reg, sym string, addend int32) {
	i := b.Emit(isa.Instr{Op: isa.LEA, Dst: dst, Mem: isa.MemRef{Base: isa.NoReg, Index: isa.NoReg}})
	b.fixups = append(b.fixups, fixup{kind: fixDispData, instr: i, name: sym, addend: addend})
}

// Bin emits dst = dst op src for a register ALU op.
func (b *Builder) Bin(op isa.Op, dst, src isa.Reg) {
	if !op.IsBinOpReg() {
		panic("asm: Bin with non-ALU op " + op.String())
	}
	b.Emit(isa.Instr{Op: op, Dst: dst, Src: src})
}

// BinI emits dst = dst op imm for an immediate ALU op.
func (b *Builder) BinI(op isa.Op, dst isa.Reg, imm int32) {
	if !op.IsBinOpImm() {
		panic("asm: BinI with non-ALU-imm op " + op.String())
	}
	b.Emit(isa.Instr{Op: op, Dst: dst, Imm: imm})
}

// Neg emits dst = -dst.
func (b *Builder) Neg(dst isa.Reg) { b.Emit(isa.Instr{Op: isa.NEG, Dst: dst}) }

// Not emits dst = ^dst.
func (b *Builder) Not(dst isa.Reg) { b.Emit(isa.Instr{Op: isa.NOT, Dst: dst}) }

// Cmp emits flags <- a - b.
func (b *Builder) Cmp(a, bb isa.Reg) { b.Emit(isa.Instr{Op: isa.CMP, Dst: a, Src: bb}) }

// CmpI emits flags <- a - imm.
func (b *Builder) CmpI(a isa.Reg, imm int32) {
	b.Emit(isa.Instr{Op: isa.CMPI, Dst: a, Imm: imm})
}

// Test emits flags <- a & b.
func (b *Builder) Test(a, bb isa.Reg) { b.Emit(isa.Instr{Op: isa.TEST, Dst: a, Src: bb}) }

// Set emits dst = cond ? 1 : 0.
func (b *Builder) Set(c isa.Cond, dst isa.Reg) {
	b.Emit(isa.Instr{Op: isa.SET, Cond: c, Dst: dst})
}

// Push emits a register push.
func (b *Builder) Push(src isa.Reg) { b.Emit(isa.Instr{Op: isa.PUSH, Src: src}) }

// PushI emits an immediate push.
func (b *Builder) PushI(imm int32) { b.Emit(isa.Instr{Op: isa.PUSHI, Imm: imm}) }

// Pop emits a pop into dst.
func (b *Builder) Pop(dst isa.Reg) { b.Emit(isa.Instr{Op: isa.POP, Dst: dst}) }

// MovLo8 emits dst = (dst &^ 0xFF) | (src & 0xFF).
func (b *Builder) MovLo8(dst, src isa.Reg) {
	b.Emit(isa.Instr{Op: isa.MOVLO8, Dst: dst, Src: src})
}

// LoadLo8 emits a sub-register byte load.
func (b *Builder) LoadLo8(dst isa.Reg, m isa.MemRef) {
	b.Emit(isa.Instr{Op: isa.LOADLO8, Dst: dst, Mem: m})
}

// Jmp emits an unconditional jump to a label.
func (b *Builder) Jmp(label string) {
	i := b.Emit(isa.Instr{Op: isa.JMP})
	b.fixups = append(b.fixups, fixup{kind: fixImm, instr: i, name: label})
}

// Jcc emits a conditional jump to a label.
func (b *Builder) Jcc(c isa.Cond, label string) {
	i := b.Emit(isa.Instr{Op: isa.JCC, Cond: c})
	b.fixups = append(b.fixups, fixup{kind: fixImm, instr: i, name: label})
}

// JmpR emits an indirect jump through a register.
func (b *Builder) JmpR(src isa.Reg) { b.Emit(isa.Instr{Op: isa.JMPR, Src: src}) }

// Call emits a direct call to a code label.
func (b *Builder) Call(label string) {
	i := b.Emit(isa.Instr{Op: isa.CALL})
	b.fixups = append(b.fixups, fixup{kind: fixImm, instr: i, name: label})
}

// CallExt emits a call to an external function.
func (b *Builder) CallExt(name string) {
	addr := b.Extern(name)
	b.Emit(isa.Instr{Op: isa.CALL, Imm: int32(addr)})
}

// CallR emits an indirect call through a register.
func (b *Builder) CallR(src isa.Reg) { b.Emit(isa.Instr{Op: isa.CALLR, Src: src}) }

// Ret emits a return.
func (b *Builder) Ret() { b.Emit(isa.Instr{Op: isa.RET}) }

// Halt emits a machine halt.
func (b *Builder) Halt() { b.Emit(isa.Instr{Op: isa.HALT}) }

// Sys emits a syscall.
func (b *Builder) Sys(num int32) { b.Emit(isa.Instr{Op: isa.SYS, Imm: num}) }

// Link resolves fixups and produces the final image. entry names the label
// execution starts at.
func (b *Builder) Link(entry string) (*obj.Image, error) {
	ei, ok := b.labels[entry]
	if !ok {
		return nil, fmt.Errorf("asm: undefined entry label %q", entry)
	}
	for _, f := range b.fixups {
		switch f.kind {
		case fixImm, fixImmCode:
			idx, ok := b.labels[f.name]
			if !ok {
				return nil, fmt.Errorf("asm: undefined label %q", f.name)
			}
			b.code[f.instr].Imm = int32(obj.AddrOf(idx))
		case fixImmData:
			a, ok := b.dataSym[f.name]
			if !ok {
				return nil, fmt.Errorf("asm: undefined data symbol %q", f.name)
			}
			b.code[f.instr].Imm = int32(a) + f.addend
		case fixDispData:
			a, ok := b.dataSym[f.name]
			if !ok {
				return nil, fmt.Errorf("asm: undefined data symbol %q", f.name)
			}
			b.code[f.instr].Mem.Disp = int32(a) + f.addend
		case fixWord:
			idx, ok := b.labels[f.name]
			if !ok {
				return nil, fmt.Errorf("asm: undefined label %q in jump table", f.name)
			}
			binary.LittleEndian.PutUint32(b.data[f.off:], obj.AddrOf(idx))
		}
	}
	externs := make(map[uint32]string, len(b.externs))
	for n, a := range b.externs {
		externs[a] = n
	}
	img := &obj.Image{
		Code:       b.code,
		Entry:      obj.AddrOf(ei),
		Data:       b.data,
		Externs:    externs,
		Syms:       b.syms,
		Truth:      b.truth,
		TypedTruth: b.typed,
		Name:       b.name,
	}
	img.SortSyms()
	if err := img.Validate(); err != nil {
		return nil, err
	}
	return img, nil
}
