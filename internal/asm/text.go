package asm

import (
	"fmt"
	"strconv"
	"strings"

	"wytiwyg/internal/isa"
	"wytiwyg/internal/obj"
)

// Assemble parses textual assembly and links it into an image. The syntax
// is destination-first with bracketed memory operands:
//
//	; comment (# also works)
//	.data
//	buf:  .space 64
//	msg:  .asciz "count=%d\n"
//	tbl:  .table case0, case1      ; jump table of code labels
//	vals: .word 1, 2, 3
//	.text
//	main:
//	    push ebp
//	    mov ebp, esp
//	    subi esp, 24
//	    movi eax, 5
//	    store4 [ebp-4], eax
//	    load4 ecx, [ebp+eax*4-8]
//	    lea edx, [msg]
//	    push eax
//	    call @printf        ; @name calls an external
//	    addi esp, 4
//	    cmpi eax, 3
//	    jlt less
//	    halt
//
// Labels starting with '.' are local (branch targets); all others are
// recorded in the image's symbol table as functions. Entry defaults to the
// label "main" unless entry is non-empty.
func Assemble(name, src, entry string) (*obj.Image, error) {
	if entry == "" {
		entry = "main"
	}
	b := NewBuilder(name)
	inData := false
	lines := strings.Split(src, "\n")
	for ln, raw := range lines {
		line := raw
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels (possibly followed by a directive/instruction on the same
		// line).
		for {
			i := strings.Index(line, ":")
			if i < 0 || strings.ContainsAny(line[:i], " \t\"[") {
				break
			}
			label := strings.TrimSpace(line[:i])
			switch {
			case inData:
				b.pendingDataLabel = label
			case strings.HasPrefix(label, "."):
				b.Label(label)
			default:
				b.Func(label)
			}
			line = strings.TrimSpace(line[i+1:])
			if line == "" {
				break
			}
		}
		if line == "" {
			continue
		}
		switch {
		case line == ".data":
			inData = true
			continue
		case line == ".text":
			inData = false
			continue
		}
		var err error
		if inData {
			err = b.parseDataDirective(line)
		} else {
			err = b.parseInstr(line)
		}
		if err != nil {
			return nil, fmt.Errorf("asm: line %d: %q: %w", ln+1, raw, err)
		}
	}
	return b.Link(entry)
}

func (b *Builder) takeDataLabel() string {
	l := b.pendingDataLabel
	b.pendingDataLabel = ""
	return l
}

func (b *Builder) parseDataDirective(line string) error {
	label := b.takeDataLabel()
	dir, rest, _ := strings.Cut(line, " ")
	rest = strings.TrimSpace(rest)
	switch dir {
	case ".space":
		n, err := strconv.ParseUint(rest, 0, 32)
		if err != nil {
			return fmt.Errorf("bad .space size: %w", err)
		}
		b.Space(label, uint32(n), 4)
	case ".asciz":
		s, err := strconv.Unquote(rest)
		if err != nil {
			return fmt.Errorf("bad .asciz string: %w", err)
		}
		b.Asciz(label, s)
	case ".word":
		var vals []uint32
		for _, f := range strings.Split(rest, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(f), 0, 64)
			if err != nil {
				return fmt.Errorf("bad .word value: %w", err)
			}
			vals = append(vals, uint32(v))
		}
		b.Words(label, vals...)
	case ".table":
		var labels []string
		for _, f := range strings.Split(rest, ",") {
			labels = append(labels, strings.TrimSpace(f))
		}
		b.JumpTable(label, labels...)
	default:
		return fmt.Errorf("unknown data directive %q", dir)
	}
	return nil
}

// memOperand is a parsed bracket operand.
type memOperand struct {
	mem    isa.MemRef
	sym    string // data symbol, if any
	addend int32  // symbol addend
}

func parseMem(s string) (memOperand, error) {
	if len(s) < 2 || s[0] != '[' || s[len(s)-1] != ']' {
		return memOperand{}, fmt.Errorf("bad memory operand %q", s)
	}
	body := s[1 : len(s)-1]
	out := memOperand{mem: isa.MemRef{Base: isa.NoReg, Index: isa.NoReg}}
	// Split into signed terms.
	var terms []string
	cur := strings.Builder{}
	for i, c := range body {
		if (c == '+' || c == '-') && i > 0 {
			terms = append(terms, cur.String())
			cur.Reset()
			if c == '-' {
				cur.WriteByte('-')
			}
			continue
		}
		cur.WriteRune(c)
	}
	terms = append(terms, cur.String())
	for _, t := range terms {
		t = strings.TrimSpace(t)
		if t == "" {
			continue
		}
		neg := strings.HasPrefix(t, "-")
		body := strings.TrimPrefix(t, "-")
		if base, idx, ok := strings.Cut(body, "*"); ok {
			// index*scale
			r, rok := isa.RegByName(strings.TrimSpace(base))
			sc, err := strconv.Atoi(strings.TrimSpace(idx))
			if !rok || err != nil || neg {
				return memOperand{}, fmt.Errorf("bad scaled index %q", t)
			}
			out.mem.Index = r
			out.mem.Scale = uint8(sc)
			continue
		}
		if r, ok := isa.RegByName(body); ok {
			if neg {
				return memOperand{}, fmt.Errorf("negated register %q", t)
			}
			if !out.mem.HasBase() {
				out.mem.Base = r
			} else if !out.mem.HasIndex() {
				out.mem.Index = r
				out.mem.Scale = 1
			} else {
				return memOperand{}, fmt.Errorf("too many registers in %q", body)
			}
			continue
		}
		if v, err := strconv.ParseInt(body, 0, 64); err == nil {
			d := int32(v)
			if neg {
				d = -d
			}
			out.mem.Disp += d
			continue
		}
		// Data symbol.
		if out.sym != "" || neg {
			return memOperand{}, fmt.Errorf("bad term %q", t)
		}
		out.sym = body
	}
	return out, nil
}

func splitOperands(s string) []string {
	var out []string
	depth := 0
	cur := strings.Builder{}
	for _, c := range s {
		switch {
		case c == '[':
			depth++
			cur.WriteRune(c)
		case c == ']':
			depth--
			cur.WriteRune(c)
		case c == ',' && depth == 0:
			out = append(out, strings.TrimSpace(cur.String()))
			cur.Reset()
		default:
			cur.WriteRune(c)
		}
	}
	if t := strings.TrimSpace(cur.String()); t != "" {
		out = append(out, t)
	}
	return out
}

func parseReg(s string) (isa.Reg, error) {
	r, ok := isa.RegByName(s)
	if !ok {
		return isa.NoReg, fmt.Errorf("bad register %q", s)
	}
	return r, nil
}

func parseImm(s string) (int32, error) {
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	return int32(v), nil
}

var condByName = map[string]isa.Cond{
	"eq": isa.CondEQ, "ne": isa.CondNE, "lt": isa.CondLT, "le": isa.CondLE,
	"gt": isa.CondGT, "ge": isa.CondGE, "b": isa.CondB, "be": isa.CondBE,
	"a": isa.CondA, "ae": isa.CondAE,
}

var binRegOps = map[string]isa.Op{
	"add": isa.ADD, "sub": isa.SUB, "and": isa.AND, "or": isa.OR, "xor": isa.XOR,
	"shl": isa.SHL, "shr": isa.SHR, "sar": isa.SAR, "mul": isa.MUL, "div": isa.DIV,
	"mod": isa.MOD,
}

var binImmOps = map[string]isa.Op{
	"addi": isa.ADDI, "subi": isa.SUBI, "andi": isa.ANDI, "ori": isa.ORI,
	"xori": isa.XORI, "shli": isa.SHLI, "shri": isa.SHRI, "sari": isa.SARI,
	"muli": isa.MULI, "divi": isa.DIVI, "modi": isa.MODI,
}

func (b *Builder) parseInstr(line string) error {
	mn, rest, _ := strings.Cut(line, " ")
	mn = strings.ToLower(mn)
	ops := splitOperands(strings.TrimSpace(rest))
	need := func(n int) error {
		if len(ops) != n {
			return fmt.Errorf("%s needs %d operands, got %d", mn, n, len(ops))
		}
		return nil
	}
	// Size-suffixed loads/stores: load4, load2s, store1, storei4, ...
	switch {
	case strings.HasPrefix(mn, "load") && mn != "loadlo8":
		suffix := mn[4:]
		signed := strings.HasSuffix(suffix, "s")
		suffix = strings.TrimSuffix(suffix, "s")
		size, err := strconv.Atoi(suffix)
		if err != nil {
			return fmt.Errorf("bad load mnemonic %q", mn)
		}
		if err := need(2); err != nil {
			return err
		}
		dst, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		mo, err := parseMem(ops[1])
		if err != nil {
			return err
		}
		if mo.sym != "" {
			i := b.Emit(isa.Instr{Op: isa.LOAD, Dst: dst, Mem: mo.mem, Size: uint8(size), Signed: signed})
			b.fixups = append(b.fixups, fixup{kind: fixDispData, instr: i, name: mo.sym, addend: mo.mem.Disp})
			b.code[i].Mem.Disp = 0
			return nil
		}
		b.Load(dst, mo.mem, uint8(size), signed)
		return nil
	case strings.HasPrefix(mn, "storei"):
		size, err := strconv.Atoi(mn[6:])
		if err != nil {
			return fmt.Errorf("bad storei mnemonic %q", mn)
		}
		if err := need(2); err != nil {
			return err
		}
		mo, err := parseMem(ops[0])
		if err != nil {
			return err
		}
		imm, err := parseImm(ops[1])
		if err != nil {
			return err
		}
		i := b.Emit(isa.Instr{Op: isa.STOREI, Imm: imm, Mem: mo.mem, Size: uint8(size)})
		if mo.sym != "" {
			b.fixups = append(b.fixups, fixup{kind: fixDispData, instr: i, name: mo.sym, addend: mo.mem.Disp})
			b.code[i].Mem.Disp = 0
		}
		return nil
	case strings.HasPrefix(mn, "store"):
		size, err := strconv.Atoi(mn[5:])
		if err != nil {
			return fmt.Errorf("bad store mnemonic %q", mn)
		}
		if err := need(2); err != nil {
			return err
		}
		mo, err := parseMem(ops[0])
		if err != nil {
			return err
		}
		src, err := parseReg(ops[1])
		if err != nil {
			return err
		}
		i := b.Emit(isa.Instr{Op: isa.STORE, Src: src, Mem: mo.mem, Size: uint8(size)})
		if mo.sym != "" {
			b.fixups = append(b.fixups, fixup{kind: fixDispData, instr: i, name: mo.sym, addend: mo.mem.Disp})
			b.code[i].Mem.Disp = 0
		}
		return nil
	}
	if op, ok := binRegOps[mn]; ok {
		if err := need(2); err != nil {
			return err
		}
		dst, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		src, err := parseReg(ops[1])
		if err != nil {
			return err
		}
		b.Bin(op, dst, src)
		return nil
	}
	if op, ok := binImmOps[mn]; ok {
		if err := need(2); err != nil {
			return err
		}
		dst, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		imm, err := parseImm(ops[1])
		if err != nil {
			return err
		}
		b.BinI(op, dst, imm)
		return nil
	}
	if c, ok := condByName[strings.TrimPrefix(mn, "j")]; ok && strings.HasPrefix(mn, "j") && mn != "jmp" && mn != "jmpr" {
		if err := need(1); err != nil {
			return err
		}
		b.Jcc(c, ops[0])
		return nil
	}
	if c, ok := condByName[strings.TrimPrefix(mn, "set")]; ok && strings.HasPrefix(mn, "set") {
		if err := need(1); err != nil {
			return err
		}
		dst, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		b.Set(c, dst)
		return nil
	}
	switch mn {
	case "nop":
		b.Emit(isa.Instr{Op: isa.NOP})
	case "mov":
		if err := need(2); err != nil {
			return err
		}
		dst, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		src, err := parseReg(ops[1])
		if err != nil {
			return err
		}
		b.Mov(dst, src)
	case "movi":
		if err := need(2); err != nil {
			return err
		}
		dst, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		if imm, err := parseImm(ops[1]); err == nil {
			b.MovI(dst, imm)
		} else {
			// movi dst, symbol — address of a data symbol.
			b.MovDataAddr(dst, ops[1], 0)
		}
	case "movlo8":
		if err := need(2); err != nil {
			return err
		}
		dst, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		src, err := parseReg(ops[1])
		if err != nil {
			return err
		}
		b.MovLo8(dst, src)
	case "loadlo8":
		if err := need(2); err != nil {
			return err
		}
		dst, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		mo, err := parseMem(ops[1])
		if err != nil {
			return err
		}
		if mo.sym != "" {
			i := b.Emit(isa.Instr{Op: isa.LOADLO8, Dst: dst, Mem: mo.mem})
			b.fixups = append(b.fixups, fixup{kind: fixDispData, instr: i, name: mo.sym, addend: mo.mem.Disp})
			b.code[i].Mem.Disp = 0
			return nil
		}
		b.LoadLo8(dst, mo.mem)
	case "lea":
		if err := need(2); err != nil {
			return err
		}
		dst, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		mo, err := parseMem(ops[1])
		if err != nil {
			return err
		}
		if mo.sym != "" {
			i := b.Emit(isa.Instr{Op: isa.LEA, Dst: dst, Mem: mo.mem})
			b.fixups = append(b.fixups, fixup{kind: fixDispData, instr: i, name: mo.sym, addend: mo.mem.Disp})
			b.code[i].Mem.Disp = 0
			return nil
		}
		b.Lea(dst, mo.mem)
	case "neg", "not":
		if err := need(1); err != nil {
			return err
		}
		dst, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		if mn == "neg" {
			b.Neg(dst)
		} else {
			b.Not(dst)
		}
	case "cmp":
		if err := need(2); err != nil {
			return err
		}
		a, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		bb, err := parseReg(ops[1])
		if err != nil {
			return err
		}
		b.Cmp(a, bb)
	case "cmpi":
		if err := need(2); err != nil {
			return err
		}
		a, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		imm, err := parseImm(ops[1])
		if err != nil {
			return err
		}
		b.CmpI(a, imm)
	case "test":
		if err := need(2); err != nil {
			return err
		}
		a, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		bb, err := parseReg(ops[1])
		if err != nil {
			return err
		}
		b.Test(a, bb)
	case "push":
		if err := need(1); err != nil {
			return err
		}
		src, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		b.Push(src)
	case "pushi":
		if err := need(1); err != nil {
			return err
		}
		if imm, err := parseImm(ops[0]); err == nil {
			b.PushI(imm)
		} else {
			// pushi symbol — push a data symbol's address.
			i := b.Emit(isa.Instr{Op: isa.PUSHI})
			b.fixups = append(b.fixups, fixup{kind: fixImmData, instr: i, name: ops[0]})
		}
	case "pop":
		if err := need(1); err != nil {
			return err
		}
		dst, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		b.Pop(dst)
	case "jmp":
		if err := need(1); err != nil {
			return err
		}
		b.Jmp(ops[0])
	case "jmpr":
		if err := need(1); err != nil {
			return err
		}
		src, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		b.JmpR(src)
	case "call":
		if err := need(1); err != nil {
			return err
		}
		if strings.HasPrefix(ops[0], "@") {
			b.CallExt(ops[0][1:])
		} else {
			b.Call(ops[0])
		}
	case "callr":
		if err := need(1); err != nil {
			return err
		}
		src, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		b.CallR(src)
	case "ret":
		b.Ret()
	case "halt":
		b.Halt()
	case "sys":
		if err := need(1); err != nil {
			return err
		}
		imm, err := parseImm(ops[0])
		if err != nil {
			return err
		}
		b.Sys(imm)
	default:
		return fmt.Errorf("unknown mnemonic %q", mn)
	}
	return nil
}
