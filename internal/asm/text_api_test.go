package asm_test

import (
	"bytes"
	"strings"
	"testing"

	"wytiwyg/internal/asm"
	"wytiwyg/internal/machine"
)

// One program through the textual assembler that touches every mnemonic
// family and data directive, then runs to a checked exit code and output.
func TestAssembleFullSyntax(t *testing.T) {
	src := `
; comment with semicolon
# comment with hash
.data
msg:    .asciz "ok"
nums:   .word 3, 5, 7
buf:    .space 16
jtab:   .table .case0, .case1

.text
main:
    nop
    movi eax, 6
    movi ecx, 3
    add eax, ecx          ; 9
    sub eax, ecx          ; 6
    mul eax, ecx          ; 18
    div eax, ecx          ; 6
    mod eax, ecx          ; 0
    or  eax, ecx          ; 3
    and eax, ecx          ; 3
    xor eax, ecx          ; 0
    addi eax, 40          ; 40
    subi eax, 8           ; 32
    shli eax, 1           ; 64
    shri eax, 2           ; 16
    sari eax, 1           ; 8
    muli eax, 3           ; 24
    divi eax, 2           ; 12
    modi eax, 7           ; 5
    ori  eax, 8           ; 13
    andi eax, 12          ; 12
    xori eax, 1           ; 13
    movi ecx, 1
    shl eax, ecx          ; 26
    shr eax, ecx          ; 13
    sar eax, ecx          ; 6
    neg eax
    neg eax               ; back to 6
    not eax
    not eax               ; back to 6

    ; symbol + scaled-index memory operands
    movi ecx, 2
    load4 edx, [nums+ecx*4]   ; nums[2] = 7
    add eax, edx              ; 13
    store4 [buf], eax
    storei4 [buf+4], 29
    load4 ebx, [buf+4]        ; 29
    add eax, ebx              ; 42

    ; byte-granularity ops
    loadlo8 edx, [msg]        ; low byte = 'o'... actually 'o' is msg[0]? 'o'=0x6F? msg="ok", msg[0]='o'
    movlo8 ebx, edx

    ; lea through a register operand
    lea esi, [buf+8]
    storei4 [esi], 1
    load4 edi, [buf+8]        ; 1

    ; compares, conditional jumps, setcc
    cmpi edi, 1
    jeq .eq
    jmp .fail
.eq:
    test edi, edi
    jne .nz
    jmp .fail
.nz:
    cmp edi, eax
    jlt .less                 ; 1 < 42 signed
    jmp .fail
.less:
    setbe ecx                 ; 1 <= 42 unsigned -> 1
    cmpi ecx, 1
    jge .go
    jmp .fail
.go:
    ; jump-table dispatch through jmpr
    movi esi, jtab
    load4 esi, [esi+4]
    jmpr esi

.case0:
    jmp .fail

.case1:
    ; stack + internal call: helper returns arg+1
    store4 [buf+12], eax      ; save 42
    push eax
    call helper
    addi esp, 4
    cmpi eax, 43
    jeq .done
    jmp .fail

.done:
    load4 eax, [buf+12]       ; restore 42
    push eax
    call @putint
    addi esp, 4
    pushi msg
    call @puts
    addi esp, 4
    load4 eax, [buf+12]       ; ext calls clobber eax with their return value
    push eax
    call @exit
    halt

.fail:
    pushi 99
    call @exit
    halt

helper:
    load4 eax, [esp+4]
    addi eax, 1
    ret
`
	img, err := asm.Assemble("full", src, "")
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	res, err := machine.Execute(img, machine.Input{}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 42 {
		t.Fatalf("exit = %d, want 42 (output %q)", res.ExitCode, out.String())
	}
	if out.String() != "42ok\n" {
		t.Errorf("output = %q, want %q", out.String(), "42ok\n")
	}
}

// Signed sub-word loads sign-extend; unsigned ones zero-extend.
func TestAssembleSignedLoads(t *testing.T) {
	src := `
.data
b:  .word 0xFFFFFF85

.text
main:
    load1s eax, [b]        ; 0x85 sign-extended = -123
    neg eax                ; 123
    load2 ecx, [b]         ; 0xFF85 zero-extended
    shri ecx, 8            ; 0xFF = 255
    sub ecx, eax           ; 132
    push ecx
    call @exit
    halt
`
	img, err := asm.Assemble("signed", src, "")
	if err != nil {
		t.Fatal(err)
	}
	res, err := machine.Execute(img, machine.Input{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 132 {
		t.Errorf("exit = %d, want 132", res.ExitCode)
	}
}

// Malformed assembly must produce location-bearing errors.
func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unknown-mnemonic", "main:\n\tfrobnicate eax\n\thalt\n", "unknown mnemonic"},
		{"bad-reg", "main:\n\tmov exx, eax\n\thalt\n", ""},
		{"bad-mem", "main:\n\tload4 eax, nums\n\thalt\n", "memory operand"},
		{"operand-count", "main:\n\tadd eax\n\thalt\n", "operands"},
		{"bad-load-size", "main:\n\tloadq eax, [esp]\n\thalt\n", "load"},
		{"bad-directive", ".data\nx: .quad 3\n.text\nmain:\n\thalt\n", "directive"},
		{"bad-word", ".data\nx: .word zap\n.text\nmain:\n\thalt\n", "word"},
		{"bad-space", ".data\nx: .space hello\n.text\nmain:\n\thalt\n", "space"},
		{"bad-asciz", ".data\nx: .asciz noquotes\n.text\nmain:\n\thalt\n", "asciz"},
		{"undefined-label", "main:\n\tjmp .nowhere\n\thalt\n", "undefined"},
		{"negated-register", "main:\n\tload4 eax, [-esp]\n\thalt\n", ""},
		{"three-registers", "main:\n\tload4 eax, [eax+ecx+edx]\n\thalt\n", ""},
		{"bad-scale-reg", "main:\n\tload4 eax, [zz*4]\n\thalt\n", ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := asm.Assemble("bad", c.src, "")
			if err == nil {
				t.Fatalf("assembled malformed source:\n%s", c.src)
			}
			if c.want != "" && !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

// The sys mnemonic assembles (its runtime behaviour is the machine's
// concern, not the assembler's).
func TestAssembleSys(t *testing.T) {
	if _, err := asm.Assemble("s", "main:\n\tsys 1\n\thalt\n", ""); err != nil {
		t.Fatal(err)
	}
}
