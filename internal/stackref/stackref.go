// Package stackref implements the static half of the paper's first
// refinement (§4.1): after saved registers have left the lifted signatures,
// every value that is a constant displacement from the function-entry stack
// pointer (sp0) can be identified by a simple forward dataflow and rewritten
// into the canonical form sp0 + offset. These rewritten values are the
// "direct stack references" that serve as base pointers in the
// object-bounds refinement (§4.2).
package stackref

import (
	"fmt"

	"wytiwyg/internal/ir"
	"wytiwyg/internal/isa"
	"wytiwyg/internal/opt"
	"wytiwyg/internal/par"
)

// Offsets maps each value that is a constant displacement from sp0 to that
// displacement. The ESP parameter itself maps to 0.
type Offsets map[*ir.Value]int32

// Analyze computes SP0 displacements for one function without modifying it.
// The analysis is optimistic in the SCCP style so that stack-pointer cycles
// through loop phis (expression-stack push/pop inside loops) resolve: values
// start unknown (bottom), evaluate to a displacement, and fall to "not
// sp0-relative" (top) only on genuine disagreement.
func Analyze(f *ir.Func) Offsets {
	esp := f.ParamByReg(isa.ESP)
	if esp == nil {
		return nil
	}
	const (
		bottom = 0 // optimistic unknown
		known  = 1
		top    = 2 // not sp0-relative
	)
	type state struct {
		k uint8
		c int32
	}
	st := map[*ir.Value]state{esp: {k: known, c: 0}}
	get := func(v *ir.Value) state { return st[v] }

	lift := func(s state, delta int32) state {
		if s.k == known {
			return state{k: known, c: s.c + delta}
		}
		return s
	}
	eval := func(v *ir.Value) state {
		switch v.Op {
		case ir.OpParam:
			if v == esp {
				return state{k: known}
			}
			return state{k: top}
		case ir.OpAdd:
			if k, ok := constOf(v.Args[1]); ok {
				return lift(get(v.Args[0]), k)
			}
			if k, ok := constOf(v.Args[0]); ok {
				return lift(get(v.Args[1]), k)
			}
			return state{k: top}
		case ir.OpSub:
			if k, ok := constOf(v.Args[1]); ok {
				return lift(get(v.Args[0]), -k)
			}
			return state{k: top}
		case ir.OpExtract:
			call := v.Args[0]
			var callee *ir.Func
			base := 0
			switch call.Op {
			case ir.OpCall:
				callee = call.Callee
			case ir.OpCallInd:
				if len(call.Targets) == 0 {
					return state{k: top}
				}
				callee = call.Targets[0]
				base = 1
			default:
				return state{k: top}
			}
			if v.Idx >= len(callee.RetRegs) || callee.RetRegs[v.Idx] != isa.ESP {
				return state{k: top}
			}
			espIdx := -1
			for i, p := range callee.Params {
				if p.RegHint == isa.ESP {
					espIdx = i
					break
				}
			}
			if espIdx < 0 {
				return state{k: top}
			}
			// A balanced callee pops exactly the pushed return address.
			return lift(get(call.Args[base+espIdx]), 4)
		case ir.OpPhi:
			out := state{k: bottom}
			for _, a := range v.Args {
				if a == v {
					continue
				}
				as := get(a)
				switch as.k {
				case bottom:
					// optimistic: ignore
				case known:
					if out.k == bottom {
						out = as
					} else if out.c != as.c {
						return state{k: top}
					}
				case top:
					return state{k: top}
				}
			}
			return out
		}
		return state{k: top}
	}

	for changed := true; changed; {
		changed = false
		for _, b := range f.Blocks {
			for _, v := range b.Phis {
				if ns := eval(v); ns != st[v] && st[v].k != top {
					st[v] = ns
					changed = true
				}
			}
			for _, v := range b.Insts {
				if v == esp {
					continue
				}
				if ns := eval(v); ns != st[v] && st[v].k != top {
					st[v] = ns
					changed = true
				}
			}
		}
	}
	off := Offsets{}
	for v, s2 := range st {
		if s2.k == known {
			off[v] = s2.c
		}
	}
	return off
}

func constOf(v *ir.Value) (int32, bool) {
	if v.Op == ir.OpConst {
		return v.Const, true
	}
	return 0, false
}

// Apply canonicalizes every function: each non-parameter value with a known
// displacement c is rewritten in place to `add esp, c` (or replaced by the
// ESP parameter when c == 0). It returns the per-function offset maps of
// the REWRITTEN module, which the symbolization refinement consumes.
func Apply(mod *ir.Module) (map[*ir.Func]Offsets, error) {
	out, funcErrs := ApplyJobs(mod, 1)
	for _, f := range mod.Funcs {
		if ferr := funcErrs[f]; ferr != nil {
			return nil, ferr
		}
	}
	if err := ir.Verify(mod); err != nil {
		return nil, err
	}
	return out, nil
}

// ApplyJobs is Apply over a bounded worker pool. The analysis and rewrite
// touch only the function they run on, so functions proceed independently;
// results are collected in module function order. A function that cannot
// be analyzed (no ESP parameter, or a panic during its rewrite) is reported
// in the per-function error map instead of failing the module — the caller
// decides whether to degrade or abort, and is responsible for verifying the
// module once it has dealt with the failures.
func ApplyJobs(mod *ir.Module, jobs int) (map[*ir.Func]Offsets, map[*ir.Func]error) {
	offs := make([]Offsets, len(mod.Funcs))
	errs := par.ForEachErrs(jobs, len(mod.Funcs), func(i int) error {
		off, err := applyFunc(mod.Funcs[i])
		if err != nil {
			return err
		}
		offs[i] = off
		return nil
	})
	out := make(map[*ir.Func]Offsets, len(mod.Funcs))
	funcErrs := make(map[*ir.Func]error)
	for i, f := range mod.Funcs {
		if errs[i] != nil {
			funcErrs[f] = errs[i]
			continue
		}
		out[f] = offs[i]
	}
	return out, funcErrs
}

// applyFunc canonicalizes one function and returns its post-rewrite offset
// map. It reads and writes only f.
func applyFunc(f *ir.Func) (Offsets, error) {
	off := Analyze(f)
	if off == nil {
		return nil, fmt.Errorf("stackref: %s has no ESP parameter", f.Name)
	}
	esp := f.ParamByReg(isa.ESP)
	for _, b := range f.Blocks {
		// Phis that turned out to be constant displacements move into
		// the block body as adds.
		var keepPhis []*ir.Value
		var newAdds []*ir.Value
		for _, v := range b.Phis {
			c, ok := off[v]
			if !ok {
				keepPhis = append(keepPhis, v)
				continue
			}
			if c == 0 {
				opt.ReplaceUses(f, v, esp)
				delete(off, v)
				continue
			}
			k := f.NewValue(ir.OpConst)
			k.Const = c
			k.Block = b
			v.Op = ir.OpAdd
			v.Args = []*ir.Value{esp, k}
			v.Block = b
			newAdds = append(newAdds, k, v)
		}
		b.Phis = keepPhis
		if len(newAdds) > 0 {
			b.Insts = append(newAdds, b.Insts...)
		}
		for i := 0; i < len(b.Insts); i++ {
			v := b.Insts[i]
			c, ok := off[v]
			if !ok || v.Op == ir.OpParam || v.Op == ir.OpConst {
				continue
			}
			if v.Op == ir.OpAdd && v.Args[0] == esp && v.Args[1].Op == ir.OpConst {
				continue // already canonical
			}
			if c == 0 {
				opt.ReplaceUses(f, v, esp)
				delete(off, v)
				// The value is now dead; leave removal to DCE unless it
				// has side effects (extract of a call keeps the call).
				continue
			}
			k := f.NewValue(ir.OpConst)
			k.Const = c
			k.Block = b
			v.Op = ir.OpAdd
			v.Args = []*ir.Value{esp, k}
			// Insert the constant before its use.
			b.Insts = append(b.Insts[:i], append([]*ir.Value{k}, b.Insts[i:]...)...)
			i++
		}
	}
	opt.DCE(f)
	// Rebuild the offsets over the cleaned function so symbolize sees
	// exactly the surviving direct references.
	return Analyze(f), nil
}
