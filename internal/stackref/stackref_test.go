package stackref_test

import (
	"bytes"
	"testing"

	"wytiwyg/internal/core"
	"wytiwyg/internal/ir"
	"wytiwyg/internal/irexec"
	"wytiwyg/internal/isa"
	"wytiwyg/internal/machine"
	"wytiwyg/internal/minicc/gen"
)

func pipelineTo(t *testing.T, src string, prof gen.Profile, inputs []machine.Input) *core.Pipeline {
	t.Helper()
	img, err := gen.Build(src, prof, "t")
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.LiftBinary(img, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.RefineRegSave(); err != nil {
		t.Fatal(err)
	}
	if err := p.RefineVarArgs(); err != nil {
		t.Fatal(err)
	}
	if err := p.RefineStackRef(); err != nil {
		t.Fatal(err)
	}
	return p
}

func checkBehaviour(t *testing.T, p *core.Pipeline, label string) {
	t.Helper()
	for i, input := range p.Inputs {
		var nat, lift bytes.Buffer
		n, err := machine.Execute(p.Img, input, &nat)
		if err != nil {
			t.Fatalf("%s input %d native: %v", label, i, err)
		}
		r, err := irexec.Run(p.Mod, input, &lift, nil)
		if err != nil {
			t.Fatalf("%s input %d refined: %v", label, i, err)
		}
		if r.ExitCode != n.ExitCode || lift.String() != nat.String() {
			t.Errorf("%s input %d: exit %d/%d out %q/%q",
				label, i, r.ExitCode, n.ExitCode, lift.String(), nat.String())
		}
	}
}

const frameSrc = `
extern int printf(char *fmt, ...);
int helper(int a, int b) {
	int tmp[4];
	tmp[0] = a; tmp[1] = b; tmp[2] = a + b; tmp[3] = a * b;
	return tmp[2] + tmp[3];
}
int main() {
	int x = 3, y = 4;
	int r = helper(x, y);
	printf("r=%d\n", r);
	return r;
}
`

func TestFoldAndBehaviour(t *testing.T) {
	for _, prof := range gen.Profiles {
		p := pipelineTo(t, frameSrc, prof, nil)
		checkBehaviour(t, p, prof.Name)

		// Every load/store in helper whose address is a direct stack
		// reference must now have an address of the canonical shape
		// (esp param, or add(esp, const)).
		helper := p.Mod.FuncByName("helper")
		if helper == nil {
			t.Fatalf("%s: helper missing", prof.Name)
		}
		offs := p.SPOffsets[helper]
		if offs == nil {
			t.Fatalf("%s: no offsets for helper", prof.Name)
		}
		esp := helper.ParamByReg(isa.ESP)
		direct := 0
		for _, b := range helper.Blocks {
			for _, v := range b.Insts {
				if v.Op != ir.OpLoad && v.Op != ir.OpStore {
					continue
				}
				a := v.Args[0]
				if _, ok := offs[a]; !ok {
					continue
				}
				direct++
				canonical := a == esp ||
					(a.Op == ir.OpAdd && a.Args[0] == esp && a.Args[1].Op == ir.OpConst)
				if !canonical {
					t.Errorf("%s: direct ref %s(%s) not canonical", prof.Name, a, a.Op)
				}
			}
		}
		// helper stores 4 array elements and (depending on profile) spills;
		// there must be a healthy number of direct references.
		if direct < 4 {
			t.Errorf("%s: only %d direct stack accesses found", prof.Name, direct)
		}
	}
}

func TestArgSlotOffsets(t *testing.T) {
	// Incoming argument loads must fold to positive offsets (sp0+4, sp0+8).
	p := pipelineTo(t, frameSrc, gen.GCC12O0, nil)
	helper := p.Mod.FuncByName("helper")
	offs := p.SPOffsets[helper]
	havePos := map[int32]bool{}
	for v, c := range offs {
		if c >= 4 && v.Op == ir.OpAdd {
			havePos[c] = true
		}
	}
	if !havePos[4] || !havePos[8] {
		t.Errorf("argument slots not identified: %v", havePos)
	}
}

func TestVarargsLifted(t *testing.T) {
	for _, prof := range gen.Profiles {
		p := pipelineTo(t, frameSrc, prof, nil)
		for _, f := range p.Mod.Funcs {
			for _, b := range f.Blocks {
				for _, v := range b.Insts {
					if v.Op == ir.OpCallExtRaw {
						t.Errorf("%s: raw variadic call to %s survived in %s",
							prof.Name, v.Sym, f.Name)
					}
					if v.Op == ir.OpCallExt && v.Sym == "printf" && len(v.Args) != 2 {
						t.Errorf("%s: printf lifted with %d args, want 2", prof.Name, len(v.Args))
					}
				}
			}
		}
	}
}

func TestMultipleFormatsMaxCount(t *testing.T) {
	src := `
extern int printf(char *fmt, ...);
extern int input_int(int i);
int main() {
	if (input_int(0) > 0) printf("%d %d %d\n", 1, 2, 3);
	else printf("none\n");
	return 0;
}`
	img, err := gen.Build(src, gen.GCC12O3, "t")
	if err != nil {
		t.Fatal(err)
	}
	inputs := []machine.Input{{Ints: []int32{1}}, {Ints: []int32{-1}}}
	p, err := core.LiftBinary(img, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.RefineRegSave(); err != nil {
		t.Fatal(err)
	}
	if err := p.RefineVarArgs(); err != nil {
		t.Fatal(err)
	}
	if err := p.RefineStackRef(); err != nil {
		t.Fatal(err)
	}
	checkBehaviour(t, p, "maxcount")
	// Two distinct printf sites: one with 4 args, one with 1.
	var counts []int
	for _, f := range p.Mod.Funcs {
		for _, b := range f.Blocks {
			for _, v := range b.Insts {
				if v.Op == ir.OpCallExt && v.Sym == "printf" {
					counts = append(counts, len(v.Args))
				}
			}
		}
	}
	has4, has1 := false, false
	for _, c := range counts {
		if c == 4 {
			has4 = true
		}
		if c == 1 {
			has1 = true
		}
	}
	if !has4 || !has1 {
		t.Errorf("printf arg counts = %v, want both 4 and 1", counts)
	}
}

func TestDeepCallChainOffsets(t *testing.T) {
	src := `
int f3(int z) { return z + 1; }
int f2(int y) { return f3(y * 2) + 1; }
int f1(int x) { return f2(x + 3) + 1; }
int main() { return f1(5); }
`
	for _, prof := range gen.Profiles {
		p := pipelineTo(t, src, prof, nil)
		checkBehaviour(t, p, prof.Name)
	}
}
