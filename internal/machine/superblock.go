// Superblock dispatch: the emulator's answer to per-instruction
// fetch/decode/dispatch cost. The code section of an image is immutable, so
// every instruction is pre-decoded once, at load time, into a flat "uop"
// with its operands resolved (register numbers, addressing-mode fields and
// immediates pulled out of the isa.Instr encoding, the cycle cost attached).
// A superblock is the maximal straight-line run of non-control uops starting
// at an entry PC; because instructions are fixed-size and the code is
// immutable, the run starting at every instruction index is a pure function
// of the static code, computed once by a backward sweep (runLen/runCost) —
// there is no discovery phase, no code cache, and no invalidation machinery.
//
// Executing a superblock replaces N rounds of halted-check → budget-check →
// fetch-bounds-check → dispatch with one round of checks followed by a tight
// loop over pre-decoded uops, one batched Steps/Cycles update, and a single
// per-instruction execution of the terminator (which is where all control
// transfers, hooks and block events happen — so the observable event stream
// is byte-identical to per-instruction stepping). Flags are lazy: CMP/TEST
// record their operands and conditions are evaluated only when a consumer
// (JCC/SET) is reached; see the flags type in machine.go.
//
// Fallbacks that preserve exact observational equivalence:
//   - InstrHook set: Run uses the per-instruction Step loop, which fires the
//     hook at every instruction in order.
//   - Execution nearing MaxSteps: a superblock whose batch would overshoot
//     the budget is abandoned and the rest of the run is stepped
//     per-instruction, so ErrMaxSteps hits at exactly the same instruction.
//   - Mid-run errors (memory faults, division by zero): the uop loop
//     restores pc to the faulting instruction and accounts Steps/Cycles for
//     exactly the instructions that executed, including the faulting one.
//
// Entering "the middle" of a previously executed run needs no special case:
// superblocks are keyed by entry PC, and the backward sweep already knows
// the run starting at every instruction.
package machine

import (
	"fmt"

	"wytiwyg/internal/isa"
)

// ukind is a pre-decoded opcode. Straight-line kinds are executed by
// stepUop; uCtl marks instructions (control transfers, SYS, HALT, anything
// undecodable) that must go through the machine's full exec path.
type ukind uint8

// Pre-decoded opcodes. The two ALU runs mirror isa.ADD..MOD and
// isa.ADDI..MODI so decode can map them arithmetically.
const (
	uCtl ukind = iota // execute via Machine.exec on the original instruction

	uNop
	uMov
	uMovI
	uMovLo8

	uLoad4 // 4-byte load, the dominant width
	uLoad  // 1/2-byte load, sign- or zero-extending
	uLoadLo8
	uStore4
	uStore // 1/2-byte store
	uStoreI
	uLea

	uAdd // start of the reg-reg ALU run (order matches isa.ADD..MOD)
	uSub
	uAnd
	uOr
	uXor
	uShl
	uShr
	uSar
	uMul
	uDiv
	uMod

	uAddI // start of the reg-imm ALU run (order matches isa.ADDI..MODI)
	uSubI
	uAndI
	uOrI
	uXorI
	uShlI
	uShrI
	uSarI
	uMulI
	uDivI
	uModI

	uNeg
	uNot

	uCmp
	uCmpI
	uTest
	uSet

	uPush
	uPushI
	uPop

	// Fast-dispatched control transfers. Like uCtl they terminate
	// superblock runs, but Step and runSuper execute them inline through
	// transferTo instead of paying exec's instruction re-read; imm holds
	// the branch target and ext the JCC condition.
	uJmp
	uJcc
)

// noReg8 mirrors isa.NoReg in the uop's compact register fields.
const noReg8 = uint8(isa.NoReg)

// uop is one pre-decoded straight-line instruction: operands resolved,
// addressing-mode registers flattened, cycle cost attached. The machine
// never re-reads the isa.Instr for these kinds. The struct is exactly 16
// bytes so instruction fetch indexes prog with a shift instead of a
// multiply; scale/size share a byte (isa documents Scale as 1/2/4/8 and
// Size as 1/2/4, so both fit a nibble) and the sign-extend flag rides in
// the condition byte's top bit — see the accessors below.
type uop struct {
	k    ukind
	dst  uint8 // destination register
	src  uint8 // source register
	base uint8 // memory base register, noReg8 when absent
	idx  uint8 // memory index register, noReg8 when absent
	ss   uint8 // scale<<4 | size: index multiplier and access width
	cost uint8 // cycle cost (opCost of the original opcode)
	ext  uint8 // signed<<7 | cond: sign-extend flag and isa.Cond for uSet
	imm  int32 // immediate operand
	disp int32 // memory displacement
}

// scale is the memory operand's index multiplier.
func (u *uop) scale() uint32 { return uint32(u.ss >> 4) }

// size is the access width for sub-word loads and stores.
func (u *uop) size() uint8 { return u.ss & 15 }

// signed reports whether a sub-word load sign-extends.
func (u *uop) signed() bool { return u.ext&0x80 != 0 }

// cond is the condition evaluated by uSet.
func (u *uop) cond() isa.Cond { return isa.Cond(u.ext & 0x7f) }

// decodeUop pre-decodes one instruction. Control transfers, SYS, HALT and
// unknown opcodes become uCtl and keep executing through exec, which also
// produces the canonical error for undecodable opcodes.
func decodeUop(in *isa.Instr) uop {
	u := uop{
		k:    uCtl,
		dst:  uint8(in.Dst),
		src:  uint8(in.Src),
		base: uint8(in.Mem.Base),
		idx:  uint8(in.Mem.Index),
		ss:   in.Mem.Scale&15<<4 | in.Size&15,
		cost: uint8(opCost[in.Op]),
		ext:  uint8(in.Cond) & 0x7f,
		imm:  in.Imm,
		disp: in.Mem.Disp,
	}
	if in.Signed {
		u.ext |= 0x80
	}
	switch {
	case in.Op == isa.JMP:
		u.k = uJmp
	case in.Op == isa.JCC:
		u.k = uJcc
	case in.Op == isa.NOP:
		u.k = uNop
	case in.Op == isa.MOV:
		u.k = uMov
	case in.Op == isa.MOVI:
		u.k = uMovI
	case in.Op == isa.MOVLO8:
		u.k = uMovLo8
	case in.Op == isa.LOAD:
		if in.Size == 4 {
			u.k = uLoad4
		} else {
			u.k = uLoad
		}
	case in.Op == isa.LOADLO8:
		u.k = uLoadLo8
	case in.Op == isa.STORE:
		if in.Size == 4 {
			u.k = uStore4
		} else {
			u.k = uStore
		}
	case in.Op == isa.STOREI:
		u.k = uStoreI
	case in.Op == isa.LEA:
		u.k = uLea
	case in.Op >= isa.ADD && in.Op <= isa.MOD:
		u.k = uAdd + ukind(in.Op-isa.ADD)
	case in.Op >= isa.ADDI && in.Op <= isa.MODI:
		u.k = uAddI + ukind(in.Op-isa.ADDI)
	case in.Op == isa.NEG:
		u.k = uNeg
	case in.Op == isa.NOT:
		u.k = uNot
	case in.Op == isa.CMP:
		u.k = uCmp
	case in.Op == isa.CMPI:
		u.k = uCmpI
	case in.Op == isa.TEST:
		u.k = uTest
	case in.Op == isa.SET:
		u.k = uSet
	case in.Op == isa.PUSH:
		u.k = uPush
	case in.Op == isa.PUSHI:
		u.k = uPushI
	case in.Op == isa.POP:
		u.k = uPop
	}
	return u
}

// isTerm reports whether a uop terminates a superblock run: every control
// transfer does, whether it dispatches through exec (uCtl) or inline
// (uJmp/uJcc).
func isTerm(k ukind) bool { return k == uCtl || k == uJmp || k == uJcc }

// predecode builds the uop program and the superblock tables. runLen[i] is
// the number of consecutive straight-line uops starting at instruction i;
// runCost[i] is their summed cycle cost. Both are computed by one backward
// sweep and never change (the code section is immutable).
func (m *Machine) predecode() {
	n := len(m.code)
	m.prog = make([]uop, n)
	m.runLen = make([]int32, n+1)
	m.runCost = make([]uint64, n+1)
	for i := range m.code {
		m.prog[i] = decodeUop(&m.code[i])
	}
	for i := n - 1; i >= 0; i-- {
		if isTerm(m.prog[i].k) {
			continue // runLen/runCost stay 0
		}
		m.runLen[i] = m.runLen[i+1] + 1
		m.runCost[i] = m.runCost[i+1] + uint64(m.prog[i].cost)
	}
}

// uaddr computes a pre-decoded memory operand's effective address.
func (m *Machine) uaddr(u *uop) uint32 {
	a := uint32(u.disp)
	if u.base != noReg8 {
		a += m.Regs[u.base&7]
	}
	if u.idx != noReg8 {
		a += m.Regs[u.idx&7] * u.scale()
	}
	return a
}

// Per-instruction and superblock dispatch below both contain a copy of the
// same uop switch. This is deliberate: Go cannot inline a 40-case switch
// through a function call, and the call itself is a measurable fraction of
// per-instruction cost, so Step executes its uop inline (m.pc is already
// the instruction's address, so fault paths return directly) while
// runSuper's inner loop executes the same switch with deferred Steps/Cycles
// accounting (fault paths go through uopFault to settle the partial batch).
// The two copies MUST implement identical semantics; the corpus-wide
// differential tests in superblock_test.go compare registers, memory
// digests, Steps, Cycles and event streams across both dispatchers and are
// the guard against drift. Register fields are indexed as u.dst&7 (etc.):
// the mask is a no-op — decode only ever stores 0..NumRegs-1 or noReg8,
// and noReg8 never reaches an index expression — but it proves to the
// compiler that the index is in range, eliding the bounds check on every
// register-file access.

// Step executes one instruction through the pre-decoded program: an inline
// uop dispatch for straight-line instructions, the full exec path for
// control transfers (and SYS/HALT). This is the per-instruction reference
// mode that superblock execution batches.
func (m *Machine) Step() error {
	if m.halted {
		return nil
	}
	if m.Steps >= m.MaxSteps {
		return ErrMaxSteps
	}
	off := m.pc - isa.CodeBase
	i := off / isa.InstrSize
	if off%isa.InstrSize != 0 || i >= uint32(len(m.prog)) {
		return m.badPC()
	}
	m.Steps++
	// u is resolved before the hook call: prog is immutable after predecode,
	// and keeping the slice access next to its bounds check above lets the
	// compiler fold the two and skip re-loading the slice header afterwards.
	u := &m.prog[i]
	if m.InstrHook != nil {
		m.InstrHook(m.pc)
	}
	if u.k == uCtl {
		return m.exec(&m.code[i])
	}
	// Cycles are charged before the operation, exactly like exec, so a
	// faulting instruction is already paid for when the error returns.
	m.Cycles += uint64(u.cost)
	switch u.k {
	case uNop:

	case uMov:
		m.Regs[u.dst&7] = m.Regs[u.src&7]
	case uMovI:
		m.Regs[u.dst&7] = uint32(u.imm)
	case uMovLo8:
		m.Regs[u.dst&7] = m.Regs[u.dst&7]&^0xFF | m.Regs[u.src&7]&0xFF

	case uLoad4:
		a := m.uaddr(u)
		v, ok := m.Mem.load32Fast(a)
		if !ok {
			var err error
			if v, err = m.Mem.Load(a, 4); err != nil {
				return err
			}
		}
		m.Regs[u.dst&7] = v
	case uLoad:
		v, err := m.Mem.Load(m.uaddr(u), u.size())
		if err != nil {
			return err
		}
		if u.signed() {
			switch u.size() {
			case 1:
				v = uint32(int32(int8(v)))
			case 2:
				v = uint32(int32(int16(v)))
			}
		}
		m.Regs[u.dst&7] = v
	case uLoadLo8:
		v, err := m.Mem.Load(m.uaddr(u), 1)
		if err != nil {
			return err
		}
		m.Regs[u.dst&7] = m.Regs[u.dst&7]&^0xFF | v&0xFF
	case uStore4:
		a := m.uaddr(u)
		if !m.Mem.store32Fast(a, m.Regs[u.src&7]) {
			if err := m.Mem.Store(a, m.Regs[u.src&7], 4); err != nil {
				return err
			}
		}
	case uStore:
		if err := m.Mem.Store(m.uaddr(u), m.Regs[u.src&7], u.size()); err != nil {
			return err
		}
	case uStoreI:
		if err := m.Mem.Store(m.uaddr(u), uint32(u.imm), u.size()); err != nil {
			return err
		}
	case uLea:
		m.Regs[u.dst&7] = m.uaddr(u)

	case uAdd:
		m.Regs[u.dst&7] += m.Regs[u.src&7]
	case uSub:
		m.Regs[u.dst&7] -= m.Regs[u.src&7]
	case uAnd:
		m.Regs[u.dst&7] &= m.Regs[u.src&7]
	case uOr:
		m.Regs[u.dst&7] |= m.Regs[u.src&7]
	case uXor:
		m.Regs[u.dst&7] ^= m.Regs[u.src&7]
	case uShl:
		m.Regs[u.dst&7] <<= m.Regs[u.src&7] & 31
	case uShr:
		m.Regs[u.dst&7] >>= m.Regs[u.src&7] & 31
	case uSar:
		m.Regs[u.dst&7] = uint32(int32(m.Regs[u.dst&7]) >> (m.Regs[u.src&7] & 31))
	case uMul:
		m.Regs[u.dst&7] *= m.Regs[u.src&7]
	case uDiv, uMod:
		d := int32(m.Regs[u.src&7])
		if d == 0 {
			return fmt.Errorf("machine: division by zero at pc=0x%x", m.pc)
		}
		n := int32(m.Regs[u.dst&7])
		if u.k == uDiv {
			m.Regs[u.dst&7] = uint32(n / d)
		} else {
			m.Regs[u.dst&7] = uint32(n % d)
		}

	case uAddI:
		m.Regs[u.dst&7] += uint32(u.imm)
	case uSubI:
		m.Regs[u.dst&7] -= uint32(u.imm)
	case uAndI:
		m.Regs[u.dst&7] &= uint32(u.imm)
	case uOrI:
		m.Regs[u.dst&7] |= uint32(u.imm)
	case uXorI:
		m.Regs[u.dst&7] ^= uint32(u.imm)
	case uShlI:
		m.Regs[u.dst&7] <<= uint32(u.imm) & 31
	case uShrI:
		m.Regs[u.dst&7] >>= uint32(u.imm) & 31
	case uSarI:
		m.Regs[u.dst&7] = uint32(int32(m.Regs[u.dst&7]) >> (uint32(u.imm) & 31))
	case uMulI:
		m.Regs[u.dst&7] *= uint32(u.imm)
	case uDivI, uModI:
		if u.imm == 0 {
			return fmt.Errorf("machine: division by zero at pc=0x%x", m.pc)
		}
		n := int32(m.Regs[u.dst&7])
		if u.k == uDivI {
			m.Regs[u.dst&7] = uint32(n / u.imm)
		} else {
			m.Regs[u.dst&7] = uint32(n % u.imm)
		}

	case uNeg:
		m.Regs[u.dst&7] = -m.Regs[u.dst&7]
	case uNot:
		m.Regs[u.dst&7] = ^m.Regs[u.dst&7]

	case uCmp:
		m.flags = flags{a: m.Regs[u.dst&7], b: m.Regs[u.src&7]}
	case uCmpI:
		m.flags = flags{a: m.Regs[u.dst&7], b: uint32(u.imm)}
	case uTest:
		m.flags = flags{a: m.Regs[u.dst&7] & m.Regs[u.src&7], test: true}
	case uSet:
		if m.flags.eval(u.cond()) {
			m.Regs[u.dst&7] = 1
		} else {
			m.Regs[u.dst&7] = 0
		}

	case uJmp:
		to := uint32(u.imm)
		if m.Hook == nil && m.BlockHook == nil && !m.blockPending {
			m.pc = to // nothing to emit, no block to restart
			return nil
		}
		m.transferTo(TransferJump, to, false)
		return nil
	case uJcc:
		to := m.pc + isa.InstrSize
		taken := m.flags.eval(u.cond())
		if taken {
			to = uint32(u.imm)
		}
		if m.Hook == nil && m.BlockHook == nil && !m.blockPending {
			m.pc = to
			return nil
		}
		m.transferTo(TransferBranch, to, taken)
		return nil

	case uPush, uPushI:
		// ESP moves before the store, so on a fault ESP stays decremented —
		// the same order Machine.push uses for exec's CALL path.
		v := uint32(u.imm)
		if u.k == uPush {
			v = m.Regs[u.src&7]
		}
		sp := m.Regs[isa.ESP] - 4
		m.Regs[isa.ESP] = sp
		if !m.Mem.store32Fast(sp, v) {
			if err := m.Mem.Store(sp, v, 4); err != nil {
				return err
			}
		}
	case uPop:
		sp := m.Regs[isa.ESP]
		v, ok := m.Mem.load32Fast(sp)
		if !ok {
			var err error
			if v, err = m.Mem.Load(sp, 4); err != nil {
				return err
			}
		}
		m.Regs[isa.ESP] += 4
		m.Regs[u.dst&7] = v
	}
	m.pc += isa.InstrSize
	return nil
}

// uopFault settles machine state when uop j of the superblock starting at
// instruction index i faults: pc points at the faulting instruction, Steps
// counts the instructions that executed (including the faulting one) and
// Cycles charges exactly their costs — the state per-instruction dispatch
// would have left behind. Out of line because faults are cold.
func (m *Machine) uopFault(i, j uint32, pc uint32, err error) error {
	m.pc = pc
	m.Steps += uint64(j) + 1
	m.Cycles += m.runCost[i] - m.runCost[i+j+1]
	return err
}

// badPC reproduces the per-instruction fetch error for an address outside
// the code section (or misaligned within it).
func (m *Machine) badPC() error {
	_, err := m.img.InstrAt(m.pc)
	return fmt.Errorf("machine: pc=0x%x: %w", m.pc, err)
}

// runSuper is Run's superblock dispatch loop: per superblock, one round of
// halted/budget/fetch checks, a tight loop over the pre-decoded body with
// the uop switch inlined (see the dispatch-copy comment above Step), one
// batched Steps/Cycles update, then the terminator through the full
// per-instruction exec path (control transfers, hooks, block events).
func (m *Machine) runSuper() error {
	for !m.halted {
		if m.Steps >= m.MaxSteps {
			return ErrMaxSteps
		}
		off := m.pc - isa.CodeBase
		i := off / isa.InstrSize
		if off%isa.InstrSize != 0 || i >= uint32(len(m.prog)) {
			return m.badPC()
		}
		if n := uint32(m.runLen[i]); n > 0 {
			if m.Steps+uint64(n) > m.MaxSteps {
				// The batch would overshoot the step budget: finish the
				// execution per-instruction so ErrMaxSteps lands on exactly
				// the same instruction as per-instruction dispatch.
				return m.runStepwise()
			}
			body := m.prog[i : i+n]
			pc := m.pc
			for j := range body {
				u := &body[j]
				switch u.k {
				case uNop:

				case uMov:
					m.Regs[u.dst&7] = m.Regs[u.src&7]
				case uMovI:
					m.Regs[u.dst&7] = uint32(u.imm)
				case uMovLo8:
					m.Regs[u.dst&7] = m.Regs[u.dst&7]&^0xFF | m.Regs[u.src&7]&0xFF

				case uLoad4:
					a := m.uaddr(u)
					v, ok := m.Mem.load32Fast(a)
					if !ok {
						var err error
						if v, err = m.Mem.Load(a, 4); err != nil {
							return m.uopFault(i, uint32(j), pc, err)
						}
					}
					m.Regs[u.dst&7] = v
				case uLoad:
					v, err := m.Mem.Load(m.uaddr(u), u.size())
					if err != nil {
						return m.uopFault(i, uint32(j), pc, err)
					}
					if u.signed() {
						switch u.size() {
						case 1:
							v = uint32(int32(int8(v)))
						case 2:
							v = uint32(int32(int16(v)))
						}
					}
					m.Regs[u.dst&7] = v
				case uLoadLo8:
					v, err := m.Mem.Load(m.uaddr(u), 1)
					if err != nil {
						return m.uopFault(i, uint32(j), pc, err)
					}
					m.Regs[u.dst&7] = m.Regs[u.dst&7]&^0xFF | v&0xFF
				case uStore4:
					a := m.uaddr(u)
					if !m.Mem.store32Fast(a, m.Regs[u.src&7]) {
						if err := m.Mem.Store(a, m.Regs[u.src&7], 4); err != nil {
							return m.uopFault(i, uint32(j), pc, err)
						}
					}
				case uStore:
					if err := m.Mem.Store(m.uaddr(u), m.Regs[u.src&7], u.size()); err != nil {
						return m.uopFault(i, uint32(j), pc, err)
					}
				case uStoreI:
					if err := m.Mem.Store(m.uaddr(u), uint32(u.imm), u.size()); err != nil {
						return m.uopFault(i, uint32(j), pc, err)
					}
				case uLea:
					m.Regs[u.dst&7] = m.uaddr(u)

				case uAdd:
					m.Regs[u.dst&7] += m.Regs[u.src&7]
				case uSub:
					m.Regs[u.dst&7] -= m.Regs[u.src&7]
				case uAnd:
					m.Regs[u.dst&7] &= m.Regs[u.src&7]
				case uOr:
					m.Regs[u.dst&7] |= m.Regs[u.src&7]
				case uXor:
					m.Regs[u.dst&7] ^= m.Regs[u.src&7]
				case uShl:
					m.Regs[u.dst&7] <<= m.Regs[u.src&7] & 31
				case uShr:
					m.Regs[u.dst&7] >>= m.Regs[u.src&7] & 31
				case uSar:
					m.Regs[u.dst&7] = uint32(int32(m.Regs[u.dst&7]) >> (m.Regs[u.src&7] & 31))
				case uMul:
					m.Regs[u.dst&7] *= m.Regs[u.src&7]
				case uDiv, uMod:
					d := int32(m.Regs[u.src&7])
					if d == 0 {
						return m.uopFault(i, uint32(j), pc, fmt.Errorf("machine: division by zero at pc=0x%x", pc))
					}
					n := int32(m.Regs[u.dst&7])
					if u.k == uDiv {
						m.Regs[u.dst&7] = uint32(n / d)
					} else {
						m.Regs[u.dst&7] = uint32(n % d)
					}

				case uAddI:
					m.Regs[u.dst&7] += uint32(u.imm)
				case uSubI:
					m.Regs[u.dst&7] -= uint32(u.imm)
				case uAndI:
					m.Regs[u.dst&7] &= uint32(u.imm)
				case uOrI:
					m.Regs[u.dst&7] |= uint32(u.imm)
				case uXorI:
					m.Regs[u.dst&7] ^= uint32(u.imm)
				case uShlI:
					m.Regs[u.dst&7] <<= uint32(u.imm) & 31
				case uShrI:
					m.Regs[u.dst&7] >>= uint32(u.imm) & 31
				case uSarI:
					m.Regs[u.dst&7] = uint32(int32(m.Regs[u.dst&7]) >> (uint32(u.imm) & 31))
				case uMulI:
					m.Regs[u.dst&7] *= uint32(u.imm)
				case uDivI, uModI:
					if u.imm == 0 {
						return m.uopFault(i, uint32(j), pc, fmt.Errorf("machine: division by zero at pc=0x%x", pc))
					}
					n := int32(m.Regs[u.dst&7])
					if u.k == uDivI {
						m.Regs[u.dst&7] = uint32(n / u.imm)
					} else {
						m.Regs[u.dst&7] = uint32(n % u.imm)
					}

				case uNeg:
					m.Regs[u.dst&7] = -m.Regs[u.dst&7]
				case uNot:
					m.Regs[u.dst&7] = ^m.Regs[u.dst&7]

				case uCmp:
					m.flags = flags{a: m.Regs[u.dst&7], b: m.Regs[u.src&7]}
				case uCmpI:
					m.flags = flags{a: m.Regs[u.dst&7], b: uint32(u.imm)}
				case uTest:
					m.flags = flags{a: m.Regs[u.dst&7] & m.Regs[u.src&7], test: true}
				case uSet:
					if m.flags.eval(u.cond()) {
						m.Regs[u.dst&7] = 1
					} else {
						m.Regs[u.dst&7] = 0
					}

				case uPush, uPushI:
					// ESP moves before the store, so on a fault ESP stays
					// decremented — the same order Machine.push uses.
					v := uint32(u.imm)
					if u.k == uPush {
						v = m.Regs[u.src&7]
					}
					sp := m.Regs[isa.ESP] - 4
					m.Regs[isa.ESP] = sp
					if !m.Mem.store32Fast(sp, v) {
						if err := m.Mem.Store(sp, v, 4); err != nil {
							return m.uopFault(i, uint32(j), pc, err)
						}
					}
				case uPop:
					sp := m.Regs[isa.ESP]
					v, ok := m.Mem.load32Fast(sp)
					if !ok {
						var err error
						if v, err = m.Mem.Load(sp, 4); err != nil {
							return m.uopFault(i, uint32(j), pc, err)
						}
					}
					m.Regs[isa.ESP] += 4
					m.Regs[u.dst&7] = v
				}
				pc += isa.InstrSize
			}
			m.Steps += uint64(n)
			m.Cycles += m.runCost[i]
			m.pc = pc
			i += n
			if m.Steps >= m.MaxSteps {
				return ErrMaxSteps
			}
			if i >= uint32(len(m.prog)) {
				return m.badPC()
			}
		}
		// The terminator (or a control instruction sitting directly at the
		// entry PC) executes exactly like one per-instruction step: JMP/JCC
		// inline (charging their cost like Step does before its switch),
		// everything else through exec (which charges its own).
		m.Steps++
		switch u := &m.prog[i]; u.k {
		case uJmp:
			m.Cycles += uint64(u.cost)
			to := uint32(u.imm)
			if m.Hook == nil && m.BlockHook == nil && !m.blockPending {
				m.pc = to
				continue
			}
			m.transferTo(TransferJump, to, false)
		case uJcc:
			m.Cycles += uint64(u.cost)
			to := m.pc + isa.InstrSize
			taken := m.flags.eval(u.cond())
			if taken {
				to = uint32(u.imm)
			}
			if m.Hook == nil && m.BlockHook == nil && !m.blockPending {
				m.pc = to
				continue
			}
			m.transferTo(TransferBranch, to, taken)
		default:
			if err := m.exec(&m.code[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// runStepwise executes per-instruction until halt or error — the dispatch
// mode superblock execution falls back to (and the reference mode the
// differential tests compare against).
func (m *Machine) runStepwise() error {
	for !m.halted {
		if err := m.Step(); err != nil {
			return err
		}
	}
	return nil
}
