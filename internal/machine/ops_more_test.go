package machine

import (
	"strings"
	"testing"

	"wytiwyg/internal/asm"
	"wytiwyg/internal/obj"
)

func assembleSrc(t *testing.T, src string) (*obj.Image, error) {
	t.Helper()
	return asm.Assemble("t", src, "")
}

// Every immediate-ALU opcode with operands where signedness matters.
func TestImmediateALUOps(t *testing.T) {
	res, _ := run(t, `
main:
    movi eax, -20
    addi eax, 6        ; -14
    subi eax, -4       ; -10
    muli eax, -3       ; 30
    divi eax, 4        ; 7
    modi eax, 4        ; 3
    ori  eax, 8        ; 11
    xori eax, 2        ; 9
    andi eax, 13       ; 9
    shli eax, 4        ; 144
    shri eax, 1        ; 72
    sari eax, 3        ; 9
    movi ecx, -64
    sari ecx, 4        ; -4
    neg ecx            ; 4
    add eax, ecx       ; 13
    movi edx, -21
    mov ebx, edx
    mod ebx, eax       ; -21 % 13 = -8
    neg ebx            ; 8
    div edx, ebx       ; -21 / 8 = -2
    neg edx            ; 2
    mul eax, edx       ; 26
    add eax, ebx       ; 34
    push eax
    call @exit
    halt
`, Input{})
	if res.ExitCode != 34 {
		t.Errorf("exit = %d, want 34", res.ExitCode)
	}
}

// Faults on every memory-op class are errors with the faulting address.
func TestMemoryOpFaults(t *testing.T) {
	cases := []struct {
		name, body string
	}{
		{"store", "movi eax, 16\n\tstore4 [eax], ecx"},
		{"storei", "movi eax, 16\n\tstorei4 [eax], 7"},
		{"load", "movi eax, 16\n\tload4 ecx, [eax]"},
		{"loadlo8", "movi eax, 16\n\tloadlo8 ecx, [eax]"},
		{"load-signed", "movi eax, 16\n\tload2s ecx, [eax]"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			src := "main:\n\t" + c.body + "\n\thalt\n"
			img, err := assembleSrc(t, src)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := Execute(img, Input{}, nil); err == nil ||
				!strings.Contains(err.Error(), "fault") {
				t.Errorf("err = %v, want memory fault", err)
			}
		})
	}
}

// Control transfers outside the code section fail at the next fetch, with
// the program counter in the error.
func TestWildControlTransfers(t *testing.T) {
	cases := []struct{ name, src string }{
		{"jmpr", "main:\n\tmovi eax, 64\n\tjmpr eax\n\thalt\n"},
		{"callr", "main:\n\tmovi eax, 64\n\tcallr eax\n\thalt\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			img, err := assembleSrc(t, c.src)
			if err != nil {
				t.Fatal(err)
			}
			_, err = Execute(img, Input{}, nil)
			if err == nil || !strings.Contains(err.Error(), "pc=") {
				t.Errorf("err = %v, want a pc-bearing fetch error", err)
			}
		})
	}
}

// MOVLO8 merges only the low byte, preserving the destination's upper
// bits — the machine-level root of the paper's §4.2.3 false derives.
func TestMovLo8PreservesUpperBits(t *testing.T) {
	res, _ := run(t, `
main:
    movi eax, 0x11223344
    movi ecx, 0x55667788
    movlo8 eax, ecx        ; eax = 0x11223388
    shri eax, 24           ; 0x11
    push eax
    call @exit
    halt
`, Input{})
	if res.ExitCode != 0x11 {
		t.Errorf("exit = %#x, want 0x11", res.ExitCode)
	}
}
