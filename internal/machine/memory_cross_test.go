package machine

import (
	"bytes"
	"strings"
	"testing"
)

// TestCrossPageLoadStore exercises the slow path: accesses that straddle a
// page boundary must round-trip through the byte-at-a-time fallback exactly
// as single-page accesses do.
func TestCrossPageLoadStore(t *testing.T) {
	cases := []struct {
		addr uint32
		size uint8
		val  uint32
	}{
		{pageSize - 1, 2, 0xBEEF},       // 2-byte write, 1 byte each side
		{pageSize - 1, 4, 0xDEADBEEF},   // 4-byte write, 1+3 split
		{pageSize - 2, 4, 0xCAFEBABE},   // 2+2 split
		{pageSize - 3, 4, 0x12345678},   // 3+1 split
		{3*pageSize - 1, 4, 0xA5A5A5A5}, // later boundary
		{pageSize - 1, 1, 0x7F},         // last byte of a page: not a crossing
		{pageSize, 4, 0x01020304},       // first bytes of a page: not a crossing
		{2*pageSize - 2, 2, 0x1234},     // 2-byte at pageSize-2: not a crossing
		{0x7FFFFFFE, 4, 0x0BADF00D},     // crossing in the upper half of the space
	}
	m := NewMemory()
	// Round-trip each case before the next: several cases deliberately
	// overlap the same boundary bytes.
	for _, c := range cases {
		if err := m.Store(c.addr, c.val, c.size); err != nil {
			t.Fatalf("Store(0x%x, %d bytes): %v", c.addr, c.size, err)
		}
		got, err := m.Load(c.addr, c.size)
		if err != nil {
			t.Fatalf("Load(0x%x, %d bytes): %v", c.addr, c.size, err)
		}
		if got != c.val {
			t.Errorf("Load(0x%x, %d bytes) = 0x%x, want 0x%x", c.addr, c.size, got, c.val)
		}
	}
}

// TestCrossPageByteOrder pins the little-endian byte placement of a crossing
// store: the low bytes land at the end of one page, the high bytes at the
// start of the next.
func TestCrossPageByteOrder(t *testing.T) {
	m := NewMemory()
	const addr = pageSize - 2
	if err := m.Store(addr, 0x44332211, 4); err != nil {
		t.Fatal(err)
	}
	want := []uint32{0x11, 0x22, 0x33, 0x44}
	for i, w := range want {
		b, err := m.Load(addr+uint32(i), 1)
		if err != nil {
			t.Fatal(err)
		}
		if b != w {
			t.Errorf("byte %d (at 0x%x) = 0x%x, want 0x%x", i, addr+uint32(i), b, w)
		}
	}
}

// TestCrossPartialOverwrite checks that a crossing store interacts correctly
// with in-page neighbours on both sides of the boundary.
func TestCrossPartialOverwrite(t *testing.T) {
	m := NewMemory()
	if err := m.Store(pageSize-4, 0xAAAAAAAA, 4); err != nil { // fully below
		t.Fatal(err)
	}
	if err := m.Store(pageSize, 0xBBBBBBBB, 4); err != nil { // fully above
		t.Fatal(err)
	}
	if err := m.Store(pageSize-2, 0xDDCCCCDD, 4); err != nil { // straddles both
		t.Fatal(err)
	}
	lo, err := m.Load(pageSize-4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if lo != 0xCCDDAAAA {
		t.Errorf("below-boundary word = 0x%x, want 0xCCDDAAAA", lo)
	}
	hi, err := m.Load(pageSize, 4)
	if err != nil {
		t.Fatal(err)
	}
	if hi != 0xBBBBDDCC {
		t.Errorf("above-boundary word = 0x%x, want 0xBBBBDDCC", hi)
	}
}

// TestCrossIntoNullPage checks that an access wrapping the 32-bit address
// space into the null guard region faults rather than writing page 0.
func TestCrossIntoNullPage(t *testing.T) {
	m := NewMemory()
	if err := m.Store(0xFFFFFFFE, 0xDEADBEEF, 4); err == nil {
		t.Fatal("store wrapping into the null page succeeded")
	}
	if _, err := m.Load(0xFFFFFFFE, 4); err == nil {
		t.Fatal("load wrapping into the null page succeeded")
	}
	// The null guard must also hold on the cached-page fast path: touch a
	// legal address on page 0's page number... there is none (page 0 starts
	// at 0), so instead verify a plain in-page null access still faults after
	// the cache has been warmed elsewhere.
	if err := m.Store(0x10000, 1, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Load(0x800, 4); err == nil {
		t.Fatal("null-page load succeeded after cache warm-up")
	}
}

// TestWriteReadBytesCrossing drives the chunked bulk paths across several
// page boundaries at once.
func TestWriteReadBytesCrossing(t *testing.T) {
	m := NewMemory()
	data := make([]byte, 3*pageSize/2)
	for i := range data {
		data[i] = byte(i*7 + 1)
	}
	start := uint32(pageSize - 1000) // spans two boundaries
	if err := m.WriteBytes(start, data); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadBytes(start, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("ReadBytes round-trip mismatch across page boundaries")
	}
}

// TestCStringCrossing reads a string that straddles a page boundary.
func TestCStringCrossing(t *testing.T) {
	m := NewMemory()
	s := strings.Repeat("x", 300) + "end"
	start := uint32(pageSize - 150)
	if err := m.WriteBytes(start, append([]byte(s), 0)); err != nil {
		t.Fatal(err)
	}
	got, err := m.CString(start)
	if err != nil {
		t.Fatal(err)
	}
	if got != s {
		t.Fatalf("CString across boundary = %q (len %d), want len %d", got[:10], len(got), len(s))
	}
}
