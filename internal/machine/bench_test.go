package machine

import (
	"testing"

	"wytiwyg/internal/asm"
)

// benchLoop is a self-contained infinite loop mixing the instruction classes
// the emulator executes most: ALU ops, a store, a load, a compare and a
// jump. BenchmarkStep drives it one instruction at a time.
const benchLoop = `
main:
    mov ebx, esp
    subi ebx, 64
.loop:
    addi eax, 1
    mov ecx, eax
    shli ecx, 3
    store4 [ebx], ecx
    load4 edx, [ebx]
    add edx, eax
    cmpi eax, 0
    jmp .loop
`

// BenchmarkStep measures the per-instruction cost of the emulator's
// fetch/dispatch/execute cycle over a representative instruction mix.
func BenchmarkStep(b *testing.B) {
	img, err := asm.Assemble("bench", benchLoop, "")
	if err != nil {
		b.Fatal(err)
	}
	m, err := New(img, Input{}, nil)
	if err != nil {
		b.Fatal(err)
	}
	m.MaxSteps = ^uint64(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRun measures the same loop through Run's batched dispatch (no
// hooks attached), amortizing the per-step loop overhead.
func BenchmarkRun(b *testing.B) {
	img, err := asm.Assemble("bench", benchLoop, "")
	if err != nil {
		b.Fatal(err)
	}
	m, err := New(img, Input{}, nil)
	if err != nil {
		b.Fatal(err)
	}
	m.MaxSteps = 0 // re-armed each iteration below
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += 4096 {
		m.MaxSteps = m.Steps + 4096
		if err := m.Run(); err != ErrMaxSteps {
			b.Fatal(err)
		}
	}
}

// BenchmarkMemLoad measures 4-byte aligned loads that stay within one page —
// the overwhelmingly common case on the emulator's hot path.
func BenchmarkMemLoad(b *testing.B) {
	m := NewMemory()
	if err := m.Store(0x10000, 0xdeadbeef, 4); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint32
	for i := 0; i < b.N; i++ {
		v, err := m.Load(0x10000+uint32(i&1023)*4, 4)
		if err != nil {
			b.Fatal(err)
		}
		sink += v
	}
	_ = sink
}

// BenchmarkMemStore is the store-side twin of BenchmarkMemLoad.
func BenchmarkMemStore(b *testing.B) {
	m := NewMemory()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Store(0x10000+uint32(i&1023)*4, uint32(i), 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMemLoadCross measures the page-boundary-crossing slow path that
// the fast path must fall back to.
func BenchmarkMemLoadCross(b *testing.B) {
	m := NewMemory()
	if err := m.Store(pageSize-2, 0xbeef, 4); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint32
	for i := 0; i < b.N; i++ {
		v, err := m.Load(pageSize-2, 4)
		if err != nil {
			b.Fatal(err)
		}
		sink += v
	}
	_ = sink
}
