package machine_test

// Differential tests for superblock dispatch (superblock.go): every
// observable of an execution — final registers, pc, Steps, Cycles, total
// cycles, exit code, program output, the memory digest, and the exact
// Transfer/BlockHook/InstrHook event streams — must be identical whether a
// program runs through Run's superblock path, Run with NoSuperblocks set,
// or a manual Step loop, with any combination of hooks attached. The
// dispatch switch exists in two deliberate copies (see superblock.go);
// these tests are the guard that keeps the copies from drifting.

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"testing"

	"wytiwyg/internal/asm"
	"wytiwyg/internal/bench/progs"
	"wytiwyg/internal/codegen"
	"wytiwyg/internal/codegen/irgen"
	"wytiwyg/internal/isa"
	"wytiwyg/internal/machine"
	"wytiwyg/internal/minicc/gen"
	"wytiwyg/internal/obj"
)

// blockEv is one BlockHook callback, recorded verbatim.
type blockEv struct {
	start, end uint32
	t          machine.Transfer
	term       bool
}

// runState is everything observable about one finished (or faulted)
// execution.
type runState struct {
	errStr    string // "" when the run halted cleanly
	regs      [isa.NumRegs]uint32
	pc        uint32
	steps     uint64
	cycles    uint64
	total     uint64
	halted    bool
	exit      int32
	digest    [sha256.Size]byte
	out       string
	transfers []machine.Transfer
	blocks    []blockEv
	pcs       []uint32 // InstrHook stream; nil when the hook was off
}

// hookSet selects which observers a run attaches.
type hookSet struct {
	transfer bool
	block    bool
	instr    bool
}

func (h hookSet) String() string {
	return fmt.Sprintf("transfer=%v block=%v instr=%v", h.transfer, h.block, h.instr)
}

// runImage executes img on input in the given mode and returns the full
// observable state. maxSteps overrides the default budget when non-zero.
func runImage(t *testing.T, img *obj.Image, input machine.Input, noSuper bool, hooks hookSet, maxSteps uint64) runState {
	t.Helper()
	var out bytes.Buffer
	m, err := machine.New(img, input, &out)
	if err != nil {
		t.Fatalf("machine.New: %v", err)
	}
	m.NoSuperblocks = noSuper
	if maxSteps != 0 {
		m.MaxSteps = maxSteps
	}
	var st runState
	if hooks.transfer {
		m.Hook = func(tr machine.Transfer) { st.transfers = append(st.transfers, tr) }
	}
	if hooks.block {
		m.BlockHook = func(start, end uint32, tr machine.Transfer, term bool) {
			st.blocks = append(st.blocks, blockEv{start, end, tr, term})
		}
	}
	if hooks.instr {
		st.pcs = []uint32{}
		m.InstrHook = func(pc uint32) { st.pcs = append(st.pcs, pc) }
	}
	if err := m.Run(); err != nil {
		st.errStr = err.Error()
	}
	st.regs = m.Regs
	st.pc = m.PC()
	st.steps = m.Steps
	st.cycles = m.Cycles
	st.total = m.TotalCycles()
	st.halted = m.Halted()
	st.exit = m.ExitCode()
	st.digest = m.Mem.Digest()
	st.out = out.String()
	return st
}

// diffStates fails the test on the first observable that differs between a
// reference run and a candidate run. Event streams are compared only when
// both runs recorded them.
func diffStates(t *testing.T, label string, ref, got runState) {
	t.Helper()
	if ref.errStr != got.errStr {
		t.Fatalf("%s: error mismatch:\n ref: %q\n got: %q", label, ref.errStr, got.errStr)
	}
	if ref.regs != got.regs {
		t.Errorf("%s: registers differ:\n ref: %v\n got: %v", label, ref.regs, got.regs)
	}
	if ref.pc != got.pc {
		t.Errorf("%s: pc differs: ref=0x%x got=0x%x", label, ref.pc, got.pc)
	}
	if ref.steps != got.steps {
		t.Errorf("%s: Steps differ: ref=%d got=%d", label, ref.steps, got.steps)
	}
	if ref.cycles != got.cycles {
		t.Errorf("%s: Cycles differ: ref=%d got=%d", label, ref.cycles, got.cycles)
	}
	if ref.total != got.total {
		t.Errorf("%s: TotalCycles differ: ref=%d got=%d", label, ref.total, got.total)
	}
	if ref.halted != got.halted {
		t.Errorf("%s: halted differs: ref=%v got=%v", label, ref.halted, got.halted)
	}
	if ref.exit != got.exit {
		t.Errorf("%s: exit code differs: ref=%d got=%d", label, ref.exit, got.exit)
	}
	if ref.digest != got.digest {
		t.Errorf("%s: memory digests differ", label)
	}
	if ref.out != got.out {
		t.Errorf("%s: program output differs:\n ref: %q\n got: %q", label, ref.out, got.out)
	}
	if ref.transfers != nil && got.transfers != nil {
		if len(ref.transfers) != len(got.transfers) {
			t.Fatalf("%s: transfer counts differ: ref=%d got=%d", label, len(ref.transfers), len(got.transfers))
		}
		for i := range ref.transfers {
			if ref.transfers[i] != got.transfers[i] {
				t.Fatalf("%s: transfer %d differs:\n ref: %+v\n got: %+v", label, i, ref.transfers[i], got.transfers[i])
			}
		}
	}
	if ref.blocks != nil && got.blocks != nil {
		if len(ref.blocks) != len(got.blocks) {
			t.Fatalf("%s: block event counts differ: ref=%d got=%d", label, len(ref.blocks), len(got.blocks))
		}
		for i := range ref.blocks {
			if ref.blocks[i] != got.blocks[i] {
				t.Fatalf("%s: block event %d differs:\n ref: %+v\n got: %+v", label, i, ref.blocks[i], got.blocks[i])
			}
		}
	}
	if ref.pcs != nil && got.pcs != nil {
		if len(ref.pcs) != len(got.pcs) {
			t.Fatalf("%s: InstrHook stream lengths differ: ref=%d got=%d", label, len(ref.pcs), len(got.pcs))
		}
		for i := range ref.pcs {
			if ref.pcs[i] != got.pcs[i] {
				t.Fatalf("%s: InstrHook pc %d differs: ref=0x%x got=0x%x", label, i, ref.pcs[i], got.pcs[i])
			}
		}
	}
}

// differential runs img on input through every dispatch mode × hook
// configuration and requires all of them to observe the same execution.
func differential(t *testing.T, img *obj.Image, input machine.Input) {
	t.Helper()
	allHooks := hookSet{transfer: true, block: true, instr: true}
	// The reference: per-instruction dispatch with every observer attached.
	ref := runImage(t, img, input, true, allHooks, 0)
	if ref.instrCount() != ref.steps {
		t.Errorf("reference: InstrHook fired %d times for %d steps", ref.instrCount(), ref.steps)
	}
	configs := []struct {
		noSuper bool
		hooks   hookSet
	}{
		{false, hookSet{}},                            // superblock fast path, no observers
		{false, hookSet{transfer: true}},              // superblock + transfer hook
		{false, hookSet{transfer: true, block: true}}, // superblock + both block-level hooks
		{false, allHooks},                             // InstrHook forces the stepwise fallback
		{true, hookSet{}},                             // per-instruction, no observers
		{true, hookSet{instr: true}},                  // per-instruction + InstrHook
	}
	for _, c := range configs {
		label := fmt.Sprintf("noSuper=%v %s", c.noSuper, c.hooks)
		got := runImage(t, img, input, c.noSuper, c.hooks, 0)
		diffStates(t, label, ref, got)
		if got.pcs != nil && uint64(len(got.pcs)) != got.steps {
			t.Errorf("%s: InstrHook fired %d times for %d steps", label, len(got.pcs), got.steps)
		}
	}
}

func (s runState) instrCount() uint64 { return uint64(len(s.pcs)) }

// TestSuperblockDifferentialCorpus runs every bench-corpus program
// (compiled with the full mini-C pipeline) under superblock and
// per-instruction dispatch and requires observational identity.
func TestSuperblockDifferentialCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus differential is minutes-scale under -race; ci.sh runs it in a dedicated step")
	}
	for _, p := range progs.All {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			img, err := gen.Build(p.Src, gen.GCC12O3, p.Name)
			if err != nil {
				t.Fatalf("build %s: %v", p.Name, err)
			}
			differential(t, img, p.Train)
		})
	}
}

// TestSuperblockDifferentialRandomIR feeds the dispatcher adversarial
// instruction mixes: random well-defined IR compiled straight through
// codegen, shapes the mini-C frontend never emits.
func TestSuperblockDifferentialRandomIR(t *testing.T) {
	if testing.Short() {
		t.Skip("random-IR differential skips under -short; ci.sh runs it in a dedicated step")
	}
	for seed := int64(1); seed <= 40; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			a := int32(seed*11 - 200)
			b := int32(seed*-5 + 137)
			img, err := codegen.Compile(irgen.Build(seed, a, b), "rnd")
			if err != nil {
				t.Fatalf("compile seed %d: %v", seed, err)
			}
			differential(t, img, machine.Input{})
		})
	}
}

// faultMid is a program that faults with a null-page store in the middle of
// a long straight-line run: several instructions execute before the fault
// and two more sit after it in the same superblock, so partial-batch Steps
// and Cycles accounting is on the line.
const faultMid = `
main:
    addi eax, 1
    addi eax, 2
    movi ebx, 16
    addi eax, 4
    store4 [ebx], eax
    addi eax, 8
    addi eax, 16
    halt
`

// faultDiv divides by zero mid-run.
const faultDiv = `
main:
    movi eax, 100
    addi eax, 1
    movi ebx, 0
    div eax, ebx
    addi eax, 1
    halt
`

// faultPop underflows into unmapped-is-fine territory but then loads from
// the null page via a POP with ESP pointing below 0x1000.
const faultPop = `
main:
    movi esp, 16
    addi eax, 1
    pop ecx
    halt
`

// TestSuperblockFaultDifferential checks that faults raised from inside a
// superblock leave the machine in exactly the state per-instruction
// dispatch leaves it in: same error string, same pc (the faulting
// instruction), same partial Steps/Cycles, same registers.
func TestSuperblockFaultDifferential(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"null-store-mid-run", faultMid},
		{"div-by-zero", faultDiv},
		{"pop-null-page", faultPop},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			img, err := asm.Assemble(c.name, c.src, "")
			if err != nil {
				t.Fatalf("assemble: %v", err)
			}
			ref := runImage(t, img, machine.Input{}, true, hookSet{}, 0)
			if ref.errStr == "" {
				t.Fatalf("expected the reference run to fault")
			}
			got := runImage(t, img, machine.Input{}, false, hookSet{}, 0)
			diffStates(t, "superblock", ref, got)
		})
	}
}

// stepLoop is the benchmark loop: an infinite straight-line body ending in
// an unconditional jump, the densest superblock the dispatcher sees.
const stepLoop = `
main:
    mov ebx, esp
    subi ebx, 64
.loop:
    addi eax, 1
    mov ecx, eax
    shli ecx, 3
    store4 [ebx], ecx
    load4 edx, [ebx]
    add edx, eax
    cmpi eax, 0
    jmp .loop
`

// TestSuperblockMaxStepsParity is the MaxSteps overshoot regression test: a
// superblock must never execute past the step budget. For every budget
// crossing a run boundary at every offset, both dispatch modes must stop
// with ErrMaxSteps after exactly MaxSteps instructions, in identical
// states.
func TestSuperblockMaxStepsParity(t *testing.T) {
	img, err := asm.Assemble("steploop", stepLoop, "")
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	for budget := uint64(1); budget <= 40; budget++ {
		ref := runImage(t, img, machine.Input{}, true, hookSet{}, budget)
		got := runImage(t, img, machine.Input{}, false, hookSet{}, budget)
		if ref.errStr != machine.ErrMaxSteps.Error() {
			t.Fatalf("budget %d: reference error = %q, want ErrMaxSteps", budget, ref.errStr)
		}
		if ref.steps != budget {
			t.Fatalf("budget %d: reference executed %d steps", budget, ref.steps)
		}
		if got.steps > budget {
			t.Fatalf("budget %d: superblock overshot the budget: %d steps", budget, got.steps)
		}
		diffStates(t, fmt.Sprintf("budget=%d", budget), ref, got)
	}
}

// TestSuperblockMaxStepsErrIs pins that the budget error from both dispatch
// paths is the ErrMaxSteps sentinel (callers re-arm budgets by matching
// it), not merely a string twin.
func TestSuperblockMaxStepsErrIs(t *testing.T) {
	img, err := asm.Assemble("steploop", stepLoop, "")
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	for _, noSuper := range []bool{false, true} {
		m, err := machine.New(img, machine.Input{}, nil)
		if err != nil {
			t.Fatalf("machine.New: %v", err)
		}
		m.NoSuperblocks = noSuper
		m.MaxSteps = 17
		if err := m.Run(); !errors.Is(err, machine.ErrMaxSteps) {
			t.Fatalf("noSuper=%v: Run = %v, want ErrMaxSteps", noSuper, err)
		}
		if m.Steps != 17 {
			t.Fatalf("noSuper=%v: Steps = %d, want 17", noSuper, m.Steps)
		}
		// The machine is resumable after a budget bump, in both modes.
		m.MaxSteps = 34
		if err := m.Run(); !errors.Is(err, machine.ErrMaxSteps) {
			t.Fatalf("noSuper=%v resume: Run = %v, want ErrMaxSteps", noSuper, err)
		}
		if m.Steps != 34 {
			t.Fatalf("noSuper=%v resume: Steps = %d, want 34", noSuper, m.Steps)
		}
	}
}

// TestStepInterleavesWithRun pins that a manual Step loop and Run agree
// even when interleaved: stepping N instructions and then calling Run must
// finish in the same state as Run alone.
func TestStepInterleavesWithRun(t *testing.T) {
	p, ok := progs.ByName("mcf")
	if !ok {
		t.Fatal("mcf not in corpus")
	}
	img, err := gen.Build(p.Src, gen.GCC12O3, p.Name)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	ref := runImage(t, img, p.Train, false, hookSet{}, 0)
	var out bytes.Buffer
	m, err := machine.New(img, p.Train, &out)
	if err != nil {
		t.Fatalf("machine.New: %v", err)
	}
	for i := 0; i < 137 && !m.Halted(); i++ {
		if err := m.Step(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if err := m.Run(); err != nil {
		t.Fatalf("run after stepping: %v", err)
	}
	if m.Regs != ref.regs || m.Steps != ref.steps || m.Cycles != ref.cycles {
		t.Fatalf("interleaved Step+Run diverged: regs=%v steps=%d cycles=%d, want regs=%v steps=%d cycles=%d",
			m.Regs, m.Steps, m.Cycles, ref.regs, ref.steps, ref.cycles)
	}
	if d := m.Mem.Digest(); d != ref.digest {
		t.Fatalf("interleaved Step+Run memory digest diverged")
	}
	if out.String() != ref.out {
		t.Fatalf("interleaved Step+Run output diverged: %q vs %q", out.String(), ref.out)
	}
}
