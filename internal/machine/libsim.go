package machine

import (
	"fmt"
	"io"
	"strings"

	"wytiwyg/internal/isa"
)

// libsim is the simulated C library. External functions are called through
// PLT addresses (>= isa.ExtBase); the machine dispatches them natively, with
// cdecl argument passing: arguments on the stack above the return address,
// result in EAX, caller cleans the stack. Each handler charges cycles
// proportional to the work it does so that library time is comparable
// between input and recompiled binaries (it is identical code in both, so it
// largely cancels out of the paper's runtime ratios).
//
// The set mirrors the libc functions the paper's external-function database
// needs to describe (§5.3): memory movers, string functions, a printf
// family with runtime-inspectable format strings (§5.2), an allocator, and
// the input accessors standing in for the benchmark ref inputs.

// LibState is the simulated C library's runtime state. It is shared between
// the machine (running original and recompiled binaries) and the IR
// interpreter (running instrumented lifted programs), so that external
// behaviour is bit-identical in both worlds.
type LibState struct {
	Mem *Memory   // the program's address space
	Out io.Writer // printf/puts output sink
	// Cycles accumulates work done inside library functions.
	Cycles uint64
	// Halted is set by exit(); ExitCode carries its status argument.
	Halted   bool
	ExitCode int32 // see Halted

	input     Input
	inStrPtr  []uint32
	heapBrk   uint32
	randState uint32
	strtokPos uint32
}

// NewLibState initializes library state over a memory, laying the input
// strings into the input region.
func NewLibState(mem *Memory, input Input, out io.Writer) (*LibState, error) {
	if out == nil {
		out = io.Discard
	}
	ls := &LibState{
		Mem:       mem,
		Out:       out,
		input:     input,
		heapBrk:   isa.HeapBase,
		randState: 0x2545F491,
	}
	addr := isa.InputBase
	for _, s := range input.Strs {
		ls.inStrPtr = append(ls.inStrPtr, addr)
		if err := mem.WriteBytes(addr, append([]byte(s), 0)); err != nil {
			return nil, err
		}
		addr += uint32(len(s)) + 1
		addr = (addr + 3) &^ 3
	}
	return ls, nil
}

// Call invokes a library function by name, reading arguments through arg
// (argument i of the call).
func (ls *LibState) Call(name string, arg func(i int) (uint32, error)) (uint32, error) {
	h, ok := extHandlers[name]
	if !ok {
		return 0, fmt.Errorf("machine: external %q not implemented", name)
	}
	return h(ls, arg)
}

// IsExternal reports whether a library function exists.
func IsExternal(name string) bool {
	_, ok := extHandlers[name]
	return ok
}

// extHandler is the native implementation of one library function. arg
// reads the i-th stack argument.
type extHandler func(ls *LibState, arg func(i int) (uint32, error)) (uint32, error)

// ExtNames lists every library function, in PLT order. The assembler
// assigns PLT addresses in this order; extdb describes their pointer
// behaviour.
var ExtNames = []string{
	"exit",
	"putint",
	"putchar",
	"puts",
	"printf",
	"sprintf",
	"malloc",
	"free",
	"memset",
	"memcpy",
	"strlen",
	"strcmp",
	"strcpy",
	"strtok",
	"atoi",
	"abs",
	"rand",
	"srand",
	"input_int",
	"input_str",
}

// ExtAddrFor returns the canonical PLT address of a library function.
func ExtAddrFor(name string) (uint32, bool) {
	for i, n := range ExtNames {
		if n == name {
			return isa.ExtBase + uint32(i)*isa.InstrSize, true
		}
	}
	return 0, false
}

var extHandlers = map[string]extHandler{
	"exit": func(ls *LibState, arg func(int) (uint32, error)) (uint32, error) {
		code, err := arg(0)
		if err != nil {
			return 0, err
		}
		ls.Halted = true
		ls.ExitCode = int32(code)
		return code, nil
	},
	"putint": func(ls *LibState, arg func(int) (uint32, error)) (uint32, error) {
		v, err := arg(0)
		if err != nil {
			return 0, err
		}
		s := fmt.Sprintf("%d", int32(v))
		ls.Cycles += uint64(len(s))
		fmt.Fprint(ls.Out, s)
		return 0, nil
	},
	"putchar": func(ls *LibState, arg func(int) (uint32, error)) (uint32, error) {
		v, err := arg(0)
		if err != nil {
			return 0, err
		}
		ls.Cycles++
		fmt.Fprintf(ls.Out, "%c", byte(v))
		return v, nil
	},
	"puts": func(ls *LibState, arg func(int) (uint32, error)) (uint32, error) {
		p, err := arg(0)
		if err != nil {
			return 0, err
		}
		s, err := ls.Mem.CString(p)
		if err != nil {
			return 0, err
		}
		ls.Cycles += uint64(len(s)) + 1
		fmt.Fprintln(ls.Out, s)
		return uint32(len(s) + 1), nil
	},
	"printf": func(ls *LibState, arg func(int) (uint32, error)) (uint32, error) {
		s, err := ls.formatPrintf(arg, 0)
		if err != nil {
			return 0, err
		}
		ls.Cycles += uint64(len(s))
		fmt.Fprint(ls.Out, s)
		return uint32(len(s)), nil
	},
	"sprintf": func(ls *LibState, arg func(int) (uint32, error)) (uint32, error) {
		dst, err := arg(0)
		if err != nil {
			return 0, err
		}
		s, err := ls.formatPrintf(arg, 1)
		if err != nil {
			return 0, err
		}
		ls.Cycles += uint64(len(s))
		if err := ls.Mem.WriteBytes(dst, append([]byte(s), 0)); err != nil {
			return 0, err
		}
		return uint32(len(s)), nil
	},
	"malloc": func(ls *LibState, arg func(int) (uint32, error)) (uint32, error) {
		n, err := arg(0)
		if err != nil {
			return 0, err
		}
		// Deterministic bump allocator, 8-byte aligned.
		p := ls.heapBrk
		ls.heapBrk += (n + 7) &^ 7
		ls.Cycles += 20
		return p, nil
	},
	"free": func(ls *LibState, arg func(int) (uint32, error)) (uint32, error) {
		if _, err := arg(0); err != nil {
			return 0, err
		}
		ls.Cycles += 10
		return 0, nil
	},
	"memset": func(ls *LibState, arg func(int) (uint32, error)) (uint32, error) {
		p, err := arg(0)
		if err != nil {
			return 0, err
		}
		v, err := arg(1)
		if err != nil {
			return 0, err
		}
		n, err := arg(2)
		if err != nil {
			return 0, err
		}
		for i := uint32(0); i < n; i++ {
			if err := ls.Mem.Store(p+i, v, 1); err != nil {
				return 0, err
			}
		}
		ls.Cycles += uint64(n)/4 + 4
		return p, nil
	},
	"memcpy": func(ls *LibState, arg func(int) (uint32, error)) (uint32, error) {
		d, err := arg(0)
		if err != nil {
			return 0, err
		}
		s, err := arg(1)
		if err != nil {
			return 0, err
		}
		n, err := arg(2)
		if err != nil {
			return 0, err
		}
		b, err := ls.Mem.ReadBytes(s, int(n))
		if err != nil {
			return 0, err
		}
		if err := ls.Mem.WriteBytes(d, b); err != nil {
			return 0, err
		}
		ls.Cycles += uint64(n)/4 + 4
		return d, nil
	},
	"strlen": func(ls *LibState, arg func(int) (uint32, error)) (uint32, error) {
		p, err := arg(0)
		if err != nil {
			return 0, err
		}
		s, err := ls.Mem.CString(p)
		if err != nil {
			return 0, err
		}
		ls.Cycles += uint64(len(s)) / 4
		return uint32(len(s)), nil
	},
	"strcmp": func(ls *LibState, arg func(int) (uint32, error)) (uint32, error) {
		pa, err := arg(0)
		if err != nil {
			return 0, err
		}
		pb, err := arg(1)
		if err != nil {
			return 0, err
		}
		a, err := ls.Mem.CString(pa)
		if err != nil {
			return 0, err
		}
		b, err := ls.Mem.CString(pb)
		if err != nil {
			return 0, err
		}
		ls.Cycles += uint64(min(len(a), len(b)))/4 + 2
		return uint32(int32(strings.Compare(a, b))), nil
	},
	"strcpy": func(ls *LibState, arg func(int) (uint32, error)) (uint32, error) {
		d, err := arg(0)
		if err != nil {
			return 0, err
		}
		sp, err := arg(1)
		if err != nil {
			return 0, err
		}
		s, err := ls.Mem.CString(sp)
		if err != nil {
			return 0, err
		}
		if err := ls.Mem.WriteBytes(d, append([]byte(s), 0)); err != nil {
			return 0, err
		}
		ls.Cycles += uint64(len(s))/4 + 2
		return d, nil
	},
	"strtok": func(ls *LibState, arg func(int) (uint32, error)) (uint32, error) {
		// Classic stateful strtok: a non-null first argument starts a new
		// scan; NUL bytes are written over delimiters. The returned pointer
		// derives from the argument object — the extdb Derive constraint.
		p, err := arg(0)
		if err != nil {
			return 0, err
		}
		dp, err := arg(1)
		if err != nil {
			return 0, err
		}
		delims, err := ls.Mem.CString(dp)
		if err != nil {
			return 0, err
		}
		if p != 0 {
			ls.strtokPos = p
		}
		if ls.strtokPos == 0 {
			return 0, nil
		}
		isDelim := func(c byte) bool { return strings.IndexByte(delims, c) >= 0 }
		pos := ls.strtokPos
		for {
			c, err := ls.Mem.Load(pos, 1)
			if err != nil {
				return 0, err
			}
			if c == 0 {
				ls.strtokPos = 0
				return 0, nil
			}
			if !isDelim(byte(c)) {
				break
			}
			pos++
		}
		start := pos
		for {
			c, err := ls.Mem.Load(pos, 1)
			if err != nil {
				return 0, err
			}
			if c == 0 {
				ls.strtokPos = 0
				break
			}
			if isDelim(byte(c)) {
				if err := ls.Mem.Store(pos, 0, 1); err != nil {
					return 0, err
				}
				ls.strtokPos = pos + 1
				break
			}
			pos++
		}
		ls.Cycles += uint64(pos-start)/2 + 4
		return start, nil
	},
	"atoi": func(ls *LibState, arg func(int) (uint32, error)) (uint32, error) {
		p, err := arg(0)
		if err != nil {
			return 0, err
		}
		s, err := ls.Mem.CString(p)
		if err != nil {
			return 0, err
		}
		var v int32
		var neg bool
		i := 0
		for i < len(s) && (s[i] == ' ' || s[i] == '\t') {
			i++
		}
		if i < len(s) && (s[i] == '-' || s[i] == '+') {
			neg = s[i] == '-'
			i++
		}
		for ; i < len(s) && s[i] >= '0' && s[i] <= '9'; i++ {
			v = v*10 + int32(s[i]-'0')
		}
		if neg {
			v = -v
		}
		ls.Cycles += uint64(len(s))
		return uint32(v), nil
	},
	"abs": func(ls *LibState, arg func(int) (uint32, error)) (uint32, error) {
		v, err := arg(0)
		if err != nil {
			return 0, err
		}
		if int32(v) < 0 {
			v = uint32(-int32(v))
		}
		return v, nil
	},
	"rand": func(ls *LibState, arg func(int) (uint32, error)) (uint32, error) {
		// Deterministic LCG (same constants as glibc's TYPE_0).
		ls.randState = ls.randState*1103515245 + 12345
		return (ls.randState >> 16) & 0x7FFF, nil
	},
	"srand": func(ls *LibState, arg func(int) (uint32, error)) (uint32, error) {
		v, err := arg(0)
		if err != nil {
			return 0, err
		}
		ls.randState = v
		return 0, nil
	},
	"input_int": func(ls *LibState, arg func(int) (uint32, error)) (uint32, error) {
		i, err := arg(0)
		if err != nil {
			return 0, err
		}
		if int(i) >= len(ls.input.Ints) {
			return 0, nil
		}
		return uint32(ls.input.Ints[i]), nil
	},
	"input_str": func(ls *LibState, arg func(int) (uint32, error)) (uint32, error) {
		i, err := arg(0)
		if err != nil {
			return 0, err
		}
		if int(i) >= len(ls.inStrPtr) {
			return 0, nil
		}
		return ls.inStrPtr[i], nil
	},
}

// formatPrintf renders a printf-style call whose format string is stack
// argument fmtArg and whose varargs follow it. Supported verbs: %d %u %x %c
// %s %%.
func (ls *LibState) formatPrintf(arg func(int) (uint32, error), fmtArg int) (string, error) {
	fp, err := arg(fmtArg)
	if err != nil {
		return "", err
	}
	format, err := ls.Mem.CString(fp)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	next := fmtArg + 1
	for i := 0; i < len(format); i++ {
		c := format[i]
		if c != '%' || i+1 >= len(format) {
			b.WriteByte(c)
			continue
		}
		i++
		verb := format[i]
		if verb == '%' {
			b.WriteByte('%')
			continue
		}
		v, err := arg(next)
		if err != nil {
			return "", err
		}
		next++
		switch verb {
		case 'd':
			fmt.Fprintf(&b, "%d", int32(v))
		case 'u':
			fmt.Fprintf(&b, "%d", v)
		case 'x':
			fmt.Fprintf(&b, "%x", v)
		case 'c':
			b.WriteByte(byte(v))
		case 's':
			s, err := ls.Mem.CString(v)
			if err != nil {
				return "", err
			}
			b.WriteString(s)
		default:
			return "", fmt.Errorf("machine: printf: unsupported verb %%%c", verb)
		}
	}
	return b.String(), nil
}

// CountPrintfArgs returns the number of variadic arguments a printf format
// string consumes. The varargs refinement (§5.2) uses this to recover exact
// call-site signatures at runtime.
func CountPrintfArgs(format string) int {
	n := 0
	for i := 0; i < len(format); i++ {
		if format[i] == '%' && i+1 < len(format) {
			i++
			if format[i] != '%' {
				n++
			}
		}
	}
	return n
}

// extCall dispatches an external call. For external targets CALL does not
// push a return address (the PLT "function" runs natively and control
// resumes at the next instruction), so stack argument i sits at ESP + 4*i.
// For calls into lifted code the return address IS pushed and argument i
// sits at sp0 + 4 + 4*i; both conventions are fixed and known to the lifter.
func (m *Machine) extCall(target uint32) error {
	name, ok := m.img.ExtName(target)
	if !ok {
		return fmt.Errorf("machine: call to unknown external 0x%x", target)
	}
	sp := m.Regs[isa.ESP]
	arg := func(i int) (uint32, error) {
		return m.Mem.Load(sp+uint32(4*i), 4)
	}
	ret, err := m.lib.Call(name, arg)
	if err != nil {
		return err
	}
	if m.lib.Halted {
		m.halted = true
		m.exitCode = m.lib.ExitCode
	}
	m.Regs[isa.EAX] = ret
	return nil
}
