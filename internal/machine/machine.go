// Package machine emulates the synthetic ISA. It is the reproduction's
// stand-in for both the physical CPU the paper's binaries ran on and the
// S2E-style tracing substrate: a deterministic cycle cost model replaces
// wall-clock measurements, and an optional control-transfer hook exposes
// exactly the event stream the paper's binary tracer records.
package machine

import (
	"errors"
	"fmt"
	"io"

	"wytiwyg/internal/isa"
	"wytiwyg/internal/obj"
)

// TransferKind classifies a control transfer observed during execution.
type TransferKind uint8

// Control-transfer kinds reported to the trace hook.
const (
	TransferJump   TransferKind = iota // unconditional or indirect jump
	TransferBranch                     // conditional branch (taken or fall through)
	TransferCall                       // direct or indirect call to lifted code
	TransferRet                        // return
	TransferExt                        // call to an external (library) function
)

// Transfer is one control-transfer event: the instruction at From moved
// control to To. For conditional branches both outcomes are reported (the
// fall-through address when not taken), which is what CFG recovery needs.
type Transfer struct {
	Kind  TransferKind // what kind of control transfer
	From  uint32       // address of the transferring instruction
	To    uint32       // destination address (or fall-through when not taken)
	Taken bool         // meaningful for TransferBranch
}

// Input is the program input vector provided by the harness; the analogue
// of the paper's user-provided (ref) input sets. Programs read it through
// the input_int/input_str library functions.
type Input struct {
	Ints []int32  // values served by input_int, by index
	Strs []string // values served by input_str, by index
}

// Cycle costs. ALU and moves cost 1; memory traffic dominates, as on real
// hardware. The exact constants matter less than their ordering: the paper's
// performance effects come from eliminating memory operations and
// instructions, which any monotone cost model preserves.
const (
	costALU    = 1
	costMem    = 3
	costPush   = 3
	costCall   = 5
	costRet    = 5
	costBranch = 1
	costMul    = 3
	costDiv    = 12
	costLea    = 1
)

// Machine executes one loaded image.
type Machine struct {
	img   *obj.Image
	Mem   *Memory             // the address space
	Regs  [isa.NumRegs]uint32 // architectural register file
	flags flags
	pc    uint32

	Cycles   uint64 // accumulated cost-model cycles
	Steps    uint64 // instructions executed
	MaxSteps uint64 // execution budget; 0 means the default limit

	Out io.Writer // program output sink

	// Hook, when non-nil, receives every control transfer.
	Hook func(Transfer)
	// InstrHook, when non-nil, is called with the PC of every executed
	// instruction (tracing support).
	InstrHook func(pc uint32)
	// BlockHook, when non-nil, is called at the end of every dynamic basic
	// block — the maximal run of instructions between two control
	// transfers. start and end are the addresses of the block's first and
	// last executed instruction; when the block ended at a control transfer
	// term is true and t is that transfer, and when it ended because the
	// program stopped (HALT, exit syscall) term is false and t is zero.
	// Because every control opcode terminates a block regardless of
	// direction, the end address is a pure function of the start address
	// and the static code — the streaming tracer relies on this to dedup
	// block records by start address.
	BlockHook func(start, end uint32, t Transfer, term bool)

	lib *LibState

	// StubHits counts executions of trap stubs, keyed by the name of the
	// function the stub stands in for. Stubs are located through the
	// "__stub$" symbols codegen plants on every trap it emits; a binary
	// without such symbols (an original, untranslated image) never counts.
	StubHits map[string]uint64
	// stubAddrs maps the halt address of each trap stub to the owning
	// function name.
	stubAddrs map[uint32]string

	// blockStart is the address of the first instruction of the dynamic
	// block currently executing (BlockHook support); blockPending marks
	// that the current instruction ended a block, so the next block starts
	// at whatever address control moves to.
	blockStart   uint32
	blockPending bool

	halted   bool
	exitCode int32
}

// stubPrefix marks the symbols codegen plants on trap stubs. The symbol
// name is stubPrefix + function name + "$" + an index distinguishing
// multiple stubs within one function.
const stubPrefix = "__stub$"

// stubFunc extracts the stub's owning function name from a stub symbol.
func stubFunc(sym string) string {
	name := sym[len(stubPrefix):]
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '$' {
			return name[:i]
		}
	}
	return name
}

type flags struct {
	zf, sf, of, cf bool
}

// ErrMaxSteps is returned when execution exceeds the step budget.
var ErrMaxSteps = errors.New("machine: step budget exceeded")

// New loads an image and prepares a machine. Output (if out is nil) is
// discarded.
func New(img *obj.Image, input Input, out io.Writer) (*Machine, error) {
	if err := img.Validate(); err != nil {
		return nil, err
	}
	if out == nil {
		out = io.Discard
	}
	m := &Machine{
		img:      img,
		Mem:      NewMemory(),
		Out:      out,
		MaxSteps: 2_000_000_000,
		StubHits: make(map[string]uint64),
	}
	for _, s := range img.Syms {
		if len(s.Name) > len(stubPrefix) && s.Name[:len(stubPrefix)] == stubPrefix {
			if m.stubAddrs == nil {
				m.stubAddrs = make(map[uint32]string)
			}
			// The symbol sits on the stub's first instruction; the halt
			// that ends the run is the next one.
			m.stubAddrs[s.Addr+isa.InstrSize] = stubFunc(s.Name)
		}
	}
	if err := m.Mem.WriteBytes(isa.DataBase, img.Data); err != nil {
		return nil, err
	}
	lib, err := NewLibState(m.Mem, input, out)
	if err != nil {
		return nil, err
	}
	m.lib = lib
	m.Regs[isa.ESP] = isa.StackTop
	m.pc = img.Entry
	m.blockStart = img.Entry
	return m, nil
}

// PC returns the current program counter.
func (m *Machine) PC() uint32 { return m.pc }

// Halted reports whether the program has exited.
func (m *Machine) Halted() bool { return m.halted }

// ExitCode returns the program's exit status (valid after Halted).
func (m *Machine) ExitCode() int32 { return m.exitCode }

func (m *Machine) emit(t Transfer) {
	if m.Hook != nil {
		m.Hook(t)
	}
	if m.BlockHook != nil {
		m.BlockHook(m.blockStart, m.pc, t, true)
		m.blockPending = true
	}
}

// endBlock reports the in-flight block when execution stops without a
// control transfer (HALT or the exit syscall).
func (m *Machine) endBlock() {
	if m.BlockHook != nil {
		m.BlockHook(m.blockStart, m.pc, Transfer{}, false)
	}
}

func (m *Machine) effAddr(mem isa.MemRef) uint32 {
	var a uint32
	if mem.HasBase() {
		a = m.Regs[mem.Base]
	}
	if mem.HasIndex() {
		a += m.Regs[mem.Index] * uint32(mem.Scale)
	}
	return a + uint32(mem.Disp)
}

func (m *Machine) push(v uint32) error {
	m.Regs[isa.ESP] -= 4
	return m.Mem.Store(m.Regs[isa.ESP], v, 4)
}

func (m *Machine) pop() (uint32, error) {
	v, err := m.Mem.Load(m.Regs[isa.ESP], 4)
	if err != nil {
		return 0, err
	}
	m.Regs[isa.ESP] += 4
	return v, nil
}

func (m *Machine) setCmpFlags(a, b uint32) {
	r := a - b
	m.flags.zf = r == 0
	m.flags.sf = int32(r) < 0
	m.flags.cf = a < b
	// Signed overflow of a-b: operands have different signs and the result's
	// sign differs from a's.
	m.flags.of = ((int32(a) >= 0) != (int32(b) >= 0)) && ((int32(r) >= 0) != (int32(a) >= 0))
}

func (m *Machine) setTestFlags(a, b uint32) {
	r := a & b
	m.flags.zf = r == 0
	m.flags.sf = int32(r) < 0
	m.flags.cf = false
	m.flags.of = false
}

// EvalCond evaluates a condition against flag state produced by CMP a,b the
// way x86 does.
func (f flags) eval(c isa.Cond) bool {
	switch c {
	case isa.CondEQ:
		return f.zf
	case isa.CondNE:
		return !f.zf
	case isa.CondLT:
		return f.sf != f.of
	case isa.CondLE:
		return f.zf || f.sf != f.of
	case isa.CondGT:
		return !f.zf && f.sf == f.of
	case isa.CondGE:
		return f.sf == f.of
	case isa.CondB:
		return f.cf
	case isa.CondBE:
		return f.cf || f.zf
	case isa.CondA:
		return !f.cf && !f.zf
	case isa.CondAE:
		return !f.cf
	}
	return false
}

// opCost is the per-opcode cycle cost, applied by table lookup on the
// dispatch path. Indexed by the full uint8 opcode space so no bounds check
// is needed; unknown opcodes cost zero and are rejected by exec's default
// case anyway.
var opCost = [256]uint64{
	isa.NOP: costALU, isa.MOV: costALU, isa.MOVI: costALU, isa.MOVLO8: costALU,
	isa.LOAD: costMem, isa.LOADLO8: costMem, isa.STORE: costMem, isa.STOREI: costMem,
	isa.LEA: costLea,
	isa.ADD: costALU, isa.SUB: costALU, isa.AND: costALU, isa.OR: costALU,
	isa.XOR: costALU, isa.SHL: costALU, isa.SHR: costALU, isa.SAR: costALU,
	isa.ADDI: costALU, isa.SUBI: costALU, isa.ANDI: costALU, isa.ORI: costALU,
	isa.XORI: costALU, isa.SHLI: costALU, isa.SHRI: costALU, isa.SARI: costALU,
	isa.MUL: costMul, isa.MULI: costMul,
	isa.DIV: costDiv, isa.MOD: costDiv, isa.DIVI: costDiv, isa.MODI: costDiv,
	isa.NEG: costALU, isa.NOT: costALU,
	isa.CMP: costALU, isa.CMPI: costALU, isa.TEST: costALU, isa.SET: costALU,
	isa.PUSH: costPush, isa.PUSHI: costPush, isa.POP: costPush,
	isa.JMP: costBranch, isa.JCC: costBranch, isa.JMPR: costBranch,
	isa.CALL: costCall, isa.CALLR: costCall, isa.RET: costRet,
	isa.SYS: costCall, isa.HALT: 0,
}

// Step executes one instruction.
func (m *Machine) Step() error {
	if m.halted {
		return nil
	}
	if m.Steps >= m.MaxSteps {
		return ErrMaxSteps
	}
	in, err := m.img.InstrAt(m.pc)
	if err != nil {
		return fmt.Errorf("machine: pc=0x%x: %w", m.pc, err)
	}
	m.Steps++
	if m.InstrHook != nil {
		m.InstrHook(m.pc)
	}
	return m.exec(in)
}

// exec dispatches one fetched instruction.
func (m *Machine) exec(in *isa.Instr) error {
	next := m.pc + isa.InstrSize
	m.Cycles += opCost[in.Op]

	switch in.Op {
	case isa.NOP:

	case isa.MOV:
		m.Regs[in.Dst] = m.Regs[in.Src]
	case isa.MOVI:
		m.Regs[in.Dst] = uint32(in.Imm)
	case isa.MOVLO8:
		m.Regs[in.Dst] = m.Regs[in.Dst]&^0xFF | m.Regs[in.Src]&0xFF

	case isa.LOAD:
		v, err := m.Mem.Load(m.effAddr(in.Mem), in.Size)
		if err != nil {
			return err
		}
		if in.Signed {
			switch in.Size {
			case 1:
				v = uint32(int32(int8(v)))
			case 2:
				v = uint32(int32(int16(v)))
			}
		}
		m.Regs[in.Dst] = v
	case isa.LOADLO8:
		v, err := m.Mem.Load(m.effAddr(in.Mem), 1)
		if err != nil {
			return err
		}
		m.Regs[in.Dst] = m.Regs[in.Dst]&^0xFF | v&0xFF
	case isa.STORE:
		if err := m.Mem.Store(m.effAddr(in.Mem), m.Regs[in.Src], in.Size); err != nil {
			return err
		}
	case isa.STOREI:
		if err := m.Mem.Store(m.effAddr(in.Mem), uint32(in.Imm), in.Size); err != nil {
			return err
		}
	case isa.LEA:
		m.Regs[in.Dst] = m.effAddr(in.Mem)

	case isa.ADD:
		m.Regs[in.Dst] += m.Regs[in.Src]
	case isa.SUB:
		m.Regs[in.Dst] -= m.Regs[in.Src]
	case isa.AND:
		m.Regs[in.Dst] &= m.Regs[in.Src]
	case isa.OR:
		m.Regs[in.Dst] |= m.Regs[in.Src]
	case isa.XOR:
		m.Regs[in.Dst] ^= m.Regs[in.Src]
	case isa.SHL:
		m.Regs[in.Dst] <<= m.Regs[in.Src] & 31
	case isa.SHR:
		m.Regs[in.Dst] >>= m.Regs[in.Src] & 31
	case isa.SAR:
		m.Regs[in.Dst] = uint32(int32(m.Regs[in.Dst]) >> (m.Regs[in.Src] & 31))
	case isa.MUL:
		m.Regs[in.Dst] *= m.Regs[in.Src]
	case isa.DIV, isa.MOD:
		d := int32(m.Regs[in.Src])
		if d == 0 {
			return fmt.Errorf("machine: division by zero at pc=0x%x", m.pc)
		}
		n := int32(m.Regs[in.Dst])
		if in.Op == isa.DIV {
			m.Regs[in.Dst] = uint32(n / d)
		} else {
			m.Regs[in.Dst] = uint32(n % d)
		}

	case isa.ADDI:
		m.Regs[in.Dst] += uint32(in.Imm)
	case isa.SUBI:
		m.Regs[in.Dst] -= uint32(in.Imm)
	case isa.ANDI:
		m.Regs[in.Dst] &= uint32(in.Imm)
	case isa.ORI:
		m.Regs[in.Dst] |= uint32(in.Imm)
	case isa.XORI:
		m.Regs[in.Dst] ^= uint32(in.Imm)
	case isa.SHLI:
		m.Regs[in.Dst] <<= uint32(in.Imm) & 31
	case isa.SHRI:
		m.Regs[in.Dst] >>= uint32(in.Imm) & 31
	case isa.SARI:
		m.Regs[in.Dst] = uint32(int32(m.Regs[in.Dst]) >> (uint32(in.Imm) & 31))
	case isa.MULI:
		m.Regs[in.Dst] *= uint32(in.Imm)
	case isa.DIVI, isa.MODI:
		if in.Imm == 0 {
			return fmt.Errorf("machine: division by zero at pc=0x%x", m.pc)
		}
		n := int32(m.Regs[in.Dst])
		if in.Op == isa.DIVI {
			m.Regs[in.Dst] = uint32(n / in.Imm)
		} else {
			m.Regs[in.Dst] = uint32(n % in.Imm)
		}

	case isa.NEG:
		m.Regs[in.Dst] = -m.Regs[in.Dst]
	case isa.NOT:
		m.Regs[in.Dst] = ^m.Regs[in.Dst]

	case isa.CMP:
		m.setCmpFlags(m.Regs[in.Dst], m.Regs[in.Src])
	case isa.CMPI:
		m.setCmpFlags(m.Regs[in.Dst], uint32(in.Imm))
	case isa.TEST:
		m.setTestFlags(m.Regs[in.Dst], m.Regs[in.Src])
	case isa.SET:
		if m.flags.eval(in.Cond) {
			m.Regs[in.Dst] = 1
		} else {
			m.Regs[in.Dst] = 0
		}

	case isa.PUSH:
		if err := m.push(m.Regs[in.Src]); err != nil {
			return err
		}
	case isa.PUSHI:
		if err := m.push(uint32(in.Imm)); err != nil {
			return err
		}
	case isa.POP:
		v, err := m.pop()
		if err != nil {
			return err
		}
		m.Regs[in.Dst] = v

	case isa.JMP:
		next = uint32(in.Imm)
		m.emit(Transfer{Kind: TransferJump, From: m.pc, To: next})
	case isa.JCC:
		taken := m.flags.eval(in.Cond)
		if taken {
			next = uint32(in.Imm)
		}
		m.emit(Transfer{Kind: TransferBranch, From: m.pc, To: next, Taken: taken})
	case isa.JMPR:
		next = m.Regs[in.Src]
		m.emit(Transfer{Kind: TransferJump, From: m.pc, To: next})
	case isa.CALL, isa.CALLR:
		target := uint32(in.Imm)
		if in.Op == isa.CALLR {
			target = m.Regs[in.Src]
		}
		if isa.IsExtAddr(target) {
			m.emit(Transfer{Kind: TransferExt, From: m.pc, To: target})
			if err := m.extCall(target); err != nil {
				return err
			}
			if m.halted {
				return nil
			}
			break // next already pc+InstrSize; external "returned"
		}
		if err := m.push(next); err != nil {
			return err
		}
		m.emit(Transfer{Kind: TransferCall, From: m.pc, To: target})
		next = target
	case isa.RET:
		ra, err := m.pop()
		if err != nil {
			return err
		}
		m.emit(Transfer{Kind: TransferRet, From: m.pc, To: ra})
		next = ra

	case isa.SYS:
		if err := m.syscall(in.Imm); err != nil {
			return err
		}
		if m.halted {
			m.endBlock()
			return nil
		}
	case isa.HALT:
		if name, ok := m.stubAddrs[m.pc]; ok {
			m.StubHits[name]++
		}
		m.halted = true
		m.exitCode = int32(m.Regs[isa.EAX])
		m.endBlock()
		return nil

	default:
		return fmt.Errorf("machine: unimplemented op %v at pc=0x%x", in.Op, m.pc)
	}

	m.pc = next
	if m.blockPending {
		m.blockStart = next
		m.blockPending = false
	}
	return nil
}

func (m *Machine) syscall(num int32) error {
	switch num {
	case 0: // exit; status in eax
		m.halted = true
		m.exitCode = int32(m.Regs[isa.EAX])
		return nil
	default:
		return fmt.Errorf("machine: unknown syscall %d at pc=0x%x", num, m.pc)
	}
}

// Run executes until halt or error. The per-instruction hook check is
// hoisted out of the loop: the variant (hooked or unhooked) is selected once
// on entry, so the common untraced run pays nothing for the tracing support.
func (m *Machine) Run() error {
	if m.InstrHook != nil {
		return m.runHooked()
	}
	return m.runUnhooked()
}

func (m *Machine) runUnhooked() error {
	for !m.halted {
		if m.Steps >= m.MaxSteps {
			return ErrMaxSteps
		}
		in, err := m.img.InstrAt(m.pc)
		if err != nil {
			return fmt.Errorf("machine: pc=0x%x: %w", m.pc, err)
		}
		m.Steps++
		if err := m.exec(in); err != nil {
			return err
		}
	}
	return nil
}

func (m *Machine) runHooked() error {
	for !m.halted {
		if m.Steps >= m.MaxSteps {
			return ErrMaxSteps
		}
		in, err := m.img.InstrAt(m.pc)
		if err != nil {
			return fmt.Errorf("machine: pc=0x%x: %w", m.pc, err)
		}
		m.Steps++
		m.InstrHook(m.pc)
		if err := m.exec(in); err != nil {
			return err
		}
	}
	return nil
}

// Result summarizes one complete execution.
type Result struct {
	ExitCode int32  // the program's exit status
	Cycles   uint64 // accumulated cost-model cycles
	Steps    uint64 // instructions executed
	// StubHits counts trap-stub executions per stubbed function (empty for
	// images without stub symbols — see Machine.StubHits).
	StubHits map[string]uint64
}

// Execute is a convenience: load img, run it on input, write program output
// to out, and return the result.
func Execute(img *obj.Image, input Input, out io.Writer) (Result, error) {
	m, err := New(img, input, out)
	if err != nil {
		return Result{}, err
	}
	if err := m.Run(); err != nil {
		return Result{}, err
	}
	return Result{ExitCode: m.ExitCode(), Cycles: m.TotalCycles(), Steps: m.Steps, StubHits: m.StubHits}, nil
}

// TotalCycles returns machine cycles plus library-function work.
func (m *Machine) TotalCycles() uint64 { return m.Cycles + m.lib.Cycles }
