// Package machine emulates the synthetic ISA. It is the reproduction's
// stand-in for both the physical CPU the paper's binaries ran on and the
// S2E-style tracing substrate: a deterministic cycle cost model replaces
// wall-clock measurements, and an optional control-transfer hook exposes
// exactly the event stream the paper's binary tracer records.
package machine

import (
	"errors"
	"fmt"
	"io"

	"wytiwyg/internal/isa"
	"wytiwyg/internal/obj"
)

// TransferKind classifies a control transfer observed during execution.
type TransferKind uint8

// Control-transfer kinds reported to the trace hook.
const (
	TransferJump   TransferKind = iota // unconditional or indirect jump
	TransferBranch                     // conditional branch (taken or fall through)
	TransferCall                       // direct or indirect call to lifted code
	TransferRet                        // return
	TransferExt                        // call to an external (library) function
)

// Transfer is one control-transfer event: the instruction at From moved
// control to To. For conditional branches both outcomes are reported (the
// fall-through address when not taken), which is what CFG recovery needs.
type Transfer struct {
	Kind  TransferKind
	From  uint32
	To    uint32
	Taken bool // meaningful for TransferBranch
}

// Input is the program input vector provided by the harness; the analogue
// of the paper's user-provided (ref) input sets. Programs read it through
// the input_int/input_str library functions.
type Input struct {
	Ints []int32
	Strs []string
}

// Cycle costs. ALU and moves cost 1; memory traffic dominates, as on real
// hardware. The exact constants matter less than their ordering: the paper's
// performance effects come from eliminating memory operations and
// instructions, which any monotone cost model preserves.
const (
	costALU    = 1
	costMem    = 3
	costPush   = 3
	costCall   = 5
	costRet    = 5
	costBranch = 1
	costMul    = 3
	costDiv    = 12
	costLea    = 1
)

// Machine executes one loaded image.
type Machine struct {
	img   *obj.Image
	Mem   *Memory
	Regs  [isa.NumRegs]uint32
	flags flags
	pc    uint32

	Cycles   uint64
	Steps    uint64
	MaxSteps uint64

	Out io.Writer

	// Hook, when non-nil, receives every control transfer.
	Hook func(Transfer)
	// InstrHook, when non-nil, is called with the PC of every executed
	// instruction (tracing support).
	InstrHook func(pc uint32)

	lib *LibState

	halted   bool
	exitCode int32
}

type flags struct {
	zf, sf, of, cf bool
}

// ErrMaxSteps is returned when execution exceeds the step budget.
var ErrMaxSteps = errors.New("machine: step budget exceeded")

// New loads an image and prepares a machine. Output (if out is nil) is
// discarded.
func New(img *obj.Image, input Input, out io.Writer) (*Machine, error) {
	if err := img.Validate(); err != nil {
		return nil, err
	}
	if out == nil {
		out = io.Discard
	}
	m := &Machine{
		img:      img,
		Mem:      NewMemory(),
		Out:      out,
		MaxSteps: 2_000_000_000,
	}
	if err := m.Mem.WriteBytes(isa.DataBase, img.Data); err != nil {
		return nil, err
	}
	lib, err := NewLibState(m.Mem, input, out)
	if err != nil {
		return nil, err
	}
	m.lib = lib
	m.Regs[isa.ESP] = isa.StackTop
	m.pc = img.Entry
	return m, nil
}

// PC returns the current program counter.
func (m *Machine) PC() uint32 { return m.pc }

// Halted reports whether the program has exited.
func (m *Machine) Halted() bool { return m.halted }

// ExitCode returns the program's exit status (valid after Halted).
func (m *Machine) ExitCode() int32 { return m.exitCode }

func (m *Machine) emit(t Transfer) {
	if m.Hook != nil {
		m.Hook(t)
	}
}

func (m *Machine) effAddr(mem isa.MemRef) uint32 {
	var a uint32
	if mem.HasBase() {
		a = m.Regs[mem.Base]
	}
	if mem.HasIndex() {
		a += m.Regs[mem.Index] * uint32(mem.Scale)
	}
	return a + uint32(mem.Disp)
}

func (m *Machine) push(v uint32) error {
	m.Regs[isa.ESP] -= 4
	return m.Mem.Store(m.Regs[isa.ESP], v, 4)
}

func (m *Machine) pop() (uint32, error) {
	v, err := m.Mem.Load(m.Regs[isa.ESP], 4)
	if err != nil {
		return 0, err
	}
	m.Regs[isa.ESP] += 4
	return v, nil
}

func (m *Machine) setCmpFlags(a, b uint32) {
	r := a - b
	m.flags.zf = r == 0
	m.flags.sf = int32(r) < 0
	m.flags.cf = a < b
	// Signed overflow of a-b: operands have different signs and the result's
	// sign differs from a's.
	m.flags.of = ((int32(a) >= 0) != (int32(b) >= 0)) && ((int32(r) >= 0) != (int32(a) >= 0))
}

func (m *Machine) setTestFlags(a, b uint32) {
	r := a & b
	m.flags.zf = r == 0
	m.flags.sf = int32(r) < 0
	m.flags.cf = false
	m.flags.of = false
}

// EvalCond evaluates a condition against flag state produced by CMP a,b the
// way x86 does.
func (f flags) eval(c isa.Cond) bool {
	switch c {
	case isa.CondEQ:
		return f.zf
	case isa.CondNE:
		return !f.zf
	case isa.CondLT:
		return f.sf != f.of
	case isa.CondLE:
		return f.zf || f.sf != f.of
	case isa.CondGT:
		return !f.zf && f.sf == f.of
	case isa.CondGE:
		return f.sf == f.of
	case isa.CondB:
		return f.cf
	case isa.CondBE:
		return f.cf || f.zf
	case isa.CondA:
		return !f.cf && !f.zf
	case isa.CondAE:
		return !f.cf
	}
	return false
}

// Step executes one instruction.
func (m *Machine) Step() error {
	if m.halted {
		return nil
	}
	if m.Steps >= m.MaxSteps {
		return ErrMaxSteps
	}
	in, err := m.img.InstrAt(m.pc)
	if err != nil {
		return fmt.Errorf("machine: pc=0x%x: %w", m.pc, err)
	}
	m.Steps++
	if m.InstrHook != nil {
		m.InstrHook(m.pc)
	}
	next := m.pc + isa.InstrSize

	switch in.Op {
	case isa.NOP:
		m.Cycles += costALU

	case isa.MOV:
		m.Regs[in.Dst] = m.Regs[in.Src]
		m.Cycles += costALU
	case isa.MOVI:
		m.Regs[in.Dst] = uint32(in.Imm)
		m.Cycles += costALU
	case isa.MOVLO8:
		m.Regs[in.Dst] = m.Regs[in.Dst]&^0xFF | m.Regs[in.Src]&0xFF
		m.Cycles += costALU

	case isa.LOAD:
		v, err := m.Mem.Load(m.effAddr(in.Mem), in.Size)
		if err != nil {
			return err
		}
		if in.Signed {
			switch in.Size {
			case 1:
				v = uint32(int32(int8(v)))
			case 2:
				v = uint32(int32(int16(v)))
			}
		}
		m.Regs[in.Dst] = v
		m.Cycles += costMem
	case isa.LOADLO8:
		v, err := m.Mem.Load(m.effAddr(in.Mem), 1)
		if err != nil {
			return err
		}
		m.Regs[in.Dst] = m.Regs[in.Dst]&^0xFF | v&0xFF
		m.Cycles += costMem
	case isa.STORE:
		if err := m.Mem.Store(m.effAddr(in.Mem), m.Regs[in.Src], in.Size); err != nil {
			return err
		}
		m.Cycles += costMem
	case isa.STOREI:
		if err := m.Mem.Store(m.effAddr(in.Mem), uint32(in.Imm), in.Size); err != nil {
			return err
		}
		m.Cycles += costMem
	case isa.LEA:
		m.Regs[in.Dst] = m.effAddr(in.Mem)
		m.Cycles += costLea

	case isa.ADD:
		m.Regs[in.Dst] += m.Regs[in.Src]
		m.Cycles += costALU
	case isa.SUB:
		m.Regs[in.Dst] -= m.Regs[in.Src]
		m.Cycles += costALU
	case isa.AND:
		m.Regs[in.Dst] &= m.Regs[in.Src]
		m.Cycles += costALU
	case isa.OR:
		m.Regs[in.Dst] |= m.Regs[in.Src]
		m.Cycles += costALU
	case isa.XOR:
		m.Regs[in.Dst] ^= m.Regs[in.Src]
		m.Cycles += costALU
	case isa.SHL:
		m.Regs[in.Dst] <<= m.Regs[in.Src] & 31
		m.Cycles += costALU
	case isa.SHR:
		m.Regs[in.Dst] >>= m.Regs[in.Src] & 31
		m.Cycles += costALU
	case isa.SAR:
		m.Regs[in.Dst] = uint32(int32(m.Regs[in.Dst]) >> (m.Regs[in.Src] & 31))
		m.Cycles += costALU
	case isa.MUL:
		m.Regs[in.Dst] *= m.Regs[in.Src]
		m.Cycles += costMul
	case isa.DIV, isa.MOD:
		d := int32(m.Regs[in.Src])
		if d == 0 {
			return fmt.Errorf("machine: division by zero at pc=0x%x", m.pc)
		}
		n := int32(m.Regs[in.Dst])
		if in.Op == isa.DIV {
			m.Regs[in.Dst] = uint32(n / d)
		} else {
			m.Regs[in.Dst] = uint32(n % d)
		}
		m.Cycles += costDiv

	case isa.ADDI:
		m.Regs[in.Dst] += uint32(in.Imm)
		m.Cycles += costALU
	case isa.SUBI:
		m.Regs[in.Dst] -= uint32(in.Imm)
		m.Cycles += costALU
	case isa.ANDI:
		m.Regs[in.Dst] &= uint32(in.Imm)
		m.Cycles += costALU
	case isa.ORI:
		m.Regs[in.Dst] |= uint32(in.Imm)
		m.Cycles += costALU
	case isa.XORI:
		m.Regs[in.Dst] ^= uint32(in.Imm)
		m.Cycles += costALU
	case isa.SHLI:
		m.Regs[in.Dst] <<= uint32(in.Imm) & 31
		m.Cycles += costALU
	case isa.SHRI:
		m.Regs[in.Dst] >>= uint32(in.Imm) & 31
		m.Cycles += costALU
	case isa.SARI:
		m.Regs[in.Dst] = uint32(int32(m.Regs[in.Dst]) >> (uint32(in.Imm) & 31))
		m.Cycles += costALU
	case isa.MULI:
		m.Regs[in.Dst] *= uint32(in.Imm)
		m.Cycles += costMul
	case isa.DIVI, isa.MODI:
		if in.Imm == 0 {
			return fmt.Errorf("machine: division by zero at pc=0x%x", m.pc)
		}
		n := int32(m.Regs[in.Dst])
		if in.Op == isa.DIVI {
			m.Regs[in.Dst] = uint32(n / in.Imm)
		} else {
			m.Regs[in.Dst] = uint32(n % in.Imm)
		}
		m.Cycles += costDiv

	case isa.NEG:
		m.Regs[in.Dst] = -m.Regs[in.Dst]
		m.Cycles += costALU
	case isa.NOT:
		m.Regs[in.Dst] = ^m.Regs[in.Dst]
		m.Cycles += costALU

	case isa.CMP:
		m.setCmpFlags(m.Regs[in.Dst], m.Regs[in.Src])
		m.Cycles += costALU
	case isa.CMPI:
		m.setCmpFlags(m.Regs[in.Dst], uint32(in.Imm))
		m.Cycles += costALU
	case isa.TEST:
		m.setTestFlags(m.Regs[in.Dst], m.Regs[in.Src])
		m.Cycles += costALU
	case isa.SET:
		if m.flags.eval(in.Cond) {
			m.Regs[in.Dst] = 1
		} else {
			m.Regs[in.Dst] = 0
		}
		m.Cycles += costALU

	case isa.PUSH:
		if err := m.push(m.Regs[in.Src]); err != nil {
			return err
		}
		m.Cycles += costPush
	case isa.PUSHI:
		if err := m.push(uint32(in.Imm)); err != nil {
			return err
		}
		m.Cycles += costPush
	case isa.POP:
		v, err := m.pop()
		if err != nil {
			return err
		}
		m.Regs[in.Dst] = v
		m.Cycles += costPush

	case isa.JMP:
		next = uint32(in.Imm)
		m.emit(Transfer{Kind: TransferJump, From: m.pc, To: next})
		m.Cycles += costBranch
	case isa.JCC:
		taken := m.flags.eval(in.Cond)
		if taken {
			next = uint32(in.Imm)
		}
		m.emit(Transfer{Kind: TransferBranch, From: m.pc, To: next, Taken: taken})
		m.Cycles += costBranch
	case isa.JMPR:
		next = m.Regs[in.Src]
		m.emit(Transfer{Kind: TransferJump, From: m.pc, To: next})
		m.Cycles += costBranch
	case isa.CALL, isa.CALLR:
		target := uint32(in.Imm)
		if in.Op == isa.CALLR {
			target = m.Regs[in.Src]
		}
		if isa.IsExtAddr(target) {
			m.emit(Transfer{Kind: TransferExt, From: m.pc, To: target})
			if err := m.extCall(target); err != nil {
				return err
			}
			m.Cycles += costCall
			if m.halted {
				return nil
			}
			break // next already pc+InstrSize; external "returned"
		}
		if err := m.push(next); err != nil {
			return err
		}
		m.emit(Transfer{Kind: TransferCall, From: m.pc, To: target})
		next = target
		m.Cycles += costCall
	case isa.RET:
		ra, err := m.pop()
		if err != nil {
			return err
		}
		m.emit(Transfer{Kind: TransferRet, From: m.pc, To: ra})
		next = ra
		m.Cycles += costRet

	case isa.SYS:
		if err := m.syscall(in.Imm); err != nil {
			return err
		}
		m.Cycles += costCall
		if m.halted {
			return nil
		}
	case isa.HALT:
		m.halted = true
		m.exitCode = int32(m.Regs[isa.EAX])
		return nil

	default:
		return fmt.Errorf("machine: unimplemented op %v at pc=0x%x", in.Op, m.pc)
	}

	m.pc = next
	return nil
}

func (m *Machine) syscall(num int32) error {
	switch num {
	case 0: // exit; status in eax
		m.halted = true
		m.exitCode = int32(m.Regs[isa.EAX])
		return nil
	default:
		return fmt.Errorf("machine: unknown syscall %d at pc=0x%x", num, m.pc)
	}
}

// Run executes until halt or error.
func (m *Machine) Run() error {
	for !m.halted {
		if err := m.Step(); err != nil {
			return err
		}
	}
	return nil
}

// Result summarizes one complete execution.
type Result struct {
	ExitCode int32
	Cycles   uint64
	Steps    uint64
}

// Execute is a convenience: load img, run it on input, write program output
// to out, and return the result.
func Execute(img *obj.Image, input Input, out io.Writer) (Result, error) {
	m, err := New(img, input, out)
	if err != nil {
		return Result{}, err
	}
	if err := m.Run(); err != nil {
		return Result{}, err
	}
	return Result{ExitCode: m.ExitCode(), Cycles: m.TotalCycles(), Steps: m.Steps}, nil
}

// TotalCycles returns machine cycles plus library-function work.
func (m *Machine) TotalCycles() uint64 { return m.Cycles + m.lib.Cycles }
