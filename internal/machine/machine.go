// Package machine emulates the synthetic ISA. It is the reproduction's
// stand-in for both the physical CPU the paper's binaries ran on and the
// S2E-style tracing substrate: a deterministic cycle cost model replaces
// wall-clock measurements, and an optional control-transfer hook exposes
// exactly the event stream the paper's binary tracer records.
package machine

import (
	"errors"
	"fmt"
	"io"

	"wytiwyg/internal/isa"
	"wytiwyg/internal/obj"
)

// TransferKind classifies a control transfer observed during execution.
type TransferKind uint8

// Control-transfer kinds reported to the trace hook.
const (
	TransferJump   TransferKind = iota // unconditional or indirect jump
	TransferBranch                     // conditional branch (taken or fall through)
	TransferCall                       // direct or indirect call to lifted code
	TransferRet                        // return
	TransferExt                        // call to an external (library) function
)

// Transfer is one control-transfer event: the instruction at From moved
// control to To. For conditional branches both outcomes are reported (the
// fall-through address when not taken), which is what CFG recovery needs.
type Transfer struct {
	Kind  TransferKind // what kind of control transfer
	From  uint32       // address of the transferring instruction
	To    uint32       // destination address (or fall-through when not taken)
	Taken bool         // meaningful for TransferBranch
}

// Input is the program input vector provided by the harness; the analogue
// of the paper's user-provided (ref) input sets. Programs read it through
// the input_int/input_str library functions.
type Input struct {
	Ints []int32  // values served by input_int, by index
	Strs []string // values served by input_str, by index
}

// Cycle costs. ALU and moves cost 1; memory traffic dominates, as on real
// hardware. The exact constants matter less than their ordering: the paper's
// performance effects come from eliminating memory operations and
// instructions, which any monotone cost model preserves.
const (
	costALU    = 1
	costMem    = 3
	costPush   = 3
	costCall   = 5
	costRet    = 5
	costBranch = 1
	costMul    = 3
	costDiv    = 12
	costLea    = 1
)

// Machine executes one loaded image. Field order groups the per-instruction
// execution state (registers, flags, pc, counters, halt flag, dispatch
// tables) at the front so the dispatch loops touch as few cache lines as
// possible.
type Machine struct {
	Regs   [isa.NumRegs]uint32 // architectural register file
	flags  flags
	pc     uint32
	halted bool

	Cycles   uint64 // accumulated cost-model cycles
	Steps    uint64 // instructions executed
	MaxSteps uint64 // execution budget; 0 means the default limit

	// Hook, when non-nil, receives every control transfer.
	Hook func(Transfer)
	// InstrHook, when non-nil, is called with the PC of every executed
	// instruction (tracing support).
	InstrHook func(pc uint32)
	// BlockHook, when non-nil, is called at the end of every dynamic basic
	// block — the maximal run of instructions between two control
	// transfers. start and end are the addresses of the block's first and
	// last executed instruction; when the block ended at a control transfer
	// term is true and t is that transfer, and when it ended because the
	// program stopped (HALT, exit syscall) term is false and t is zero.
	// Because every control opcode terminates a block regardless of
	// direction, the end address is a pure function of the start address
	// and the static code — the streaming tracer relies on this to dedup
	// block records by start address.
	BlockHook func(start, end uint32, t Transfer, term bool)

	// blockStart is the address of the first instruction of the dynamic
	// block currently executing (BlockHook support); blockPending marks
	// that the current instruction ended a block, so the next block starts
	// at whatever address control moves to.
	blockStart   uint32
	blockPending bool

	// code is the image's decoded instruction stream; prog, runLen and
	// runCost are its pre-decoded superblock tables (see superblock.go),
	// built once at load time — the code section is immutable.
	code    []isa.Instr
	prog    []uop
	runLen  []int32
	runCost []uint64

	img *obj.Image
	Mem *Memory // the address space

	Out io.Writer // program output sink

	lib *LibState

	// NoSuperblocks forces Run onto per-instruction dispatch — the
	// reference mode the differential tests compare superblock execution
	// against. Observable behaviour is identical either way.
	NoSuperblocks bool

	// StubHits counts executions of trap stubs, keyed by the name of the
	// function the stub stands in for. Stubs are located through the
	// "__stub$" symbols codegen plants on every trap it emits; a binary
	// without such symbols (an original, untranslated image) never counts.
	StubHits map[string]uint64
	// stubAddrs maps the halt address of each trap stub to the owning
	// function name.
	stubAddrs map[uint32]string

	exitCode int32
}

// stubPrefix marks the symbols codegen plants on trap stubs. The symbol
// name is stubPrefix + function name + "$" + an index distinguishing
// multiple stubs within one function.
const stubPrefix = "__stub$"

// stubFunc extracts the stub's owning function name from a stub symbol.
func stubFunc(sym string) string {
	name := sym[len(stubPrefix):]
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '$' {
			return name[:i]
		}
	}
	return name
}

// flags is the lazily evaluated flags register. CMP/CMPI record their raw
// operands and TEST records its result; nothing else in the ISA writes
// flags. A consumer (JCC or SET) evaluates just the one condition it needs
// via eval. The predicates are the standard x86 identities the previous
// eager zf/sf/of/cf encoding computed (signed < is sf≠of after a
// subtraction, unsigned < is cf, and so on), so consumers observe exactly
// the same outcomes — only the work moves from every compare to the
// compares a branch actually reads.
type flags struct {
	a, b uint32 // CMP/CMPI operands; TEST stores its masked result in a
	test bool   // the last producer was TEST
}

// ErrMaxSteps is returned when execution exceeds the step budget.
var ErrMaxSteps = errors.New("machine: step budget exceeded")

// New loads an image and prepares a machine. Output (if out is nil) is
// discarded.
func New(img *obj.Image, input Input, out io.Writer) (*Machine, error) {
	if err := img.Validate(); err != nil {
		return nil, err
	}
	if out == nil {
		out = io.Discard
	}
	m := &Machine{
		img:      img,
		Mem:      NewMemory(),
		Out:      out,
		MaxSteps: 2_000_000_000,
		StubHits: make(map[string]uint64),
	}
	for _, s := range img.Syms {
		if len(s.Name) > len(stubPrefix) && s.Name[:len(stubPrefix)] == stubPrefix {
			if m.stubAddrs == nil {
				m.stubAddrs = make(map[uint32]string)
			}
			// The symbol sits on the stub's first instruction; the halt
			// that ends the run is the next one.
			m.stubAddrs[s.Addr+isa.InstrSize] = stubFunc(s.Name)
		}
	}
	if err := m.Mem.WriteBytes(isa.DataBase, img.Data); err != nil {
		return nil, err
	}
	lib, err := NewLibState(m.Mem, input, out)
	if err != nil {
		return nil, err
	}
	m.lib = lib
	m.Regs[isa.ESP] = isa.StackTop
	m.pc = img.Entry
	m.blockStart = img.Entry
	m.code = img.Code
	m.predecode()
	return m, nil
}

// PC returns the current program counter.
func (m *Machine) PC() uint32 { return m.pc }

// Halted reports whether the program has exited.
func (m *Machine) Halted() bool { return m.halted }

// ExitCode returns the program's exit status (valid after Halted).
func (m *Machine) ExitCode() int32 { return m.exitCode }

// transferTo completes a control transfer with observers attached: it
// emits the event (From is the current pc, still the transferring
// instruction), moves pc to the target and starts a new dynamic block if
// the block hook asked for one. The dispatch loops call it from their
// JMP/JCC cases only when a hook is set or a block boundary is pending;
// with no observers they just move pc, which is all a transfer does then.
// exec's tail performs the same sequence for the remaining control ops.
func (m *Machine) transferTo(kind TransferKind, to uint32, taken bool) {
	m.emit(Transfer{Kind: kind, From: m.pc, To: to, Taken: taken})
	m.pc = to
	if m.blockPending {
		m.blockStart = to
		m.blockPending = false
	}
}

func (m *Machine) emit(t Transfer) {
	if m.Hook != nil {
		m.Hook(t)
	}
	if m.BlockHook != nil {
		m.BlockHook(m.blockStart, m.pc, t, true)
		m.blockPending = true
	}
}

// endBlock reports the in-flight block when execution stops without a
// control transfer (HALT or the exit syscall).
func (m *Machine) endBlock() {
	if m.BlockHook != nil {
		m.BlockHook(m.blockStart, m.pc, Transfer{}, false)
	}
}

func (m *Machine) push(v uint32) error {
	m.Regs[isa.ESP] -= 4
	return m.Mem.Store(m.Regs[isa.ESP], v, 4)
}

func (m *Machine) pop() (uint32, error) {
	v, err := m.Mem.Load(m.Regs[isa.ESP], 4)
	if err != nil {
		return 0, err
	}
	m.Regs[isa.ESP] += 4
	return v, nil
}

// eval evaluates a condition against the recorded compare, exactly as the
// eager flag encoding would after CMP a,b (or TEST a,b) the way x86 does.
func (f flags) eval(c isa.Cond) bool {
	if f.test {
		// After TEST: zf = r==0, sf = r<0 signed, cf = of = false.
		r := f.a
		switch c {
		case isa.CondEQ:
			return r == 0
		case isa.CondNE:
			return r != 0
		case isa.CondLT:
			return int32(r) < 0
		case isa.CondLE:
			return r == 0 || int32(r) < 0
		case isa.CondGT:
			return r != 0 && int32(r) >= 0
		case isa.CondGE:
			return int32(r) >= 0
		case isa.CondB:
			return false
		case isa.CondBE:
			return r == 0
		case isa.CondA:
			return r != 0
		case isa.CondAE:
			return true
		}
		return false
	}
	switch c {
	case isa.CondEQ:
		return f.a == f.b
	case isa.CondNE:
		return f.a != f.b
	case isa.CondLT:
		return int32(f.a) < int32(f.b)
	case isa.CondLE:
		return int32(f.a) <= int32(f.b)
	case isa.CondGT:
		return int32(f.a) > int32(f.b)
	case isa.CondGE:
		return int32(f.a) >= int32(f.b)
	case isa.CondB:
		return f.a < f.b
	case isa.CondBE:
		return f.a <= f.b
	case isa.CondA:
		return f.a > f.b
	case isa.CondAE:
		return f.a >= f.b
	}
	return false
}

// opCost is the per-opcode cycle cost, applied by table lookup on the
// dispatch path. Indexed by the full uint8 opcode space so no bounds check
// is needed; unknown opcodes cost zero and are rejected by exec's default
// case anyway.
var opCost = [256]uint64{
	isa.NOP: costALU, isa.MOV: costALU, isa.MOVI: costALU, isa.MOVLO8: costALU,
	isa.LOAD: costMem, isa.LOADLO8: costMem, isa.STORE: costMem, isa.STOREI: costMem,
	isa.LEA: costLea,
	isa.ADD: costALU, isa.SUB: costALU, isa.AND: costALU, isa.OR: costALU,
	isa.XOR: costALU, isa.SHL: costALU, isa.SHR: costALU, isa.SAR: costALU,
	isa.ADDI: costALU, isa.SUBI: costALU, isa.ANDI: costALU, isa.ORI: costALU,
	isa.XORI: costALU, isa.SHLI: costALU, isa.SHRI: costALU, isa.SARI: costALU,
	isa.MUL: costMul, isa.MULI: costMul,
	isa.DIV: costDiv, isa.MOD: costDiv, isa.DIVI: costDiv, isa.MODI: costDiv,
	isa.NEG: costALU, isa.NOT: costALU,
	isa.CMP: costALU, isa.CMPI: costALU, isa.TEST: costALU, isa.SET: costALU,
	isa.PUSH: costPush, isa.PUSHI: costPush, isa.POP: costPush,
	isa.JMP: costBranch, isa.JCC: costBranch, isa.JMPR: costBranch,
	isa.CALL: costCall, isa.CALLR: costCall, isa.RET: costRet,
	isa.SYS: costCall, isa.HALT: 0,
}

// exec dispatches one control-transferring instruction (everything
// straight-line executes through the uop dispatch in superblock.go;
// decodeUop routes only control transfers, SYS, HALT and undecodable
// opcodes here). Control transfers
// are where hooks and block events fire, which is why superblock dispatch
// funnels terminators through this one path.
func (m *Machine) exec(in *isa.Instr) error {
	next := m.pc + isa.InstrSize
	m.Cycles += opCost[in.Op]

	switch in.Op {
	case isa.JMP:
		next = uint32(in.Imm)
		m.emit(Transfer{Kind: TransferJump, From: m.pc, To: next})
	case isa.JCC:
		taken := m.flags.eval(in.Cond)
		if taken {
			next = uint32(in.Imm)
		}
		m.emit(Transfer{Kind: TransferBranch, From: m.pc, To: next, Taken: taken})
	case isa.JMPR:
		next = m.Regs[in.Src]
		m.emit(Transfer{Kind: TransferJump, From: m.pc, To: next})
	case isa.CALL, isa.CALLR:
		target := uint32(in.Imm)
		if in.Op == isa.CALLR {
			target = m.Regs[in.Src]
		}
		if isa.IsExtAddr(target) {
			m.emit(Transfer{Kind: TransferExt, From: m.pc, To: target})
			if err := m.extCall(target); err != nil {
				return err
			}
			if m.halted {
				return nil
			}
			break // next already pc+InstrSize; external "returned"
		}
		if err := m.push(next); err != nil {
			return err
		}
		m.emit(Transfer{Kind: TransferCall, From: m.pc, To: target})
		next = target
	case isa.RET:
		ra, err := m.pop()
		if err != nil {
			return err
		}
		m.emit(Transfer{Kind: TransferRet, From: m.pc, To: ra})
		next = ra

	case isa.SYS:
		if err := m.syscall(in.Imm); err != nil {
			return err
		}
		if m.halted {
			m.endBlock()
			return nil
		}
	case isa.HALT:
		if name, ok := m.stubAddrs[m.pc]; ok {
			m.StubHits[name]++
		}
		m.halted = true
		m.exitCode = int32(m.Regs[isa.EAX])
		m.endBlock()
		return nil

	default:
		return fmt.Errorf("machine: unimplemented op %v at pc=0x%x", in.Op, m.pc)
	}

	m.pc = next
	if m.blockPending {
		m.blockStart = next
		m.blockPending = false
	}
	return nil
}

func (m *Machine) syscall(num int32) error {
	switch num {
	case 0: // exit; status in eax
		m.halted = true
		m.exitCode = int32(m.Regs[isa.EAX])
		return nil
	default:
		return fmt.Errorf("machine: unknown syscall %d at pc=0x%x", num, m.pc)
	}
}

// Run executes until halt or error. Without an instruction hook it uses
// superblock dispatch (see superblock.go); with InstrHook set — or with
// NoSuperblocks — it steps per-instruction, so the hook fires at every
// instruction in program order. Both modes produce identical registers,
// memory, Steps, Cycles and control-transfer/block event streams.
func (m *Machine) Run() error {
	if m.InstrHook != nil || m.NoSuperblocks {
		return m.runStepwise()
	}
	return m.runSuper()
}

// Result summarizes one complete execution.
type Result struct {
	ExitCode int32  // the program's exit status
	Cycles   uint64 // accumulated cost-model cycles
	Steps    uint64 // instructions executed
	// StubHits counts trap-stub executions per stubbed function (empty for
	// images without stub symbols — see Machine.StubHits).
	StubHits map[string]uint64
}

// Execute is a convenience: load img, run it on input, write program output
// to out, and return the result.
func Execute(img *obj.Image, input Input, out io.Writer) (Result, error) {
	m, err := New(img, input, out)
	if err != nil {
		return Result{}, err
	}
	if err := m.Run(); err != nil {
		return Result{}, err
	}
	return Result{ExitCode: m.ExitCode(), Cycles: m.TotalCycles(), Steps: m.Steps, StubHits: m.StubHits}, nil
}

// TotalCycles returns machine cycles plus library-function work.
func (m *Machine) TotalCycles() uint64 { return m.Cycles + m.lib.Cycles }
