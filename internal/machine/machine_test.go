package machine

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"wytiwyg/internal/asm"
	"wytiwyg/internal/isa"
	"wytiwyg/internal/obj"
)

func run(t *testing.T, src string, input Input) (Result, string) {
	t.Helper()
	img, err := asm.Assemble("t", src, "")
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	res, err := Execute(img, input, &out)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	return res, out.String()
}

func TestArithmeticAndHalt(t *testing.T) {
	res, _ := run(t, `
main:
    movi eax, 6
    movi ecx, 7
    mul eax, ecx
    halt
`, Input{})
	if res.ExitCode != 42 {
		t.Errorf("exit = %d", res.ExitCode)
	}
	if res.Steps != 4 {
		t.Errorf("steps = %d", res.Steps)
	}
}

func TestStackPushPop(t *testing.T) {
	res, _ := run(t, `
main:
    movi eax, 11
    push eax
    movi eax, 0
    pop ecx
    mov eax, ecx
    halt
`, Input{})
	if res.ExitCode != 11 {
		t.Errorf("exit = %d", res.ExitCode)
	}
}

func TestLoadStoreSizes(t *testing.T) {
	res, _ := run(t, `
main:
    movi ecx, -2           ; 0xFFFFFFFE
    mov ebx, esp
    subi ebx, 16
    store1 [ebx], ecx
    load1s eax, [ebx]      ; sign-extended -2
    cmpi eax, -2
    jne .bad
    load1 eax, [ebx]       ; zero-extended 254
    cmpi eax, 254
    jne .bad
    store2 [ebx+4], ecx
    load2s eax, [ebx+4]
    cmpi eax, -2
    jne .bad
    movi eax, 0
    halt
.bad:
    movi eax, 1
    halt
`, Input{})
	if res.ExitCode != 0 {
		t.Errorf("exit = %d", res.ExitCode)
	}
}

func TestConditionCodes(t *testing.T) {
	// Signed vs unsigned comparisons of -1 and 1.
	res, _ := run(t, `
main:
    movi eax, -1
    movi ecx, 1
    cmp eax, ecx
    jlt .signedok
    movi eax, 1
    halt
.signedok:
    cmp eax, ecx
    ja .unsignedok     ; 0xFFFFFFFF > 1 unsigned
    movi eax, 2
    halt
.unsignedok:
    movi eax, 0
    halt
`, Input{})
	if res.ExitCode != 0 {
		t.Errorf("exit = %d", res.ExitCode)
	}
}

func TestSetCC(t *testing.T) {
	res, _ := run(t, `
main:
    movi eax, 5
    cmpi eax, 5
    seteq ecx
    cmpi eax, 6
    setlt edx
    mov eax, ecx
    shli eax, 1
    or eax, edx
    halt
`, Input{})
	if res.ExitCode != 3 {
		t.Errorf("exit = %d", res.ExitCode)
	}
}

func TestCallRet(t *testing.T) {
	res, _ := run(t, `
main:
    pushi 20
    pushi 22
    call add2
    addi esp, 8
    halt
add2:
    load4 eax, [esp+4]
    load4 ecx, [esp+8]
    add eax, ecx
    ret
`, Input{})
	if res.ExitCode != 42 {
		t.Errorf("exit = %d", res.ExitCode)
	}
}

func TestRecursionFactorial(t *testing.T) {
	res, _ := run(t, `
main:
    pushi 6
    call fact
    addi esp, 4
    halt
fact:
    load4 eax, [esp+4]
    cmpi eax, 1
    jgt .rec
    movi eax, 1
    ret
.rec:
    push eax
    subi eax, 1
    push eax
    call fact
    addi esp, 4
    pop ecx
    mul eax, ecx
    ret
`, Input{})
	if res.ExitCode != 720 {
		t.Errorf("6! = %d", res.ExitCode)
	}
}

func TestJumpTable(t *testing.T) {
	src := `
.data
tbl: .table .c0, .c1, .c2
.text
main:
    movi ecx, 1
    lea edx, [tbl]
    load4 edx, [edx+ecx*4]
    jmpr edx
.c0:
    movi eax, 100
    halt
.c1:
    movi eax, 101
    halt
.c2:
    movi eax, 102
    halt
`
	res, _ := run(t, src, Input{})
	if res.ExitCode != 101 {
		t.Errorf("exit = %d", res.ExitCode)
	}
}

func TestMovLo8FalseDep(t *testing.T) {
	res, _ := run(t, `
main:
    movi eax, 0x1200
    movi ecx, 0x34
    movlo8 eax, ecx
    halt
`, Input{})
	if uint32(res.ExitCode) != 0x1234 {
		t.Errorf("exit = %#x", uint32(res.ExitCode))
	}
}

func TestExternalPrintf(t *testing.T) {
	src := `
.data
fmt: .asciz "n=%d s=%s c=%c u=%u x=%x%%\n"
str: .asciz "abc"
.text
main:
    pushi 255
    pushi 255
    pushi 33
    pushi str
    pushi -7
    pushi fmt
    call @printf
    addi esp, 24
    movi eax, 0
    halt
`
	_, out := run(t, src, Input{})
	want := "n=-7 s=abc c=! u=255 x=ff%\n"
	if out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}

func TestExternalMemAndStrings(t *testing.T) {
	src := `
.data
src: .asciz "hello"
dst: .space 16
.text
main:
    pushi 6
    pushi src
    pushi dst
    call @memcpy
    addi esp, 12
    pushi dst
    call @strlen
    addi esp, 4
    halt
`
	res, _ := run(t, src, Input{})
	if res.ExitCode != 5 {
		t.Errorf("strlen = %d", res.ExitCode)
	}
}

func TestExternalMalloc(t *testing.T) {
	src := `
main:
    pushi 10
    call @malloc
    addi esp, 4
    mov ebx, eax          ; p
    pushi 10
    pushi 65
    push ebx
    call @memset
    addi esp, 12
    load1 eax, [ebx+9]
    halt
`
	res, _ := run(t, src, Input{})
	if res.ExitCode != 65 {
		t.Errorf("byte = %d", res.ExitCode)
	}
}

func TestExternalStrtok(t *testing.T) {
	src := `
.data
s:   .asciz "a,bb,ccc"
sep: .asciz ","
.text
main:
    pushi sep
    pushi s
    call @strtok
    addi esp, 8
    push eax
    call @puts
    addi esp, 4
    pushi sep
    pushi 0
    call @strtok
    addi esp, 8
    push eax
    call @puts
    addi esp, 4
    movi eax, 0
    halt
`
	_, out := run(t, src, Input{})
	if out != "a\nbb\n" {
		t.Errorf("output = %q", out)
	}
}

func TestInputs(t *testing.T) {
	src := `
main:
    pushi 0
    call @input_int
    addi esp, 4
    mov ebx, eax
    pushi 0
    call @input_str
    addi esp, 4
    push eax
    call @strlen
    addi esp, 4
    add eax, ebx
    halt
`
	res, _ := run(t, src, Input{Ints: []int32{40}, Strs: []string{"xy"}})
	if res.ExitCode != 42 {
		t.Errorf("exit = %d", res.ExitCode)
	}
}

func TestExitViaExternal(t *testing.T) {
	res, _ := run(t, `
main:
    pushi 7
    call @exit
    movi eax, 9
    halt
`, Input{})
	if res.ExitCode != 7 {
		t.Errorf("exit = %d", res.ExitCode)
	}
}

func TestDivByZeroTraps(t *testing.T) {
	img, err := asm.Assemble("t", `
main:
    movi eax, 1
    movi ecx, 0
    div eax, ecx
    halt
`, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(img, Input{}, nil); err == nil {
		t.Error("division by zero did not trap")
	}
}

func TestNullDerefFaults(t *testing.T) {
	img, err := asm.Assemble("t", `
main:
    movi eax, 0
    load4 ecx, [eax]
    halt
`, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(img, Input{}, nil); err == nil {
		t.Error("null dereference did not fault")
	}
}

func TestMaxStepsGuard(t *testing.T) {
	img, err := asm.Assemble("t", `
main:
    jmp main
`, "")
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(img, Input{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.MaxSteps = 100
	if err := m.Run(); err != ErrMaxSteps {
		t.Errorf("err = %v", err)
	}
}

func TestTraceHookEvents(t *testing.T) {
	img, err := asm.Assemble("t", `
main:
    call f
    movi eax, 0
    cmpi eax, 0
    jeq .done
    nop
.done:
    halt
f:
    ret
`, "")
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(img, Input{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var events []Transfer
	m.Hook = func(tr Transfer) { events = append(events, tr) }
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	var kinds []TransferKind
	for _, e := range events {
		kinds = append(kinds, e.Kind)
	}
	want := []TransferKind{TransferCall, TransferRet, TransferBranch}
	if len(kinds) != len(want) {
		t.Fatalf("events = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("event %d = %v, want %v", i, kinds[i], want[i])
		}
	}
	if !events[2].Taken {
		t.Error("branch should be taken")
	}
	fAddr, _ := img.SymAddr("f")
	if events[0].To != fAddr {
		t.Errorf("call target = %#x, want %#x", events[0].To, fAddr)
	}
}

func TestCyclesMonotone(t *testing.T) {
	// Memory ops must cost more than ALU ops: two programs with the same
	// step count but different instruction mix.
	resALU, _ := run(t, `
main:
    movi eax, 1
    movi ecx, 2
    add eax, ecx
    halt
`, Input{})
	resMem, _ := run(t, `
main:
    movi eax, 1
    push eax
    pop ecx
    halt
`, Input{})
	if resALU.Steps != resMem.Steps {
		t.Fatalf("step mismatch: %d vs %d", resALU.Steps, resMem.Steps)
	}
	if resMem.Cycles <= resALU.Cycles {
		t.Errorf("memory traffic not costed: %d <= %d", resMem.Cycles, resALU.Cycles)
	}
}

// Property: machine 32-bit arithmetic agrees with Go's uint32/int32
// semantics for every ALU op.
func TestALUMatchesGo(t *testing.T) {
	ops := []struct {
		op isa.Op
		f  func(a, b uint32) uint32
	}{
		{isa.ADD, func(a, b uint32) uint32 { return a + b }},
		{isa.SUB, func(a, b uint32) uint32 { return a - b }},
		{isa.AND, func(a, b uint32) uint32 { return a & b }},
		{isa.OR, func(a, b uint32) uint32 { return a | b }},
		{isa.XOR, func(a, b uint32) uint32 { return a ^ b }},
		{isa.SHL, func(a, b uint32) uint32 { return a << (b & 31) }},
		{isa.SHR, func(a, b uint32) uint32 { return a >> (b & 31) }},
		{isa.SAR, func(a, b uint32) uint32 { return uint32(int32(a) >> (b & 31)) }},
		{isa.MUL, func(a, b uint32) uint32 { return a * b }},
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, bv := uint32(r.Uint64()), uint32(r.Uint64())
		o := ops[r.Intn(len(ops))]
		b := asm.NewBuilder("t")
		b.Func("main")
		b.MovI(isa.EAX, int32(a))
		b.MovI(isa.ECX, int32(bv))
		b.Bin(o.op, isa.EAX, isa.ECX)
		b.Halt()
		img, err := b.Link("main")
		if err != nil {
			return false
		}
		res, err := Execute(img, Input{}, nil)
		if err != nil {
			return false
		}
		return uint32(res.ExitCode) == o.f(a, bv)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Fatal(err)
	}
}

// Property: signed comparison conditions agree with Go's int32 ordering.
func TestCondMatchesGo(t *testing.T) {
	conds := []struct {
		c isa.Cond
		f func(a, b int32) bool
	}{
		{isa.CondEQ, func(a, b int32) bool { return a == b }},
		{isa.CondNE, func(a, b int32) bool { return a != b }},
		{isa.CondLT, func(a, b int32) bool { return a < b }},
		{isa.CondLE, func(a, b int32) bool { return a <= b }},
		{isa.CondGT, func(a, b int32) bool { return a > b }},
		{isa.CondGE, func(a, b int32) bool { return a >= b }},
		{isa.CondB, func(a, b int32) bool { return uint32(a) < uint32(b) }},
		{isa.CondBE, func(a, b int32) bool { return uint32(a) <= uint32(b) }},
		{isa.CondA, func(a, b int32) bool { return uint32(a) > uint32(b) }},
		{isa.CondAE, func(a, b int32) bool { return uint32(a) >= uint32(b) }},
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, bv := int32(r.Uint64()), int32(r.Uint64())
		if r.Intn(4) == 0 {
			bv = a // exercise equality
		}
		co := conds[r.Intn(len(conds))]
		b := asm.NewBuilder("t")
		b.Func("main")
		b.MovI(isa.EAX, a)
		b.MovI(isa.ECX, bv)
		b.Cmp(isa.EAX, isa.ECX)
		b.Set(co.c, isa.EAX)
		b.Halt()
		img, err := b.Link("main")
		if err != nil {
			return false
		}
		res, err := Execute(img, Input{}, nil)
		if err != nil {
			return false
		}
		want := int32(0)
		if co.f(a, bv) {
			want = 1
		}
		return res.ExitCode == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: memory load/store round-trips for all sizes at random addresses
// in the data region.
func TestMemoryRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mem := NewMemory()
		addr := isa.DataBase + uint32(r.Intn(1<<20))
		size := []uint8{1, 2, 4}[r.Intn(3)]
		v := uint32(r.Uint64())
		if err := mem.Store(addr, v, size); err != nil {
			return false
		}
		got, err := mem.Load(addr, size)
		if err != nil {
			return false
		}
		mask := uint32(0xFFFFFFFF)
		if size < 4 {
			mask = 1<<(8*size) - 1
		}
		return got == v&mask
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryCrossPage(t *testing.T) {
	mem := NewMemory()
	addr := isa.DataBase + pageSize - 2 // straddles a page boundary
	if err := mem.Store(addr, 0xAABBCCDD, 4); err != nil {
		t.Fatal(err)
	}
	v, err := mem.Load(addr, 4)
	if err != nil || v != 0xAABBCCDD {
		t.Errorf("cross-page load = %#x, %v", v, err)
	}
}

func TestCountPrintfArgs(t *testing.T) {
	cases := map[string]int{
		"":           0,
		"hello":      0,
		"%d":         1,
		"%d %s %c":   3,
		"100%%":      0,
		"%d%%%u":     2,
		"trailing %": 0,
	}
	for format, want := range cases {
		if got := CountPrintfArgs(format); got != want {
			t.Errorf("CountPrintfArgs(%q) = %d, want %d", format, got, want)
		}
	}
}

func TestUnknownExternalRejected(t *testing.T) {
	img := &obj.Image{
		Code: []isa.Instr{
			{Op: isa.CALL, Imm: int32(extBase())},
			{Op: isa.HALT},
		},
		Entry:   isa.CodeBase,
		Externs: map[uint32]string{isa.ExtBase: "no_such_fn"},
	}
	if _, err := Execute(img, Input{}, nil); err == nil ||
		!strings.Contains(err.Error(), "not implemented") {
		t.Errorf("err = %v", err)
	}
}

// extBase returns isa.ExtBase as a non-constant so it can be converted to
// int32 without a compile-time overflow.
func extBase() uint32 { return isa.ExtBase }
