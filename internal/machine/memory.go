package machine

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// pageBits selects 64 KiB pages for the sparse flat memory.
const pageBits = 16
const pageSize = 1 << pageBits

// Memory is a sparse, zero-initialized 32-bit address space. Pages are
// materialized on first access. Accesses to the first page (addresses below
// 0x1000, the classic null-pointer guard region) fault.
//
// Load and Store take a single-lookup fast path when the access stays within
// one page (the overwhelmingly common case); a one-entry page cache makes
// consecutive accesses to the same page skip even the map lookup. Accesses
// that straddle a page boundary fall back to a byte-at-a-time slow path.
type Memory struct {
	pages map[uint32]*[pageSize]byte
	// lastPN/lastPage cache the most recently touched page. lastPN starts
	// at noPage (an impossible page number — real ones fit in 16 bits), so
	// the hit test is a single comparison with no nil check; page 0 is
	// never cached (addresses 0x1000..0xFFFF are legal but rare, and
	// excluding the page keeps a cache hit from ever bypassing the null
	// guard).
	lastPN   uint32
	lastPage *[pageSize]byte
}

// noPage is the lastPN sentinel meaning "nothing cached": page numbers are
// addr>>pageBits, so 1<<pageBits can never match a real page.
const noPage = 1 << pageBits

// NewMemory returns an empty address space.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint32]*[pageSize]byte), lastPN: noPage}
}

// Fault is a memory access violation.
type Fault struct {
	Addr uint32 // the faulting address
	Why  string // what the access violated
}

func (f *Fault) Error() string {
	return fmt.Sprintf("machine: memory fault at 0x%x: %s", f.Addr, f.Why)
}

func (m *Memory) page(addr uint32) (*[pageSize]byte, error) {
	if addr < 0x1000 {
		return nil, &Fault{Addr: addr, Why: "null-page access"}
	}
	pn := addr >> pageBits
	if pn == m.lastPN {
		return m.lastPage, nil
	}
	p := m.pages[pn]
	if p == nil {
		p = new([pageSize]byte)
		m.pages[pn] = p
	}
	if pn != 0 {
		m.lastPN, m.lastPage = pn, p
	}
	return p, nil
}

// Load reads size bytes (1, 2 or 4) little-endian.
func (m *Memory) Load(addr uint32, size uint8) (uint32, error) {
	off := addr & (pageSize - 1)
	if off+uint32(size) <= pageSize {
		p, err := m.page(addr)
		if err != nil {
			return 0, err
		}
		switch size {
		case 4:
			return binary.LittleEndian.Uint32(p[off:]), nil
		case 2:
			return uint32(binary.LittleEndian.Uint16(p[off:])), nil
		default:
			return uint32(p[off]), nil
		}
	}
	return m.loadSlow(addr, size)
}

// load32Fast reads a 4-byte value when addr hits the cached page without
// crossing its end; ok is false when the caller must take the full Load
// path. A cached page is never page 0, so the null guard is implied by the
// hit, and lastPN==noPage until something is cached, so no nil check is
// needed. Small enough to inline into the dispatch loops.
func (m *Memory) load32Fast(addr uint32) (v uint32, ok bool) {
	off := addr & (pageSize - 1)
	if off <= pageSize-4 && addr>>pageBits == m.lastPN {
		return binary.LittleEndian.Uint32(m.lastPage[off:]), true
	}
	return 0, false
}

// store32Fast is the store-side twin of load32Fast.
func (m *Memory) store32Fast(addr uint32, v uint32) bool {
	off := addr & (pageSize - 1)
	if off <= pageSize-4 && addr>>pageBits == m.lastPN {
		binary.LittleEndian.PutUint32(m.lastPage[off:], v)
		return true
	}
	return false
}

// Load32 is Load(addr, 4) specialized for the emulator's dominant access
// width: when the access stays inside the cached page, one comparison and
// one bounds-checked slice read replace the size switch and page lookup.
func (m *Memory) Load32(addr uint32) (uint32, error) {
	if v, ok := m.load32Fast(addr); ok {
		return v, nil
	}
	return m.Load(addr, 4)
}

// Store32 is Store(addr, v, 4) with the same cached-page fast path as
// Load32.
func (m *Memory) Store32(addr uint32, v uint32) error {
	if m.store32Fast(addr, v) {
		return nil
	}
	return m.Store(addr, v, 4)
}

// loadSlow assembles a load that straddles a page boundary byte by byte.
func (m *Memory) loadSlow(addr uint32, size uint8) (uint32, error) {
	var v uint32
	for i := uint8(0); i < size; i++ {
		a := addr + uint32(i)
		p, err := m.page(a)
		if err != nil {
			return 0, err
		}
		v |= uint32(p[a&(pageSize-1)]) << (8 * i)
	}
	return v, nil
}

// Store writes size bytes (1, 2 or 4) little-endian.
func (m *Memory) Store(addr uint32, v uint32, size uint8) error {
	off := addr & (pageSize - 1)
	if off+uint32(size) <= pageSize {
		p, err := m.page(addr)
		if err != nil {
			return err
		}
		switch size {
		case 4:
			binary.LittleEndian.PutUint32(p[off:], v)
		case 2:
			binary.LittleEndian.PutUint16(p[off:], uint16(v))
		default:
			p[off] = byte(v)
		}
		return nil
	}
	return m.storeSlow(addr, v, size)
}

// storeSlow scatters a store that straddles a page boundary byte by byte.
func (m *Memory) storeSlow(addr uint32, v uint32, size uint8) error {
	for i := uint8(0); i < size; i++ {
		a := addr + uint32(i)
		p, err := m.page(a)
		if err != nil {
			return err
		}
		p[a&(pageSize-1)] = byte(v >> (8 * i))
	}
	return nil
}

// WriteBytes copies b into memory at addr, one page-sized chunk at a time.
func (m *Memory) WriteBytes(addr uint32, b []byte) error {
	for len(b) > 0 {
		p, err := m.page(addr)
		if err != nil {
			return err
		}
		off := addr & (pageSize - 1)
		n := copy(p[off:], b)
		b = b[n:]
		addr += uint32(n)
	}
	return nil
}

// ReadBytes copies n bytes out of memory starting at addr, one page-sized
// chunk at a time.
func (m *Memory) ReadBytes(addr uint32, n int) ([]byte, error) {
	out := make([]byte, n)
	for dst := out; len(dst) > 0; {
		p, err := m.page(addr)
		if err != nil {
			return nil, err
		}
		off := addr & (pageSize - 1)
		c := copy(dst, p[off:])
		dst = dst[c:]
		addr += uint32(c)
	}
	return out, nil
}

// CString reads a NUL-terminated string starting at addr (bounded at 1 MiB
// to catch runaway reads). It scans page-wise rather than byte-wise.
func (m *Memory) CString(addr uint32) (string, error) {
	const limit = 1 << 20
	var out []byte
	for read := 0; read < limit; {
		p, err := m.page(addr)
		if err != nil {
			return "", err
		}
		off := addr & (pageSize - 1)
		chunk := p[off:]
		if i := bytes.IndexByte(chunk, 0); i >= 0 {
			out = append(out, chunk[:i]...)
			return string(out), nil
		}
		out = append(out, chunk...)
		read += len(chunk)
		addr += uint32(len(chunk))
	}
	return "", &Fault{Addr: addr, Why: "unterminated string"}
}

// zeroPage is the reference all-zero page Digest compares against.
var zeroPage [pageSize]byte

// Digest returns a canonical sha256 over the memory contents: every
// non-zero page, in ascending page order, hashed as (page number, bytes).
// Pages that were materialized by reads but never written hash like pages
// that were never touched, so two executions digest equal exactly when
// they leave the same bytes behind — the property the superblock
// differential tests check.
func (m *Memory) Digest() [sha256.Size]byte {
	pns := make([]uint32, 0, len(m.pages))
	for pn, p := range m.pages {
		if !bytes.Equal(p[:], zeroPage[:]) {
			pns = append(pns, pn)
		}
	}
	sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })
	h := sha256.New()
	var num [4]byte
	for _, pn := range pns {
		binary.LittleEndian.PutUint32(num[:], pn)
		h.Write(num[:])
		h.Write(m.pages[pn][:])
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}
