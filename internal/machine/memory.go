package machine

import "fmt"

// pageBits selects 64 KiB pages for the sparse flat memory.
const pageBits = 16
const pageSize = 1 << pageBits

// Memory is a sparse, zero-initialized 32-bit address space. Pages are
// materialized on first access. Accesses to the first page (addresses below
// 0x1000, the classic null-pointer guard region) fault.
type Memory struct {
	pages map[uint32]*[pageSize]byte
}

// NewMemory returns an empty address space.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint32]*[pageSize]byte)}
}

// Fault is a memory access violation.
type Fault struct {
	Addr uint32
	Why  string
}

func (f *Fault) Error() string {
	return fmt.Sprintf("machine: memory fault at 0x%x: %s", f.Addr, f.Why)
}

func (m *Memory) page(addr uint32) (*[pageSize]byte, error) {
	if addr < 0x1000 {
		return nil, &Fault{Addr: addr, Why: "null-page access"}
	}
	pn := addr >> pageBits
	p := m.pages[pn]
	if p == nil {
		p = new([pageSize]byte)
		m.pages[pn] = p
	}
	return p, nil
}

// Load reads size bytes (1, 2 or 4) little-endian.
func (m *Memory) Load(addr uint32, size uint8) (uint32, error) {
	var v uint32
	for i := uint8(0); i < size; i++ {
		a := addr + uint32(i)
		p, err := m.page(a)
		if err != nil {
			return 0, err
		}
		v |= uint32(p[a&(pageSize-1)]) << (8 * i)
	}
	return v, nil
}

// Store writes size bytes (1, 2 or 4) little-endian.
func (m *Memory) Store(addr uint32, v uint32, size uint8) error {
	for i := uint8(0); i < size; i++ {
		a := addr + uint32(i)
		p, err := m.page(a)
		if err != nil {
			return err
		}
		p[a&(pageSize-1)] = byte(v >> (8 * i))
	}
	return nil
}

// WriteBytes copies b into memory at addr.
func (m *Memory) WriteBytes(addr uint32, b []byte) error {
	for i, c := range b {
		p, err := m.page(addr + uint32(i))
		if err != nil {
			return err
		}
		p[(addr+uint32(i))&(pageSize-1)] = c
	}
	return nil
}

// ReadBytes copies n bytes out of memory starting at addr.
func (m *Memory) ReadBytes(addr uint32, n int) ([]byte, error) {
	out := make([]byte, n)
	for i := range out {
		p, err := m.page(addr + uint32(i))
		if err != nil {
			return nil, err
		}
		out[i] = p[(addr+uint32(i))&(pageSize-1)]
	}
	return out, nil
}

// CString reads a NUL-terminated string starting at addr (bounded at 1 MiB
// to catch runaway reads).
func (m *Memory) CString(addr uint32) (string, error) {
	const limit = 1 << 20
	var out []byte
	for i := 0; i < limit; i++ {
		b, err := m.Load(addr+uint32(i), 1)
		if err != nil {
			return "", err
		}
		if b == 0 {
			return string(out), nil
		}
		out = append(out, byte(b))
	}
	return "", &Fault{Addr: addr, Why: "unterminated string"}
}
