package machine

import (
	"errors"
	"strings"
	"testing"

	"wytiwyg/internal/asm"
	"wytiwyg/internal/isa"
)

// SYS 0 is the raw exit syscall (status in eax); other numbers are
// rejected.
func TestSyscallExit(t *testing.T) {
	res, _ := run(t, `
main:
    movi eax, 17
    sys 0
    halt
`, Input{})
	if res.ExitCode != 17 {
		t.Errorf("exit = %d, want 17", res.ExitCode)
	}
}

func TestSyscallUnknown(t *testing.T) {
	img, err := asm.Assemble("t", "main:\n\tsys 9\n\thalt\n", "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(img, Input{}, nil); err == nil ||
		!strings.Contains(err.Error(), "syscall") {
		t.Errorf("err = %v, want unknown-syscall error", err)
	}
}

// TEST sets ZF from the AND of its operands and clears the
// subtraction-style flags.
func TestTestInstructionFlags(t *testing.T) {
	res, _ := run(t, `
main:
    movi eax, 12
    movi ecx, 3
    test eax, ecx          ; 12 & 3 = 0 -> ZF
    seteq edx              ; 1
    movi ecx, 4
    test eax, ecx          ; 12 & 4 != 0
    setne ebx              ; 1
    add edx, ebx
    mov eax, edx
    push eax
    call @exit
    halt
`, Input{})
	if res.ExitCode != 2 {
		t.Errorf("exit = %d, want 2", res.ExitCode)
	}
}

// PC and Halted track stepping.
func TestStepAccessors(t *testing.T) {
	img, err := asm.Assemble("t", "main:\n\tmovi eax, 1\n\tmovi eax, 2\n\thalt\n", "")
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(img, Input{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.PC() != isa.CodeBase {
		t.Errorf("initial pc = %#x", m.PC())
	}
	if m.Halted() {
		t.Error("halted before first step")
	}
	if err := m.Step(); err != nil {
		t.Fatal(err)
	}
	if m.PC() != isa.CodeBase+isa.InstrSize {
		t.Errorf("pc after one step = %#x", m.PC())
	}
	for !m.Halted() {
		if err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestExternalRegistry(t *testing.T) {
	for _, n := range ExtNames {
		if !IsExternal(n) {
			t.Errorf("IsExternal(%q) = false", n)
		}
		a, ok := ExtAddrFor(n)
		if !ok || a < isa.ExtBase {
			t.Errorf("ExtAddrFor(%q) = %#x, %v", n, a, ok)
		}
	}
	if IsExternal("no_such") {
		t.Error("phantom external")
	}
	if _, ok := ExtAddrFor("no_such"); ok {
		t.Error("phantom external address")
	}
}

// Memory faults carry the address and cause, and unwrap as *Fault.
func TestFaultError(t *testing.T) {
	img, err := asm.Assemble("t", "main:\n\tmovi eax, 8\n\tload4 ecx, [eax]\n\thalt\n", "")
	if err != nil {
		t.Fatal(err)
	}
	_, err = Execute(img, Input{}, nil)
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("err = %v, want *Fault", err)
	}
	if f.Addr != 8 || !strings.Contains(f.Error(), "0x8") {
		t.Errorf("fault = %v", f)
	}
}
