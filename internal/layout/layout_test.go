package layout

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVarGeometry(t *testing.T) {
	a := Var{Name: "a", Offset: -20, Size: 8}
	b := Var{Name: "b", Offset: -44, Size: 24}
	ptr := Var{Name: "ptr", Offset: -12, Size: 4}
	if a.Overlaps(b) {
		t.Error("a and b overlap")
	}
	if !b.Overlaps(Var{Offset: -36, Size: 4}) {
		t.Error("b[1] access does not overlap b")
	}
	if !b.Covers(Var{Offset: -36, Size: 4}) {
		t.Error("b does not cover inner range")
	}
	if b.Covers(Var{Offset: -48, Size: 8}) {
		t.Error("b covers range extending below it")
	}
	if a.End() != -12 || ptr.End() != -8 {
		t.Error("End arithmetic wrong")
	}
}

// Property: Overlaps is symmetric, and Covers implies Overlaps for non-empty
// ranges.
func TestOverlapProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mk := func() Var {
			return Var{Offset: int32(r.Intn(200) - 100), Size: uint32(r.Intn(40) + 1)}
		}
		a, b := mk(), mk()
		if a.Overlaps(b) != b.Overlaps(a) {
			return false
		}
		if a.Covers(b) && !a.Overlaps(b) {
			return false
		}
		if a.Covers(b) && b.Covers(a) && (a.Offset != b.Offset || a.Size != b.Size) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func frame(fn string, vars ...Var) *Frame { return &Frame{Func: fn, Vars: vars} }

func TestCompareFrameCategories(t *testing.T) {
	truth := frame("f",
		Var{Name: "a", Offset: -20, Size: 8},
		Var{Name: "b", Offset: -44, Size: 24},
		Var{Name: "ptr", Offset: -12, Size: 4},
		Var{Name: "ghost", Offset: -60, Size: 4},
	)
	rec := frame("f",
		Var{Name: "v0", Offset: -20, Size: 8},  // matched a
		Var{Name: "v1", Offset: -44, Size: 32}, // oversized for b (subsumes a? no: [-44,-12) covers b [-44,-20) and a [-20,-12))
		Var{Name: "v2", Offset: -12, Size: 2},  // undersized for ptr
	)
	acc := CompareFrame(truth, rec)
	// a: matched by v0 (also covered by v1, but matched is the best category)
	if acc.Counts[Matched] != 1 {
		t.Errorf("matched = %d, want 1", acc.Counts[Matched])
	}
	if acc.Counts[Oversized] != 1 {
		t.Errorf("oversized = %d, want 1", acc.Counts[Oversized])
	}
	if acc.Counts[Undersized] != 1 {
		t.Errorf("undersized = %d, want 1", acc.Counts[Undersized])
	}
	if acc.Counts[Missed] != 1 {
		t.Errorf("missed = %d, want 1", acc.Counts[Missed])
	}
	if acc.TruthTotal != 4 || acc.RecoveredTotal != 3 || acc.TruePositives != 3 {
		t.Errorf("totals: %+v", acc)
	}
	if acc.Precision() != 1.0 {
		t.Errorf("precision = %v", acc.Precision())
	}
	if acc.Recall() != 0.5 {
		t.Errorf("recall = %v", acc.Recall())
	}
}

func TestCompareMissingFunction(t *testing.T) {
	truth := NewProgram()
	truth.Add(frame("f", Var{Name: "x", Offset: -4, Size: 4}))
	rec := NewProgram()
	acc := Compare(truth, rec)
	if acc.Counts[Missed] != 1 || acc.TruthTotal != 1 {
		t.Errorf("got %+v", acc)
	}
	// nil recovered program behaves the same
	acc2 := Compare(truth, nil)
	if acc2.Counts[Missed] != 1 {
		t.Errorf("nil recovered: %+v", acc2)
	}
}

func TestAccuracyAggregation(t *testing.T) {
	var a, b Accuracy
	a.Counts[Matched] = 3
	a.TruthTotal = 4
	a.RecoveredTotal = 3
	a.TruePositives = 3
	b.Counts[Missed] = 1
	b.TruthTotal = 1
	b.RecoveredTotal = 2
	b.TruePositives = 1
	a.Add(b)
	if a.TruthTotal != 5 || a.RecoveredTotal != 5 || a.TruePositives != 4 {
		t.Errorf("aggregate totals wrong: %+v", a)
	}
	if a.Ratio(Matched) != 0.6 {
		t.Errorf("Ratio(Matched) = %v", a.Ratio(Matched))
	}
	if a.Precision() != 0.8 {
		t.Errorf("precision = %v", a.Precision())
	}
}

func TestEmptyAccuracy(t *testing.T) {
	var a Accuracy
	if a.Precision() != 1 || a.Recall() != 1 || a.Ratio(Matched) != 0 {
		t.Errorf("empty accuracy defaults wrong: %+v", a)
	}
}

func TestFrameSortAndString(t *testing.T) {
	f := frame("g",
		Var{Name: "z", Offset: -4, Size: 4},
		Var{Name: "a", Offset: -12, Size: 8},
	)
	f.Sort()
	if f.Vars[0].Name != "a" || f.Vars[1].Name != "z" {
		t.Errorf("sort order wrong: %v", f.Vars)
	}
	want := "frame g: a@[-12,-4) z@[-4,0)"
	if f.String() != want {
		t.Errorf("String() = %q, want %q", f.String(), want)
	}
}

func TestProgramFuncNames(t *testing.T) {
	p := NewProgram()
	p.Add(frame("b"))
	p.Add(frame("a"))
	names := p.FuncNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("FuncNames = %v", names)
	}
	if p.Frame("a") == nil || p.Frame("nope") != nil {
		t.Error("Frame lookup wrong")
	}
}
