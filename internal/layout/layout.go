// Package layout defines stack-frame layout descriptions and the accuracy
// metric of the paper's Figure 7. A layout lists, per function, the local
// variables as half-open byte ranges relative to sp0 — the value of the
// stack pointer at function entry (so locals have negative offsets and
// stack-passed arguments positive ones).
//
// The compiler (internal/minicc) emits a ground-truth layout side-table —
// the analogue of LLVM 16's Stack Frame Layout analysis used by the paper —
// and the symbolizer emits a recovered layout; Compare classifies each
// ground-truth object as matched / oversized / undersized / missed.
package layout

import (
	"fmt"
	"sort"
	"strings"
)

// Var is one stack object. Offset is relative to sp0 (bytes; negative for
// locals below the return address) and the object occupies
// [Offset, Offset+Size).
type Var struct {
	Name   string // variable name (synthetic for recovered objects)
	Offset int32  // frame-relative start offset
	Size   uint32 // object size in bytes
}

// End returns the first offset past the object.
func (v Var) End() int32 { return v.Offset + int32(v.Size) }

// Overlaps reports whether two objects' byte ranges intersect.
func (v Var) Overlaps(o Var) bool {
	return v.Offset < o.End() && o.Offset < v.End()
}

// Covers reports whether v's range fully contains o's.
func (v Var) Covers(o Var) bool {
	return v.Offset <= o.Offset && v.End() >= o.End()
}

func (v Var) String() string {
	return fmt.Sprintf("%s@[%d,%d)", v.Name, v.Offset, v.End())
}

// Frame is the layout of one function's stack frame.
type Frame struct {
	Func string // owning function
	Vars []Var  // stack objects, sorted by offset
}

// Sort orders the variables by offset (stable by name within equal offsets).
func (f *Frame) Sort() {
	sort.SliceStable(f.Vars, func(i, j int) bool {
		if f.Vars[i].Offset != f.Vars[j].Offset {
			return f.Vars[i].Offset < f.Vars[j].Offset
		}
		return f.Vars[i].Name < f.Vars[j].Name
	})
}

func (f *Frame) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "frame %s:", f.Func)
	for _, v := range f.Vars {
		fmt.Fprintf(&b, " %s", v)
	}
	return b.String()
}

// Program maps function names to frames.
type Program struct {
	Frames map[string]*Frame // frame layouts keyed by function name
}

// NewProgram returns an empty layout table.
func NewProgram() *Program { return &Program{Frames: make(map[string]*Frame)} }

// Add records a frame, replacing any previous frame for the same function.
func (p *Program) Add(f *Frame) { p.Frames[f.Func] = f }

// Frame returns the frame for a function, or nil.
func (p *Program) Frame(fn string) *Frame { return p.Frames[fn] }

// FuncNames returns the function names in sorted order.
func (p *Program) FuncNames() []string {
	out := make([]string, 0, len(p.Frames))
	for n := range p.Frames {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Category classifies one ground-truth object against a recovered layout,
// per the paper's Figure 7.
type Category uint8

// Classification of a ground-truth allocation: matched on perfect overlap
// with one recovered object, oversized when a recovered object strictly
// contains it, undersized on partial overlap, missed on no overlap.
const (
	Matched Category = iota
	Oversized
	Undersized
	Missed
	NumCategories
)

var categoryNames = [NumCategories]string{"matched", "oversized", "undersized", "missed"}

func (c Category) String() string { return categoryNames[c] }

// Accuracy aggregates a comparison between recovered and ground-truth
// layouts.
type Accuracy struct {
	Counts [NumCategories]int // per-category object tallies
	// TruthTotal is the number of ground-truth objects considered.
	TruthTotal int
	// RecoveredTotal is the number of recovered objects considered.
	RecoveredTotal int
	// TruePositives counts recovered objects that overlap at least one
	// ground-truth object (used for precision).
	TruePositives int
}

// Add accumulates another accuracy record.
func (a *Accuracy) Add(o Accuracy) {
	for i := range a.Counts {
		a.Counts[i] += o.Counts[i]
	}
	a.TruthTotal += o.TruthTotal
	a.RecoveredTotal += o.RecoveredTotal
	a.TruePositives += o.TruePositives
}

// Precision is the fraction of recovered objects that correspond to real
// ground-truth objects.
func (a Accuracy) Precision() float64 {
	if a.RecoveredTotal == 0 {
		return 1
	}
	return float64(a.TruePositives) / float64(a.RecoveredTotal)
}

// Recall is the fraction of ground-truth objects that were recovered
// (matched or oversized — i.e. covered without risk of overflow, the
// paper's notion of a safely symbolized object).
func (a Accuracy) Recall() float64 {
	if a.TruthTotal == 0 {
		return 1
	}
	return float64(a.Counts[Matched]+a.Counts[Oversized]) / float64(a.TruthTotal)
}

// Ratio returns the fraction of ground-truth objects in category c.
func (a Accuracy) Ratio(c Category) float64 {
	if a.TruthTotal == 0 {
		return 0
	}
	return float64(a.Counts[c]) / float64(a.TruthTotal)
}

// CompareFrame classifies every ground-truth object of truth against the
// recovered frame (which may be nil, in which case everything is missed).
func CompareFrame(truth, recovered *Frame) Accuracy {
	var acc Accuracy
	acc.TruthTotal = len(truth.Vars)
	var rec []Var
	if recovered != nil {
		rec = recovered.Vars
		acc.RecoveredTotal = len(rec)
	}
	for _, tv := range truth.Vars {
		best := Missed
		for _, rv := range rec {
			if !tv.Overlaps(rv) {
				continue
			}
			var c Category
			switch {
			case tv.Offset == rv.Offset && tv.Size == rv.Size:
				c = Matched
			case rv.Covers(tv):
				c = Oversized
			default:
				c = Undersized
			}
			if c < best {
				best = c
			}
		}
		acc.Counts[best]++
	}
	for _, rv := range rec {
		for _, tv := range truth.Vars {
			if rv.Overlaps(tv) {
				acc.TruePositives++
				break
			}
		}
	}
	return acc
}

// Compare classifies every function of truth against the recovered program.
// Only functions present in truth are considered (the paper compares only
// functions that were executed in the traces; the caller restricts truth
// accordingly).
func Compare(truth, recovered *Program) Accuracy {
	var acc Accuracy
	for name, tf := range truth.Frames {
		var rf *Frame
		if recovered != nil {
			rf = recovered.Frame(name)
		}
		acc.Add(CompareFrame(tf, rf))
	}
	return acc
}
