// Typed layouts: the small recovered-type lattice layered on top of the
// positional layouts of this package, plus the precision/recall metric
// that scores inferred slot types against minicc's emitted ground truth.
//
// The lattice is deliberately small — int8/int16/int32, ptr(T),
// array(T, n), struct{off→T}, with top (no claim) and conflict
// (irreconcilable evidence) — because it is exactly the set of shapes the
// access-width and strided-interval facts of internal/vsa can witness.
// Scoring flattens both the claim and the truth to their scalar leaves
// (offset, width, pointerness) and demands exact leaf-set equality, so
// padding (which contributes no leaves on either side) is neutral,
// array-of-T and struct-of-uniform-T are structurally interchangeable,
// and partial claims do not score. Pointee types are reported but not
// scored: the dynamic facts witness that a cell holds a pointer, not what
// the pointer's target "really is".
package layout

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// TKind enumerates the recovered type lattice.
type TKind uint8

// Lattice points, from "no claim" to "contradictory claims": TTop makes
// no statement, the three integer kinds and TPtr are the scalar leaves,
// TArray and TStruct are the composite shapes, and TConflict records that
// the evidence for a slot was irreconcilable (e.g. the same offset read
// at two different widths).
const (
	TTop TKind = iota
	TInt8
	TInt16
	TInt32
	TPtr
	TArray
	TStruct
	TConflict
)

var tkindNames = [...]string{"top", "int8", "int16", "int32", "ptr", "array", "struct", "conflict"}

func (k TKind) String() string {
	if int(k) < len(tkindNames) {
		return tkindNames[k]
	}
	return fmt.Sprintf("TKind(%d)", int(k))
}

// TField is one field of a struct type: a member type at a byte offset
// from the struct's start.
type TField struct {
	Off  uint32 `json:"off"`  // byte offset from the struct start
	Type *Type  `json:"type"` // member type
}

// Type is one point of the recovered-type lattice. The zero value (and a
// nil *Type) mean TTop: no claim. Types are immutable by convention —
// clients share and never mutate them.
type Type struct {
	Kind TKind // lattice point
	// Elem is the pointee for TPtr (nil = unknown pointee) and the
	// element type for TArray.
	Elem *Type
	// Count is the element count for TArray.
	Count uint32
	// Fields lists the members for TStruct, sorted by offset.
	Fields []TField
}

// Shared scalar lattice points. Composite types are built with PtrTo,
// ArrayOf and StructOf.
var (
	Top      = &Type{Kind: TTop}
	Int8     = &Type{Kind: TInt8}
	Int16    = &Type{Kind: TInt16}
	Int32    = &Type{Kind: TInt32}
	Conflict = &Type{Kind: TConflict}
)

// IntOfWidth returns the integer lattice point of the given byte width,
// or nil if no integer kind has that width.
func IntOfWidth(w uint32) *Type {
	switch w {
	case 1:
		return Int8
	case 2:
		return Int16
	case 4:
		return Int32
	}
	return nil
}

// PtrTo returns a pointer type with the given pointee (nil = unknown).
func PtrTo(elem *Type) *Type { return &Type{Kind: TPtr, Elem: elem} }

// ArrayOf returns an array type of n elements.
func ArrayOf(elem *Type, n uint32) *Type {
	return &Type{Kind: TArray, Elem: elem, Count: n}
}

// StructOf returns a struct type over the given fields (sorted by
// offset by the caller).
func StructOf(fields []TField) *Type { return &Type{Kind: TStruct, Fields: fields} }

// Kind0 returns the type's kind, treating nil as TTop.
func (t *Type) Kind0() TKind {
	if t == nil {
		return TTop
	}
	return t.Kind
}

// Committed reports whether the type makes a positive claim — anything
// other than top or conflict.
func (t *Type) Committed() bool {
	k := t.Kind0()
	return k != TTop && k != TConflict
}

// Width returns the byte width of a scalar lattice point (pointers are 4
// bytes on the 32-bit target), and 0 for everything else.
func (t *Type) Width() uint32 {
	switch t.Kind0() {
	case TInt8:
		return 1
	case TInt16:
		return 2
	case TInt32, TPtr:
		return 4
	}
	return 0
}

func (t *Type) String() string {
	switch t.Kind0() {
	case TTop:
		return "top"
	case TConflict:
		return "conflict"
	case TInt8, TInt16, TInt32:
		return t.Kind.String()
	case TPtr:
		if t.Elem == nil {
			return "ptr"
		}
		return fmt.Sprintf("ptr(%s)", t.Elem)
	case TArray:
		return fmt.Sprintf("array(%s,%d)", t.Elem, t.Count)
	case TStruct:
		var b strings.Builder
		b.WriteString("struct{")
		for i, f := range t.Fields {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d:%s", f.Off, f.Type)
		}
		b.WriteByte('}')
		return b.String()
	}
	return t.Kind.String()
}

// MarshalJSON renders the type as a small object tree with the kind as a
// string, e.g. {"kind":"array","elem":{"kind":"int32"},"count":3}.
func (t *Type) MarshalJSON() ([]byte, error) {
	m := map[string]any{"kind": t.Kind0().String()}
	if t != nil {
		switch t.Kind {
		case TPtr:
			if t.Elem != nil {
				m["elem"] = t.Elem
			}
		case TArray:
			m["elem"] = t.Elem
			m["count"] = t.Count
		case TStruct:
			m["fields"] = t.Fields
		}
	}
	return json.Marshal(m)
}

// Leaf is one scalar cell of a flattened type: a byte range at an offset
// from the enclosing object's start, with the only property the dynamic
// facts can witness about its contents — whether it holds a pointer.
type Leaf struct {
	Off  uint32 // byte offset from the object start
	Size uint32 // cell width in bytes
	Ptr  bool   // the cell holds a pointer
}

// Leaves flattens the type to its scalar cells in offset order. Top and
// conflict flatten to nothing (they claim nothing).
func (t *Type) Leaves() []Leaf {
	var out []Leaf
	t.appendLeaves(&out, 0)
	sort.Slice(out, func(i, j int) bool { return out[i].Off < out[j].Off })
	return out
}

func (t *Type) appendLeaves(out *[]Leaf, base uint32) {
	switch t.Kind0() {
	case TInt8, TInt16, TInt32:
		*out = append(*out, Leaf{Off: base, Size: t.Width()})
	case TPtr:
		*out = append(*out, Leaf{Off: base, Size: 4, Ptr: true})
	case TArray:
		sz := t.Elem.ByteSize()
		for i := uint32(0); i < t.Count; i++ {
			t.Elem.appendLeaves(out, base+i*sz)
		}
	case TStruct:
		for _, f := range t.Fields {
			f.Type.appendLeaves(out, base+f.Off)
		}
	}
}

// ByteSize returns the type's storage footprint: scalar width for
// leaves, count×elem for arrays, and last-field end for structs (the
// ground-truth emitter bakes trailing padding into the field offsets, so
// struct sizes used in scoring come from the enclosing Var instead).
func (t *Type) ByteSize() uint32 {
	switch t.Kind0() {
	case TArray:
		return t.Count * t.Elem.ByteSize()
	case TStruct:
		var end uint32
		for _, f := range t.Fields {
			if e := f.Off + f.Type.ByteSize(); e > end {
				end = e
			}
		}
		return end
	default:
		return t.Width()
	}
}

// AdmitsAccess reports whether a concrete size-byte access at byte
// offset off (from the object's start) lands exactly on one of the
// type's scalar leaves. Uncommitted types admit everything — they claim
// nothing. This is the width contract the differential validator checks
// against real traced accesses.
func (t *Type) AdmitsAccess(off, size int64) bool {
	if !t.Committed() {
		return true
	}
	for _, l := range t.Leaves() {
		if int64(l.Off) == off && int64(l.Size) == size {
			return true
		}
	}
	return false
}

// TypeMatches scores one recovered claim against the ground truth: the
// claim must be committed and the two leaf sets must be equal —
// same cell offsets, same widths, same pointerness, no extra or missing
// cells. Padding never appears as a leaf, so padded structs compare by
// their real members; pointee types never appear in leaves, so they are
// reported but not scored.
func TypeMatches(claim, truth *Type) bool {
	if !claim.Committed() {
		return false
	}
	cl, tl := claim.Leaves(), truth.Leaves()
	if len(cl) != len(tl) || len(cl) == 0 {
		return false
	}
	for i := range cl {
		if cl[i] != tl[i] {
			return false
		}
	}
	return true
}

// TypedVar is one stack object with its type (recovered or
// ground-truth).
type TypedVar struct {
	Var
	Type *Type // the object's type (nil/top = no claim)
}

func (v TypedVar) String() string {
	return fmt.Sprintf("%s: %s", v.Var, v.Type)
}

// TypedFrame is the typed layout of one function's stack frame.
type TypedFrame struct {
	Func string     // owning function
	Vars []TypedVar // typed stack objects, sorted by offset
}

// Sort orders the variables by offset (stable by name within equal
// offsets), mirroring Frame.Sort.
func (f *TypedFrame) Sort() {
	sort.SliceStable(f.Vars, func(i, j int) bool {
		if f.Vars[i].Offset != f.Vars[j].Offset {
			return f.Vars[i].Offset < f.Vars[j].Offset
		}
		return f.Vars[i].Name < f.Vars[j].Name
	})
}

// TypedProgram maps function names to typed frames.
type TypedProgram struct {
	Frames map[string]*TypedFrame // typed frames keyed by function name
}

// NewTypedProgram returns an empty typed-layout table.
func NewTypedProgram() *TypedProgram {
	return &TypedProgram{Frames: make(map[string]*TypedFrame)}
}

// Add records a typed frame, replacing any previous frame for the same
// function.
func (p *TypedProgram) Add(f *TypedFrame) { p.Frames[f.Func] = f }

// Frame returns the typed frame for a function, or nil.
func (p *TypedProgram) Frame(fn string) *TypedFrame { return p.Frames[fn] }

// FuncNames returns the function names in sorted order.
func (p *TypedProgram) FuncNames() []string {
	out := make([]string, 0, len(p.Frames))
	for n := range p.Frames {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// TypeAccuracy aggregates a typed-layout comparison. Claims are counted
// only on recovered slots whose byte range exactly matches a
// ground-truth slot — positional accuracy is Figure 7's metric; this one
// isolates the type question on top of it.
type TypeAccuracy struct {
	// TruthSlots is the number of ground-truth slots considered.
	TruthSlots int
	// Claims counts committed recovered types on layout-matched slots.
	Claims int
	// Correct counts claims whose leaf set equals the ground truth's.
	Correct int
}

// Add accumulates another accuracy record.
func (a *TypeAccuracy) Add(o TypeAccuracy) {
	a.TruthSlots += o.TruthSlots
	a.Claims += o.Claims
	a.Correct += o.Correct
}

// Precision is the fraction of committed type claims that are correct
// (1 when nothing was claimed).
func (a TypeAccuracy) Precision() float64 {
	if a.Claims == 0 {
		return 1
	}
	return float64(a.Correct) / float64(a.Claims)
}

// Recall is the fraction of ground-truth slots that were correctly
// typed (1 when the truth has no slots).
func (a TypeAccuracy) Recall() float64 {
	if a.TruthSlots == 0 {
		return 1
	}
	return float64(a.Correct) / float64(a.TruthSlots)
}

// CompareTypedFrame scores one function's recovered typed frame against
// the ground truth (recovered may be nil: everything untyped).
func CompareTypedFrame(truth, recovered *TypedFrame) TypeAccuracy {
	var acc TypeAccuracy
	acc.TruthSlots = len(truth.Vars)
	if recovered == nil {
		return acc
	}
	for _, tv := range truth.Vars {
		for _, rv := range recovered.Vars {
			if rv.Offset != tv.Offset || rv.Size != tv.Size {
				continue
			}
			if rv.Type.Committed() {
				acc.Claims++
				if TypeMatches(rv.Type, tv.Type) {
					acc.Correct++
				}
			}
			break
		}
	}
	return acc
}

// CompareTyped scores every function of truth against the recovered
// typed program, mirroring Compare.
func CompareTyped(truth, recovered *TypedProgram) TypeAccuracy {
	var acc TypeAccuracy
	for name, tf := range truth.Frames {
		var rf *TypedFrame
		if recovered != nil {
			rf = recovered.Frame(name)
		}
		acc.Add(CompareTypedFrame(tf, rf))
	}
	return acc
}
