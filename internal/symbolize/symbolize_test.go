package symbolize_test

import (
	"bytes"
	"testing"

	"wytiwyg/internal/core"
	"wytiwyg/internal/ir"
	"wytiwyg/internal/irexec"
	"wytiwyg/internal/layout"
	"wytiwyg/internal/machine"
	"wytiwyg/internal/minicc/gen"
)

func fullPipeline(t *testing.T, src string, prof gen.Profile, inputs []machine.Input) *core.Pipeline {
	t.Helper()
	img, err := gen.Build(src, prof, "t")
	if err != nil {
		t.Fatalf("%s: build: %v", prof.Name, err)
	}
	p, err := core.LiftBinary(img, inputs)
	if err != nil {
		t.Fatalf("%s: lift: %v", prof.Name, err)
	}
	if err := p.Refine(); err != nil {
		t.Fatalf("%s: refine: %v", prof.Name, err)
	}
	return p
}

func checkBehaviour(t *testing.T, p *core.Pipeline, label string) {
	t.Helper()
	for i, input := range p.Inputs {
		var nat, lift bytes.Buffer
		n, err := machine.Execute(p.Img, input, &nat)
		if err != nil {
			t.Fatalf("%s input %d native: %v", label, i, err)
		}
		r, err := irexec.Run(p.Mod, input, &lift, nil)
		if err != nil {
			t.Fatalf("%s input %d symbolized: %v", label, i, err)
		}
		if r.ExitCode != n.ExitCode || lift.String() != nat.String() {
			t.Errorf("%s input %d: exit %d/%d out %q/%q",
				label, i, r.ExitCode, n.ExitCode, lift.String(), nat.String())
		}
	}
}

// checkNoESP asserts the virtual stack pointer is gone from the module.
func checkNoESP(t *testing.T, p *core.Pipeline, label string) {
	t.Helper()
	if p.Mod.EmuStackSize != 0 {
		t.Errorf("%s: emulated stack still present", label)
	}
	for _, f := range p.Mod.Funcs {
		for _, prm := range f.Params {
			if prm.RegHint.Valid() && prm.RegHint.String() == "esp" {
				t.Errorf("%s: %s still has an ESP parameter", label, f.Name)
			}
		}
	}
}

var symbolizePrograms = []struct {
	name   string
	src    string
	inputs []machine.Input
}{
	{"scalars", `
int main() {
	int a = 1, b = 2, c;
	int *p = &a;
	c = *p + b;
	return c;
}`, nil},
	{"figure2", `
struct p { int x; int y; };
int f3(int n) { return n / 12; }
struct p *f2(struct p *a, struct p *b) { return a; }
int f1() {
	struct p *ptr; struct p a; struct p b[3];
	a.x = 3; a.y = 4;
	ptr = f2(&a, b);
	b[f3(sizeof(b))] = a;
	ptr->y = b[1].x;
	return ptr->y * 100 + b[2].x * 10 + b[2].y;
}
int main() { return f1(); }`, nil},
	{"arrays", `
int sum(int *v, int n) {
	int i, s = 0;
	for (i = 0; i < n; i++) s += v[i];
	return s;
}
int main() {
	int data[16];
	int i;
	for (i = 0; i < 16; i++) data[i] = i * i;
	return sum(data, 16) % 251;
}`, nil},
	{"recursion", `
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int main() { return fib(12); }`, nil},
	{"figure3", `
int main() {
	int arr[4][4];
	int i, j, s = 0;
	for (i = 0; i < 4; i++) {
		arr[i][0] = i;
		arr[i][1] = i + 1;
		arr[i][2] = i + 2;
		arr[i][3] = i + 3;
	}
	for (i = 0; i < 4; i++) {
		for (j = 0; j < 4; j = j + 1) s += arr[i][j];
	}
	return s;
}`, nil},
	{"strings", `
extern int printf(char *fmt, ...);
extern int strlen(char *s);
extern int sprintf(char *dst, char *fmt, ...);
extern int memcpy(void *d, void *s, int n);
int main() {
	char buf[24];
	char copy[24];
	sprintf(buf, "n=%d s=%s", 7, "seven");
	memcpy(copy, buf, strlen(buf) + 1);
	printf("%s!\n", copy);
	return strlen(copy);
}`, nil},
	{"tailcalls", `
int isOdd(int n);
int isEven(int n) { if (n == 0) return 1; return isOdd(n - 1); }
int isOdd(int n) { if (n == 0) return 0; return isEven(n - 1); }
int main() { return isEven(40) * 10 + isOdd(9); }`, nil},
	{"fnptr", `
int twice(int x) { return 2 * x; }
int thrice(int x) { return 3 * x; }
int apply(fnptr f, int v) { return f(v); }
int main() { return apply(&twice, 21) + apply(&thrice, 4); }`, nil},
	{"chars", `
int main() {
	char buf[8];
	char a = 'x', b;
	int i;
	for (i = 0; i < 7; i++) buf[i] = 'a' + i;
	buf[7] = 0;
	b = a;
	return b + buf[3];
}`, nil},
	{"outptr", `
void fill(int *dst, int v) { *dst = v * 3; }
int main() {
	int slot;
	fill(&slot, 9);
	return slot;
}`, nil},
	{"heap", `
extern void *malloc(int n);
int main() {
	int *h = (int*)malloc(24);
	int i, s = 0;
	for (i = 0; i < 6; i++) h[i] = i + 1;
	for (i = 0; i < 6; i++) s += h[i];
	return s;
}`, nil},
	{"inputs", `
extern int input_int(int i);
int main() {
	int n = input_int(0), s = 0, i;
	int tmp[8];
	for (i = 0; i < 8; i++) tmp[i] = i * n;
	for (i = 0; i < 8; i++) s += tmp[i];
	return s;
}`, []machine.Input{{Ints: []int32{3}}, {Ints: []int32{5}}}},
}

func TestSymbolizeBehaviour(t *testing.T) {
	for _, prog := range symbolizePrograms {
		for _, prof := range gen.Profiles {
			label := prog.name + "/" + prof.Name
			p := fullPipeline(t, prog.src, prof, prog.inputs)
			checkBehaviour(t, p, label)
			checkNoESP(t, p, label)
		}
	}
}

// The Figure 2 scenario: with f3 returning 2, the array b must be recovered
// as a single object subsuming the b[1] access (the paper's [0;20] interval
// argument), and a must be separate from b.
func TestFigure2Layout(t *testing.T) {
	src := symbolizePrograms[1].src
	p := fullPipeline(t, src, gen.GCC12O0, nil) // O0: everything on the stack
	truth := p.Img.Truth.Frame("f1")
	rec := p.Recovered.Frame("f1")
	if truth == nil || rec == nil {
		t.Fatal("missing layouts")
	}
	acc := layout.CompareFrame(truth, rec)
	// b (24 bytes) must be matched or oversized: the b[2] store (via
	// b[f3(...)] with f3=2) and b[1] read link into one object.
	var bVar, aVar *layout.Var
	for i := range truth.Vars {
		switch truth.Vars[i].Name {
		case "b":
			bVar = &truth.Vars[i]
		case "a":
			aVar = &truth.Vars[i]
		}
	}
	if bVar == nil || aVar == nil {
		t.Fatalf("ground truth incomplete: %v", truth)
	}
	foundB := false
	for _, rv := range rec.Vars {
		if rv.Offset == bVar.Offset && rv.Size >= bVar.Size {
			foundB = true
		}
	}
	if !foundB {
		t.Errorf("b not recovered as one object:\n truth %v\n rec   %v", truth, rec)
	}
	if acc.Counts[layout.Missed] > 1 { // ptr may be register-allocated/missed
		t.Errorf("missed %d objects:\n truth %v\n rec   %v", acc.Counts[layout.Missed], truth, rec)
	}
}

// The paper's splitting property: "if f3 returns 0 in every invocation
// across all traces, the array will be split into two distinct symbols."
func TestArraySplitsWithoutCoveringInput(t *testing.T) {
	src := `
struct p { int x; int y; };
int f3(int n) { return n / 100; }            /* always 0 */
struct p *f2(struct p *a, struct p *b) { return a; }
int f1() {
	struct p *ptr; struct p a; struct p b[3];
	a.x = 3; a.y = 4;
	ptr = f2(&a, b);
	b[f3(sizeof(b))] = a;                     /* only touches b[0] */
	ptr->y = b[1].x;                          /* touches b[1] */
	return ptr->y * 100 + b[2].x * 10 + b[2].y;
}
int main() { return f1(); }`
	// b[2] reads are never preceded by writes; behaviour must still match
	// (reads of uninitialized memory yield 0 in both worlds).
	p := fullPipeline(t, src, gen.GCC12O0, nil)
	checkBehaviour(t, p, "split")
	rec := p.Recovered.Frame("f1")
	truth := p.Img.Truth.Frame("f1")
	var bVar *layout.Var
	for i := range truth.Vars {
		if truth.Vars[i].Name == "b" {
			bVar = &truth.Vars[i]
		}
	}
	// The recovered layout must NOT contain one object covering all of b:
	// the b[0] and b[1] accesses were never dynamically connected.
	for _, rv := range rec.Vars {
		if rv.Offset == bVar.Offset && rv.Size >= bVar.Size {
			t.Errorf("b recovered as a single object %v despite partial coverage", rv)
		}
	}
}

// Figure 3 / §4.2.4: the end pointer one past the array must not poison the
// layout; the array still recovers as (at least) its full extent, and the
// program behaves.
func TestEndPointerLoop(t *testing.T) {
	src := `
int main() {
	int a[16];
	int i, s = 0;
	for (i = 0; i < 16; i++) { a[i] = 7; }
	for (i = 0; i < 16; i++) { s += a[i]; }
	return s;
}`
	p := fullPipeline(t, src, gen.GCC12O3, nil) // PtrLoops fire at O3
	checkBehaviour(t, p, "endptr")
	truth := p.Img.Truth.Frame("main")
	rec := p.Recovered.Frame("main")
	if len(truth.Vars) == 0 {
		t.Skip("array was fully register-promoted (unexpected)")
	}
	acc := layout.CompareFrame(truth, rec)
	if acc.Counts[layout.Matched]+acc.Counts[layout.Oversized] != len(truth.Vars) {
		t.Errorf("array not safely recovered:\n truth %v\n rec   %v", truth, rec)
	}
}

// Stack arguments must surface as explicit parameters with the right count.
func TestStackArgsBecomeParams(t *testing.T) {
	src := `
int add3(int a, int b, int c) { return a + b + c; }
int main() { return add3(10, 20, 12); }`
	for _, prof := range gen.Profiles {
		p := fullPipeline(t, src, prof, nil)
		checkBehaviour(t, p, prof.Name)
		f := p.Mod.FuncByName("add3")
		if f == nil {
			t.Fatalf("%s: add3 missing", prof.Name)
		}
		if f.StackArgs != 3 {
			t.Errorf("%s: add3 recovered %d stack args, want 3", prof.Name, f.StackArgs)
		}
	}
}

// Gap filling (§4.2.6): a function that only touches its first and third
// arguments still gets a three-argument signature.
func TestArgGapFilling(t *testing.T) {
	src := `
int pick(int a, int b, int c) { return a + c; }
int main() { return pick(40, 999, 2); }`
	p := fullPipeline(t, src, gen.GCC12O3, nil)
	checkBehaviour(t, p, "gapfill")
	f := p.Mod.FuncByName("pick")
	if f.StackArgs != 3 {
		t.Errorf("pick recovered %d stack args, want 3 (gap filled)", f.StackArgs)
	}
}

// Address-taken arguments keep working through their arg-slot allocas.
func TestAddressTakenParam(t *testing.T) {
	src := `
void bump(int *p) { *p = *p + 1; }
int twiddle(int v) {
	bump(&v);
	bump(&v);
	return v;
}
int main() { return twiddle(40); }`
	for _, prof := range gen.Profiles {
		p := fullPipeline(t, src, prof, nil)
		checkBehaviour(t, p, prof.Name)
	}
}

// After symbolization the module contains allocas and no loads/stores
// through ESP-relative addresses.
func TestModuleShapeAfterSymbolize(t *testing.T) {
	p := fullPipeline(t, symbolizePrograms[2].src, gen.GCC12O0, nil)
	allocas := 0
	for _, f := range p.Mod.Funcs {
		for _, b := range f.Blocks {
			for _, v := range b.Insts {
				if v.Op == ir.OpAlloca {
					allocas++
				}
			}
		}
	}
	if allocas == 0 {
		t.Error("no allocas after symbolization")
	}
	mainFn := p.Mod.FuncByName("main")
	if mainFn == nil {
		t.Fatal("main missing")
	}
	rec := p.Recovered.Frame("main")
	if rec == nil || len(rec.Vars) == 0 {
		t.Errorf("no recovered locals for main: %v", rec)
	}
}
