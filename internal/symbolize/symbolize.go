// Package symbolize implements the transformation half of the paper's
// second refinement (§4.2.6, "Replacing Base Pointers"): the traced
// StackVar bounds, linked sets and argument-slot observations are turned
// into an explicit stack layout per function, and the module is rewritten so
// that
//
//   - every coalesced stack object becomes a distinct Alloca (overlapping
//     ranges merge; linked base pointers share a symbol, their ranges
//     merging only when both are defined);
//   - every direct stack reference is relabelled as alloca+delta;
//   - stack-passed arguments join function signatures (call-site argument
//     lists are merged into per-function super signatures with gaps filled,
//     §4.2.5/§4.2.6), callers pass them explicitly, and callees spill them
//     into arg-slot allocas so address-taken parameters keep working;
//   - the virtual stack pointer disappears from every signature, and the
//     emulated stack is removed from the module.
package symbolize

import (
	"fmt"
	"sort"
	"strings"

	"wytiwyg/internal/ir"
	"wytiwyg/internal/isa"
	"wytiwyg/internal/layout"
	"wytiwyg/internal/opt"
	"wytiwyg/internal/par"
	"wytiwyg/internal/stackref"
	"wytiwyg/internal/vartrack"
)

// variable is one coalesced stack object.
type variable struct {
	lo, hi  int32 // absolute sp0-relative extent
	defined bool
	align   uint32
	alloca  *ir.Value
	// members records the defined members' base offsets (for exact-offset
	// resolution).
	members map[int32]bool
}

type fnInfo struct {
	f         *ir.Func
	vars      []*variable
	espParam  *ir.Value
	stackArgs int
	argParams []*ir.Value
	// newRetRegs is the return tuple after ESP leaves it.
	newRetRegs []isa.Reg
	// varOf maps each traced StackVar to its coalesced variable: base
	// pointers resolve through their own group, never by raw offset (two
	// objects can share a boundary offset — an end pointer one past an
	// array coincides with the next slot).
	varOf map[*vartrack.StackVar]*variable
	res   *vartrack.Result
}

// Apply symbolizes the whole module and returns the recovered layout
// (locals only, for the Figure 7 comparison).
func Apply(mod *ir.Module, offs map[*ir.Func]stackref.Offsets,
	res *vartrack.Result) (*layout.Program, error) {
	return ApplyJobs(mod, offs, res, 1)
}

// ApplyJobs is Apply over a bounded worker pool. The phases keep their
// barrier structure — every function finishes phase N before any enters
// phase N+1 — but within a phase, functions are processed concurrently:
// coalescing, frame building and reference replacement touch only their
// own function, and call-site rewriting reads only callee state frozen by
// the preceding barrier. Results and errors are collected in module
// function order, so the outcome is independent of the worker count.
func ApplyJobs(mod *ir.Module, offs map[*ir.Func]stackref.Offsets,
	res *vartrack.Result, jobs int) (*layout.Program, error) {

	infos := make(map[*ir.Func]*fnInfo, len(mod.Funcs))

	// Unified stack-argument counts: indirect-call target groups share one
	// super signature.
	argCount := make(map[*ir.Func]int, len(mod.Funcs))
	for _, f := range mod.Funcs {
		n := 0
		for slot := range res.ArgSlots[f] {
			if slot+1 > n {
				n = slot + 1
			}
		}
		argCount[f] = n
	}
	for _, group := range indirectGroups(mod) {
		max := 0
		for _, f := range group {
			if argCount[f] > max {
				max = argCount[f]
			}
		}
		for _, f := range group {
			argCount[f] = max
		}
	}

	// Phase A: coalesce each function's variables.
	fis := make([]*fnInfo, len(mod.Funcs))
	if err := par.ForEach(jobs, len(mod.Funcs), func(i int) error {
		f := mod.Funcs[i]
		fi, err := coalesce(f, res, argCount[f])
		if err != nil {
			return fmt.Errorf("symbolize: %s: %w", f.Name, err)
		}
		fis[i] = fi
		return nil
	}); err != nil {
		return nil, err
	}
	for i, f := range mod.Funcs {
		infos[f] = fis[i]
	}

	// Phase B: materialize allocas and stack-argument parameters.
	par.ForEach(jobs, len(mod.Funcs), func(i int) error {
		buildFrame(infos[mod.Funcs[i]])
		return nil
	})

	// Phase C: shrink return tuples (drop ESP).
	for _, f := range mod.Funcs {
		fi := infos[f]
		for _, r := range f.RetRegs {
			if r != isa.ESP {
				fi.newRetRegs = append(fi.newRetRegs, r)
			}
		}
		espRet := f.RetIndexOf(isa.ESP)
		for _, b := range f.Blocks {
			t := b.Term()
			if t == nil || t.Op != ir.OpRet {
				continue
			}
			if espRet >= 0 {
				t.Args = append(append([]*ir.Value{}, t.Args[:espRet]...), t.Args[espRet+1:]...)
			}
		}
	}

	// Phase D: rewrite call sites (explicit stack arguments, no ESP).
	// rewriteCalls mutates only its own function; the callee facts it reads
	// (Params, stackArgs, newRetRegs) were frozen by phases B and C.
	if err := par.ForEach(jobs, len(mod.Funcs), func(i int) error {
		f := mod.Funcs[i]
		if err := rewriteCalls(infos[f], infos, offs[f]); err != nil {
			return fmt.Errorf("symbolize: %s: %w", f.Name, err)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	// External calls read their arguments from outgoing slots too: those
	// slots are call plumbing, not recovered variables.
	for _, f := range mod.Funcs {
		fi := infos[f]
		fo := offs[f]
		for _, b := range f.Blocks {
			for _, v := range b.Insts {
				if v.Op != ir.OpCallExt && v.Op != ir.OpCallExtRaw {
					continue
				}
				for _, a := range v.Args {
					if a.Op == ir.OpLoad {
						if c, ok := fo[a.Args[0]]; ok {
							fi.markPlumbing(c, c+4)
						}
					}
					if c, ok := fo[a]; ok { // raw form: the ESP value itself
						fi.markPlumbing(c, c+4)
					}
				}
			}
		}
	}

	// Commit the shrunk return signatures.
	for _, f := range mod.Funcs {
		f.RetRegs = infos[f].newRetRegs
		f.NumRet = len(f.RetRegs)
	}
	opt.DCEModule(mod)

	// Phase E: replace surviving direct stack references.
	if err := par.ForEach(jobs, len(mod.Funcs), func(i int) error {
		f := mod.Funcs[i]
		if err := replaceRefs(infos[f], offs[f]); err != nil {
			return fmt.Errorf("symbolize: %s: %w", f.Name, err)
		}
		return nil
	}); err != nil {
		return nil, err
	}

	// Phase F: finalize parameter lists (drop ESP, add stack args).
	for _, f := range mod.Funcs {
		fi := infos[f]
		var params []*ir.Value
		for _, p := range f.Params {
			if p.RegHint == isa.ESP {
				// Remaining uses would be unreplaced stack references.
				p.Op = ir.OpConst
				p.Const = 0
				p.Block = f.Entry()
				f.Entry().Insts = append([]*ir.Value{p}, f.Entry().Insts...)
				continue
			}
			params = append(params, p)
		}
		params = append(params, fi.argParams...)
		for i, p := range params {
			p.Idx = i
		}
		f.Params = params
		f.StackArgs = fi.stackArgs
	}
	opt.DCEModule(mod)
	mod.EmuStackSize = 0

	if err := ir.Verify(mod); err != nil {
		return nil, err
	}

	// Recovered layout: local-area objects only (negative sp0 offsets).
	prog := layout.NewProgram()
	for _, f := range mod.Funcs {
		fr := &layout.Frame{Func: f.Name}
		for i, v := range infos[f].vars {
			if !v.defined || v.lo >= 0 {
				continue
			}
			if v.alloca != nil && strings.HasPrefix(v.alloca.Name, "cp_") {
				continue
			}
			fr.Vars = append(fr.Vars, layout.Var{
				Name:   fmt.Sprintf("v%d", i),
				Offset: v.lo,
				Size:   uint32(v.hi - v.lo),
			})
		}
		fr.Sort()
		prog.Add(fr)
	}
	return prog, nil
}

// coalesce merges a function's StackVars into variables: linked pairs share
// a symbol; overlapping defined ranges merge.
func coalesce(f *ir.Func, res *vartrack.Result, stackArgs int) (*fnInfo, error) {
	vars := res.SortedVars(f)
	parent := make(map[*vartrack.StackVar]*vartrack.StackVar, len(vars))
	var find func(v *vartrack.StackVar) *vartrack.StackVar
	find = func(v *vartrack.StackVar) *vartrack.StackVar {
		if parent[v] == nil || parent[v] == v {
			parent[v] = v
			return v
		}
		r := find(parent[v])
		parent[v] = r
		return r
	}
	union := func(a, b *vartrack.StackVar) { parent[find(a)] = find(b) }

	// Linked base pointers (pointer differences/comparisons) coalesce,
	// within one function.
	for _, pair := range res.Linked {
		if pair[0].Fn == f && pair[1].Fn == f {
			union(pair[0], pair[1])
		}
	}
	// Overlapping defined ranges coalesce. Iterate to a fixpoint because a
	// union can widen a group's range.
	for changed := true; changed; {
		changed = false
		type groupRange struct {
			root   *vartrack.StackVar
			lo, hi int32
			any    bool
		}
		groups := map[*vartrack.StackVar]*groupRange{}
		for _, v := range vars {
			r := find(v)
			g := groups[r]
			if g == nil {
				g = &groupRange{root: r}
				groups[r] = g
			}
			if v.Defined {
				lo, hi := v.AbsRange()
				if !g.any {
					g.lo, g.hi, g.any = lo, hi, true
				} else {
					if lo < g.lo {
						g.lo = lo
					}
					if hi > g.hi {
						g.hi = hi
					}
				}
			}
		}
		var defined []*groupRange
		for _, g := range groups {
			if g.any {
				defined = append(defined, g)
			}
		}
		sort.Slice(defined, func(i, j int) bool { return defined[i].lo < defined[j].lo })
		for i := 1; i < len(defined); i++ {
			if defined[i].lo < defined[i-1].hi && find(defined[i].root) != find(defined[i-1].root) {
				union(defined[i].root, defined[i-1].root)
				changed = true
			}
		}
	}

	// Build variables.
	fi := &fnInfo{f: f, espParam: f.ParamByReg(isa.ESP), stackArgs: stackArgs,
		varOf: map[*vartrack.StackVar]*variable{}, res: res}
	byRoot := map[*vartrack.StackVar]*variable{}
	for _, v := range vars {
		r := find(v)
		g := byRoot[r]
		if g == nil {
			g = &variable{members: map[int32]bool{}}
			byRoot[r] = g
			fi.vars = append(fi.vars, g)
		}
		fi.varOf[v] = g
		if v.Defined {
			g.members[v.SPOff] = true
		}
		if v.Defined {
			lo, hi := v.AbsRange()
			if !g.defined {
				g.lo, g.hi, g.defined = lo, hi, true
			} else {
				if lo < g.lo {
					g.lo = lo
				}
				if hi > g.hi {
					g.hi = hi
				}
			}
		}
		if v.Align > g.align {
			g.align = v.Align
		}
	}
	// Undefined-only groups: zero evidence of size. Give them a minimal
	// placeholder extent at the lowest member offset; references through
	// them are never dereferenced on traced inputs (§7.2).
	for _, v := range vars {
		g := byRoot[find(v)]
		if !g.defined {
			if g.hi == g.lo && g.hi == 0 {
				g.lo, g.hi = v.SPOff, v.SPOff+4
			} else if v.SPOff < g.lo {
				g.lo = v.SPOff
			}
		}
	}
	var kept []*variable
	for _, g := range fi.vars {
		if g.defined {
			kept = append(kept, g)
			continue
		}
		// An undefined-only group covered by (or ending exactly at) a
		// defined variable labels that variable: a pointer that is only
		// ever passed along still belongs to the object at its position.
		var host *variable
		for _, h := range fi.vars {
			if h.defined && g.lo >= h.lo && g.lo < h.hi {
				host = h
				break
			}
		}
		if host == nil {
			// End-pointer position: one past a defined object.
			for _, h := range fi.vars {
				if h.defined && g.lo == h.hi {
					host = h
					break
				}
			}
		}
		if host == nil {
			kept = append(kept, g)
			continue
		}
		for sv, gg := range fi.varOf {
			if gg == g {
				fi.varOf[sv] = host
			}
		}
	}
	fi.vars = kept
	sort.Slice(fi.vars, func(i, j int) bool { return fi.vars[i].lo < fi.vars[j].lo })
	return fi, nil
}

// buildFrame creates the allocas and stack-argument parameters for one
// function, and spills incoming stack args into their allocas.
func buildFrame(fi *fnInfo) {
	f := fi.f
	entry := f.Entry()
	var prefix []*ir.Value

	for i, v := range fi.vars {
		size := uint32(v.hi - v.lo)
		if size == 0 {
			size = 4
		}
		al := v.align
		if al < 4 {
			al = 4
		}
		a := f.NewValue(ir.OpAlloca)
		a.AllocSize = size
		a.Align = al
		a.Name = fmt.Sprintf("v%d", i)
		// Stash the sp0-relative start offset for layout reporting.
		a.Const = v.lo
		a.Block = entry
		v.alloca = a
		prefix = append(prefix, a)
	}

	// Stack-argument parameters (super signature, gaps filled).
	for i := 0; i < fi.stackArgs; i++ {
		p := f.NewValue(ir.OpParam)
		p.RegHint = isa.NoReg
		p.Name = fmt.Sprintf("sarg%d", i)
		fi.argParams = append(fi.argParams, p)
	}
	// Spill incoming stack arguments into the arg-area allocas so that
	// address-taken parameters keep a memory home.
	for _, v := range fi.vars {
		if v.lo < 4 || v.alloca == nil {
			continue
		}
		for i := 0; i < fi.stackArgs; i++ {
			slotOff := int32(4 + 4*i)
			if slotOff < v.lo || slotOff >= v.hi {
				continue
			}
			addr := v.alloca
			if d := slotOff - v.lo; d != 0 {
				k := f.NewValue(ir.OpConst)
				k.Const = d
				k.Block = entry
				add := f.NewValue(ir.OpAdd, v.alloca, k)
				add.Block = entry
				prefix = append(prefix, k, add)
				addr = add
			}
			st := f.NewValue(ir.OpStore, addr, fi.argParams[i])
			st.Size = 4
			st.Block = entry
			prefix = append(prefix, st)
		}
	}
	entry.Insts = append(prefix, entry.Insts...)
}

// markPlumbing flags the variables covering [lo, hi) as call-frame
// plumbing (outgoing arguments, return-address slots): after symbolization
// these are not part of the recovered stack layout — they became explicit
// call arguments.
func (fi *fnInfo) markPlumbing(lo, hi int32) {
	for _, v := range fi.vars {
		if v.alloca == nil {
			continue
		}
		// Containment, not overlap: a coarse variable that merely reaches
		// into the call window (a static symbolizer's blob, say) is still a
		// recovered object.
		if v.lo >= lo && v.hi <= hi && !strings.HasPrefix(v.alloca.Name, "cp_") {
			v.alloca.Name = "cp_" + v.alloca.Name
		}
	}
}

// addrFor resolves an sp0 offset to (alloca, delta). A variable with a
// defined member base pointer exactly at the offset wins; otherwise any
// variable covering the offset; otherwise a variable ending exactly there
// (end pointers).
func (fi *fnInfo) addrFor(spoff int32) (*ir.Value, int32, error) {
	for _, v := range fi.vars {
		if v.alloca != nil && v.members[spoff] {
			return v.alloca, spoff - v.lo, nil
		}
	}
	for _, v := range fi.vars {
		if v.alloca != nil && spoff >= v.lo && spoff < v.hi {
			return v.alloca, spoff - v.lo, nil
		}
	}
	for _, v := range fi.vars {
		if v.alloca != nil && spoff == v.hi {
			return v.alloca, v.hi - v.lo, nil
		}
	}
	return nil, 0, fmt.Errorf("no variable covers sp0%+d", spoff)
}

// addrForValue resolves a specific base-pointer value through its own
// traced variable group, falling back to offset lookup.
func (fi *fnInfo) addrForValue(v *ir.Value, spoff int32) (*ir.Value, int32, error) {
	if sv := fi.res.Vars[v]; sv != nil {
		if g := fi.varOf[sv]; g != nil && g.alloca != nil {
			return g.alloca, spoff - g.lo, nil
		}
	}
	return fi.addrFor(spoff)
}

// addrValueFor materializes an address value for an sp0 offset, inserting
// helper instructions before position pos in block b. It returns the value
// and how many instructions were inserted.
func (fi *fnInfo) addrValueFor(spoff int32, b *ir.Block, pos int) (*ir.Value, int, error) {
	base, delta, err := fi.addrFor(spoff)
	if err != nil {
		return nil, 0, err
	}
	if delta == 0 {
		return base, 0, nil
	}
	k := fi.f.NewValue(ir.OpConst)
	k.Const = delta
	k.Block = b
	add := fi.f.NewValue(ir.OpAdd, base, k)
	add.Block = b
	b.Insts = append(b.Insts[:pos], append([]*ir.Value{k, add}, b.Insts[pos:]...)...)
	return add, 2, nil
}

// rewriteCalls converts every internal call to the symbolized convention.
func rewriteCalls(fi *fnInfo, infos map[*ir.Func]*fnInfo, offs stackref.Offsets) error {
	f := fi.f
	for _, b := range f.Blocks {
		for i := 0; i < len(b.Insts); i++ {
			v := b.Insts[i]
			switch v.Op {
			case ir.OpCall, ir.OpCallInd:
				base := 0
				var callee *ir.Func
				if v.Op == ir.OpCallInd {
					base = 1
					if len(v.Targets) == 0 {
						return fmt.Errorf("indirect call %s without targets", v)
					}
					callee = v.Targets[0]
				} else {
					callee = v.Callee
				}
				ci := infos[callee]
				// Locate the callee's ESP parameter position in the
				// *current* (pre-symbolize) parameter list.
				espIdx := -1
				for j, p := range callee.Params {
					if p.RegHint == isa.ESP {
						espIdx = j
						break
					}
				}
				if espIdx < 0 {
					return fmt.Errorf("call %s: callee %s has no ESP param", v, callee.Name)
				}
				espArg := v.Args[base+espIdx]
				e, ok := offs[espArg]
				if !ok {
					return fmt.Errorf("call %s: ESP argument is not a direct stack reference", v)
				}
				fi.markPlumbing(e, e+4+int32(4*ci.stackArgs))
				// New argument list: register args minus ESP, then explicit
				// stack arguments loaded from this frame's outgoing area.
				var args []*ir.Value
				if base == 1 {
					args = append(args, v.Args[0])
				}
				for j, p := range callee.Params {
					if p.RegHint != isa.ESP {
						args = append(args, v.Args[base+j])
					}
				}
				for s := 0; s < ci.stackArgs; s++ {
					addr, n, err := fi.addrValueFor(e+4+int32(4*s), b, i)
					if err != nil {
						return fmt.Errorf("call %s arg %d: %w", v, s, err)
					}
					i += n
					ld := f.NewValue(ir.OpLoad, addr)
					ld.Size = 4
					ld.Block = b
					b.Insts = append(b.Insts[:i], append([]*ir.Value{ld}, b.Insts[i:]...)...)
					i++
					args = append(args, ld)
				}
				v.Args = args
				v.NumRet = len(ci.newRetRegs)
			case ir.OpExtract:
				call := v.Args[0]
				var callee *ir.Func
				switch call.Op {
				case ir.OpCall:
					callee = call.Callee
				case ir.OpCallInd:
					callee = call.Targets[0]
				default:
					continue
				}
				// Remap from the old return tuple to the ESP-free one.
				oldRegs := callee.RetRegs
				if v.Idx >= len(oldRegs) {
					continue // already remapped (multiple passes are idempotent)
				}
				r := oldRegs[v.Idx]
				if r == isa.ESP {
					// Stack-pointer results were folded by the
					// stack-reference refinement; a surviving extract must
					// be dead.
					v.Op = ir.OpConst
					v.Const = 0
					v.Args = nil
					continue
				}
				idx := -1
				for j, rr := range infos[callee].newRetRegs {
					if rr == r {
						idx = j
						break
					}
				}
				if idx < 0 {
					return fmt.Errorf("extract %s: register %v vanished from %s", v, r, callee.Name)
				}
				v.Idx = idx
			}
		}
	}
	return nil
}

// replaceRefs rewrites every surviving direct stack reference to
// alloca+delta.
func replaceRefs(fi *fnInfo, offs stackref.Offsets) error {
	f := fi.f
	uses := opt.BuildUses(f)
	for _, b := range f.Blocks {
		for i := 0; i < len(b.Insts); i++ {
			v := b.Insts[i]
			c, ok := offs[v]
			if !ok || v.Op == ir.OpParam || v.Op == ir.OpAlloca {
				continue
			}
			if len(uses[v]) == 0 {
				continue // dead; DCE will take it
			}
			base, delta, err := fi.addrForValue(v, c)
			if err != nil {
				return fmt.Errorf("ref %s (sp0%+d): %w", v, c, err)
			}
			if delta == 0 {
				opt.ReplaceUses(f, v, base)
				continue
			}
			k := f.NewValue(ir.OpConst)
			k.Const = delta
			k.Block = b
			v.Op = ir.OpAdd
			v.Args = []*ir.Value{base, k}
			b.Insts = append(b.Insts[:i], append([]*ir.Value{k}, b.Insts[i:]...)...)
			i++
		}
	}
	return nil
}

// indirectGroups mirrors regsave's grouping: functions reachable from the
// same indirect call site share a signature.
func indirectGroups(mod *ir.Module) [][]*ir.Func {
	parent := make(map[*ir.Func]*ir.Func)
	var find func(f *ir.Func) *ir.Func
	find = func(f *ir.Func) *ir.Func {
		if parent[f] == nil || parent[f] == f {
			parent[f] = f
			return f
		}
		r := find(parent[f])
		parent[f] = r
		return r
	}
	for _, f := range mod.Funcs {
		for _, b := range f.Blocks {
			for _, v := range b.Insts {
				if v.Op == ir.OpCallInd && len(v.Targets) > 1 {
					for _, tgt := range v.Targets[1:] {
						parent[find(v.Targets[0])] = find(tgt)
					}
				}
			}
		}
	}
	byRoot := map[*ir.Func][]*ir.Func{}
	for f := range parent {
		byRoot[find(f)] = append(byRoot[find(f)], f)
	}
	var out [][]*ir.Func
	for _, g := range byRoot {
		if len(g) > 1 {
			out = append(out, g)
		}
	}
	return out
}

// RecoveredLayout derives the recovered stack layout from the allocas that
// survive in a module. Calling it after the optimizer has run reports only
// the objects that still exist — spill slots and call-plumbing areas that
// mem2reg and dead-store elimination removed no longer count, mirroring how
// the paper's recovered layouts reflect the final recompiled binary.
// Only local-area objects (negative sp0 offsets) are reported.
func RecoveredLayout(mod *ir.Module) *layout.Program {
	prog := layout.NewProgram()
	for _, f := range mod.Funcs {
		fr := &layout.Frame{Func: f.Name}
		for _, b := range f.Blocks {
			for _, v := range b.Insts {
				if v.Op != ir.OpAlloca || v.Const >= 0 {
					continue
				}
				if strings.HasPrefix(v.Name, "cp_") {
					continue
				}
				fr.Vars = append(fr.Vars, layout.Var{
					Name:   v.Name,
					Offset: v.Const,
					Size:   v.AllocSize,
				})
			}
		}
		fr.Sort()
		prog.Add(fr)
	}
	return prog
}
