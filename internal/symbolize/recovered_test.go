package symbolize_test

import (
	"testing"

	"wytiwyg/internal/core"
	"wytiwyg/internal/minicc/gen"
	"wytiwyg/internal/opt"
	"wytiwyg/internal/symbolize"
)

// RecoveredLayout reflects the final binary: only surviving local-area
// allocas count — no call-plumbing ("cp_") objects, no stack-argument
// areas (non-negative offsets), and objects the optimizer deleted are
// gone.
func TestRecoveredLayoutPostOpt(t *testing.T) {
	src := `
extern int printf(char *fmt, ...);
int use(int *p) { return p[0] + p[5]; }
int main() {
	int live[8];      /* address escapes: must survive */
	int i, dead = 3;  /* scalar: promoted away by mem2reg */
	for (i = 0; i < 8; i++) live[i] = i + dead;
	printf("%d\n", use(live));
	return 0;
}`
	img, err := gen.Build(src, gen.GCC12O0, "rl")
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.LiftBinary(img, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Refine(); err != nil {
		t.Fatal(err)
	}
	opt.Pipeline(p.Mod)

	prog := symbolize.RecoveredLayout(p.Mod)
	fr := prog.Frames["main"]
	if fr == nil {
		t.Fatal("no main frame")
	}
	var hasArray bool
	for _, v := range fr.Vars {
		if v.Offset >= 0 {
			t.Errorf("non-local object %s in recovered layout", v)
		}
		if v.Size >= 32 {
			hasArray = true
		}
	}
	if !hasArray {
		t.Errorf("escaping 32-byte array missing from recovered layout: %v", fr)
	}
	// The promoted scalars must NOT be reported: the final binary holds
	// them in registers.
	if len(fr.Vars) > 3 {
		t.Errorf("too many surviving objects (%d), mem2reg results not reflected: %v",
			len(fr.Vars), fr)
	}
}
