package symbolize_test

import (
	"testing"

	"wytiwyg/internal/asm"
	"wytiwyg/internal/core"
	"wytiwyg/internal/irexec"
	"wytiwyg/internal/layout"
	"wytiwyg/internal/machine"
)

// A near-literal transcription of the paper's Figure 2(b) x86 listing into
// the reproduction's ISA: frame pointer, lea-computed pointers, stack-passed
// arguments, a scaled-index store through a dynamically computed element
// address, and a write through a pointer returned by a callee.
//
//	f3 returns sizeof(b)/12 = 2, f2 returns its first argument, so the
//	store b[f3(24)] = a lands in b[2] and ptr->y = b[1].x writes through &a.
const figure2Asm = `
main:
    call f1
    halt

f1:
    push ebp                      ; sav ebp
    mov ebp, esp
    subi esp, 64
    storei4 [ebp-20], 3           ; a.x = 3
    storei4 [ebp-16], 4           ; a.y = 4
    lea eax, [ebp-44]
    push eax                      ; arg2 = b
    lea eax, [ebp-20]
    push eax                      ; arg1 = &a
    call f2
    addi esp, 8
    store4 [ebp-12], eax          ; ptr = f2(...)
    pushi 24                      ; arg1 = sizeof(b)
    call f3
    addi esp, 4
    load4 ecx, [ebp-20]           ; a.x
    store4 [ebp-44+eax*8], ecx    ; b[f3].x = a.x
    load4 ecx, [ebp-16]           ; a.y
    store4 [ebp-40+eax*8], ecx    ; b[f3].y = a.y
    load4 ecx, [ebp-36]           ; b[1].x
    load4 eax, [ebp-12]           ; ptr
    store4 [eax+4], ecx           ; ptr->y = b[1].x
    load4 eax, [ebp-12]
    load4 eax, [eax+4]            ; return ptr->y (== b[1].x)
    addi esp, 64
    pop ebp
    ret

f2:                               ; p* f2(p*, p*) { return arg1; }
    load4 eax, [esp+4]
    ret

f3:                               ; size_t f3(n) { return n/12; }
    load4 eax, [esp+4]
    divi eax, 12
    ret
`

func TestFigure2AssemblyTranscription(t *testing.T) {
	img, err := asm.Assemble("figure2", figure2Asm, "")
	if err != nil {
		t.Fatal(err)
	}
	nat, err := machine.Execute(img, machine.Input{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// ptr->y was b[1].x, which nothing wrote: 0.
	if nat.ExitCode != 0 {
		t.Fatalf("native exit = %d", nat.ExitCode)
	}

	p, err := core.LiftBinary(img, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Refine(); err != nil {
		t.Fatal(err)
	}
	r, err := irexec.Run(p.Mod, machine.Input{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.ExitCode != nat.ExitCode {
		t.Fatalf("symbolized exit %d vs %d", r.ExitCode, nat.ExitCode)
	}

	// The frame layout of Figure 2(c): b at sp0-48 (24 bytes), a at
	// sp0-24 (8 bytes), ptr at sp0-16 (4 bytes). With f3 observed
	// returning 2 and ptr->y writing into a, the recovery must produce
	// one object covering all of b and one covering a.
	fr := p.Recovered.Frame("f1")
	if fr == nil {
		t.Fatal("no recovered frame for f1")
	}
	wantB := layout.Var{Name: "b", Offset: -48, Size: 24}
	wantA := layout.Var{Name: "a", Offset: -24, Size: 8}
	foundB, foundA := false, false
	for _, v := range fr.Vars {
		if v.Offset == wantB.Offset && v.Size >= wantB.Size {
			foundB = true
		}
		if v.Offset == wantA.Offset && v.Size >= wantA.Size {
			foundA = true
		}
	}
	if !foundB {
		t.Errorf("array b not recovered as one object at sp0-48: %v", fr)
	}
	if !foundA {
		t.Errorf("struct a not recovered at sp0-24: %v", fr)
	}

	// f2/f3 take one and two stack arguments respectively (observed).
	if f2 := p.Mod.FuncByName("f2"); f2 == nil || f2.StackArgs < 1 {
		t.Errorf("f2 stack args not recovered")
	}
	if f3 := p.Mod.FuncByName("f3"); f3 == nil || f3.StackArgs != 1 {
		t.Errorf("f3 stack args = %v", p.Mod.FuncByName("f3"))
	}
}
