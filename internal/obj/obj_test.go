package obj

import (
	"testing"

	"wytiwyg/internal/isa"
)

func validImage() *Image {
	return &Image{
		Code: []isa.Instr{
			{Op: isa.MOVI, Dst: isa.EAX, Imm: 1},
			{Op: isa.HALT},
		},
		Entry: isa.CodeBase,
		Name:  "t",
	}
}

func TestValidateOK(t *testing.T) {
	if err := validImage().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateBadEntry(t *testing.T) {
	img := validImage()
	img.Entry = isa.CodeBase + 7
	if img.Validate() == nil {
		t.Error("unaligned entry accepted")
	}
	img.Entry = isa.CodeBase + 100*isa.InstrSize
	if img.Validate() == nil {
		t.Error("out-of-range entry accepted")
	}
}

func TestValidateBranchTargets(t *testing.T) {
	img := validImage()
	img.Code[0] = isa.Instr{Op: isa.JMP, Imm: int32(isa.CodeBase + 5*isa.InstrSize)}
	if img.Validate() == nil {
		t.Error("out-of-range jump accepted")
	}
	img.Code[0] = isa.Instr{Op: isa.CALL, Imm: int32(extBase())}
	if img.Validate() == nil {
		t.Error("unresolved external accepted")
	}
	img.Externs = map[uint32]string{isa.ExtBase: "exit"}
	if err := img.Validate(); err != nil {
		t.Errorf("resolved external rejected: %v", err)
	}
}

func TestValidateBadSize(t *testing.T) {
	img := validImage()
	img.Code[0] = isa.Instr{Op: isa.LOAD, Dst: isa.EAX, Size: 3,
		Mem: isa.MemRef{Base: isa.EBP, Index: isa.NoReg}}
	if img.Validate() == nil {
		t.Error("bad size accepted")
	}
	img.Code[0] = isa.Instr{Op: isa.LOAD, Dst: isa.EAX, Size: 4,
		Mem: isa.MemRef{Base: isa.EBP, Index: isa.ECX, Scale: 3}}
	if img.Validate() == nil {
		t.Error("bad scale accepted")
	}
}

func TestAddrConversions(t *testing.T) {
	for i := 0; i < 5; i++ {
		if IndexOf(AddrOf(i)) != i {
			t.Errorf("round trip failed for %d", i)
		}
	}
}

func TestInstrAt(t *testing.T) {
	img := validImage()
	in, err := img.InstrAt(isa.CodeBase + isa.InstrSize)
	if err != nil || in.Op != isa.HALT {
		t.Errorf("InstrAt: %v, %v", in, err)
	}
	if _, err := img.InstrAt(isa.CodeBase + 2*isa.InstrSize); err == nil {
		t.Error("out-of-range InstrAt accepted")
	}
}

func TestStrip(t *testing.T) {
	img := validImage()
	img.Syms = []Symbol{{Name: "main", Addr: isa.CodeBase}}
	s := img.Strip()
	if s.Syms != nil || s.Truth != nil {
		t.Error("strip left metadata")
	}
	if len(img.Syms) != 1 {
		t.Error("strip mutated original")
	}
}

func TestSymLookup(t *testing.T) {
	img := validImage()
	img.Syms = []Symbol{
		{Name: "b", Addr: AddrOf(1)},
		{Name: "a", Addr: AddrOf(0)},
	}
	img.SortSyms()
	if img.Syms[0].Name != "a" {
		t.Error("SortSyms did not sort")
	}
	if n, ok := img.SymName(AddrOf(1)); !ok || n != "b" {
		t.Errorf("SymName = %q %v", n, ok)
	}
	if _, ok := img.SymName(AddrOf(7)); ok {
		t.Error("bogus SymName hit")
	}
	if a, ok := img.SymAddr("a"); !ok || a != AddrOf(0) {
		t.Errorf("SymAddr = %#x %v", a, ok)
	}
}

// extBase returns isa.ExtBase as a non-constant so it can be converted to
// int32 without a compile-time overflow.
func extBase() uint32 { return isa.ExtBase }
