// Package obj defines the binary image format produced by the assembler and
// the mini-C compiler, consumed by the machine, the tracer and the lifter.
// An image is the reproduction's stand-in for a COTS ELF executable: a code
// section, an initialized data section, an entry point, an external-symbol
// table (the "PLT") and an optional symbol table. Ground-truth stack layouts
// travel in a side-table (the analogue of debug info the paper extracts via
// LLVM's Stack Frame Layout analysis); the recompiler never reads it.
package obj

import (
	"fmt"
	"sort"

	"wytiwyg/internal/isa"
	"wytiwyg/internal/layout"
)

// Symbol is a named code address. COTS binaries may be stripped; the
// pipeline treats symbols as optional (funcrec only uses them for
// cross-checking, as §5.1 of the paper does).
type Symbol struct {
	Name string // symbol name
	Addr uint32 // code address the name labels
}

// Image is a loaded, executable binary.
type Image struct {
	// Code is the decoded instruction stream, loaded at isa.CodeBase.
	Code []isa.Instr
	// Entry is the address of the first instruction to execute.
	Entry uint32
	// Data is the initialized data section, loaded at isa.DataBase.
	Data []byte
	// Externs maps virtual PLT addresses (>= isa.ExtBase) to external
	// function names.
	Externs map[uint32]string
	// Syms is the (optional) symbol table, sorted by address.
	Syms []Symbol
	// Truth is the optional ground-truth layout side-table. Only the
	// evaluation reads it.
	Truth *layout.Program
	// TypedTruth is the optional typed ground-truth side-table (the
	// compiler's declared slot types, the analogue of DWARF type info).
	// Only the evaluation reads it.
	TypedTruth *layout.TypedProgram
	// Name labels the image for diagnostics.
	Name string
}

// CodeEnd returns the first address past the code section.
func (im *Image) CodeEnd() uint32 {
	return isa.CodeBase + uint32(len(im.Code))*isa.InstrSize
}

// InstrAt returns the instruction at a code address.
func (im *Image) InstrAt(addr uint32) (*isa.Instr, error) {
	if !isa.IsCodeAddr(addr, len(im.Code)) {
		return nil, fmt.Errorf("obj: address 0x%x outside code section", addr)
	}
	return &im.Code[(addr-isa.CodeBase)/isa.InstrSize], nil
}

// AddrOf returns the code address of instruction index i.
func AddrOf(i int) uint32 { return isa.CodeBase + uint32(i)*isa.InstrSize }

// IndexOf returns the instruction index of a code address.
func IndexOf(addr uint32) int { return int((addr - isa.CodeBase) / isa.InstrSize) }

// ExtName returns the external function name for a PLT address.
func (im *Image) ExtName(addr uint32) (string, bool) {
	n, ok := im.Externs[addr]
	return n, ok
}

// ExtAddr returns the PLT address assigned to an external name.
func (im *Image) ExtAddr(name string) (uint32, bool) {
	for a, n := range im.Externs {
		if n == name {
			return a, true
		}
	}
	return 0, false
}

// SymName returns the symbol name at exactly addr, if any.
func (im *Image) SymName(addr uint32) (string, bool) {
	for _, s := range im.Syms {
		if s.Addr == addr {
			return s.Name, true
		}
	}
	return "", false
}

// SymAddr returns the address of a named symbol.
func (im *Image) SymAddr(name string) (uint32, bool) {
	for _, s := range im.Syms {
		if s.Name == name {
			return s.Addr, true
		}
	}
	return 0, false
}

// SortSyms orders the symbol table by address.
func (im *Image) SortSyms() {
	sort.Slice(im.Syms, func(i, j int) bool { return im.Syms[i].Addr < im.Syms[j].Addr })
}

// Strip returns a copy of the image without symbols or ground truth,
// modelling a stripped COTS binary.
func (im *Image) Strip() *Image {
	out := *im
	out.Syms = nil
	out.Truth = nil
	out.TypedTruth = nil
	return &out
}

// Validate performs basic structural checks: entry in range, branch targets
// inside the code section or the PLT, scale values legal.
func (im *Image) Validate() error {
	if !isa.IsCodeAddr(im.Entry, len(im.Code)) {
		return fmt.Errorf("obj: entry 0x%x outside code", im.Entry)
	}
	for i := range im.Code {
		in := &im.Code[i]
		switch in.Op {
		case isa.JMP, isa.JCC:
			if !isa.IsCodeAddr(uint32(in.Imm), len(im.Code)) {
				return fmt.Errorf("obj: instr %d (%s): branch target 0x%x outside code", i, in, uint32(in.Imm))
			}
		case isa.CALL:
			t := uint32(in.Imm)
			if !isa.IsCodeAddr(t, len(im.Code)) && !isa.IsExtAddr(t) {
				return fmt.Errorf("obj: instr %d (%s): call target 0x%x invalid", i, in, t)
			}
			if isa.IsExtAddr(t) {
				if _, ok := im.Externs[t]; !ok {
					return fmt.Errorf("obj: instr %d: unresolved external 0x%x", i, t)
				}
			}
		case isa.LOAD, isa.STORE, isa.STOREI, isa.LEA, isa.LOADLO8:
			if in.Op != isa.LEA && in.Op != isa.LOADLO8 {
				switch in.Size {
				case 1, 2, 4:
				default:
					return fmt.Errorf("obj: instr %d (%s): bad access size %d", i, in, in.Size)
				}
			}
			if in.Mem.HasIndex() {
				switch in.Mem.Scale {
				case 1, 2, 4, 8:
				default:
					return fmt.Errorf("obj: instr %d (%s): bad scale %d", i, in, in.Mem.Scale)
				}
			}
		}
	}
	return nil
}
