// Package stream implements the streaming half of the trace→lift pipeline
// (the il_trace architecture): emulator producers push executed-block
// records — raw instruction bytes stamped with a per-input monotonic
// sequence number — onto a bounded channel while a worker pool decodes the
// blocks and a single merge stage folds the recovered facts into per-input
// traces. Later stages never see channel-arrival order: every ordering
// decision (function close, error selection, trace merge) is resolved by
// the (input, sequence-stamp) pair or by commutative set union, which is
// what keeps streaming output byte-identical to the phase-barriered
// pipeline at every worker count (see ARCHITECTURE.md §3 and DESIGN.md
// §12).
package stream

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"wytiwyg/internal/isa"
	"wytiwyg/internal/machine"
	"wytiwyg/internal/obj"
	"wytiwyg/internal/par"
	"wytiwyg/internal/tracer"
)

// DefaultBuf is the default capacity of the block-record channel (and of
// the decode stage's output buffer). The total number of buffered records
// is bounded by roughly 2*Buf plus the worker count; producers block once
// the windows fill, which is the backpressure contract.
const DefaultBuf = 256

// RecKind discriminates the record types a trace producer emits.
type RecKind uint8

// Record kinds, in the order a consumer typically sees them per input.
const (
	// KindBlock carries the raw bytes of a dynamic basic block the first
	// time this input executes it.
	KindBlock RecKind = iota
	// KindEdge carries a control transfer the first time this input
	// observes it (deduplicated per (kind, from, to)).
	KindEdge
	// KindClose marks that every activation of a function has returned in
	// this input (the provisional function-close event).
	KindClose
	// KindEnd marks that this input's record stream is complete; the
	// input's facts are frozen after it.
	KindEnd
)

// Rec is one record on the streaming channel. Seq is the per-input
// monotonic sequence stamp: the index of the dynamic block whose execution
// produced the record. Consumers must order by (Input, Seq), never by
// arrival.
type Rec struct {
	// Kind selects which of the remaining fields are meaningful.
	Kind RecKind
	// Input is the index of the traced input that produced the record.
	Input int
	// Seq is the per-input sequence stamp (counts executed dynamic blocks).
	Seq uint64
	// Start and End bound the block's instructions (KindBlock).
	Start, End uint32
	// Bytes is the encoded instruction stream of the block (KindBlock).
	Bytes []byte
	// Edge is the observed control transfer (KindEdge).
	Edge machine.Transfer
	// Entry is the entry address of the closed function (KindClose).
	Entry uint32
}

// Close records that a function received its last activation exit: after
// stamp Seq of input Input, no traced input executes the function again.
type Close struct {
	// Entry is the function's entry address.
	Entry uint32
	// Input is the highest input index whose trace still ran the function.
	Input int
	// Seq is the stamp of the block that popped the last activation (or
	// the input's final stamp when the activation was still open at exit).
	Seq uint64
}

// Result is the outcome of a drained stream: the merged trace plus
// streaming-specific observability.
type Result struct {
	// Trace is the merged dynamic CFG, identical to what the
	// phase-barriered tracer produces for the same image and inputs.
	Trace *tracer.Trace
	// Closes lists the authoritative function-close events, sorted by
	// (Input, Seq, Entry) — a deterministic schedule independent of
	// channel arrival order and worker count.
	Closes []Close
	// Records counts every record that reached the merge stage.
	Records int
	// Blocks counts the distinct block records decoded.
	Blocks int
}

// Opts configures a stream.
type Opts struct {
	// Jobs bounds the decode worker pool and the number of concurrently
	// traced inputs (par.N semantics: <1 means one per CPU).
	Jobs int
	// Buf is the record-channel capacity; 0 means DefaultBuf.
	Buf int

	// decodeWrap, when non-nil, wraps the block-decode function (test
	// hook: gate it to observe backpressure, panic it to exercise the
	// error drain).
	decodeWrap func(func(Rec) (fact, error)) func(Rec) (fact, error)
	// onSend, when non-nil, observes every record just before the
	// producer sends it (test hook for buffering bounds).
	onSend func(Rec)
}

// fact is a decoded record: the original Rec plus, for blocks, the
// recovered instruction addresses.
type fact struct {
	rec   Rec
	addrs []uint32
}

// Stream is an in-flight streaming trace. Start launches it; Done exposes
// input retirement; Wait joins it.
type Stream struct {
	img    *obj.Image
	inputs []machine.Input
	opts   Opts

	done     chan int
	finished chan struct{}
	prodWG   sync.WaitGroup

	pipe *par.Pipe[fact]
	errs []error

	// Fields below are written by the merge goroutine. subs[i] is frozen
	// (and safe to read) once i has been delivered on done.
	subs    []*tracer.Trace
	closeAt map[closeID]uint64
	records int
	blocks  int

	result *Result
	err    error
}

type closeID struct {
	input int
	entry uint32
}

type edgeKey struct {
	kind     machine.TransferKind
	from, to uint32
}

// Start launches producers, decode workers and the merge stage, and
// returns immediately. The caller must eventually call Wait.
func Start(img *obj.Image, inputs []machine.Input, opts Opts) *Stream {
	buf := opts.Buf
	if buf <= 0 {
		buf = DefaultBuf
	}
	s := &Stream{
		img:      img,
		inputs:   inputs,
		opts:     opts,
		done:     make(chan int, len(inputs)),
		finished: make(chan struct{}),
		errs:     make([]error, len(inputs)),
		subs:     make([]*tracer.Trace, len(inputs)),
		closeAt:  make(map[closeID]uint64),
	}

	recs := make(chan Rec, buf)
	decode := s.decodeBlock
	if opts.decodeWrap != nil {
		decode = opts.decodeWrap(decode)
	}
	s.pipe = par.OrderedPipe(opts.Jobs, buf, recs, decode)

	// Producers: one emulator per input, at most par.N(Jobs) at a time,
	// claimed in input-index order.
	workers := par.N(opts.Jobs)
	if workers > len(inputs) {
		workers = len(inputs)
	}
	var next atomic.Int64
	s.prodWG.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer s.prodWG.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(inputs) {
					return
				}
				s.errs[i] = s.produce(i, recs)
			}
		}()
	}
	go func() {
		s.prodWG.Wait()
		close(recs)
	}()

	go s.merge()
	return s
}

// Done delivers the index of each input whose facts have frozen (its
// KindEnd record passed the merge stage); it is closed when the whole
// stream has drained. Inputs may retire out of index order.
func (s *Stream) Done() <-chan int { return s.done }

// PrefixTrace returns a fresh trace merging inputs [0, n). Every one of
// them must already have been delivered on Done; the returned trace is
// independent of the stream and safe to mutate.
func (s *Stream) PrefixTrace(n int) *tracer.Trace {
	tr := tracer.New(s.img)
	for i := 0; i < n; i++ {
		if s.subs[i] != nil {
			tr.Merge(s.subs[i])
		}
	}
	return tr
}

// Wait joins the stream: producers, decode workers and the merge stage.
// The error is deterministic — the lowest failing input's error, else the
// decode stage's first in-order error.
func (s *Stream) Wait() (*Result, error) {
	s.prodWG.Wait()
	<-s.finished
	if s.result != nil || s.err != nil {
		return s.result, s.err
	}
	for _, err := range s.errs {
		if err != nil {
			s.err = err
			return nil, s.err
		}
	}
	if err := s.pipe.Err(); err != nil {
		s.err = err
		return nil, s.err
	}

	tr := tracer.New(s.img)
	for _, sub := range s.subs {
		if sub != nil {
			tr.Merge(sub)
		}
	}
	// Resolve each function's authoritative close: the (input, seq)-max
	// over the per-input provisional closes.
	last := make(map[uint32]Close)
	for id, seq := range s.closeAt {
		c := Close{Entry: id.entry, Input: id.input, Seq: seq}
		prev, ok := last[id.entry]
		if !ok || c.Input > prev.Input || (c.Input == prev.Input && c.Seq > prev.Seq) {
			last[id.entry] = c
		}
	}
	closes := make([]Close, 0, len(last))
	for _, c := range last {
		closes = append(closes, c)
	}
	sort.Slice(closes, func(i, j int) bool {
		a, b := closes[i], closes[j]
		if a.Input != b.Input {
			return a.Input < b.Input
		}
		if a.Seq != b.Seq {
			return a.Seq < b.Seq
		}
		return a.Entry < b.Entry
	})
	s.result = &Result{Trace: tr, Closes: closes, Records: s.records, Blocks: s.blocks}
	return s.result, nil
}

// produce runs one input under the emulator, pushing deduplicated block,
// edge and close records. The producer owns its call stack, so function
// closes are stamped here — with the sequence number of the block that
// retired the last activation — not at the consumer.
func (s *Stream) produce(i int, recs chan<- Rec) error {
	m, err := machine.New(s.img, s.inputs[i], io.Discard)
	if err != nil {
		return fmt.Errorf("input %d: %w", i, err)
	}
	var seq uint64
	stopped := false
	send := func(r Rec) {
		if stopped {
			return
		}
		select {
		case <-s.pipe.Aborted:
			// The decode stage failed; it keeps draining, but there is no
			// point paying for more records.
			stopped = true
			return
		default:
		}
		if s.opts.onSend != nil {
			s.opts.onSend(r)
		}
		recs <- r
	}

	seenBlock := make(map[uint32]bool)
	seenEdge := make(map[edgeKey]bool)
	stack := []uint32{s.img.Entry}
	depth := map[uint32]int{s.img.Entry: 1}

	m.BlockHook = func(start, end uint32, t machine.Transfer, term bool) {
		seq++
		if !seenBlock[start] {
			seenBlock[start] = true
			lo, hi := obj.IndexOf(start), obj.IndexOf(end)
			send(Rec{
				Kind: KindBlock, Input: i, Seq: seq,
				Start: start, End: end,
				Bytes: isa.EncodeAll(s.img.Code[lo : hi+1]),
			})
		}
		if !term {
			return
		}
		ek := edgeKey{t.Kind, t.From, t.To}
		if !seenEdge[ek] {
			seenEdge[ek] = true
			send(Rec{Kind: KindEdge, Input: i, Seq: seq, Edge: t})
		}
		switch t.Kind {
		case machine.TransferCall:
			stack = append(stack, t.To)
			depth[t.To]++
		case machine.TransferRet:
			if n := len(stack); n > 0 {
				e := stack[n-1]
				stack = stack[:n-1]
				if depth[e]--; depth[e] == 0 {
					send(Rec{Kind: KindClose, Input: i, Seq: seq, Entry: e})
				}
			}
		}
	}
	if err := m.Run(); err != nil {
		return fmt.Errorf("input %d: %w", i, err)
	}
	// The input is over: every still-open activation (exit() deep in a
	// call chain, tail-called frames) closes at the final stamp.
	for n := len(stack) - 1; n >= 0; n-- {
		e := stack[n]
		if depth[e]--; depth[e] == 0 {
			send(Rec{Kind: KindClose, Input: i, Seq: seq, Entry: e})
		}
	}
	send(Rec{Kind: KindEnd, Input: i, Seq: seq})
	return nil
}

// decodeBlock is the worker-pool stage: it lifts a block record's raw
// bytes back into instruction addresses (validating the encoding), the
// streaming counterpart of the tracer's per-instruction Executed marking.
// Non-block records pass through.
func (s *Stream) decodeBlock(r Rec) (fact, error) {
	f := fact{rec: r}
	if r.Kind != KindBlock {
		return f, nil
	}
	ins, err := isa.DecodeAll(r.Bytes)
	if err != nil {
		return fact{}, fmt.Errorf("stream: input %d block 0x%x: %w", r.Input, r.Start, err)
	}
	if want := int(r.End-r.Start)/isa.InstrSize + 1; len(ins) != want {
		return fact{}, fmt.Errorf("stream: input %d block 0x%x: decoded %d instrs, want %d", r.Input, r.Start, len(ins), want)
	}
	f.addrs = make([]uint32, len(ins))
	for k := range f.addrs {
		f.addrs[k] = r.Start + uint32(k)*isa.InstrSize
	}
	return f, nil
}

// merge is the single consumer of the decode stage: it folds facts into
// per-input traces (set union — commutative, so cross-input interleaving
// cannot change the result) and tracks provisional closes by stamp.
func (s *Stream) merge() {
	defer close(s.finished)
	defer close(s.done)
	for f := range s.pipe.Out {
		r := f.rec
		s.records++
		sub := s.subs[r.Input]
		if sub == nil {
			sub = tracer.New(s.img)
			s.subs[r.Input] = sub
		}
		switch r.Kind {
		case KindBlock:
			s.blocks++
			for _, a := range f.addrs {
				sub.MarkExecuted(a)
			}
		case KindEdge:
			sub.AddTransfer(r.Edge)
		case KindClose:
			// Per-input records arrive in stamp order, so the last write
			// per (input, entry) wins — it carries the latest stamp.
			s.closeAt[closeID{r.Input, r.Entry}] = r.Seq
		case KindEnd:
			sub.Inputs = 1
			s.done <- r.Input
		}
	}
}
