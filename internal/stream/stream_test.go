package stream

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"wytiwyg/internal/bench/progs"
	"wytiwyg/internal/machine"
	"wytiwyg/internal/minicc/gen"
	"wytiwyg/internal/obj"
	"wytiwyg/internal/tracer"
)

// scaled pins the benchmark's ref input to a small size (mirrors
// bench.Scaled, which cannot be imported here: bench depends on core,
// which depends on this package).
func scaled(p progs.Program, refScale int32) progs.Program {
	p.Ref = machine.Input{Ints: []int32{refScale}}
	return p
}

func buildProg(t *testing.T, p progs.Program) (*obj.Image, []machine.Input) {
	t.Helper()
	img, err := gen.Build(p.Src, gen.GCC12O3, p.Name)
	if err != nil {
		t.Fatalf("%s: build: %v", p.Name, err)
	}
	return img, p.Inputs()
}

// The streamed merge must recover exactly the facts the phase-barriered
// tracer records: same executed set, same edges, same external bindings —
// at every worker count and channel capacity.
func TestStreamTraceMatchesBarriered(t *testing.T) {
	corpus := progs.All
	if testing.Short() {
		corpus = corpus[:3]
	}
	for _, p := range corpus {
		p := scaled(p, 4)
		img, inputs := buildProg(t, p)

		want := tracer.New(img)
		if err := want.RunAll(inputs, nil); err != nil {
			t.Fatalf("%s: barriered trace: %v", p.Name, err)
		}
		wantDigest := want.Digest()

		for _, cfg := range []Opts{{Jobs: 1, Buf: 1}, {Jobs: 4, Buf: 8}, {Jobs: 8}} {
			s := Start(img, inputs, cfg)
			res, err := s.Wait()
			if err != nil {
				t.Fatalf("%s (jobs=%d buf=%d): %v", p.Name, cfg.Jobs, cfg.Buf, err)
			}
			if res.Trace.Digest() != wantDigest {
				t.Errorf("%s (jobs=%d buf=%d): streamed trace digest differs from barriered", p.Name, cfg.Jobs, cfg.Buf)
			}
			if res.Trace.Inputs != len(inputs) {
				t.Errorf("%s: merged %d inputs, want %d", p.Name, res.Trace.Inputs, len(inputs))
			}
			if res.Blocks == 0 || res.Records <= res.Blocks {
				t.Errorf("%s: implausible stats: %d records, %d blocks", p.Name, res.Records, res.Blocks)
			}
		}
	}
}

// Function-close events are resolved by (input, sequence stamp), so the
// close schedule must be identical across worker counts and buffer sizes —
// never a function of channel arrival order.
func TestStreamCloseOrderDeterministic(t *testing.T) {
	p := scaled(progs.All[0], 4)
	img, inputs := buildProg(t, p)

	base := func() []Close {
		s := Start(img, inputs, Opts{Jobs: 1, Buf: 1})
		res, err := s.Wait()
		if err != nil {
			t.Fatal(err)
		}
		return res.Closes
	}()
	if len(base) == 0 {
		t.Fatal("no close events recorded")
	}
	for i := 1; i < len(base); i++ {
		a, b := base[i-1], base[i]
		if a.Input > b.Input || (a.Input == b.Input && a.Seq > b.Seq) {
			t.Fatalf("closes not in (input, seq) order: %+v before %+v", a, b)
		}
	}

	for _, cfg := range []Opts{{Jobs: 4, Buf: 2}, {Jobs: 8, Buf: 64}} {
		s := Start(img, inputs, cfg)
		res, err := s.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Closes) != len(base) {
			t.Fatalf("jobs=%d: %d closes, want %d", cfg.Jobs, len(res.Closes), len(base))
		}
		for i := range base {
			if res.Closes[i] != base[i] {
				t.Fatalf("jobs=%d: close %d = %+v, want %+v", cfg.Jobs, i, res.Closes[i], base[i])
			}
		}
	}
}

// Done must deliver every input index exactly once, and PrefixTrace over
// all retired inputs must equal the final merged trace.
func TestStreamPrefixTrace(t *testing.T) {
	p := scaled(progs.All[1], 4)
	img, inputs := buildProg(t, p)

	s := Start(img, inputs, Opts{Jobs: 2, Buf: 16})
	seen := make(map[int]bool)
	for i := range s.Done() {
		if seen[i] {
			t.Fatalf("input %d retired twice", i)
		}
		seen[i] = true
	}
	if len(seen) != len(inputs) {
		t.Fatalf("retired %d inputs, want %d", len(seen), len(inputs))
	}
	res, err := s.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if s.PrefixTrace(len(inputs)).Digest() != res.Trace.Digest() {
		t.Error("full-prefix trace differs from the merged result")
	}
}

// With the decode stage stalled, producers must block on the bounded
// channel after the windows fill — the tracer cannot run ahead without
// bound — and the run must still complete correctly once unstalled.
func TestStreamBackpressure(t *testing.T) {
	p := scaled(progs.All[0], 4)
	img, inputs := buildProg(t, p)

	want := tracer.New(img)
	if err := want.RunAll(inputs, nil); err != nil {
		t.Fatal(err)
	}

	const jobs, buf = 2, 4
	gate := make(chan struct{})
	var sent atomic.Int64
	opts := Opts{
		Jobs: jobs,
		Buf:  buf,
		decodeWrap: func(inner func(Rec) (fact, error)) func(Rec) (fact, error) {
			return func(r Rec) (fact, error) {
				<-gate
				return inner(r)
			}
		},
		onSend: func(Rec) { sent.Add(1) },
	}
	s := Start(img, inputs, opts)

	// Record channel + decode-out buffer + one record per worker/stage
	// hand: the most the producers can get ahead while decode is stalled.
	bound := int64(2*buf + 2*jobs + 3)
	deadline := time.Now().Add(2 * time.Second)
	var last int64 = -1
	for time.Now().Before(deadline) {
		cur := sent.Load()
		if cur == last {
			break
		}
		last = cur
		time.Sleep(20 * time.Millisecond)
	}
	stalled := sent.Load()
	if stalled > bound {
		t.Fatalf("producers pushed %d records against a stalled decode stage, want <= %d", stalled, bound)
	}

	close(gate)
	res, err := s.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if int64(res.Records) <= bound {
		t.Fatalf("test too small to prove backpressure: only %d records total", res.Records)
	}
	if res.Trace.Digest() != want.Digest() {
		t.Error("trace after a stall differs from the barriered trace")
	}
}

// A panic in a decode worker must drain the stream — producers unblock,
// every goroutine exits — and surface as an error, not a crash or hang.
func TestStreamWorkerPanicDrains(t *testing.T) {
	p := scaled(progs.All[0], 4)
	img, inputs := buildProg(t, p)

	var n atomic.Int64
	opts := Opts{
		Jobs: 4,
		Buf:  4,
		decodeWrap: func(inner func(Rec) (fact, error)) func(Rec) (fact, error) {
			return func(r Rec) (fact, error) {
				if r.Kind == KindBlock && n.Add(1) == 5 {
					panic("lift worker exploded")
				}
				return inner(r)
			}
		},
	}
	done := make(chan struct{})
	var err error
	go func() {
		defer close(done)
		_, err = Start(img, inputs, opts).Wait()
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("stream did not drain after a worker panic")
	}
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v, want a panic-converted error", err)
	}
}
