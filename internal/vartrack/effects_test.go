package vartrack_test

import (
	"testing"

	"wytiwyg/internal/asm"
	"wytiwyg/internal/core"
	"wytiwyg/internal/irexec"
	"wytiwyg/internal/machine"
	"wytiwyg/internal/minicc/gen"
	"wytiwyg/internal/vartrack"
)

// Alignment masks on pointers (and with an inverted-power-of-two constant)
// record the variable's alignment requirement (§4.2.2: "for and
// instructions, we capture the alignment factor").
func TestAlignmentCapture(t *testing.T) {
	src := `
main:
    push ebp
    mov ebp, esp
    subi esp, 64
    lea eax, [ebp-48]
    andi eax, -16            ; align the buffer pointer to 16
    storei4 [eax], 7         ; dereference through the aligned pointer
    load4 eax, [eax]
    addi esp, 64
    pop ebp
    halt
`
	img, err := asm.Assemble("t", src, "")
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.LiftBinary(img, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.RefineRegSave(); err != nil {
		t.Fatal(err)
	}
	if err := p.RefineVarArgs(); err != nil {
		t.Fatal(err)
	}
	if err := p.RefineStackRef(); err != nil {
		t.Fatal(err)
	}
	tr := vartrack.NewTracer(p.SPOffsets)
	ip, err := irexec.New(p.Mod, machine.Input{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ip.Tr = tr
	tr.Bind(ip)
	if _, err := ip.Run(); err != nil {
		t.Fatal(err)
	}
	f := p.Mod.FuncByName("main")
	found := false
	for _, v := range tr.Result().ByFn[f] {
		if v.Align == 16 {
			found = true
		}
	}
	if !found {
		t.Errorf("alignment factor 16 not captured: %v", tr.Result().ByFn[f])
	}
}

// strtok returns a pointer derived from its argument (the extdb DeriveRet
// constraint): writes through the returned pointer must extend the
// original buffer's bounds, and the whole pipeline must keep working.
func TestStrtokDeriveRet(t *testing.T) {
	src := `
extern int strtok(char *s, char *d);
extern int strlen(char *s);
extern int strcpy(char *d, char *s);
int main() {
	char buf[16];
	strcpy(buf, "ab,cd");
	char *tok = (char*)strtok(buf, ",");
	return strlen(tok);      /* "ab" -> 2 */
}`
	img, err := gen.Build(src, gen.GCC12O0, "t")
	if err != nil {
		t.Fatal(err)
	}
	nat, err := machine.Execute(img, machine.Input{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if nat.ExitCode != 2 {
		t.Fatalf("native exit = %d", nat.ExitCode)
	}
	p, err := core.LiftBinary(img, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Refine(); err != nil {
		t.Fatal(err)
	}
	r, err := irexec.Run(p.Mod, machine.Input{}, nil, nil)
	if err != nil || r.ExitCode != 2 {
		t.Fatalf("symbolized: exit %d err %v", r.ExitCode, err)
	}
	// buf's variable must span the strcpy'd string (6 bytes with NUL).
	fr := p.Recovered.Frame("main")
	if fr == nil {
		t.Fatal("no recovered frame")
	}
	var max uint32
	for _, v := range fr.Vars {
		if v.Size > max {
			max = v.Size
		}
	}
	if max < 6 {
		t.Errorf("buf bounds too small (%d); strtok/strcpy effects missing: %v", max, fr)
	}
}
