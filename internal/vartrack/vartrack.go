// Package vartrack is the tracing runtime of the paper's second refinement
// (§4.2, Figure 5): object-bounds recovery. Every direct stack reference
// identified by the stack-reference refinement becomes the base pointer of a
// candidate StackVar. As the instrumented program runs, the runtime tracks
// PointerInfo metadata — which StackVar a value refers to and at what offset
// — through the core tracing operations:
//
//	derive   pointer ± constant (and alignment ANDs)
//	derive2  pointer ± non-constant (the known-pointer operand wins)
//	link     pointer difference / pointer comparison: same object
//	store    record pointers written to memory in the address map; bound
//	         updates for the stored-through pointer
//	load     bound updates; pointers read back from memory regain metadata
//	copy     phi nodes propagate metadata
//
// Bounds follow the paper's deferred rules exactly: a StackVar's bounds stay
// undefined until a pointer associated with it is dereferenced (§4.2.4
// handles out-of-bound base pointers such as loop end pointers); sub-register
// writes propagate metadata but never update bounds (§4.2.3 false derives);
// linking merges ranges only when both sides have defined bounds. Calls
// marshal metadata between frames (fnenter/fnexit); accesses at or above a
// frame's sp0 are recorded as stack-argument accesses for signature
// recovery (§4.2.5); external functions apply the constraint database of
// §5.3.
package vartrack

import (
	"fmt"
	"sort"

	"wytiwyg/internal/extdb"
	"wytiwyg/internal/ir"
	"wytiwyg/internal/irexec"
	"wytiwyg/internal/stackref"
)

// StackVar records the observed extent of one candidate stack variable. It
// is keyed by the static base-pointer value, not by address, so one
// StackVar serves every activation in recursive call chains.
type StackVar struct {
	ID int      // stable variable number (assignment order)
	Fn *ir.Func // owning function
	// SPOff is the base pointer's displacement from its function's sp0.
	SPOff int32
	// Bounds relative to the base pointer; undefined until the first
	// dereference through any associated pointer.
	Defined   bool
	Low, High int32 // see Defined
	// Align is the strongest alignment observed through AND masking (0 =
	// none).
	Align uint32
}

// AbsRange returns the variable's extent relative to sp0.
func (v *StackVar) AbsRange() (lo, hi int32) {
	return v.SPOff + v.Low, v.SPOff + v.High
}

func (v *StackVar) String() string {
	if !v.Defined {
		return fmt.Sprintf("var%d@%d(undef)", v.ID, v.SPOff)
	}
	return fmt.Sprintf("var%d@%d[%d,%d)", v.ID, v.SPOff, v.Low, v.High)
}

// PointerInfo associates a runtime value with a stack variable.
type PointerInfo struct {
	Var *StackVar // the variable the value points into
	Off int32     // displacement from the variable's base
}

// Result is everything symbolization needs.
type Result struct {
	// Vars maps each base-pointer value to its StackVar.
	Vars map[*ir.Value]*StackVar
	// ByFn groups the variables per function.
	ByFn map[*ir.Func][]*StackVar
	// Linked holds pairs of variables that belong to the same object.
	Linked [][2]*StackVar
	// ArgSlots records, per function, the incoming stack-argument slots
	// (index i ↔ sp0+4+4i) observed to be accessed.
	ArgSlots map[*ir.Func]map[int]bool
}

// Tracer is the §4.2 instrumentation runtime.
type Tracer struct {
	ip   *irexec.Interp
	offs map[*ir.Func]stackref.Offsets

	res     *Result
	nextID  int
	addrMap map[uint32]PointerInfo
	// order remembers base-pointer values in StackVar allocation order, so
	// Join can renumber a forked tracer's variables exactly as a sequential
	// run would have.
	order []*ir.Value

	// pending carries argument metadata from CallPre to the callee's
	// FnEnter; lastExit carries return metadata from FnExit to the
	// caller's Exec of the call.
	pending  []pendingCall
	lastExit *exitRecord
}

type pendingCall struct {
	call *ir.Value
	pis  []*PointerInfo
}

type exitRecord struct {
	fn  *ir.Func
	pis []*PointerInfo
}

// retRecord hangs off the call value in the caller frame so extracts can
// pick up returned pointer metadata.
type retRecord struct {
	pis []*PointerInfo
}

// NewTracer builds the runtime over the direct-reference table produced by
// the stack-reference refinement.
func NewTracer(offs map[*ir.Func]stackref.Offsets) *Tracer {
	return &Tracer{
		offs: offs,
		res: &Result{
			Vars:     make(map[*ir.Value]*StackVar),
			ByFn:     make(map[*ir.Func][]*StackVar),
			ArgSlots: make(map[*ir.Func]map[int]bool),
		},
		addrMap: make(map[uint32]PointerInfo),
	}
}

// Bind gives the tracer interpreter access (memory for the §5.3 effects).
func (t *Tracer) Bind(ip *irexec.Interp) { t.ip = ip }

// Result returns the accumulated analysis results.
func (t *Tracer) Result() *Result { return t.res }

// varFor returns (allocating on demand) the StackVar of a base pointer.
func (t *Tracer) varFor(fn *ir.Func, v *ir.Value, spoff int32) *StackVar {
	if sv, ok := t.res.Vars[v]; ok {
		return sv
	}
	sv := &StackVar{ID: t.nextID, Fn: fn, SPOff: spoff}
	t.nextID++
	t.res.Vars[v] = sv
	t.res.ByFn[fn] = append(t.res.ByFn[fn], sv)
	t.order = append(t.order, v)
	return sv
}

// Fork returns a fresh tracer over the same direct-reference table for one
// input's run. Each fork tracks its own StackVars, address map and
// marshalling state; Join folds the fork's observations back.
func (t *Tracer) Fork() irexec.Tracer { return NewTracer(t.offs) }

// Join merges a forked tracer's result into t. StackVars are keyed by
// their static base-pointer value, so the fork's variables map onto t's by
// identity: bounds union (the §4.2.4 deferred rules are interval joins,
// which commute), alignment takes the strongest observation, and linked
// pairs and argument slots accumulate. Joining forks in input order
// allocates IDs in exactly the order one sequential tracer observing the
// same inputs back-to-back would have, which keeps downstream coalescing
// deterministic in the worker count.
func (t *Tracer) Join(o irexec.Tracer) {
	ot := o.(*Tracer)
	remap := make(map[*StackVar]*StackVar, len(ot.order))
	for _, base := range ot.order {
		osv := ot.res.Vars[base]
		sv := t.varFor(osv.Fn, base, osv.SPOff)
		remap[osv] = sv
		if osv.Defined {
			if !sv.Defined {
				sv.Defined = true
				sv.Low, sv.High = osv.Low, osv.High
			} else {
				if osv.Low < sv.Low {
					sv.Low = osv.Low
				}
				if osv.High > sv.High {
					sv.High = osv.High
				}
			}
		}
		if osv.Align > sv.Align {
			sv.Align = osv.Align
		}
	}
	for _, pair := range ot.res.Linked {
		t.res.Linked = append(t.res.Linked, [2]*StackVar{remap[pair[0]], remap[pair[1]]})
	}
	for fn, slots := range ot.res.ArgSlots {
		dst := t.res.ArgSlots[fn]
		if dst == nil {
			dst = make(map[int]bool, len(slots))
			t.res.ArgSlots[fn] = dst
		}
		for s := range slots {
			dst[s] = true
		}
	}
}

func (t *Tracer) pi(fr *irexec.Frame, v *ir.Value) *PointerInfo {
	p, _ := fr.GetMeta(v).(*PointerInfo)
	return p
}

func (t *Tracer) setPI(fr *irexec.Frame, v *ir.Value, p *PointerInfo) {
	fr.SetMeta(v, p)
}

// direct returns the base-pointer metadata when v is a direct stack
// reference of the executing function.
func (t *Tracer) direct(fr *irexec.Frame, v *ir.Value) *PointerInfo {
	offs := t.offs[fr.Fn]
	if offs == nil {
		return nil
	}
	c, ok := offs[v]
	if !ok {
		return nil
	}
	return &PointerInfo{Var: t.varFor(fr.Fn, v, c), Off: 0}
}

// updateBounds implements the deferred-initialization rules of §4.2.4 for
// a size-byte dereference through p.
func (t *Tracer) updateBounds(p *PointerInfo, size uint8) {
	t.boundRange(p, int64(size))
}

func (t *Tracer) link(a, b *StackVar) {
	if a == nil || b == nil || a == b {
		return
	}
	t.res.Linked = append(t.res.Linked, [2]*StackVar{a, b})
}

func (t *Tracer) invalidate(addr uint32, size uint8) {
	for a := addr - 3; a != addr+uint32(size); a++ {
		delete(t.addrMap, a)
	}
}

// FnEnter binds incoming pointer metadata to parameters; the ESP parameter
// is the frame's own sp0 base pointer.
func (t *Tracer) FnEnter(fr *irexec.Frame) {
	var pend *pendingCall
	if n := len(t.pending); n > 0 {
		pend = &t.pending[n-1]
		t.pending = t.pending[:n-1]
	}
	for i, p := range fr.Fn.Params {
		if d := t.direct(fr, p); d != nil {
			t.setPI(fr, p, d)
			continue
		}
		if pend != nil && i < len(pend.pis) && pend.pis[i] != nil {
			t.setPI(fr, p, pend.pis[i])
		}
	}
}

// FnExit captures returned pointer metadata for the caller.
func (t *Tracer) FnExit(fr *irexec.Frame, ret *ir.Value, rets []uint32) {
	rec := &exitRecord{fn: fr.Fn, pis: make([]*PointerInfo, len(ret.Args))}
	for i, a := range ret.Args {
		rec.pis[i] = t.pi(fr, a)
	}
	t.lastExit = rec
}

// Phi is the copy operation: metadata follows the selected incoming value.
func (t *Tracer) Phi(fr *irexec.Frame, phi *ir.Value, incoming *ir.Value, val uint32) {
	if d := t.direct(fr, phi); d != nil {
		t.setPI(fr, phi, d)
		return
	}
	if p := t.pi(fr, incoming); p != nil {
		t.setPI(fr, phi, p)
	} else {
		fr.DelMeta(phi)
	}
}

// CallPre marshals argument metadata to the callee (fnenter's register
// list).
func (t *Tracer) CallPre(fr *irexec.Frame, call *ir.Value, args []uint32) {
	base := 0
	if call.Op == ir.OpCallInd {
		base = 1
	}
	pis := make([]*PointerInfo, len(call.Args)-base)
	for i := base; i < len(call.Args); i++ {
		pis[i-base] = t.pi(fr, call.Args[i])
	}
	t.pending = append(t.pending, pendingCall{call: call, pis: pis})
}

// Exec dispatches the core tracing operations.
func (t *Tracer) Exec(fr *irexec.Frame, v *ir.Value, args []uint32, res uint32) {
	// Direct stack references are base pointers of their own variables and
	// are never treated as derived (§4.1 produced them; §4.2 starts here).
	if d := t.direct(fr, v); d != nil {
		t.setPI(fr, v, d)
		return
	}
	// Clear any metadata from a previous execution of this value (loops):
	// each execution recomputes it from scratch.
	fr.DelMeta(v)
	switch v.Op {
	case ir.OpAdd, ir.OpSub, ir.OpAnd, ir.OpSubreg8:
		aPI := t.pi(fr, v.Args[0])
		bPI := t.pi(fr, v.Args[1])
		switch {
		case aPI != nil && bPI != nil:
			if v.Op == ir.OpSub {
				// Pointer difference: both operands belong to the same
				// object (link).
				t.link(aPI.Var, bPI.Var)
			}
			// ptr+ptr or ptr&ptr: result is no pointer.
		case aPI != nil:
			// derive/derive2: offset advances by the value delta, which is
			// exact for every arithmetic form.
			np := &PointerInfo{Var: aPI.Var, Off: aPI.Off + int32(res-args[0])}
			t.setPI(fr, v, np)
			if v.Op == ir.OpAnd && v.Args[1].Op == ir.OpConst {
				if al := alignOf(uint32(v.Args[1].Const)); al > aPI.Var.Align {
					aPI.Var.Align = al
				}
			}
		case bPI != nil && v.Op == ir.OpAdd:
			np := &PointerInfo{Var: bPI.Var, Off: bPI.Off + int32(res-args[1])}
			t.setPI(fr, v, np)
		case bPI != nil && v.Op == ir.OpAnd:
			np := &PointerInfo{Var: bPI.Var, Off: bPI.Off + int32(res-args[1])}
			t.setPI(fr, v, np)
			if v.Args[0].Op == ir.OpConst {
				if al := alignOf(uint32(v.Args[0].Const)); al > bPI.Var.Align {
					bPI.Var.Align = al
				}
			}
		}
	case ir.OpCmp:
		aPI := t.pi(fr, v.Args[0])
		bPI := t.pi(fr, v.Args[1])
		if aPI != nil && bPI != nil {
			t.link(aPI.Var, bPI.Var)
		}
	case ir.OpLoad:
		if p := t.pi(fr, v.Args[0]); p != nil {
			t.updateBounds(p, v.Size)
		}
		if e, ok := t.addrMap[args[0]]; ok && v.Size == 4 {
			t.setPI(fr, v, &PointerInfo{Var: e.Var, Off: e.Off})
		}
	case ir.OpStore:
		addr := args[0]
		if p := t.pi(fr, v.Args[0]); p != nil {
			t.updateBounds(p, v.Size)
		}
		t.invalidate(addr, v.Size)
		if p := t.pi(fr, v.Args[1]); p != nil && v.Size == 4 {
			t.addrMap[addr] = *p
		}
	case ir.OpCall, ir.OpCallInd:
		// The callee has run; attach its returned metadata for extracts.
		if t.lastExit != nil {
			matches := (v.Op == ir.OpCall && v.Callee == t.lastExit.fn)
			if v.Op == ir.OpCallInd {
				for _, tgt := range v.Targets {
					if tgt == t.lastExit.fn {
						matches = true
					}
				}
				if !matches && t.ip != nil {
					matches = t.ip.Mod.FuncAt(args[0]) == t.lastExit.fn
				}
			}
			if matches {
				fr.SetMeta(v, &retRecord{pis: t.lastExit.pis})
			}
			t.lastExit = nil
		}
	case ir.OpExtract:
		parent := v.Args[0]
		// External calls carry their (single) result metadata directly on
		// the call value (the DeriveRet constraint).
		if parent.Op == ir.OpCallExt || parent.Op == ir.OpCallExtRaw {
			if p := t.pi(fr, parent); p != nil && v.Idx == 0 {
				t.setPI(fr, v, p)
			}
			return
		}
		if rec, ok := fr.GetMeta(parent).(*retRecord); ok {
			if v.Idx < len(rec.pis) && rec.pis[v.Idx] != nil {
				t.setPI(fr, v, rec.pis[v.Idx])
			}
		}
	case ir.OpCallExt:
		t.extCall(fr, v, args, res)
	}
}

func alignOf(mask uint32) uint32 {
	// A mask like 0xFFFFFFF0 aligns to 16.
	inv := ^mask
	if inv == 0 || (inv+1)&inv != 0 {
		return 0
	}
	return inv + 1
}

// extCall applies the §5.3 constraint database.
func (t *Tracer) extCall(fr *irexec.Frame, v *ir.Value, args []uint32, res uint32) {
	sig, ok := extdb.Lookup(v.Sym)
	if !ok {
		return
	}
	argPI := func(i int) *PointerInfo {
		if i < 0 || i >= len(v.Args) {
			return nil
		}
		return t.pi(fr, v.Args[i])
	}
	argVal := func(i int) uint32 {
		if i < 0 || i >= len(args) {
			return 0
		}
		return args[i]
	}
	cstrLen := func(addr uint32) int32 {
		if t.ip == nil {
			return 0
		}
		s, err := t.ip.Mem.CString(addr)
		if err != nil {
			return 0
		}
		return int32(len(s))
	}
	for _, eff := range sig.Effects {
		switch eff.Kind {
		case extdb.ObjectSize:
			if p := argPI(eff.A); p != nil {
				size := int64(argVal(eff.B))
				if eff.C >= 0 {
					size *= int64(argVal(eff.C))
				}
				t.boundRange(p, size)
			}
		case extdb.ZeroTerminated:
			if p := argPI(eff.A); p != nil {
				t.boundRange(p, int64(cstrLen(argVal(eff.A)))+1)
			}
		case extdb.DeriveRet:
			if p := argPI(eff.A); p != nil && res != 0 {
				t.setPI(fr, v, &PointerInfo{Var: p.Var, Off: p.Off + int32(res-argVal(eff.A))})
			}
		case extdb.Clear:
			var n int64
			if eff.B >= 0 {
				n = int64(argVal(eff.B))
			} else {
				n = int64(cstrLen(argVal(eff.A))) + 1
			}
			// The external function writes n bytes through the pointer:
			// that bounds the object like any other store.
			if p := argPI(eff.A); p != nil {
				t.boundRange(p, n)
			}
			base := argVal(eff.A)
			for i := int64(0); i < n; i++ {
				delete(t.addrMap, base+uint32(i))
			}
		case extdb.Copy:
			var n int64
			if eff.C >= 0 {
				n = int64(argVal(eff.C))
			} else {
				n = int64(cstrLen(argVal(eff.B))) + 1
			}
			// n bytes are read from src and written to dst.
			if p := argPI(eff.A); p != nil {
				t.boundRange(p, n)
			}
			if p := argPI(eff.B); p != nil {
				t.boundRange(p, n)
			}
			dst, src := argVal(eff.A), argVal(eff.B)
			for i := int64(0); i+3 < n; i += 4 {
				if e, ok := t.addrMap[src+uint32(i)]; ok {
					t.addrMap[dst+uint32(i)] = e
				} else {
					delete(t.addrMap, dst+uint32(i))
				}
			}
		case extdb.FormatStr:
			// %s arguments are NUL-terminated reads of their objects.
			if t.ip == nil {
				continue
			}
			format, err := t.ip.Mem.CString(argVal(eff.A))
			if err != nil {
				continue
			}
			argIdx := eff.A + 1
			for i := 0; i < len(format); i++ {
				if format[i] != '%' || i+1 >= len(format) {
					continue
				}
				i++
				if format[i] == '%' {
					continue
				}
				if format[i] == 's' {
					if p := argPI(argIdx); p != nil {
						t.boundRange(p, int64(cstrLen(argVal(argIdx)))+1)
					}
				}
				argIdx++
			}
		}
	}
}

// boundRange widens bounds for an n-byte access through p. Accesses at
// non-negative offsets anchor the object at its base pointer (the paper's
// Figure 2 example: an access at offset 16 of size 4 records the interval
// [0,20)); accesses at negative offsets do NOT pull the base in, so an
// out-of-bounds base pointer such as a loop end pointer never inflates the
// object past its true extent (§4.2.4).
func (t *Tracer) boundRange(p *PointerInfo, n int64) {
	if n <= 0 {
		return
	}
	v := p.Var
	lo, hi := p.Off, p.Off+int32(n)
	if lo > 0 {
		lo = 0
	}
	if !v.Defined {
		v.Defined = true
		v.Low, v.High = lo, hi
	} else {
		if lo < v.Low {
			v.Low = lo
		}
		if hi > v.High {
			v.High = hi
		}
	}
	if v.SPOff+p.Off >= 4 {
		slots := t.res.ArgSlots[v.Fn]
		if slots == nil {
			slots = make(map[int]bool)
			t.res.ArgSlots[v.Fn] = slots
		}
		for a := v.SPOff + lo; a < v.SPOff+hi; a++ {
			if a >= 4 {
				slots[int((a-4)/4)] = true
			}
		}
	}
}

// SortedVars returns a function's variables ordered by sp0 offset, for
// deterministic processing.
func (r *Result) SortedVars(f *ir.Func) []*StackVar {
	vars := append([]*StackVar(nil), r.ByFn[f]...)
	sort.Slice(vars, func(i, j int) bool {
		if vars[i].SPOff != vars[j].SPOff {
			return vars[i].SPOff < vars[j].SPOff
		}
		return vars[i].ID < vars[j].ID
	})
	return vars
}
