package vartrack_test

import (
	"testing"

	"wytiwyg/internal/core"
	"wytiwyg/internal/irexec"
	"wytiwyg/internal/machine"
	"wytiwyg/internal/minicc/gen"
	"wytiwyg/internal/vartrack"
)

// trace runs the vartrack runtime over a program at a given profile and
// returns the result for inspection.
func trace(t *testing.T, src string, prof gen.Profile, inputs []machine.Input) (*core.Pipeline, *vartrack.Result) {
	t.Helper()
	img, err := gen.Build(src, prof, "t")
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.LiftBinary(img, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.RefineRegSave(); err != nil {
		t.Fatal(err)
	}
	if err := p.RefineVarArgs(); err != nil {
		t.Fatal(err)
	}
	if err := p.RefineStackRef(); err != nil {
		t.Fatal(err)
	}
	tr := vartrack.NewTracer(p.SPOffsets)
	for _, input := range p.Inputs {
		ip, err := irexec.New(p.Mod, input, nil)
		if err != nil {
			t.Fatal(err)
		}
		ip.Tr = tr
		tr.Bind(ip)
		if _, err := ip.Run(); err != nil {
			t.Fatal(err)
		}
	}
	return p, tr.Result()
}

// findVar locates a variable whose absolute range covers [lo,hi) in fn.
func findVar(res *vartrack.Result, p *core.Pipeline, fn string, lo, hi int32) *vartrack.StackVar {
	f := p.Mod.FuncByName(fn)
	for _, v := range res.ByFn[f] {
		if !v.Defined {
			continue
		}
		vlo, vhi := v.AbsRange()
		if vlo <= lo && vhi >= hi {
			return v
		}
	}
	return nil
}

// An array accessed through a derived pointer must have bounds covering
// every touched element, anchored at its base (the Figure 2 interval rule).
func TestDerivedAccessBounds(t *testing.T) {
	src := `
extern int input_int(int i);
int main() {
	int a[6];
	int i;
	for (i = 0; i < 6; i++) a[i] = i;
	return a[input_int(0)];
}`
	p, res := trace(t, src, gen.GCC12O0, []machine.Input{{Ints: []int32{3}}})
	// Some variable must span all 24 bytes of a.
	f := p.Mod.FuncByName("main")
	found := false
	for _, v := range res.ByFn[f] {
		if v.Defined && v.High-v.Low >= 24 {
			found = true
		}
	}
	if !found {
		t.Errorf("no 24-byte object recovered; vars: %v", res.ByFn[f])
	}
}

// The end pointer of a pointer loop links to the array but never defines
// bounds of its own (§4.2.4), and never drags position 0 into the object.
func TestEndPointerStaysUndefined(t *testing.T) {
	src := `
int main() {
	int a[8];
	int i, s = 0;
	for (i = 0; i < 8; i++) { a[i] = 9; }
	for (i = 0; i < 8; i++) { s += a[i]; }
	return s;
}`
	p, res := trace(t, src, gen.GCC12O3, nil) // O3: pointer loops fire
	f := p.Mod.FuncByName("main")
	// There must be at least one linked pair involving an undefined var
	// (the end pointer) and the array's var.
	foundLink := false
	for _, pair := range res.Linked {
		if pair[0].Fn != f && pair[1].Fn != f {
			continue
		}
		if !pair[0].Defined || !pair[1].Defined {
			foundLink = true
		}
	}
	if !foundLink {
		t.Error("no link with an undefined (end-pointer) variable recorded")
	}
	// No defined variable's bounds may extend past the array into the
	// neighbour above (the end pointer must not anchor at offset 0).
	for _, v := range res.ByFn[f] {
		if v.Defined && v.Low < 0 {
			t.Errorf("variable anchored below its base: %v", v)
		}
	}
}

// Sub-register moves (false derives) must not create bounds on their own:
// only dereferences do (§4.2.3).
func TestFalseDeriveNoBounds(t *testing.T) {
	src := `
int main() {
	char a = 'x', b;
	int big = 7;
	b = a;                /* subreg copy on the clang16 profile */
	return b + big;
}`
	p, res := trace(t, src, gen.Clang16O3, nil)
	// Behaviour must be right and no variable may have absurd bounds.
	f := p.Mod.FuncByName("main")
	for _, v := range res.ByFn[f] {
		if v.Defined && (v.High-v.Low) > 64 {
			t.Errorf("suspiciously large object from a subreg move: %v", v)
		}
	}
	_ = p
}

// Pointers written to memory and read back keep their identity through the
// address map.
func TestAddressMapRoundTrip(t *testing.T) {
	src := `
struct p { int x; int y; };
struct p *id(struct p *v) { return v; }
int main() {
	struct p a;
	struct p *ptr;
	a.x = 31;
	ptr = id(&a);       /* pointer travels through call and return */
	ptr->y = 11;        /* write through the reloaded pointer */
	return a.y + a.x;   /* must see 11 + 31 */
}`
	p, res := trace(t, src, gen.GCC12O0, nil)
	// a must be recovered as one object of (at least) 8 bytes, because the
	// ptr->y write derived from the marshalled pointer.
	f := p.Mod.FuncByName("main")
	var best int32
	for _, sv := range res.ByFn[f] {
		if sv.Defined && sv.High-sv.Low > best {
			best = sv.High - sv.Low
		}
	}
	if best < 8 {
		t.Errorf("struct a not tracked through the address map (largest=%d)", best)
	}
}

// Stack arguments are observed per function with gap filling handled by the
// symbolizer; the raw observation set must contain the accessed slots.
func TestArgSlotObservation(t *testing.T) {
	src := `
int pick(int a, int b, int c) { return a + c; }
int main() { return pick(1, 2, 3); }`
	p, res := trace(t, src, gen.GCC12O0, nil)
	f := p.Mod.FuncByName("pick")
	slots := res.ArgSlots[f]
	if !slots[0] || !slots[2] {
		t.Errorf("arg slots observed = %v, want 0 and 2", slots)
	}
	if slots[1] {
		t.Errorf("slot 1 observed although never accessed: %v", slots)
	}
}

// External function effects: memcpy's ObjectSize bounds both buffers even
// without direct dereferences in the program.
func TestExtDBObjectSize(t *testing.T) {
	src := `
extern int memcpy(void *d, void *s, int n);
int main() {
	char src[16];
	char dst[16];
	src[0] = 'a';
	memcpy(dst, src, 16);
	return dst[0];
}`
	p, res := trace(t, src, gen.GCC12O0, nil)
	f := p.Mod.FuncByName("main")
	count16 := 0
	for _, v := range res.ByFn[f] {
		if v.Defined && v.High-v.Low >= 16 {
			count16++
		}
	}
	if count16 < 2 {
		t.Errorf("memcpy did not bound both buffers; 16-byte objects = %d", count16)
	}
	if v := findVar(res, p, "main", -8, -4); v == nil {
		t.Log("note: no variable covering [-8,-4); layout depends on profile")
	}
}
