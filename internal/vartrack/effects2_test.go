package vartrack_test

import (
	"testing"

	"wytiwyg/internal/core"
	"wytiwyg/internal/irexec"
	"wytiwyg/internal/machine"
	"wytiwyg/internal/minicc/gen"
	"wytiwyg/internal/vartrack"
)

// pipeRun compiles src at the -O0 profile, runs the full refinement
// pipeline, asserts the symbolized module still computes wantExit, and
// returns the recovered frame sizes of main.
func pipeRun(t *testing.T, src string, wantExit int32) []uint32 {
	t.Helper()
	img, err := gen.Build(src, gen.GCC12O0, "t")
	if err != nil {
		t.Fatal(err)
	}
	nat, err := machine.Execute(img, machine.Input{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if nat.ExitCode != wantExit {
		t.Fatalf("native exit = %d, want %d", nat.ExitCode, wantExit)
	}
	p, err := core.LiftBinary(img, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Refine(); err != nil {
		t.Fatal(err)
	}
	r, err := irexec.Run(p.Mod, machine.Input{}, nil, nil)
	if err != nil || r.ExitCode != wantExit {
		t.Fatalf("symbolized exit = %d err %v, want %d", r.ExitCode, err, wantExit)
	}
	fr := p.Recovered.Frame("main")
	if fr == nil {
		t.Fatal("no recovered frame for main")
	}
	var sizes []uint32
	for _, v := range fr.Vars {
		sizes = append(sizes, v.Size)
	}
	return sizes
}

func maxSize(sizes []uint32) uint32 {
	var m uint32
	for _, s := range sizes {
		if s > m {
			m = s
		}
	}
	return m
}

// memset's Clear effect (§5.3) writes n bytes through its pointer: the
// buffer's bounds must cover all n even though the program dereferences
// only byte 0 directly.
func TestMemsetBoundsObject(t *testing.T) {
	src := `
extern int memset(char *p, int c, int n);
int main() {
	char buf[24];
	memset(buf, 7, 24);
	return buf[0];
}`
	sizes := pipeRun(t, src, 7)
	if maxSize(sizes) < 24 {
		t.Errorf("memset Clear effect missing: frame sizes %v, want one >= 24", sizes)
	}
}

// memcpy's Copy effect bounds BOTH operands by the explicit byte count.
func TestMemcpyBoundsBothObjects(t *testing.T) {
	src := `
extern int memcpy(char *d, char *s, int n);
extern int memset(char *p, int c, int n);
int main() {
	char a[20];
	char b[20];
	memset(a, 5, 20);
	memcpy(b, a, 20);
	return b[19];
}`
	sizes := pipeRun(t, src, 5)
	n := 0
	for _, s := range sizes {
		if s >= 20 {
			n++
		}
	}
	if n < 2 {
		t.Errorf("memcpy Copy effect should bound src and dst: sizes %v", sizes)
	}
}

// strcpy's Copy effect uses the source's NUL-terminated length when no
// explicit count exists.
func TestStrcpyBoundsByStringLength(t *testing.T) {
	src := `
extern int strcpy(char *d, char *s);
extern int strlen(char *s);
int main() {
	char s[16];
	strcpy(s, "abcde");
	return strlen(s);
}`
	sizes := pipeRun(t, src, 5)
	if maxSize(sizes) < 6 { // "abcde" + NUL
		t.Errorf("strcpy bounds too small: %v, want >= 6", sizes)
	}
}

// printf's FormatStr effect: a %s argument is a NUL-terminated read of its
// object, which must extend the object's bounds.
func TestPrintfStringArgBounds(t *testing.T) {
	src := `
extern int printf(char *fmt, ...);
extern int strcpy(char *d, char *s);
int main() {
	char nm[12];
	strcpy(nm, "xyz");
	printf("%s %d\n", nm, 3);
	return 0;
}`
	sizes := pipeRun(t, src, 0)
	if maxSize(sizes) < 4 { // "xyz" + NUL
		t.Errorf("printf %%s bounds missing: %v, want >= 4", sizes)
	}
}

func TestStackVarString(t *testing.T) {
	v := &vartrack.StackVar{ID: 3, SPOff: -16}
	if got := v.String(); got != "var3@-16(undef)" {
		t.Errorf("undef String = %q", got)
	}
	v.Defined = true
	v.Low, v.High = 0, 8
	if got := v.String(); got != "var3@-16[0,8)" {
		t.Errorf("defined String = %q", got)
	}
	if lo, hi := v.AbsRange(); lo != -16 || hi != -8 {
		t.Errorf("AbsRange = [%d,%d)", lo, hi)
	}
}
