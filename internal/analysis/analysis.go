// Package analysis is the static dataflow-analysis layer: a reusable
// lattice-based fixpoint engine over the IR's CFG plus a suite of concrete
// analyses that audit the pipeline's own output. WYTIWYG's refinements are
// dynamic — layouts recovered from traces are only as good as the traces
// (paper §5) — so an unsound symbolization can silently miscompile until a
// bad input hits it at run time. The analyses here act as the static gate
// the paper's soundness discussion calls for: they prove (or flag) the
// recovered stack layouts before code generation instead of discovering
// problems as crashes in the interpreter or the recompiled binary.
//
// The layer has four clients wired into the pipeline:
//
//   - stack-height analysis (stackheight.go) re-derives every function's
//     sp0-relative reference offsets by abstract interpretation and rejects
//     frames whose recovered extent disagrees with them;
//   - the bounds checker (bounds.go) runs an interval analysis over the
//     symbolized IR and proves every stack load/store lands inside its
//     recovered object, or reports where it cannot;
//   - definite-initialization (initcheck.go) flags loads from stack slots
//     that no path has stored to;
//   - escape and dead-store analysis (escape.go, deadstore.go) compute the
//     facts that make the optimizer's promotion and store-elimination
//     decisions provably safe rather than heuristic.
//
// Diagnostics carry stable func:block:idx locations (ir.Value.Location) and
// render as text or JSON (diag.go); Lint (lint.go) bundles the checks into
// the pipeline's post-refinement verification stage and the `wytiwyg lint`
// subcommand.
package analysis

import "wytiwyg/internal/ir"

// rpo returns f's blocks in reverse post order (entry first), restricted to
// reachable blocks.
func rpo(f *ir.Func) []*ir.Block {
	seen := make(map[*ir.Block]bool, len(f.Blocks))
	var post []*ir.Block
	var dfs func(b *ir.Block)
	dfs = func(b *ir.Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			dfs(s)
		}
		post = append(post, b)
	}
	dfs(f.Entry())
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// uses maps each value to its consumers within f.
func uses(f *ir.Func) map[*ir.Value][]*ir.Value {
	u := make(map[*ir.Value][]*ir.Value)
	add := func(user *ir.Value) {
		for _, a := range user.Args {
			u[a] = append(u[a], user)
		}
	}
	for _, b := range f.Blocks {
		for _, v := range b.Phis {
			add(v)
		}
		for _, v := range b.Insts {
			add(v)
		}
	}
	return u
}

// constOf unwraps a constant operand.
func constOf(v *ir.Value) (int32, bool) {
	if v.Op == ir.OpConst {
		return v.Const, true
	}
	return 0, false
}
