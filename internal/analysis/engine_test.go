package analysis

import (
	"testing"

	"wytiwyg/internal/ir"
	"wytiwyg/internal/isa"
)

// mkFunc builds a function with one entry block.
func mkFunc(name string) (*ir.Module, *ir.Func, *ir.Block) {
	m := ir.NewModule("t")
	f := m.NewFunc(name, 0x1000)
	f.NumRet = 1
	b := f.NewBlock(0)
	m.Entry = f
	return m, f, b
}

func konst(f *ir.Func, b *ir.Block, c int32) *ir.Value {
	k := f.NewValue(ir.OpConst)
	k.Const = c
	b.Append(k)
	return k
}

func edge(from, to *ir.Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// diamond builds entry -> {thenB, elseB} -> exit.
func diamond(f *ir.Func, entry *ir.Block) (thenB, elseB, exit *ir.Block) {
	thenB = f.NewBlock(0)
	elseB = f.NewBlock(0)
	exit = f.NewBlock(0)
	edge(entry, thenB)
	edge(entry, elseB)
	edge(thenB, exit)
	edge(elseB, exit)
	return
}

// pathSets is a forward may-problem whose state is the set of block IDs
// seen on some path; it exercises join, boundary, and ordering.
func pathSets(forward bool) Problem[map[int]bool] {
	return Problem[map[int]bool]{
		Forward:  forward,
		Boundary: func(*ir.Func) map[int]bool { return map[int]bool{} },
		Bottom:   func() map[int]bool { return map[int]bool{} },
		Join: func(dst, src map[int]bool) (map[int]bool, bool) {
			changed := false
			for k := range src {
				if !dst[k] {
					dst[k] = true
					changed = true
				}
			}
			return dst, changed
		},
		Clone: func(s map[int]bool) map[int]bool {
			out := make(map[int]bool, len(s))
			for k := range s {
				out[k] = true
			}
			return out
		},
		Transfer: func(b *ir.Block, in map[int]bool) map[int]bool {
			in[b.ID] = true
			return in
		},
	}
}

func TestSolveForwardDiamond(t *testing.T) {
	_, f, entry := mkFunc("f")
	thenB, elseB, exit := diamond(f, entry)

	res := Solve(f, pathSets(true))
	in := res.In[exit]
	for _, b := range []*ir.Block{entry, thenB, elseB} {
		if !in[b.ID] {
			t.Errorf("exit in-state missing block %d", b.ID)
		}
	}
	if in[exit.ID] {
		t.Error("exit in-state contains exit itself")
	}
	if !res.Out[exit][exit.ID] {
		t.Error("exit out-state missing exit")
	}
	if len(res.In[entry]) != 0 {
		t.Errorf("entry in-state should be boundary-empty, got %v", res.In[entry])
	}
}

func TestSolveBackwardDiamond(t *testing.T) {
	_, f, entry := mkFunc("f")
	thenB, elseB, exit := diamond(f, entry)

	res := Solve(f, pathSets(false))
	// In execution order, the entry's In is what flows out of the backward
	// transfer chain: every block below it.
	in := res.In[entry]
	for _, b := range []*ir.Block{entry, thenB, elseB, exit} {
		if !in[b.ID] {
			t.Errorf("entry backward state missing block %d", b.ID)
		}
	}
	if len(res.Out[exit]) != 0 {
		t.Errorf("exit boundary state should be empty, got %v", res.Out[exit])
	}
}

func TestSolveLoopConverges(t *testing.T) {
	// entry -> header <-> body, header -> exit: the path set over the loop
	// must reach a fixpoint containing the body at header's entry.
	_, f, entry := mkFunc("f")
	header := f.NewBlock(0)
	body := f.NewBlock(0)
	exit := f.NewBlock(0)
	edge(entry, header)
	edge(header, body)
	edge(header, exit)
	edge(body, header)

	res := Solve(f, pathSets(true))
	if !res.In[header][body.ID] {
		t.Error("loop header in-state never absorbed the back edge")
	}
	if !res.In[exit][body.ID] {
		t.Error("exit in-state missing loop body")
	}
}

func TestSolveSkipsUnreachable(t *testing.T) {
	_, f, entry := mkFunc("f")
	dead := f.NewBlock(0) // no preds, not reachable
	_ = entry
	res := Solve(f, pathSets(true))
	if _, ok := res.In[dead]; ok {
		t.Error("unreachable block was analyzed")
	}
}

func TestHeightsLoop(t *testing.T) {
	// esp cycles through a loop phi with balanced push/pop: the phi must
	// resolve to a known height, as in stackref's SCCP.
	_, f, entry := mkFunc("f")
	esp := f.NewParam(isa.ESP, "esp")
	header := f.NewBlock(0)
	body := f.NewBlock(0)
	exit := f.NewBlock(0)
	edge(entry, header)
	edge(header, body)
	edge(header, exit)
	edge(body, header)

	sub8 := f.NewValue(ir.OpSub, esp, konst(f, entry, 8))
	entry.Append(sub8)
	entry.Append(f.NewValue(ir.OpJmp))

	phi := f.NewValue(ir.OpPhi, sub8, nil)
	header.AddPhi(phi)
	cond := konst(f, header, 1)
	header.Append(f.NewValue(ir.OpBr, cond))

	// body: push 4, pop 4 — net zero.
	down := f.NewValue(ir.OpSub, phi, konst(f, body, 4))
	body.Append(down)
	up := f.NewValue(ir.OpAdd, down, konst(f, body, 4))
	body.Append(up)
	phi.Args[1] = up
	body.Append(f.NewValue(ir.OpJmp))

	back := f.NewValue(ir.OpAdd, phi, konst(f, exit, 8))
	exit.Append(back)
	exit.Append(f.NewValue(ir.OpRet, back))

	facts := Heights(f)
	want := map[*ir.Value]int32{esp: 0, sub8: -8, phi: -8, down: -12, up: -8, back: 0}
	for v, c := range want {
		got, ok := facts.Known[v]
		if !ok {
			t.Errorf("v%d: height unknown, want %d", v.ID, c)
		} else if got != c {
			t.Errorf("v%d: height %d, want %d", v.ID, got, c)
		}
	}
}

// boundedCounter is a forward interval problem over a loop whose counter is
// capped: H has a short back edge (A: identity) and a long one (B -> C,
// where C computes min(y+3, 9)). The two path lengths make the worklist
// dequeue H twice per round, and the short-path dequeue never changes H's
// state. Counting those no-change dequeues toward the widening trigger (as
// the engine once did) widens the provably-bounded [0,9] to [0,+inf].
type ivState struct {
	set bool
	iv  Interval
}

func boundedCounter(capped bool, cBlock *ir.Block) Problem[ivState] {
	return Problem[ivState]{
		Forward:  true,
		Boundary: func(*ir.Func) ivState { return ivState{set: true, iv: Const(0)} },
		Bottom:   func() ivState { return ivState{} },
		Join: func(dst, src ivState) (ivState, bool) {
			if !src.set {
				return dst, false
			}
			if !dst.set {
				return src, true
			}
			u := dst.iv.Union(src.iv)
			return ivState{set: true, iv: u}, u != dst.iv
		},
		Clone: func(s ivState) ivState { return s },
		Transfer: func(b *ir.Block, in ivState) ivState {
			if b != cBlock || !in.set {
				return in
			}
			next := in.iv.Add(Const(3))
			if capped && next.Hi > 9 {
				next.Hi = 9
			}
			return ivState{set: true, iv: next}
		},
		Widen: func(prev, next ivState) ivState {
			if !prev.set || !next.set {
				return next
			}
			return ivState{set: true, iv: next.iv.WidenFrom(prev.iv)}
		},
	}
}

// loopTwoBackEdges builds entry -> H; H -> {A, B, exit}; A -> H; B -> C -> H.
func loopTwoBackEdges(f *ir.Func, entry *ir.Block) (h, c *ir.Block) {
	h = f.NewBlock(0)
	a := f.NewBlock(0)
	b := f.NewBlock(0)
	c = f.NewBlock(0)
	exit := f.NewBlock(0)
	edge(entry, h)
	edge(h, a)
	edge(h, b)
	edge(h, exit)
	edge(a, h)
	edge(b, c)
	edge(c, h)
	return h, c
}

func TestWideningDelayKeepsBoundedLoop(t *testing.T) {
	_, f, entry := mkFunc("f")
	h, c := loopTwoBackEdges(f, entry)

	res := Solve(f, boundedCounter(true, c))
	got := res.In[h]
	if !got.set || got.iv != Span(0, 9) {
		t.Errorf("capped counter at loop head = %v, want [0,9]; "+
			"no-change dequeues must not trigger widening", got.iv)
	}
}

func TestWideningStillTerminatesDivergingLoop(t *testing.T) {
	_, f, entry := mkFunc("f")
	h, c := loopTwoBackEdges(f, entry)

	res := Solve(f, boundedCounter(false, c))
	got := res.In[h]
	if !got.set || got.iv.Hi < PosInf {
		t.Errorf("diverging counter at loop head = %v, want widened Hi=+inf", got.iv)
	}
}
