package analysis

import (
	"math/big"
	"testing"
)

// Exhaustive soundness tests of the interval arithmetic at the 32-bit wrap
// boundaries. The domain models the mathematical integers a 32-bit program
// manipulates, spanning signed and unsigned interpretations:
// [-2^31, 2^32-1]. The contract of every operation is containment: for any
// concrete operands inside the input intervals, the exact mathematical
// result must lie inside the result interval unless the result is Top.
// VSA's strided intervals are built directly on these operations, so a
// wrapped endpoint here would silently poison every alias verdict above.

// boundaryGrid is the critical endpoint set: infinities, the clamp bound
// neighborhood (where int64 products of two endpoints overflow), the
// signed/unsigned 32-bit wrap boundaries, and small values.
var boundaryGrid = []int64{
	NegInf, NegInf + 1,
	-(1 << 39), -(1 << 33),
	-(1 << 31) - 1, -(1 << 31), -(1 << 31) + 1,
	-(1 << 20), -3, -1, 0, 1, 3, 1 << 20,
	(1 << 31) - 1, 1 << 31, (1 << 32) - 1, 1 << 32,
	1 << 33, 1 << 39,
	PosInf - 1, PosInf,
}

// samples returns concrete test points inside iv drawn from the grid, plus
// the endpoints themselves.
func samples(iv Interval) []int64 {
	pts := []int64{iv.Lo, iv.Hi}
	for _, g := range boundaryGrid {
		if g > iv.Lo && g < iv.Hi {
			pts = append(pts, g)
		}
	}
	if mid := iv.Lo/2 + iv.Hi/2; mid > iv.Lo && mid < iv.Hi {
		pts = append(pts, mid)
	}
	return pts
}

// contains checks x ∈ [iv.Lo, iv.Hi] with exact arithmetic.
func contains(iv Interval, x *big.Int) bool {
	return x.Cmp(big.NewInt(iv.Lo)) >= 0 && x.Cmp(big.NewInt(iv.Hi)) <= 0
}

func TestIntervalBinaryOpsSoundAtBoundaries(t *testing.T) {
	ops := []struct {
		name  string
		apply func(a, b Interval) Interval
		exact func(x, y *big.Int) *big.Int
	}{
		{"add", Interval.Add, func(x, y *big.Int) *big.Int { return new(big.Int).Add(x, y) }},
		{"sub", Interval.Sub, func(x, y *big.Int) *big.Int { return new(big.Int).Sub(x, y) }},
		{"mul", Interval.Mul, func(x, y *big.Int) *big.Int { return new(big.Int).Mul(x, y) }},
	}
	var intervals []Interval
	for _, lo := range boundaryGrid {
		for _, hi := range boundaryGrid {
			if lo <= hi {
				intervals = append(intervals, Span(lo, hi))
			}
		}
	}
	checked := 0
	for _, op := range ops {
		for _, a := range intervals {
			for _, b := range intervals {
				res := op.apply(a, b)
				if res.IsTop() {
					continue
				}
				for _, x := range samples(a) {
					for _, y := range samples(b) {
						r := op.exact(big.NewInt(x), big.NewInt(y))
						checked++
						if !contains(res, r) {
							t.Fatalf("%s unsound: [%d,%d] %s [%d,%d] = %v misses exact %v (operands %d, %d)",
								op.name, a.Lo, a.Hi, op.name, b.Lo, b.Hi, res, r, x, y)
						}
					}
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no non-Top results were exercised")
	}
	t.Logf("checked %d concrete points", checked)
}

func TestIntervalNegSoundAtBoundaries(t *testing.T) {
	for _, lo := range boundaryGrid {
		for _, hi := range boundaryGrid {
			if lo > hi {
				continue
			}
			a := Span(lo, hi)
			res := a.Neg()
			if res.IsTop() {
				continue
			}
			for _, x := range samples(a) {
				r := new(big.Int).Neg(big.NewInt(x))
				if !contains(res, r) {
					t.Fatalf("neg unsound: -[%d,%d] = %v misses exact %v", lo, hi, res, r)
				}
			}
		}
	}
}

// TestIntervalMulOverflowRegression pins the int64-overflow bug: before the
// overflow check, 2^39 * 2^39 wrapped int64 to exactly 0 and Mul returned
// the singleton {0} — an unsound "proof" that the product is zero.
func TestIntervalMulOverflowRegression(t *testing.T) {
	big39 := Const(1 << 39)
	if got := big39.Mul(big39); !got.IsTop() {
		t.Errorf("2^39 * 2^39 must be Top, got %v", got)
	}
	// Mixed signs overflow downward.
	if got := Const(-(1 << 39)).Mul(Const(1 << 39)); !got.IsTop() {
		t.Errorf("-2^39 * 2^39 must be Top, got %v", got)
	}
	// Products that stay under 2^32 keep exact bounds; crossing 2^32 goes Top.
	a := Span((1<<31)-2, (1<<31)-1)
	if got := a.Mul(Const(2)); got != Span((1<<32)-4, (1<<32)-2) {
		t.Errorf("product below 2^32 should stay exact, got %v", got)
	}
	if got := Const(1 << 31).Mul(Const(2)); !got.IsTop() {
		t.Errorf("product reaching 2^32 must be Top, got %v", got)
	}
	// In-domain products at the boundary stay exact.
	if got := Const(1 << 15).Mul(Const(1 << 16)); got != Const(1<<31) {
		t.Errorf("2^15 * 2^16 = %v, want [2^31,2^31]", got)
	}
}

// TestIntervalAddWrapBoundary pins the add behaviour exactly at the domain
// edges: sums that stay inside [-2^31, 2^32-1] keep exact bounds, sums that
// can leave it go Top.
func TestIntervalAddWrapBoundary(t *testing.T) {
	edge := int64(1<<32) - 1
	if got := Const(edge - 1).Add(Const(1)); got != Const(edge) {
		t.Errorf("add to 2^32-1 should stay exact, got %v", got)
	}
	if got := Const(edge).Add(Const(1)); !got.IsTop() {
		t.Errorf("add past 2^32-1 must be Top, got %v", got)
	}
	low := int64(-(1 << 31))
	if got := Const(low + 1).Add(Const(-1)); got != Const(low) {
		t.Errorf("add to -2^31 should stay exact, got %v", got)
	}
	if got := Const(low).Add(Const(-1)); !got.IsTop() {
		t.Errorf("add past -2^31 must be Top, got %v", got)
	}
}
