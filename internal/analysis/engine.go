package analysis

import "wytiwyg/internal/ir"

// Problem defines one monotone dataflow problem over a function's CFG. The
// state type S is an element of a join semilattice: Join is the merge
// operator (union for may-analyses, intersection for must-analyses) and
// Bottom its identity element (the optimistic initial state). The engine
// drives a worklist to a fixpoint; for lattices of unbounded height an
// optional widening operator accelerates convergence at loop heads.
type Problem[S any] struct {
	// Forward selects the direction: facts flow along CFG edges (block
	// in-state = join of predecessor out-states) or against them.
	Forward bool

	// Boundary produces the in-state of the entry block (forward) or the
	// out-state of every exit block (backward).
	Boundary func(f *ir.Func) S

	// Bottom produces the identity element of Join: the state every other
	// block boundary starts from.
	Bottom func() S

	// Join merges src into dst and reports whether dst changed. dst may be
	// mutated in place; the merged state is returned.
	Join func(dst, src S) (S, bool)

	// Transfer computes a block's out-state (forward) or in-state
	// (backward) from the given boundary state. The argument is a private
	// copy the transfer function may mutate freely.
	Transfer func(b *ir.Block, in S) S

	// Clone deep-copies a state.
	Clone func(S) S

	// Widen, when non-nil, is applied to a block's boundary state once more
	// than WidenAfter joins have actually enlarged it: it must return a
	// state at least as large as both arguments, jumping far enough up the
	// lattice that the chain terminates (typically to ±infinity bounds).
	Widen func(prev, next S) S

	// WidenAfter is the number of state-changing joins a block absorbs
	// plainly before widening kicks in (default 4). Only joins that grow
	// the state count: re-dequeues that change nothing — common when
	// several paths of different lengths re-enqueue the same loop head —
	// don't burn the precision budget, so short loops converge on exact
	// bounds instead of being widened by queue-scheduling noise.
	WidenAfter int
}

// Result carries the fixpoint: the state at each block's entry and exit (in
// execution order, regardless of analysis direction).
type Result[S any] struct {
	In  map[*ir.Block]S // state at block entry
	Out map[*ir.Block]S // state at block exit
}

// Solve runs the worklist algorithm to a fixpoint over f's reachable
// blocks. Blocks are processed in reverse post order (post order for
// backward problems) so that acyclic regions converge in one pass; loops
// iterate until their states stabilize or widening forces termination.
func Solve[S any](f *ir.Func, p Problem[S]) Result[S] {
	order := rpo(f)
	if !p.Forward {
		rev := make([]*ir.Block, len(order))
		for i, b := range order {
			rev[len(order)-1-i] = b
		}
		order = rev
	}
	widenAfter := p.WidenAfter
	if widenAfter <= 0 {
		widenAfter = 4
	}

	idx := make(map[*ir.Block]int, len(order))
	for i, b := range order {
		idx[b] = i
	}
	// sources(b) are the blocks whose post-transfer states feed b;
	// sinks(b) the blocks to reenqueue when b's state changes.
	sources := func(b *ir.Block) []*ir.Block {
		if p.Forward {
			return b.Preds
		}
		return b.Succs
	}
	sinks := func(b *ir.Block) []*ir.Block {
		if p.Forward {
			return b.Succs
		}
		return b.Preds
	}
	isBoundary := func(b *ir.Block) bool {
		if p.Forward {
			return b == f.Entry()
		}
		return len(b.Succs) == 0
	}

	// pre[b] is the state flowing into the transfer, post[b] the state it
	// produced. They map onto Result.In/Out according to direction.
	pre := make(map[*ir.Block]S, len(order))
	post := make(map[*ir.Block]S, len(order))
	visited := make(map[*ir.Block]bool, len(order))
	// grows[b] counts joins that enlarged b's boundary state; it is the
	// widening clock (see Problem.WidenAfter).
	grows := make(map[*ir.Block]int, len(order))

	inQueue := make([]bool, len(order))
	queue := make([]int, 0, len(order))
	push := func(b *ir.Block) {
		i, ok := idx[b]
		if !ok || inQueue[i] {
			return
		}
		inQueue[i] = true
		queue = append(queue, i)
	}
	for _, b := range order {
		push(b)
	}

	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		inQueue[i] = false
		b := order[i]

		next := p.Bottom()
		if isBoundary(b) {
			next, _ = p.Join(next, p.Boundary(f))
		}
		for _, s := range sources(b) {
			if out, ok := post[s]; ok {
				next, _ = p.Join(next, out)
			}
		}
		first := !visited[b]
		if !first {
			merged, changed := p.Join(p.Clone(pre[b]), next)
			if !changed {
				continue
			}
			grows[b]++
			if p.Widen != nil && grows[b] > widenAfter {
				merged = p.Widen(pre[b], merged)
			}
			next = merged
		}
		visited[b] = true
		pre[b] = next
		post[b] = p.Transfer(b, p.Clone(next))
		for _, s := range sinks(b) {
			push(s)
		}
	}

	res := Result[S]{In: pre, Out: post}
	if !p.Forward {
		res.In, res.Out = post, pre
	}
	return res
}
