package analysis

import (
	"strings"
	"testing"

	"wytiwyg/internal/ir"
	"wytiwyg/internal/layout"
)

// alloca appends a stack object of the given size at sp0-relative offset.
func alloca(f *ir.Func, b *ir.Block, name string, off int32, size uint32) *ir.Value {
	a := f.NewValue(ir.OpAlloca)
	a.Name = name
	a.Const = off
	a.AllocSize = size
	a.Align = 4
	b.Append(a)
	return a
}

func load(f *ir.Func, b *ir.Block, addr *ir.Value) *ir.Value {
	l := f.NewValue(ir.OpLoad, addr)
	l.Size = 4
	b.Append(l)
	return l
}

func store(f *ir.Func, b *ir.Block, addr, val *ir.Value) *ir.Value {
	s := f.NewValue(ir.OpStore, addr, val)
	s.Size = 4
	b.Append(s)
	return s
}

func TestEscape(t *testing.T) {
	_, f, b := mkFunc("f")
	kept := alloca(f, b, "kept", -8, 8)
	leaked := alloca(f, b, "leaked", -16, 8)
	k := konst(f, b, 4)
	ptr := f.NewValue(ir.OpAdd, kept, k)
	b.Append(ptr)
	store(f, b, ptr, k)
	_ = load(f, b, kept)
	// leaked's address is passed to an external call.
	call := f.NewValue(ir.OpCallExt, leaked)
	call.Sym = "use"
	call.NumRet = 1
	b.Append(call)
	b.Append(f.NewValue(ir.OpRet, k))

	esc := Escape(f)
	if esc.Escaped[kept] {
		t.Error("kept should not escape")
	}
	if !esc.Escaped[leaked] {
		t.Error("leaked should escape")
	}
	if esc.Roots[ptr] != kept {
		t.Error("ptr not rooted at kept")
	}
}

func TestEscapeStoredAddress(t *testing.T) {
	_, f, b := mkFunc("f")
	a := alloca(f, b, "a", -8, 8)
	c := alloca(f, b, "c", -16, 8)
	store(f, b, c, a) // a's address stored into memory: escapes
	b.Append(f.NewValue(ir.OpRet, konst(f, b, 0)))

	esc := Escape(f)
	if !esc.Escaped[a] {
		t.Error("stored address must escape")
	}
	if esc.Escaped[c] {
		t.Error("store destination alone must not escape")
	}
}

func TestEscapeConflictBothEscape(t *testing.T) {
	// A value derived from two different allocas makes both unknown.
	_, f, entry := mkFunc("f")
	a := alloca(f, entry, "a", -8, 8)
	c := alloca(f, entry, "c", -16, 8)
	thenB, elseB, exit := diamond(f, entry)
	entry.Append(f.NewValue(ir.OpBr, konst(f, entry, 1)))
	thenB.Append(f.NewValue(ir.OpJmp))
	elseB.Append(f.NewValue(ir.OpJmp))
	phi := f.NewValue(ir.OpPhi, a, c)
	exit.AddPhi(phi)
	_ = load(f, exit, phi)
	exit.Append(f.NewValue(ir.OpRet, konst(f, exit, 0)))

	esc := Escape(f)
	if !esc.Escaped[a] || !esc.Escaped[c] {
		t.Error("both allocas of a conflicting phi must escape")
	}
}

func TestBoundsProvenAndViolation(t *testing.T) {
	_, f, b := mkFunc("f")
	a := alloca(f, b, "a", -8, 8)
	k4 := konst(f, b, 4)
	in := f.NewValue(ir.OpAdd, a, k4)
	b.Append(in)
	_ = load(f, b, in) // [4,8): inside
	k12 := konst(f, b, 12)
	out := f.NewValue(ir.OpAdd, a, k12)
	b.Append(out)
	oob := load(f, b, out) // [12,16): outside [0,8)
	b.Append(f.NewValue(ir.OpRet, oob))

	var rep Report
	st := CheckBounds(f, &rep)
	if st.Proven != 1 || st.Violations != 1 || st.Unproven != 0 {
		t.Fatalf("stats: %+v\n%s", st, rep.String())
	}
	if rep.Errors() != 1 {
		t.Fatalf("want 1 error, got report:\n%s", rep.String())
	}
	if !strings.Contains(rep.Diags[0].Msg, "out of bounds") {
		t.Errorf("unexpected message %q", rep.Diags[0].Msg)
	}
}

func TestBoundsLoopIndexUnproven(t *testing.T) {
	// i = phi(0, i+4); load a[i] — the widened interval leaks past the
	// object, so the access is unprovable (Warn), not a proven violation.
	_, f, entry := mkFunc("f")
	a := alloca(f, entry, "a", -16, 16)
	zero := konst(f, entry, 0)
	header := f.NewBlock(0)
	body := f.NewBlock(0)
	exit := f.NewBlock(0)
	edge(entry, header)
	edge(header, body)
	edge(header, exit)
	edge(body, header)
	entry.Append(f.NewValue(ir.OpJmp))

	phi := f.NewValue(ir.OpPhi, zero, nil)
	header.AddPhi(phi)
	header.Append(f.NewValue(ir.OpBr, konst(f, header, 1)))

	addr := f.NewValue(ir.OpAdd, a, phi)
	body.Append(addr)
	_ = load(f, body, addr)
	next := f.NewValue(ir.OpAdd, phi, konst(f, body, 4))
	body.Append(next)
	phi.Args[1] = next
	body.Append(f.NewValue(ir.OpJmp))
	exit.Append(f.NewValue(ir.OpRet, phi))

	var rep Report
	st := CheckBounds(f, &rep)
	if st.Violations != 0 {
		t.Fatalf("no violation expected:\n%s", rep.String())
	}
	if st.Unproven != 1 {
		t.Fatalf("want 1 unproven access, got %+v\n%s", st, rep.String())
	}
}

func TestBoundsMaskedIndexProven(t *testing.T) {
	// An index masked to [0, 12] keeps a 4-byte access inside a 16-byte
	// object even when the index source is unknown.
	_, f, b := mkFunc("f")
	a := alloca(f, b, "a", -16, 16)
	raw := load(f, b, a) // unknown number
	mask := konst(f, b, 12)
	idx := f.NewValue(ir.OpAnd, raw, mask)
	b.Append(idx)
	addr := f.NewValue(ir.OpAdd, a, idx)
	b.Append(addr)
	_ = load(f, b, addr)
	b.Append(f.NewValue(ir.OpRet, raw))

	var rep Report
	st := CheckBounds(f, &rep)
	if st.Proven != 2 || st.Violations != 0 || st.Unproven != 0 {
		t.Fatalf("stats: %+v\n%s", st, rep.String())
	}
}

func TestInitCheck(t *testing.T) {
	// Diamond: only one arm stores to the slot — the load after the join
	// may read uninitialized memory; after a store on both arms it may not.
	_, f, entry := mkFunc("f")
	a := alloca(f, entry, "a", -8, 8)
	good := alloca(f, entry, "good", -16, 8)
	k := konst(f, entry, 7)
	store(f, entry, good, k)
	thenB, elseB, exit := diamond(f, entry)
	entry.Append(f.NewValue(ir.OpBr, k))
	store(f, thenB, a, k)
	thenB.Append(f.NewValue(ir.OpJmp))
	elseB.Append(f.NewValue(ir.OpJmp))
	_ = load(f, exit, a)
	_ = load(f, exit, good)
	exit.Append(f.NewValue(ir.OpRet, k))

	var rep Report
	esc := Escape(f)
	flagged := CheckInit(f, esc, &rep)
	if flagged != 1 {
		t.Fatalf("want exactly the half-initialized load flagged, got %d:\n%s",
			flagged, rep.String())
	}
	if !strings.Contains(rep.Diags[0].Msg, `"a"`) {
		t.Errorf("wrong slot flagged: %s", rep.Diags[0].Msg)
	}
}

func TestDeadStores(t *testing.T) {
	_, f, b := mkFunc("f")
	a := alloca(f, b, "a", -8, 8)
	used := alloca(f, b, "used", -16, 8)
	k := konst(f, b, 1)
	dead := store(f, b, a, k) // never loaded again
	store(f, b, used, k)
	lv := load(f, b, used)
	b.Append(f.NewValue(ir.OpRet, lv))

	esc := Escape(f)
	got := DeadStores(f, esc)
	if len(got) != 1 || got[0] != dead {
		t.Fatalf("dead stores: %v", got)
	}
}

func TestDeadStoresEscapedKept(t *testing.T) {
	_, f, b := mkFunc("f")
	a := alloca(f, b, "a", -8, 8)
	k := konst(f, b, 1)
	store(f, b, a, k)
	call := f.NewValue(ir.OpCallExt, a) // escapes: callee may observe
	call.Sym = "use"
	call.NumRet = 1
	b.Append(call)
	b.Append(f.NewValue(ir.OpRet, k))

	if got := DeadStores(f, Escape(f)); len(got) != 0 {
		t.Fatalf("escaped store must be kept: %v", got)
	}
}

func TestCheckFrame(t *testing.T) {
	_, f, b := mkFunc("f")
	alloca(f, b, "x", -8, 8)
	alloca(f, b, "cp_0", -24, 8) // call plumbing: not in the layout table
	b.Append(f.NewValue(ir.OpRet, konst(f, b, 0)))

	clean := &layout.Frame{Func: "f", Vars: []layout.Var{{Name: "x", Offset: -8, Size: 8}}}
	var rep Report
	CheckFrame(f, clean, &rep)
	if rep.Errors() != 0 {
		t.Fatalf("clean frame flagged:\n%s", rep.String())
	}

	shifted := &layout.Frame{Func: "f", Vars: []layout.Var{{Name: "x", Offset: -12, Size: 8}}}
	rep = Report{}
	CheckFrame(f, shifted, &rep)
	if rep.Errors() != 2 { // alloca unmatched + layout var unmatched
		t.Fatalf("shifted frame: want 2 errors:\n%s", rep.String())
	}

	shrunk := &layout.Frame{Func: "f", Vars: []layout.Var{{Name: "x", Offset: -8, Size: 4}}}
	rep = Report{}
	CheckFrame(f, shrunk, &rep)
	if rep.Errors() == 0 {
		t.Fatalf("shrunk frame not flagged:\n%s", rep.String())
	}

	overlap := &layout.Frame{Func: "f", Vars: []layout.Var{
		{Name: "x", Offset: -8, Size: 8}, {Name: "y", Offset: -10, Size: 8},
	}}
	rep = Report{}
	CheckFrame(f, overlap, &rep)
	found := false
	for _, d := range rep.Diags {
		if strings.Contains(d.Msg, "overlap") {
			found = true
		}
	}
	if !found {
		t.Fatalf("overlapping layout vars not flagged:\n%s", rep.String())
	}
}

func TestCheckRefCoverage(t *testing.T) {
	_, f, b := mkFunc("f")
	alloca(f, b, "x", -8, 8)
	b.Append(f.NewValue(ir.OpRet, konst(f, b, 0)))

	facts := HeightFacts{Refs: []HeightRef{
		{Off: -8, Size: 4, Loc: "f:b0:i0"},  // covered
		{Off: -12, Size: 4, Loc: "f:b0:i1"}, // below every object
		{Off: -2, Size: 4, Loc: "f:b0:i2"},  // straddles x's end
		{Off: 4, Size: 4, Loc: "f:b0:i3"},   // incoming argument: skipped
	}}
	var rep Report
	CheckRefCoverage(f, facts, &rep)
	if rep.Errors() != 2 {
		t.Fatalf("want 2 uncovered refs, got:\n%s", rep.String())
	}
}

func TestReportRendering(t *testing.T) {
	var rep Report
	rep.Add(Diag{Check: "bounds", Severity: Warn, Func: "f", Loc: "f:b0:i1", Msg: "w"})
	rep.Add(Diag{Check: "frame", Severity: Error, Func: "f", Msg: "e"})
	rep.Sort()
	if rep.Diags[0].Severity != Error {
		t.Error("sort must put errors first")
	}
	text := rep.String()
	if !strings.Contains(text, "lint: 1 error(s), 1 warning(s), 0 info") {
		t.Errorf("summary line missing:\n%s", text)
	}
	js, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"errors": 1`, `"severity": "error"`, `"check": "frame"`} {
		if !strings.Contains(string(js), want) {
			t.Errorf("JSON missing %s:\n%s", want, js)
		}
	}
}
