package analysis

import "wytiwyg/internal/ir"

// Dead-store analysis: a backward may-liveness over allocas. An alloca is
// live at a program point when some path from that point may still load
// from it (directly, through an unknown pointer if it has escaped, or
// inside a callee if it has escaped). A store to a non-escaped alloca that
// is dead right after the store can never be observed — the frame vanishes
// at return — so the optimizer may delete it. The analysis is
// offset-insensitive: it never treats an overwriting store as a kill,
// which only errs toward keeping stores.

type liveEnv map[*ir.Value]bool

func cloneLive(e liveEnv) liveEnv {
	out := make(liveEnv, len(e))
	for k := range e {
		out[k] = true
	}
	return out
}

func joinLive(dst, src liveEnv) (liveEnv, bool) {
	changed := false
	for k := range src {
		if !dst[k] {
			dst[k] = true
			changed = true
		}
	}
	return dst, changed
}

// liveTransfer applies one instruction's effect to the live set, walking
// backward: loads (and anything that could load — calls, unknown-pointer
// dereferences) generate liveness.
func liveTransfer(v *ir.Value, live liveEnv, esc EscapeFacts) {
	markEscaped := func() {
		for a := range esc.Escaped {
			live[a] = true
		}
	}
	switch v.Op {
	case ir.OpLoad:
		if root, ok := esc.Roots[v.Args[0]]; ok {
			live[root] = true
		} else {
			markEscaped()
		}
	case ir.OpCall, ir.OpCallInd, ir.OpCallExt, ir.OpCallExtRaw:
		markEscaped()
	}
}

// DeadStores returns f's provably dead stack stores: stores to a
// non-escaped alloca that no later load can observe.
func DeadStores(f *ir.Func, esc EscapeFacts) []*ir.Value {
	prob := Problem[liveEnv]{
		Forward: false,
		// At function exit only escaped allocas can still be observed.
		Boundary: func(*ir.Func) liveEnv { return cloneLive(liveEnv(esc.Escaped)) },
		Bottom:   func() liveEnv { return liveEnv{} },
		Join:     joinLive,
		Clone:    cloneLive,
		Transfer: func(b *ir.Block, out liveEnv) liveEnv {
			for i := len(b.Insts) - 1; i >= 0; i-- {
				liveTransfer(b.Insts[i], out, esc)
			}
			return out
		},
	}
	res := Solve(f, prob)
	var dead []*ir.Value
	for _, b := range f.Blocks {
		out, ok := res.Out[b]
		if !ok {
			continue
		}
		live := cloneLive(out)
		for i := len(b.Insts) - 1; i >= 0; i-- {
			v := b.Insts[i]
			if v.Op == ir.OpStore {
				if root, ok := esc.Roots[v.Args[0]]; ok && !esc.Escaped[root] && !live[root] {
					dead = append(dead, v)
				}
			}
			liveTransfer(v, live, esc)
		}
	}
	return dead
}

// CheckDeadStores reports dead stores as Info findings and returns them.
func CheckDeadStores(f *ir.Func, esc EscapeFacts, rep *Report) []*ir.Value {
	dead := DeadStores(f, esc)
	for _, v := range dead {
		root := esc.Roots[v.Args[0]]
		rep.Addf("deadstore", Info, f.Name, v,
			"store to %q is never loaded afterwards", root.Name)
	}
	return dead
}
