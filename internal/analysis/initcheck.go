package analysis

import "wytiwyg/internal/ir"

// Definite-initialization analysis for promoted stack slots: a forward
// must-analysis tracking which allocas have been stored to on *every* path
// from entry. A load through a slot outside that set may read memory no
// one initialized — legitimate in lifted binary code (padding, spilled
// don't-care bytes) but suspicious enough to surface, so it reports Warn
// rather than Error. Granularity is per-object: one store anywhere inside
// an object initializes it, which keeps the check cheap and errs toward
// silence rather than noise.

// initState is the must-set of initialized allocas. all is the optimistic
// bottom (the identity of intersection: "every alloca", before any path
// has been seen).
type initState struct {
	all bool
	set map[*ir.Value]bool
}

func cloneInit(s initState) initState {
	out := initState{all: s.all, set: make(map[*ir.Value]bool, len(s.set))}
	for k := range s.set {
		out.set[k] = true
	}
	return out
}

func joinInit(dst, src initState) (initState, bool) {
	if src.all {
		return dst, false
	}
	if dst.all {
		return cloneInit(src), true
	}
	changed := false
	for k := range dst.set {
		if !src.set[k] {
			delete(dst.set, k)
			changed = true
		}
	}
	return dst, changed
}

// initTransfer applies one instruction's effect to the must-set. Stores
// through an unknown pointer and calls can only touch escaped objects, so
// they conservatively initialize exactly those.
func initTransfer(v *ir.Value, st initState, esc EscapeFacts) {
	markEscaped := func() {
		for a := range esc.Escaped {
			st.set[a] = true
		}
	}
	switch v.Op {
	case ir.OpStore:
		if root, ok := esc.Roots[v.Args[0]]; ok {
			st.set[root] = true
		} else {
			markEscaped()
		}
	case ir.OpCall, ir.OpCallInd, ir.OpCallExt, ir.OpCallExtRaw:
		markEscaped()
	}
}

// CheckInit reports loads from stack slots that some path reaches without
// a prior store. Returns the number of flagged loads.
func CheckInit(f *ir.Func, esc EscapeFacts, rep *Report) int {
	prob := Problem[initState]{
		Forward:  true,
		Boundary: func(*ir.Func) initState { return initState{set: map[*ir.Value]bool{}} },
		Bottom:   func() initState { return initState{all: true} },
		Join:     joinInit,
		Clone:    cloneInit,
		Transfer: func(b *ir.Block, in initState) initState {
			for _, v := range b.Insts {
				initTransfer(v, in, esc)
			}
			return in
		},
	}
	res := Solve(f, prob)
	flagged := 0
	for _, b := range f.Blocks {
		in, ok := res.In[b]
		if !ok || in.all {
			continue
		}
		st := cloneInit(in)
		for _, v := range b.Insts {
			if v.Op == ir.OpLoad {
				if root, ok := esc.Roots[v.Args[0]]; ok && !st.set[root] {
					flagged++
					rep.Addf("init", Warn, f.Name, v,
						"load from %q may read uninitialized stack memory", root.Name)
				}
			}
			initTransfer(v, st, esc)
		}
	}
	return flagged
}
