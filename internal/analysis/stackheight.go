package analysis

import (
	"fmt"

	"wytiwyg/internal/ir"
	"wytiwyg/internal/isa"
	"wytiwyg/internal/layout"
)

// Stack-height analysis: an engine-driven abstract interpretation of esp
// deltas that re-derives, independently of internal/stackref's SCCP solver,
// which values are constant displacements from the entry stack pointer. It
// runs on the pre-symbolization IR (the ESP parameter still exists there)
// and its facts are consumed twice: immediately, to cross-check the
// offsets the pipeline canonicalized (CheckHeights), and after
// symbolization, to check every remembered stack reference against the
// extent of the recovered stack objects (CheckRefCoverage). A disagreement
// on either side is a proven pipeline bug, not a property of the input
// program, and is reported as an Error.

// Flat height lattice: unknown (optimistic bottom) -> known displacement ->
// not sp0-relative (top).
const (
	hBottom uint8 = iota
	hKnown
	hTop
)

type height struct {
	k uint8
	c int32
}

func joinHeight(a, b height) height {
	switch {
	case a.k == hBottom:
		return b
	case b.k == hBottom:
		return a
	case a.k == hKnown && b.k == hKnown && a.c == b.c:
		return a
	}
	return height{k: hTop}
}

type heightEnv map[*ir.Value]height

func cloneHeights(e heightEnv) heightEnv {
	out := make(heightEnv, len(e))
	for k, v := range e {
		out[k] = v
	}
	return out
}

func joinHeights(dst, src heightEnv) (heightEnv, bool) {
	changed := false
	for k, sv := range src {
		dv, ok := dst[k]
		if !ok {
			dst[k] = sv
			changed = true
			continue
		}
		nv := joinHeight(dv, sv)
		if nv != dv {
			dst[k] = nv
			changed = true
		}
	}
	return dst, changed
}

func evalHeight(v, esp *ir.Value, env heightEnv) height {
	get := func(a *ir.Value) height { return env[a] }
	lift := func(h height, delta int32) height {
		if h.k == hKnown {
			return height{k: hKnown, c: h.c + delta}
		}
		if h.k == hBottom {
			return h
		}
		return height{k: hTop}
	}
	switch v.Op {
	case ir.OpParam:
		if v == esp {
			return height{k: hKnown, c: 0}
		}
		return height{k: hTop}
	case ir.OpSP0:
		return height{k: hKnown, c: 0}
	case ir.OpAdd:
		if k, ok := constOf(v.Args[1]); ok {
			return lift(get(v.Args[0]), k)
		}
		if k, ok := constOf(v.Args[0]); ok {
			return lift(get(v.Args[1]), k)
		}
		return height{k: hTop}
	case ir.OpSub:
		if k, ok := constOf(v.Args[1]); ok {
			return lift(get(v.Args[0]), -k)
		}
		return height{k: hTop}
	case ir.OpExtract:
		call := v.Args[0]
		var callee *ir.Func
		base := 0
		switch call.Op {
		case ir.OpCall:
			callee = call.Callee
		case ir.OpCallInd:
			if len(call.Targets) == 0 {
				return height{k: hTop}
			}
			callee = call.Targets[0]
			base = 1
		default:
			return height{k: hTop}
		}
		if v.Idx >= len(callee.RetRegs) || callee.RetRegs[v.Idx] != isa.ESP {
			return height{k: hTop}
		}
		espIdx := -1
		for i, p := range callee.Params {
			if p.RegHint == isa.ESP {
				espIdx = i
				break
			}
		}
		if espIdx < 0 {
			return height{k: hTop}
		}
		// A balanced callee's returned esp is its entry esp plus the popped
		// return address.
		return lift(get(call.Args[base+espIdx]), 4)
	case ir.OpPhi:
		out := height{k: hBottom}
		for _, a := range v.Args {
			if a == v {
				continue
			}
			out = joinHeight(out, get(a))
		}
		return out
	}
	return height{k: hTop}
}

// HeightRef remembers one memory access through an sp0-relative address.
// The location string is captured eagerly because symbolization rewrites
// the values the analysis saw.
type HeightRef struct {
	Off  int32  // sp0-relative offset
	Size uint8  // access width in bytes
	Loc  string // stable func:block:idx location of the access
}

// HeightFacts is the result of the stack-height analysis of one function.
type HeightFacts struct {
	// Known maps each value proved to be a constant displacement from sp0
	// to that displacement.
	Known map[*ir.Value]int32
	// Refs lists the loads and stores whose address had a known height.
	Refs []HeightRef
}

// Heights abstract-interprets f's esp deltas. Functions without an ESP
// parameter (already symbolized) yield empty facts.
func Heights(f *ir.Func) HeightFacts {
	facts := HeightFacts{Known: make(map[*ir.Value]int32)}
	esp := f.ParamByReg(isa.ESP)
	if esp == nil {
		return facts
	}
	facts.Known[esp] = 0
	prob := Problem[heightEnv]{
		Forward:  true,
		Boundary: func(*ir.Func) heightEnv { return heightEnv{esp: {k: hKnown, c: 0}} },
		Bottom:   func() heightEnv { return heightEnv{} },
		Join:     joinHeights,
		Clone:    cloneHeights,
		Transfer: func(b *ir.Block, in heightEnv) heightEnv {
			for _, v := range b.Phis {
				in[v] = evalHeight(v, esp, in)
			}
			for _, v := range b.Insts {
				if v.Op.HasResult() {
					in[v] = evalHeight(v, esp, in)
				}
			}
			return in
		},
	}
	res := Solve(f, prob)
	for _, b := range f.Blocks {
		env, ok := res.Out[b]
		if !ok {
			continue
		}
		record := func(v *ir.Value) {
			if h, ok := env[v]; ok && h.k == hKnown {
				facts.Known[v] = h.c
			}
		}
		for _, v := range b.Phis {
			record(v)
		}
		for _, v := range b.Insts {
			if v.Op.HasResult() {
				record(v)
			}
			if v.Op == ir.OpLoad || v.Op == ir.OpStore {
				if h, ok := env[v.Args[0]]; ok && h.k == hKnown {
					size := v.Size
					if size == 0 {
						size = 4
					}
					facts.Refs = append(facts.Refs, HeightRef{
						Off: h.c, Size: size, Loc: v.Location(),
					})
				}
			}
		}
	}
	return facts
}

// CheckHeights cross-checks the displacements the stackref refinement
// canonicalized against the independently derived facts. canon is the
// pipeline's own offset table (stackref.Offsets).
func CheckHeights(f *ir.Func, facts HeightFacts, canon map[*ir.Value]int32, rep *Report) {
	for v, c := range canon {
		h, ok := facts.Known[v]
		if !ok {
			rep.Addf("height", Warn, f.Name, v,
				"pipeline canonicalized value as sp0%+d but height analysis cannot confirm it", c)
			continue
		}
		if h != c {
			rep.Addf("height", Error, f.Name, v,
				"pipeline canonicalized value as sp0%+d but height analysis derives sp0%+d", c, h)
		}
	}
	// Unprovable stack balance at calls and returns is worth surfacing: an
	// unbalanced frame is exactly the failure mode that breaks the
	// sp0-relative model.
	balance := func(v *ir.Value, callee *ir.Func, base int) {
		espIdx := -1
		for i, p := range callee.Params {
			if p.RegHint == isa.ESP {
				espIdx = i
				break
			}
		}
		if espIdx < 0 || base+espIdx >= len(v.Args) {
			return
		}
		if _, ok := facts.Known[v.Args[base+espIdx]]; !ok {
			rep.Addf("height", Warn, f.Name, v,
				"cannot prove stack height at call to %s", callee.Name)
		}
	}
	for _, b := range f.Blocks {
		for _, v := range b.Insts {
			switch v.Op {
			case ir.OpCall:
				balance(v, v.Callee, 0)
			case ir.OpCallInd:
				if len(v.Targets) > 0 {
					balance(v, v.Targets[0], 1)
				}
			case ir.OpRet:
				if i := f.RetIndexOf(isa.ESP); i >= 0 && i < len(v.Args) {
					if _, ok := facts.Known[v.Args[i]]; !ok {
						rep.Addf("height", Warn, f.Name, v,
							"cannot prove stack height at return")
					}
				}
			}
		}
	}
}

// CheckRefCoverage checks every remembered stack reference of one function
// against the symbolized frame: a reference to a local slot (negative
// sp0 offset) must land inside exactly one recovered stack object,
// including the call-plumbing objects the layout table omits. A reference
// the objects do not cover means the recovered frame is too small for the
// accesses the pipeline itself proved — a miscompilation witness.
func CheckRefCoverage(f *ir.Func, facts HeightFacts, rep *Report) {
	var objects []layout.Var
	for _, b := range f.Blocks {
		for _, v := range b.Insts {
			if v.Op == ir.OpAlloca {
				objects = append(objects, layout.Var{
					Name: v.Name, Offset: v.Const, Size: v.AllocSize,
				})
			}
		}
	}
	for _, ref := range facts.Refs {
		if ref.Off >= 0 {
			// Return-address slot or incoming stack argument: not part of
			// the local frame.
			continue
		}
		access := layout.Var{Offset: ref.Off, Size: uint32(ref.Size)}
		covered := false
		for _, obj := range objects {
			if obj.Covers(access) {
				covered = true
				break
			}
		}
		if !covered {
			rep.Add(Diag{
				Check: "height", Severity: Error, Func: f.Name, Loc: ref.Loc,
				Msg: fmt.Sprintf("traced stack reference [%d,%d) is not covered by any recovered stack object",
					ref.Off, access.End()),
			})
		}
	}
}
