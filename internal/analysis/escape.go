package analysis

import "wytiwyg/internal/ir"

// Frame-escape analysis. An alloca's address "escapes" when it leaves the
// function's own address arithmetic: it is stored to memory as a value,
// passed to a call, returned, or consumed by an operation that is not a
// load/store address, further arithmetic, a phi, or an address comparison.
// Non-escaping allocas cannot alias unknown pointers and cannot be touched
// by callees — the facts that make mem2reg promotion and store elimination
// provably safe (paper §2.1's aliasing argument).

// EscapeFacts bundles the address-derivation and escape facts of one
// function.
type EscapeFacts struct {
	// Roots maps every value provably derived from a single alloca
	// (through add/sub arithmetic and phis) to that alloca. Values mixing
	// two different allocas are absent.
	Roots map[*ir.Value]*ir.Value
	// Escaped holds the allocas whose address escapes.
	Escaped map[*ir.Value]bool
}

// Escape computes the escape facts for one function.
func Escape(f *ir.Func) EscapeFacts {
	roots := make(map[*ir.Value]*ir.Value)
	conflict := make(map[*ir.Value]bool)
	esc := make(map[*ir.Value]bool)
	for _, b := range f.Blocks {
		for _, v := range b.Insts {
			if v.Op == ir.OpAlloca {
				roots[v] = v
			}
		}
	}
	// propagate folds source root r into v's root. A value reachable from
	// two different allocas is an unknown pointer; anything it does could
	// touch either object, so both conservatively escape.
	propagate := func(v *ir.Value, r *ir.Value) bool {
		if r == nil {
			return false
		}
		if conflict[v] {
			esc[r] = true
			return false
		}
		if cur, ok := roots[v]; ok {
			if cur != r {
				delete(roots, v)
				conflict[v] = true
				esc[cur] = true
				esc[r] = true
				return true
			}
			return false
		}
		roots[v] = r
		return true
	}
	for changed := true; changed; {
		changed = false
		for _, b := range f.Blocks {
			for _, v := range b.Insts {
				switch v.Op {
				case ir.OpAdd:
					if propagate(v, roots[v.Args[0]]) {
						changed = true
					}
					if propagate(v, roots[v.Args[1]]) {
						changed = true
					}
				case ir.OpSub:
					if propagate(v, roots[v.Args[0]]) {
						changed = true
					}
				}
			}
			for _, v := range b.Phis {
				for _, a := range v.Args {
					if a == v {
						continue
					}
					if propagate(v, roots[a]) {
						changed = true
					}
				}
			}
		}
	}
	u := uses(f)
	for v, root := range roots {
		for _, use := range u[v] {
			switch use.Op {
			case ir.OpLoad:
				// Address position: fine.
			case ir.OpStore:
				if use.Args[0] != v {
					esc[root] = true // the address itself is stored
				}
			case ir.OpAdd, ir.OpSub, ir.OpPhi:
				// Covered by root propagation.
			case ir.OpCmp:
				// Comparing addresses does not escape them.
			default:
				esc[root] = true
			}
		}
	}
	return EscapeFacts{Roots: roots, Escaped: esc}
}

// Escapes returns just the escape set of f.
func Escapes(f *ir.Func) map[*ir.Value]bool { return Escape(f).Escaped }
