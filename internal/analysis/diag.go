package analysis

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"wytiwyg/internal/ir"
)

// Severity ranks a diagnostic.
type Severity uint8

// Diagnostic severities. Error means the analysis *proved* a violation of a
// layout invariant (a miscompilation witness); Warn means it could not
// prove safety (an access it cannot bound, a possibly-uninitialized read);
// Info carries facts that are useful but not suspicious (dead stores).
const (
	Info Severity = iota
	Warn
	Error
)

var severityNames = [...]string{"info", "warn", "error"}

func (s Severity) String() string {
	if int(s) < len(severityNames) {
		return severityNames[s]
	}
	return fmt.Sprintf("sev%d", uint8(s))
}

// MarshalJSON renders the severity as its name.
func (s Severity) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON parses a severity name back (the refinement cache stores
// reports as JSON and reads them on later runs).
func (s *Severity) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	for i, n := range severityNames {
		if n == name {
			*s = Severity(i)
			return nil
		}
	}
	return fmt.Errorf("analysis: unknown severity %q", name)
}

// Diag is one finding.
type Diag struct {
	// Check names the analysis that produced the finding (frame, bounds,
	// height, init, deadstore, verify).
	Check string `json:"check"`
	// Severity grades the finding (Info, Warn, Error).
	Severity Severity `json:"severity"`
	// Func is the function the finding is in.
	Func string `json:"func"`
	// Loc is the stable func:block:idx location of the offending value
	// (empty for function-level findings).
	Loc string `json:"loc,omitempty"`
	// Msg is the human-readable finding text.
	Msg string `json:"msg"`
}

func (d Diag) String() string {
	loc := d.Loc
	if loc == "" {
		loc = d.Func
	}
	return fmt.Sprintf("%s [%s] %s: %s", d.Severity, d.Check, loc, d.Msg)
}

// Report collects the diagnostics of one lint run.
type Report struct {
	Diags []Diag `json:"diagnostics"` // findings, in Add order until Sort
}

// Add records one finding.
func (r *Report) Add(d Diag) { r.Diags = append(r.Diags, d) }

// Addf records a finding located at value v (which may be nil for
// function-level findings).
func (r *Report) Addf(check string, sev Severity, fn string, v *ir.Value, format string, args ...any) {
	d := Diag{Check: check, Severity: sev, Func: fn, Msg: fmt.Sprintf(format, args...)}
	if v != nil {
		d.Loc = v.Location()
	}
	r.Add(d)
}

// Merge appends another report's findings.
func (r *Report) Merge(o *Report) {
	if o != nil {
		r.Diags = append(r.Diags, o.Diags...)
	}
}

// Count returns the number of findings at exactly the given severity.
func (r *Report) Count(sev Severity) int {
	n := 0
	for _, d := range r.Diags {
		if d.Severity == sev {
			n++
		}
	}
	return n
}

// Errors is shorthand for Count(Error): the number of proven violations.
func (r *Report) Errors() int { return r.Count(Error) }

// Sort orders findings by severity (errors first), then function, then
// location, for stable output.
func (r *Report) Sort() {
	sort.SliceStable(r.Diags, func(i, j int) bool {
		a, b := r.Diags[i], r.Diags[j]
		if a.Severity != b.Severity {
			return a.Severity > b.Severity
		}
		if a.Func != b.Func {
			return a.Func < b.Func
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Loc < b.Loc
	})
}

// String renders the report as human-readable text, one finding per line,
// followed by a summary.
func (r *Report) String() string {
	var b strings.Builder
	for _, d := range r.Diags {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "lint: %d error(s), %d warning(s), %d info\n",
		r.Count(Error), r.Count(Warn), r.Count(Info))
	return b.String()
}

// jsonReport is the envelope of the machine-readable output.
type jsonReport struct {
	Diagnostics []Diag `json:"diagnostics"`
	Errors      int    `json:"errors"`
	Warnings    int    `json:"warnings"`
	Infos       int    `json:"infos"`
}

// JSON renders the report as a structured document.
func (r *Report) JSON() ([]byte, error) {
	env := jsonReport{
		Diagnostics: r.Diags,
		Errors:      r.Count(Error),
		Warnings:    r.Count(Warn),
		Infos:       r.Count(Info),
	}
	if env.Diagnostics == nil {
		env.Diagnostics = []Diag{}
	}
	return json.MarshalIndent(env, "", "  ")
}
