package analysis

import "testing"

func TestIntervalArith(t *testing.T) {
	a := Span(1, 3)
	b := Span(10, 20)
	if got := a.Add(b); got != Span(11, 23) {
		t.Errorf("add: %v", got)
	}
	if got := b.Sub(a); got != Span(7, 19) {
		t.Errorf("sub: %v", got)
	}
	if got := a.Neg(); got != Span(-3, -1) {
		t.Errorf("neg: %v", got)
	}
	if got := a.Mul(Span(-2, 2)); got != Span(-6, 6) {
		t.Errorf("mul: %v", got)
	}
	if got := a.Union(Span(-5, 2)); got != Span(-5, 3) {
		t.Errorf("union: %v", got)
	}
}

func TestIntervalWrapGuard(t *testing.T) {
	// Arithmetic that can wrap 32-bit space must give up rather than claim
	// impossible bounds.
	big := Const(1 << 31)
	if got := big.Add(big); !got.IsTop() {
		t.Errorf("2^31+2^31 should be Top, got %v", got)
	}
	low := Const(-(1 << 30))
	if got := low.Add(low).Add(low); !got.IsTop() {
		t.Errorf("-3*2^30 should be Top, got %v", got)
	}
	if got := Const(1 << 20).Mul(Const(1 << 20)); !got.IsTop() {
		t.Errorf("2^40 product should be Top, got %v", got)
	}
}

func TestIntervalWiden(t *testing.T) {
	prev := Span(0, 4)
	next := Span(0, 8)
	w := next.WidenFrom(prev)
	if w.Lo != 0 || w.Hi != PosInf {
		t.Errorf("widen grew-hi: %v", w)
	}
	w = Span(-4, 4).WidenFrom(prev)
	if w.Lo != NegInf || w.Hi != 4 {
		t.Errorf("widen grew-lo: %v", w)
	}
	if w := prev.WidenFrom(prev); w != prev {
		t.Errorf("widen stable: %v", w)
	}
}

func TestIntervalBounds(t *testing.T) {
	if got := AndMask(0xFF); got != Span(0, 0xFF) {
		t.Errorf("andmask: %v", got)
	}
	if !AndMask(-1).IsTop() {
		t.Error("negative mask must be Top")
	}
	if got := ZextBound(1); got != Span(0, 0xFF) {
		t.Errorf("zext1: %v", got)
	}
	if got := SextBound(2); got != Span(-0x8000, 0x7FFF) {
		t.Errorf("sext2: %v", got)
	}
	if c, ok := Const(7).Exact(); !ok || c != 7 {
		t.Error("const not exact")
	}
	if _, ok := Span(1, 2).Exact(); ok {
		t.Error("span reported exact")
	}
}
