package analysis

import (
	"wytiwyg/internal/ir"
)

// Static bounds checking of symbolized stack accesses. Every load/store
// whose address is provably alloca+offset must land inside the recovered
// object's [0, AllocSize) — symbolization promised exactly that when it
// partitioned the frame (paper §4.2). The checker runs an interval analysis
// (abstract interpretation with widening) over each function and
// classifies every stack access as proven in-bounds, unprovable (Warn), or
// definitely out of bounds (Error — a miscompilation witness: the access
// escapes the object the symbolizer assigned it to).

// absVal abstracts one SSA value: a pointer into a specific alloca with an
// offset interval (base != nil), or a plain number with a value interval.
// "Unknown anything" is {nil, Top}.
type absVal struct {
	base *ir.Value
	rng  Interval
}

var unknown = absVal{rng: Top}

// joinVal is the lattice join of two abstract values.
func joinVal(a, b absVal) absVal {
	if a.base != b.base {
		return unknown
	}
	return absVal{base: a.base, rng: a.rng.Union(b.rng)}
}

// boundsEnv is the engine state: the abstract value of every SSA value
// computed so far. Missing keys are bottom (not yet evaluated).
type boundsEnv map[*ir.Value]absVal

func cloneEnv(e boundsEnv) boundsEnv {
	out := make(boundsEnv, len(e))
	for k, v := range e {
		out[k] = v
	}
	return out
}

func joinEnv(dst, src boundsEnv) (boundsEnv, bool) {
	changed := false
	for k, sv := range src {
		dv, ok := dst[k]
		if !ok {
			dst[k] = sv
			changed = true
			continue
		}
		nv := joinVal(dv, sv)
		if nv != dv {
			dst[k] = nv
			changed = true
		}
	}
	return dst, changed
}

func widenEnv(prev, next boundsEnv) boundsEnv {
	for k, nv := range next {
		pv, ok := prev[k]
		if !ok || pv.base != nv.base {
			continue
		}
		nv.rng = nv.rng.WidenFrom(pv.rng)
		next[k] = nv
	}
	return next
}

// evalValue computes the abstract value of v under env.
func evalValue(v *ir.Value, env boundsEnv) absVal {
	get := func(a *ir.Value) absVal {
		if av, ok := env[a]; ok {
			return av
		}
		return unknown
	}
	switch v.Op {
	case ir.OpConst:
		return absVal{rng: Const(int64(v.Const))}
	case ir.OpAlloca:
		return absVal{base: v, rng: Const(0)}
	case ir.OpSP0:
		return unknown
	case ir.OpAdd:
		a, b := get(v.Args[0]), get(v.Args[1])
		switch {
		case a.base != nil && b.base == nil:
			return absVal{base: a.base, rng: a.rng.Add(b.rng)}
		case b.base != nil && a.base == nil:
			return absVal{base: b.base, rng: b.rng.Add(a.rng)}
		case a.base == nil && b.base == nil:
			return absVal{rng: a.rng.Add(b.rng)}
		}
		return unknown
	case ir.OpSub:
		a, b := get(v.Args[0]), get(v.Args[1])
		switch {
		case a.base != nil && b.base == nil:
			return absVal{base: a.base, rng: a.rng.Sub(b.rng)}
		case a.base == nil && b.base == nil:
			return absVal{rng: a.rng.Sub(b.rng)}
		case a.base != nil && a.base == b.base:
			// Pointer difference within one object: a plain number.
			return absVal{rng: a.rng.Sub(b.rng)}
		}
		return unknown
	case ir.OpMul:
		a, b := get(v.Args[0]), get(v.Args[1])
		if a.base == nil && b.base == nil {
			return absVal{rng: a.rng.Mul(b.rng)}
		}
		return unknown
	case ir.OpNeg:
		a := get(v.Args[0])
		if a.base == nil {
			return absVal{rng: a.rng.Neg()}
		}
		return unknown
	case ir.OpAnd:
		a, b := get(v.Args[0]), get(v.Args[1])
		if k, ok := constOf(v.Args[1]); ok && k >= 0 {
			return absVal{rng: AndMask(int64(k))}
		}
		if k, ok := constOf(v.Args[0]); ok && k >= 0 {
			return absVal{rng: AndMask(int64(k))}
		}
		if a.base == nil && b.base == nil && a.rng.Lo >= 0 && b.rng.Lo >= 0 {
			hi := a.rng.Hi
			if b.rng.Hi < hi {
				hi = b.rng.Hi
			}
			return absVal{rng: Span(0, hi)}
		}
		return unknown
	case ir.OpShl:
		a := get(v.Args[0])
		if k, ok := constOf(v.Args[1]); ok && k >= 0 && k < 32 && a.base == nil {
			return absVal{rng: a.rng.Mul(Const(int64(1) << uint(k)))}
		}
		return unknown
	case ir.OpShr, ir.OpSar:
		a := get(v.Args[0])
		if k, ok := constOf(v.Args[1]); ok && k >= 0 && k < 32 &&
			a.base == nil && a.rng.Lo >= 0 && !a.rng.IsTop() {
			return absVal{rng: Span(a.rng.Lo>>uint(k), a.rng.Hi>>uint(k))}
		}
		return unknown
	case ir.OpDiv:
		a := get(v.Args[0])
		if k, ok := constOf(v.Args[1]); ok && k > 0 && a.base == nil && !a.rng.IsTop() {
			return absVal{rng: Span(a.rng.Lo/int64(k), a.rng.Hi/int64(k))}
		}
		return unknown
	case ir.OpMod:
		a := get(v.Args[0])
		if k, ok := constOf(v.Args[1]); ok && k > 0 && a.base == nil {
			if a.rng.Lo >= 0 {
				return absVal{rng: Span(0, int64(k)-1)}
			}
			return absVal{rng: Span(-(int64(k) - 1), int64(k)-1)}
		}
		return unknown
	case ir.OpCmp:
		return absVal{rng: Span(0, 1)}
	case ir.OpZext:
		a := get(v.Args[0])
		bound := ZextBound(v.Size)
		if a.base == nil && a.rng.Lo >= 0 && a.rng.Hi <= bound.Hi {
			return absVal{rng: a.rng}
		}
		return absVal{rng: bound}
	case ir.OpSext:
		a := get(v.Args[0])
		bound := SextBound(v.Size)
		if a.base == nil && a.rng.Lo >= bound.Lo && a.rng.Hi <= bound.Hi {
			return absVal{rng: a.rng}
		}
		return absVal{rng: bound}
	case ir.OpPhi:
		out := absVal{}
		first := true
		for _, a := range v.Args {
			if a == v {
				continue
			}
			av, ok := env[a]
			if !ok {
				continue // bottom: optimistic
			}
			if first {
				out, first = av, false
			} else {
				out = joinVal(out, av)
			}
		}
		if first {
			return unknown
		}
		return out
	}
	return unknown
}

// evalBlock interprets one block under env, invoking hook on every
// instruction before its effect is recorded.
func evalBlock(b *ir.Block, env boundsEnv, hook func(v *ir.Value, env boundsEnv)) boundsEnv {
	for _, v := range b.Phis {
		env[v] = evalValue(v, env)
	}
	for _, v := range b.Insts {
		if hook != nil {
			hook(v, env)
		}
		if v.Op.HasResult() {
			env[v] = evalValue(v, env)
		}
	}
	return env
}

// boundsProblem is the interval-analysis instance of the engine.
func boundsProblem() Problem[boundsEnv] {
	return Problem[boundsEnv]{
		Forward:  true,
		Boundary: func(f *ir.Func) boundsEnv { return boundsEnv{} },
		Bottom:   func() boundsEnv { return boundsEnv{} },
		Join:     joinEnv,
		Clone:    cloneEnv,
		Transfer: func(b *ir.Block, in boundsEnv) boundsEnv { return evalBlock(b, in, nil) },
		Widen:    widenEnv,
	}
}

// BoundsStats summarizes one function's accesses.
type BoundsStats struct {
	// Proven counts stack accesses proved inside their object.
	Proven int
	// Unproven counts stack accesses whose offset interval leaks past the
	// object bounds (reported as Warn).
	Unproven int
	// Violations counts accesses proved out of bounds (reported as Error).
	Violations int
	// Outside counts accesses that do not target a recovered stack object
	// at all (globals, emulated stack, computed pointers) — not checkable.
	Outside int
}

// CheckBounds runs the interval analysis over f and reports every
// symbolized stack access that is not provably inside its recovered
// object.
func CheckBounds(f *ir.Func, rep *Report) BoundsStats {
	res := Solve(f, boundsProblem())
	var st BoundsStats
	for _, b := range f.Blocks {
		env, ok := res.In[b]
		if !ok {
			continue // unreachable
		}
		evalBlock(b, cloneEnv(env), func(v *ir.Value, env boundsEnv) {
			var addr *ir.Value
			switch v.Op {
			case ir.OpLoad, ir.OpStore:
				addr = v.Args[0]
			default:
				return
			}
			av, ok := env[addr]
			if !ok || av.base == nil {
				st.Outside++
				return
			}
			size := int64(v.Size)
			if size == 0 {
				size = 4
			}
			limit := int64(av.base.AllocSize) - size
			switch {
			case av.rng.Hi < 0 || av.rng.Lo > limit:
				st.Violations++
				rep.Addf("bounds", Error, f.Name, v,
					"%s of %d byte(s) at %s%+v is out of bounds of %q [0,%d)",
					v.Op, size, av.base.Name, av.rng, av.base.Name, av.base.AllocSize)
			case av.rng.Lo < 0 || av.rng.Hi > limit:
				st.Unproven++
				rep.Addf("bounds", Warn, f.Name, v,
					"cannot prove %s of %d byte(s) at %s%+v stays inside %q [0,%d)",
					v.Op, size, av.base.Name, av.rng, av.base.Name, av.base.AllocSize)
			default:
				st.Proven++
			}
		})
	}
	return st
}
