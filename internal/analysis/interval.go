package analysis

import "fmt"

// Interval is a signed integer interval [Lo, Hi], the abstract domain of
// the bounds checker. The lattice has unbounded height, so fixpoints over
// loops rely on the engine's widening. Arithmetic is conservative: any
// operation that could wrap 32-bit space or whose transfer is not worth
// modelling returns Top.
type Interval struct {
	Lo, Hi int64 // inclusive bounds
}

// Infinite endpoints. Kept far inside the int64 range so endpoint
// arithmetic (Lo+Lo, Hi+Hi) cannot overflow.
const (
	NegInf int64 = -(1 << 40)
	PosInf int64 = 1 << 40
)

// Top is the unconstrained interval.
var Top = Interval{Lo: NegInf, Hi: PosInf}

// Const returns the singleton interval {c}.
func Const(c int64) Interval { return Interval{Lo: c, Hi: c} }

// Span returns [lo, hi].
func Span(lo, hi int64) Interval { return Interval{Lo: lo, Hi: hi} }

// IsTop reports whether the interval is unconstrained.
func (iv Interval) IsTop() bool { return iv.Lo <= NegInf && iv.Hi >= PosInf }

// Exact returns the single concrete value, if the interval is a singleton.
func (iv Interval) Exact() (int64, bool) {
	if iv.Lo == iv.Hi {
		return iv.Lo, true
	}
	return 0, false
}

func (iv Interval) String() string {
	lo, hi := "-inf", "+inf"
	if iv.Lo > NegInf {
		lo = fmt.Sprint(iv.Lo)
	}
	if iv.Hi < PosInf {
		hi = fmt.Sprint(iv.Hi)
	}
	return fmt.Sprintf("[%s,%s]", lo, hi)
}

func clamp(x int64) int64 {
	if x < NegInf {
		return NegInf
	}
	if x > PosInf {
		return PosInf
	}
	return x
}

// norm32 widens to Top any interval that leaves the 32-bit value range:
// runtime arithmetic wraps there, so keeping the out-of-range bounds would
// let the checker "prove" violations that wraparound makes unreachable.
func norm32(iv Interval) Interval {
	if iv.Lo < -(1<<31) || iv.Hi >= (1<<32) {
		return Top
	}
	return iv
}

// Union is the lattice join.
func (iv Interval) Union(o Interval) Interval {
	if o.Lo < iv.Lo {
		iv.Lo = o.Lo
	}
	if o.Hi > iv.Hi {
		iv.Hi = o.Hi
	}
	return iv
}

// WidenFrom jumps an endpoint that grew since prev to infinity.
func (iv Interval) WidenFrom(prev Interval) Interval {
	if iv.Lo < prev.Lo {
		iv.Lo = NegInf
	}
	if iv.Hi > prev.Hi {
		iv.Hi = PosInf
	}
	return iv
}

// Add is interval addition (Top on possible 32-bit wrap).
func (iv Interval) Add(o Interval) Interval {
	return norm32(Interval{Lo: clamp(iv.Lo + o.Lo), Hi: clamp(iv.Hi + o.Hi)})
}

// Sub is interval subtraction (Top on possible 32-bit wrap).
func (iv Interval) Sub(o Interval) Interval {
	return norm32(Interval{Lo: clamp(iv.Lo - o.Hi), Hi: clamp(iv.Hi - o.Lo)})
}

// Neg negates the interval.
func (iv Interval) Neg() Interval {
	return norm32(Interval{Lo: clamp(-iv.Hi), Hi: clamp(-iv.Lo)})
}

// mulOvf multiplies two endpoints, reporting overflow of the int64 product.
// Endpoints reach ±2^40, so naive products reach ±2^80 and wrap int64 —
// wrapped products can land back inside the 32-bit value range and "prove"
// bounds the runtime never respects.
func mulOvf(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, false
	}
	r := a * b
	if r/b != a {
		return 0, true
	}
	return r, false
}

// Mul is interval multiplication; unbounded operands go to Top.
func (iv Interval) Mul(o Interval) Interval {
	if iv.IsTop() || o.IsTop() || iv.Lo <= NegInf || iv.Hi >= PosInf ||
		o.Lo <= NegInf || o.Hi >= PosInf {
		return Top
	}
	pairs := [4][2]int64{{iv.Lo, o.Lo}, {iv.Lo, o.Hi}, {iv.Hi, o.Lo}, {iv.Hi, o.Hi}}
	var lo, hi int64
	for i, p := range pairs {
		c, ovf := mulOvf(p[0], p[1])
		if ovf {
			return Top
		}
		if i == 0 || c < lo {
			lo = c
		}
		if i == 0 || c > hi {
			hi = c
		}
	}
	return norm32(Interval{Lo: clamp(lo), Hi: clamp(hi)})
}

// AndMask bounds v & mask for a non-negative constant mask: the result lies
// in [0, mask] regardless of v.
func AndMask(mask int64) Interval {
	if mask < 0 {
		return Top
	}
	return Interval{Lo: 0, Hi: mask}
}

// ZextBound is the range of a zero-extended size-byte value.
func ZextBound(size uint8) Interval {
	switch size {
	case 1:
		return Interval{Lo: 0, Hi: 0xFF}
	case 2:
		return Interval{Lo: 0, Hi: 0xFFFF}
	}
	return Interval{Lo: 0, Hi: 0xFFFFFFFF}
}

// SextBound is the range of a sign-extended size-byte value.
func SextBound(size uint8) Interval {
	switch size {
	case 1:
		return Interval{Lo: -0x80, Hi: 0x7F}
	case 2:
		return Interval{Lo: -0x8000, Hi: 0x7FFF}
	}
	return Top
}
