package analysis

import (
	"strings"

	"wytiwyg/internal/ir"
	"wytiwyg/internal/layout"
)

// Lint orchestration: the post-refinement verification stage. It audits a
// symbolized module against its recovered layout table with every check in
// the package and collects the findings into one Report. The severity
// contract is the one diag.go documents — an Error is a proven violation
// of a layout invariant and means the recompiled program may be broken.

// cpPrefix marks call-plumbing allocas (outgoing argument slots); the
// symbolizer excludes them from the recovered layout table.
const cpPrefix = "cp_"

// CheckFrame proves the recovered layout table and the symbolized IR agree
// about f's frame: every non-call-plumbing alloca must appear in the frame
// with exactly its offset and size, the frame must not promise objects the
// IR does not have, and the frame's objects must not overlap. A mismatch is
// a proven violation — the table is the contract the recompiler emits
// debug info and the evaluation (Figure 7) from, so it must describe the
// code.
func CheckFrame(f *ir.Func, frame *layout.Frame, rep *Report) {
	var vars []layout.Var
	if frame != nil {
		vars = frame.Vars
	}
	matched := make([]bool, len(vars))
	for _, b := range f.Blocks {
		for _, v := range b.Insts {
			if v.Op != ir.OpAlloca || strings.HasPrefix(v.Name, cpPrefix) {
				continue
			}
			if v.Const >= 0 {
				// Incoming stack arguments materialized as objects: the
				// layout table records only locals (negative sp0 offsets).
				continue
			}
			found := false
			for i, lv := range vars {
				if lv.Offset == v.Const && lv.Size == v.AllocSize {
					matched[i] = true
					found = true
					break
				}
			}
			if !found {
				rep.Addf("frame", Error, f.Name, v,
					"stack object %q [%d,%d) has no matching entry in the recovered layout",
					v.Name, v.Const, v.Const+int32(v.AllocSize))
			}
		}
	}
	for i, lv := range vars {
		if !matched[i] {
			rep.Addf("frame", Error, f.Name, nil,
				"recovered layout lists %s but the IR has no such stack object", lv)
		}
		for _, ov := range vars[i+1:] {
			if lv.Overlaps(ov) {
				rep.Addf("frame", Error, f.Name, nil,
					"recovered layout objects %s and %s overlap", lv, ov)
			}
		}
	}
}

// LintFunc runs every per-function check against f. frame may be nil
// (function absent from the layout table) and facts may be the zero value
// (no pre-symbolization height capture available).
func LintFunc(f *ir.Func, frame *layout.Frame, facts HeightFacts, rep *Report) {
	esc := Escape(f)
	CheckFrame(f, frame, rep)
	CheckRefCoverage(f, facts, rep)
	CheckBounds(f, rep)
	CheckInit(f, esc, rep)
	CheckDeadStores(f, esc, rep)
}

// LintIR runs only the layout-independent checks: IR well-formedness,
// bounds, initialization and dead stores. Suitable between optimization
// passes, where stack objects may legitimately have been promoted away and
// the layout table no longer describes the IR.
func LintIR(m *ir.Module, rep *Report) {
	if err := ir.Verify(m); err != nil {
		rep.Add(Diag{Check: "verify", Severity: Error, Func: m.Name, Msg: err.Error()})
	}
	for _, f := range m.Funcs {
		esc := Escape(f)
		CheckBounds(f, rep)
		CheckInit(f, esc, rep)
		CheckDeadStores(f, esc, rep)
	}
	rep.Sort()
}

// CheckModule runs only the module-level checks — IR well-formedness and
// emulated-stack removal. The per-function checks are LintFunc's job; the
// core pipeline separates the two so it can fan the per-function half out
// over a worker pool.
func CheckModule(m *ir.Module, rep *Report) {
	if err := ir.Verify(m); err != nil {
		rep.Add(Diag{Check: "verify", Severity: Error, Func: m.Name, Msg: err.Error()})
	}
	if m.EmuStackSize != 0 {
		rep.Add(Diag{Check: "frame", Severity: Warn, Func: m.Name,
			Msg: "module still carries an emulated stack after symbolization"})
	}
}

// LintModule audits a symbolized module against its recovered layout.
// heights carries the per-function stack-height facts captured before
// symbolization (nil when unavailable). The report is returned sorted.
func LintModule(m *ir.Module, recovered *layout.Program, heights map[*ir.Func]HeightFacts, rep *Report) {
	CheckModule(m, rep)
	for _, f := range m.Funcs {
		var frame *layout.Frame
		if recovered != nil {
			frame = recovered.Frame(f.Name)
		}
		LintFunc(f, frame, heights[f], rep)
	}
	rep.Sort()
}
