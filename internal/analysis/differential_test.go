package analysis_test

import (
	"fmt"
	"strings"
	"testing"

	"wytiwyg/internal/analysis"
	"wytiwyg/internal/bench/progs"
	"wytiwyg/internal/core"
	"wytiwyg/internal/ir"
	"wytiwyg/internal/irexec"
	"wytiwyg/internal/layout"
	"wytiwyg/internal/minicc/gen"
)

// Differential testing of the linter over the benchmark suite. Two
// directions, matching the acceptance criteria of the verification stage:
//
//   - Soundness of the Error severity: on every cleanly recovered layout
//     (which irexec executes without fault) the linter must report zero
//     proven violations — no false positives.
//   - Sensitivity: layouts corrupted by seeded mutations (shrink an
//     object, shift an object, corrupt the layout table) must be caught —
//     at least 90% of the seeded mutations produce an Error.

// pipeCache shares one refined pipeline per program between the clean-run
// and mutation tests (refinement re-executes every input several times and
// dominates the test's cost). The mutation test restores every corruption
// it seeds, so the cached pipeline stays clean.
var pipeCache = map[string]*core.Pipeline{}

// refined runs the pipeline through refinement with linting enabled.
func refined(t *testing.T, p progs.Program) *core.Pipeline {
	t.Helper()
	if pl, ok := pipeCache[p.Name]; ok {
		return pl
	}
	img, err := gen.Build(p.Src, gen.GCC12O3, "input")
	if err != nil {
		t.Fatalf("%s: compile: %v", p.Name, err)
	}
	pl, err := core.LiftBinary(img, p.Inputs())
	if err != nil {
		t.Fatalf("%s: lift: %v", p.Name, err)
	}
	pl.Lint = core.LintWarn
	if err := pl.Refine(); err != nil {
		t.Fatalf("%s: refine: %v", p.Name, err)
	}
	pipeCache[p.Name] = pl
	return pl
}

// shortCorpus trims the benchmark list in -short mode (the race-enabled
// CI pass): a few programs exercise every check without blowing the
// package time budget on small machines.
func shortCorpus() []progs.Program {
	if testing.Short() {
		return progs.All[:3]
	}
	return progs.All
}

func TestLintCleanLayoutsNoFalsePositives(t *testing.T) {
	for _, p := range shortCorpus() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			pl := refined(t, p)
			// The recovered layout must actually execute: irexec runs the
			// symbolized module on every trace input.
			for i, input := range p.Inputs() {
				if _, err := irexec.Run(pl.Mod, input, nil, nil); err != nil {
					t.Fatalf("irexec input %d: %v", i, err)
				}
			}
			if n := pl.Report.Errors(); n != 0 {
				t.Errorf("clean layout produced %d proven violations:\n%s",
					n, pl.Report)
			}
		})
	}
}

// mutation is one seeded layout corruption.
type mutation struct {
	name  string
	apply func(pl *core.Pipeline, fn string, v *layout.Var, a *ir.Value) (undo func())
}

var mutations = []mutation{
	{
		// Corrupt only the layout table: the frame check must notice the
		// table no longer describes the IR.
		name: "table-shift",
		apply: func(pl *core.Pipeline, fn string, v *layout.Var, a *ir.Value) func() {
			v.Offset += 4
			return func() { v.Offset -= 4 }
		},
	},
	{
		name: "table-shrink",
		apply: func(pl *core.Pipeline, fn string, v *layout.Var, a *ir.Value) func() {
			if v.Size <= 4 {
				return nil
			}
			v.Size -= 4
			return func() { v.Size += 4 }
		},
	},
	{
		// Corrupt table and IR consistently — as if recovery really had
		// undersized the object. The traced references (height facts) or
		// the interval analysis must notice accesses past the new end.
		name: "object-shrink",
		apply: func(pl *core.Pipeline, fn string, v *layout.Var, a *ir.Value) func() {
			if v.Size <= 4 || a == nil {
				return nil
			}
			v.Size -= 4
			a.AllocSize -= 4
			return func() { v.Size += 4; a.AllocSize += 4 }
		},
	},
	{
		// Shift object and table together: references keep their traced
		// offsets, so coverage must break somewhere.
		name: "object-shift",
		apply: func(pl *core.Pipeline, fn string, v *layout.Var, a *ir.Value) func() {
			if a == nil {
				return nil
			}
			v.Offset -= 4
			a.Const -= 4
			return func() { v.Offset += 4; a.Const += 4 }
		},
	},
}

// findAlloca locates the stack object matching a layout entry.
func findAlloca(f *ir.Func, v layout.Var) *ir.Value {
	for _, b := range f.Blocks {
		for _, val := range b.Insts {
			if val.Op == ir.OpAlloca && val.Const == v.Offset && val.AllocSize == v.Size &&
				!strings.HasPrefix(val.Name, "cp_") {
				return val
			}
		}
	}
	return nil
}

func TestLintCatchesSeededMutations(t *testing.T) {
	seeded, caught := 0, 0
	var missed []string
	for _, p := range shortCorpus() {
		pl := refined(t, p)
		for _, fname := range pl.Recovered.FuncNames() {
			frame := pl.Recovered.Frame(fname)
			f := pl.Mod.FuncByName(fname)
			if f == nil {
				continue
			}
			for i := range frame.Vars {
				v := &frame.Vars[i]
				a := findAlloca(f, *v)
				for _, mut := range mutations {
					undo := mut.apply(pl, fname, v, a)
					if undo == nil {
						continue // mutation not applicable to this object
					}
					var rep analysis.Report
					analysis.LintModule(pl.Mod, pl.Recovered, pl.Heights, &rep)
					undo()
					seeded++
					if rep.Errors() > 0 {
						caught++
					} else {
						missed = append(missed,
							fmt.Sprintf("%s/%s/%s %s", p.Name, fname, v.Name, mut.name))
					}
				}
			}
		}
	}
	if seeded == 0 {
		t.Fatal("no mutations were seeded")
	}
	rate := float64(caught) / float64(seeded)
	t.Logf("caught %d/%d seeded mutations (%.1f%%)", caught, seeded, rate*100)
	if rate < 0.90 {
		t.Errorf("mutation catch rate %.1f%% below 90%%; missed:\n  %s",
			rate*100, strings.Join(missed, "\n  "))
	}
}
