package opt_test

import (
	"bytes"
	"testing"

	"wytiwyg/internal/core"
	"wytiwyg/internal/ir"
	"wytiwyg/internal/irexec"
	"wytiwyg/internal/machine"
	"wytiwyg/internal/minicc/gen"
	"wytiwyg/internal/opt"
)

// buildSym builds, lifts, and fully refines a program.
func buildSym(t *testing.T, src string, prof gen.Profile, inputs []machine.Input) *core.Pipeline {
	t.Helper()
	img, err := gen.Build(src, prof, "t")
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.LiftBinary(img, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Refine(); err != nil {
		t.Fatal(err)
	}
	return p
}

func countOps(m *ir.Module) (values int, memOps int, allocas int) {
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			values += len(b.Phis) + len(b.Insts)
			for _, v := range b.Insts {
				switch v.Op {
				case ir.OpLoad, ir.OpStore:
					memOps++
				case ir.OpAlloca:
					allocas++
				}
			}
		}
	}
	return
}

func checkBehaviour(t *testing.T, p *core.Pipeline, label string) {
	t.Helper()
	for i, input := range p.Inputs {
		var nat, lift bytes.Buffer
		n, err := machine.Execute(p.Img, input, &nat)
		if err != nil {
			t.Fatalf("%s input %d native: %v", label, i, err)
		}
		r, err := irexec.Run(p.Mod, input, &lift, nil)
		if err != nil {
			t.Fatalf("%s input %d optimized: %v", label, i, err)
		}
		if r.ExitCode != n.ExitCode || lift.String() != nat.String() {
			t.Errorf("%s input %d: exit %d/%d out %q/%q",
				label, i, r.ExitCode, n.ExitCode, lift.String(), nat.String())
		}
	}
}

var optPrograms = []struct {
	name   string
	src    string
	inputs []machine.Input
}{
	{"scalars", `
int main() {
	int a = 1, b = 2, c;
	int *p = &a;
	c = *p + b;
	return c;
}`, nil},
	{"loops", `
extern int input_int(int i);
int main() {
	int n = input_int(0), s = 0, i;
	int acc[4];
	acc[0] = 0; acc[1] = 0; acc[2] = 0; acc[3] = 0;
	for (i = 0; i < n; i++) acc[i % 4] += i;
	for (i = 0; i < 4; i++) s += acc[i];
	return s;
}`, []machine.Input{{Ints: []int32{25}}, {Ints: []int32{7}}}},
	{"calls", `
int square(int x) { return x * x; }
int cube(int x) { return x * square(x); }
int main() { return cube(5) + square(3); }`, nil},
	{"figure2", `
struct p { int x; int y; };
int f3(int n) { return n / 12; }
struct p *f2(struct p *a, struct p *b) { return a; }
int f1() {
	struct p *ptr; struct p a; struct p b[3];
	a.x = 3; a.y = 4;
	ptr = f2(&a, b);
	b[f3(sizeof(b))] = a;
	ptr->y = b[1].x;
	return ptr->y * 100 + b[2].x * 10 + b[2].y;
}
int main() { return f1(); }`, nil},
	{"strings", `
extern int printf(char *fmt, ...);
extern int strlen(char *s);
extern int sprintf(char *dst, char *fmt, ...);
int main() {
	char buf[32];
	sprintf(buf, "x=%d", 42);
	printf("%s\n", buf);
	return strlen(buf);
}`, nil},
	{"recursion", `
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int main() { return fib(13); }`, nil},
	{"fnptr", `
int twice(int x) { return 2 * x; }
int thrice(int x) { return 3 * x; }
int apply(fnptr f, int v) { return f(v); }
int main() { return apply(&twice, 21) + apply(&thrice, 4); }`, nil},
	{"endptr", `
int main() {
	int a[16];
	int i, s = 0;
	for (i = 0; i < 16; i++) { a[i] = 7; }
	for (i = 0; i < 16; i++) { s += a[i]; }
	return s;
}`, nil},
}

// The optimizer must preserve behaviour and reduce the instruction count on
// every symbolized program.
func TestPipelinePreservesBehaviour(t *testing.T) {
	for _, prog := range optPrograms {
		for _, prof := range gen.Profiles {
			label := prog.name + "/" + prof.Name
			p := buildSym(t, prog.src, prof, prog.inputs)
			before, memBefore, _ := countOps(p.Mod)
			opt.Pipeline(p.Mod)
			if err := ir.Verify(p.Mod); err != nil {
				t.Fatalf("%s: verify after opt: %v", label, err)
			}
			after, memAfter, _ := countOps(p.Mod)
			checkBehaviour(t, p, label)
			if after > before {
				t.Errorf("%s: optimizer grew the module: %d -> %d", label, before, after)
			}
			if memAfter > memBefore {
				t.Errorf("%s: memory ops grew: %d -> %d", label, memBefore, memAfter)
			}
		}
	}
}

// mem2reg must fire on symbolized scalar-heavy code: the whole point of the
// paper is that partitioned stacks let scalars leave memory.
func TestMem2RegPromotes(t *testing.T) {
	p := buildSym(t, `
int main() {
	int a = 1, b = 2, c = 3, d = 4;
	int *q = &a;
	return *q + b + c + d;
}`, gen.GCC12O0, nil)
	_, memBefore, allocasBefore := countOps(p.Mod)
	opt.Pipeline(p.Mod)
	_, memAfter, allocasAfter := countOps(p.Mod)
	if allocasAfter >= allocasBefore {
		t.Errorf("allocas %d -> %d: no promotion", allocasBefore, allocasAfter)
	}
	if memAfter >= memBefore {
		t.Errorf("memory ops %d -> %d: no forwarding/promotion", memBefore, memAfter)
	}
	checkBehaviour(t, p, "mem2reg")
}

// Without symbolization the optimizer must NOT be able to shrink stack
// traffic: the emulated stack is opaque. This is the causal claim of the
// paper, testable directly.
func TestSymbolizationUnlocksOptimization(t *testing.T) {
	src := `
int work(int n) {
	int a = n, b = n + 1, c = n + 2, d = n + 3;
	int i, s = 0;
	for (i = 0; i < 50; i++) s += a + b + c + d;
	return s;
}
int main() { return work(3) % 251; }`
	img, err := gen.Build(src, gen.GCC12O0, "t")
	if err != nil {
		t.Fatal(err)
	}
	// Unsymbolized path.
	p1, err := core.LiftBinary(img, nil)
	if err != nil {
		t.Fatal(err)
	}
	opt.Pipeline(p1.Mod)
	if err := ir.Verify(p1.Mod); err != nil {
		t.Fatal(err)
	}
	r1, err := irexec.Run(p1.Mod, machine.Input{}, nil, nil)
	if err != nil {
		t.Fatalf("unsymbolized optimized run: %v", err)
	}
	// Symbolized path.
	p2, err := core.LiftBinary(img, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.Refine(); err != nil {
		t.Fatal(err)
	}
	opt.Pipeline(p2.Mod)
	r2, err := irexec.Run(p2.Mod, machine.Input{}, nil, nil)
	if err != nil {
		t.Fatalf("symbolized optimized run: %v", err)
	}
	if r1.ExitCode != r2.ExitCode {
		t.Fatalf("exit codes diverge: %d vs %d", r1.ExitCode, r2.ExitCode)
	}
	// The symbolized module must execute far fewer interpreter steps.
	if r2.Steps >= r1.Steps {
		t.Errorf("symbolized (%d steps) not better than unsymbolized (%d steps)",
			r2.Steps, r1.Steps)
	}
}

func TestConstantFoldUnits(t *testing.T) {
	// Build a tiny function by hand: (3 + 4) * 2 - 14 == 0 -> br folds.
	m := ir.NewModule("t")
	f := m.NewFunc("f", 0x1000)
	f.NumRet = 1
	b0 := f.NewBlock(0)
	b1 := f.NewBlock(0)
	b2 := f.NewBlock(0)
	c3 := f.NewValue(ir.OpConst)
	c3.Const = 3
	c4 := f.NewValue(ir.OpConst)
	c4.Const = 4
	add := f.NewValue(ir.OpAdd, c3, c4)
	c2 := f.NewValue(ir.OpConst)
	c2.Const = 2
	mul := f.NewValue(ir.OpMul, add, c2)
	c14 := f.NewValue(ir.OpConst)
	c14.Const = 14
	sub := f.NewValue(ir.OpSub, mul, c14)
	br := f.NewValue(ir.OpBr, sub)
	for _, v := range []*ir.Value{c3, c4, add, c2, mul, c14, sub, br} {
		b0.Append(v)
	}
	b0.Succs = []*ir.Block{b1, b2}
	b1.Preds = []*ir.Block{b0}
	b2.Preds = []*ir.Block{b0}
	one := f.NewValue(ir.OpConst)
	one.Const = 1
	r1 := f.NewValue(ir.OpRet, one)
	b1.Append(one)
	b1.Append(r1)
	zero := f.NewValue(ir.OpConst)
	zero.Const = 0
	r2 := f.NewValue(ir.OpRet, zero)
	b2.Append(zero)
	b2.Append(r2)
	m.Entry = f

	opt.FoldConstants(f)
	opt.SimplifyCFG(f)
	opt.DCE(f)
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	// sub folds to 0, branch goes false -> b2, b1 unreachable.
	if len(f.Blocks) != 1 {
		t.Errorf("blocks after simplify = %d, want 1 (merged)", len(f.Blocks))
	}
	term := f.Entry().Term()
	if term.Op != ir.OpRet {
		t.Fatalf("terminator = %v", term.Op)
	}
	if c, ok := constVal(term.Args[0]); !ok || c != 0 {
		t.Errorf("returned %v, want const 0", term.Args[0])
	}
}

func constVal(v *ir.Value) (int32, bool) {
	if v.Op == ir.OpConst {
		return v.Const, true
	}
	return 0, false
}
