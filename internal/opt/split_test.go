package opt

import (
	"testing"

	"wytiwyg/internal/ir"
)

// fakeTyped maps allocas to fixed partitions.
type fakeTyped map[*ir.Value][][2]int64

func (ft fakeTyped) SlotPartition(a *ir.Value) [][2]int64 { return ft[a] }

// buildStructFunc builds: an 8-byte slot written at +0 and +4, both
// fields then loaded and added into the return value. Baseline mem2reg
// cannot promote the slot (it is wider than a word); the typed partition
// splits it into two scalars.
func buildStructFunc(m *ir.Module) (*ir.Func, *ir.Value) {
	f := m.NewFunc("f", 0x1000)
	f.NumRet = 1
	b := f.NewBlock(0)
	s := f.NewValue(ir.OpAlloca)
	s.AllocSize = 8
	s.Align = 4
	s.Name = "s"
	s.Const = -8
	b.Append(s)
	k1 := f.NewValue(ir.OpConst)
	k1.Const = 11
	b.Append(k1)
	st0 := f.NewValue(ir.OpStore, s, k1)
	st0.Size = 4
	b.Append(st0)
	k4 := f.NewValue(ir.OpConst)
	k4.Const = 4
	b.Append(k4)
	a4 := f.NewValue(ir.OpAdd, s, k4)
	b.Append(a4)
	k2 := f.NewValue(ir.OpConst)
	k2.Const = 22
	b.Append(k2)
	st1 := f.NewValue(ir.OpStore, a4, k2)
	st1.Size = 4
	b.Append(st1)
	l0 := f.NewValue(ir.OpLoad, s)
	l0.Size = 4
	b.Append(l0)
	l1 := f.NewValue(ir.OpLoad, a4)
	l1.Size = 4
	b.Append(l1)
	sum := f.NewValue(ir.OpAdd, l0, l1)
	b.Append(sum)
	b.Append(f.NewValue(ir.OpRet, sum))
	return f, s
}

// TestSplitSlots: a verified two-field partition splits the slot, and
// the children promote where the parent could not.
func TestSplitSlots(t *testing.T) {
	m := ir.NewModule("t")
	f, s := buildStructFunc(m)
	info := fakeTyped{s: {{0, 4}, {4, 4}}}
	if n := SplitSlots(f, info); n != 1 {
		t.Fatalf("SplitSlots = %d, want 1", n)
	}
	for _, b := range f.Blocks {
		for _, v := range b.Insts {
			if v == s {
				t.Fatalf("parent alloca survived the split")
			}
		}
	}
	if n := Mem2Reg(f); n != 2 {
		t.Errorf("Mem2Reg after split = %d, want 2", n)
	}
}

// TestSplitSlotsVetoes: escapes and off-field accesses veto the rewrite.
func TestSplitSlotsVetoes(t *testing.T) {
	mk := func(mut func(f *ir.Func, s *ir.Value)) (fn *ir.Func, slot *ir.Value) {
		m := ir.NewModule("t")
		fn, slot = buildStructFunc(m)
		if mut != nil {
			mut(fn, slot)
		}
		return
	}

	// Address stored to memory: the slot escapes.
	f, s := mk(func(f *ir.Func, s *ir.Value) {
		b := f.Blocks[0]
		p := f.NewValue(ir.OpAlloca)
		p.AllocSize = 4
		p.Const = -12
		st := f.NewValue(ir.OpStore, p, s)
		st.Size = 4
		// Insert before the terminator.
		b.Insts = append(b.Insts[:len(b.Insts)-1], p, st, b.Insts[len(b.Insts)-1])
	})
	if n := SplitSlots(f, fakeTyped{s: {{0, 4}, {4, 4}}}); n != 0 {
		t.Errorf("escaping slot split anyway (n=%d)", n)
	}

	// Access straddling the claimed field boundary: the use walk rejects
	// the partition even though the type pass claimed it.
	f, s = mk(nil)
	if n := SplitSlots(f, fakeTyped{s: {{0, 2}, {2, 6}}}); n != 0 {
		t.Errorf("mismatched partition split anyway (n=%d)", n)
	}

	// Malformed (overlapping) partition.
	f, s = mk(nil)
	if n := SplitSlots(f, fakeTyped{s: {{0, 4}, {2, 4}}}); n != 0 {
		t.Errorf("overlapping partition split anyway (n=%d)", n)
	}
}

// TestPipelineTypedPromotesMore: the full optimizer pipeline with the
// typed partition promotes strictly more slots than without it.
func TestPipelineTypedPromotesMore(t *testing.T) {
	count := func(typed bool) int {
		m := ir.NewModule("t")
		f, s := buildStructFunc(m)
		m.Entry = f
		o := PipelineOpts{}
		if typed {
			info := fakeTyped{s: {{0, 4}, {4, 4}}}
			o.Typed = func(*ir.Func) TypedInfo { return info }
		}
		prog := PipelineWith(m, o)
		n := 0
		for _, fr := range prog.Frames {
			n += len(fr.Vars)
		}
		return n
	}
	base, typed := count(false), count(true)
	if typed <= base {
		t.Errorf("typed promotions = %d, baseline = %d; want strictly more", typed, base)
	}
}
