package opt

import (
	"strings"

	"wytiwyg/internal/analysis"
	"wytiwyg/internal/ir"
	"wytiwyg/internal/layout"
)

// Mem2Reg promotes non-escaping scalar allocas to SSA values — the headline
// payoff of stack symbolization: once the frame is partitioned into distinct
// objects, scalar slots stop being opaque memory and the optimizer can hold
// them in registers. Returns the number of promoted allocas.
//
// An alloca is promotable when every use is a direct load or store of one
// uniform access size (1, 2 or 4) at offset 0. Address-taken slots (their
// pointer flows anywhere else) stay in memory.
func Mem2Reg(f *ir.Func) int { return Mem2RegLog(f, nil) }

// Mem2RegLog promotes like Mem2Reg and, when log is non-nil, records each
// promoted stack object (promoted scalars were real recovered variables:
// the Figure 7 comparison counts them even though they no longer occupy
// frame memory).
func Mem2RegLog(f *ir.Func, log *layout.Program) int {
	// Collect candidates first: promotion rewrites instruction lists.
	var allocas []*ir.Value
	for _, b := range f.Blocks {
		for _, v := range b.Insts {
			if v.Op == ir.OpAlloca {
				allocas = append(allocas, v)
			}
		}
	}
	// Escape gate: promotable() already rejects indirect uses, but the
	// analysis layer's escape facts are the authoritative safety argument
	// (an escaped slot may be written behind the optimizer's back).
	escaped := analysis.Escapes(f)
	promoted := 0
	for _, a := range allocas {
		if escaped[a] {
			continue
		}
		// Recompute uses per promotion: earlier rewrites change them.
		if size, ok := promotable(a, BuildUses(f)); ok {
			if log != nil && a.Const < 0 && !strings.HasPrefix(a.Name, "cp_") {
				fr := log.Frame(f.Name)
				if fr == nil {
					fr = &layout.Frame{Func: f.Name}
					log.Add(fr)
				}
				fr.Vars = append(fr.Vars, layout.Var{
					Name: a.Name, Offset: a.Const, Size: a.AllocSize,
				})
			}
			promoteAlloca(f, a, size)
			promoted++
		}
	}
	if promoted > 0 {
		DCE(f)
		RemoveDeadAllocas(f)
	}
	return promoted
}

// Mem2RegModule promotes across every function.
func Mem2RegModule(m *ir.Module) int {
	n := 0
	for _, f := range m.Funcs {
		n += Mem2Reg(f)
	}
	return n
}

// promotable checks the use set and returns the uniform access size.
func promotable(a *ir.Value, uses Uses) (uint8, bool) {
	if a.AllocSize > 4 {
		return 0, false
	}
	var size uint8
	for _, u := range uses[a] {
		switch u.Op {
		case ir.OpLoad:
			if u.Args[0] != a {
				return 0, false
			}
			if size == 0 {
				size = u.Size
			} else if size != u.Size {
				return 0, false
			}
		case ir.OpStore:
			// The slot address must be the *address* operand only; a store
			// OF the address escapes it.
			if u.Args[0] != a || u.Args[1] == a {
				return 0, false
			}
			if size == 0 {
				size = u.Size
			} else if size != u.Size {
				return 0, false
			}
		default:
			return 0, false
		}
	}
	if size == 0 {
		size = 4
	}
	if uint32(size) > a.AllocSize {
		return 0, false
	}
	return size, true
}

// promoteAlloca rewrites loads/stores of a into SSA form (Braun-style
// construction over the existing CFG).
func promoteAlloca(f *ir.Func, a *ir.Value, size uint8) {
	defs := make(map[*ir.Block]*ir.Value)
	incomplete := make(map[*ir.Block]*ir.Value)
	sealed := make(map[*ir.Block]bool)
	filled := make(map[*ir.Block]bool)

	// The "uninitialized slot" value. Created eagerly: the rewrite below
	// filters block instruction lists in place, so the entry list must not
	// change shape mid-flight.
	zero := f.NewValue(ir.OpConst)
	zero.Const = 0
	zero.Block = f.Entry()
	f.Entry().Insts = append([]*ir.Value{zero}, f.Entry().Insts...)
	mkZero := func() *ir.Value { return zero }

	var readVar func(b *ir.Block) *ir.Value
	readVar = func(b *ir.Block) *ir.Value {
		if v := defs[b]; v != nil {
			return v
		}
		var v *ir.Value
		switch {
		case !sealed[b]:
			v = f.NewValue(ir.OpPhi)
			b.AddPhi(v)
			incomplete[b] = v
		case len(b.Preds) == 0:
			v = mkZero()
		case len(b.Preds) == 1:
			v = readVar(b.Preds[0])
		default:
			v = f.NewValue(ir.OpPhi)
			b.AddPhi(v)
			defs[b] = v
			for _, p := range b.Preds {
				v.AddArg(readVar(p))
			}
		}
		defs[b] = v
		return v
	}
	trySeal := func() {
		for _, b := range f.Blocks {
			if sealed[b] {
				continue
			}
			ok := true
			for _, p := range b.Preds {
				if !filled[p] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			if phi := incomplete[b]; phi != nil {
				for _, p := range b.Preds {
					phi.AddArg(readVar(p))
				}
				delete(incomplete, b)
			}
			sealed[b] = true
		}
	}

	// Process blocks in reverse post order.
	order := rpoBlocks(f)
	trySeal()
	for _, b := range order {
		insts := b.Insts[:0]
		for _, v := range b.Insts {
			switch {
			case v.Op == ir.OpLoad && v.Args[0] == a:
				cur := readVar(b)
				// Sub-word slots: loads see the truncated/extended value.
				repl := cur
				if size < 4 {
					ext := f.NewValue(ir.OpSext, cur)
					if !v.Signed {
						ext.Op = ir.OpZext
					}
					ext.Size = size
					ext.Block = b
					insts = append(insts, ext)
					repl = ext
				}
				ReplaceUses(f, v, repl)
				continue // drop the load
			case v.Op == ir.OpStore && v.Args[0] == a:
				defs[b] = v.Args[1]
				continue // drop the store
			}
			insts = append(insts, v)
		}
		b.Insts = insts
		filled[b] = true
		trySeal()
	}
	// Any unsealed stragglers (unreachable blocks): give their phis zero
	// args per pred.
	for b, phi := range incomplete {
		for range b.Preds {
			phi.AddArg(mkZero())
		}
	}
	// Fix phi argument order: AddArg appended in b.Preds order already.
	RemoveDeadAllocas(f)
}

// rpoBlocks returns the function's blocks in reverse post order.
func rpoBlocks(f *ir.Func) []*ir.Block {
	seen := make(map[*ir.Block]bool, len(f.Blocks))
	var order []*ir.Block
	var dfs func(b *ir.Block)
	dfs = func(b *ir.Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			dfs(s)
		}
		order = append(order, b)
	}
	dfs(f.Entry())
	for _, b := range f.Blocks {
		dfs(b)
	}
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}
