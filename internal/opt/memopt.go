package opt

import (
	"wytiwyg/internal/analysis"
	"wytiwyg/internal/ir"
	"wytiwyg/internal/layout"
)

// Memory optimization: store-to-load forwarding, redundant-load elimination
// and dead-store elimination with the alias information symbolization
// unlocks. The rules are exactly the paper's motivation (§2.1): distinct
// stack objects (allocas) cannot alias each other, and an alloca whose
// address never escapes cannot alias an unknown pointer — facts that are
// unprovable while the stack is one opaque byte array.

// memLoc describes an address expression for aliasing purposes.
type memLoc struct {
	// base is the alloca anchoring the address, nil for unknown/global.
	base *ir.Value
	// off is the constant offset from base (or the absolute constant for
	// base == nil with known == true).
	off   int32
	known bool
}

// resolveLoc classifies an address value.
func resolveLoc(addr *ir.Value) memLoc {
	switch addr.Op {
	case ir.OpAlloca:
		return memLoc{base: addr, off: 0, known: true}
	case ir.OpConst:
		return memLoc{base: nil, off: addr.Const, known: true}
	case ir.OpAdd:
		if k, ok := cval(addr.Args[1]); ok {
			inner := resolveLoc(addr.Args[0])
			if inner.known {
				return memLoc{base: inner.base, off: inner.off + k, known: true}
			}
		}
		if k, ok := cval(addr.Args[0]); ok {
			inner := resolveLoc(addr.Args[1])
			if inner.known {
				return memLoc{base: inner.base, off: inner.off + k, known: true}
			}
		}
	case ir.OpSub:
		if k, ok := cval(addr.Args[1]); ok {
			inner := resolveLoc(addr.Args[0])
			if inner.known {
				return memLoc{base: inner.base, off: inner.off - k, known: true}
			}
		}
	}
	// Derived dynamically: remember the anchoring alloca when there is one
	// (unknown offset within a known object).
	if a := allocaRoot(addr); a != nil {
		return memLoc{base: a, known: false}
	}
	return memLoc{}
}

// allocaRoot walks add/sub chains to the anchoring alloca, if any.
func allocaRoot(v *ir.Value) *ir.Value {
	for i := 0; i < 32; i++ {
		switch v.Op {
		case ir.OpAlloca:
			return v
		case ir.OpAdd, ir.OpSub:
			// Follow the pointer-ish side.
			if a := quickRoot(v.Args[0]); a != nil {
				v = v.Args[0]
				continue
			}
			if v.Op == ir.OpAdd {
				if a := quickRoot(v.Args[1]); a != nil {
					v = v.Args[1]
					continue
				}
			}
			return nil
		default:
			return nil
		}
	}
	return nil
}

func quickRoot(v *ir.Value) *ir.Value {
	switch v.Op {
	case ir.OpAlloca:
		return v
	case ir.OpAdd, ir.OpSub:
		return v // keep walking
	}
	return nil
}

// overlap reports whether two located accesses may touch common bytes.
func overlap(a memLoc, asz uint8, b memLoc, bsz uint8) bool {
	if a.base != b.base {
		// Distinct allocas never alias; alloca vs non-alloca handled by
		// the caller via escape analysis.
		if a.base != nil && b.base != nil {
			return false
		}
		return true // conservatively (one side unknown/global)
	}
	if !a.known || !b.known {
		return true // same object, unknown offsets
	}
	return a.off < b.off+int32(bsz) && b.off < a.off+int32(asz)
}

// MemOpt performs block-local store-to-load forwarding, redundant load
// elimination and dead store elimination. Returns the number of removed or
// forwarded operations. Escape facts come from the analysis layer, the
// same ones the lint stage audits.
func MemOpt(f *ir.Func) int { return MemOptWith(f, nil) }

// MemOptWith is MemOpt with an optional alias oracle. Wherever the
// syntactic rules would conservatively kill or keep-alive an entry, a
// non-nil oracle gets a second opinion: accesses it proves byte-disjoint
// neither invalidate forwarded values nor observe pending stores.
func MemOptWith(f *ir.Func, orc AliasOracle) int {
	esc := analysis.Escapes(f)
	n := 0
	type av struct {
		loc  memLoc
		addr *ir.Value // the address value (for oracle queries)
		size uint8
		val  *ir.Value // last stored/loaded value (for forwarding)
		st   *ir.Value // the store (for DSE), nil if from a load
		live bool      // store observed by a later load
	}
	// disjoint asks the oracle to separate two accesses; false without one.
	disjoint := func(a *ir.Value, asz uint8, b *ir.Value, bsz uint8) bool {
		return orc != nil && a != nil && b != nil &&
			orc.MustNotAlias(a, accSz(asz), b, accSz(bsz))
	}
	for _, b := range f.Blocks {
		var avail []*av
		invalidate := func(addr *ir.Value, loc memLoc, size uint8) {
			out := avail[:0]
			for _, e := range avail {
				kill := false
				switch {
				case loc.base != nil && e.loc.base != nil:
					kill = overlap(loc, size, e.loc, e.size)
				case loc.base == nil && e.loc.base == nil:
					kill = !loc.known || !e.loc.known || overlap(loc, size, e.loc, e.size)
				case loc.base == nil && e.loc.base != nil:
					kill = esc[e.loc.base] // unknown pointer may hit escaped allocas
				case loc.base != nil && e.loc.base == nil:
					kill = true
				}
				if kill && disjoint(addr, size, e.addr, e.size) {
					kill = false
				}
				if !kill {
					out = append(out, e)
				}
			}
			avail = out
		}
		clobberCalls := func() {
			out := avail[:0]
			for _, e := range avail {
				if e.loc.base != nil && !esc[e.loc.base] {
					out = append(out, e)
					continue
				}
			}
			avail = out
		}
		var deadStores []*ir.Value
		for _, v := range b.Insts {
			switch v.Op {
			case ir.OpLoad:
				loc := resolveLoc(v.Args[0])
				if loc.known || loc.base != nil {
					hit := false
					for _, e := range avail {
						if e.loc == loc && e.size == v.Size && e.loc.known {
							// Forward: stored value has full width for
							// 4-byte slots; sub-word loads keep the load
							// (extension semantics).
							if v.Size == 4 {
								ReplaceUses(f, v, e.val)
								e.live = true
								hit = true
								n++
							}
							break
						}
					}
					if hit {
						continue
					}
					// Loads observe stores.
					for _, e := range avail {
						if e.st != nil && overlap(loc, v.Size, e.loc, e.size) &&
							!disjoint(v.Args[0], v.Size, e.addr, e.size) {
							e.live = true
						}
					}
					if loc.base == nil && !loc.known {
						// Unknown load: anything escaped may be read.
						for _, e := range avail {
							if e.st != nil && (e.loc.base == nil || esc[e.loc.base]) &&
								!disjoint(v.Args[0], v.Size, e.addr, e.size) {
								e.live = true
							}
						}
					}
					avail = append(avail, &av{loc: loc, addr: v.Args[0], size: v.Size, val: v})
				} else {
					// Fully unknown address: all stores may be observed.
					for _, e := range avail {
						if e.st != nil && !disjoint(v.Args[0], v.Size, e.addr, e.size) {
							e.live = true
						}
					}
				}
			case ir.OpStore:
				loc := resolveLoc(v.Args[0])
				// A previous un-observed store to the exact location dies.
				if loc.known {
					for _, e := range avail {
						if e.st != nil && !e.live && e.loc == loc && e.size == v.Size {
							deadStores = append(deadStores, e.st)
							n++
						}
					}
				}
				invalidate(v.Args[0], loc, v.Size)
				if loc.known || loc.base != nil {
					avail = append(avail, &av{loc: loc, addr: v.Args[0], size: v.Size, val: v.Args[1], st: v})
				} else {
					// Unknown store: clobber everything that may alias.
					out := avail[:0]
					for _, e := range avail {
						if (e.loc.base != nil && !esc[e.loc.base]) ||
							disjoint(v.Args[0], v.Size, e.addr, e.size) {
							out = append(out, e)
						}
					}
					avail = out
				}
			case ir.OpCall, ir.OpCallInd, ir.OpCallExt, ir.OpCallExtRaw:
				// Callees may read escaped locations: stores to them stay
				// live; entries for them invalidate.
				for _, e := range avail {
					if e.st != nil && (e.loc.base == nil || esc[e.loc.base]) {
						e.live = true
					}
				}
				clobberCalls()
			}
		}
		if len(deadStores) > 0 {
			dead := make(map[*ir.Value]bool, len(deadStores))
			for _, s := range deadStores {
				dead[s] = true
			}
			insts := b.Insts[:0]
			for _, v := range b.Insts {
				if !dead[v] {
					insts = append(insts, v)
				}
			}
			b.Insts = insts
		}
	}
	return n
}

// DSEGlobal removes stores that no later load can observe, across blocks:
// the analysis layer's backward liveness proves which stack stores are
// invisible (non-escaped object, no reachable load), strictly more than
// the block-local DSE inside MemOpt can see.
func DSEGlobal(f *ir.Func) int {
	dead := analysis.DeadStores(f, analysis.Escape(f))
	if len(dead) == 0 {
		return 0
	}
	kill := make(map[*ir.Value]bool, len(dead))
	for _, s := range dead {
		kill[s] = true
	}
	for _, b := range f.Blocks {
		insts := b.Insts[:0]
		for _, v := range b.Insts {
			if !kill[v] {
				insts = append(insts, v)
			}
		}
		b.Insts = insts
	}
	return len(dead)
}

// CSE performs block-local common-subexpression elimination over pure ops.
func CSE(f *ir.Func) int {
	n := 0
	type key struct {
		op     ir.Op
		a, b   *ir.Value
		c      int32
		cond   uint8
		size   uint8
		signed bool
	}
	for _, blk := range f.Blocks {
		seen := map[key]*ir.Value{}
		for _, v := range blk.Insts {
			var k key
			switch {
			case v.Op.IsBinALU() || v.Op == ir.OpCmp || v.Op == ir.OpSubreg8:
				k = key{op: v.Op, a: v.Args[0], b: v.Args[1], cond: uint8(v.Cond)}
			case v.Op == ir.OpConst:
				k = key{op: v.Op, c: v.Const}
			case v.Op == ir.OpNeg || v.Op == ir.OpNot:
				k = key{op: v.Op, a: v.Args[0]}
			case v.Op == ir.OpSext || v.Op == ir.OpZext:
				k = key{op: v.Op, a: v.Args[0], size: v.Size}
			default:
				continue
			}
			if prev, ok := seen[k]; ok {
				ReplaceUses(f, v, prev)
				n++
				continue
			}
			seen[k] = v
		}
	}
	if n > 0 {
		DCE(f)
	}
	return n
}

// PipelineOpts disables individual passes (for the ablation experiments)
// and optionally supplies an alias oracle.
type PipelineOpts struct {
	NoMem2Reg bool // skip stack-slot promotion
	NoMemOpt  bool // skip store-to-load forwarding and dead-store removal
	NoLICM    bool // skip loop-invariant code motion
	// Oracle, when non-nil, builds a per-function alias oracle each round.
	// It is a factory rather than a fixed oracle because every round
	// rewrites the IR the oracle's facts are keyed on.
	Oracle func(*ir.Func) AliasOracle
	// Typed, when non-nil, supplies the per-function typed-slot partition
	// consumed by SplitSlots. Returning a nil TypedInfo skips the
	// function.
	Typed func(*ir.Func) TypedInfo
}

// Pipeline runs the full optimizer to a fixpoint (bounded), mirroring the
// paper's use of the stock LLVM pass pipeline on refined IR.
func Pipeline(m *ir.Module) { PipelineWith(m, PipelineOpts{}) }

// PipelineWith runs the optimizer with selected passes disabled and returns
// the stack objects mem2reg promoted to SSA registers (still "recovered"
// variables for accuracy accounting, just no longer memory-resident).
func PipelineWith(m *ir.Module, o PipelineOpts) *layout.Program {
	promoted, _ := PipelineWithDebug(m, o, nil)
	return promoted
}

// PipelineWithDebug runs the optimizer like PipelineWith and additionally
// invokes check after every pass application, with the pass name. A
// non-nil error from check aborts optimization immediately and is returned
// with the promotions made so far — the debug pass-manager mode used to
// bisect which pass broke an invariant.
func PipelineWithDebug(m *ir.Module, o PipelineOpts, check func(pass string) error) (*layout.Program, error) {
	promoted := layout.NewProgram()
	step := func(pass string) error {
		if check == nil {
			return nil
		}
		return check(pass)
	}
	for round := 0; round < 8; round++ {
		changed := 0
		if o.Typed != nil {
			for _, f := range m.Funcs {
				changed += SplitSlots(f, o.Typed(f))
			}
			if err := step("split"); err != nil {
				return promoted, err
			}
		}
		if !o.NoMem2Reg {
			for _, f := range m.Funcs {
				changed += Mem2RegLog(f, promoted)
			}
			if err := step("mem2reg"); err != nil {
				return promoted, err
			}
		}
		changed += FoldModule(m)
		if err := step("fold"); err != nil {
			return promoted, err
		}
		if !o.NoLICM {
			changed += LICMModule(m)
			if err := step("licm"); err != nil {
				return promoted, err
			}
		}
		if o.Oracle != nil {
			for _, f := range m.Funcs {
				orc := o.Oracle(f)
				changed += ResolveAddrs(f, orc)
				changed += ForwardStores(f, orc)
			}
			if err := step("vsa"); err != nil {
				return promoted, err
			}
		}
		for _, f := range m.Funcs {
			changed += CSE(f)
			if !o.NoMemOpt {
				var orc AliasOracle
				if o.Oracle != nil {
					orc = o.Oracle(f)
				}
				changed += MemOptWith(f, orc)
				changed += DSEGlobal(f)
			}
			if SimplifyCFG(f) {
				changed++
			}
			changed += DCE(f)
			RemoveDeadAllocas(f)
		}
		if err := step("local"); err != nil {
			return promoted, err
		}
		if changed == 0 {
			break
		}
	}
	return promoted, nil
}
