package opt

import (
	"fmt"

	"wytiwyg/internal/ir"
)

// Type-directed slot splitting (a scalar-replacement-of-aggregates step).
// The type-recovery pass partitions a frame slot into fields; when every
// access to the slot provably hits exactly one field, the slot can be
// split into one alloca per field. The split turns partial accesses into
// full-width accesses at offset zero, which is exactly the shape mem2reg
// promotes — so a struct slot whose fields are scalars melts into SSA
// registers on the next round.

// TypedInfo is the typed-layout interface the optimizer consumes. It is
// implemented by typerec.FuncResult; opt only depends on the contract so
// the packages stay layered.
type TypedInfo interface {
	// SlotPartition returns the slot's committed field partition as
	// [offset,size) pairs sorted by offset, or nil when the slot has no
	// committed multi-cell type. The partition is a claim, not a proof:
	// SplitSlots independently verifies that every access lands exactly
	// on one field before rewriting anything.
	SlotPartition(a *ir.Value) [][2]int64
}

// sanePartition verifies the partition's shape: sorted, non-overlapping,
// in-bounds fields of positive size.
func sanePartition(fields [][2]int64, size int64) bool {
	prev := int64(0)
	for _, fld := range fields {
		off, sz := fld[0], fld[1]
		if off < prev || sz <= 0 || off+sz > size {
			return false
		}
		prev = off + sz
	}
	return true
}

// SplitSlots splits every entry-block alloca whose typed partition has at
// least two fields and whose every use is proven — by a syntactic use
// walk, independent of the type claim — to be a load or store landing
// exactly on one field. Each field becomes a child alloca at the parent's
// frame offset plus the field offset; accesses are redirected and the
// parent (and its address arithmetic) dies by DCE. Returns the number of
// slots split.
func SplitSlots(f *ir.Func, info TypedInfo) int {
	if info == nil {
		return 0
	}
	entry := f.Entry()
	if entry == nil {
		return 0
	}
	uses := BuildUses(f)
	n := 0
	// Snapshot the entry instructions: splitting appends new allocas.
	insts := append([]*ir.Value{}, entry.Insts...)
	for _, a := range insts {
		if a.Op != ir.OpAlloca || a.Block != entry {
			continue
		}
		fields := info.SlotPartition(a)
		if len(fields) < 2 || !sanePartition(fields, int64(a.AllocSize)) {
			continue
		}
		if splitOne(f, entry, a, fields, uses) {
			n++
		}
	}
	if n > 0 {
		DCE(f)
		RemoveDeadAllocas(f)
	}
	return n
}

// fieldAt returns the index of the field exactly matching an access at
// [off, off+sz), or -1.
func fieldAt(fields [][2]int64, off, sz int64) int {
	for i, fld := range fields {
		if fld[0] == off && fld[1] == sz {
			return i
		}
	}
	return -1
}

// splitOne verifies and rewrites a single slot. The proof obligation per
// use of the alloca: a load/store uses it directly as the address (an
// access at offset 0), or an Add with a constant whose every use is a
// load/store address (an access at that offset) — and each access's
// [offset, size) equals one partition field exactly. Anything else (a
// stored address, a call argument, variable indexing) escapes the slot
// and vetoes the split.
func splitOne(f *ir.Func, entry *ir.Block, a *ir.Value, fields [][2]int64, uses Uses) bool {
	type acc struct {
		v     *ir.Value // the load or store
		field int
	}
	var accs []acc
	check := func(v, addr *ir.Value, off int64) bool {
		var sz int64
		switch v.Op {
		case ir.OpLoad:
			if v.Args[0] != addr {
				return false
			}
			sz = accSz(v.Size)
		case ir.OpStore:
			// The address position only; storing the address escapes.
			if v.Args[0] != addr || v.Args[1] == addr {
				return false
			}
			sz = accSz(v.Size)
		default:
			return false
		}
		i := fieldAt(fields, off, sz)
		if i < 0 {
			return false
		}
		accs = append(accs, acc{v, i})
		return true
	}
	for _, u := range uses[a] {
		switch u.Op {
		case ir.OpLoad, ir.OpStore:
			if !check(u, a, 0) {
				return false
			}
		case ir.OpAdd:
			base, k := u.Args[0], u.Args[1]
			if base != a {
				base, k = k, base
			}
			if base != a || k.Op != ir.OpConst {
				return false
			}
			off := int64(k.Const)
			for _, uu := range uses[u] {
				if !check(uu, u, off) {
					return false
				}
			}
		default:
			return false
		}
	}
	if len(accs) == 0 {
		return false
	}
	// Verified: materialize one child alloca per field and redirect.
	children := make([]*ir.Value, len(fields))
	for i, fld := range fields {
		c := f.NewValue(ir.OpAlloca)
		c.AllocSize = uint32(fld[1])
		c.Const = a.Const + int32(fld[0])
		c.Name = fmt.Sprintf("%s.%d", a.Name, fld[0])
		al := a.Align
		for al > 1 && fld[0]%int64(al) != 0 {
			al /= 2
		}
		c.Align = al
		children[i] = c
	}
	insertAfter(entry, a, children...)
	for _, ac := range accs {
		ac.v.Args[0] = children[ac.field]
	}
	// The parent and its address Adds are now dead; DCE reaps them.
	return true
}
