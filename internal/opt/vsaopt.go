package opt

import (
	"wytiwyg/internal/ir"
)

// VSA-driven optimization. The syntactic escape analysis gives up on any
// slot whose address is stored to memory — the pointer-table pattern — and
// mem2reg/MemOpt then treat the slot as opaque. The value-set oracle
// proves where such pointers actually point, which lets the optimizer
// rewrite indirect accesses into direct ones (ResolveAddrs), forward
// stores to loads through proven-equal pointers (ForwardStores), and keep
// forwarded values live across stores the oracle separates (MemOptWith).

// AliasOracle is the alias interface the optimizer consumes. It is
// implemented by vsa.Oracle; opt only depends on the contract so the
// packages stay layered. All answers must be conservative: false/!ok
// means "cannot prove".
type AliasOracle interface {
	// MustNotAlias reports proven byte-disjointness of two accesses.
	MustNotAlias(a *ir.Value, szA int64, b *ir.Value, szB int64) bool
	// PointsToFrameSlot reports that p always equals alloca+off.
	PointsToFrameSlot(p *ir.Value) (alloca *ir.Value, off int64, ok bool)
	// MayTouchSlot reports whether a sz-byte access at p may overlap the
	// width-byte cell at off inside alloca.
	MayTouchSlot(p *ir.Value, sz int64, alloca *ir.Value, off, width int64) bool
}

// accSz normalizes the IR's 0-means-4 access width.
func accSz(size uint8) int64 {
	if size == 0 {
		return 4
	}
	return int64(size)
}

// ResolveAddrs rewrites every value the oracle proves equal to a single
// frame address into the canonical alloca+offset form. The rewrite is the
// lever that un-escapes pointer-table slots: once the loaded pointer's
// uses are redirected to the alloca itself, the pointer load dies, the
// address store becomes unobserved, DSE removes it, and the slot stops
// escaping — unlocking mem2reg on the next round. Returns the number of
// values rewritten.
func ResolveAddrs(f *ir.Func, orc AliasOracle) int {
	if orc == nil {
		return 0
	}
	entry := f.Entry()
	uses := BuildUses(f)
	n := 0
	resolve := func(v *ir.Value) {
		if !v.Op.HasResult() || v.Op == ir.OpAlloca || v.Op == ir.OpConst ||
			len(uses[v]) == 0 {
			return
		}
		a, off, ok := orc.PointsToFrameSlot(v)
		// Allocas outside the entry block would not dominate all uses
		// of v; symbolization places them in the entry.
		if !ok || a.Block != entry || v == a {
			return
		}
		if off == 0 {
			ReplaceUses(f, v, a)
			n++
			return
		}
		// Already canonical alloca+const?
		if v.Op == ir.OpAdd && v.Args[0] == a && v.Args[1].Op == ir.OpConst &&
			int64(v.Args[1].Const) == off {
			return
		}
		if off != int64(int32(off)) {
			return
		}
		k := f.NewValue(ir.OpConst)
		k.Const = int32(off)
		add := f.NewValue(ir.OpAdd, a, k)
		insertAfter(entry, a, k, add)
		ReplaceUses(f, v, add)
		n++
	}
	for _, b := range f.Blocks {
		for _, v := range b.Phis {
			resolve(v)
		}
		for _, v := range b.Insts {
			resolve(v)
		}
	}
	if n > 0 {
		DCE(f)
	}
	return n
}

// insertAfter places new values right after anchor in block b.
func insertAfter(b *ir.Block, anchor *ir.Value, vs ...*ir.Value) {
	for _, v := range vs {
		v.Block = b
	}
	for i, inst := range b.Insts {
		if inst == anchor {
			rest := append([]*ir.Value{}, b.Insts[i+1:]...)
			b.Insts = append(append(b.Insts[:i+1], vs...), rest...)
			return
		}
	}
	// Anchor not found (phi or param): prepend.
	b.Insts = append(append([]*ir.Value{}, vs...), b.Insts...)
}

// ForwardStores is block-local store-to-load forwarding through pointers
// the oracle resolves: a load whose address is proven to denote the same
// cell as an earlier store's address takes the stored value, provided
// every intervening store and call is proven not to touch that cell.
// MemOpt cannot see these cases — its syntactic resolver fails on loaded
// pointers. Returns the number of forwarded loads.
func ForwardStores(f *ir.Func, orc AliasOracle) int {
	if orc == nil {
		return 0
	}
	type cell struct {
		alloca *ir.Value
		off    int64
	}
	n := 0
	for _, b := range f.Blocks {
		type st struct {
			cell cell
			addr *ir.Value
			size int64
			val  *ir.Value
		}
		var stores []st
		for _, v := range b.Insts {
			switch v.Op {
			case ir.OpStore:
				sz := accSz(v.Size)
				if a, off, ok := orc.PointsToFrameSlot(v.Args[0]); ok {
					stores = append(stores, st{cell{a, off}, v.Args[0], sz, v.Args[1]})
				} else {
					// A store the oracle cannot place: drop entries it may
					// overwrite.
					kept := stores[:0]
					for _, s := range stores {
						if orc.MustNotAlias(v.Args[0], sz, s.addr, s.size) {
							kept = append(kept, s)
						}
					}
					stores = kept
				}
			case ir.OpLoad:
				sz := accSz(v.Size)
				a, off, ok := orc.PointsToFrameSlot(v.Args[0])
				if !ok || sz != 4 {
					continue
				}
				for i := len(stores) - 1; i >= 0; i-- {
					s := stores[i]
					if s.cell == (cell{a, off}) && s.size == sz {
						ReplaceUses(f, v, s.val)
						n++
						break
					}
					// An intervening store that may overlap the cell blocks
					// forwarding from anything earlier.
					if orc.MayTouchSlot(s.addr, s.size, a, off, sz) {
						break
					}
				}
			case ir.OpCall, ir.OpCallInd, ir.OpCallExt, ir.OpCallExtRaw:
				stores = stores[:0] // callees may write any escaped cell
			}
		}
	}
	if n > 0 {
		DCE(f)
	}
	return n
}
