package opt_test

import (
	"fmt"
	"testing"

	"wytiwyg/internal/ir"
	"wytiwyg/internal/isa"
	"wytiwyg/internal/opt"
)

// unitFn builds `f(x) = <expr>` where build receives the parameter and
// emits the expression; the function returns the expression's value.
func unitFn(build func(f *ir.Func, b *ir.Block, x *ir.Value) *ir.Value) (*ir.Func, *ir.Block) {
	m := ir.NewModule("fold")
	f := m.NewFunc("f", 0x1000)
	f.NumRet = 1
	x := f.NewParam(isa.EAX, "x")
	b := f.NewBlock(0)
	v := build(f, b, x)
	b.Append(f.NewValue(ir.OpRet, v))
	return f, b
}

func uConst(f *ir.Func, b *ir.Block, c int32) *ir.Value {
	v := f.NewValue(ir.OpConst)
	v.Const = c
	b.Append(v)
	return v
}

// retVal returns the (single) value the function returns.
func retVal(f *ir.Func) *ir.Value {
	last := f.Blocks[len(f.Blocks)-1]
	return last.Term().Args[0]
}

// Constant-constant operations of every opcode fold to the exact value.
func TestFoldAllBinaryOps(t *testing.T) {
	type tc struct {
		op   ir.Op
		a, b int32
		want int32
	}
	cases := []tc{
		{ir.OpAdd, 1<<31 - 1, 1, -1 << 31},
		{ir.OpSub, 3, 10, -7},
		{ir.OpMul, -3, 5, -15},
		{ir.OpDiv, -9, 2, -4},
		{ir.OpMod, -9, 2, -1},
		{ir.OpAnd, 0xF0F, 0x0FF, 0x00F},
		{ir.OpOr, 0xF00, 0x00F, 0xF0F},
		{ir.OpXor, -1, 1, -2},
		{ir.OpShl, 3, 33, 6}, // count masks to 5 bits
		{ir.OpShr, -1, 24, 255},
		{ir.OpSar, -8, 1, -4},
	}
	for _, c := range cases {
		c := c
		t.Run(c.op.String(), func(t *testing.T) {
			f, _ := unitFn(func(f *ir.Func, b *ir.Block, x *ir.Value) *ir.Value {
				v := f.NewValue(c.op, uConst(f, b, c.a), uConst(f, b, c.b))
				b.Append(v)
				return v
			})
			if n := opt.FoldConstants(f); n == 0 {
				t.Fatal("nothing folded")
			}
			r := retVal(f)
			if r.Op != ir.OpConst || r.Const != c.want {
				t.Errorf("folded to %s const=%d, want const %d", r.Op, r.Const, c.want)
			}
		})
	}
}

// Division and modulo by a constant zero must NOT fold: the trap is the
// program's observable behaviour.
func TestFoldKeepsDivByZero(t *testing.T) {
	for _, op := range []ir.Op{ir.OpDiv, ir.OpMod} {
		f, _ := unitFn(func(f *ir.Func, b *ir.Block, x *ir.Value) *ir.Value {
			v := f.NewValue(op, uConst(f, b, 7), uConst(f, b, 0))
			b.Append(v)
			return v
		})
		opt.FoldConstants(f)
		if r := retVal(f); r.Op != op {
			t.Errorf("%s by zero folded to %s", op, r.Op)
		}
	}
}

// Algebraic identities collapse to the non-constant operand or to zero.
func TestFoldIdentities(t *testing.T) {
	type tc struct {
		name  string
		build func(f *ir.Func, b *ir.Block, x *ir.Value) *ir.Value
		// wantParam: result is the parameter itself; wantZero: const 0.
		wantParam bool
		wantZero  bool
	}
	binRight := func(op ir.Op, c int32) func(f *ir.Func, b *ir.Block, x *ir.Value) *ir.Value {
		return func(f *ir.Func, b *ir.Block, x *ir.Value) *ir.Value {
			v := f.NewValue(op, x, uConst(f, b, c))
			b.Append(v)
			return v
		}
	}
	binLeft := func(op ir.Op, c int32) func(f *ir.Func, b *ir.Block, x *ir.Value) *ir.Value {
		return func(f *ir.Func, b *ir.Block, x *ir.Value) *ir.Value {
			v := f.NewValue(op, uConst(f, b, c), x)
			b.Append(v)
			return v
		}
	}
	cases := []tc{
		{"add0", binRight(ir.OpAdd, 0), true, false},
		{"sub0", binRight(ir.OpSub, 0), true, false},
		{"or0", binRight(ir.OpOr, 0), true, false},
		{"xor0", binRight(ir.OpXor, 0), true, false},
		{"shl0", binRight(ir.OpShl, 0), true, false},
		{"shr0", binRight(ir.OpShr, 0), true, false},
		{"sar0", binRight(ir.OpSar, 0), true, false},
		{"mul1", binRight(ir.OpMul, 1), true, false},
		{"div1", binRight(ir.OpDiv, 1), true, false},
		{"mul0", binRight(ir.OpMul, 0), false, true},
		{"and0", binRight(ir.OpAnd, 0), false, true},
		{"0add", binLeft(ir.OpAdd, 0), true, false},
		{"0mul", binLeft(ir.OpMul, 0), false, true},
		{"0and", binLeft(ir.OpAnd, 0), false, true},
		{"1mul", binLeft(ir.OpMul, 1), true, false},
		{"x-x", func(f *ir.Func, b *ir.Block, x *ir.Value) *ir.Value {
			v := f.NewValue(ir.OpSub, x, x)
			b.Append(v)
			return v
		}, false, true},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			f, _ := unitFn(c.build)
			if n := opt.FoldConstants(f); n == 0 {
				t.Fatal("nothing folded")
			}
			r := retVal(f)
			switch {
			case c.wantParam && r.Op != ir.OpParam:
				t.Errorf("result is %s, want the parameter", r.Op)
			case c.wantZero && (r.Op != ir.OpConst || r.Const != 0):
				t.Errorf("result is %s const=%d, want const 0", r.Op, r.Const)
			}
		})
	}
}

// (x + c1) + c2 reassociates into x + (c1+c2); (x + c1) - c2 likewise.
func TestFoldReassociates(t *testing.T) {
	for _, sub := range []bool{false, true} {
		op := ir.OpAdd
		want := int32(30)
		if sub {
			op = ir.OpSub
			want = 10
		}
		f, _ := unitFn(func(f *ir.Func, b *ir.Block, x *ir.Value) *ir.Value {
			inner := f.NewValue(ir.OpAdd, x, uConst(f, b, 20))
			b.Append(inner)
			v := f.NewValue(op, inner, uConst(f, b, 10))
			b.Append(v)
			return v
		})
		opt.FoldConstants(f)
		r := retVal(f)
		if r.Op != ir.OpAdd || r.Args[0].Op != ir.OpParam {
			t.Fatalf("sub=%v: result %s(%s), want add(param, const)", sub, r.Op, r.Args[0].Op)
		}
		if c := r.Args[1]; c.Op != ir.OpConst || c.Const != want {
			t.Errorf("sub=%v: combined const = %d, want %d", sub, c.Const, want)
		}
	}
}

// Constant compares fold through every condition code.
func TestFoldCmpAllConds(t *testing.T) {
	type pair struct{ a, b int32 }
	pairs := []pair{{-1, 1}, {1, -1}, {4, 4}}
	want := map[isa.Cond][]int32{
		isa.CondEQ: {0, 0, 1},
		isa.CondNE: {1, 1, 0},
		isa.CondLT: {1, 0, 0},
		isa.CondLE: {1, 0, 1},
		isa.CondGT: {0, 1, 0},
		isa.CondGE: {0, 1, 1},
		isa.CondB:  {0, 1, 0},
		isa.CondBE: {0, 1, 1},
		isa.CondA:  {1, 0, 0},
		isa.CondAE: {1, 0, 1},
	}
	for cond, exp := range want {
		for i, p := range pairs {
			f, _ := unitFn(func(f *ir.Func, b *ir.Block, x *ir.Value) *ir.Value {
				v := f.NewValue(ir.OpCmp, uConst(f, b, p.a), uConst(f, b, p.b))
				v.Cond = cond
				b.Append(v)
				return v
			})
			opt.FoldConstants(f)
			r := retVal(f)
			if r.Op != ir.OpConst || r.Const != exp[i] {
				t.Errorf("cmp.%s(%d,%d) folded to %s/%d, want %d",
					cond, p.a, p.b, r.Op, r.Const, exp[i])
			}
		}
	}
}

// Unary and width ops fold.
func TestFoldUnaryAndWidth(t *testing.T) {
	mk := func(op ir.Op, c int32, size uint8) *ir.Func {
		f, _ := unitFn(func(f *ir.Func, b *ir.Block, x *ir.Value) *ir.Value {
			v := f.NewValue(op, uConst(f, b, c))
			v.Size = size
			b.Append(v)
			return v
		})
		return f
	}
	cases := []struct {
		name string
		f    *ir.Func
		want int32
	}{
		{"neg", mk(ir.OpNeg, 44, 0), -44},
		{"not", mk(ir.OpNot, 0, 0), -1},
		{"sext1", mk(ir.OpSext, 0x80, 1), -128},
		{"sext2", mk(ir.OpSext, 0x8000, 2), -32768},
		{"sext4", mk(ir.OpSext, -5, 4), -5},
		{"zext1", mk(ir.OpZext, 0x1FF, 1), 0xFF},
		{"zext2", mk(ir.OpZext, 0x10001, 2), 1},
		{"zext4", mk(ir.OpZext, -1, 4), -1},
	}
	for _, c := range cases {
		opt.FoldConstants(c.f)
		r := retVal(c.f)
		if r.Op != ir.OpConst || r.Const != c.want {
			t.Errorf("%s folded to %s/%d, want %d", c.name, r.Op, r.Const, c.want)
		}
	}
	// subreg8 with two consts.
	f, _ := unitFn(func(f *ir.Func, b *ir.Block, x *ir.Value) *ir.Value {
		v := f.NewValue(ir.OpSubreg8, uConst(f, b, 0x1200), uConst(f, b, 0x34))
		b.Append(v)
		return v
	})
	opt.FoldConstants(f)
	if r := retVal(f); r.Op != ir.OpConst || r.Const != 0x1234 {
		t.Errorf("subreg8 folded to %s/%#x, want 0x1234", r.Op, r.Const)
	}
}

// The module-level wrappers walk every function.
func TestModuleWrappers(t *testing.T) {
	m := ir.NewModule("w")
	for i := 0; i < 3; i++ {
		f := m.NewFunc(fmt.Sprintf("f%d", i), uint32(0x1000+i*0x100))
		f.NumRet = 1
		b := f.NewBlock(0)
		// alloca/store/load chain for mem2reg + a const add for fold.
		al := f.NewValue(ir.OpAlloca)
		al.AllocSize = 4
		al.Const = -4
		b.Append(al)
		k := uConst(f, b, 21)
		sum := f.NewValue(ir.OpAdd, k, k)
		b.Append(sum)
		st := f.NewValue(ir.OpStore, al, sum)
		st.Size = 4
		b.Append(st)
		ld := f.NewValue(ir.OpLoad, al)
		ld.Size = 4
		b.Append(ld)
		b.Append(f.NewValue(ir.OpRet, ld))
	}
	if n := opt.FoldModule(m); n == 0 {
		t.Error("FoldModule folded nothing")
	}
	opt.Mem2RegModule(m)
	for _, f := range m.Funcs {
		r := retVal(f)
		if r.Op == ir.OpLoad {
			t.Errorf("%s: load not promoted by Mem2RegModule", f.Name)
		}
	}
	opt.SimplifyCFGModule(m)
	if err := ir.Verify(m); err != nil {
		t.Fatalf("after wrappers: %v", err)
	}
}

// A branch on a constant condition folds to a jump and the dead arm is
// removed; straight-line chains merge.
func TestSimplifyCFGConstBranchChain(t *testing.T) {
	m := ir.NewModule("cfg")
	f := m.NewFunc("f", 0x1000)
	f.NumRet = 1
	entry := f.NewBlock(0)
	mid := f.NewBlock(0)
	dead := f.NewBlock(0)
	tail := f.NewBlock(0)

	one := f.NewValue(ir.OpConst)
	one.Const = 1
	entry.Append(one)
	br := f.NewValue(ir.OpBr, one)
	entry.Append(br)
	entry.Succs = []*ir.Block{mid, dead}
	mid.Preds = []*ir.Block{entry}
	dead.Preds = []*ir.Block{entry}

	mid.Append(f.NewValue(ir.OpJmp))
	mid.Succs = []*ir.Block{tail}
	tail.Preds = []*ir.Block{mid}

	k := f.NewValue(ir.OpConst)
	k.Const = 9
	dead.Append(k)
	dead.Append(f.NewValue(ir.OpRet, k))

	r := f.NewValue(ir.OpConst)
	r.Const = 7
	tail.Append(r)
	tail.Append(f.NewValue(ir.OpRet, r))

	opt.SimplifyCFG(f)
	if err := ir.Verify(m); err != nil {
		t.Fatalf("after SimplifyCFG: %v", err)
	}
	if len(f.Blocks) != 1 {
		t.Errorf("blocks after simplify = %d, want 1 (const-br fold + chain merge)", len(f.Blocks))
	}
	if rv := retVal(f); rv.Op != ir.OpConst || rv.Const != 7 {
		t.Errorf("live return = %s/%d, want const 7", rv.Op, rv.Const)
	}
}
