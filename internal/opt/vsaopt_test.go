package opt_test

import (
	"testing"

	"wytiwyg/internal/ir"
	"wytiwyg/internal/isa"
	"wytiwyg/internal/layout"
	"wytiwyg/internal/opt"
	"wytiwyg/internal/vsa"
)

// vsaOracle is the factory the real pipeline consumers use.
func vsaOracle(f *ir.Func) opt.AliasOracle { return vsa.NewOracle(f) }

func valloca(f *ir.Func, b *ir.Block, name string, size uint32, off int32) *ir.Value {
	a := f.NewValue(ir.OpAlloca)
	a.AllocSize = size
	a.Name = name
	a.Const = off
	b.Append(a)
	return a
}

func vedge(from, to *ir.Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

func store4(f *ir.Func, b *ir.Block, addr, val *ir.Value) *ir.Value {
	s := f.NewValue(ir.OpStore, addr, val)
	s.Size = 4
	b.Append(s)
	return s
}

func load4(f *ir.Func, b *ir.Block, addr *ir.Value) *ir.Value {
	l := f.NewValue(ir.OpLoad, addr)
	l.Size = 4
	b.Append(l)
	return l
}

// pointerTable builds the pattern neither mem2reg nor block-local MemOpt
// can crack: an 8-byte table slot holding two addresses (the offset
// arithmetic defeats mem2reg's direct-use rule), filled in the entry block
// and dereferenced behind a branch (defeating block-local forwarding).
//
//	entry: tab[0] = &a; tab[4] = &b; br c
//	B1:    q1 = tab[0]; *q1 = 7
//	B2:    q2 = tab[4]; *q2 = 9
//	B3:    return *a + *b
func pointerTable() (*ir.Module, *ir.Func) {
	m := ir.NewModule("t")
	f := m.NewFunc("f", 0x1000)
	f.NumRet = 1
	entry := f.NewBlock(0)
	m.Entry = f
	b1 := f.NewBlock(0)
	b2 := f.NewBlock(0)
	b3 := f.NewBlock(0)
	vedge(entry, b1)
	vedge(entry, b2)
	vedge(b1, b3)
	vedge(b2, b3)

	c := f.NewParam(isa.EAX, "c")
	a := valloca(f, entry, "a", 4, -16)
	bb := valloca(f, entry, "b", 4, -12)
	tab := valloca(f, entry, "tab", 8, -8)
	store4(f, entry, tab, a)
	four := konst(f, entry, 4)
	tab4 := f.NewValue(ir.OpAdd, tab, four)
	entry.Append(tab4)
	store4(f, entry, tab4, bb)
	entry.Append(f.NewValue(ir.OpBr, c))

	q1 := load4(f, b1, tab)
	store4(f, b1, q1, konst(f, b1, 7))
	b1.Append(f.NewValue(ir.OpJmp))

	q2 := load4(f, b2, tab4)
	store4(f, b2, q2, konst(f, b2, 9))
	b2.Append(f.NewValue(ir.OpJmp))

	x := load4(f, b3, a)
	y := load4(f, b3, bb)
	s := f.NewValue(ir.OpAdd, x, y)
	b3.Append(s)
	b3.Append(f.NewValue(ir.OpRet, s))
	return m, f
}

func countPromoted(p *layout.Program) int {
	n := 0
	for _, name := range p.FuncNames() {
		n += len(p.Frame(name).Vars)
	}
	return n
}

func countLoads(f *ir.Func) int {
	n := 0
	for _, b := range f.Blocks {
		for _, v := range b.Insts {
			if v.Op == ir.OpLoad {
				n++
			}
		}
	}
	return n
}

// TestPipelineOraclePromotesMore is the acceptance gate for the VSA
// integration: on the pointer-table pattern the oracle-equipped pipeline
// must promote strictly more stack slots than the baseline, whose escape
// analysis can never untangle the stored addresses.
func TestPipelineOraclePromotesMore(t *testing.T) {
	mBase, fBase := pointerTable()
	base := opt.PipelineWith(mBase, opt.PipelineOpts{})
	mOrc, fOrc := pointerTable()
	withOrc := opt.PipelineWith(mOrc, opt.PipelineOpts{Oracle: vsaOracle})

	nb, no := countPromoted(base), countPromoted(withOrc)
	if no <= nb {
		t.Errorf("oracle promoted %d slots, baseline %d; want strictly more", no, nb)
	}
	if nb != 0 {
		t.Errorf("baseline unexpectedly promoted %d slots", nb)
	}
	// Every load should be resolved or forwarded away with the oracle; the
	// baseline cannot remove the indirect ones.
	if n := countLoads(fOrc); n != 0 {
		t.Errorf("oracle pipeline left %d loads", n)
	}
	if n := countLoads(fBase); n == 0 {
		t.Error("baseline unexpectedly removed every load")
	}
}

// TestResolveAddrsRewritesLoadedPointer checks the rewrite itself: loaded
// table entries become the allocas they provably hold.
func TestResolveAddrsRewritesLoadedPointer(t *testing.T) {
	_, f := pointerTable()
	n := opt.ResolveAddrs(f, vsaOracle(f))
	if n == 0 {
		t.Fatal("ResolveAddrs rewrote nothing")
	}
	for _, b := range f.Blocks {
		for _, v := range b.Insts {
			if v.Op == ir.OpStore && v.Args[0].Op == ir.OpLoad {
				t.Errorf("store still addresses through a loaded pointer: %v", v)
			}
		}
	}
}

// TestForwardStoresThroughLoadedPointer: a store through a resolved
// pointer forwards to a later direct load of the same cell, across an
// intervening store the oracle separates.
func TestForwardStoresThroughLoadedPointer(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("f", 0x1000)
	f.NumRet = 1
	b := f.NewBlock(0)
	m.Entry = f
	a := valloca(f, b, "a", 4, -12)
	c := valloca(f, b, "c", 4, -8)
	p := valloca(f, b, "p", 4, -4)
	store4(f, b, p, a)
	q := load4(f, b, p)
	seven := konst(f, b, 7)
	store4(f, b, q, seven) // *q = 7 (into a)
	store4(f, b, c, konst(f, b, 1))
	x := load4(f, b, a) // must see 7 through q
	ret := f.NewValue(ir.OpRet, x)
	b.Append(ret)

	if n := opt.ForwardStores(f, vsaOracle(f)); n == 0 {
		t.Fatal("ForwardStores forwarded nothing")
	}
	if ret.Args[0] != seven {
		t.Errorf("load not forwarded: ret %v, want the stored 7", ret.Args[0])
	}
}

// TestMemOptOracleSurvivesIndirectStore: with the oracle, a forwarded
// value survives a store through a phi-carried pointer proven to target a
// different slot; without it, the syntactically-unknown store kills the
// entry because the slot's address escaped.
func TestMemOptOracleSurvivesIndirectStore(t *testing.T) {
	build := func() (*ir.Func, *ir.Value, *ir.Value) {
		m := ir.NewModule("t")
		f := m.NewFunc("f", 0x1000)
		f.NumRet = 1
		entry := f.NewBlock(0)
		m.Entry = f
		b2 := f.NewBlock(0)
		vedge(entry, b2)
		a := valloca(f, entry, "a", 4, -12)
		bb := valloca(f, entry, "b", 4, -8)
		p := valloca(f, entry, "p", 4, -4)
		store4(f, entry, p, a) // a escapes
		entry.Append(f.NewValue(ir.OpJmp))
		// q arrives through a phi: invisible to the syntactic resolver.
		q := f.NewValue(ir.OpPhi, bb)
		b2.AddPhi(q)
		five := konst(f, b2, 5)
		store4(f, b2, a, five)
		store4(f, b2, q, konst(f, b2, 9))
		x := load4(f, b2, a)
		ret := f.NewValue(ir.OpRet, x)
		b2.Append(ret)
		return f, five, ret
	}

	f, _, ret := build()
	opt.MemOpt(f)
	if ret.Args[0].Op != ir.OpLoad {
		t.Errorf("baseline MemOpt forwarded across an unknown store: ret %v", ret.Args[0])
	}
	f2, five2, ret2 := build()
	opt.MemOptWith(f2, vsaOracle(f2))
	if ret2.Args[0] != five2 {
		t.Errorf("oracle MemOpt did not forward: ret %v, want the stored 5", ret2.Args[0])
	}
}
