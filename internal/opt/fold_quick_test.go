package opt_test

import (
	"testing"
	"testing/quick"

	"wytiwyg/internal/ir"
	"wytiwyg/internal/irexec"
	"wytiwyg/internal/isa"
	"wytiwyg/internal/machine"
	"wytiwyg/internal/opt"
)

// The constant folder and the IR interpreter are two implementations of
// the same semantics; quick.Check drives random (op, a, b) triples through
// both and requires bit-identical results. A folder that disagrees with
// the interpreter miscompiles quietly, so this is the property most worth
// hammering.
func TestFoldMatchesInterpreterQuick(t *testing.T) {
	binOps := []ir.Op{
		ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpMod,
		ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr, ir.OpSar,
		ir.OpSubreg8,
	}

	interp := func(op ir.Op, a, b int32) (int32, bool) {
		m := ir.NewModule("q")
		f := m.NewFunc("_start", 0x1000)
		blk := f.NewBlock(0)
		ka := f.NewValue(ir.OpConst)
		ka.Const = a
		blk.Append(ka)
		kb := f.NewValue(ir.OpConst)
		kb.Const = b
		blk.Append(kb)
		v := f.NewValue(op, ka, kb)
		blk.Append(v)
		call := f.NewValue(ir.OpCallExt, v)
		call.Sym = "exit"
		call.NumRet = 1
		blk.Append(call)
		blk.Append(f.NewValue(ir.OpTrap))
		m.Entry = f
		r, err := irexec.Run(m, machine.Input{}, nil, nil)
		if err != nil {
			return 0, false // trap (division by zero)
		}
		return r.ExitCode, true
	}

	folded := func(op ir.Op, a, b int32) (int32, bool) {
		m := ir.NewModule("q")
		f := m.NewFunc("f", 0x1000)
		f.NumRet = 1
		blk := f.NewBlock(0)
		ka := f.NewValue(ir.OpConst)
		ka.Const = a
		blk.Append(ka)
		kb := f.NewValue(ir.OpConst)
		kb.Const = b
		blk.Append(kb)
		v := f.NewValue(op, ka, kb)
		blk.Append(v)
		blk.Append(f.NewValue(ir.OpRet, v))
		opt.FoldConstants(f)
		r := blk.Term().Args[0]
		if r.Op != ir.OpConst {
			return 0, false // folder declined (e.g. div by zero)
		}
		return r.Const, true
	}

	prop := func(opSel uint8, a, b int32) bool {
		op := binOps[int(opSel)%len(binOps)]
		fv, fok := folded(op, a, b)
		iv, iok := interp(op, a, b)
		if !fok {
			// The folder may only decline where execution would trap:
			// division by zero.
			return (op == ir.OpDiv || op == ir.OpMod) && b == 0 && !iok
		}
		return iok && fv == iv
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// Same cross-check for the compare op over every condition code.
func TestFoldCmpMatchesInterpreterQuick(t *testing.T) {
	run := func(fold bool, cond isa.Cond, a, b int32) int32 {
		m := ir.NewModule("q")
		f := m.NewFunc("_start", 0x1000)
		blk := f.NewBlock(0)
		ka := f.NewValue(ir.OpConst)
		ka.Const = a
		blk.Append(ka)
		kb := f.NewValue(ir.OpConst)
		kb.Const = b
		blk.Append(kb)
		v := f.NewValue(ir.OpCmp, ka, kb)
		v.Cond = cond
		blk.Append(v)
		if fold {
			f.NumRet = 1
			blk.Append(f.NewValue(ir.OpRet, v))
			opt.FoldConstants(f)
			return blk.Term().Args[0].Const
		}
		call := f.NewValue(ir.OpCallExt, v)
		call.Sym = "exit"
		call.NumRet = 1
		blk.Append(call)
		blk.Append(f.NewValue(ir.OpTrap))
		m.Entry = f
		r, err := irexec.Run(m, machine.Input{}, nil, nil)
		if err != nil {
			panic(err)
		}
		return r.ExitCode
	}
	prop := func(condSel uint8, a, b int32) bool {
		cond := isa.Cond(int(condSel) % int(isa.NumConds))
		return run(true, cond, a, b) == run(false, cond, a, b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
