package opt_test

import (
	"testing"

	"wytiwyg/internal/core"
	"wytiwyg/internal/ir"
	"wytiwyg/internal/irexec"
	"wytiwyg/internal/machine"
	"wytiwyg/internal/minicc/gen"
	"wytiwyg/internal/opt"
)

// The optimization pipeline must be idempotent: a second run over already
// optimized IR reaches a fixed point (identical printed module) and
// preserves behaviour. Catches passes that keep "improving" (oscillating)
// or that miscompile already-canonical IR.
func TestPipelineIdempotent(t *testing.T) {
	srcs := []struct {
		name string
		src  string
		exit int32
	}{
		{"loops", `
int main() {
	int a[8]; int i, s = 0;
	for (i = 0; i < 8; i++) a[i] = i * i;
	for (i = 0; i < 8; i++) s += a[i];
	return s; /* 140 */
}`, 140},
		{"calls", `
int gcd(int a, int b) { while (b != 0) { int t = a % b; a = b; b = t; } return a; }
int main() { return gcd(360, 225); /* 45 */ }`, 45},
		{"branches", `
int classify(int x) {
	if (x < 0) return 0;
	if (x < 10) return 1;
	if (x < 100) return 2;
	return 3;
}
int main() { return classify(-5) + classify(5)*10 + classify(50)*100 + classify(500)*113; }`, 549},
	}
	for _, tc := range srcs {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for _, prof := range []gen.Profile{gen.GCC12O3, gen.GCC12O0} {
				img, err := gen.Build(tc.src, prof, tc.name)
				if err != nil {
					t.Fatalf("%s: %v", prof.Name, err)
				}
				p, err := core.LiftBinary(img, nil)
				if err != nil {
					t.Fatalf("%s: lift: %v", prof.Name, err)
				}
				if err := p.Refine(); err != nil {
					t.Fatalf("%s: refine: %v", prof.Name, err)
				}
				opt.Pipeline(p.Mod)
				if err := ir.Verify(p.Mod); err != nil {
					t.Fatalf("%s: verify after pipeline: %v", prof.Name, err)
				}
				first := p.Mod.String()
				r1, err := irexec.Run(p.Mod, machine.Input{}, nil, nil)
				if err != nil || r1.ExitCode != tc.exit {
					t.Fatalf("%s: after 1st pipeline: exit %d err %v", prof.Name, r1.ExitCode, err)
				}
				opt.Pipeline(p.Mod)
				if err := ir.Verify(p.Mod); err != nil {
					t.Fatalf("%s: verify after 2nd pipeline: %v", prof.Name, err)
				}
				second := p.Mod.String()
				if first != second {
					t.Errorf("%s: pipeline not idempotent:\n--- first ---\n%s\n--- second ---\n%s",
						prof.Name, first, second)
				}
				r2, err := irexec.Run(p.Mod, machine.Input{}, nil, nil)
				if err != nil || r2.ExitCode != tc.exit {
					t.Fatalf("%s: after 2nd pipeline: exit %d err %v", prof.Name, r2.ExitCode, err)
				}
			}
		})
	}
}
