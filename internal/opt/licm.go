package opt

import "wytiwyg/internal/ir"

// LICM hoists loop-invariant pure computations into the block preceding the
// loop header. Loops are detected as reverse-post-order back edges; the
// body approximation (the RPO range between header and latch) is safe
// because only pure, non-trapping values move.
func LICM(f *ir.Func) int {
	order := rpoBlocks(f)
	pos := make(map[*ir.Block]int, len(order))
	for i, b := range order {
		pos[b] = i
	}
	idom := ir.Dominators(f)
	dominates := func(a, b *ir.Block) bool {
		for ; b != nil; b = idom[b] {
			if b == a {
				return true
			}
			if b == f.Entry() {
				return false
			}
		}
		return false
	}
	moved := 0
	for _, latch := range order {
		for _, header := range latch.Succs {
			hp, ok := pos[header]
			if !ok || hp > pos[latch] {
				continue // not a back edge
			}
			// Natural-loop membership: blocks that reach the latch
			// backwards without crossing the header.
			members := map[*ir.Block]bool{header: true, latch: true}
			stack := []*ir.Block{latch}
			for len(stack) > 0 {
				b := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if b == header {
					continue
				}
				for _, p := range b.Preds {
					if !members[p] {
						members[p] = true
						stack = append(stack, p)
					}
				}
			}
			inLoop := func(b *ir.Block) bool { return members[b] }
			// Preheader: the unique predecessor of the header from outside
			// the loop, itself ending in an unconditional jump.
			var pre *ir.Block
			outside := 0
			for _, p := range header.Preds {
				if !members[p] {
					outside++
					pre = p
				}
			}
			if outside != 1 || pre == nil || len(pre.Succs) != 1 {
				continue
			}
			// Values defined outside the loop (or hoisted) are invariant —
			// but hoisting a use into the preheader is only sound when the
			// definition dominates the preheader (a def in a block merely
			// *outside* the loop, e.g. past the exit, would end up below
			// its new use).
			hoisted := map[*ir.Value]bool{}
			invariant := func(v *ir.Value) bool {
				if hoisted[v] {
					return true
				}
				if v.Op == ir.OpParam {
					return true
				}
				return v.Block != nil && !inLoop(v.Block) && dominates(v.Block, pre)
			}
			for changed := true; changed; {
				changed = false
				for i := hp; i <= pos[latch] && i < len(order); i++ {
					b := order[i]
					if !members[b] {
						continue
					}
					insts := b.Insts[:0]
					for _, v := range b.Insts {
						if hoistable(v) && allInvariant(v, invariant) {
							// Move before the preheader terminator.
							pre.Insts = append(pre.Insts[:len(pre.Insts)-1],
								v, pre.Insts[len(pre.Insts)-1])
							v.Block = pre
							hoisted[v] = true
							moved++
							changed = true
							continue
						}
						insts = append(insts, v)
					}
					b.Insts = insts
				}
			}
		}
	}
	return moved
}

func hoistable(v *ir.Value) bool {
	switch v.Op {
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor,
		ir.OpShl, ir.OpShr, ir.OpSar, ir.OpNeg, ir.OpNot, ir.OpCmp,
		ir.OpSext, ir.OpZext, ir.OpSubreg8, ir.OpConst:
		return true
	case ir.OpDiv, ir.OpMod:
		d := v.Args[1]
		return d.Op == ir.OpConst && d.Const != 0
	}
	return false
}

func allInvariant(v *ir.Value, inv func(*ir.Value) bool) bool {
	for _, a := range v.Args {
		if !inv(a) {
			return false
		}
	}
	return true
}

// LICMModule hoists across every function.
func LICMModule(m *ir.Module) int {
	n := 0
	for _, f := range m.Funcs {
		n += LICM(f)
	}
	return n
}
