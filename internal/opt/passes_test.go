package opt_test

import (
	"testing"

	"wytiwyg/internal/ir"
	"wytiwyg/internal/isa"
	"wytiwyg/internal/opt"
)

// mkFunc builds a function with one entry block and returns both.
func mkFunc(name string) (*ir.Module, *ir.Func, *ir.Block) {
	m := ir.NewModule("t")
	f := m.NewFunc(name, 0x1000)
	f.NumRet = 1
	b := f.NewBlock(0)
	m.Entry = f
	return m, f, b
}

func konst(f *ir.Func, b *ir.Block, c int32) *ir.Value {
	k := f.NewValue(ir.OpConst)
	k.Const = c
	b.Append(k)
	return k
}

func TestLICMHoistsInvariant(t *testing.T) {
	// entry -> header <-> body, header -> exit; body computes p+1 (invariant).
	m, f, entry := mkFunc("f")
	p := f.NewParam(isa.EAX, "p")
	header := f.NewBlock(0)
	body := f.NewBlock(0)
	exit := f.NewBlock(0)

	entry.Succs = []*ir.Block{header}
	header.Preds = []*ir.Block{entry, body}
	header.Succs = []*ir.Block{body, exit}
	body.Preds = []*ir.Block{header}
	body.Succs = []*ir.Block{header}
	exit.Preds = []*ir.Block{header}

	// entry: the zero feeding the phi must dominate the entry->header edge.
	zero := konst(f, entry, 0)
	entry.Append(f.NewValue(ir.OpJmp))

	// header: i = phi(0, i2); cmp i < 10
	iphi := f.NewValue(ir.OpPhi, zero, nil)
	header.AddPhi(iphi)
	ten := konst(f, header, 10)
	cond := f.NewValue(ir.OpCmp, iphi, ten)
	cond.Cond = isa.CondLT
	header.Append(cond)
	header.Append(f.NewValue(ir.OpBr, cond))

	// body: inv = p + 1 (invariant); i2 = i + inv
	one := konst(f, body, 1)
	inv := f.NewValue(ir.OpAdd, p, one)
	body.Append(inv)
	i2 := f.NewValue(ir.OpAdd, iphi, inv)
	body.Append(i2)
	iphi.Args[1] = i2
	body.Append(f.NewValue(ir.OpJmp))

	exit.Append(f.NewValue(ir.OpRet, iphi))

	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	moved := opt.LICM(f)
	if moved == 0 {
		t.Fatal("LICM hoisted nothing")
	}
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	// inv must now live in the entry (preheader) block.
	found := false
	for _, v := range entry.Insts {
		if v == inv {
			found = true
		}
	}
	if !found {
		t.Error("invariant add not hoisted into the preheader")
	}
	// i2 depends on the phi: must stay in the loop.
	for _, v := range entry.Insts {
		if v == i2 {
			t.Error("loop-variant value hoisted")
		}
	}
}

func TestCSEDedupes(t *testing.T) {
	m, f, b := mkFunc("f")
	p := f.NewParam(isa.EAX, "p")
	one := konst(f, b, 1)
	a1 := f.NewValue(ir.OpAdd, p, one)
	b.Append(a1)
	a2 := f.NewValue(ir.OpAdd, p, one) // duplicate
	b.Append(a2)
	sum := f.NewValue(ir.OpAdd, a1, a2)
	b.Append(sum)
	b.Append(f.NewValue(ir.OpRet, sum))
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	if n := opt.CSE(f); n == 0 {
		t.Fatal("CSE found nothing")
	}
	// sum's operands must both be a1 now.
	if sum.Args[0] != a1 || sum.Args[1] != a1 {
		t.Errorf("duplicate not rewired: %v %v", sum.Args[0], sum.Args[1])
	}
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
}

func TestMemOptForwardsAndKillsDeadStores(t *testing.T) {
	m, f, b := mkFunc("f")
	a := f.NewValue(ir.OpAlloca)
	a.AllocSize = 8
	a.Align = 4
	b.Append(a)
	k1 := konst(f, b, 11)
	st1 := f.NewValue(ir.OpStore, a, k1)
	st1.Size = 4
	b.Append(st1)
	// Load forwards from st1.
	ld := f.NewValue(ir.OpLoad, a)
	ld.Size = 4
	b.Append(ld)
	// Overwrite without an intervening observer: st1 was observed by ld,
	// st2 is observed by the ret-load below, st3 kills st2... build:
	k2 := konst(f, b, 22)
	st2 := f.NewValue(ir.OpStore, a, k2)
	st2.Size = 4
	b.Append(st2)
	k3 := konst(f, b, 33)
	st3 := f.NewValue(ir.OpStore, a, k3) // st2 is dead
	st3.Size = 4
	b.Append(st3)
	ld2 := f.NewValue(ir.OpLoad, a)
	ld2.Size = 4
	b.Append(ld2)
	sum := f.NewValue(ir.OpAdd, ld, ld2)
	b.Append(sum)
	b.Append(f.NewValue(ir.OpRet, sum))

	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	n := opt.MemOpt(f)
	if n == 0 {
		t.Fatal("MemOpt did nothing")
	}
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	// Both loads must have been forwarded.
	if sum.Args[0] != k1 {
		t.Errorf("first load not forwarded: %v(%s)", sum.Args[0], sum.Args[0].Op)
	}
	if sum.Args[1] != k3 {
		t.Errorf("second load not forwarded: %v(%s)", sum.Args[1], sum.Args[1].Op)
	}
	// st2 must be gone.
	for _, v := range b.Insts {
		if v == st2 {
			t.Error("dead store survived")
		}
	}
}

func TestMemOptRespectsEscapes(t *testing.T) {
	// A stored-to alloca whose address escapes through a call cannot have
	// its store forwarded across the call.
	m, f, b := mkFunc("f")
	a := f.NewValue(ir.OpAlloca)
	a.AllocSize = 4
	a.Align = 4
	b.Append(a)
	k := konst(f, b, 5)
	st := f.NewValue(ir.OpStore, a, k)
	st.Size = 4
	b.Append(st)
	// The address escapes to an external call, which may write through it.
	call := f.NewValue(ir.OpCallExt, a)
	call.Sym = "free" // any external taking a pointer
	call.NumRet = 1
	b.Append(call)
	ld := f.NewValue(ir.OpLoad, a)
	ld.Size = 4
	b.Append(ld)
	b.Append(f.NewValue(ir.OpRet, ld))
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	opt.MemOpt(f)
	// The load must NOT have been forwarded to k.
	term := b.Term()
	if term.Args[0] == k {
		t.Error("forwarded across an escaping call")
	}
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
}

func TestDCERemovesDeadChain(t *testing.T) {
	m, f, b := mkFunc("f")
	p := f.NewParam(isa.EAX, "p")
	dead1 := f.NewValue(ir.OpAdd, p, p)
	b.Append(dead1)
	dead2 := f.NewValue(ir.OpMul, dead1, dead1)
	b.Append(dead2)
	b.Append(f.NewValue(ir.OpRet, p))
	if n := opt.DCE(f); n != 2 {
		t.Errorf("DCE removed %d, want 2", n)
	}
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveDeadAllocas(t *testing.T) {
	m, f, b := mkFunc("f")
	a := f.NewValue(ir.OpAlloca)
	a.AllocSize = 4
	b.Append(a)
	p := f.NewParam(isa.EAX, "p")
	b.Append(f.NewValue(ir.OpRet, p))
	if opt.DCE(f) != 0 {
		t.Error("DCE must keep allocas")
	}
	if n := opt.RemoveDeadAllocas(f); n != 1 {
		t.Errorf("RemoveDeadAllocas = %d, want 1", n)
	}
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
}

func TestSimplifyCFGFoldsConstBranch(t *testing.T) {
	m, f, b0 := mkFunc("f")
	b1 := f.NewBlock(0)
	b2 := f.NewBlock(0)
	k := konst(f, b0, 1)
	br := f.NewValue(ir.OpBr, k)
	b0.Append(br)
	b0.Succs = []*ir.Block{b1, b2}
	b1.Preds = []*ir.Block{b0}
	b2.Preds = []*ir.Block{b0}
	r1 := konst(f, b1, 100)
	b1.Append(f.NewValue(ir.OpRet, r1))
	r2 := konst(f, b2, 200)
	b2.Append(f.NewValue(ir.OpRet, r2))
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	if !opt.SimplifyCFG(f) {
		t.Fatal("SimplifyCFG did nothing")
	}
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	// Everything collapses into one block returning 100.
	if len(f.Blocks) != 1 {
		t.Errorf("blocks = %d, want 1", len(f.Blocks))
	}
	term := f.Entry().Term()
	if term.Op != ir.OpRet || term.Args[0].Const != 100 {
		t.Errorf("final return = %v", term)
	}
}
