// Package opt implements the optimizer passes that run over the lifted IR —
// the analogue of the LLVM pass pipeline in the paper's toolchain. It also
// provides the shared SSA utilities (use lists, use replacement, dead-code
// elimination) that the refinement passes build on.
package opt

import "wytiwyg/internal/ir"

// Uses maps each value to the instructions that consume it, within one
// function.
type Uses map[*ir.Value][]*ir.Value

// BuildUses scans a function and returns its use lists.
func BuildUses(f *ir.Func) Uses {
	u := make(Uses)
	add := func(user *ir.Value) {
		for _, a := range user.Args {
			u[a] = append(u[a], user)
		}
	}
	for _, b := range f.Blocks {
		for _, v := range b.Phis {
			add(v)
		}
		for _, v := range b.Insts {
			add(v)
		}
	}
	return u
}

// ReplaceUses rewrites every use of old inside f to new.
func ReplaceUses(f *ir.Func, old, new *ir.Value) {
	rewrite := func(v *ir.Value) {
		for i, a := range v.Args {
			if a == old {
				v.Args[i] = new
			}
		}
	}
	for _, b := range f.Blocks {
		for _, v := range b.Phis {
			rewrite(v)
		}
		for _, v := range b.Insts {
			rewrite(v)
		}
	}
}

// hasSideEffects reports whether a value must be kept even when unused.
func hasSideEffects(v *ir.Value) bool {
	switch v.Op {
	case ir.OpStore, ir.OpCall, ir.OpCallInd, ir.OpCallExt, ir.OpCallExtRaw,
		ir.OpJmp, ir.OpBr, ir.OpSwitch, ir.OpRet, ir.OpTrap:
		return true
	case ir.OpAlloca:
		// Allocas are address anchors for passes in flight; RemoveDeadAllocas
		// sweeps the genuinely dead ones.
		return true
	case ir.OpDiv, ir.OpMod:
		// May trap on zero; keep unless the divisor is a non-zero constant.
		d := v.Args[1]
		return !(d.Op == ir.OpConst && d.Const != 0)
	}
	return false
}

// DCE removes pure instructions whose results are never used. Returns the
// number of removed values.
func DCE(f *ir.Func) int {
	removed := 0
	for {
		uses := BuildUses(f)
		live := func(v *ir.Value) bool {
			return hasSideEffects(v) || len(uses[v]) > 0
		}
		changed := false
		for _, b := range f.Blocks {
			phis := b.Phis[:0]
			for _, v := range b.Phis {
				if live(v) {
					phis = append(phis, v)
				} else {
					changed = true
					removed++
				}
			}
			b.Phis = phis
			insts := b.Insts[:0]
			for _, v := range b.Insts {
				if live(v) {
					insts = append(insts, v)
				} else {
					changed = true
					removed++
				}
			}
			b.Insts = insts
		}
		if !changed {
			return removed
		}
	}
}

// DCEModule runs DCE over every function.
func DCEModule(m *ir.Module) int {
	n := 0
	for _, f := range m.Funcs {
		n += DCE(f)
	}
	return n
}

// RemoveDeadAllocas deletes allocas with no remaining uses (typically after
// mem2reg promoted them). Returns the number removed.
func RemoveDeadAllocas(f *ir.Func) int {
	uses := BuildUses(f)
	removed := 0
	for _, b := range f.Blocks {
		insts := b.Insts[:0]
		for _, v := range b.Insts {
			if v.Op == ir.OpAlloca && len(uses[v]) == 0 {
				removed++
				continue
			}
			insts = append(insts, v)
		}
		b.Insts = insts
	}
	return removed
}
