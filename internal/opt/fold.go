package opt

import (
	"wytiwyg/internal/ir"
	"wytiwyg/internal/isa"
)

// FoldConstants folds constant expressions and applies algebraic
// simplifications in place. Returns the number of rewritten values.
func FoldConstants(f *ir.Func) int {
	n := 0
	for changed := true; changed; {
		changed = false
		for _, b := range f.Blocks {
			for _, v := range b.Insts {
				if foldValue(f, v) {
					n++
					changed = true
				}
			}
			// Single-predecessor phis are copies.
			if len(b.Preds) == 1 && len(b.Phis) > 0 {
				for _, phi := range b.Phis {
					ReplaceUses(f, phi, phi.Args[0])
				}
				b.Phis = nil
				changed = true
			}
			// Phis whose incoming values are all identical (or the phi
			// itself) collapse.
			keep := b.Phis[:0]
			for _, phi := range b.Phis {
				var same *ir.Value
				trivial := true
				for _, a := range phi.Args {
					if a == phi || a == same {
						continue
					}
					if same == nil {
						same = a
						continue
					}
					trivial = false
					break
				}
				if trivial && same != nil {
					ReplaceUses(f, phi, same)
					changed = true
					n++
					continue
				}
				keep = append(keep, phi)
			}
			b.Phis = keep
		}
	}
	return n
}

// FoldModule folds every function.
func FoldModule(m *ir.Module) int {
	n := 0
	for _, f := range m.Funcs {
		n += FoldConstants(f)
	}
	return n
}

// replaceAndKill replaces every use of v with repl and turns v into an
// inert constant so the fold loop does not match it again (DCE sweeps it).
func replaceAndKill(f *ir.Func, v, repl *ir.Value) {
	ReplaceUses(f, v, repl)
	v.Op = ir.OpConst
	v.Const = 0
	v.Args = nil
}

func cval(v *ir.Value) (int32, bool) {
	if v.Op == ir.OpConst {
		return v.Const, true
	}
	return 0, false
}

func makeConst(v *ir.Value, c int32) {
	v.Op = ir.OpConst
	v.Const = c
	v.Args = nil
}

// foldValue rewrites v in place when it folds; reports whether it changed.
func foldValue(f *ir.Func, v *ir.Value) bool {
	switch v.Op {
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor,
		ir.OpShl, ir.OpShr, ir.OpSar, ir.OpDiv, ir.OpMod:
		a, aok := cval(v.Args[0])
		b, bok := cval(v.Args[1])
		if aok && bok {
			if c, ok := foldBin(v.Op, a, b); ok {
				makeConst(v, c)
				return true
			}
			return false
		}
		// Identities.
		if bok {
			switch {
			case b == 0 && (v.Op == ir.OpAdd || v.Op == ir.OpSub || v.Op == ir.OpOr ||
				v.Op == ir.OpXor || v.Op == ir.OpShl || v.Op == ir.OpShr || v.Op == ir.OpSar):
				replaceAndKill(f, v, v.Args[0])
				return true
			case b == 1 && (v.Op == ir.OpMul || v.Op == ir.OpDiv):
				replaceAndKill(f, v, v.Args[0])
				return true
			case b == 0 && v.Op == ir.OpMul:
				makeConst(v, 0)
				return true
			case b == 0 && v.Op == ir.OpAnd:
				makeConst(v, 0)
				return true
			}
		}
		if aok {
			switch {
			case a == 0 && v.Op == ir.OpAdd:
				replaceAndKill(f, v, v.Args[1])
				return true
			case a == 0 && (v.Op == ir.OpMul || v.Op == ir.OpAnd):
				makeConst(v, 0)
				return true
			case a == 1 && v.Op == ir.OpMul:
				replaceAndKill(f, v, v.Args[1])
				return true
			}
		}
		// Reassociate (x + c1) + c2 -> x + (c1+c2).
		if (v.Op == ir.OpAdd || v.Op == ir.OpSub) && bok {
			inner := v.Args[0]
			if inner.Op == ir.OpAdd {
				if c1, ok := cval(inner.Args[1]); ok {
					delta := b
					if v.Op == ir.OpSub {
						delta = -b
					}
					k := f.NewValue(ir.OpConst)
					k.Const = c1 + delta
					k.Block = v.Block
					insertBefore(v.Block, v, k)
					v.Op = ir.OpAdd
					v.Args = []*ir.Value{inner.Args[0], k}
					return true
				}
			}
		}
		// x - x = 0.
		if v.Op == ir.OpSub && v.Args[0] == v.Args[1] {
			makeConst(v, 0)
			return true
		}
	case ir.OpNeg:
		if a, ok := cval(v.Args[0]); ok {
			makeConst(v, -a)
			return true
		}
	case ir.OpNot:
		if a, ok := cval(v.Args[0]); ok {
			makeConst(v, ^a)
			return true
		}
	case ir.OpCmp:
		a, aok := cval(v.Args[0])
		b, bok := cval(v.Args[1])
		if aok && bok {
			if evalCond(v.Cond, uint32(a), uint32(b)) {
				makeConst(v, 1)
			} else {
				makeConst(v, 0)
			}
			return true
		}
	case ir.OpSext:
		if a, ok := cval(v.Args[0]); ok {
			switch v.Size {
			case 1:
				makeConst(v, int32(int8(a)))
			case 2:
				makeConst(v, int32(int16(a)))
			default:
				makeConst(v, a)
			}
			return true
		}
	case ir.OpZext:
		if a, ok := cval(v.Args[0]); ok {
			switch v.Size {
			case 1:
				makeConst(v, a&0xFF)
			case 2:
				makeConst(v, a&0xFFFF)
			default:
				makeConst(v, a)
			}
			return true
		}
	case ir.OpSubreg8:
		a, aok := cval(v.Args[0])
		b, bok := cval(v.Args[1])
		if aok && bok {
			makeConst(v, a&^0xFF|b&0xFF)
			return true
		}
	}
	return false
}

func foldBin(op ir.Op, a, b int32) (int32, bool) {
	switch op {
	case ir.OpAdd:
		return a + b, true
	case ir.OpSub:
		return a - b, true
	case ir.OpMul:
		return a * b, true
	case ir.OpDiv:
		if b == 0 {
			return 0, false
		}
		return a / b, true
	case ir.OpMod:
		if b == 0 {
			return 0, false
		}
		return a % b, true
	case ir.OpAnd:
		return a & b, true
	case ir.OpOr:
		return a | b, true
	case ir.OpXor:
		return a ^ b, true
	case ir.OpShl:
		return a << (uint32(b) & 31), true
	case ir.OpShr:
		return int32(uint32(a) >> (uint32(b) & 31)), true
	case ir.OpSar:
		return a >> (uint32(b) & 31), true
	}
	return 0, false
}

func evalCond(c isa.Cond, a, b uint32) bool {
	switch c {
	case isa.CondEQ:
		return a == b
	case isa.CondNE:
		return a != b
	case isa.CondLT:
		return int32(a) < int32(b)
	case isa.CondLE:
		return int32(a) <= int32(b)
	case isa.CondGT:
		return int32(a) > int32(b)
	case isa.CondGE:
		return int32(a) >= int32(b)
	case isa.CondB:
		return a < b
	case isa.CondBE:
		return a <= b
	case isa.CondA:
		return a > b
	case isa.CondAE:
		return a >= b
	}
	return false
}

// insertBefore places nv immediately before anchor within block b.
func insertBefore(b *ir.Block, anchor, nv *ir.Value) {
	for i, v := range b.Insts {
		if v == anchor {
			b.Insts = append(b.Insts[:i], append([]*ir.Value{nv}, b.Insts[i:]...)...)
			return
		}
	}
	// Anchor not found (phi?): prepend.
	b.Insts = append([]*ir.Value{nv}, b.Insts...)
}
