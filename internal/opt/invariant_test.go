package opt_test

import (
	"fmt"
	"testing"

	"wytiwyg/internal/codegen/irgen"
	"wytiwyg/internal/ir"
	"wytiwyg/internal/irexec"
	"wytiwyg/internal/machine"
	"wytiwyg/internal/opt"
)

// Per-pass invariant testing over the random-IR generator: every
// individual pass must leave the module verifiable (SSA + dominance) and
// behaviour-preserving, not just the pipeline as a whole. Each pass runs
// against a freshly generated module so a fault cannot hide behind an
// earlier pass's cleanup.

var passes = []struct {
	name string
	run  func(m *ir.Module)
}{
	{"mem2reg", func(m *ir.Module) { opt.Mem2RegModule(m) }},
	{"fold", func(m *ir.Module) { opt.FoldModule(m) }},
	{"licm", func(m *ir.Module) { opt.LICMModule(m) }},
	{"cse", perFunc(opt.CSE)},
	{"memopt", perFunc(opt.MemOpt)},
	{"dseglobal", perFunc(opt.DSEGlobal)},
	{"simplifycfg", func(m *ir.Module) {
		for _, f := range m.Funcs {
			opt.SimplifyCFG(f)
		}
	}},
	{"dce", perFunc(opt.DCE)},
}

func perFunc(pass func(*ir.Func) int) func(m *ir.Module) {
	return func(m *ir.Module) {
		for _, f := range m.Funcs {
			pass(f)
		}
	}
}

func TestPassInvariants(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			a := int32(seed*11 - 200)
			b := int32(seed*-5 + 150)
			ref := irgen.Build(seed, a, b)
			want, err := irexec.Run(ref, machine.Input{}, nil, nil)
			if err != nil {
				t.Fatalf("irexec baseline: %v", err)
			}
			for _, p := range passes {
				m := irgen.Build(seed, a, b)
				p.run(m)
				if err := ir.Verify(m); err != nil {
					t.Errorf("%s broke IR invariants: %v", p.name, err)
					continue
				}
				got, err := irexec.Run(m, machine.Input{}, nil, nil)
				if err != nil {
					t.Errorf("%s: irexec: %v", p.name, err)
					continue
				}
				if got.ExitCode != want.ExitCode {
					t.Errorf("%s changed behaviour: %d -> %d", p.name, want.ExitCode, got.ExitCode)
				}
			}
		})
	}
}

// TestPipelineDebugChecks runs the full optimizer with the debug
// pass-manager hook re-verifying the module between every pass.
func TestPipelineDebugChecks(t *testing.T) {
	for seed := int64(26); seed <= 40; seed++ {
		m := irgen.Build(seed, int32(seed), int32(-seed))
		var trail []string
		_, err := opt.PipelineWithDebug(m, opt.PipelineOpts{}, func(pass string) error {
			trail = append(trail, pass)
			if err := ir.Verify(m); err != nil {
				return fmt.Errorf("after %s: %w", pass, err)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("seed %d: %v (trail %v)", seed, err, trail)
		}
		if len(trail) == 0 {
			t.Fatal("debug hook never invoked")
		}
	}
}

// TestPipelineDebugAborts proves a failing check stops the pipeline.
func TestPipelineDebugAborts(t *testing.T) {
	m := irgen.Build(99, 1, 2)
	calls := 0
	_, err := opt.PipelineWithDebug(m, opt.PipelineOpts{}, func(pass string) error {
		calls++
		return fmt.Errorf("stop at %s", pass)
	})
	if err == nil {
		t.Fatal("error from check not propagated")
	}
	if calls != 1 {
		t.Fatalf("pipeline kept running after failed check (%d calls)", calls)
	}
}
