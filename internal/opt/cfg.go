package opt

import "wytiwyg/internal/ir"

// SimplifyCFG folds constant branches, removes unreachable blocks, and
// merges straight-line block chains. Returns true if anything changed.
func SimplifyCFG(f *ir.Func) bool {
	any := false
	for {
		changed := false
		if foldBranches(f) {
			changed = true
		}
		if removeUnreachable(f) {
			changed = true
		}
		if mergeChains(f) {
			changed = true
		}
		if !changed {
			return any
		}
		any = true
	}
}

// SimplifyCFGModule simplifies every function.
func SimplifyCFGModule(m *ir.Module) bool {
	any := false
	for _, f := range m.Funcs {
		if SimplifyCFG(f) {
			any = true
		}
	}
	return any
}

// removeEdge deletes one CFG edge b -> s (a single Succs slot). The
// predecessor link (and phi arguments) drop only when no other slot still
// targets s.
func removeEdge(b *ir.Block, slot int) {
	s := b.Succs[slot]
	b.Succs = append(b.Succs[:slot], b.Succs[slot+1:]...)
	for _, other := range b.Succs {
		if other == s {
			return // another slot still reaches s
		}
	}
	for i, p := range s.Preds {
		if p == b {
			s.Preds = append(s.Preds[:i], s.Preds[i+1:]...)
			for _, phi := range s.Phis {
				phi.Args = append(phi.Args[:i], phi.Args[i+1:]...)
			}
			return
		}
	}
}

// foldBranches turns constant-condition branches and single-target switches
// into jumps.
func foldBranches(f *ir.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		t := b.Term()
		if t == nil {
			continue
		}
		switch t.Op {
		case ir.OpBr:
			if c, ok := cval(t.Args[0]); ok {
				keep := 0
				if c == 0 {
					keep = 1
				}
				// Drop the not-taken edge (slot 1-keep), then rewrite.
				removeEdge(b, 1-keep)
				t.Op = ir.OpJmp
				t.Args = nil
				changed = true
			} else if b.Succs[0] == b.Succs[1] {
				removeEdge(b, 1)
				t.Op = ir.OpJmp
				t.Args = nil
				changed = true
			}
		case ir.OpSwitch:
			if c, ok := cval(t.Args[0]); ok {
				target := len(t.Cases) // default slot
				for i, cs := range t.Cases {
					if cs.Val == uint32(c) {
						target = i
						break
					}
				}
				// Remove all slots except the chosen one (back to front so
				// indexes stay valid).
				for i := len(b.Succs) - 1; i >= 0; i-- {
					if i != target {
						removeEdge(b, i)
						if i < target {
							target--
						}
					}
				}
				t.Op = ir.OpJmp
				t.Args = nil
				t.Cases = nil
				changed = true
			}
		}
	}
	return changed
}

// removeUnreachable drops blocks not reachable from the entry.
func removeUnreachable(f *ir.Func) bool {
	reach := map[*ir.Block]bool{}
	var dfs func(b *ir.Block)
	dfs = func(b *ir.Block) {
		if reach[b] {
			return
		}
		reach[b] = true
		for _, s := range b.Succs {
			dfs(s)
		}
	}
	dfs(f.Entry())
	changed := false
	for _, b := range f.Blocks {
		if reach[b] {
			continue
		}
		// Unlink from reachable successors.
		for len(b.Succs) > 0 {
			removeEdge(b, 0)
		}
		changed = true
	}
	if !changed {
		return false
	}
	blocks := f.Blocks[:0]
	for _, b := range f.Blocks {
		if reach[b] {
			blocks = append(blocks, b)
		}
	}
	f.Blocks = blocks
	return true
}

// mergeChains splices b and its single successor s when s has b as its only
// predecessor.
func mergeChains(f *ir.Func) bool {
	changed := false
	for {
		merged := false
		for _, b := range f.Blocks {
			t := b.Term()
			if t == nil || t.Op != ir.OpJmp || len(b.Succs) != 1 {
				continue
			}
			s := b.Succs[0]
			if s == b || len(s.Preds) != 1 {
				continue
			}
			// Single-pred phis are copies.
			for _, phi := range s.Phis {
				ReplaceUses(f, phi, phi.Args[0])
			}
			s.Phis = nil
			// Splice: drop b's jmp, append s's instructions.
			b.Insts = b.Insts[:len(b.Insts)-1]
			for _, v := range s.Insts {
				v.Block = b
				b.Insts = append(b.Insts, v)
			}
			b.Succs = s.Succs
			for _, ss := range s.Succs {
				for i, p := range ss.Preds {
					if p == s {
						ss.Preds[i] = b
					}
				}
			}
			s.Succs = nil
			s.Preds = nil
			s.Insts = nil
			// Remove s from the block list.
			for i, blk := range f.Blocks {
				if blk == s {
					f.Blocks = append(f.Blocks[:i], f.Blocks[i+1:]...)
					break
				}
			}
			merged = true
			changed = true
			break // block list mutated; restart scan
		}
		if !merged {
			return changed
		}
	}
}
