package regsave_test

import (
	"bytes"
	"testing"

	"wytiwyg/internal/asm"
	"wytiwyg/internal/core"
	"wytiwyg/internal/irexec"
	"wytiwyg/internal/isa"
	"wytiwyg/internal/machine"
	"wytiwyg/internal/minicc/gen"
	"wytiwyg/internal/obj"
	"wytiwyg/internal/regsave"
)

func buildAndLift(t *testing.T, src string, prof gen.Profile, inputs []machine.Input) *core.Pipeline {
	t.Helper()
	img, err := gen.Build(src, prof, "t")
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.LiftBinary(img, inputs)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// checkBehaviour verifies the refined module still matches native behaviour.
func checkBehaviour(t *testing.T, p *core.Pipeline, prof string) {
	t.Helper()
	for i, input := range p.Inputs {
		var nat, lift bytes.Buffer
		n, err := machine.Execute(p.Img, input, &nat)
		if err != nil {
			t.Fatalf("%s input %d native: %v", prof, i, err)
		}
		r, err := irexec.Run(p.Mod, input, &lift, nil)
		if err != nil {
			t.Fatalf("%s input %d refined: %v", prof, i, err)
		}
		if r.ExitCode != n.ExitCode || lift.String() != nat.String() {
			t.Errorf("%s input %d: exit %d/%d out %q/%q",
				prof, i, r.ExitCode, n.ExitCode, lift.String(), nat.String())
		}
	}
}

const calleeSavedSrc = `
int work(int a, int b) {
	int i, s = 0;
	for (i = 0; i < a; i++) s += i * b;
	return s;
}
int main() { return work(10, 3) + work(4, 1); }
`

func TestClassification(t *testing.T) {
	// gcc44-O3 keeps a frame pointer and uses one callee-saved register:
	// both must classify as saved, not as arguments.
	p := buildAndLift(t, calleeSavedSrc, gen.GCC44O3, nil)
	tr := regsave.NewTracer()
	for _, input := range p.Inputs {
		if _, err := irexec.Run(p.Mod, input, nil, tr); err != nil {
			t.Fatal(err)
		}
	}
	classes := tr.Classify(p.Mod)
	work := p.Mod.FuncByName("work")
	if work == nil {
		t.Fatal("work not lifted")
	}
	c := classes[work]
	if c[isa.EBP] != regsave.Saved {
		t.Errorf("ebp = %v, want saved", c[isa.EBP])
	}
	if c[isa.EBX] != regsave.Saved {
		t.Errorf("ebx = %v, want saved", c[isa.EBX])
	}
	// Arguments are on the stack in our ABI; no register should be an
	// argument for work.
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		if r == isa.ESP {
			continue
		}
		if c[r] == regsave.Arg {
			t.Errorf("%v classified as argument", r)
		}
	}
	// EAX is clobbered (holds the result).
	if c[isa.EAX] == regsave.Saved {
		t.Errorf("eax = saved, want clobbered")
	}
}

func TestApplyShrinksSignatures(t *testing.T) {
	for _, prof := range gen.Profiles {
		p := buildAndLift(t, calleeSavedSrc, prof, nil)
		if err := p.RefineRegSave(); err != nil {
			t.Fatalf("%s: %v", prof.Name, err)
		}
		work := p.Mod.FuncByName("work")
		if len(work.Params) >= 8 {
			t.Errorf("%s: work still has %d params", prof.Name, len(work.Params))
		}
		if work.NumRet >= 8 {
			t.Errorf("%s: work still returns %d values", prof.Name, work.NumRet)
		}
		// ESP must remain in the signature (the stack-reference refinement
		// needs it).
		hasESP := false
		for _, pp := range work.Params {
			if pp.RegHint == isa.ESP {
				hasESP = true
			}
		}
		if !hasESP {
			t.Errorf("%s: ESP dropped from params", prof.Name)
		}
		checkBehaviour(t, p, prof.Name)
	}
}

func TestApplyPreservesBehaviourAcrossPrograms(t *testing.T) {
	programs := []struct {
		name   string
		src    string
		inputs []machine.Input
	}{
		{"recursion", `
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int main() { return fib(11); }`, nil},
		{"figure2", `
struct p { int x; int y; };
int f3(int n) { return n / 12; }
struct p *f2(struct p *a, struct p *b) { return a; }
int f1() {
	struct p *ptr; struct p a; struct p b[3];
	a.x = 3; a.y = 4;
	ptr = f2(&a, b);
	b[f3(sizeof(b))] = a;
	ptr->y = b[1].x;
	return ptr->y * 100 + b[2].x * 10 + b[2].y;
}
int main() { return f1(); }`, nil},
		{"tailcalls", `
int isOdd(int n);
int isEven(int n) { if (n == 0) return 1; return isOdd(n - 1); }
int isOdd(int n) { if (n == 0) return 0; return isEven(n - 1); }
int main() { return isEven(30) * 10 + isOdd(7); }`, nil},
		{"fnptr", `
int twice(int x) { return 2 * x; }
int thrice(int x) { return 3 * x; }
int apply(fnptr f, int v) { return f(v); }
int main() { return apply(&twice, 21) + apply(&thrice, 5); }`, nil},
		{"printf", `
extern int printf(char *fmt, ...);
int main() { printf("%d-%s\n", 12, "x"); return 0; }`, nil},
		{"inputs", `
extern int input_int(int i);
int main() {
	int n = input_int(0), s = 0, i;
	for (i = 0; i <= n; i++) s += i;
	return s;
}`, []machine.Input{{Ints: []int32{10}}, {Ints: []int32{3}}}},
	}
	for _, prog := range programs {
		for _, prof := range gen.Profiles {
			p := buildAndLift(t, prog.src, prof, prog.inputs)
			if err := p.RefineRegSave(); err != nil {
				t.Fatalf("%s/%s: %v", prog.name, prof.Name, err)
			}
			checkBehaviour(t, p, prog.name+"/"+prof.Name)
		}
	}
}

// Forwarded registers: a middle function passing a register-carried value
// through must inherit the argument classification. Our ABI passes args on
// the stack, so exercise forwarding with hand-written assembly: f1 receives
// a value in EDX and forwards it to f2, which uses it.
func TestForwardedRegisterConstraint(t *testing.T) {
	src := `
main:
    movi edx, 21
    call f1
    halt
f1:
    call f2        ; edx forwarded, not touched here
    ret
f2:
    mov eax, edx   ; edx used as a value: argument
    add eax, eax
    ret
`
	img, err := asmBuild(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.LiftBinary(img, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr := regsave.NewTracer()
	for _, input := range p.Inputs {
		if _, err := irexec.Run(p.Mod, input, nil, tr); err != nil {
			t.Fatal(err)
		}
	}
	classes := tr.Classify(p.Mod)
	f1 := p.Mod.FuncByName("f1")
	f2 := p.Mod.FuncByName("f2")
	if classes[f2][isa.EDX] != regsave.Arg {
		t.Errorf("f2 edx = %v, want argument", classes[f2][isa.EDX])
	}
	if classes[f1][isa.EDX] != regsave.Arg {
		t.Errorf("f1 edx = %v, want argument (forwarded constraint)", classes[f1][isa.EDX])
	}
	if err := regsave.Apply(p.Mod, classes); err != nil {
		t.Fatal(err)
	}
	// Behaviour: exit code 42.
	res, err := irexec.Run(p.Mod, machine.Input{}, nil, nil)
	if err != nil || res.ExitCode != 42 {
		t.Errorf("refined run: %v, exit %d", err, res.ExitCode)
	}
	// f1 must now take edx explicitly.
	hasEDX := false
	for _, pp := range f1.Params {
		if pp.RegHint == isa.EDX {
			hasEDX = true
		}
	}
	if !hasEDX {
		t.Error("f1 lost its forwarded edx argument")
	}
}

// A register saved on the stack and restored (push/pop around a call) must
// classify as saved even though its value transits memory.
func TestSaveRestoreThroughMemory(t *testing.T) {
	src := `
main:
    movi ebx, 7
    call f
    mov eax, ebx   ; caller relies on ebx being preserved
    halt
f:
    push ebx       ; save
    movi ebx, 99   ; clobber
    pop ebx        ; restore
    ret
`
	img, err := asmBuild(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.LiftBinary(img, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr := regsave.NewTracer()
	if _, err := irexec.Run(p.Mod, machine.Input{}, nil, tr); err != nil {
		t.Fatal(err)
	}
	classes := tr.Classify(p.Mod)
	f := p.Mod.FuncByName("f")
	if classes[f][isa.EBX] != regsave.Saved {
		t.Errorf("ebx = %v, want saved", classes[f][isa.EBX])
	}
	if err := regsave.Apply(p.Mod, classes); err != nil {
		t.Fatal(err)
	}
	res, err := irexec.Run(p.Mod, machine.Input{}, nil, nil)
	if err != nil || res.ExitCode != 7 {
		t.Errorf("refined run: %v, exit %d (want 7)", err, res.ExitCode)
	}
}

func asmBuild(src string) (*obj.Image, error) {
	return asm.Assemble("t", src, "")
}
