// Package regsave implements the paper's first refinement (§4.1): the
// dynamic identification of saved registers. At every function entry each
// virtual register is assigned a symbolic value; the analysis watches how
// those symbols flow:
//
//   - a symbol that is only stored to the function's own frame, reloaded
//     from there, and present in the register at return is a *saved*
//     register;
//   - a symbol consumed by any other operation (arithmetic, address
//     computation, a store elsewhere) marks the register an *argument*;
//   - a symbol passed straight through to a callee is *forwarded*; its
//     classification is deferred to constraints ("if edx is an argument in
//     f2, it is an argument in f1") resolved after tracing;
//   - a register whose value at return no longer matches its symbol is
//     neither (clobbered).
//
// Apply then rewrites the module: saved registers disappear from lifted
// signatures, with callers keeping their pre-call SSA value (the paper's
// preemptive save/restore, which in SSA form is just using the old value);
// argument registers stay as parameters; return tuples shrink to the
// registers callers actually consume.
package regsave

import (
	"fmt"
	"sort"

	"wytiwyg/internal/ir"
	"wytiwyg/internal/irexec"
	"wytiwyg/internal/isa"
	"wytiwyg/internal/opt"
)

// Class is a register's classification within one function.
type Class uint8

// Classification lattice (joins upward).
const (
	Saved Class = iota // preserved across the call; drop from the signature
	Other              // clobbered: neither preserved nor read
	Arg                // read by the function: a real argument
)

func (c Class) String() string {
	switch c {
	case Saved:
		return "saved"
	case Other:
		return "clobbered"
	case Arg:
		return "argument"
	}
	return "?"
}

type fnReg struct {
	f *ir.Func
	r isa.Reg
}

// symbol tags a register's incoming value in one frame. Frames are recycled
// between activations, so symbols carry the activation epoch rather than the
// frame pointer.
type symbol struct {
	epoch uint64
	fn    *ir.Func
	reg   isa.Reg
}

type shadowEntry struct {
	epoch uint64
	sym   *symbol
}

// fwdRecord remembers symbols forwarded through a call site so extracts can
// inherit them.
type fwdRecord struct {
	syms [isa.NumRegs]*symbol
}

// Tracer is the instrumentation runtime of the first refinement.
type Tracer struct {
	arg      map[fnReg]bool
	violated map[fnReg]bool
	forwards map[fnReg]map[fnReg]bool
	shadow   map[uint32]shadowEntry
}

// NewTracer returns an empty analysis.
func NewTracer() *Tracer {
	return &Tracer{
		arg:      make(map[fnReg]bool),
		violated: make(map[fnReg]bool),
		forwards: make(map[fnReg]map[fnReg]bool),
		shadow:   make(map[uint32]shadowEntry),
	}
}

// SeedStatic classifies a function's registers from a static liveness
// estimate instead of traced evidence. Statically recovered cold functions
// never execute during refinement, so without seeding every register would
// keep the default Saved class — and Apply would then substitute callers'
// pre-call values for the callee's results, which is only sound when traces
// witnessed the preservation. Registers that may be read before written
// become arguments; every other register is marked violated (no preservation
// claim). Over-approximating the argument set is harmless: the callee simply
// receives (and re-exports) values it may ignore.
func (t *Tracer) SeedStatic(f *ir.Func, liveIn [isa.NumRegs]bool) {
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		if r == isa.ESP {
			continue
		}
		if liveIn[r] {
			t.arg[fnReg{f, r}] = true
		} else {
			t.violated[fnReg{f, r}] = true
		}
	}
}

// Fork returns a fresh, independent tracer for one input's run. Symbols,
// shadow entries and frame metadata are run-local (they are keyed by frame
// identity), so per-input tracers observe exactly what one shared
// sequential tracer would; the classification sets they produce merge with
// Join.
func (t *Tracer) Fork() irexec.Tracer { return NewTracer() }

// Join folds a forked tracer's observations into t. All three result
// structures are sets (argument uses, return-condition violations,
// forwarding constraints), so the union is order-independent and joining
// per-input tracers in any order yields the same classification as one
// tracer observing all inputs sequentially.
func (t *Tracer) Join(o irexec.Tracer) {
	ot := o.(*Tracer)
	for k := range ot.arg {
		t.arg[k] = true
	}
	for k := range ot.violated {
		t.violated[k] = true
	}
	for k, tos := range ot.forwards {
		m := t.forwards[k]
		if m == nil {
			m = make(map[fnReg]bool, len(tos))
			t.forwards[k] = m
		}
		for to := range tos {
			m[to] = true
		}
	}
}

const frameLimit = 1 << 16

func (t *Tracer) meta(fr *irexec.Frame, v *ir.Value) *symbol {
	s, _ := fr.GetMeta(v).(*symbol)
	return s
}

func (t *Tracer) markArg(s *symbol) {
	t.arg[fnReg{s.fn, s.reg}] = true
}

func (t *Tracer) addForward(s *symbol, callee *ir.Func, r isa.Reg) {
	k := fnReg{s.fn, s.reg}
	m := t.forwards[k]
	if m == nil {
		m = make(map[fnReg]bool)
		t.forwards[k] = m
	}
	m[fnReg{callee, r}] = true
}

// FnEnter assigns symbols to the incoming registers.
func (t *Tracer) FnEnter(fr *irexec.Frame) {
	for _, p := range fr.Fn.Params {
		if p.RegHint == isa.ESP {
			continue
		}
		fr.SetMeta(p, &symbol{epoch: fr.Epoch, fn: fr.Fn, reg: p.RegHint})
	}
}

// FnExit checks the second saved-register condition: the register holds its
// own symbol at return.
func (t *Tracer) FnExit(fr *irexec.Frame, ret *ir.Value, rets []uint32) {
	for i, a := range ret.Args {
		r := isa.Reg(i)
		if r == isa.ESP {
			continue
		}
		s := t.meta(fr, a)
		if s == nil || s.epoch != fr.Epoch || s.reg != r {
			t.violated[fnReg{fr.Fn, r}] = true
		}
	}
}

// CallPre implements irexec.Tracer (call handling happens in Exec).
func (t *Tracer) CallPre(fr *irexec.Frame, call *ir.Value, args []uint32) {}

// Phi propagates symbols through SSA joins.
func (t *Tracer) Phi(fr *irexec.Frame, phi *ir.Value, incoming *ir.Value, val uint32) {
	if s := t.meta(fr, incoming); s != nil {
		fr.SetMeta(phi, s)
	}
}

func (t *Tracer) inOwnFrame(fr *irexec.Frame, addr uint32) bool {
	return addr < fr.SP0 && fr.SP0-addr <= frameLimit
}

func (t *Tracer) invalidateShadow(addr uint32, size uint8) {
	for a := addr - 3; a != addr+uint32(size); a++ {
		delete(t.shadow, a)
	}
}

// Exec observes one executed instruction.
func (t *Tracer) Exec(fr *irexec.Frame, v *ir.Value, args []uint32, res uint32) {
	switch v.Op {
	case ir.OpStore:
		if s := t.meta(fr, v.Args[0]); s != nil {
			t.markArg(s) // symbol used as an address
		}
		addr := args[0]
		t.invalidateShadow(addr, v.Size)
		if s := t.meta(fr, v.Args[1]); s != nil {
			if t.inOwnFrame(fr, addr) && v.Size == 4 {
				t.shadow[addr] = shadowEntry{epoch: fr.Epoch, sym: s}
			} else {
				t.markArg(s) // written somewhere else
			}
		}
	case ir.OpLoad:
		if s := t.meta(fr, v.Args[0]); s != nil {
			t.markArg(s)
		}
		if e, ok := t.shadow[args[0]]; ok && e.epoch == fr.Epoch && v.Size == 4 {
			fr.SetMeta(v, e.sym)
		}
	case ir.OpCall, ir.OpCallInd:
		base := 0
		var callees []*ir.Func
		if v.Op == ir.OpCallInd {
			base = 1
			if s := t.meta(fr, v.Args[0]); s != nil {
				t.markArg(s) // symbol used as a call target
			}
			callees = v.Targets
		} else {
			callees = []*ir.Func{v.Callee}
		}
		rec := &fwdRecord{}
		for i := base; i < len(v.Args); i++ {
			r := isa.Reg(i - base)
			s := t.meta(fr, v.Args[i])
			if s == nil || r == isa.ESP {
				continue
			}
			for _, c := range callees {
				t.addForward(s, c, r)
			}
			rec.syms[r] = s
		}
		fr.SetMeta(v, rec)
	case ir.OpExtract:
		call := v.Args[0]
		if rec, ok := fr.GetMeta(call).(*fwdRecord); ok {
			if v.Idx < len(rec.syms) {
				if s := rec.syms[v.Idx]; s != nil {
					fr.SetMeta(v, s)
				}
			}
		}
	case ir.OpCallExt, ir.OpCallExtRaw:
		for _, a := range v.Args {
			if s := t.meta(fr, a); s != nil {
				t.markArg(s)
			}
		}
	case ir.OpPhi:
		// Handled by the Phi hook.
	default:
		for _, a := range v.Args {
			if s := t.meta(fr, a); s != nil {
				t.markArg(s)
			}
		}
	}
}

// Classes holds the per-function classification of every register.
type Classes map[*ir.Func]*[isa.NumRegs]Class

// Classify resolves the forwarded-register constraints and produces the
// final classification for every function in the module. Indirect-call
// target groups are unified so they share one signature.
func (t *Tracer) Classify(mod *ir.Module) Classes {
	out := make(Classes, len(mod.Funcs))
	state := make(map[fnReg]Class)
	for _, f := range mod.Funcs {
		out[f] = new([isa.NumRegs]Class)
		for r := isa.Reg(0); r < isa.NumRegs; r++ {
			k := fnReg{f, r}
			switch {
			case t.arg[k]:
				state[k] = Arg
			case t.violated[k]:
				state[k] = Other
			default:
				state[k] = Saved
			}
		}
	}
	// Constraint propagation: a forwarder joins the class of each function
	// it forwards to.
	for changed := true; changed; {
		changed = false
		for k, tos := range t.forwards {
			for to := range tos {
				if state[to] > state[k] {
					state[k] = state[to]
					changed = true
				}
			}
		}
	}
	// Unify indirect-call groups.
	groups := indirectGroups(mod)
	for _, g := range groups {
		for r := isa.Reg(0); r < isa.NumRegs; r++ {
			var max Class
			for _, f := range g {
				if c := state[fnReg{f, r}]; c > max {
					max = c
				}
			}
			for _, f := range g {
				state[fnReg{f, r}] = max
			}
		}
	}
	for _, f := range mod.Funcs {
		for r := isa.Reg(0); r < isa.NumRegs; r++ {
			out[f][r] = state[fnReg{f, r}]
		}
	}
	return out
}

// indirectGroups unions functions that appear together as targets of an
// indirect call or tail-call dispatch.
func indirectGroups(mod *ir.Module) [][]*ir.Func {
	parent := make(map[*ir.Func]*ir.Func)
	var find func(f *ir.Func) *ir.Func
	find = func(f *ir.Func) *ir.Func {
		if parent[f] == nil || parent[f] == f {
			parent[f] = f
			return f
		}
		root := find(parent[f])
		parent[f] = root
		return root
	}
	union := func(a, b *ir.Func) { parent[find(a)] = find(b) }
	for _, f := range mod.Funcs {
		for _, b := range f.Blocks {
			for _, v := range b.Insts {
				if v.Op == ir.OpCallInd && len(v.Targets) > 0 {
					for _, tgt := range v.Targets[1:] {
						union(v.Targets[0], tgt)
					}
				}
			}
		}
	}
	byRoot := make(map[*ir.Func][]*ir.Func)
	for f := range parent {
		r := find(f)
		byRoot[r] = append(byRoot[r], f)
	}
	var out [][]*ir.Func
	for _, g := range byRoot {
		if len(g) > 1 {
			sort.Slice(g, func(i, j int) bool { return g[i].Name < g[j].Name })
			out = append(out, g)
		}
	}
	return out
}

// ParamRegs returns the registers a function keeps as parameters under a
// classification (ESP plus the argument registers), ascending.
func ParamRegs(c *[isa.NumRegs]Class) []isa.Reg {
	var out []isa.Reg
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		if r == isa.ESP || c[r] == Arg {
			out = append(out, r)
		}
	}
	return out
}

// Apply rewrites the module under the classification: shrink parameter
// lists, replace saved-register extracts with the caller's pre-call values,
// compute the demanded return registers, and shrink return tuples.
func Apply(mod *ir.Module, classes Classes) error {
	// 1. Caller side: extracts of saved registers use the pre-call value.
	for _, f := range mod.Funcs {
		for _, b := range f.Blocks {
			for _, v := range b.Insts {
				if v.Op != ir.OpExtract {
					continue
				}
				call := v.Args[0]
				cls := calleeClasses(call, classes)
				if cls == nil {
					continue
				}
				r := isa.Reg(v.Idx)
				if r != isa.ESP && cls[r] == Saved {
					base := 0
					if call.Op == ir.OpCallInd {
						base = 1
					}
					opt.ReplaceUses(f, v, call.Args[base+v.Idx])
				}
			}
		}
	}
	opt.DCEModule(mod)

	// 2. Demand analysis for return registers.
	rets := make(map[*ir.Func]map[isa.Reg]bool, len(mod.Funcs))
	for _, f := range mod.Funcs {
		rets[f] = map[isa.Reg]bool{isa.EAX: true, isa.ESP: true}
	}
	usesByFunc := make(map[*ir.Func]opt.Uses, len(mod.Funcs))
	for _, f := range mod.Funcs {
		usesByFunc[f] = opt.BuildUses(f)
	}
	for changed := true; changed; {
		changed = false
		for _, f := range mod.Funcs {
			uses := usesByFunc[f]
			for _, b := range f.Blocks {
				for _, v := range b.Insts {
					if v.Op != ir.OpExtract {
						continue
					}
					call := v.Args[0]
					var targets []*ir.Func
					switch call.Op {
					case ir.OpCall:
						targets = []*ir.Func{call.Callee}
					case ir.OpCallInd:
						targets = call.Targets
					default:
						continue
					}
					r := isa.Reg(v.Idx)
					demanded := false
					for _, u := range uses[v] {
						if u.Op != ir.OpRet {
							demanded = true
							break
						}
						// Pass-through: demanded iff the forwarding
						// function itself returns that register slot.
						for j, a := range u.Args {
							if a == v && rets[f][isa.Reg(j)] {
								demanded = true
							}
						}
						if demanded {
							break
						}
					}
					if !demanded {
						continue
					}
					for _, tgt := range targets {
						if !rets[tgt][r] {
							rets[tgt][r] = true
							changed = true
						}
					}
				}
			}
		}
	}

	// 3. Rewrite signatures, returns, calls and extracts.
	newParamRegs := make(map[*ir.Func][]isa.Reg)
	newRetRegs := make(map[*ir.Func][]isa.Reg)
	for _, f := range mod.Funcs {
		newParamRegs[f] = ParamRegs(classes[f])
		var rr []isa.Reg
		for r := isa.Reg(0); r < isa.NumRegs; r++ {
			if rets[f][r] {
				rr = append(rr, r)
			}
		}
		newRetRegs[f] = rr
	}
	for _, f := range mod.Funcs {
		// Parameters.
		keep := map[isa.Reg]bool{}
		for _, r := range newParamRegs[f] {
			keep[r] = true
		}
		var params []*ir.Value
		entry := f.Entry()
		var dropped []*ir.Value
		for _, p := range f.Params {
			if keep[p.RegHint] {
				p.Idx = len(params)
				params = append(params, p)
			} else {
				// The save/restore stores still reference the old value;
				// it becomes an arbitrary constant (the register is dead
				// from the caller's point of view).
				p.Op = ir.OpConst
				p.Const = 0
				p.Block = entry
				dropped = append(dropped, p)
			}
		}
		f.Params = params
		if len(dropped) > 0 {
			entry.Insts = append(dropped, entry.Insts...)
		}
		// Returns.
		retKeep := newRetRegs[f]
		f.NumRet = len(retKeep)
		f.RetRegs = retKeep
		for _, b := range f.Blocks {
			t := b.Term()
			if t == nil || t.Op != ir.OpRet {
				continue
			}
			var args []*ir.Value
			for _, r := range retKeep {
				args = append(args, t.Args[r])
			}
			t.Args = args
		}
	}
	// Call sites.
	for _, f := range mod.Funcs {
		for _, b := range f.Blocks {
			for _, v := range b.Insts {
				switch v.Op {
				case ir.OpCall, ir.OpCallInd:
					cls := calleeClasses(v, classes)
					if cls == nil {
						return fmt.Errorf("regsave: call %s without classification", v)
					}
					var callee *ir.Func
					if v.Op == ir.OpCall {
						callee = v.Callee
					} else {
						callee = v.Targets[0]
					}
					base := 0
					var args []*ir.Value
					if v.Op == ir.OpCallInd {
						base = 1
						args = append(args, v.Args[0])
					}
					for _, r := range newParamRegs[callee] {
						args = append(args, v.Args[base+int(r)])
					}
					v.Args = args
					v.NumRet = len(newRetRegs[callee])
				case ir.OpExtract:
					call := v.Args[0]
					var callee *ir.Func
					switch call.Op {
					case ir.OpCall:
						callee = call.Callee
					case ir.OpCallInd:
						callee = call.Targets[0]
					default:
						continue
					}
					// Map old register index to new tuple index.
					r := isa.Reg(v.Idx)
					idx := -1
					for i, rr := range newRetRegs[callee] {
						if rr == r {
							idx = i
							break
						}
					}
					if idx < 0 {
						// Must be unused (not demanded); make it inert.
						v.Op = ir.OpConst
						v.Const = 0
						v.Args = nil
					} else {
						v.Idx = idx
					}
				}
			}
		}
	}
	opt.DCEModule(mod)
	return ir.Verify(mod)
}

func calleeClasses(call *ir.Value, classes Classes) *[isa.NumRegs]Class {
	switch call.Op {
	case ir.OpCall:
		return classes[call.Callee]
	case ir.OpCallInd:
		if len(call.Targets) == 0 {
			return nil
		}
		return classes[call.Targets[0]]
	}
	return nil
}
