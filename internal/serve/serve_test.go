package serve

import (
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"wytiwyg/internal/core"
	"wytiwyg/internal/refcache"
)

// startServer launches a daemon on a unix socket and returns a client
// for it plus the server handle. Serve's error lands on done.
func startServer(t *testing.T, cfg Config) (*Client, *Server, chan error) {
	t.Helper()
	if cfg.Cache == nil {
		dir, err := os.MkdirTemp("", "wytiwyg-serve-cache-")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { os.RemoveAll(dir) })
		cfg.Cache, err = refcache.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
	}
	if cfg.Jobs == 0 {
		cfg.Jobs = 2
	}
	// Socket paths have a hard length limit; TMPDIR-based t.TempDir can
	// exceed it, so the socket gets its own short temp directory.
	sockDir, err := os.MkdirTemp("", "wytiwyg-sock-")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(sockDir) })
	sock := filepath.Join(sockDir, "d.sock")
	l, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(cfg)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	c := Dial("unix:" + sock)
	if err := c.WaitReady(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	return c, srv, done
}

// stopServer drains the daemon and checks Serve returned cleanly.
func stopServer(t *testing.T, c *Client, done chan error) {
	t.Helper()
	if err := c.Shutdown(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit after shutdown")
	}
}

// payloadJSON canonicalizes a payload for byte comparison.
func payloadJSON(t *testing.T, p *Payload) string {
	t.Helper()
	if p == nil {
		t.Fatal("nil payload")
	}
	raw, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// A round trip on every job kind, plus the warm path: the second
// identical submission must be answered from the shared cache with a
// byte-identical payload and without another pipeline execution.
func TestServeRoundTripAndWarmHit(t *testing.T) {
	c, srv, done := startServer(t, Config{})
	for _, kind := range []string{KindLift, KindLint, KindRecompile} {
		job := &Job{Kind: kind, Bench: "mcf"}
		cold, err := c.Submit(job)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if cold.Error != "" {
			t.Fatalf("%s: %s", kind, cold.Error)
		}
		if cold.Stats.Warm {
			t.Errorf("%s: first submission reported warm", kind)
		}
		if cold.Payload.Funcs == 0 || len(cold.Payload.Layout) == 0 {
			t.Errorf("%s: empty payload: %+v", kind, cold.Payload)
		}
		// Later kinds may be program-level cache hits inside the pipeline
		// (no stages run); only the first kind is guaranteed a full run.
		if kind == KindLift && len(cold.Stats.Stages) == 0 {
			t.Errorf("%s: cold response carries no stage timings", kind)
		}
		if kind == KindRecompile && !cold.Payload.Match {
			t.Errorf("recompile: recovered binary does not match the original")
		}

		warm, err := c.Submit(job)
		if err != nil {
			t.Fatalf("%s warm: %v", kind, err)
		}
		if !warm.Stats.Warm {
			t.Errorf("%s: second submission not served warm", kind)
		}
		if warm.Stats.HitRate != 1 {
			t.Errorf("%s: warm hit rate = %v, want 1", kind, warm.Stats.HitRate)
		}
		if got, want := payloadJSON(t, warm.Payload), payloadJSON(t, cold.Payload); got != want {
			t.Errorf("%s: warm payload differs from cold:\n%s\nvs\n%s", kind, got, want)
		}
	}
	st := srv.Stats()
	if st.Requests != 6 || st.Executed != 3 || st.WarmHits != 3 {
		t.Errorf("server stats = %+v, want 6 requests, 3 executed, 3 warm", st)
	}
	stopServer(t, c, done)
}

// The serving surface preserves the determinism invariant: a daemon
// response's payload is byte-identical to the same job run in-process by
// a bare Runner (the `wytiwyg submit -local` path), for every kind, at a
// different worker count, with no cache attached.
func TestServePayloadMatchesLocalRun(t *testing.T) {
	c, _, done := startServer(t, Config{Jobs: 3})
	local := &Runner{Jobs: 1}
	for _, kind := range []string{KindLift, KindLint, KindRecompile} {
		job := &Job{Kind: kind, Bench: "mcf"}
		if err := job.Normalize(); err != nil {
			t.Fatal(err)
		}
		resp, err := c.Submit(job)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if resp.Error != "" {
			t.Fatalf("%s: %s", kind, resp.Error)
		}
		pay, _, err := local.Run(job)
		if err != nil {
			t.Fatalf("%s local: %v", kind, err)
		}
		if got, want := payloadJSON(t, resp.Payload), payloadJSON(t, pay); got != want {
			t.Errorf("%s: daemon payload differs from the local run:\n%s\nvs\n%s", kind, got, want)
		}
	}
	stopServer(t, c, done)
}

// A malformed job must come back as a structured error, not a hang or a
// crash.
func TestServeRejectsBadJobs(t *testing.T) {
	c, _, done := startServer(t, Config{})
	for _, job := range []*Job{
		{Kind: "transmogrify", Bench: "mcf"},
		{Kind: KindLint},                                    // neither bench nor source
		{Kind: KindLint, Bench: "mcf", Source: "int x;"},    // both
		{Kind: KindLint, Bench: "no-such-benchmark"},        // unknown program
		{Kind: KindLint, Bench: "mcf", Profile: "tcc-O9"},   // unknown profile
		{Kind: KindLint, Bench: "mcf", Lint: "destructive"}, // unknown lint mode
	} {
		resp, err := c.Submit(job)
		if err != nil {
			t.Fatalf("%+v: transport error %v", job, err)
		}
		if resp.Error == "" {
			t.Errorf("%+v: accepted", job)
		}
	}
	stopServer(t, c, done)
}

const incrementalSrcA = `
extern int input_int(int i);
extern int printf(char *fmt, ...);

int stable(int n) {
	int s = 0, i;
	for (i = 0; i < n; i++) s += i * i;
	return s;
}

int main() {
	int n = input_int(0);
	printf("a=%d b=%d\n", stable(n), tweaked(n));
	return 0;
}

int tweaked(int n) {
	int r = 1, i;
	for (i = 1; i <= n; i++) r += i;
	return r;
}
`

// incrementalSrcB edits only tweaked's body (and tweaked is laid out
// last, so no other function's addresses move).
const incrementalSrcB = `
extern int input_int(int i);
extern int printf(char *fmt, ...);

int stable(int n) {
	int s = 0, i;
	for (i = 0; i < n; i++) s += i * i;
	return s;
}

int main() {
	int n = input_int(0);
	printf("a=%d b=%d\n", stable(n), tweaked(n));
	return 0;
}

int tweaked(int n) {
	int r = 2, i;
	for (i = 1; i <= n; i++) r += i + i;
	return r;
}
`

// Per-function incremental re-lift: submitting a binary where only one
// function changed reuses the unchanged functions' cache entries — the
// response's func-granularity counters must show both hits (the
// unchanged function) and misses (the edited function, and its callers
// whose keys embed the callee's code).
func TestServeIncrementalFuncReuse(t *testing.T) {
	c, _, done := startServer(t, Config{})
	first, err := c.Submit(&Job{Kind: KindLint, Source: incrementalSrcA, Inputs: []int32{5}})
	if err != nil {
		t.Fatal(err)
	}
	if first.Error != "" {
		t.Fatal(first.Error)
	}
	if first.Stats.FuncHits != 0 || first.Stats.FuncMisses == 0 {
		t.Errorf("cold run: hits %d misses %d, want 0 hits and >0 misses",
			first.Stats.FuncHits, first.Stats.FuncMisses)
	}
	second, err := c.Submit(&Job{Kind: KindLint, Source: incrementalSrcB, Inputs: []int32{5}})
	if err != nil {
		t.Fatal(err)
	}
	if second.Error != "" {
		t.Fatal(second.Error)
	}
	if second.Stats.Warm {
		t.Error("edited binary served warm — the job digest missed the source change")
	}
	if second.Stats.FuncHits == 0 {
		t.Error("edited binary reused no function entries — incremental re-lift not happening")
	}
	if second.Stats.FuncMisses == 0 {
		t.Error("edited binary missed nothing — the edited function was served stale")
	}
	if second.Stats.HitRate <= 0 || second.Stats.HitRate >= 1 {
		t.Errorf("hit rate = %v, want strictly between 0 and 1", second.Stats.HitRate)
	}
	stopServer(t, c, done)
}

// Graceful shutdown must drain: a job in flight when shutdown begins
// still completes and its client still receives the response.
func TestServeShutdownDrainsInFlight(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	var once bool
	obs := func(e core.StageEvent) {
		if e.Stage == "trace" && e.Action == "start" && !once {
			once = true
			close(started)
			<-release
		}
	}
	c, _, done := startServer(t, Config{Observer: obs})
	respCh := make(chan *Response, 1)
	errCh := make(chan error, 1)
	go func() {
		resp, err := c.Submit(&Job{Kind: KindLint, Bench: "mcf"})
		respCh <- resp
		errCh <- err
	}()
	<-started
	// The job is mid-pipeline; begin the drain.
	if err := c.Shutdown(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		t.Fatalf("daemon exited with an in-flight job (%v)", err)
	case <-time.After(100 * time.Millisecond):
	}
	close(release)
	resp := <-respCh
	if err := <-errCh; err != nil {
		t.Fatalf("in-flight job failed during drain: %v", err)
	}
	if resp.Error != "" || resp.Payload == nil {
		t.Fatalf("in-flight job got a broken response: %+v", resp)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit after the drain completed")
	}
}
