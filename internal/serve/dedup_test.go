package serve

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wytiwyg/internal/core"
)

// Single-flight dedup: N concurrent submissions of the same job must run
// the pipeline exactly once and all receive byte-identical responses.
//
// The test is made deterministic rather than probabilistic: the stage
// observer parks the leader at the first trace start, the test waits
// until all other submissions have registered as joiners of that flight,
// and only then releases the leader. Every follower is therefore
// guaranteed to be in the join path — none can sneak in after the leader
// finishes and be served warm instead.
func TestSingleFlightDedup(t *testing.T) {
	const n = 6
	var traceStarts atomic.Int64
	release := make(chan struct{})
	obs := func(e core.StageEvent) {
		if e.Stage == "trace" && e.Action == "start" {
			traceStarts.Add(1)
			<-release
		}
	}
	c, srv, done := startServer(t, Config{Observer: obs})

	job := &Job{Kind: KindLint, Bench: "mcf"}
	if err := job.Normalize(); err != nil {
		t.Fatal(err)
	}
	digest := job.Digest()

	var wg sync.WaitGroup
	resps := make([]*Response, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], errs[i] = c.Submit(&Job{Kind: KindLint, Bench: "mcf"})
		}(i)
	}

	// Wait for the leader to park, then for every follower to join its
	// flight, then let the pipeline proceed.
	deadline := time.Now().Add(10 * time.Second)
	for traceStarts.Load() == 0 || srv.group.joiners(digest) < n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("followers never joined: %d trace starts, %d joiners",
				traceStarts.Load(), srv.group.joiners(digest))
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := traceStarts.Load(); got != 1 {
		t.Errorf("pipeline executed %d times, want exactly 1", got)
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("submission %d: %v", i, errs[i])
		}
		if resps[i].Error != "" {
			t.Fatalf("submission %d: %s", i, resps[i].Error)
		}
	}
	want := payloadJSON(t, resps[0].Payload)
	for i := 1; i < n; i++ {
		if got := payloadJSON(t, resps[i].Payload); got != want {
			t.Errorf("submission %d payload differs from submission 0:\n%s\nvs\n%s", i, got, want)
		}
	}
	st := srv.Stats()
	if st.Requests != n || st.Executed != 1 || st.DedupJoins != n-1 {
		t.Errorf("server stats = %+v, want %d requests, 1 executed, %d joins", st, n, n-1)
	}
	stopServer(t, c, done)
}
