package serve

import (
	"sync"
	"sync/atomic"
)

// flight is one in-progress computation that later arrivals can join.
type flight struct {
	done   chan struct{} // closed when resp is ready
	resp   *Response     // the shared result, set before done closes
	joined atomic.Int64  // arrivals currently waiting on done
}

// Group is the request-level single-flight map: concurrent Do calls with
// the same key run fn once and all receive the identical response. This
// is what keeps N clients submitting the same binary at the same moment
// from running N pipelines — the in-flight computation is itself a cache
// entry that just hasn't finished being written yet.
type Group struct {
	mu sync.Mutex
	m  map[string]*flight
}

// Do returns fn()'s response for key, joining an in-flight call when one
// exists. The second result reports whether this call joined rather than
// led. fn runs outside the group lock, so slow computations never block
// unrelated keys.
func (g *Group) Do(key string, fn func() *Response) (*Response, bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flight)
	}
	if f, ok := g.m[key]; ok {
		f.joined.Add(1)
		g.mu.Unlock()
		<-f.done
		return f.resp, true
	}
	f := &flight{done: make(chan struct{})}
	g.m[key] = f
	g.mu.Unlock()

	f.resp = fn()
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(f.done)
	return f.resp, false
}

// joiners reports how many arrivals are currently waiting on key's
// in-flight computation (0 when none is in flight). Tests synchronize on
// it to make dedup assertions deterministic.
func (g *Group) joiners(key string) int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.m[key]; ok {
		return f.joined.Load()
	}
	return 0
}
