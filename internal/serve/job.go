package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"time"

	"wytiwyg/internal/analysis"
	"wytiwyg/internal/bench/progs"
	"wytiwyg/internal/codegen"
	"wytiwyg/internal/core"
	"wytiwyg/internal/isa"
	"wytiwyg/internal/machine"
	"wytiwyg/internal/minicc/gen"
	"wytiwyg/internal/obj"
	"wytiwyg/internal/opt"
	"wytiwyg/internal/refcache"
)

// Runner executes jobs. The daemon wraps one Runner; `wytiwyg submit
// -local` runs the same code in-process — that sharing is what makes
// daemon payloads byte-identical to one-shot CLI payloads by
// construction, and the test suite additionally pins it.
type Runner struct {
	// Jobs bounds each pipeline's worker pool (0 = one per CPU). The
	// payload is worker-count independent (the determinism invariant), so
	// this only shapes latency.
	Jobs int
	// Cache, when non-nil, is the shared content-addressed store: program
	// and function entries memoize pipeline work across requests, and the
	// daemon stores whole response payloads under the job digest.
	Cache *refcache.Cache
	// Observer, when non-nil, receives every pipeline stage event of every
	// run (a test and benchmarking seam; it must be goroutine-safe).
	Observer func(core.StageEvent)
}

// RunInfo reports how one execution went, for the response's stats.
type RunInfo struct {
	// Times holds the pipeline's per-stage wall-clock costs.
	Times []core.StageTime
	// FuncHits and FuncMisses are the run's function-granularity cache
	// counters (see core.Pipeline).
	FuncHits int
	// FuncMisses counts recomputed functions (see FuncHits).
	FuncMisses int
}

// build compiles the job's program and returns the image, the resolved
// input set and the program's display name.
func (r *Runner) build(job *Job) (*obj.Image, []machine.Input, string, error) {
	prof, ok := gen.ProfileByName(job.Profile)
	if !ok {
		return nil, nil, "", fmt.Errorf("serve: unknown profile %q", job.Profile)
	}
	src, name := job.Source, "source"
	var inputs []machine.Input
	if job.Bench != "" {
		p, ok := progs.ByName(job.Bench)
		if !ok {
			return nil, nil, "", fmt.Errorf("serve: unknown benchmark %q", job.Bench)
		}
		src, name = p.Src, p.Name
		inputs = p.Inputs()
	}
	if len(job.Inputs) > 0 {
		inputs = nil
		for _, v := range job.Inputs {
			inputs = append(inputs, machine.Input{Ints: []int32{v}})
		}
	}
	if len(inputs) == 0 {
		inputs = []machine.Input{{}}
	}
	img, err := gen.Build(src, prof, name)
	if err != nil {
		return nil, nil, "", fmt.Errorf("serve: compile: %w", err)
	}
	return img, inputs, name, nil
}

// options maps a normalized job onto pipeline options.
func (r *Runner) options(job *Job) core.Options {
	return core.Options{
		Jobs:          r.Jobs,
		Lint:          job.LintMode(),
		Cache:         r.Cache,
		VSA:           job.VSA,
		Types:         job.Types,
		StaticRecover: job.StaticRecover,
		Stream:        job.Stream,
		Observer:      r.Observer,
	}
}

// Run executes one normalized job and returns its deterministic payload
// plus the run's statistics raw material.
func (r *Runner) Run(job *Job) (*Payload, *RunInfo, error) {
	img, inputs, name, err := r.build(job)
	if err != nil {
		return nil, nil, err
	}
	var p *core.Pipeline
	if job.Kind == KindRecompile {
		// Recompilation needs the refined IR, which a program-level cache
		// hit does not carry: run the pipeline (its function-granularity
		// entries still hit).
		p, err = core.LiftBinaryOpts(img, inputs, r.options(job))
		if err == nil {
			err = p.Refine()
		}
	} else {
		p, err = core.RecoverLayout(img, inputs, r.options(job))
	}
	if err != nil {
		return nil, nil, err
	}
	pay := &Payload{
		Digest:  job.Digest(),
		Kind:    job.Kind,
		Program: name,
	}
	for _, fn := range p.Recovered.FuncNames() {
		pay.Funcs++
		pay.Layout = append(pay.Layout, p.Recovered.Frame(fn).String())
	}
	if p.Report != nil {
		p.Report.Sort()
		pay.Errors = p.Report.Errors()
		pay.Warnings = p.Report.Count(analysis.Warn)
		if job.Kind != KindLift {
			for _, d := range p.Report.Diags {
				pay.Diags = append(pay.Diags, d.String())
			}
		}
	}
	if job.Kind == KindRecompile {
		if err := r.recompile(p, img, inputs, pay); err != nil {
			return nil, nil, err
		}
	}
	info := &RunInfo{
		Times:      p.Times,
		FuncHits:   p.FuncCacheHits,
		FuncMisses: p.FuncCacheMisses,
	}
	return pay, info, nil
}

// recompile finishes a KindRecompile job: optimize, generate code, and
// validate the recovered binary against the original on the last input.
func (r *Runner) recompile(p *core.Pipeline, img *obj.Image, inputs []machine.Input, pay *Payload) error {
	degraded := make([]string, 0, len(p.Degraded))
	for fn := range p.Degraded {
		degraded = append(degraded, fmt.Sprintf("%s: %v", fn, p.Degraded[fn]))
	}
	sort.Strings(degraded)
	pay.Degraded = degraded

	opt.PipelineWith(p.Mod, opt.PipelineOpts{Oracle: p.Oracle(), Typed: p.TypedInfo()})
	out, err := codegen.Compile(p.Mod, "recovered")
	if err != nil {
		return fmt.Errorf("serve: recompile: %w", err)
	}
	sum := sha256.Sum256(isa.EncodeAll(out.Code))
	pay.CodeLen = len(out.Code)
	pay.CodeDigest = hex.EncodeToString(sum[:])

	last := inputs[len(inputs)-1]
	var nativeOut, recOut bytes.Buffer
	nat, err := machine.Execute(img, last, &nativeOut)
	if err != nil {
		return fmt.Errorf("serve: native run: %w", err)
	}
	rec, err := machine.Execute(out, last, &recOut)
	if err != nil {
		return fmt.Errorf("serve: recovered run: %w", err)
	}
	pay.ExitCode = rec.ExitCode
	pay.Cycles = rec.Cycles
	pay.Output = recOut.String()
	pay.Match = recOut.String() == nativeOut.String() && rec.ExitCode == nat.ExitCode
	return nil
}

// stageMs converts pipeline stage times into response form.
func stageMs(times []core.StageTime) []StageMs {
	out := make([]StageMs, 0, len(times))
	for _, st := range times {
		out = append(out, StageMs{Stage: st.Stage, Ms: roundMs(st.Elapsed)})
	}
	return out
}

// roundMs renders a duration as milliseconds with two decimals.
func roundMs(d time.Duration) float64 {
	return float64(d.Microseconds()/10) / 100
}
