// Package serve is the recompilation-as-a-service daemon: a long-lived
// server wrapping core.Pipeline that accepts lift/lint/recompile jobs
// over a local HTTP API (unix socket or TCP), multiplexes them onto a
// bounded worker pool, and uses the content-addressed refinement cache
// (package refcache) as a shared store across requests and across
// daemon restarts.
//
// The deployment shape is many clients submitting overlapping binaries
// where most functions are already warm. Three mechanisms deliver that:
//
//   - a serve-level response cache: every job's deterministic payload is
//     stored under a content address of the normalized job, so a repeat
//     submission is answered without running the pipeline at all;
//   - request-level single-flight dedup: concurrent requests for the
//     same job digest join one in-flight computation and all receive the
//     identical response;
//   - per-function incremental re-lift: a pipeline run with the shared
//     cache attached reuses the function-granularity entries of every
//     function whose code (and traced callees) did not change, so
//     submitting a slightly modified binary recomputes only the
//     modified functions' results.
//
// Responses carry per-request statistics — cache hit rate, per-stage
// wall-clock timings, and the queue depth at admission — next to a
// payload that is byte-identical to the equivalent one-shot CLI run
// (the determinism invariant extended to the serving surface; see
// DESIGN.md §15).
package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"wytiwyg/internal/core"
)

// ProtocolVersion identifies the request/response schema. It is part of
// the serve-level cache key, so daemons speaking different protocol
// revisions never serve each other's cached payloads.
const ProtocolVersion = 1

// Job kinds accepted by the daemon.
const (
	// KindLift recovers the binary's stack layout.
	KindLift = "lift"
	// KindLint recovers the layout and reports the verification findings.
	KindLint = "lint"
	// KindRecompile runs the full pipeline — refine, optimize, recompile —
	// and validates the recovered binary against the original.
	KindRecompile = "recompile"
)

// Job is one client request: a program (a built-in benchmark or an
// inline mini-C source), the compiler profile and inputs to trace it
// under, and the pipeline options.
type Job struct {
	// Kind selects what to compute: KindLift, KindLint or KindRecompile.
	Kind string `json:"kind"`
	// Bench names a built-in benchmark program (exclusive with Source).
	Bench string `json:"bench,omitempty"`
	// Source is an inline mini-C source (exclusive with Bench).
	Source string `json:"source,omitempty"`
	// Profile is the compiler profile name (default gcc12-O3).
	Profile string `json:"profile,omitempty"`
	// Inputs are the integer trace inputs, one per run (a benchmark's own
	// input set when empty and Bench is set).
	Inputs []int32 `json:"inputs,omitempty"`
	// Lint selects the verification mode: off, warn (default) or fail.
	Lint string `json:"lint,omitempty"`
	// VSA enables the value-set analysis stage.
	VSA bool `json:"vsa,omitempty"`
	// Types enables the type-recovery stage.
	Types bool `json:"types,omitempty"`
	// StaticRecover enables static recovery of untraced code.
	StaticRecover bool `json:"static_recover,omitempty"`
	// Stream selects the streaming trace→lift pipeline.
	Stream bool `json:"stream,omitempty"`
}

// Normalize fills defaults and validates the job. It must run before
// Digest: two requests meaning the same computation must normalize to
// the same bytes.
func (j *Job) Normalize() error {
	if j.Kind == "" {
		j.Kind = KindRecompile
	}
	switch j.Kind {
	case KindLift, KindLint, KindRecompile:
	default:
		return fmt.Errorf("serve: unknown job kind %q", j.Kind)
	}
	if (j.Bench == "") == (j.Source == "") {
		return fmt.Errorf("serve: exactly one of bench or source must be set")
	}
	if j.Profile == "" {
		j.Profile = "gcc12-O3"
	}
	switch j.Lint {
	case "":
		j.Lint = "warn"
	case "off", "warn", "fail":
	default:
		return fmt.Errorf("serve: unknown lint mode %q", j.Lint)
	}
	return nil
}

// LintMode translates the normalized lint field.
func (j *Job) LintMode() core.LintMode {
	switch j.Lint {
	case "off":
		return core.LintOff
	case "fail":
		return core.LintFail
	}
	return core.LintWarn
}

// Digest content-addresses the normalized job: every field that can
// change the payload is hashed with length prefixes (no concatenation
// collisions), and the result keys both the single-flight map and —
// together with the pass and protocol versions — the serve-level
// response cache.
func (j *Job) Digest() string {
	h := sha256.New()
	str := func(s string) {
		var n [4]byte
		binary.LittleEndian.PutUint32(n[:], uint32(len(s)))
		h.Write(n[:])
		h.Write([]byte(s))
	}
	str(j.Kind)
	str(j.Bench)
	str(j.Source)
	str(j.Profile)
	str(j.Lint)
	var ins []byte
	ins = binary.LittleEndian.AppendUint32(ins, uint32(len(j.Inputs)))
	for _, v := range j.Inputs {
		ins = binary.LittleEndian.AppendUint32(ins, uint32(v))
	}
	h.Write(ins)
	flag := func(b bool) byte {
		if b {
			return 1
		}
		return 0
	}
	h.Write([]byte{flag(j.VSA), flag(j.Types), flag(j.StaticRecover), flag(j.Stream)})
	return hex.EncodeToString(h.Sum(nil))
}

// Payload is the deterministic half of a response: a pure function of
// the normalized job, byte-identical whether computed cold, joined from
// an in-flight computation, served warm from the shared cache, or
// produced by the one-shot CLI (`wytiwyg submit -local`).
type Payload struct {
	// Digest is the normalized job's content address.
	Digest string `json:"digest"`
	// Kind echoes the job kind.
	Kind string `json:"kind"`
	// Program names the benchmark, or "source" for inline submissions.
	Program string `json:"program"`
	// Funcs counts the recovered functions.
	Funcs int `json:"funcs"`
	// Layout renders each recovered frame, one line per function in
	// sorted name order.
	Layout []string `json:"layout"`
	// Degraded lists functions replaced by trap stubs, sorted, each with
	// its cause.
	Degraded []string `json:"degraded,omitempty"`
	// Diags renders the verification findings in report order (lint and
	// recompile kinds only).
	Diags []string `json:"diags,omitempty"`
	// Errors and Warnings count the report's findings by severity.
	Errors int `json:"errors"`
	// Warnings counts the report's warn-severity findings (see Errors).
	Warnings int `json:"warnings"`
	// CodeLen counts the recompiled binary's instructions (recompile only).
	CodeLen int `json:"code_len,omitempty"`
	// CodeDigest is the sha256 of the recompiled instruction stream's
	// encoding (recompile only) — the byte-identity witness.
	CodeDigest string `json:"code_digest,omitempty"`
	// ExitCode is the recompiled binary's exit code on the last input
	// (recompile only).
	ExitCode int32 `json:"exit_code"`
	// Cycles is the recompiled binary's cycle count on the last input
	// (recompile only).
	Cycles uint64 `json:"cycles,omitempty"`
	// Output is the recompiled binary's program output on the last input
	// (recompile only).
	Output string `json:"output,omitempty"`
	// Match reports functional equivalence with the original binary on
	// the last input (recompile only).
	Match bool `json:"match"`
}

// StageMs is one pipeline stage's wall-clock cost in a response.
type StageMs struct {
	// Stage is the stage name (see core.StageEvent).
	Stage string `json:"stage"`
	// Ms is the stage's wall-clock cost in milliseconds.
	Ms float64 `json:"ms"`
}

// Stats is the per-request half of a response: observability about how
// the answer was produced. Joined requests share the leader's stats —
// the computation happened once, so its statistics exist once.
type Stats struct {
	// Warm reports that the whole payload was served from the shared
	// response cache without running the pipeline.
	Warm bool `json:"warm"`
	// FuncHits counts functions whose per-function cache entries were
	// reused during the run (0 when warm: nothing ran).
	FuncHits int `json:"func_hits"`
	// FuncMisses counts functions recomputed during the run (see FuncHits).
	FuncMisses int `json:"func_misses"`
	// HitRate is the request's cache efficiency: 1.0 for a warm response,
	// else FuncHits over all functions looked up.
	HitRate float64 `json:"hit_rate"`
	// QueueDepth is the number of requests queued or executing at the
	// moment this request was admitted (including itself).
	QueueDepth int `json:"queue_depth"`
	// Stages holds the pipeline's per-stage wall-clock costs (empty when
	// warm).
	Stages []StageMs `json:"stages,omitempty"`
	// TotalMs is the end-to-end handling time in milliseconds.
	TotalMs float64 `json:"total_ms"`
}

// Response is the daemon's answer to one job submission.
type Response struct {
	// Payload carries the deterministic result (nil on error).
	Payload *Payload `json:"payload,omitempty"`
	// Stats carries the per-request statistics.
	Stats Stats `json:"stats"`
	// Error is the failure cause (empty on success).
	Error string `json:"error,omitempty"`
}

// ServerStats is the daemon-level counter snapshot served at /v1/stats.
type ServerStats struct {
	// Requests counts job submissions accepted so far.
	Requests int `json:"requests"`
	// Executed counts pipeline executions actually run.
	Executed int `json:"executed"`
	// WarmHits counts responses served entirely from the response cache.
	WarmHits int `json:"warm_hits"`
	// DedupJoins counts requests that joined another request's in-flight
	// computation.
	DedupJoins int `json:"dedup_joins"`
	// QueueDepth is the current number of queued or executing requests.
	QueueDepth int `json:"queue_depth"`
	// CacheHits, CacheMisses, CachePuts, CacheCorrupt and CacheForeign
	// snapshot the shared cache handle's traffic counters.
	CacheHits int `json:"cache_hits"`
	// CacheMisses snapshots the shared handle's misses (see CacheHits).
	CacheMisses int `json:"cache_misses"`
	// CachePuts snapshots the shared handle's writes (see CacheHits).
	CachePuts int `json:"cache_puts"`
	// CacheCorrupt snapshots the corrupt-entry removals (see CacheHits).
	CacheCorrupt int `json:"cache_corrupt"`
	// CacheForeign snapshots the foreign-version misses (see CacheHits).
	CacheForeign int `json:"cache_foreign"`
	// CacheEntries counts the entries on disk at snapshot time; -1 when
	// the directory walk failed (see CacheScanError).
	CacheEntries int `json:"cache_entries"`
	// CacheScanError carries the entry-count walk failure, if any.
	CacheScanError string `json:"cache_scan_error,omitempty"`
}
