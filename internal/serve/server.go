package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"wytiwyg/internal/core"
	"wytiwyg/internal/par"
	"wytiwyg/internal/refcache"
)

// Config assembles a daemon.
type Config struct {
	// Cache is the shared content-addressed store (required): response
	// payloads, program entries and function entries all live there, and
	// several daemons may share one directory.
	Cache *refcache.Cache
	// Jobs bounds each pipeline's internal worker pool (0 = one per CPU).
	Jobs int
	// Workers bounds how many jobs execute concurrently (0 = one per
	// CPU). Requests beyond the bound queue; warm responses bypass the
	// queue entirely.
	Workers int
	// Observer, when non-nil, receives every pipeline stage event (a test
	// and benchmarking seam; must be goroutine-safe).
	Observer func(core.StageEvent)
}

// Server is the recompilation daemon: an HTTP handler set plus the
// shared execution state behind it.
//
// Endpoints: POST /v1/jobs (submit a Job, receive a Response),
// GET /v1/stats (ServerStats), GET /v1/health, POST /v1/shutdown
// (graceful: drains in-flight jobs, then Serve returns).
type Server struct {
	runner Runner
	cache  *refcache.Cache
	group  Group
	sem    chan struct{}
	http   *http.Server

	queued atomic.Int64

	mu       sync.Mutex
	requests int
	executed int
	warmHits int
	joins    int

	stopOnce sync.Once
	stopped  chan struct{}
}

// New builds a server from cfg.
func New(cfg Config) *Server {
	s := &Server{
		runner:  Runner{Jobs: cfg.Jobs, Cache: cfg.Cache, Observer: cfg.Observer},
		cache:   cfg.Cache,
		sem:     make(chan struct{}, par.N(cfg.Workers)),
		stopped: make(chan struct{}),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleJob)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/health", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("POST /v1/shutdown", s.handleShutdown)
	s.http = &http.Server{Handler: mux}
	return s
}

// Serve accepts connections on l until Shutdown completes. It returns
// nil after a graceful shutdown.
func (s *Server) Serve(l net.Listener) error {
	err := s.http.Serve(l)
	if err == http.ErrServerClosed {
		<-s.stopped // Serve returns as soon as the listener closes; wait for the drain
		return nil
	}
	return err
}

// Shutdown drains gracefully: the listener closes, in-flight requests —
// including queued jobs — run to completion and receive their
// responses, then Serve returns. The context bounds the drain.
func (s *Server) Shutdown(ctx context.Context) error {
	var err error
	s.stopOnce.Do(func() {
		err = s.http.Shutdown(ctx)
		close(s.stopped)
	})
	if err == nil {
		<-s.stopped
	}
	return err
}

// handleShutdown begins a graceful shutdown and returns immediately;
// the drain proceeds in the background (in-flight jobs, including the
// requester's other connections, still complete).
func (s *Server) handleShutdown(w http.ResponseWriter, _ *http.Request) {
	go s.Shutdown(context.Background())
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"draining":true}`)
}

// handleJob is the submission endpoint: decode, normalize, dedup
// in-flight, serve warm or execute, answer.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	var job Job
	if err := json.NewDecoder(r.Body).Decode(&job); err != nil {
		writeResponse(w, http.StatusBadRequest, &Response{Error: fmt.Sprintf("serve: bad request: %v", err)})
		return
	}
	if err := job.Normalize(); err != nil {
		writeResponse(w, http.StatusBadRequest, &Response{Error: err.Error()})
		return
	}
	digest := job.Digest()
	s.mu.Lock()
	s.requests++
	s.mu.Unlock()
	depth := int(s.queued.Add(1))
	defer s.queued.Add(-1)
	start := time.Now()
	resp, joined := s.group.Do(digest, func() *Response {
		return s.execute(&job, digest, depth, start)
	})
	if joined {
		s.mu.Lock()
		s.joins++
		s.mu.Unlock()
	}
	status := http.StatusOK
	if resp.Error != "" {
		status = http.StatusUnprocessableEntity
	}
	writeResponse(w, status, resp)
}

// blobKey is the response cache's content address for one job digest: it
// extends the digest with the pass and protocol versions, so a pipeline
// semantics change or a schema change moves every key.
func blobKey(digest string) refcache.Key {
	return refcache.NewKey("serve",
		[]byte(core.PassVersion),
		[]byte(fmt.Sprintf("proto-%d", ProtocolVersion)),
		[]byte(digest),
	)
}

// execute produces the response for one deduped job: a warm response
// straight from the shared cache when the payload is already there, else
// a pipeline run on a bounded worker slot followed by a cache write.
func (s *Server) execute(job *Job, digest string, depth int, start time.Time) *Response {
	key := blobKey(digest)
	var cached Payload
	if s.cache != nil && s.cache.GetJSON(key, &cached) {
		s.mu.Lock()
		s.warmHits++
		s.mu.Unlock()
		return &Response{
			Payload: &cached,
			Stats: Stats{
				Warm:       true,
				HitRate:    1,
				QueueDepth: depth,
				TotalMs:    roundMs(time.Since(start)),
			},
		}
	}
	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	s.mu.Lock()
	s.executed++
	s.mu.Unlock()
	pay, info, err := s.runner.Run(job)
	if err != nil {
		return &Response{
			Error: err.Error(),
			Stats: Stats{QueueDepth: depth, TotalMs: roundMs(time.Since(start))},
		}
	}
	if s.cache != nil {
		s.cache.PutJSON(key, pay)
	}
	stats := Stats{
		FuncHits:   info.FuncHits,
		FuncMisses: info.FuncMisses,
		QueueDepth: depth,
		Stages:     stageMs(info.Times),
		TotalMs:    roundMs(time.Since(start)),
	}
	if n := info.FuncHits + info.FuncMisses; n > 0 {
		stats.HitRate = float64(info.FuncHits) / float64(n)
	}
	return &Response{Payload: pay, Stats: stats}
}

// handleStats serves the daemon-level counter snapshot.
func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Stats())
}

// Stats snapshots the daemon-level counters.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	st := ServerStats{
		Requests:   s.requests,
		Executed:   s.executed,
		WarmHits:   s.warmHits,
		DedupJoins: s.joins,
	}
	s.mu.Unlock()
	st.QueueDepth = int(s.queued.Load())
	if s.cache != nil {
		cs := s.cache.Stats()
		st.CacheHits, st.CacheMisses, st.CachePuts = cs.Hits, cs.Misses, cs.Puts
		st.CacheCorrupt, st.CacheForeign = cs.Corrupt, cs.Foreign
		n, err := s.cache.Len()
		st.CacheEntries = n
		if err != nil {
			st.CacheEntries = -1
			st.CacheScanError = err.Error()
		}
	}
	return st
}

// Handler exposes the HTTP handler set (tests drive it directly).
func (s *Server) Handler() http.Handler { return s.http.Handler }

// writeResponse encodes one response with the given HTTP status.
func writeResponse(w http.ResponseWriter, status int, resp *Response) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(resp)
}
