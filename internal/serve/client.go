package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"
)

// Client talks to a running daemon. The zero value is unusable; Dial
// builds one.
type Client struct {
	base string
	hc   *http.Client
}

// Dial returns a client for addr. Two address forms are accepted, the
// same ones `wytiwyg serve -addr` listens on: "unix:/path/to.sock" for a
// unix socket, anything else as a TCP host:port.
func Dial(addr string) *Client {
	if path, ok := strings.CutPrefix(addr, "unix:"); ok {
		return &Client{
			// The host in the URL is a placeholder: every connection goes
			// through the socket dialer.
			base: "http://wytiwyg",
			hc: &http.Client{Transport: &http.Transport{
				DialContext: func(ctx context.Context, _, _ string) (net.Conn, error) {
					var d net.Dialer
					return d.DialContext(ctx, "unix", path)
				},
			}},
		}
	}
	if strings.HasPrefix(addr, ":") {
		addr = "localhost" + addr
	}
	return &Client{base: "http://" + addr, hc: &http.Client{}}
}

// Submit sends one job and returns the daemon's response. A response
// carrying an application-level error comes back as (resp, nil); the
// error return is for transport and protocol failures.
func (c *Client) Submit(job *Job) (*Response, error) {
	body, err := json.Marshal(job)
	if err != nil {
		return nil, fmt.Errorf("serve: encode job: %w", err)
	}
	httpResp, err := c.hc.Post(c.base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("serve: submit: %w", err)
	}
	defer httpResp.Body.Close()
	var resp Response
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		return nil, fmt.Errorf("serve: decode response (HTTP %d): %w", httpResp.StatusCode, err)
	}
	return &resp, nil
}

// Stats fetches the daemon-level counter snapshot.
func (c *Client) Stats() (*ServerStats, error) {
	httpResp, err := c.hc.Get(c.base + "/v1/stats")
	if err != nil {
		return nil, fmt.Errorf("serve: stats: %w", err)
	}
	defer httpResp.Body.Close()
	var st ServerStats
	if err := json.NewDecoder(httpResp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("serve: decode stats: %w", err)
	}
	return &st, nil
}

// Health checks the daemon is up.
func (c *Client) Health() error {
	httpResp, err := c.hc.Get(c.base + "/v1/health")
	if err != nil {
		return err
	}
	io.Copy(io.Discard, httpResp.Body)
	httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		return fmt.Errorf("serve: health: HTTP %d", httpResp.StatusCode)
	}
	return nil
}

// WaitReady polls Health until the daemon answers or the timeout
// expires (the ci smoke and tests race daemon startup).
func (c *Client) WaitReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		err := c.Health()
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("serve: daemon not ready after %v: %w", timeout, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// Shutdown asks the daemon to drain and exit.
func (c *Client) Shutdown() error {
	httpResp, err := c.hc.Post(c.base+"/v1/shutdown", "application/json", nil)
	if err != nil {
		return fmt.Errorf("serve: shutdown: %w", err)
	}
	io.Copy(io.Discard, httpResp.Body)
	httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		return fmt.Errorf("serve: shutdown: HTTP %d", httpResp.StatusCode)
	}
	return nil
}
