package ir

import (
	"testing"

	"wytiwyg/internal/isa"
)

func layoutTestFunc() (*Module, *Func) {
	m := NewModule("layout")
	callee := m.NewFunc("callee", 0x2000)
	callee.NumRet = 2
	cesp := callee.NewParam(isa.ESP, "esp")
	cblk := callee.NewBlock(0)
	cblk.Append(callee.NewValue(OpRet, cesp, cesp))

	f := m.NewFunc("f", 0x1000)
	f.NumRet = 1
	esp := f.NewParam(isa.ESP, "esp")
	a := f.NewParam(isa.EAX, "a")
	b0 := f.NewBlock(0)
	b1 := f.NewBlock(0)
	sum := b0.Append(f.NewValue(OpAdd, esp, a))
	b0.Append(f.NewValue(OpJmp))
	b0.Succs = []*Block{b1}
	b1.Preds = []*Block{b0}
	phi := f.NewValue(OpPhi, sum)
	b1.AddPhi(phi)
	call := f.NewValue(OpCall, phi)
	call.Callee = callee
	call.NumRet = 2
	b1.Append(call)
	ext := f.NewValue(OpExtract, call)
	ext.Idx = 1
	b1.Append(ext)
	b1.Append(f.NewValue(OpRet, ext))
	return m, f
}

// TestLayoutSlotsUniqueAndDense checks that every value a function owns gets
// its own slot, that slots are dense, and that tuple offsets partition the
// arena.
func TestLayoutSlotsUniqueAndDense(t *testing.T) {
	_, f := layoutTestFunc()
	f.EnsureLayout()
	lay := f.Layout()
	seen := map[int]bool{}
	walk := func(v *Value) {
		s := v.Slot()
		if s < 0 || s >= lay.NumSlots {
			t.Fatalf("%s(%s): slot %d outside [0,%d)", v, v.Op, s, lay.NumSlots)
		}
		if seen[s] {
			t.Fatalf("%s(%s): slot %d assigned twice", v, v.Op, s)
		}
		seen[s] = true
	}
	n := 0
	for _, p := range f.Params {
		walk(p)
		n++
	}
	for _, b := range f.Blocks {
		for _, v := range b.Phis {
			walk(v)
			n++
		}
		for _, v := range b.Insts {
			walk(v)
			n++
		}
	}
	if n != lay.NumSlots {
		t.Fatalf("NumSlots = %d, function owns %d values", lay.NumSlots, n)
	}
	if lay.TupleWords != 2 {
		t.Fatalf("TupleWords = %d, want 2 (one 2-ret call)", lay.TupleWords)
	}
	if lay.MaxArgs < 2 {
		t.Fatalf("MaxArgs = %d, want >= 2", lay.MaxArgs)
	}
	if lay.MaxPhis != 1 {
		t.Fatalf("MaxPhis = %d, want 1", lay.MaxPhis)
	}
}

// TestLayoutInvalidation checks the dense-ID invariant's maintenance side:
// NewValue marks the layout stale and EnsureLayout refreshes it.
func TestLayoutInvalidation(t *testing.T) {
	_, f := layoutTestFunc()
	f.EnsureLayout()
	if !f.LayoutOK() {
		t.Fatal("layout stale after EnsureLayout")
	}
	before := f.Layout().NumSlots
	v := f.NewValue(OpAdd, f.Params[0], f.Params[1])
	if f.LayoutOK() {
		t.Fatal("NewValue did not invalidate the layout")
	}
	if v.Slot() >= 0 {
		t.Fatalf("fresh value has slot %d before reindex", v.Slot())
	}
	f.Entry().Insts = append([]*Value{v}, f.Entry().Insts...)
	v.Block = f.Entry()
	f.EnsureLayout()
	if got := f.Layout().NumSlots; got != before+1 {
		t.Fatalf("NumSlots after insertion = %d, want %d", got, before+1)
	}
	if v.Slot() < 0 {
		t.Fatal("inserted value still unassigned after EnsureLayout")
	}
}

// TestLayoutDoesNotPerturbIDs checks that slot assignment never changes
// Value.ID: value numbering (and with it every printed or digested form of
// the IR) is independent of execution layout.
func TestLayoutDoesNotPerturbIDs(t *testing.T) {
	_, f := layoutTestFunc()
	ids := map[*Value]int{}
	each := func(fn func(v *Value)) {
		for _, p := range f.Params {
			fn(p)
		}
		for _, b := range f.Blocks {
			for _, v := range b.Phis {
				fn(v)
			}
			for _, v := range b.Insts {
				fn(v)
			}
		}
	}
	each(func(v *Value) { ids[v] = v.ID })
	f.EnsureLayout()
	f.layoutOK.Store(false) // force a second reindex
	f.EnsureLayout()
	each(func(v *Value) {
		if v.ID != ids[v] {
			t.Fatalf("%s: ID changed %d -> %d across reindex", v.Op, ids[v], v.ID)
		}
	})
}
