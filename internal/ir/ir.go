// Package ir defines the compiler-level intermediate representation that
// binaries are lifted to — the reproduction's stand-in for LLVM IR. It is
// an SSA IR: values are instructions, blocks carry phi nodes, and functions
// initially use the BinRec-style lifted signature (the full register file in,
// the full register file out) with the original program's stack living in an
// emulated-stack memory region. The refinement passes gradually rewrite this
// shape: saved registers leave the signature, direct stack references become
// SP0-relative, and finally stack objects become explicit Alloca values with
// stack arguments promoted to parameters.
package ir

import (
	"fmt"
	"sync"
	"sync/atomic"

	"wytiwyg/internal/isa"
)

// Op is an IR operation.
type Op uint8

// IR operations.
const (
	OpInvalid Op = iota

	// OpParam is a function parameter. Param values live in Func.Params;
	// RegHint names the virtual CPU register it carries (while the lifted
	// signature is register-based) and Idx is its position.
	OpParam
	// OpConst is a 32-bit constant (Const field).
	OpConst
	// OpSP0 is the value of the stack pointer at function entry. It
	// materializes during the stack-reference refinement; before that, the
	// ESP parameter plays its role.
	OpSP0

	// Arithmetic/logical: Args[0] op Args[1].
	OpAdd
	OpSub
	OpMul
	OpDiv // signed
	OpMod // signed
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr // logical
	OpSar // arithmetic

	// OpNeg/OpNot: unary on Args[0].
	OpNeg
	OpNot

	// OpCmp: Args[0] compared to Args[1] under Cond, yields 0/1.
	OpCmp

	// OpSubreg8: (Args[0] &^ 0xFF) | (Args[1] & 0xFF) — a sub-register
	// write merging the low byte of Args[1] into Args[0]. Kept as its own
	// op because the tracing runtime treats it as a potential false derive.
	OpSubreg8

	// OpSext: sign-extend the low Size bytes of Args[0].
	OpSext
	// OpZext: zero-extend the low Size bytes of Args[0].
	OpZext

	// OpLoad: load Size bytes at address Args[0] (Signed: sign-extend).
	OpLoad
	// OpStore: store the low Size bytes of Args[1] to address Args[0]. No
	// result.
	OpStore

	// OpAlloca: a distinct stack object of AllocSize bytes with alignment
	// Align; yields its address. Introduced by symbolization.
	OpAlloca

	// OpCall: call Func with Args; yields a tuple of NumRet values
	// accessed through OpExtract.
	OpCall
	// OpCallInd: indirect call; Args[0] is the (original-address) target,
	// remaining Args as OpCall. Targets lists the functions observed at
	// this site during tracing.
	OpCallInd
	// OpCallExt: call the external function Sym with explicit Args; one
	// result.
	OpCallExt
	// OpCallExtRaw: call the external variadic function Sym with arguments
	// living in emulated-stack memory at address Args[0] (BinRec's "stack
	// switching"). One result. Eliminated by the varargs refinement.
	OpCallExtRaw

	// OpExtract: result Idx of the tuple produced by Args[0].
	OpExtract

	// OpPhi: SSA phi; Args parallel Block.Preds.
	OpPhi

	// Terminators.
	OpJmp    // to Block.Succs[0]
	OpBr     // if Args[0] != 0 to Succs[0] else Succs[1]
	OpSwitch // on Args[0]: Cases[i].Val -> Succs[i], default Succs[len(Cases)]
	OpRet    // return Args (matches Func.NumRet)
	OpTrap   // unreachable/untraced path: aborts execution

	NumOps
)

var opNames = [NumOps]string{
	"invalid", "param", "const", "sp0",
	"add", "sub", "mul", "div", "mod", "and", "or", "xor", "shl", "shr", "sar",
	"neg", "not", "cmp", "subreg8", "sext", "zext",
	"load", "store", "alloca",
	"call", "callind", "callext", "callextraw",
	"extract", "phi",
	"jmp", "br", "switch", "ret", "trap",
}

func (op Op) String() string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	return fmt.Sprintf("op%d", uint8(op))
}

// IsTerm reports whether op terminates a block.
func (op Op) IsTerm() bool {
	switch op {
	case OpJmp, OpBr, OpSwitch, OpRet, OpTrap:
		return true
	}
	return false
}

// HasResult reports whether the op produces a value.
func (op Op) HasResult() bool {
	switch op {
	case OpStore, OpJmp, OpBr, OpSwitch, OpRet, OpTrap, OpInvalid:
		return false
	}
	return true
}

// IsBinALU reports two-operand arithmetic ops.
func (op Op) IsBinALU() bool { return op >= OpAdd && op <= OpSar }

// SwitchCase pairs a constant with a successor index.
type SwitchCase struct {
	Val uint32 // the matched constant
}

// Value is one SSA value / instruction.
type Value struct {
	ID    int      // function-unique value number
	Op    Op       // opcode
	Block *Block   // owning block
	Args  []*Value // operands

	Const   int32    // OpConst payload; displacement for memory ops
	Size    uint8    // access width in bytes for memory ops
	Signed  bool     // signedness of widening loads and divisions
	Cond    isa.Cond // condition for OpSetCC / conditional branches
	Sym     string   // external callee name (OpCallExt) or symbol ref
	Callee  *Func    // direct callee (OpCall)
	Targets []*Func  // possible callees of OpCallInd
	NumRet  int      // result count of call ops
	Idx     int      // parameter/result index (OpParam, OpRetVal)
	RegHint isa.Reg  // original machine register, for diagnostics

	AllocSize uint32 // OpAlloca object size in bytes
	Align     uint32 // OpAlloca alignment
	// Name optionally labels allocas and params for diagnostics.
	Name string

	// Cases holds OpSwitch case constants (parallel to Succs[0:len]).
	Cases []SwitchCase

	uses int

	// slot and tupleOff are the dense execution indices assigned by
	// Func.reindex (see layout.go); -1 while unassigned.
	slot     int32
	tupleOff int32
}

// AddArg appends an argument.
func (v *Value) AddArg(a *Value) { v.Args = append(v.Args, a) }

func (v *Value) String() string {
	if v == nil {
		return "<nil>"
	}
	return fmt.Sprintf("v%d", v.ID)
}

// Block is a basic block.
type Block struct {
	ID    int      // function-unique block number
	Func  *Func    // owning function
	Addr  uint32   // original machine address of the block head, 0 if synthetic
	Phis  []*Value // phi nodes, evaluated on entry
	Insts []*Value // body, terminator last
	Preds []*Block // predecessors, in edge-creation order
	Succs []*Block // successors; order is the terminator's contract
}

// Term returns the block terminator, or nil.
func (b *Block) Term() *Value {
	if len(b.Insts) == 0 {
		return nil
	}
	t := b.Insts[len(b.Insts)-1]
	if !t.Op.IsTerm() {
		return nil
	}
	return t
}

// Func is an IR function.
type Func struct {
	Name   string   // function name
	Addr   uint32   // original entry address
	Mod    *Module  // owning module
	Params []*Value // OpParam values, in signature order
	NumRet int      // number of return slots
	// RetRegs names the virtual register each return slot carries while the
	// lifted signature is register-based (parallel to OpRet args). Empty
	// after symbolization.
	RetRegs []isa.Reg
	Blocks  []*Block // basic blocks; Blocks[0] is the entry

	// StackArgs counts the recovered stack-passed arguments appended to
	// Params by symbolization.
	StackArgs int

	nextValueID int
	nextBlockID int

	// layout caches the dense execution layout (see layout.go); layoutOK
	// marks it current and is cleared by NewValue.
	layout   Layout
	layoutOK atomic.Bool
}

// Entry returns the entry block.
func (f *Func) Entry() *Block { return f.Blocks[0] }

// NewBlock appends a new block.
func (f *Func) NewBlock(addr uint32) *Block {
	b := &Block{ID: f.nextBlockID, Func: f, Addr: addr}
	f.nextBlockID++
	f.Blocks = append(f.Blocks, b)
	return b
}

// NewValue creates a value without inserting it anywhere. Creating a value
// invalidates the function's cached dense layout (layout.go).
func (f *Func) NewValue(op Op, args ...*Value) *Value {
	v := &Value{ID: f.nextValueID, Op: op, Args: args, slot: -1, tupleOff: -1}
	f.nextValueID++
	f.layoutOK.Store(false)
	return v
}

// NewParam appends a parameter.
func (f *Func) NewParam(reg isa.Reg, name string) *Value {
	v := f.NewValue(OpParam)
	v.RegHint = reg
	v.Idx = len(f.Params)
	v.Name = name
	f.Params = append(f.Params, v)
	return v
}

// Append inserts v at the end of block b (before nothing; terminators are
// appended like other instructions and must come last).
func (b *Block) Append(v *Value) *Value {
	v.Block = b
	b.Insts = append(b.Insts, v)
	return v
}

// AddPhi inserts a phi value into the block.
func (b *Block) AddPhi(v *Value) *Value {
	v.Op = OpPhi
	v.Block = b
	b.Phis = append(b.Phis, v)
	return v
}

// Module is a lifted program.
type Module struct {
	Name  string  // module (program) name
	Funcs []*Func // functions, in recovery order
	// Entry is the function executed first (the lifted _start).
	Entry *Func
	// Data is the original binary's data section (loaded at isa.DataBase).
	Data []byte
	// EmuStackSize is the size of the emulated-stack region; 0 once
	// symbolization has removed it.
	EmuStackSize uint32
	// FuncByAddr finds lifted functions by original entry address (for
	// indirect calls through original code addresses).
	funcsByAddr map[uint32]*Func

	// layoutMu serializes lazy dense-layout computation across concurrent
	// executors (see Func.EnsureLayout).
	layoutMu sync.Mutex
}

// NewModule returns an empty module.
func NewModule(name string) *Module {
	return &Module{Name: name, funcsByAddr: make(map[uint32]*Func)}
}

// NewFunc creates and registers a function.
func (m *Module) NewFunc(name string, addr uint32) *Func {
	f := &Func{Name: name, Addr: addr, Mod: m}
	m.Funcs = append(m.Funcs, f)
	if addr != 0 {
		m.funcsByAddr[addr] = f
	}
	return f
}

// FuncAt returns the function lifted from original address addr.
func (m *Module) FuncAt(addr uint32) *Func { return m.funcsByAddr[addr] }

// FuncByName finds a function by name.
func (m *Module) FuncByName(name string) *Func {
	for _, f := range m.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// ParamByReg returns the parameter carrying virtual register r, or nil.
func (f *Func) ParamByReg(r isa.Reg) *Value {
	for _, p := range f.Params {
		if p.RegHint == r {
			return p
		}
	}
	return nil
}

// RetIndexOf returns the return-tuple index carrying register r, or -1.
func (f *Func) RetIndexOf(r isa.Reg) int {
	for i, rr := range f.RetRegs {
		if rr == r {
			return i
		}
	}
	return -1
}
