package ir_test

import (
	"strings"
	"testing"

	"wytiwyg/internal/ir"
	"wytiwyg/internal/isa"
)

// buildRetConst makes func() -> 1 { ret const }.
func buildRetConst(m *ir.Module, name string, c int32) *ir.Func {
	f := m.NewFunc(name, 0x1000)
	f.NumRet = 1
	b := f.NewBlock(0)
	k := f.NewValue(ir.OpConst)
	k.Const = c
	b.Append(k)
	b.Append(f.NewValue(ir.OpRet, k))
	return f
}

func TestVerifyOK(t *testing.T) {
	m := ir.NewModule("t")
	f := buildRetConst(m, "f", 7)
	m.Entry = f
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyCatchesMissingTerminator(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("f", 0x1000)
	f.NumRet = 0
	b := f.NewBlock(0)
	k := f.NewValue(ir.OpConst)
	b.Append(k)
	if err := ir.Verify(m); err == nil {
		t.Error("missing terminator accepted")
	}
}

func TestVerifyCatchesForeignValue(t *testing.T) {
	m := ir.NewModule("t")
	f1 := buildRetConst(m, "f1", 1)
	f2 := m.NewFunc("f2", 0x2000)
	f2.NumRet = 1
	b := f2.NewBlock(0)
	// Return f1's constant: foreign.
	foreign := f1.Entry().Insts[0]
	b.Append(f2.NewValue(ir.OpRet, foreign))
	if err := ir.Verify(m); err == nil {
		t.Error("foreign value accepted")
	}
}

func TestVerifyCatchesRetArity(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("f", 0x1000)
	f.NumRet = 2
	b := f.NewBlock(0)
	k := f.NewValue(ir.OpConst)
	b.Append(k)
	b.Append(f.NewValue(ir.OpRet, k)) // only one value
	if err := ir.Verify(m); err == nil {
		t.Error("ret arity mismatch accepted")
	}
}

func TestVerifyCatchesPhiArity(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("f", 0x1000)
	f.NumRet = 1
	b0 := f.NewBlock(0)
	b1 := f.NewBlock(0)
	b0.Succs = []*ir.Block{b1}
	b1.Preds = []*ir.Block{b0}
	b0.Append(f.NewValue(ir.OpJmp))
	k := f.NewValue(ir.OpConst)
	b1.Append(k)
	phi := f.NewValue(ir.OpPhi, k, k) // 2 args, 1 pred
	b1.AddPhi(phi)
	b1.Append(f.NewValue(ir.OpRet, phi))
	if err := ir.Verify(m); err == nil {
		t.Error("phi arity mismatch accepted")
	}
}

func TestVerifyCatchesBrokenEdges(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("f", 0x1000)
	f.NumRet = 0
	b0 := f.NewBlock(0)
	b1 := f.NewBlock(0)
	b0.Succs = []*ir.Block{b1} // missing back link
	b0.Append(f.NewValue(ir.OpJmp))
	b1.Append(f.NewValue(ir.OpRet))
	if err := ir.Verify(m); err == nil {
		t.Error("asymmetric edge accepted")
	}
}

func TestCallArityChecked(t *testing.T) {
	m := ir.NewModule("t")
	callee := m.NewFunc("callee", 0x2000)
	callee.NumRet = 1
	callee.NewParam(isa.EAX, "a")
	cb := callee.NewBlock(0)
	cb.Append(callee.NewValue(ir.OpRet, callee.Params[0]))

	f := m.NewFunc("f", 0x1000)
	f.NumRet = 0
	b := f.NewBlock(0)
	call := f.NewValue(ir.OpCall) // zero args for 1-param callee
	call.Callee = callee
	call.NumRet = 1
	b.Append(call)
	b.Append(f.NewValue(ir.OpRet))
	if err := ir.Verify(m); err == nil {
		t.Error("call arity mismatch accepted")
	}
}

func TestPrinterOutput(t *testing.T) {
	m := ir.NewModule("demo")
	f := m.NewFunc("f", 0x1000)
	f.NumRet = 1
	p := f.NewParam(isa.EAX, "eax")
	b := f.NewBlock(0)
	k := f.NewValue(ir.OpConst)
	k.Const = 5
	b.Append(k)
	add := f.NewValue(ir.OpAdd, p, k)
	b.Append(add)
	b.Append(f.NewValue(ir.OpRet, add))
	m.Entry = f

	out := m.String()
	for _, want := range []string{"module demo", "func f(", "const 5", "add", "ret"} {
		if !strings.Contains(out, want) {
			t.Errorf("printer output missing %q:\n%s", want, out)
		}
	}
}

func TestFuncHelpers(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("f", 0x1234)
	f.NewParam(isa.ESP, "esp")
	f.RetRegs = []isa.Reg{isa.EAX, isa.ESP}
	if f.ParamByReg(isa.ESP) == nil || f.ParamByReg(isa.EBX) != nil {
		t.Error("ParamByReg wrong")
	}
	if f.RetIndexOf(isa.ESP) != 1 || f.RetIndexOf(isa.EDI) != -1 {
		t.Error("RetIndexOf wrong")
	}
	if m.FuncAt(0x1234) != f || m.FuncAt(0x9999) != nil {
		t.Error("FuncAt wrong")
	}
	if m.FuncByName("f") != f || m.FuncByName("g") != nil {
		t.Error("FuncByName wrong")
	}
}

func TestOpClassifiers(t *testing.T) {
	if !ir.OpJmp.IsTerm() || !ir.OpRet.IsTerm() || ir.OpAdd.IsTerm() {
		t.Error("IsTerm wrong")
	}
	if ir.OpStore.HasResult() || !ir.OpLoad.HasResult() || !ir.OpCall.HasResult() {
		t.Error("HasResult wrong")
	}
	if !ir.OpAdd.IsBinALU() || !ir.OpSar.IsBinALU() || ir.OpNeg.IsBinALU() {
		t.Error("IsBinALU wrong")
	}
}
