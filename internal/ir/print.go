package ir

import (
	"fmt"
	"strings"
)

// String renders the module as readable text (for debugging and golden
// tests).
func (m *Module) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "module %s (emustack=%d)\n", m.Name, m.EmuStackSize)
	for _, f := range m.Funcs {
		b.WriteString(f.String())
	}
	return b.String()
}

// String renders one function.
func (f *Func) String() string {
	var b strings.Builder
	var params []string
	for _, p := range f.Params {
		params = append(params, p.describe())
	}
	fmt.Fprintf(&b, "func %s(%s) -> %d @0x%x {\n", f.Name, strings.Join(params, ", "), f.NumRet, f.Addr)
	for _, blk := range f.Blocks {
		fmt.Fprintf(&b, "b%d:", blk.ID)
		if len(blk.Preds) > 0 {
			var ps []string
			for _, p := range blk.Preds {
				ps = append(ps, fmt.Sprintf("b%d", p.ID))
			}
			fmt.Fprintf(&b, " ; preds %s", strings.Join(ps, " "))
		}
		b.WriteString("\n")
		for _, v := range blk.Phis {
			fmt.Fprintf(&b, "  %s\n", v.describe())
		}
		for _, v := range blk.Insts {
			fmt.Fprintf(&b, "  %s\n", v.describe())
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// Location returns a stable, greppable position for a value in the form
// "func:bN:iK" (instruction K of block N), "func:bN:pK" (phi K) or
// "func:paramK". Diagnostics use it so that a finding maps back to one line
// of the printed IR. An unplaced or detached value reports "?" components.
func (v *Value) Location() string {
	if v == nil {
		return "?"
	}
	if v.Op == OpParam {
		if v.Block != nil && v.Block.Func != nil {
			return fmt.Sprintf("%s:param%d", v.Block.Func.Name, v.Idx)
		}
		return fmt.Sprintf("param%d", v.Idx)
	}
	b := v.Block
	if b == nil {
		return fmt.Sprintf("?:?:%s", v)
	}
	fn := "?"
	if b.Func != nil {
		fn = b.Func.Name
	}
	for i, p := range b.Phis {
		if p == v {
			return fmt.Sprintf("%s:b%d:p%d", fn, b.ID, i)
		}
	}
	for i, in := range b.Insts {
		if in == v {
			return fmt.Sprintf("%s:b%d:i%d", fn, b.ID, i)
		}
	}
	return fmt.Sprintf("%s:b%d:%s", fn, b.ID, v)
}

func (v *Value) describe() string {
	var b strings.Builder
	if v.Op.HasResult() {
		fmt.Fprintf(&b, "%s = ", v)
	}
	fmt.Fprintf(&b, "%s", v.Op)
	switch v.Op {
	case OpParam:
		fmt.Fprintf(&b, " %s(#%d)", v.RegHint, v.Idx)
		if v.Name != "" {
			fmt.Fprintf(&b, " %q", v.Name)
		}
		return b.String()
	case OpConst:
		fmt.Fprintf(&b, " %d", v.Const)
		return b.String()
	case OpCmp:
		fmt.Fprintf(&b, ".%s", v.Cond)
	case OpLoad, OpStore, OpSext, OpZext:
		fmt.Fprintf(&b, "%d", v.Size)
		if v.Signed {
			b.WriteString("s")
		}
	case OpAlloca:
		fmt.Fprintf(&b, " %q size=%d align=%d", v.Name, v.AllocSize, v.Align)
		return b.String()
	case OpCall:
		fmt.Fprintf(&b, " %s", v.Callee.Name)
	case OpCallExt, OpCallExtRaw:
		fmt.Fprintf(&b, " %s", v.Sym)
	case OpExtract:
		fmt.Fprintf(&b, ".%d", v.Idx)
	}
	for i, a := range v.Args {
		if i == 0 {
			b.WriteString(" ")
		} else {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	if v.Op == OpSwitch {
		for i, c := range v.Cases {
			fmt.Fprintf(&b, " [0x%x->b%d]", c.Val, v.Block.Succs[i].ID)
		}
		fmt.Fprintf(&b, " [default->b%d]", v.Block.Succs[len(v.Cases)].ID)
	}
	if v.Op == OpJmp {
		fmt.Fprintf(&b, " b%d", v.Block.Succs[0].ID)
	}
	if v.Op == OpBr {
		fmt.Fprintf(&b, " b%d, b%d", v.Block.Succs[0].ID, v.Block.Succs[1].ID)
	}
	return b.String()
}
