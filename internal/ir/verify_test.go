package ir_test

import (
	"strings"
	"testing"

	"wytiwyg/internal/ir"
	"wytiwyg/internal/isa"
)

// valid returns a minimal well-formed module: _start with a const and a
// trap, plus a one-param callee, wired for call-site checks.
func valid() (*ir.Module, *ir.Func, *ir.Block) {
	m := ir.NewModule("v")
	callee := m.NewFunc("callee", 0x2000)
	callee.NumRet = 1
	callee.NewParam(isa.EAX, "a")
	cb := callee.NewBlock(0)
	k := callee.NewValue(ir.OpConst)
	k.Const = 1
	cb.Append(k)
	cb.Append(callee.NewValue(ir.OpRet, k))

	f := m.NewFunc("_start", 0x1000)
	b := f.NewBlock(0)
	b.Append(f.NewValue(ir.OpTrap))
	m.Entry = f
	return m, f, b
}

func TestVerifyAcceptsValid(t *testing.T) {
	m, _, _ := valid()
	if err := ir.Verify(m); err != nil {
		t.Fatalf("valid module rejected: %v", err)
	}
}

// Every structural violation class must be caught with a recognizable
// message.
func TestVerifyViolations(t *testing.T) {
	cases := []struct {
		name string
		mut  func(m *ir.Module, f *ir.Func, b *ir.Block)
		want string
	}{
		{"no-blocks", func(m *ir.Module, f *ir.Func, b *ir.Block) {
			f.Blocks = nil
		}, "no blocks"},
		{"missing-terminator", func(m *ir.Module, f *ir.Func, b *ir.Block) {
			b.Insts = nil
		}, "terminator"},
		{"terminator-mid-block", func(m *ir.Module, f *ir.Func, b *ir.Block) {
			tr := f.NewValue(ir.OpTrap)
			tr.Block = b
			b.Insts = append([]*ir.Value{tr}, b.Insts...)
		}, "mid-block"},
		{"wrong-block-backptr", func(m *ir.Module, f *ir.Func, b *ir.Block) {
			k := f.NewValue(ir.OpConst)
			k.Block = nil // lie about ownership
			b.Insts = append([]*ir.Value{k}, b.Insts...)
		}, "wrong block"},
		{"jmp-succ-count", func(m *ir.Module, f *ir.Func, b *ir.Block) {
			b.Insts = b.Insts[:0]
			j := f.NewValue(ir.OpJmp)
			j.Block = b
			b.Insts = append(b.Insts, j) // no successors
		}, "jmp with"},
		{"br-succ-count", func(m *ir.Module, f *ir.Func, b *ir.Block) {
			k := f.NewValue(ir.OpConst)
			b.Insts = b.Insts[:0]
			b.Append(k)
			br := f.NewValue(ir.OpBr, k)
			b.Append(br)
			b.Succs = []*ir.Block{b} // one succ, br needs two
		}, "br with"},
		{"br-arity", func(m *ir.Module, f *ir.Func, b *ir.Block) {
			b2 := f.NewBlock(0)
			b2.Preds = []*ir.Block{b, b}
			tr := f.NewValue(ir.OpTrap)
			b2.Append(tr)
			b.Insts = b.Insts[:0]
			br := f.NewValue(ir.OpBr) // no condition arg
			b.Append(br)
			b.Succs = []*ir.Block{b2, b2}
		}, "br with"},
		{"switch-succ-mismatch", func(m *ir.Module, f *ir.Func, b *ir.Block) {
			k := f.NewValue(ir.OpConst)
			b.Insts = b.Insts[:0]
			b.Append(k)
			sw := f.NewValue(ir.OpSwitch, k)
			sw.Cases = []ir.SwitchCase{{Val: 1}}
			b.Append(sw)
			b.Succs = nil // needs 2
		}, "switch with"},
		{"ret-arity", func(m *ir.Module, f *ir.Func, b *ir.Block) {
			b.Insts = b.Insts[:0]
			r := f.NewValue(ir.OpRet) // _start has NumRet 0, so make it 1
			b.Append(r)
			f.NumRet = 1
		}, "ret with"},
		{"ret-with-succs", func(m *ir.Module, f *ir.Func, b *ir.Block) {
			b.Insts = b.Insts[:0]
			b.Append(f.NewValue(ir.OpRet))
			b.Succs = []*ir.Block{b}
		}, "ret with successors"},
		{"trap-with-succs", func(m *ir.Module, f *ir.Func, b *ir.Block) {
			b.Succs = []*ir.Block{b}
			b.Preds = []*ir.Block{b}
		}, "trap with successors"},
		{"asymmetric-edge", func(m *ir.Module, f *ir.Func, b *ir.Block) {
			b2 := f.NewBlock(0)
			b2.Append(f.NewValue(ir.OpTrap))
			b.Insts = b.Insts[:0]
			b.Append(f.NewValue(ir.OpJmp))
			b.Succs = []*ir.Block{b2} // b2.Preds not updated
		}, "backlink"},
		{"asymmetric-pred", func(m *ir.Module, f *ir.Func, b *ir.Block) {
			b2 := f.NewBlock(0)
			b2.Append(f.NewValue(ir.OpTrap))
			b2.Preds = []*ir.Block{b} // b.Succs not updated
		}, "succ link"},
		{"phi-arity", func(m *ir.Module, f *ir.Func, b *ir.Block) {
			k := f.NewValue(ir.OpConst)
			b.Insts = append([]*ir.Value{k}, b.Insts...)
			k.Block = b
			phi := f.NewValue(ir.OpPhi, k) // 1 arg, 0 preds
			b.AddPhi(phi)
		}, "phi"},
		{"non-phi-in-phis", func(m *ir.Module, f *ir.Func, b *ir.Block) {
			k := f.NewValue(ir.OpConst)
			k.Block = b
			b.Phis = append(b.Phis, k)
		}, "non-phi"},
		{"nil-arg", func(m *ir.Module, f *ir.Func, b *ir.Block) {
			v := f.NewValue(ir.OpNeg, nil)
			v.Block = b
			b.Insts = append([]*ir.Value{v}, b.Insts...)
		}, "nil arg"},
		{"foreign-value", func(m *ir.Module, f *ir.Func, b *ir.Block) {
			other := m.FuncByName("callee")
			foreign := other.Blocks[0].Insts[0] // callee's const
			v := f.NewValue(ir.OpNeg, foreign)
			v.Block = b
			b.Insts = append([]*ir.Value{v}, b.Insts...)
		}, "foreign"},
		{"call-no-callee", func(m *ir.Module, f *ir.Func, b *ir.Block) {
			c := f.NewValue(ir.OpCall)
			c.Block = b
			b.Insts = append([]*ir.Value{c}, b.Insts...)
		}, "without callee"},
		{"call-arity", func(m *ir.Module, f *ir.Func, b *ir.Block) {
			c := f.NewValue(ir.OpCall) // callee wants 1 arg
			c.Callee = m.FuncByName("callee")
			c.NumRet = 1
			c.Block = b
			b.Insts = append([]*ir.Value{c}, b.Insts...)
		}, "args"},
		{"call-numret", func(m *ir.Module, f *ir.Func, b *ir.Block) {
			k := f.NewValue(ir.OpConst)
			k.Block = b
			c := f.NewValue(ir.OpCall, k)
			c.Callee = m.FuncByName("callee")
			c.NumRet = 5
			c.Block = b
			b.Insts = append([]*ir.Value{k, c}, b.Insts...)
		}, "NumRet"},
		{"extract-oob", func(m *ir.Module, f *ir.Func, b *ir.Block) {
			k := f.NewValue(ir.OpConst)
			k.Block = b
			c := f.NewValue(ir.OpCall, k)
			c.Callee = m.FuncByName("callee")
			c.NumRet = 1
			c.Block = b
			e := f.NewValue(ir.OpExtract, c)
			e.Idx = 2
			e.Block = b
			b.Insts = append([]*ir.Value{k, c, e}, b.Insts...)
		}, "out of"},
		{"load-arity", func(m *ir.Module, f *ir.Func, b *ir.Block) {
			v := f.NewValue(ir.OpLoad)
			v.Block = b
			b.Insts = append([]*ir.Value{v}, b.Insts...)
		}, "load"},
		{"store-arity", func(m *ir.Module, f *ir.Func, b *ir.Block) {
			k := f.NewValue(ir.OpConst)
			k.Block = b
			v := f.NewValue(ir.OpStore, k)
			v.Block = b
			b.Insts = append([]*ir.Value{k, v}, b.Insts...)
		}, "store"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m, f, b := valid()
			c.mut(m, f, b)
			err := ir.Verify(m)
			if err == nil {
				t.Fatal("verifier accepted broken module")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not contain %q", err, c.want)
			}
		})
	}
}
