package ir_test

import (
	"strings"
	"testing"

	"wytiwyg/internal/ir"
	"wytiwyg/internal/isa"
)

// valid returns a minimal well-formed module: _start with a const and a
// trap, plus a one-param callee, wired for call-site checks.
func valid() (*ir.Module, *ir.Func, *ir.Block) {
	m := ir.NewModule("v")
	callee := m.NewFunc("callee", 0x2000)
	callee.NumRet = 1
	callee.NewParam(isa.EAX, "a")
	cb := callee.NewBlock(0)
	k := callee.NewValue(ir.OpConst)
	k.Const = 1
	cb.Append(k)
	cb.Append(callee.NewValue(ir.OpRet, k))

	f := m.NewFunc("_start", 0x1000)
	b := f.NewBlock(0)
	b.Append(f.NewValue(ir.OpTrap))
	m.Entry = f
	return m, f, b
}

func TestVerifyAcceptsValid(t *testing.T) {
	m, _, _ := valid()
	if err := ir.Verify(m); err != nil {
		t.Fatalf("valid module rejected: %v", err)
	}
}

// Every structural violation class must be caught with a recognizable
// message.
func TestVerifyViolations(t *testing.T) {
	cases := []struct {
		name string
		mut  func(m *ir.Module, f *ir.Func, b *ir.Block)
		want string
	}{
		{"no-blocks", func(m *ir.Module, f *ir.Func, b *ir.Block) {
			f.Blocks = nil
		}, "no blocks"},
		{"missing-terminator", func(m *ir.Module, f *ir.Func, b *ir.Block) {
			b.Insts = nil
		}, "terminator"},
		{"terminator-mid-block", func(m *ir.Module, f *ir.Func, b *ir.Block) {
			tr := f.NewValue(ir.OpTrap)
			tr.Block = b
			b.Insts = append([]*ir.Value{tr}, b.Insts...)
		}, "mid-block"},
		{"wrong-block-backptr", func(m *ir.Module, f *ir.Func, b *ir.Block) {
			k := f.NewValue(ir.OpConst)
			k.Block = nil // lie about ownership
			b.Insts = append([]*ir.Value{k}, b.Insts...)
		}, "wrong block"},
		{"jmp-succ-count", func(m *ir.Module, f *ir.Func, b *ir.Block) {
			b.Insts = b.Insts[:0]
			j := f.NewValue(ir.OpJmp)
			j.Block = b
			b.Insts = append(b.Insts, j) // no successors
		}, "jmp with"},
		{"br-succ-count", func(m *ir.Module, f *ir.Func, b *ir.Block) {
			k := f.NewValue(ir.OpConst)
			b.Insts = b.Insts[:0]
			b.Append(k)
			br := f.NewValue(ir.OpBr, k)
			b.Append(br)
			b.Succs = []*ir.Block{b} // one succ, br needs two
		}, "br with"},
		{"br-arity", func(m *ir.Module, f *ir.Func, b *ir.Block) {
			b2 := f.NewBlock(0)
			b2.Preds = []*ir.Block{b, b}
			tr := f.NewValue(ir.OpTrap)
			b2.Append(tr)
			b.Insts = b.Insts[:0]
			br := f.NewValue(ir.OpBr) // no condition arg
			b.Append(br)
			b.Succs = []*ir.Block{b2, b2}
		}, "br with"},
		{"switch-succ-mismatch", func(m *ir.Module, f *ir.Func, b *ir.Block) {
			k := f.NewValue(ir.OpConst)
			b.Insts = b.Insts[:0]
			b.Append(k)
			sw := f.NewValue(ir.OpSwitch, k)
			sw.Cases = []ir.SwitchCase{{Val: 1}}
			b.Append(sw)
			b.Succs = nil // needs 2
		}, "switch with"},
		{"ret-arity", func(m *ir.Module, f *ir.Func, b *ir.Block) {
			b.Insts = b.Insts[:0]
			r := f.NewValue(ir.OpRet) // _start has NumRet 0, so make it 1
			b.Append(r)
			f.NumRet = 1
		}, "ret with"},
		{"ret-with-succs", func(m *ir.Module, f *ir.Func, b *ir.Block) {
			b.Insts = b.Insts[:0]
			b.Append(f.NewValue(ir.OpRet))
			b.Succs = []*ir.Block{b}
		}, "ret with successors"},
		{"trap-with-succs", func(m *ir.Module, f *ir.Func, b *ir.Block) {
			b.Succs = []*ir.Block{b}
			b.Preds = []*ir.Block{b}
		}, "trap with successors"},
		{"asymmetric-edge", func(m *ir.Module, f *ir.Func, b *ir.Block) {
			b2 := f.NewBlock(0)
			b2.Append(f.NewValue(ir.OpTrap))
			b.Insts = b.Insts[:0]
			b.Append(f.NewValue(ir.OpJmp))
			b.Succs = []*ir.Block{b2} // b2.Preds not updated
		}, "backlink"},
		{"asymmetric-pred", func(m *ir.Module, f *ir.Func, b *ir.Block) {
			b2 := f.NewBlock(0)
			b2.Append(f.NewValue(ir.OpTrap))
			b2.Preds = []*ir.Block{b} // b.Succs not updated
		}, "succ link"},
		{"phi-arity", func(m *ir.Module, f *ir.Func, b *ir.Block) {
			k := f.NewValue(ir.OpConst)
			b.Insts = append([]*ir.Value{k}, b.Insts...)
			k.Block = b
			phi := f.NewValue(ir.OpPhi, k) // 1 arg, 0 preds
			b.AddPhi(phi)
		}, "phi"},
		{"non-phi-in-phis", func(m *ir.Module, f *ir.Func, b *ir.Block) {
			k := f.NewValue(ir.OpConst)
			k.Block = b
			b.Phis = append(b.Phis, k)
		}, "non-phi"},
		{"nil-arg", func(m *ir.Module, f *ir.Func, b *ir.Block) {
			v := f.NewValue(ir.OpNeg, nil)
			v.Block = b
			b.Insts = append([]*ir.Value{v}, b.Insts...)
		}, "nil arg"},
		{"foreign-value", func(m *ir.Module, f *ir.Func, b *ir.Block) {
			other := m.FuncByName("callee")
			foreign := other.Blocks[0].Insts[0] // callee's const
			v := f.NewValue(ir.OpNeg, foreign)
			v.Block = b
			b.Insts = append([]*ir.Value{v}, b.Insts...)
		}, "foreign"},
		{"call-no-callee", func(m *ir.Module, f *ir.Func, b *ir.Block) {
			c := f.NewValue(ir.OpCall)
			c.Block = b
			b.Insts = append([]*ir.Value{c}, b.Insts...)
		}, "without callee"},
		{"call-arity", func(m *ir.Module, f *ir.Func, b *ir.Block) {
			c := f.NewValue(ir.OpCall) // callee wants 1 arg
			c.Callee = m.FuncByName("callee")
			c.NumRet = 1
			c.Block = b
			b.Insts = append([]*ir.Value{c}, b.Insts...)
		}, "args"},
		{"call-numret", func(m *ir.Module, f *ir.Func, b *ir.Block) {
			k := f.NewValue(ir.OpConst)
			k.Block = b
			c := f.NewValue(ir.OpCall, k)
			c.Callee = m.FuncByName("callee")
			c.NumRet = 5
			c.Block = b
			b.Insts = append([]*ir.Value{k, c}, b.Insts...)
		}, "NumRet"},
		{"extract-oob", func(m *ir.Module, f *ir.Func, b *ir.Block) {
			k := f.NewValue(ir.OpConst)
			k.Block = b
			c := f.NewValue(ir.OpCall, k)
			c.Callee = m.FuncByName("callee")
			c.NumRet = 1
			c.Block = b
			e := f.NewValue(ir.OpExtract, c)
			e.Idx = 2
			e.Block = b
			b.Insts = append([]*ir.Value{k, c, e}, b.Insts...)
		}, "out of"},
		{"load-arity", func(m *ir.Module, f *ir.Func, b *ir.Block) {
			v := f.NewValue(ir.OpLoad)
			v.Block = b
			b.Insts = append([]*ir.Value{v}, b.Insts...)
		}, "load"},
		{"store-arity", func(m *ir.Module, f *ir.Func, b *ir.Block) {
			k := f.NewValue(ir.OpConst)
			k.Block = b
			v := f.NewValue(ir.OpStore, k)
			v.Block = b
			b.Insts = append([]*ir.Value{k, v}, b.Insts...)
		}, "store"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m, f, b := valid()
			c.mut(m, f, b)
			err := ir.Verify(m)
			if err == nil {
				t.Fatal("verifier accepted broken module")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

// Dominance: a use in a block that the definition does not dominate must be
// rejected, both for plain instructions and for phi edge arguments.
func TestVerifyDominance(t *testing.T) {
	build := func() (*ir.Module, *ir.Func, *ir.Block, *ir.Block, *ir.Block, *ir.Block) {
		// entry -> (then | else) -> join diamond.
		m := ir.NewModule("d")
		f := m.NewFunc("f", 0x1000)
		f.NumRet = 1
		entry := f.NewBlock(0)
		thenB := f.NewBlock(0)
		elseB := f.NewBlock(0)
		join := f.NewBlock(0)
		cond := f.NewValue(ir.OpConst)
		cond.Const = 1
		entry.Append(cond)
		entry.Append(f.NewValue(ir.OpBr, cond))
		entry.Succs = []*ir.Block{thenB, elseB}
		thenB.Preds = []*ir.Block{entry}
		elseB.Preds = []*ir.Block{entry}
		thenB.Append(f.NewValue(ir.OpJmp))
		thenB.Succs = []*ir.Block{join}
		elseB.Append(f.NewValue(ir.OpJmp))
		elseB.Succs = []*ir.Block{join}
		join.Preds = []*ir.Block{thenB, elseB}
		m.Entry = f
		return m, f, entry, thenB, elseB, join
	}

	t.Run("cross-branch-use", func(t *testing.T) {
		m, f, _, thenB, elseB, join := build()
		tv := f.NewValue(ir.OpConst)
		tv.Const = 7
		tv.Block = thenB
		thenB.Insts = append([]*ir.Value{tv}, thenB.Insts...)
		// elseB uses a value defined only on the then path.
		use := f.NewValue(ir.OpNeg, tv)
		use.Block = elseB
		elseB.Insts = append([]*ir.Value{use}, elseB.Insts...)
		join.Append(f.NewValue(ir.OpRet, use))
		err := ir.Verify(m)
		if err == nil || !strings.Contains(err.Error(), "before its definition dominates it") {
			t.Fatalf("cross-branch use not caught: %v", err)
		}
	})

	t.Run("use-before-def-in-block", func(t *testing.T) {
		m, f, entry, _, _, join := build()
		k := f.NewValue(ir.OpConst)
		k.Const = 3
		use := f.NewValue(ir.OpNeg, k)
		use.Block = entry
		k.Block = entry
		// use placed before its definition in the same block.
		entry.Insts = append([]*ir.Value{use, k}, entry.Insts...)
		join.Append(f.NewValue(ir.OpRet, use))
		err := ir.Verify(m)
		if err == nil || !strings.Contains(err.Error(), "before its definition") {
			t.Fatalf("in-block use-before-def not caught: %v", err)
		}
	})

	t.Run("phi-arg-wrong-pred", func(t *testing.T) {
		m, f, _, thenB, elseB, join := build()
		tv := f.NewValue(ir.OpConst)
		tv.Const = 7
		tv.Block = thenB
		thenB.Insts = append([]*ir.Value{tv}, thenB.Insts...)
		ev := f.NewValue(ir.OpConst)
		ev.Const = 9
		ev.Block = elseB
		elseB.Insts = append([]*ir.Value{ev}, elseB.Insts...)
		// Swapped: the else edge claims the then-path value and vice versa.
		phi := f.NewValue(ir.OpPhi, ev, tv)
		join.AddPhi(phi)
		join.Append(f.NewValue(ir.OpRet, phi))
		err := ir.Verify(m)
		if err == nil || !strings.Contains(err.Error(), "not available at end of pred") {
			t.Fatalf("phi edge mismatch not caught: %v", err)
		}
	})

	t.Run("valid-diamond-with-phi", func(t *testing.T) {
		m, f, _, thenB, elseB, join := build()
		tv := f.NewValue(ir.OpConst)
		tv.Const = 7
		tv.Block = thenB
		thenB.Insts = append([]*ir.Value{tv}, thenB.Insts...)
		ev := f.NewValue(ir.OpConst)
		ev.Const = 9
		ev.Block = elseB
		elseB.Insts = append([]*ir.Value{ev}, elseB.Insts...)
		phi := f.NewValue(ir.OpPhi, tv, ev)
		join.AddPhi(phi)
		join.Append(f.NewValue(ir.OpRet, phi))
		if err := ir.Verify(m); err != nil {
			t.Fatalf("valid diamond rejected: %v", err)
		}
	})
}

// Location strings must be stable and greppable: func:bN:iK for
// instructions, func:bN:pK for phis, paramN for detached parameters.
func TestValueLocation(t *testing.T) {
	m, f, b := valid()
	_ = m
	k := f.NewValue(ir.OpConst)
	k.Const = 5
	k.Block = b
	b.Insts = append([]*ir.Value{k}, b.Insts...)
	if got := k.Location(); got != "_start:b0:i0" {
		t.Errorf("inst location = %q, want _start:b0:i0", got)
	}
	phi := f.NewValue(ir.OpPhi)
	b.AddPhi(phi)
	if got := phi.Location(); got != "_start:b0:p0" {
		t.Errorf("phi location = %q, want _start:b0:p0", got)
	}
	p := f.NewParam(isa.EAX, "x")
	if got := p.Location(); got != "param0" {
		t.Errorf("param location = %q, want param0", got)
	}
}
