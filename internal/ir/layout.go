package ir

// Dense execution layout. Interpreting a function is much cheaper when every
// SSA value carries a small dense index: the executor can keep per-frame
// state (SSA values, call tuples, tracer metadata) in flat slices instead of
// maps keyed by *Value. The layout is computed lazily and cached on the
// Func; creating a new value through NewValue invalidates it, and ir.Verify
// — which every transformation pass runs after mutating a module — refreshes
// it. Slot numbers are an execution artifact only: they are assigned
// independently of Value.ID, so value numbering (and with it every printed
// or digested form of the IR) is untouched by re-layouts.
//
// The invariant consumers rely on ("the dense-ID invariant"): between a
// mutation that adds values to a function and the next execution of that
// function, either ir.Verify ran or the executor's lazy EnsureLayout call
// reindexes it. Structural edits that do not create values (argument
// rewiring, op replacement, dead-value removal) keep an existing layout
// valid — stale slots simply go unused.

// Layout holds the per-function totals the executor sizes its frame slices
// from. All counts are valid only while Func.LayoutOK reports true.
type Layout struct {
	// NumSlots is the number of dense value slots (params, phis and
	// instructions; removed values leave unused holes).
	NumSlots int
	// TupleWords is the total width of all call-result tuples.
	TupleWords int
	// MaxArgs is the widest argument list of any value in the function.
	MaxArgs int
	// MaxPhis is the largest phi count of any block.
	MaxPhis int
}

// Slot returns the value's dense per-function index, or -1 before the
// owning function's layout has been computed (see Func.EnsureLayout).
func (v *Value) Slot() int { return int(v.slot) }

// TupleOff returns the value's offset into the function's flat tuple arena,
// or -1 when the value produces no tuple (or the layout is stale).
func (v *Value) TupleOff() int { return int(v.tupleOff) }

// TupleWidth returns the number of result words a call-like value occupies
// in the tuple arena: NumRet for internal calls, at least one word for
// external calls (which always produce a single result), zero for
// everything else.
func (v *Value) TupleWidth() int {
	switch v.Op {
	case OpCall, OpCallInd:
		return v.NumRet
	case OpCallExt, OpCallExtRaw:
		if v.NumRet > 1 {
			return v.NumRet
		}
		return 1
	}
	return 0
}

// Layout returns the cached dense layout totals. Call EnsureLayout first;
// the zero Layout is returned while the cache is stale.
func (f *Func) Layout() Layout { return f.layout }

// LayoutOK reports whether the cached dense layout is current.
func (f *Func) LayoutOK() bool { return f.layoutOK.Load() }

// EnsureLayout computes the dense slot layout if it is stale. It is safe to
// call from concurrent executors as long as no goroutine is mutating the
// function (the pipeline's phases guarantee this: passes mutate
// single-threaded and run ir.Verify before the next parallel execution).
func (f *Func) EnsureLayout() {
	if f.layoutOK.Load() {
		return
	}
	if f.Mod != nil {
		f.Mod.layoutMu.Lock()
		defer f.Mod.layoutMu.Unlock()
		if f.layoutOK.Load() {
			return
		}
	}
	f.reindex()
}

// reindex assigns dense slots to every value the function owns: parameters
// first, then per block phis and instructions. Call-like values additionally
// receive an offset into the flat tuple arena.
func (f *Func) reindex() {
	var lay Layout
	assign := func(v *Value) {
		v.slot = int32(lay.NumSlots)
		lay.NumSlots++
		if n := len(v.Args); n > lay.MaxArgs {
			lay.MaxArgs = n
		}
		if w := v.TupleWidth(); w > 0 {
			v.tupleOff = int32(lay.TupleWords)
			lay.TupleWords += w
		} else {
			v.tupleOff = -1
		}
	}
	for _, p := range f.Params {
		assign(p)
	}
	for _, b := range f.Blocks {
		if len(b.Phis) > lay.MaxPhis {
			lay.MaxPhis = len(b.Phis)
		}
		for _, v := range b.Phis {
			assign(v)
		}
		for _, v := range b.Insts {
			assign(v)
		}
	}
	f.layout = lay
	f.layoutOK.Store(true)
}
