package ir

import "fmt"

// Verify checks structural invariants of a module: every block ends in
// exactly one terminator, successor/predecessor edges are symmetric, phi
// arity matches predecessors, arguments belong to the same function,
// parameter/return counts are consistent at call sites, and every use of a
// value is dominated by its definition (SSA well-formedness; phi arguments
// must be defined by the end of the corresponding predecessor).
func Verify(m *Module) error {
	for _, f := range m.Funcs {
		if err := verifyFunc(f); err != nil {
			return fmt.Errorf("ir: func %s: %w", f.Name, err)
		}
	}
	return nil
}

func verifyFunc(f *Func) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("no blocks")
	}
	// Refresh the dense execution layout (layout.go): Verify runs after
	// every transformation pass, so execution always sees current slots.
	f.EnsureLayout()
	owned := map[*Value]bool{}
	for _, p := range f.Params {
		if p.Op != OpParam {
			return fmt.Errorf("param %s has op %s", p, p.Op)
		}
		owned[p] = true
	}
	for _, b := range f.Blocks {
		for _, v := range b.Phis {
			owned[v] = true
		}
		for _, v := range b.Insts {
			owned[v] = true
		}
	}
	for _, b := range f.Blocks {
		if b.Func != f {
			return fmt.Errorf("block b%d has wrong func", b.ID)
		}
		t := b.Term()
		if t == nil {
			return fmt.Errorf("block b%d lacks a terminator", b.ID)
		}
		for i, v := range b.Insts {
			if v.Op.IsTerm() && i != len(b.Insts)-1 {
				return fmt.Errorf("block b%d: terminator %s mid-block", b.ID, v)
			}
			if v.Block != b {
				return fmt.Errorf("block b%d: %s has wrong block", b.ID, v)
			}
		}
		switch t.Op {
		case OpJmp:
			if len(b.Succs) != 1 {
				return fmt.Errorf("block b%d: jmp with %d succs", b.ID, len(b.Succs))
			}
		case OpBr:
			if len(b.Succs) != 2 {
				return fmt.Errorf("block b%d: br with %d succs", b.ID, len(b.Succs))
			}
			if len(t.Args) != 1 {
				return fmt.Errorf("block b%d: br with %d args", b.ID, len(t.Args))
			}
		case OpSwitch:
			if len(b.Succs) != len(t.Cases)+1 {
				return fmt.Errorf("block b%d: switch with %d cases but %d succs",
					b.ID, len(t.Cases), len(b.Succs))
			}
		case OpRet:
			if len(t.Args) != f.NumRet {
				return fmt.Errorf("block b%d: ret with %d values, func returns %d",
					b.ID, len(t.Args), f.NumRet)
			}
			if len(b.Succs) != 0 {
				return fmt.Errorf("block b%d: ret with successors", b.ID)
			}
		case OpTrap:
			if len(b.Succs) != 0 {
				return fmt.Errorf("block b%d: trap with successors", b.ID)
			}
		}
		for _, s := range b.Succs {
			if !hasBlock(s.Preds, b) {
				return fmt.Errorf("edge b%d->b%d missing pred backlink", b.ID, s.ID)
			}
		}
		for _, p := range b.Preds {
			if !hasBlock(p.Succs, b) {
				return fmt.Errorf("edge b%d<-b%d missing succ link", b.ID, p.ID)
			}
		}
		for _, v := range b.Phis {
			if v.Op != OpPhi {
				return fmt.Errorf("block b%d: non-phi %s in phi list", b.ID, v)
			}
			if len(v.Args) != len(b.Preds) {
				return fmt.Errorf("block b%d: phi %s has %d args for %d preds",
					b.ID, v, len(v.Args), len(b.Preds))
			}
		}
		check := func(v *Value) error {
			for _, a := range v.Args {
				if a == nil {
					return fmt.Errorf("block b%d: %s(%s) has nil arg", b.ID, v, v.Op)
				}
				if !owned[a] {
					return fmt.Errorf("block b%d: %s(%s) uses foreign value %s(%s)",
						b.ID, v, v.Op, a, a.Op)
				}
			}
			switch v.Op {
			case OpCall:
				if v.Callee == nil {
					return fmt.Errorf("call %s without callee", v)
				}
				if len(v.Args) != len(v.Callee.Params) {
					return fmt.Errorf("call %s to %s with %d args, want %d",
						v, v.Callee.Name, len(v.Args), len(v.Callee.Params))
				}
				if v.NumRet != v.Callee.NumRet {
					return fmt.Errorf("call %s: NumRet %d != callee %d",
						v, v.NumRet, v.Callee.NumRet)
				}
			case OpExtract:
				if len(v.Args) != 1 {
					return fmt.Errorf("extract %s arity", v)
				}
				if v.Idx >= v.Args[0].NumRet {
					return fmt.Errorf("extract %s index %d out of %d", v, v.Idx, v.Args[0].NumRet)
				}
			case OpLoad:
				if len(v.Args) != 1 {
					return fmt.Errorf("load %s arity", v)
				}
			case OpStore:
				if len(v.Args) != 2 {
					return fmt.Errorf("store %s arity", v)
				}
			}
			return nil
		}
		for _, v := range b.Phis {
			if err := check(v); err != nil {
				return err
			}
		}
		for _, v := range b.Insts {
			if err := check(v); err != nil {
				return err
			}
		}
	}
	return verifyDominance(f)
}

// verifyDominance checks that every value use is dominated by its
// definition. Parameters dominate everything; a phi's i-th argument must be
// defined by the end of the i-th predecessor. Unreachable blocks are
// skipped: passes in flight may leave them behind and dominance is
// undefined there.
func verifyDominance(f *Func) error {
	idom := Dominators(f)
	// Definition order within a block: phis first (they all "define at the
	// top"), then instructions in list order.
	defIdx := map[*Value]int{}
	for _, b := range f.Blocks {
		for _, v := range b.Phis {
			defIdx[v] = -1
		}
		for i, v := range b.Insts {
			defIdx[v] = i
		}
	}
	isParam := map[*Value]bool{}
	for _, p := range f.Params {
		isParam[p] = true
	}
	// dominates reports whether block a dominates block b (both reachable).
	dominates := func(a, b *Block) bool {
		for ; b != nil; b = idom[b] {
			if b == a {
				return true
			}
			if b == f.Entry() {
				return false
			}
		}
		return false
	}
	// defReaches reports whether def's value is available at (useBlock, pos).
	defReaches := func(def *Value, useBlock *Block, pos int) bool {
		if isParam[def] || def.Op == OpConst && def.Block == nil {
			return true
		}
		db := def.Block
		if db == nil {
			return false
		}
		if db == useBlock {
			return defIdx[def] < pos
		}
		return dominates(db, useBlock)
	}
	for _, b := range f.Blocks {
		if _, reachable := idom[b]; !reachable && b != f.Entry() {
			continue
		}
		for _, v := range b.Phis {
			for i, a := range v.Args {
				if i >= len(b.Preds) {
					break // arity mismatch reported by the structural pass
				}
				p := b.Preds[i]
				if _, ok := idom[p]; !ok && p != f.Entry() {
					continue // value flows in from an unreachable edge
				}
				if !defReaches(a, p, len(p.Insts)) {
					return fmt.Errorf("block b%d: phi %s arg %d (%s, def at %s) not available at end of pred b%d",
						b.ID, v, i, a, a.Location(), p.ID)
				}
			}
		}
		for i, v := range b.Insts {
			for _, a := range v.Args {
				if !defReaches(a, b, i) {
					return fmt.Errorf("block b%d: %s(%s) uses %s (def at %s) before its definition dominates it",
						b.ID, v, v.Op, a, a.Location())
				}
			}
		}
	}
	return nil
}

// Dominators computes the immediate-dominator tree of f's reachable blocks
// (Cooper/Harvey/Kennedy iterative algorithm). The entry maps to itself;
// unreachable blocks are absent from the result.
func Dominators(f *Func) map[*Block]*Block {
	// Reverse post order over reachable blocks.
	seen := map[*Block]bool{}
	var post []*Block
	var dfs func(b *Block)
	dfs = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			dfs(s)
		}
		post = append(post, b)
	}
	entry := f.Entry()
	dfs(entry)
	rpo := make([]*Block, len(post))
	rpoNum := make(map[*Block]int, len(post))
	for i, b := range post {
		rpo[len(post)-1-i] = b
	}
	for i, b := range rpo {
		rpoNum[b] = i
	}
	idom := map[*Block]*Block{entry: entry}
	intersect := func(a, b *Block) *Block {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = idom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range rpo[1:] {
			var newIdom *Block
			for _, p := range b.Preds {
				if idom[p] == nil {
					continue // unreachable or not yet processed
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != nil && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}

func hasBlock(list []*Block, b *Block) bool {
	for _, x := range list {
		if x == b {
			return true
		}
	}
	return false
}
