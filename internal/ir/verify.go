package ir

import "fmt"

// Verify checks structural invariants of a module: every block ends in
// exactly one terminator, successor/predecessor edges are symmetric, phi
// arity matches predecessors, arguments belong to the same function, and
// parameter/return counts are consistent at call sites.
func Verify(m *Module) error {
	for _, f := range m.Funcs {
		if err := verifyFunc(f); err != nil {
			return fmt.Errorf("ir: func %s: %w", f.Name, err)
		}
	}
	return nil
}

func verifyFunc(f *Func) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("no blocks")
	}
	owned := map[*Value]bool{}
	for _, p := range f.Params {
		if p.Op != OpParam {
			return fmt.Errorf("param %s has op %s", p, p.Op)
		}
		owned[p] = true
	}
	for _, b := range f.Blocks {
		for _, v := range b.Phis {
			owned[v] = true
		}
		for _, v := range b.Insts {
			owned[v] = true
		}
	}
	for _, b := range f.Blocks {
		if b.Func != f {
			return fmt.Errorf("block b%d has wrong func", b.ID)
		}
		t := b.Term()
		if t == nil {
			return fmt.Errorf("block b%d lacks a terminator", b.ID)
		}
		for i, v := range b.Insts {
			if v.Op.IsTerm() && i != len(b.Insts)-1 {
				return fmt.Errorf("block b%d: terminator %s mid-block", b.ID, v)
			}
			if v.Block != b {
				return fmt.Errorf("block b%d: %s has wrong block", b.ID, v)
			}
		}
		switch t.Op {
		case OpJmp:
			if len(b.Succs) != 1 {
				return fmt.Errorf("block b%d: jmp with %d succs", b.ID, len(b.Succs))
			}
		case OpBr:
			if len(b.Succs) != 2 {
				return fmt.Errorf("block b%d: br with %d succs", b.ID, len(b.Succs))
			}
			if len(t.Args) != 1 {
				return fmt.Errorf("block b%d: br with %d args", b.ID, len(t.Args))
			}
		case OpSwitch:
			if len(b.Succs) != len(t.Cases)+1 {
				return fmt.Errorf("block b%d: switch with %d cases but %d succs",
					b.ID, len(t.Cases), len(b.Succs))
			}
		case OpRet:
			if len(t.Args) != f.NumRet {
				return fmt.Errorf("block b%d: ret with %d values, func returns %d",
					b.ID, len(t.Args), f.NumRet)
			}
			if len(b.Succs) != 0 {
				return fmt.Errorf("block b%d: ret with successors", b.ID)
			}
		case OpTrap:
			if len(b.Succs) != 0 {
				return fmt.Errorf("block b%d: trap with successors", b.ID)
			}
		}
		for _, s := range b.Succs {
			if !hasBlock(s.Preds, b) {
				return fmt.Errorf("edge b%d->b%d missing pred backlink", b.ID, s.ID)
			}
		}
		for _, p := range b.Preds {
			if !hasBlock(p.Succs, b) {
				return fmt.Errorf("edge b%d<-b%d missing succ link", b.ID, p.ID)
			}
		}
		for _, v := range b.Phis {
			if v.Op != OpPhi {
				return fmt.Errorf("block b%d: non-phi %s in phi list", b.ID, v)
			}
			if len(v.Args) != len(b.Preds) {
				return fmt.Errorf("block b%d: phi %s has %d args for %d preds",
					b.ID, v, len(v.Args), len(b.Preds))
			}
		}
		check := func(v *Value) error {
			for _, a := range v.Args {
				if a == nil {
					return fmt.Errorf("block b%d: %s(%s) has nil arg", b.ID, v, v.Op)
				}
				if !owned[a] {
					return fmt.Errorf("block b%d: %s(%s) uses foreign value %s(%s)",
						b.ID, v, v.Op, a, a.Op)
				}
			}
			switch v.Op {
			case OpCall:
				if v.Callee == nil {
					return fmt.Errorf("call %s without callee", v)
				}
				if len(v.Args) != len(v.Callee.Params) {
					return fmt.Errorf("call %s to %s with %d args, want %d",
						v, v.Callee.Name, len(v.Args), len(v.Callee.Params))
				}
				if v.NumRet != v.Callee.NumRet {
					return fmt.Errorf("call %s: NumRet %d != callee %d",
						v, v.NumRet, v.Callee.NumRet)
				}
			case OpExtract:
				if len(v.Args) != 1 {
					return fmt.Errorf("extract %s arity", v)
				}
				if v.Idx >= v.Args[0].NumRet {
					return fmt.Errorf("extract %s index %d out of %d", v, v.Idx, v.Args[0].NumRet)
				}
			case OpLoad:
				if len(v.Args) != 1 {
					return fmt.Errorf("load %s arity", v)
				}
			case OpStore:
				if len(v.Args) != 2 {
					return fmt.Errorf("store %s arity", v)
				}
			}
			return nil
		}
		for _, v := range b.Phis {
			if err := check(v); err != nil {
				return err
			}
		}
		for _, v := range b.Insts {
			if err := check(v); err != nil {
				return err
			}
		}
	}
	return nil
}

func hasBlock(list []*Block, b *Block) bool {
	for _, x := range list {
		if x == b {
			return true
		}
	}
	return false
}
