package funcrec

import (
	"testing"

	"wytiwyg/internal/asm"
	"wytiwyg/internal/machine"
	"wytiwyg/internal/minicc/gen"
	"wytiwyg/internal/obj"
	"wytiwyg/internal/tracer"
)

func traceSrc(t *testing.T, src string, prof gen.Profile, inputs []machine.Input) (*tracer.CFG, *Result) {
	t.Helper()
	img, err := gen.Build(src, prof, "t")
	if err != nil {
		t.Fatal(err)
	}
	tr := tracer.New(img)
	if len(inputs) == 0 {
		inputs = []machine.Input{{}}
	}
	if err := tr.RunAll(inputs, nil); err != nil {
		t.Fatal(err)
	}
	cfg, err := tr.BuildCFG()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return cfg, res
}

func TestRecoverSimpleCalls(t *testing.T) {
	src := `
int add(int a, int b) { return a + b; }
int mul(int a, int b) { return a * b; }
int main() { return add(mul(2, 3), 4); }
`
	_, res := traceSrc(t, src, gen.GCC12O3, nil)
	for _, name := range []string{"_start", "main", "add", "mul"} {
		found := false
		for _, f := range res.Funcs {
			if f.Name == name {
				found = true
			}
		}
		if !found {
			t.Errorf("function %s not recovered", name)
		}
	}
}

func TestRecoverAgainstSymbols(t *testing.T) {
	src := `
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int helper(int x) { return x * 3; }
int main() { return fib(8) + helper(2); }
`
	for _, prof := range gen.Profiles {
		_, res := traceSrc(t, src, prof, nil)
		// Every executed symbol must be an entry (no tail-call-only
		// functions in this program).
		for _, f := range res.Funcs {
			if f.Name == "" {
				t.Errorf("%s: unnamed function at %#x", prof.Name, f.Entry)
			}
		}
		if len(res.Funcs) != 4 {
			t.Errorf("%s: recovered %d functions, want 4", prof.Name, len(res.Funcs))
		}
	}
}

func TestBodiesDisjoint(t *testing.T) {
	src := `
int f(int x) {
	int i, s = 0;
	for (i = 0; i < x; i++) s += i;
	return s;
}
int g(int x) { if (x > 2) return f(x); return x; }
int main() { return g(5) + g(1) + f(3); }
`
	cfg, res := traceSrc(t, src, gen.GCC12O3, nil)
	seen := map[uint32]string{}
	for _, f := range res.Funcs {
		for _, b := range f.Blocks {
			if prev, dup := seen[b]; dup {
				t.Errorf("block %#x owned by both %s and %s", b, prev, f.Name)
			}
			seen[b] = f.Name
		}
	}
	// Every executed block is owned by exactly one function.
	for a := range cfg.Blocks {
		if res.Owner[a] == nil {
			t.Errorf("block %#x has no owner", a)
		}
	}
}

// Tail calls: at O3, `return g(...)` with matching arity lowers to a jump.
// Function recovery must classify those jumps as tail calls, keeping f and
// g separate functions (both also have regular call sites).
func TestTailCallClassification(t *testing.T) {
	src := `
int sink(int n) { return n + 1; }
int hop(int n) { return sink(n * 2); }
int main() { return hop(10) + sink(3); }
`
	cfg, res := traceSrc(t, src, gen.GCC12O3, nil)
	if len(res.TailCalls) == 0 {
		t.Fatal("no tail calls identified (codegen should have emitted one)")
	}
	var names []string
	for _, f := range res.Funcs {
		names = append(names, f.Name)
	}
	for _, want := range []string{"sink", "hop", "main"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("%s missing; recovered %v", want, names)
		}
	}
	// The tail-call site must be owned by hop and must be flagged in the
	// CFG for the lifter.
	for site := range res.TailCalls {
		if !cfg.TailJumps[site] {
			t.Errorf("tail call at %#x not propagated to CFG", site)
		}
	}
}

// A function reached ONLY through a single tail call merges into its caller.
func TestSingleTailCallMerged(t *testing.T) {
	src := `
int helper2(int n) { return n * 7; }
int outer(int n) { return helper2(n + 1); }
int main() { return outer(5); }
`
	_, res := traceSrc(t, src, gen.GCC12O3, nil)
	// helper2 is only ever tail-called from outer (exactly one site), so it
	// may legitimately be merged into outer — but only if outer's body now
	// owns helper2's blocks. Either outcome (separate function or merged)
	// is sound; merged must keep block ownership.
	img, _ := gen.Build(src, gen.GCC12O3, "t")
	addr, ok := img.SymAddr("helper2")
	if !ok {
		t.Fatal("no symbol for helper2")
	}
	owner := res.Owner[addr]
	if owner == nil {
		t.Fatalf("helper2's entry block unowned")
	}
	if owner.Name != "helper2" && owner.Name != "outer" {
		t.Errorf("helper2 owned by %s", owner.Name)
	}
}

// Shared code reached by jumps from two different functions must be split
// into its own function (the multi-entry case of §5.1).
func TestSharedBlockSplit(t *testing.T) {
	// Hand-written assembly: f1 and f2 both jump into `shared`.
	asmSrc := `
main:
    pushi 3
    call f1
    addi esp, 4
    push eax
    call f2
    addi esp, 4
    halt
f1:
    load4 eax, [esp+4]
    addi eax, 10
    jmp shared
f2:
    load4 eax, [esp+4]
    addi eax, 20
    jmp shared
shared:
    muli eax, 2
    ret
`
	img, err := asmAssemble(asmSrc)
	if err != nil {
		t.Fatal(err)
	}
	tr := tracer.New(img)
	if _, err := tr.Run(machine.Input{}, nil); err != nil {
		t.Fatal(err)
	}
	cfg, err := tr.BuildCFG()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sharedAddr, _ := img.SymAddr("shared")
	owner := res.Owner[sharedAddr]
	if owner == nil {
		t.Fatal("shared block unowned")
	}
	if owner.Entry != sharedAddr {
		t.Errorf("shared block not split into its own function (owner %s@%#x)",
			owner.Name, owner.Entry)
	}
	// Both jumps into shared must be tail calls now.
	f1, _ := img.SymAddr("f1")
	f2, _ := img.SymAddr("f2")
	if res.Owner[f1] == res.Owner[sharedAddr] || res.Owner[f2] == res.Owner[sharedAddr] {
		t.Error("shared body still merged with a caller")
	}
}

func asmAssemble(src string) (*obj.Image, error) {
	return asm.Assemble("t", src, "")
}
