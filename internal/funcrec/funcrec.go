// Package funcrec recovers function boundaries from a dynamic CFG, following
// §5.1 of the paper (a Nucleus-style analysis adapted to traced control
// flow): call targets become function entries, jumps to entries are tail
// calls, bodies are computed by intra-procedural reachability, blocks shared
// by several functions are split into their own single-entry functions, and
// functions reachable only through one tail call merge into their caller
// (which falls out naturally: such blocks are reachable from a single entry
// and are never split).
package funcrec

import (
	"fmt"
	"sort"

	"wytiwyg/internal/isa"
	"wytiwyg/internal/tracer"
)

// Function is one recovered function.
type Function struct {
	Name  string // recovered (or symbol-table) name
	Entry uint32 // entry address
	// Blocks lists the block start addresses belonging to the body,
	// sorted, entry first.
	Blocks []uint32
}

// Result is the outcome of function recovery.
type Result struct {
	Funcs []*Function // recovered functions, in entry-address order
	// ByEntry indexes functions by entry address.
	ByEntry map[uint32]*Function
	// Owner maps each block start to its (single) owning function.
	Owner map[uint32]*Function
	// TailCalls marks jump-site addresses reclassified as tail calls,
	// with their observed targets (function entries).
	TailCalls map[uint32]bool
}

// Recover computes function boundaries over the CFG. It also fills in
// cfg.TailJumps for the lifter.
func Recover(cfg *tracer.CFG) (*Result, error) {
	t := cfg.Trace
	entries := map[uint32]bool{t.Img.Entry: true}
	for _, s := range t.CallTargets {
		for to := range s {
			entries[to] = true
		}
	}

	// Fixpoint: classify tail calls against the current entry set, compute
	// bodies, split shared blocks into new entries.
	tail := map[uint32]bool{}
	var bodies map[uint32]map[uint32]bool
	for iter := 0; ; iter++ {
		if iter > len(cfg.Blocks)+8 {
			return nil, fmt.Errorf("funcrec: split fixpoint did not converge")
		}
		// A jump edge whose target is an entry of a *different* function is
		// a tail call. Self-loops back to the owning entry stay.
		tail = map[uint32]bool{}
		for _, blk := range cfg.Blocks {
			in, err := t.Img.InstrAt(blk.End)
			if err != nil {
				return nil, err
			}
			if in.Op != isa.JMP && in.Op != isa.JMPR {
				continue
			}
			anyEntry := false
			for _, s := range blk.Succs {
				if entries[s] {
					anyEntry = true
				}
			}
			if anyEntry {
				tail[blk.End] = true
			}
		}
		// Bodies: reachability from each entry, not crossing into other
		// entries and not following tail-call edges.
		bodies = make(map[uint32]map[uint32]bool, len(entries))
		for e := range entries {
			if _, ok := cfg.Blocks[e]; !ok {
				continue
			}
			body := map[uint32]bool{}
			stack := []uint32{e}
			for len(stack) > 0 {
				a := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if body[a] {
					continue
				}
				if a != e && entries[a] {
					continue // another function starts here
				}
				body[a] = true
				blk := cfg.Blocks[a]
				if blk == nil {
					continue
				}
				if tail[blk.End] {
					continue // tail-call edges leave the function
				}
				for _, s := range blk.Succs {
					stack = append(stack, s)
				}
			}
			bodies[e] = body
		}
		// Membership counts.
		count := map[uint32]int{}
		for _, body := range bodies {
			for a := range body {
				count[a]++
			}
		}
		// Predecessor map over intra-procedural edges.
		preds := map[uint32][]uint32{}
		for _, blk := range cfg.Blocks {
			if tail[blk.End] {
				continue
			}
			for _, s := range blk.Succs {
				preds[s] = append(preds[s], blk.Start)
			}
		}
		// Split rule: a block contained in more functions than any of its
		// predecessors becomes an entry.
		changed := false
		for a, c := range count {
			if c < 2 || entries[a] {
				continue
			}
			maxPred := 0
			for _, p := range preds[a] {
				if count[p] > maxPred {
					maxPred = count[p]
				}
			}
			if c > maxPred {
				entries[a] = true
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	res := &Result{
		ByEntry:   make(map[uint32]*Function),
		Owner:     make(map[uint32]*Function),
		TailCalls: tail,
	}
	var entryList []uint32
	for e := range entries {
		if _, ok := cfg.Blocks[e]; ok {
			entryList = append(entryList, e)
		}
	}
	sort.Slice(entryList, func(i, j int) bool { return entryList[i] < entryList[j] })
	for _, e := range entryList {
		fn := &Function{Entry: e, Name: nameFor(t, e)}
		var blocks []uint32
		for a := range bodies[e] {
			blocks = append(blocks, a)
		}
		sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
		// Entry first.
		for i, a := range blocks {
			if a == e && i != 0 {
				copy(blocks[1:i+1], blocks[:i])
				blocks[0] = e
				break
			}
		}
		fn.Blocks = blocks
		res.Funcs = append(res.Funcs, fn)
		res.ByEntry[e] = fn
		for _, a := range blocks {
			res.Owner[a] = fn
		}
	}
	for site := range tail {
		cfg.TailJumps[site] = true
	}
	if err := res.crossCheck(t); err != nil {
		return nil, err
	}
	return res, nil
}

func nameFor(t *tracer.Trace, entry uint32) string {
	if n, ok := t.Img.SymName(entry); ok {
		return n
	}
	return fmt.Sprintf("fn_%x", entry)
}

// crossCheck validates recovered entries against the symbol table when one
// is available, as the paper does ("we verified our results by
// cross-referencing all detected functions with the binary's symbol table
// ... and did not encounter any false positives"). A recovered entry that
// falls strictly inside a symbol's presumed body is fine (tail-call split);
// a symbol whose address was executed but not recovered as an entry is
// reported.
func (r *Result) crossCheck(t *tracer.Trace) error {
	for _, s := range t.Img.Syms {
		if !t.Executed[s.Addr] {
			continue
		}
		if _, ok := r.ByEntry[s.Addr]; ok {
			continue
		}
		// The symbol executed but is not an entry: acceptable only if it
		// was merged into a caller (single tail call); it must then be
		// owned by some function.
		if r.Owner[s.Addr] == nil {
			return fmt.Errorf("funcrec: executed symbol %s@0x%x recovered as neither entry nor body",
				s.Name, s.Addr)
		}
	}
	return nil
}
