package vsa

import (
	"sort"

	"wytiwyg/internal/ir"
	"wytiwyg/internal/layout"
)

// Coverage backstop: dynamic recovery splits the frame exactly as traced,
// so objects whose elements were never all touched come out split — sound
// for the traced inputs, fragile beyond them. The backstop widens the
// recovered layout until every statically possible access fits inside one
// object: bounded cross-slot offset sets merge the spanned slots, while an
// access whose target the analysis cannot bound — unbounded frame offsets,
// or a fully unknown address that may point anywhere including the frame —
// collapses the local area into a single conservative symbol, exactly the
// static symbolizer's blob response to dynamic stack addressing. The
// result trades exact matches for guaranteed coverage and is reported
// alongside the dynamic layout's precision/recall in examples/accuracy.

// BackstopStats summarizes one frame's widening.
type BackstopStats struct {
	// Merged counts slots that were absorbed into a wider object.
	Merged int
	// Blobbed reports that an unbounded access collapsed the local area.
	Blobbed bool
}

// Backstop returns a copy of the recovered frame widened so that no
// statically possible frame access crosses an object boundary. The input
// frame is not modified; positive-offset (argument) slots never merge.
func Backstop(fr *FuncResult, frame *layout.Frame) (*layout.Frame, BackstopStats) {
	var st BackstopStats
	if frame == nil || len(frame.Vars) == 0 {
		return frame, st
	}
	frameLo := int32(0)
	for _, v := range frame.Vars {
		if v.Offset < frameLo {
			frameLo = v.Offset
		}
	}
	// Collect the sp0-relative byte ranges accesses may reach beyond their
	// slot, clamped to the local area [frameLo, 0).
	type span struct{ lo, hi int32 }
	var spans []span
	f := fr.Fn()
	for _, b := range f.Blocks {
		for _, v := range b.Insts {
			if v.Op != ir.OpLoad && v.Op != ir.OpStore {
				continue
			}
			addr := fr.ValueSetOf(v.Args[0])
			if addr.IsTop() {
				// The access may target any byte of the frame.
				st.Blobbed = true
				spans = append(spans, span{frameLo, 0})
				continue
			}
			size := accSize(v)
			for r, offs := range addr.parts {
				if r.Kind != RegFrame {
					continue // numeric and heap targets are off-frame
				}
				base := r.Base
				if offs.Lo >= 0 && offs.Hi+size <= int64(base.AllocSize) {
					continue // proven inside its slot
				}
				lo, hi := int64(frameLo), int64(0)
				if !offs.unbounded() {
					lo = max64(lo, int64(base.Const)+offs.Lo)
					hi = min64(hi, int64(base.Const)+offs.Hi+size)
				} else {
					st.Blobbed = true
				}
				if lo < hi {
					spans = append(spans, span{int32(lo), int32(hi)})
				}
			}
		}
	}
	if len(spans) == 0 {
		return frame, st
	}
	// Widen: recovered slots and access spans merge transitively — every
	// maximal chain of byte-overlapping intervals becomes one object — so
	// a span reaching past an already-widened object keeps growing it and
	// the postcondition (no span crosses an output object boundary) holds
	// after a single sweep. Argument slots pass through untouched; a chain
	// holding only spans names no recovered storage and is dropped.
	out := &layout.Frame{Func: frame.Func}
	type iv struct {
		lo, hi int32
		name   string // lowest-offset slot in the chain; "" for spans
		slots  int
	}
	items := make([]iv, 0, len(frame.Vars)+len(spans))
	for _, v := range frame.Vars {
		if v.Offset >= 0 {
			out.Vars = append(out.Vars, v)
		} else {
			items = append(items, iv{v.Offset, v.End(), v.Name, 1})
		}
	}
	for _, sp := range spans {
		items = append(items, iv{sp.lo, sp.hi, "", 0})
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].lo != items[j].lo {
			return items[i].lo < items[j].lo
		}
		return items[i].slots > items[j].slots // slots first: they name the chain
	})
	emit := func(c iv) {
		if c.slots == 0 {
			return // span chain touched no recovered slot
		}
		st.Merged += c.slots - 1 // n slots merging yields one object
		out.Vars = append(out.Vars, layout.Var{Name: c.name, Offset: c.lo, Size: uint32(c.hi - c.lo)})
	}
	cur, open := iv{}, false
	for _, it := range items {
		if open && it.lo < cur.hi {
			if it.hi > cur.hi {
				cur.hi = it.hi
			}
			if cur.name == "" {
				cur.name = it.name
			}
			cur.slots += it.slots
			continue
		}
		if open {
			emit(cur)
		}
		cur, open = it, true
	}
	if open {
		emit(cur)
	}
	out.Sort()
	return out, st
}

// unbounded reports whether the offset set escapes the signed 32-bit
// range — an infinity, or a wrapped congruence class spanning the
// unsigned window — in which case base+offset arithmetic on its bounds
// says nothing about where the access lands in the frame.
func (s SI) unbounded() bool {
	return s.Lo < -(1<<31) || s.Hi >= 1<<31
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
