package vsa

import (
	"sort"

	"wytiwyg/internal/analysis"
	"wytiwyg/internal/ir"
	"wytiwyg/internal/layout"
)

// Coverage backstop: dynamic recovery splits the frame exactly as traced,
// so objects whose elements were never all touched come out split — sound
// for the traced inputs, fragile beyond them. The backstop widens the
// recovered layout until every statically possible access fits inside one
// object: bounded cross-slot offset sets merge the spanned slots, while an
// access whose target the analysis cannot bound — unbounded frame offsets,
// or a fully unknown address that may point anywhere including the frame —
// collapses the local area into a single conservative symbol, exactly the
// static symbolizer's blob response to dynamic stack addressing. The
// result trades exact matches for guaranteed coverage and is reported
// alongside the dynamic layout's precision/recall in examples/accuracy.

// BackstopStats summarizes one frame's widening.
type BackstopStats struct {
	// Merged counts slots that were absorbed into a wider object.
	Merged int
	// Blobbed reports that an unbounded access collapsed the local area.
	Blobbed bool
}

// Backstop returns a copy of the recovered frame widened so that no
// statically possible frame access crosses an object boundary. The input
// frame is not modified; positive-offset (argument) slots never merge.
func Backstop(fr *FuncResult, frame *layout.Frame) (*layout.Frame, BackstopStats) {
	var st BackstopStats
	if frame == nil || len(frame.Vars) == 0 {
		return frame, st
	}
	frameLo := int32(0)
	for _, v := range frame.Vars {
		if v.Offset < frameLo {
			frameLo = v.Offset
		}
	}
	// Collect the sp0-relative byte ranges accesses may reach beyond their
	// slot, clamped to the local area [frameLo, 0).
	type span struct{ lo, hi int32 }
	var spans []span
	f := fr.Fn()
	for _, b := range f.Blocks {
		for _, v := range b.Insts {
			if v.Op != ir.OpLoad && v.Op != ir.OpStore {
				continue
			}
			addr := fr.ValueSetOf(v.Args[0])
			if addr.IsTop() {
				// The access may target any byte of the frame.
				st.Blobbed = true
				spans = append(spans, span{frameLo, 0})
				continue
			}
			size := accSize(v)
			for r, offs := range addr.parts {
				if r.Kind != RegFrame {
					continue // numeric and heap targets are off-frame
				}
				base := r.Base
				if offs.Lo >= 0 && offs.Hi+size <= int64(base.AllocSize) {
					continue // proven inside its slot
				}
				lo, hi := int64(frameLo), int64(0)
				if !offs.unbounded() {
					lo = max64(lo, int64(base.Const)+offs.Lo)
					hi = min64(hi, int64(base.Const)+offs.Hi+size)
				} else {
					st.Blobbed = true
				}
				if lo < hi {
					spans = append(spans, span{int32(lo), int32(hi)})
				}
			}
		}
	}
	if len(spans) == 0 {
		return frame, st
	}
	// Widen: each span merges every local slot it overlaps (plus the span's
	// own bytes) into one object; argument slots pass through untouched.
	out := &layout.Frame{Func: frame.Func}
	locals := make([]layout.Var, 0, len(frame.Vars))
	for _, v := range frame.Vars {
		if v.Offset >= 0 {
			out.Vars = append(out.Vars, v)
		} else {
			locals = append(locals, v)
		}
	}
	sort.Slice(locals, func(i, j int) bool { return locals[i].Offset < locals[j].Offset })
	merged := make([]bool, len(locals))
	for _, sp := range spans {
		cur := layout.Var{Name: "", Offset: sp.lo, Size: uint32(sp.hi - sp.lo)}
		for i, v := range locals {
			if merged[i] || !v.Overlaps(cur) {
				continue
			}
			if cur.Name == "" {
				cur.Name = v.Name
			}
			lo, hi := cur.Offset, cur.End()
			if v.Offset < lo {
				lo, cur.Name = v.Offset, v.Name
			}
			if v.End() > hi {
				hi = v.End()
			}
			cur.Offset, cur.Size = lo, uint32(hi-lo)
			merged[i] = true
			st.Merged++
		}
		if cur.Name == "" {
			continue // span touched no recovered slot
		}
		st.Merged-- // n slots merging yields one object: n-1 absorbed
		out.Vars = append(out.Vars, cur)
	}
	for i, v := range locals {
		if !merged[i] {
			out.Vars = append(out.Vars, v)
		}
	}
	out.Sort()
	// Coalesce overlapping widened objects (two spans can hit one slot).
	coalesced := out.Vars[:0]
	for _, v := range out.Vars {
		if n := len(coalesced); n > 0 && coalesced[n-1].Overlaps(v) {
			p := &coalesced[n-1]
			if v.End() > p.End() {
				p.Size = uint32(v.End() - p.Offset)
			}
			st.Merged++
			continue
		}
		coalesced = append(coalesced, v)
	}
	out.Vars = coalesced
	return out, st
}

// unbounded reports whether either end of the offset set is infinite.
func (s SI) unbounded() bool {
	return s.Lo <= analysis.NegInf || s.Hi >= analysis.PosInf
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
