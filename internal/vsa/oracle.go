package vsa

import "wytiwyg/internal/ir"

// Oracle answers alias queries about one function from its VSA fixpoint.
// Every answer is conservative: a query over values the analysis lost
// track of (or values from another function) never separates.
type Oracle struct {
	fr *FuncResult
}

// Oracle wraps the fixpoint in its query interface.
func (fr *FuncResult) Oracle() *Oracle { return &Oracle{fr: fr} }

// NewOracle analyzes f and returns its alias oracle.
func NewOracle(f *ir.Func) *Oracle { return Analyze(f).Oracle() }

// Result returns the underlying fixpoint.
func (o *Oracle) Result() *FuncResult { return o.fr }

// MustNotAlias reports whether a szA-byte access at address a is proven
// byte-disjoint from a szB-byte access at address b. false means "cannot
// prove", not "they alias".
func (o *Oracle) MustNotAlias(a *ir.Value, szA int64, b *ir.Value, szB int64) bool {
	if a == b {
		return false
	}
	return o.fr.ValueSetOf(a).DisjointAccess(szA, o.fr.ValueSetOf(b), szB)
}

// MayAlias reports whether the two accesses could overlap — the negation
// of MustNotAlias, provided for readable call sites.
func (o *Oracle) MayAlias(a *ir.Value, szA int64, b *ir.Value, szB int64) bool {
	return !o.MustNotAlias(a, szA, b, szB)
}

// PointsToFrameSlot reports whether p is proven to point at exactly one
// offset within one stack object, returning the alloca and the offset.
// This is the rewrite license for address resolution: p may replace
// alloca+off (and vice versa) wherever p is in scope.
func (o *Oracle) PointsToFrameSlot(p *ir.Value) (alloca *ir.Value, off int64, ok bool) {
	base, s, ok := o.fr.ValueSetOf(p).FramePart()
	if !ok {
		return nil, 0, false
	}
	off, exact := s.Exact()
	if !exact {
		return nil, 0, false
	}
	return base, off, true
}

// PointsToFrame reports whether p is proven to stay within one stack
// object, returning the alloca and the strided offset set.
func (o *Oracle) PointsToFrame(p *ir.Value) (alloca *ir.Value, offs SI, ok bool) {
	return o.fr.ValueSetOf(p).FramePart()
}

// InBounds reports whether a sz-byte access through p is proven to land
// entirely inside the object allocated by base: every address p can take
// is base+off with off in [0, base.AllocSize−sz]. This is the elision
// license codegen uses to drop a sanitizer bounds guard that checks p
// against exactly that object — the same in-slot proof the layout
// verifier (Check) accepts. false means "cannot prove"; wrapped or
// widened offset sets never qualify.
func (o *Oracle) InBounds(p *ir.Value, sz int64, base *ir.Value) bool {
	alloca, offs, ok := o.fr.ValueSetOf(p).FramePart()
	if !ok || alloca != base || offs.unbounded() {
		return false
	}
	return offs.Lo >= 0 && offs.Hi+sz <= int64(base.AllocSize)
}

// Stride is the proven shape of one frame address set, phrased in the
// facts clients (typerec's array/field inference) consume directly so
// they never re-derive them from raw SIs: every offset the address can
// take, relative to Base's start, is ≡ Phase (mod Step).
type Stride struct {
	// Base is the stack object every address stays inside.
	Base *ir.Value
	// Step is the congruence modulus between offsets; 0 means the single
	// exact offset Phase.
	Step int64
	// Phase is the offset residue: offsets ≡ Phase (mod Step) when
	// Step > 0, and the exact offset when Step == 0.
	Phase int64
	// Lo and Hi bound the offsets inclusively when Bounded is true.
	Lo, Hi int64
	// Bounded reports whether Lo and Hi are trustworthy. A wrapped or
	// saturated set has no usable extent and reports false — its
	// congruence is still exact (stride survives widening; bounds do
	// not).
	Bounded bool
}

// StrideOf reports the proven (stride, extent) shape of a frame access
// address: p must stay within exactly one stack object and its offset
// set must keep at least a congruence anchor. false means "cannot
// prove" — multi-region pointers and Top offset sets never qualify.
func (o *Oracle) StrideOf(p *ir.Value) (Stride, bool) {
	base, offs, ok := o.fr.ValueSetOf(p).FramePart()
	if !ok {
		return Stride{}, false
	}
	st, ok := StrideFacts(offs)
	if !ok {
		return Stride{}, false
	}
	st.Base = base
	return st, true
}

// StrideFacts reduces one strided offset set to the Stride facts (sans
// base object). Saturated sets with no exact bound — Top, or an interval
// that lost both anchors — report false; a wrapped congruence class
// keeps its exact Step/Phase but reports Bounded false.
func StrideFacts(s SI) (Stride, bool) {
	a, ok := s.anchor()
	if !ok {
		return Stride{}, false
	}
	var st Stride
	if s.Stride > 0 {
		st.Step = s.Stride
		st.Phase = mod(a, st.Step)
	} else {
		st.Phase = a
	}
	if !s.unbounded() {
		st.Bounded, st.Lo, st.Hi = true, s.Lo, s.Hi
	}
	return st, true
}

// MayTouchSlot reports whether a sz-byte access at address p may overlap
// the width-byte cell at offset off inside the given alloca. The
// optimizer's invalidation queries use this to keep forwarded values live
// across stores through unrelated pointers.
func (o *Oracle) MayTouchSlot(p *ir.Value, sz int64, alloca *ir.Value, off, width int64) bool {
	return !o.fr.ValueSetOf(p).DisjointAccess(sz, FrameVS(alloca, ConstSI(off)), width)
}
