package vsa

import (
	"wytiwyg/internal/analysis"
	"wytiwyg/internal/ir"
)

// Layout verifier: the static half of the paper's trust story. Dynamic
// recovery splits the frame exactly as the traces witnessed it, so
// incomplete coverage over-splits objects (paper §6's admitted blind
// spot). VSA proves, per access, the offset set actually reachable; an
// access that can cross its slot's boundary is the over-splitting
// signature (Warn), and an access whose every possible target lies
// outside the recovered frame is a miscompilation witness (Error).

// CheckStats summarizes one function's verified accesses.
type CheckStats struct {
	// Checked counts accesses resolved to a single stack object.
	Checked int
	// CrossSlot counts accesses that may cross their slot's boundary
	// while staying inside the frame (possible over-splitting, Warn).
	CrossSlot int
	// OutOfFrame counts accesses proven to miss the entire recovered
	// frame (Error).
	OutOfFrame int
	// Unbounded counts accesses whose offset set wrapped or widened to an
	// unbounded interval — nothing is provable about them either way.
	// Admission of statically recovered code treats these as failures.
	Unbounded int
}

// Check verifies f's recovered layout against the VSA fixpoint fr,
// appending "vsa" diagnostics to rep.
func Check(fr *FuncResult, rep *analysis.Report) CheckStats {
	f := fr.Fn()
	// The recovered frame extent, in sp0-relative offsets.
	frameLo, frameHi := int64(0), int64(0)
	for _, b := range f.Blocks {
		for _, v := range b.Insts {
			if v.Op != ir.OpAlloca {
				continue
			}
			if lo := int64(v.Const); lo < frameLo {
				frameLo = lo
			}
			if hi := int64(v.Const) + int64(v.AllocSize); hi > frameHi {
				frameHi = hi
			}
		}
	}
	var st CheckStats
	for _, b := range f.Blocks {
		for _, v := range b.Insts {
			if v.Op != ir.OpLoad && v.Op != ir.OpStore {
				continue
			}
			base, offs, ok := fr.ValueSetOf(v.Args[0]).FramePart()
			if !ok {
				continue
			}
			st.Checked++
			size := accSize(v)
			if offs.unbounded() {
				st.Unbounded++
				continue // unbounded or wrapped offsets prove nothing either way
			}
			slotSize := int64(base.AllocSize)
			if offs.Lo >= 0 && offs.Hi+size <= slotSize {
				continue // proven inside the slot
			}
			// sp0-relative extent of the access.
			accLo := int64(base.Const) + offs.Lo
			accHi := int64(base.Const) + offs.Hi + size
			if accHi <= frameLo || accLo >= frameHi {
				st.OutOfFrame++
				rep.Addf("vsa", analysis.Error, f.Name, v,
					"%s of %d byte(s) at %s%s is proven outside the recovered frame [%d,%d)",
					v.Op, size, slotName(base), offs, frameLo, frameHi)
				continue
			}
			st.CrossSlot++
			rep.Addf("vsa", analysis.Warn, f.Name, v,
				"%s of %d byte(s) at %s%s may cross the slot boundary [0,%d) — possible over-splitting from incomplete trace coverage",
				v.Op, size, slotName(base), offs, slotSize)
		}
	}
	return st
}

func slotName(a *ir.Value) string {
	if a.Name != "" {
		return a.Name
	}
	return a.String()
}
