package vsa

import (
	"testing"

	"wytiwyg/internal/ir"
)

// TestStrideFactsExact: a singleton offset is an exact fact — Step 0,
// Phase = the offset, bounded.
func TestStrideFactsExact(t *testing.T) {
	st, ok := StrideFacts(ConstSI(8))
	if !ok {
		t.Fatal("exact offset must produce facts")
	}
	want := Stride{Step: 0, Phase: 8, Lo: 8, Hi: 8, Bounded: true}
	if st != want {
		t.Errorf("StrideFacts({8}) = %+v, want %+v", st, want)
	}
}

// TestStrideFactsSpan: an in-window strided span keeps both its
// congruence and its extent.
func TestStrideFactsSpan(t *testing.T) {
	st, ok := StrideFacts(SpanSI(4, 36, 8))
	if !ok {
		t.Fatal("bounded span must produce facts")
	}
	want := Stride{Step: 8, Phase: 4, Lo: 4, Hi: 36, Bounded: true}
	if st != want {
		t.Errorf("StrideFacts(8[4,36]) = %+v, want %+v", st, want)
	}
}

// TestStrideFactsWrap: a set that left the 32-bit window wraps to its
// congruence class — the stride and residue survive, the extent does
// not.
func TestStrideFactsWrap(t *testing.T) {
	st, ok := StrideFacts(SpanSI(4, 1<<33, 8))
	if !ok {
		t.Fatal("wrapped congruence class must still produce its residue")
	}
	if st.Bounded {
		t.Errorf("wrapped set reported a trustworthy extent: %+v", st)
	}
	if st.Step != 8 || st.Phase != 4 {
		t.Errorf("wrapped facts = step %d phase %d, want step 8 phase 4", st.Step, st.Phase)
	}
}

// TestStrideFactsWrapNegativeAnchor: the residue of a negative anchor is
// taken mod the step (offsets −8, −4, 0, 4… are ≡ 0 mod 4).
func TestStrideFactsWrapNegativeAnchor(t *testing.T) {
	st, ok := StrideFacts(SpanSI(-8, 1<<33, 4))
	if !ok {
		t.Fatal("wrapped class with a negative anchor must produce facts")
	}
	if st.Bounded || st.Step != 4 || st.Phase != 0 {
		t.Errorf("facts = %+v, want unbounded step 4 phase 0", st)
	}
}

// TestStrideFactsWrapSingleton: a singleton that wrapped past 2^32 is
// still exactly one concrete word — norm folds it back into the window
// and the fact is exact again.
func TestStrideFactsWrapSingleton(t *testing.T) {
	st, ok := StrideFacts(SpanSI(1<<32+12, 1<<32+12, 0))
	if !ok {
		t.Fatal("wrapped singleton must produce facts")
	}
	want := Stride{Step: 0, Phase: 12, Lo: 12, Hi: 12, Bounded: true}
	if st != want {
		t.Errorf("StrideFacts({2^32+12}) = %+v, want %+v", st, want)
	}
}

// TestStrideFactsSaturated: fully saturated sets carry no anchor and
// must refuse — Top directly, and via MulConst overflow.
func TestStrideFactsSaturated(t *testing.T) {
	if _, ok := StrideFacts(TopSI); ok {
		t.Error("TopSI must not produce stride facts")
	}
	ovf := SpanSI(1, 1<<30, 1).MulConst(1 << 40) // int64 overflow → Top
	if _, ok := StrideFacts(ovf); ok {
		t.Errorf("overflowed product %v must not produce stride facts", ovf)
	}
}

// TestStrideOfLoop drives the oracle accessor end to end on the
// interleaved-field loop of TestOracleLoopStride: after widening, the
// two field streams keep exact congruences (phases 0 and 4 mod 8) with
// no trustworthy extent, while a direct exact access stays bounded.
func TestStrideOfLoop(t *testing.T) {
	_, f, entry := mkFunc("f")
	header := f.NewBlock(0)
	body := f.NewBlock(0)
	exit := f.NewBlock(0)
	edge(entry, header)
	edge(header, body)
	edge(header, exit)
	edge(body, header)

	a := alloca(f, entry, "a", 64, -64)
	i0 := konst(f, entry, 0)
	direct := f.NewValue(ir.OpAdd, a, konst(f, entry, 12))
	entry.Append(direct)
	entry.Append(f.NewValue(ir.OpStore, direct, konst(f, entry, 7)))
	entry.Append(f.NewValue(ir.OpJmp))

	phi := f.NewValue(ir.OpPhi, i0, nil)
	header.AddPhi(phi)
	cond := konst(f, header, 1)
	header.Append(f.NewValue(ir.OpBr, cond))

	addr0 := f.NewValue(ir.OpAdd, a, phi)
	body.Append(addr0)
	body.Append(f.NewValue(ir.OpStore, addr0, konst(f, body, 1)))
	addr1 := f.NewValue(ir.OpAdd, addr0, konst(f, body, 4))
	body.Append(addr1)
	body.Append(f.NewValue(ir.OpStore, addr1, konst(f, body, 2)))
	inext := f.NewValue(ir.OpAdd, phi, konst(f, body, 8))
	body.Append(inext)
	phi.Args[1] = inext
	body.Append(f.NewValue(ir.OpJmp))

	exit.Append(f.NewValue(ir.OpRet, konst(f, exit, 0)))

	o := NewOracle(f)
	st, ok := o.StrideOf(addr0)
	if !ok || st.Base != a {
		t.Fatalf("StrideOf(addr0) = %+v,%v; want base a", st, ok)
	}
	if st.Bounded || st.Step != 8 || st.Phase != 0 {
		t.Errorf("addr0 = %+v, want unbounded step 8 phase 0", st)
	}
	st1, ok := o.StrideOf(addr1)
	if !ok || st1.Step != 8 || st1.Phase != 4 || st1.Bounded {
		t.Errorf("addr1 = %+v,%v; want unbounded step 8 phase 4", st1, ok)
	}
	std, ok := o.StrideOf(direct)
	want := Stride{Base: a, Step: 0, Phase: 12, Lo: 12, Hi: 12, Bounded: true}
	if !ok || std != want {
		t.Errorf("StrideOf(direct) = %+v,%v; want %+v", std, ok, want)
	}
}
