// Package vsa implements a value-set analysis (VSA) over the lifted IR: an
// abstract interpretation that computes, for every SSA value and every
// abstract memory location, the set of values it may hold, represented as
// strided intervals partitioned by memory region (numeric/global, one
// region per stack object, and a heap summary).
//
// The analysis serves three consumers. The alias Oracle answers
// MayAlias/MustNotAlias/PointsToFrameSlot queries that let the optimizer
// promote and forward address-taken stack slots the syntactic escape
// analysis must give up on. The layout verifier (Check) flags recovered
// slots whose statically-proven access region crosses a slot boundary —
// the over-splitting signature of incomplete trace coverage — and accesses
// proven to land outside their frame. The coverage Backstop widens
// staticsym-style conservative frames with statically-proven access
// strides for functions the traces never reached.
//
// Soundness rests on the interpreter's memory map (see isa/layout.go and
// irexec.NativeStackTop): code, globals and the heap bump allocator live
// below the native-stack region that backs symbolized stack objects, and
// distinct allocas occupy disjoint storage within an activation. Every
// verdict is over-approximate: the analysis only separates two accesses
// when their value sets cannot overlap in any region.
package vsa
