package vsa

import (
	"fmt"
	"sort"
	"strings"

	"wytiwyg/internal/ir"
	"wytiwyg/internal/isa"
)

// RegionKind classifies the memory regions of the abstract address space.
type RegionKind uint8

// Region kinds. Num holds plain numbers and absolute addresses (globals,
// code, emulated stack); Frame is one symbolized stack object (a distinct
// region per alloca, so offsets are alloca-relative); Heap summarizes the
// bump-allocated heap.
const (
	RegNum RegionKind = iota
	RegFrame
	RegHeap
)

// Region identifies one memory region. For RegFrame, Base is the alloca
// whose storage the region denotes; it is nil otherwise.
type Region struct {
	Kind RegionKind // which region class
	Base *ir.Value  // the identifying alloca for RegFrame
}

func (r Region) String() string {
	switch r.Kind {
	case RegFrame:
		if r.Base.Name != "" {
			return "frame:" + r.Base.Name
		}
		return fmt.Sprintf("frame:%s", r.Base)
	case RegHeap:
		return "heap"
	}
	return "num"
}

// NumRegion is the numeric/global region.
var NumRegion = Region{Kind: RegNum}

// HeapRegion is the heap summary region.
var HeapRegion = Region{Kind: RegHeap}

// ValueSet is the abstract value of one SSA value or memory cell: per
// region, a strided interval of offsets (absolute values for RegNum,
// object-relative offsets for RegFrame, allocation-relative offsets for
// RegHeap). The zero ValueSet is bottom (the empty set); Top is the
// distinguished unconstrained element.
type ValueSet struct {
	top   bool
	parts map[Region]SI
}

// TopVS is the unconstrained value set.
var TopVS = ValueSet{top: true}

// BottomVS is the empty value set (the lattice bottom).
var BottomVS = ValueSet{}

// NumVS returns a value set holding the numeric strided interval s.
func NumVS(s SI) ValueSet { return ValueSet{parts: map[Region]SI{NumRegion: s}} }

// ConstVS returns the singleton numeric value set {c}.
func ConstVS(c int64) ValueSet { return NumVS(ConstSI(c)) }

// FrameVS returns the value set pointing at offset set s within alloca a.
func FrameVS(a *ir.Value, s SI) ValueSet {
	return ValueSet{parts: map[Region]SI{{Kind: RegFrame, Base: a}: s}}
}

// HeapVS returns the value set pointing into the heap summary at offsets s.
func HeapVS(s SI) ValueSet { return ValueSet{parts: map[Region]SI{HeapRegion: s}} }

// IsTop reports whether the set is unconstrained.
func (v ValueSet) IsTop() bool { return v.top }

// IsBottom reports whether the set is empty.
func (v ValueSet) IsBottom() bool { return !v.top && len(v.parts) == 0 }

// Part returns the strided interval of region r and whether it is present.
func (v ValueSet) Part(r Region) (SI, bool) {
	s, ok := v.parts[r]
	return s, ok
}

// NumPart returns the numeric component, or false if the set may hold
// non-numeric (pointer) values or is unbounded.
func (v ValueSet) NumPart() (SI, bool) {
	if v.top || len(v.parts) != 1 {
		return SI{}, false
	}
	s, ok := v.parts[NumRegion]
	return s, ok
}

// HeapPart returns the offset set into the heap summary, if the set
// points into the heap and nothing else.
func (v ValueSet) HeapPart() (SI, bool) {
	if v.top || len(v.parts) != 1 {
		return SI{}, false
	}
	s, ok := v.parts[HeapRegion]
	return s, ok
}

// HasPointerPart reports whether the set includes a frame or heap
// region — positive evidence that the value is (at least sometimes) a
// pointer. Top reports false: an unconstrained value carries no
// evidence either way.
func (v ValueSet) HasPointerPart() bool {
	for r := range v.parts {
		if r.Kind != RegNum {
			return true
		}
	}
	return false
}

// FramePart returns the single frame region and offsets, if the set points
// into exactly one stack object and nothing else.
func (v ValueSet) FramePart() (*ir.Value, SI, bool) {
	if v.top || len(v.parts) != 1 {
		return nil, SI{}, false
	}
	for r, s := range v.parts {
		if r.Kind == RegFrame {
			return r.Base, s, true
		}
	}
	return nil, SI{}, false
}

func (v ValueSet) String() string {
	if v.top {
		return "T"
	}
	if len(v.parts) == 0 {
		return "_|_"
	}
	keys := make([]Region, 0, len(v.parts))
	for r := range v.parts {
		keys = append(keys, r)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	var sb strings.Builder
	for i, r := range keys {
		if i > 0 {
			sb.WriteString(" + ")
		}
		fmt.Fprintf(&sb, "%s%s", r, v.parts[r])
	}
	return sb.String()
}

func (v ValueSet) clone() ValueSet {
	if v.top || len(v.parts) == 0 {
		return ValueSet{top: v.top}
	}
	m := make(map[Region]SI, len(v.parts))
	for r, s := range v.parts {
		m[r] = s
	}
	return ValueSet{parts: m}
}

// Eq reports semantic equality.
func (v ValueSet) Eq(o ValueSet) bool {
	if v.top != o.top || len(v.parts) != len(o.parts) {
		return false
	}
	for r, s := range v.parts {
		if os, ok := o.parts[r]; !ok || os != s {
			return false
		}
	}
	return true
}

// Join is the lattice join (set union, region-wise).
func (v ValueSet) Join(o ValueSet) ValueSet {
	if v.top || o.top {
		return TopVS
	}
	if len(o.parts) == 0 {
		return v
	}
	if len(v.parts) == 0 {
		return o
	}
	out := v.clone()
	for r, s := range o.parts {
		if cur, ok := out.parts[r]; ok {
			out.parts[r] = cur.Join(s)
		} else {
			out.parts[r] = s
		}
	}
	return out
}

// WidenFrom widens every region that grew since prev to infinite bounds
// (keeping strides); regions absent from prev are left as joined.
func (v ValueSet) WidenFrom(prev ValueSet) ValueSet {
	if v.top || prev.top {
		return v
	}
	out := v.clone()
	for r, s := range out.parts {
		if ps, ok := prev.parts[r]; ok && s != ps {
			out.parts[r] = s.WidenFrom(ps)
		}
	}
	return out
}

// Add is set addition. Adding two pointer sets has no model, so at most
// one operand may have non-numeric regions; the numeric offsets shift
// every region of the other operand.
func (v ValueSet) Add(o ValueSet) ValueSet {
	if v.top || o.top || v.IsBottom() || o.IsBottom() {
		return TopVS
	}
	num, ok := o.NumPart()
	if !ok {
		// Try the symmetric orientation.
		if num, ok = v.NumPart(); !ok {
			return TopVS
		}
		v = o
	}
	out := ValueSet{parts: make(map[Region]SI, len(v.parts))}
	for r, s := range v.parts {
		out.parts[r] = s.Add(num)
	}
	return out
}

// Sub is set subtraction. Supported shapes: anything minus a number, and
// pointer minus pointer within the same single region (a plain number).
func (v ValueSet) Sub(o ValueSet) ValueSet {
	if v.top || o.top || v.IsBottom() || o.IsBottom() {
		return TopVS
	}
	if num, ok := o.NumPart(); ok {
		out := ValueSet{parts: make(map[Region]SI, len(v.parts))}
		for r, s := range v.parts {
			out.parts[r] = s.Sub(num)
		}
		return out
	}
	if len(v.parts) == 1 && len(o.parts) == 1 {
		for r, s := range v.parts {
			if os, ok := o.parts[r]; ok {
				return NumVS(s.Sub(os))
			}
		}
	}
	return TopVS
}

// Neg negates a numeric set.
func (v ValueSet) Neg() ValueSet {
	if num, ok := v.NumPart(); ok {
		return NumVS(num.Neg())
	}
	return TopVS
}

// MulConst scales a numeric set by k.
func (v ValueSet) MulConst(k int64) ValueSet {
	if num, ok := v.NumPart(); ok {
		return NumVS(num.MulConst(k))
	}
	return TopVS
}

// regionsDisjoint reports whether two distinct regions are known to occupy
// disjoint storage. Distinct frame regions never overlap (symbolized
// allocas get disjoint native-stack storage within an activation, and the
// native stack pointer only descends across activations). The heap and the
// frames are separated by the memory map: the bump allocator grows up from
// isa.HeapBase, far below irexec's native-stack region. Numeric addresses
// are only separable from frames and the heap when they are proven to stay
// below isa.HeapBase (code and globals).
func regionsDisjoint(a Region, sa SI, szA int64, b Region, sb SI, szB int64) bool {
	if a.Kind == RegFrame && b.Kind == RegFrame {
		return a.Base != b.Base
	}
	if (a.Kind == RegFrame && b.Kind == RegHeap) || (a.Kind == RegHeap && b.Kind == RegFrame) {
		return true
	}
	// Num vs Frame or Num vs Heap: order the pair so a is the numeric side.
	if b.Kind == RegNum {
		a, sa, szA = b, sb, szB
	}
	if a.Kind != RegNum {
		return false
	}
	return sa.Lo >= 0 && sa.Hi+szA <= int64(isa.HeapBase)
}

// DisjointAccess reports whether a szA-byte access at any address in v is
// provably byte-disjoint from a szB-byte access at any address in o. Heap
// offsets are summary positions, not concrete addresses, so two heap
// components never separate.
func (v ValueSet) DisjointAccess(szA int64, o ValueSet, szB int64) bool {
	if v.top || o.top || v.IsBottom() || o.IsBottom() {
		return false
	}
	for ra, sa := range v.parts {
		for rb, sb := range o.parts {
			if ra == rb {
				if ra.Kind == RegHeap {
					return false // summary region: any two cells may coincide
				}
				if !sa.DisjointAccess(szA, sb, szB) {
					return false
				}
				continue
			}
			if !regionsDisjoint(ra, sa, szA, rb, sb, szB) {
				return false
			}
		}
	}
	return true
}
