package vsa

import (
	"fmt"

	"wytiwyg/internal/analysis"
)

// SI is a strided interval: the set {Lo + k·Stride | k ≥ 0} ∩ [Lo, Hi].
// Stride 0 means the singleton {Lo} (then Lo == Hi). The congruence is
// anchored at Lo, so a trustworthy stride requires a finite Lo. After
// norm, every set is either Top (both bounds at the analysis infinities)
// or lies entirely inside the 32-bit value window [−2^31, 2^32): a
// computation that leaves the window wraps, and norm replaces it with the
// full congruence class it can still claim (see norm).
type SI struct {
	Lo, Hi, Stride int64 // inclusive bounds and step of the represented set
}

// TopSI is the unconstrained strided interval.
var TopSI = SI{Lo: analysis.NegInf, Hi: analysis.PosInf, Stride: 1}

// ConstSI returns the singleton {c}.
func ConstSI(c int64) SI { return SI{Lo: c, Hi: c} }

// SpanSI returns the strided interval [lo, hi] with the given stride,
// normalized.
func SpanSI(lo, hi, stride int64) SI {
	return SI{Lo: lo, Hi: hi, Stride: stride}.norm()
}

// IsTop reports whether the set is unconstrained.
func (s SI) IsTop() bool { return s.Lo <= analysis.NegInf && s.Hi >= analysis.PosInf }

// Exact returns the single element of a singleton set.
func (s SI) Exact() (int64, bool) {
	if s.Lo == s.Hi {
		return s.Lo, true
	}
	return 0, false
}

func (s SI) String() string {
	if s.IsTop() {
		return "T"
	}
	iv := analysis.Span(s.Lo, s.Hi)
	if s.Stride > 1 {
		return fmt.Sprintf("%d%s", s.Stride, iv)
	}
	return iv.String()
}

// norm restores the representation invariants: Lo ≤ Hi, singletons have
// stride 0, a positive stride divides Hi−Lo, and the set lies inside the
// 32-bit value window [−2^31, 2^32). A bound beyond the window (or at an
// infinity) means the computation wrapped, and the set falls to wrap().
func (s SI) norm() SI {
	s.Lo, s.Hi = clamp(s.Lo), clamp(s.Hi)
	if s.Lo > s.Hi {
		// Callers never construct empty sets; treat as the singleton Lo.
		s.Hi = s.Lo
	}
	if s.Lo < -(1<<31) || s.Hi >= 1<<32 {
		return s.wrap()
	}
	if s.Lo == s.Hi {
		s.Stride = 0
		return s
	}
	if s.Stride <= 0 {
		s.Stride = 1
	}
	s.Hi = s.Lo + (s.Hi-s.Lo)/s.Stride*s.Stride
	return s
}

// wrap maps a set that left the 32-bit value window onto the full
// congruence class of its anchor modulo gcd(Stride, 2^32), spanning the
// unsigned window [0, 2^32). Runtime arithmetic wraps at 2^32, so the
// concrete words re-enter low memory and only residues modulo divisors
// of 2^32 survive; keeping an in-window bound would claim the wrapped
// values stop there, which is unsound — a half-open ray never survives
// norm (compare analysis.norm32, which goes to Top in the same
// situation; the congruence class is the strided refinement of that).
// With no exact bound left there is no anchor and the result is Top.
func (s SI) wrap() SI {
	a, ok := s.anchor()
	if !ok {
		return TopSI
	}
	st := s.Stride
	if s.Lo == s.Hi {
		st = 1 << 32 // a wrapped singleton is still exactly one word
	} else if st <= 0 {
		st = 1
	}
	g := gcd(st, 1<<32)
	r := mod(a, g)
	hi := r + (1<<32-1-r)/g*g
	if r == hi {
		return SI{Lo: r, Hi: r}
	}
	return SI{Lo: r, Hi: hi, Stride: g}
}

// anchor returns an exact element the congruence is anchored at (elements
// are ≡ anchor mod Stride): Lo when exact, else Hi. A bound at either
// analysis infinity is a saturation sentinel, not an element; sets with
// no exact bound have no anchor and report false.
func (s SI) anchor() (int64, bool) {
	if s.Lo > analysis.NegInf && s.Lo < analysis.PosInf {
		return s.Lo, true
	}
	if s.Hi < analysis.PosInf && s.Hi > analysis.NegInf {
		return s.Hi, true
	}
	return 0, false
}

func clamp(x int64) int64 {
	if x < analysis.NegInf {
		return analysis.NegInf
	}
	if x > analysis.PosInf {
		return analysis.PosInf
	}
	return x
}

func gcd(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// mod is the non-negative remainder of x mod m (m > 0).
func mod(x, m int64) int64 {
	r := x % m
	if r < 0 {
		r += m
	}
	return r
}

// Join is the lattice join: the smallest strided interval containing both
// sets. The joined stride is the gcd of both strides and of the anchor
// distance, preserving congruence when the operands agree on it.
func (s SI) Join(o SI) SI {
	stride := gcd(s.Stride, o.Stride)
	if sa, ok := s.anchor(); ok {
		if oa, ok := o.anchor(); ok {
			stride = gcd(stride, oa-sa)
		}
	}
	lo, hi := s.Lo, s.Hi
	if o.Lo < lo {
		lo = o.Lo
	}
	if o.Hi > hi {
		hi = o.Hi
	}
	return SI{Lo: lo, Hi: hi, Stride: stride}.norm()
}

// WidenFrom jumps any endpoint that grew since prev out of the value
// window, which norm resolves to the anchor's full congruence class:
// congruence is stable under loop iteration even when bounds are not,
// and it is what separates interleaved field streams.
func (s SI) WidenFrom(prev SI) SI {
	if s.Lo < prev.Lo {
		s.Lo = analysis.NegInf
	}
	if s.Hi > prev.Hi {
		s.Hi = analysis.PosInf
	}
	return s.norm()
}

// addOvf adds endpoints, saturating at the infinities.
func addOvf(a, b int64) int64 {
	if a <= analysis.NegInf || b <= analysis.NegInf {
		return analysis.NegInf
	}
	if a >= analysis.PosInf || b >= analysis.PosInf {
		return analysis.PosInf
	}
	return clamp(a + b)
}

// Add is set addition {x+y}; the result stride is the gcd of the operand
// strides (both congruences survive addition).
func (s SI) Add(o SI) SI {
	return SI{
		Lo:     addOvf(s.Lo, o.Lo),
		Hi:     addOvf(s.Hi, o.Hi),
		Stride: gcd(s.Stride, o.Stride),
	}.norm()
}

// Sub is set subtraction {x−y}.
func (s SI) Sub(o SI) SI {
	return SI{
		Lo:     addOvf(s.Lo, -o.Hi),
		Hi:     addOvf(s.Hi, -o.Lo),
		Stride: gcd(s.Stride, o.Stride),
	}.norm()
}

// Neg is set negation {−x}.
func (s SI) Neg() SI {
	return SI{Lo: addOvf(0, -s.Hi), Hi: addOvf(0, -s.Lo), Stride: s.Stride}.norm()
}

// MulConst is set scaling {k·x}: the stride scales with the elements.
func (s SI) MulConst(k int64) SI {
	if k == 0 {
		return ConstSI(0)
	}
	if s.IsTop() {
		return TopSI
	}
	lo, ovf1 := mulOvf(s.Lo, k)
	hi, ovf2 := mulOvf(s.Hi, k)
	st, ovf3 := mulOvf(s.Stride, k)
	if ovf1 || ovf2 || ovf3 || s.Lo <= analysis.NegInf || s.Hi >= analysis.PosInf {
		return TopSI
	}
	if k < 0 {
		lo, hi = hi, lo
	}
	if st < 0 {
		st = -st
	}
	return SI{Lo: lo, Hi: hi, Stride: st}.norm()
}

// mulOvf multiplies, reporting int64 overflow.
func mulOvf(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, false
	}
	r := a * b
	if r/b != a {
		return 0, true
	}
	return r, false
}

// Contains reports whether the set may contain the 32-bit word x
// denotes. Both window readings of the word are checked: a wrapped set
// spans the unsigned window, so the word written −16 lives there as
// 2^32−16.
func (s SI) Contains(x int64) bool {
	if s.contains(x) {
		return true
	}
	if x < 0 {
		return s.contains(x + 1<<32)
	}
	if x >= 1<<31 {
		return s.contains(x - 1<<32)
	}
	return false
}

func (s SI) contains(x int64) bool {
	if x < s.Lo || x > s.Hi {
		return false
	}
	if s.Stride <= 1 {
		return true
	}
	a, ok := s.anchor()
	if !ok {
		return true
	}
	return mod(x-a, s.Stride) == 0
}

// DisjointAccess reports whether every szA-byte access at an address in s
// is byte-disjoint from every szB-byte access at an address in o, under
// 32-bit wrapping address arithmetic. Two separations are tried: interval
// separation (the byte ranges cannot meet) and congruence separation
// (both sets lie on a lattice of modulus g, and the residue gap between
// them fits both access widths). Residues only survive the 2^32 wrap when
// g divides 2^32, so 2^32 is folded into the gcd — which also makes the
// singleton/singleton case an exact wrap-aware distance test.
func (s SI) DisjointAccess(szA int64, o SI, szB int64) bool {
	if szA <= 0 || szB <= 0 {
		return false
	}
	// A signed-negative element and an unsigned-high element of the 32-bit
	// window can denote the same concrete address (x and x+2^32); refuse
	// to separate such pairs.
	if (s.Lo < 0 && o.Hi+szB > 1<<31) || (o.Lo < 0 && s.Hi+szA > 1<<31) {
		return false
	}
	if s.Hi < analysis.PosInf && s.Hi+szA <= o.Lo {
		return true
	}
	if o.Hi < analysis.PosInf && o.Hi+szB <= s.Lo {
		return true
	}
	sa, okA := s.anchor()
	oa, okB := o.anchor()
	if !okA || !okB {
		return false
	}
	g := gcd(gcd(s.Stride, o.Stride), 1<<32)
	d := mod(oa-sa, g)
	return d >= szA && g-d >= szB
}
