package vsa

import (
	"testing"

	"wytiwyg/internal/analysis"
)

func TestSINorm(t *testing.T) {
	if s := SpanSI(3, 3, 7); s.Stride != 0 {
		t.Errorf("singleton stride = %d, want 0", s.Stride)
	}
	if s := SpanSI(0, 10, 4); s.Hi != 8 {
		t.Errorf("Hi not aligned down: %v", s)
	}
	// A set leaving the window wraps to the anchor's congruence class
	// over the unsigned window — never a ray keeping the in-window bound,
	// which would deny the wrapped values' re-entry into low memory.
	if s := SpanSI(-(1 << 33), 0, 1); s != (SI{Lo: 0, Hi: 1<<32 - 1, Stride: 1}) {
		t.Errorf("wrapped-below set = %v, want [0,2^32)", s)
	}
	if s := SpanSI(0, 1<<33, 1); s != (SI{Lo: 0, Hi: 1<<32 - 1, Stride: 1}) {
		t.Errorf("wrapped-above set = %v, want [0,2^32)", s)
	}
	if s := SpanSI(0x18000000, 1<<33, 4); s != (SI{Lo: 0, Hi: 1<<32 - 4, Stride: 4}) {
		t.Errorf("wrapped strided set = %v, want 4[0,2^32-4]", s)
	}
	if s := SpanSI(1<<33+4, 1<<33+4, 0); s != (SI{Lo: 4, Hi: 4}) {
		t.Errorf("wrapped singleton = %v, want {4}", s)
	}
	if s := (SI{Lo: analysis.NegInf, Hi: analysis.PosInf, Stride: 8}).norm(); !s.IsTop() || s.Stride != 1 {
		t.Errorf("anchorless set not Top: %v", s)
	}
}

func TestSIJoinStride(t *testing.T) {
	// {0} ⊔ {4} anchors a stride-4 lattice.
	j := ConstSI(0).Join(ConstSI(4))
	if j != (SI{Lo: 0, Hi: 4, Stride: 4}) {
		t.Errorf("{0} join {4} = %v, want 4[0,4]", j)
	}
	// {0,4,8} ⊔ {2}: the anchor distance collapses the stride to 2.
	j = SpanSI(0, 8, 4).Join(ConstSI(2))
	if j.Stride != 2 {
		t.Errorf("stride after misaligned join = %d, want 2", j.Stride)
	}
	// A widened set becomes its congruence class over the unsigned
	// window: stride and residue survive, bounds do not.
	w := SpanSI(0, 16, 8).Join(SpanSI(0, 24, 8)).WidenFrom(SpanSI(0, 16, 8))
	if w != (SI{Lo: 0, Hi: 1<<32 - 8, Stride: 8}) {
		t.Errorf("widen lost stride or residue: %v, want 8[0,2^32-8]", w)
	}
}

func TestSIDisjointAccess(t *testing.T) {
	cases := []struct {
		a    SI
		szA  int64
		b    SI
		szB  int64
		want bool
	}{
		// Interval separation.
		{ConstSI(0), 4, ConstSI(4), 4, true},
		{ConstSI(0), 4, ConstSI(2), 4, false},
		{SpanSI(0, 12, 4), 4, ConstSI(16), 4, true},
		// Congruence separation: interleaved stride-8 streams.
		{SpanSI(0, analysis.PosInf, 8), 4, SpanSI(4, analysis.PosInf, 8), 4, true},
		{SpanSI(0, analysis.PosInf, 8), 8, SpanSI(4, analysis.PosInf, 8), 4, false},
		{SpanSI(0, analysis.PosInf, 8), 4, SpanSI(2, analysis.PosInf, 8), 4, false},
		// Stride 12 is not a power of two: residues do not survive the
		// 2^32 wrap (gcd(12, 2^32) = 4), so 4-byte gaps cannot separate.
		{SpanSI(0, analysis.PosInf, 12), 4, SpanSI(6, analysis.PosInf, 12), 4, false},
		// ...but bounded stride-12 sets separate by plain congruence? No:
		// bounded sets with disjoint residues still use the folded gcd.
		// Interval separation still works when ranges cannot meet.
		{SpanSI(0, 24, 12), 4, SpanSI(28, 52, 12), 4, true},
		// Signed/unsigned window ambiguity: -16 and 2^32-16 are the same
		// 32-bit address.
		{ConstSI(-16), 4, ConstSI((1 << 32) - 16), 4, false},
		// Anchorless sets never separate by congruence.
		{TopSI, 4, ConstSI(0), 4, false},
	}
	for i, c := range cases {
		if got := c.a.DisjointAccess(c.szA, c.b, c.szB); got != c.want {
			t.Errorf("case %d: %v/%d vs %v/%d = %v, want %v",
				i, c.a, c.szA, c.b, c.szB, got, c.want)
		}
	}
	// Symmetry.
	a, b := SpanSI(0, analysis.PosInf, 8), SpanSI(4, analysis.PosInf, 8)
	if a.DisjointAccess(4, b, 4) != b.DisjointAccess(4, a, 4) {
		t.Error("DisjointAccess is not symmetric")
	}
}

// TestSIWrapNoFalseDisjoint pins the wrap soundness hole: base+zext(i)·4
// with unconstrained i wraps at 2^32 and its concrete addresses cover
// every 4-aligned word — low globals included — so interval separation
// from low memory must fail; only the congruence may still separate.
func TestSIWrapNoFalseDisjoint(t *testing.T) {
	idx4 := SpanSI(0, 1<<32-1, 1).MulConst(4)
	ptr := idx4.Add(ConstSI(0x18000000))
	if ptr.DisjointAccess(4, ConstSI(0x1000), 4) {
		t.Fatalf("wrapped %v claimed disjoint from a low 4-aligned global", ptr)
	}
	// The residue that survives the wrap still separates: stride 8
	// accesses at residue 0 never touch a 4-byte cell at residue 4.
	idx8 := SpanSI(0, 1<<32-1, 1).MulConst(8)
	ptr8 := idx8.Add(ConstSI(0x18000000))
	if !ptr8.DisjointAccess(4, ConstSI(0x1004), 4) {
		t.Fatalf("wrapped %v lost its congruence vs residue-4 cell", ptr8)
	}
}

// TestSIDisjointSound enumerates small concrete sets and verifies every
// "disjoint" verdict against brute-force byte overlap under 32-bit
// wrapping addresses.
func TestSIDisjointSound(t *testing.T) {
	type set struct {
		si    SI
		elems []int64
	}
	var sets []set
	for _, lo := range []int64{-8, -2, 0, 1, 4, 6} {
		for _, stride := range []int64{1, 2, 3, 4, 8} {
			for _, n := range []int64{1, 3, 5} {
				hi := lo + stride*(n-1)
				si := SpanSI(lo, hi, stride)
				var elems []int64
				for x := lo; x <= hi; x += stride {
					elems = append(elems, x)
				}
				sets = append(sets, set{si, elems})
			}
		}
	}
	bytes := func(x, sz int64) map[uint32]bool {
		out := map[uint32]bool{}
		for i := int64(0); i < sz; i++ {
			out[uint32(x+i)] = true
		}
		return out
	}
	for _, sa := range sets {
		for _, sb := range sets {
			for _, szA := range []int64{1, 4} {
				for _, szB := range []int64{1, 4} {
					if !sa.si.DisjointAccess(szA, sb.si, szB) {
						continue
					}
					for _, x := range sa.elems {
						xa := bytes(x, szA)
						for _, y := range sb.elems {
							for by := range bytes(y, szB) {
								if xa[by] {
									t.Fatalf("unsound: %v/%d vs %v/%d separated, but %d and %d overlap",
										sa.si, szA, sb.si, szB, x, y)
								}
							}
						}
					}
				}
			}
		}
	}
}

// TestSIOpsSound verifies Join/Add/Sub containment on sampled sets.
func TestSIOpsSound(t *testing.T) {
	mk := func(lo, stride, n int64) (SI, []int64) {
		hi := lo + stride*(n-1)
		var elems []int64
		for x := lo; x <= hi; x += stride {
			elems = append(elems, x)
		}
		return SpanSI(lo, hi, stride), elems
	}
	var sis []SI
	var elems [][]int64
	for _, lo := range []int64{-6, 0, 5} {
		for _, stride := range []int64{1, 3, 4} {
			s, e := mk(lo, stride, 4)
			sis = append(sis, s)
			elems = append(elems, e)
		}
	}
	for i, a := range sis {
		for j, b := range sis {
			join := a.Join(b)
			add := a.Add(b)
			sub := a.Sub(b)
			for _, x := range elems[i] {
				if !join.Contains(x) {
					t.Fatalf("join %v of %v,%v misses %d", join, a, b, x)
				}
				for _, y := range elems[j] {
					if !add.Contains(x + y) {
						t.Fatalf("add %v of %v,%v misses %d", add, a, b, x+y)
					}
					if !sub.Contains(x - y) {
						t.Fatalf("sub %v of %v,%v misses %d", sub, a, b, x-y)
					}
				}
			}
			for _, y := range elems[j] {
				if !join.Contains(y) {
					t.Fatalf("join %v of %v,%v misses %d", join, a, b, y)
				}
			}
		}
	}
	// MulConst containment and overflow behavior.
	s, e := mk(-4, 4, 4)
	for _, k := range []int64{-3, 0, 2, 8} {
		m := s.MulConst(k)
		for _, x := range e {
			if !m.Contains(x * k) {
				t.Fatalf("mulconst %v of %v by %d misses %d", m, s, k, x*k)
			}
		}
	}
	if got := ConstSI(1 << 39).MulConst(1 << 39); !got.IsTop() {
		t.Errorf("overflowing MulConst = %v, want Top", got)
	}
}
