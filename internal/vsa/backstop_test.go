package vsa

import (
	"testing"

	"wytiwyg/internal/ir"
	"wytiwyg/internal/layout"
)

// A bounded cross-slot access (offset {0,4} into a 4-byte slot) must merge
// exactly the two slots it spans, and nothing else.
func TestBackstopMergesSpannedSlots(t *testing.T) {
	_, f, entry := mkFunc("f")
	b1 := f.NewBlock(0)
	b2 := f.NewBlock(0)
	join := f.NewBlock(0)
	edge(entry, b1)
	edge(entry, b2)
	edge(b1, join)
	edge(b2, join)

	x := alloca(f, entry, "x", 4, -8)
	alloca(f, entry, "y", 4, -4)
	alloca(f, entry, "z", 4, -12)
	k0 := konst(f, entry, 0)
	k4 := konst(f, entry, 4)
	cond := konst(f, entry, 1)
	entry.Append(f.NewValue(ir.OpBr, cond))
	b1.Append(f.NewValue(ir.OpJmp))
	b2.Append(f.NewValue(ir.OpJmp))

	idx := f.NewValue(ir.OpPhi, k0, k4)
	join.AddPhi(idx)
	addr := f.NewValue(ir.OpAdd, x, idx)
	join.Append(addr)
	join.Append(f.NewValue(ir.OpStore, addr, konst(f, join, 1)))
	join.Append(f.NewValue(ir.OpRet, konst(f, join, 0)))

	frame := &layout.Frame{Func: "f", Vars: []layout.Var{
		{Name: "z", Offset: -12, Size: 4},
		{Name: "x", Offset: -8, Size: 4},
		{Name: "y", Offset: -4, Size: 4},
	}}
	out, st := Backstop(Analyze(f), frame)
	if st.Blobbed || st.Merged != 1 {
		t.Fatalf("stats = %+v, want Merged 1 without blobbing", st)
	}
	want := []layout.Var{
		{Name: "z", Offset: -12, Size: 4},
		{Name: "x", Offset: -8, Size: 8},
	}
	if len(out.Vars) != len(want) {
		t.Fatalf("widened frame = %s, want z@[-12,-8) x@[-8,0)", out)
	}
	for i, v := range want {
		if out.Vars[i] != v {
			t.Errorf("var %d = %v, want %v", i, out.Vars[i], v)
		}
	}
	if len(frame.Vars) != 3 || frame.Vars[1].Size != 4 {
		t.Error("input frame was mutated")
	}
}

// An access whose offsets widening could not bound collapses the local
// area into one conservative object, like the static symbolizer's blob.
func TestBackstopBlobsUnboundedAccess(t *testing.T) {
	_, f, entry := mkFunc("f")
	header := f.NewBlock(0)
	body := f.NewBlock(0)
	exit := f.NewBlock(0)
	edge(entry, header)
	edge(header, body)
	edge(header, exit)
	edge(body, header)

	a := alloca(f, entry, "a", 8, -8)
	i0 := konst(f, entry, 0)
	entry.Append(f.NewValue(ir.OpJmp))

	phi := f.NewValue(ir.OpPhi, i0, nil)
	header.AddPhi(phi)
	cond := konst(f, header, 1)
	header.Append(f.NewValue(ir.OpBr, cond))

	addr := f.NewValue(ir.OpAdd, a, phi)
	body.Append(addr)
	body.Append(f.NewValue(ir.OpStore, addr, konst(f, body, 1)))
	inext := f.NewValue(ir.OpAdd, phi, konst(f, body, 4))
	body.Append(inext)
	phi.Args[1] = inext
	body.Append(f.NewValue(ir.OpJmp))
	exit.Append(f.NewValue(ir.OpRet, konst(f, exit, 0)))

	frame := &layout.Frame{Func: "f", Vars: []layout.Var{
		{Name: "a0", Offset: -8, Size: 4},
		{Name: "a1", Offset: -4, Size: 4},
	}}
	out, st := Backstop(Analyze(f), frame)
	if !st.Blobbed || st.Merged != 1 {
		t.Fatalf("stats = %+v, want Blobbed with Merged 1", st)
	}
	if len(out.Vars) != 1 || out.Vars[0] != (layout.Var{Name: "a0", Offset: -8, Size: 8}) {
		t.Fatalf("widened frame = %s, want one object a0@[-8,0)", out)
	}
}

// A layout every access provably stays inside passes through untouched.
func TestBackstopKeepsProvenLayout(t *testing.T) {
	_, f, b := mkFunc("f")
	x := alloca(f, b, "x", 4, -8)
	y := alloca(f, b, "y", 4, -4)
	b.Append(f.NewValue(ir.OpStore, x, konst(f, b, 1)))
	b.Append(f.NewValue(ir.OpStore, y, konst(f, b, 2)))
	b.Append(f.NewValue(ir.OpRet, konst(f, b, 0)))

	frame := &layout.Frame{Func: "f", Vars: []layout.Var{
		{Name: "x", Offset: -8, Size: 4},
		{Name: "y", Offset: -4, Size: 4},
	}}
	out, st := Backstop(Analyze(f), frame)
	if st.Merged != 0 || st.Blobbed {
		t.Fatalf("stats = %+v, want no widening", st)
	}
	if out != frame {
		t.Errorf("proven layout was copied/altered: %s", out)
	}
}
