package vsa

import (
	"time"

	"wytiwyg/internal/analysis"
	"wytiwyg/internal/ir"
)

// aloc is one abstract memory location: size bytes at a fixed offset
// within a region. Frame alocs denote cells of one stack object; Num
// alocs denote absolute cells (globals). The heap summary has no alocs —
// one abstract heap offset stands for many concrete cells, so no heap
// cell supports a strong update or a trustworthy load.
type aloc struct {
	region Region
	off    int64
	size   int64
}

// state is the abstract machine state at a program point: the value set
// of every SSA value evaluated so far (missing = bottom, the optimistic
// initial value) and the abstract store (nil map = bottom; a missing key
// in a non-nil map = Top, so joins intersect key sets).
type state struct {
	env map[*ir.Value]ValueSet
	mem map[aloc]ValueSet
}

func cloneState(s state) state {
	out := state{env: make(map[*ir.Value]ValueSet, len(s.env))}
	for k, v := range s.env {
		out.env[k] = v
	}
	if s.mem != nil {
		out.mem = make(map[aloc]ValueSet, len(s.mem))
		for k, v := range s.mem {
			out.mem[k] = v
		}
	}
	return out
}

func joinState(dst, src state) (state, bool) {
	changed := false
	for k, sv := range src.env {
		dv, ok := dst.env[k]
		if !ok {
			dst.env[k] = sv
			changed = true
			continue
		}
		nv := dv.Join(sv)
		if !nv.Eq(dv) {
			dst.env[k] = nv
			changed = true
		}
	}
	switch {
	case src.mem == nil:
		// Bottom store contributes nothing.
	case dst.mem == nil:
		dst.mem = make(map[aloc]ValueSet, len(src.mem))
		for k, v := range src.mem {
			dst.mem[k] = v
		}
		changed = true
	default:
		for k, dv := range dst.mem {
			sv, ok := src.mem[k]
			if !ok {
				delete(dst.mem, k) // missing on one side: Top
				changed = true
				continue
			}
			nv := dv.Join(sv)
			if !nv.Eq(dv) {
				dst.mem[k] = nv
				changed = true
			}
		}
	}
	return dst, changed
}

func widenState(prev, next state) state {
	for k, nv := range next.env {
		if pv, ok := prev.env[k]; ok {
			next.env[k] = nv.WidenFrom(pv)
		}
	}
	for k, nv := range next.mem {
		if pv, ok := prev.mem[k]; ok {
			next.mem[k] = nv.WidenFrom(pv)
		}
	}
	return next
}

// accSize is the byte width of a memory access (the IR uses 0 for the
// native 4-byte width).
func accSize(v *ir.Value) int64 {
	if v.Size == 0 {
		return 4
	}
	return int64(v.Size)
}

// evalValue computes the value set of one non-memory instruction.
func evalValue(v *ir.Value, env map[*ir.Value]ValueSet) ValueSet {
	get := func(a *ir.Value) ValueSet {
		if vs, ok := env[a]; ok {
			return vs
		}
		return TopVS
	}
	constArg := func(a *ir.Value) (int64, bool) {
		if num, ok := get(a).NumPart(); ok {
			return num.Exact()
		}
		return 0, false
	}
	switch v.Op {
	case ir.OpConst:
		return ConstVS(int64(v.Const))
	case ir.OpAlloca:
		return FrameVS(v, ConstSI(0))
	case ir.OpAdd:
		return get(v.Args[0]).Add(get(v.Args[1]))
	case ir.OpSub:
		return get(v.Args[0]).Sub(get(v.Args[1]))
	case ir.OpNeg:
		return get(v.Args[0]).Neg()
	case ir.OpMul:
		if k, ok := constArg(v.Args[1]); ok {
			return get(v.Args[0]).MulConst(k)
		}
		if k, ok := constArg(v.Args[0]); ok {
			return get(v.Args[1]).MulConst(k)
		}
		return TopVS
	case ir.OpShl:
		if k, ok := constArg(v.Args[1]); ok && k >= 0 && k < 32 {
			return get(v.Args[0]).MulConst(1 << uint(k))
		}
		return TopVS
	case ir.OpAnd:
		return evalAnd(get(v.Args[0]), get(v.Args[1]))
	case ir.OpMod:
		if k, ok := constArg(v.Args[1]); ok && k > 0 {
			// OpMod is signed: the result is non-negative only when the
			// dividend's signed reading is — words at or above 2^31 read
			// negative, so a wrapped unsigned-window set proves nothing.
			if num, ok := get(v.Args[0]).NumPart(); ok && num.Lo >= 0 && num.Hi < 1<<31 {
				return NumVS(SpanSI(0, k-1, 1))
			}
			return NumVS(SpanSI(-(k - 1), k-1, 1))
		}
		return TopVS
	case ir.OpCmp:
		return NumVS(SpanSI(0, 1, 1))
	case ir.OpZext:
		b := analysis.ZextBound(v.Size)
		if num, ok := get(v.Args[0]).NumPart(); ok && num.Lo >= 0 && num.Hi <= b.Hi {
			return NumVS(num)
		}
		return NumVS(SpanSI(b.Lo, b.Hi, 1))
	case ir.OpSext:
		b := analysis.SextBound(v.Size)
		if num, ok := get(v.Args[0]).NumPart(); ok && num.Lo >= b.Lo && num.Hi <= b.Hi {
			return NumVS(num)
		}
		return NumVS(SpanSI(b.Lo, b.Hi, 1))
	case ir.OpCallExt:
		if v.Sym == "malloc" || v.Sym == "calloc" {
			return HeapVS(SpanSI(0, analysis.PosInf, 1))
		}
		return TopVS
	case ir.OpPhi:
		out := BottomVS
		seen := false
		for _, a := range v.Args {
			if a == v {
				continue
			}
			av, ok := env[a]
			if !ok {
				continue // bottom: optimistic, resolved by reiteration
			}
			out = out.Join(av)
			seen = true
		}
		if !seen {
			return TopVS
		}
		return out
	}
	return TopVS
}

// evalAnd models bit masking: a positive mask bounds the result, and an
// alignment mask −2^k floors its operand to a multiple of 2^k, which the
// stride captures exactly.
func evalAnd(a, b ValueSet) ValueSet {
	mask, ok := b.NumPart()
	if !ok {
		if mask, ok = a.NumPart(); !ok {
			return TopVS
		}
		a = b
	}
	m, exact := mask.Exact()
	if !exact {
		return TopVS
	}
	if m >= 0 {
		return NumVS(SpanSI(0, m, 1))
	}
	if k := -m; k&(k-1) == 0 {
		// x & −2^k rounds x down to a multiple of 2^k. That is only a
		// rounding of the region-relative offset when the region's
		// concrete base is itself 2^k-aligned; otherwise the mask mixes
		// base bits into the offset and the part is unknown.
		if a.IsTop() || a.IsBottom() {
			return TopVS
		}
		out := ValueSet{parts: make(map[Region]SI, len(a.parts))}
		for r, s := range a.parts {
			if s.Lo <= analysis.NegInf || s.Hi >= analysis.PosInf || !regionAligned(r, k) {
				out.parts[r] = TopSI
				continue
			}
			lo := s.Lo - mod(s.Lo, k)
			hi := s.Hi - mod(s.Hi, k)
			out.parts[r] = SpanSI(lo, hi, k)
		}
		return out
	}
	return TopVS
}

// regionAligned reports whether the region's concrete base address is
// guaranteed to be a multiple of k (a power of two). Num offsets are the
// absolute addresses themselves, so any mask is exact. An alloca's
// native storage is aligned by irexec to max(Align, 4) — and, since the
// alignment mask only clears the trailing run of bits, to no more than
// Align's lowest set bit. The bump allocator hands out 8-byte-aligned
// heap blocks.
func regionAligned(r Region, k int64) bool {
	switch r.Kind {
	case RegNum:
		return true
	case RegFrame:
		al := int64(r.Base.Align)
		if al != 0 {
			al &= -al // guaranteed power-of-two alignment of the base
		}
		if al < 4 {
			al = 4
		}
		return k <= al
	case RegHeap:
		return k <= 8
	}
	return false
}

// FuncResult is the VSA fixpoint of one function.
type FuncResult struct {
	fn *ir.Func
	// vals is the value set of every SSA value at its definition (SSA
	// values are immutable, so this is their set at every use).
	vals map[*ir.Value]ValueSet
	// escaped is the syntactic escape set used for call clobbering.
	escaped map[*ir.Value]bool
	// Elapsed is the analysis wall time, for performance reporting.
	Elapsed time.Duration
}

// Fn returns the analyzed function.
func (fr *FuncResult) Fn() *ir.Func { return fr.fn }

// ValueSetOf returns the value set of v (Top when v was never reached).
func (fr *FuncResult) ValueSetOf(v *ir.Value) ValueSet {
	if vs, ok := fr.vals[v]; ok {
		return vs
	}
	return TopVS
}

// transfer interprets one block: phis, then instructions in order, with
// loads reading and stores updating the abstract store.
func transfer(b *ir.Block, st state, esc map[*ir.Value]bool, hook func(v *ir.Value, st state)) state {
	if st.mem == nil {
		st.mem = make(map[aloc]ValueSet) // bottom store: treat as all-Top
	}
	for _, v := range b.Phis {
		st.env[v] = evalValue(v, st.env)
	}
	for _, v := range b.Insts {
		if hook != nil {
			hook(v, st)
		}
		switch v.Op {
		case ir.OpLoad:
			st.env[v] = loadCell(st, v)
		case ir.OpStore:
			storeCell(st, v)
		case ir.OpCall, ir.OpCallInd, ir.OpCallExt, ir.OpCallExtRaw:
			clobberCall(st, esc)
			if v.Op.HasResult() {
				st.env[v] = evalValue(v, st.env)
			}
		default:
			if v.Op.HasResult() {
				st.env[v] = evalValue(v, st.env)
			}
		}
	}
	return st
}

// loadCell reads the abstract store: only an address proven to be exactly
// one non-heap cell yields a tracked value; everything else is Top.
func loadCell(st state, v *ir.Value) ValueSet {
	addr, ok := st.env[v.Args[0]]
	if !ok || addr.top || len(addr.parts) != 1 {
		return TopVS
	}
	for r, s := range addr.parts {
		off, exact := s.Exact()
		if !exact || r.Kind == RegHeap {
			return TopVS
		}
		if val, ok := st.mem[aloc{region: r, off: off, size: accSize(v)}]; ok {
			return val
		}
	}
	return TopVS
}

// storeCell applies one store to the abstract store. An exactly-resolved
// non-heap cell gets a strong update; any other pointer invalidates every
// tracked cell it may overlap; an unknown pointer invalidates everything.
// Invalidation applies the same cross-region model as the alias oracle
// (regionsDisjoint): a store through a numeric address not proven below
// isa.HeapBase may hit native frame or heap storage, so it clobbers
// those cells too — and a frame store clobbers numeric cells living at
// such unproven addresses.
func storeCell(st state, v *ir.Value) {
	addr, ok := st.env[v.Args[0]]
	size := accSize(v)
	if !ok || addr.top || addr.IsBottom() {
		for k := range st.mem {
			delete(st.mem, k)
		}
		return
	}
	val := TopVS
	if sv, ok := st.env[v.Args[1]]; ok {
		val = sv
	}
	if r, s, one := singleCell(addr); one {
		// Strong update: this is the only concrete cell the store can hit.
		dst := aloc{region: r, off: s, size: size}
		for k := range st.mem {
			if k != dst && mayClobberCell(addr, size, k) {
				delete(st.mem, k)
			}
		}
		st.mem[dst] = val
		return
	}
	for k := range st.mem {
		if mayClobberCell(addr, size, k) {
			delete(st.mem, k)
		}
	}
}

// mayClobberCell reports whether a size-byte store through addr may write
// any byte of the tracked cell k. Same-region overlap uses the strided
// offset sets; cross-region overlap is governed by regionsDisjoint, the
// memory-map model the alias oracle answers from — the store transfer
// must not be less conservative than the oracle.
func mayClobberCell(addr ValueSet, size int64, k aloc) bool {
	cell := ConstSI(k.off)
	for r, s := range addr.parts {
		if r == k.region {
			if r.Kind == RegHeap || !s.DisjointAccess(size, cell, k.size) {
				return true
			}
			continue
		}
		if !regionsDisjoint(r, s, size, k.region, cell, k.size) {
			return true
		}
	}
	return false
}

// singleCell reports whether addr resolves to exactly one strong-updatable
// cell: a single non-heap region at an exact offset.
func singleCell(addr ValueSet) (Region, int64, bool) {
	if addr.top || len(addr.parts) != 1 {
		return Region{}, 0, false
	}
	for r, s := range addr.parts {
		if r.Kind == RegHeap {
			return Region{}, 0, false
		}
		if off, exact := s.Exact(); exact {
			return r, off, true
		}
	}
	return Region{}, 0, false
}

// clobberCall invalidates every cell a callee could write: globals, the
// heap, and any stack object whose address escapes the function.
func clobberCall(st state, esc map[*ir.Value]bool) {
	for k := range st.mem {
		switch k.region.Kind {
		case RegNum, RegHeap:
			delete(st.mem, k)
		case RegFrame:
			if esc[k.region.Base] {
				delete(st.mem, k)
			}
		}
	}
}

// Analyze runs the value-set analysis to a fixpoint over one function.
func Analyze(f *ir.Func) *FuncResult {
	start := time.Now()
	esc := analysis.Escapes(f)
	prob := analysis.Problem[state]{
		Forward:  true,
		Boundary: func(*ir.Func) state { return state{env: map[*ir.Value]ValueSet{}, mem: map[aloc]ValueSet{}} },
		Bottom:   func() state { return state{env: map[*ir.Value]ValueSet{}} },
		Join:     joinState,
		Clone:    cloneState,
		Transfer: func(b *ir.Block, in state) state { return transfer(b, in, esc, nil) },
		Widen:    widenState,
	}
	res := analysis.Solve(f, prob)
	vals := make(map[*ir.Value]ValueSet)
	for _, b := range f.Blocks {
		out, ok := res.Out[b]
		if !ok {
			continue
		}
		for _, v := range b.Phis {
			if vs, ok := out.env[v]; ok {
				vals[v] = vs
			}
		}
		for _, v := range b.Insts {
			if vs, ok := out.env[v]; ok && v.Op.HasResult() {
				vals[v] = vs
			}
		}
	}
	fr := &FuncResult{fn: f, vals: vals, escaped: esc}
	fr.Elapsed = time.Since(start)
	return fr
}
