package vsa

import (
	"testing"

	"wytiwyg/internal/analysis"
	"wytiwyg/internal/ir"
)

func mkFunc(name string) (*ir.Module, *ir.Func, *ir.Block) {
	m := ir.NewModule("t")
	f := m.NewFunc(name, 0x1000)
	f.NumRet = 1
	b := f.NewBlock(0)
	m.Entry = f
	return m, f, b
}

func konst(f *ir.Func, b *ir.Block, c int32) *ir.Value {
	k := f.NewValue(ir.OpConst)
	k.Const = c
	b.Append(k)
	return k
}

func edge(from, to *ir.Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

func alloca(f *ir.Func, b *ir.Block, name string, size uint32, off int32) *ir.Value {
	a := f.NewValue(ir.OpAlloca)
	a.AllocSize = size
	a.Name = name
	a.Const = off
	b.Append(a)
	return a
}

// TestOracleResolvesStoredAddress pins the pointer-table pattern the
// syntactic escape analysis gives up on: &a stored into slot p, reloaded,
// and dereferenced. VSA must prove the reloaded pointer is exactly a+0,
// that the dereferenced store writes {42} into a, and that the reloaded
// pointer cannot alias p itself.
func TestOracleResolvesStoredAddress(t *testing.T) {
	_, f, b := mkFunc("f")
	a := alloca(f, b, "a", 16, -24)
	p := alloca(f, b, "p", 4, -4)
	st1 := f.NewValue(ir.OpStore, p, a) // *p = &a
	b.Append(st1)
	q := f.NewValue(ir.OpLoad, p)
	b.Append(q)
	st2 := f.NewValue(ir.OpStore, q, konst(f, b, 42)) // *q = 42
	b.Append(st2)
	x := f.NewValue(ir.OpLoad, a)
	b.Append(x)
	b.Append(f.NewValue(ir.OpRet, x))

	o := NewOracle(f)
	base, off, ok := o.PointsToFrameSlot(q)
	if !ok || base != a || off != 0 {
		t.Fatalf("PointsToFrameSlot(q) = %v,%d,%v; want a,0,true", base, off, ok)
	}
	if !o.MustNotAlias(q, 4, p, 4) {
		t.Error("q and p should be proven disjoint (distinct stack objects)")
	}
	if o.MustNotAlias(q, 4, a, 4) {
		t.Error("q and a alias (same cell) but were separated")
	}
	if num, ok := o.Result().ValueSetOf(x).NumPart(); !ok {
		t.Errorf("load through resolved chain = %v, want {42}", o.Result().ValueSetOf(x))
	} else if c, exact := num.Exact(); !exact || c != 42 {
		t.Errorf("forwarded value = %v, want exactly 42", num)
	}
}

// TestOracleLoopStride verifies that a strided loop index separates
// interleaved field accesses: store a[8i] and a[8i+4] never collide even
// though the index is unbounded after widening.
func TestOracleLoopStride(t *testing.T) {
	_, f, entry := mkFunc("f")
	header := f.NewBlock(0)
	body := f.NewBlock(0)
	exit := f.NewBlock(0)
	edge(entry, header)
	edge(header, body)
	edge(header, exit)
	edge(body, header)

	a := alloca(f, entry, "a", 64, -64)
	i0 := konst(f, entry, 0)
	entry.Append(f.NewValue(ir.OpJmp))

	phi := f.NewValue(ir.OpPhi, i0, nil)
	header.AddPhi(phi)
	cond := konst(f, header, 1)
	header.Append(f.NewValue(ir.OpBr, cond))

	addr0 := f.NewValue(ir.OpAdd, a, phi)
	body.Append(addr0)
	body.Append(f.NewValue(ir.OpStore, addr0, konst(f, body, 1)))
	addr1 := f.NewValue(ir.OpAdd, addr0, konst(f, body, 4))
	body.Append(addr1)
	body.Append(f.NewValue(ir.OpStore, addr1, konst(f, body, 2)))
	inext := f.NewValue(ir.OpAdd, phi, konst(f, body, 8))
	body.Append(inext)
	phi.Args[1] = inext
	body.Append(f.NewValue(ir.OpJmp))

	exit.Append(f.NewValue(ir.OpRet, konst(f, exit, 0)))

	o := NewOracle(f)
	base, offs, ok := o.PointsToFrame(addr0)
	if !ok || base != a {
		t.Fatalf("addr0 not resolved to frame of a: %v", o.Result().ValueSetOf(addr0))
	}
	if offs.Stride != 8 || offs.Lo != 0 {
		t.Errorf("addr0 offsets = %v, want stride 8 anchored at 0", offs)
	}
	if !o.MustNotAlias(addr0, 4, addr1, 4) {
		t.Error("interleaved stride-8 fields should be proven disjoint")
	}
	if o.MustNotAlias(addr0, 8, addr1, 4) {
		t.Error("an 8-byte access spans both fields; separation is unsound")
	}
}

// TestCallClobbersEscapedOnly: a call must invalidate the tracked value of
// an escaped slot but keep a private one.
func TestCallClobbersEscapedOnly(t *testing.T) {
	m, f, b := mkFunc("f")
	callee := m.NewFunc("g", 0x2000)
	callee.NumRet = 1
	cb := callee.NewBlock(0)
	cb.Append(callee.NewValue(ir.OpRet, konst(callee, cb, 0)))

	priv := alloca(f, b, "priv", 4, -8)
	esc := alloca(f, b, "esc", 4, -4)
	b.Append(f.NewValue(ir.OpStore, priv, konst(f, b, 7)))
	b.Append(f.NewValue(ir.OpStore, esc, konst(f, b, 9)))
	call := f.NewValue(ir.OpCall, esc) // &esc passed to the callee
	call.Callee = callee
	call.NumRet = 1
	b.Append(call)
	lp := f.NewValue(ir.OpLoad, priv)
	b.Append(lp)
	le := f.NewValue(ir.OpLoad, esc)
	b.Append(le)
	b.Append(f.NewValue(ir.OpRet, lp))

	fr := Analyze(f)
	if num, ok := fr.ValueSetOf(lp).NumPart(); !ok {
		t.Errorf("private slot lost across call: %v", fr.ValueSetOf(lp))
	} else if c, exact := num.Exact(); !exact || c != 7 {
		t.Errorf("private slot = %v, want {7}", num)
	}
	if !fr.ValueSetOf(le).IsTop() {
		t.Errorf("escaped slot survived a call: %v", fr.ValueSetOf(le))
	}
}

// TestVerifyFlagsCrossSlotAndOutOfFrame exercises the layout verifier's
// two findings.
func TestVerifyFlagsCrossSlotAndOutOfFrame(t *testing.T) {
	_, f, b := mkFunc("f")
	x := alloca(f, b, "x", 4, -8)
	alloca(f, b, "y", 4, -4)
	// Crosses from x into y: offsets [0,4] of a 4-byte slot.
	cross := f.NewValue(ir.OpAdd, x, konst(f, b, 4))
	b.Append(cross)
	b.Append(f.NewValue(ir.OpStore, cross, konst(f, b, 1)))
	// Proven outside the whole frame [-8, 0).
	wild := f.NewValue(ir.OpAdd, x, konst(f, b, 100))
	b.Append(wild)
	b.Append(f.NewValue(ir.OpStore, wild, konst(f, b, 2)))
	b.Append(f.NewValue(ir.OpRet, konst(f, b, 0)))

	var rep analysis.Report
	st := Check(Analyze(f), &rep)
	if st.CrossSlot != 1 || st.OutOfFrame != 1 {
		t.Fatalf("stats = %+v, want CrossSlot 1, OutOfFrame 1\n%s", st, rep.String())
	}
	if rep.Errors() != 1 || rep.Count(analysis.Warn) != 1 {
		t.Errorf("report = %d errors %d warns, want 1/1\n%s",
			rep.Errors(), rep.Count(analysis.Warn), rep.String())
	}
	// A clean in-bounds function reports nothing.
	_, g, gb := mkFunc("g")
	ga := alloca(g, gb, "a", 8, -8)
	gb.Append(g.NewValue(ir.OpStore, ga, konst(g, gb, 1)))
	gb.Append(g.NewValue(ir.OpRet, konst(g, gb, 0)))
	var clean analysis.Report
	if st := Check(Analyze(g), &clean); st.CrossSlot+st.OutOfFrame != 0 || len(clean.Diags) != 0 {
		t.Errorf("clean function flagged: %+v\n%s", st, clean.String())
	}
}
