package vsa

import (
	"fmt"

	"wytiwyg/internal/analysis"
	"wytiwyg/internal/ir"
)

// Admission: the soundness gate for statically recovered (cold) functions.
// A traced function's layout is trusted because the traces witnessed it; a
// cold function's layout is only a static reconstruction, so it is admitted
// into the recompiled binary exactly when the abstract interpreter can prove
// the reconstruction safe. Anything short of a proof degrades the function
// to a trap stub (the fallback ladder traced → static-verified → trap stub).

// AdmitResult is the verdict for one cold function.
type AdmitResult struct {
	// OK reports whether every frame access was proven in-bounds and no
	// stack object's address escapes the frame.
	OK bool
	// Reason explains a rejection (empty when OK).
	Reason string
	// Stats are the layout-verifier counters backing the verdict.
	Stats CheckStats
}

// Admit runs value-set analysis over a lifted cold function and decides
// admission. The rule is strict on purpose: every access that resolves to a
// stack object must be proven inside its slot (no cross-slot, no
// out-of-frame, no unbounded offset sets), and no alloca's address may
// escape the frame — an escaped address could be dereferenced by code whose
// layout assumptions the static recovery cannot see.
func Admit(f *ir.Func) AdmitResult {
	fr := Analyze(f)
	var scratch analysis.Report
	st := Check(fr, &scratch)
	switch {
	case st.OutOfFrame > 0:
		return AdmitResult{Reason: fmt.Sprintf("%d frame access(es) proven out of frame", st.OutOfFrame), Stats: st}
	case st.CrossSlot > 0:
		return AdmitResult{Reason: fmt.Sprintf("%d frame access(es) may cross a slot boundary", st.CrossSlot), Stats: st}
	case st.Unbounded > 0:
		return AdmitResult{Reason: fmt.Sprintf("%d frame access(es) with unbounded offsets", st.Unbounded), Stats: st}
	}
	if esc := analysis.Escapes(f); len(esc) > 0 {
		var name string
		for _, b := range f.Blocks {
			for _, v := range b.Insts {
				if esc[v] {
					name = slotName(v)
					break
				}
			}
			if name != "" {
				break
			}
		}
		return AdmitResult{Reason: fmt.Sprintf("address of stack object %s escapes the frame", name), Stats: st}
	}
	return AdmitResult{OK: true, Stats: st}
}
