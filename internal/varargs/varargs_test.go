package varargs_test

import (
	"bytes"
	"testing"

	"wytiwyg/internal/core"
	"wytiwyg/internal/ir"
	"wytiwyg/internal/irexec"
	"wytiwyg/internal/machine"
	"wytiwyg/internal/minicc/gen"
	"wytiwyg/internal/varargs"
)

func liftTo(t *testing.T, src string, inputs []machine.Input) *core.Pipeline {
	t.Helper()
	img, err := gen.Build(src, gen.GCC12O3, "t")
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.LiftBinary(img, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.RefineRegSave(); err != nil {
		t.Fatal(err)
	}
	return p
}

func countRaw(m *ir.Module) (raw, ext int) {
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, v := range b.Insts {
				switch v.Op {
				case ir.OpCallExtRaw:
					raw++
				case ir.OpCallExt:
					ext++
				}
			}
		}
	}
	return
}

func TestFormatStringCounts(t *testing.T) {
	src := `
extern int printf(char *fmt, ...);
int main() {
	printf("plain\n");
	printf("%d\n", 1);
	printf("%d %s %c\n", 2, "x", 'y');
	return 0;
}`
	p := liftTo(t, src, nil)
	rawBefore, _ := countRaw(p.Mod)
	if rawBefore != 3 {
		t.Fatalf("raw sites before = %d, want 3", rawBefore)
	}
	tr := varargs.NewTracer()
	ip, err := irexec.New(p.Mod, machine.Input{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ip.Tr = tr
	tr.Bind(ip)
	if _, err := ip.Run(); err != nil {
		t.Fatal(err)
	}
	// Observed counts: 1, 2 and 4 arguments.
	got := map[int]bool{}
	for _, n := range tr.Counts {
		got[n] = true
	}
	for _, want := range []int{1, 2, 4} {
		if !got[want] {
			t.Errorf("argument count %d not recovered (counts: %v)", want, tr.Counts)
		}
	}
	if err := varargs.Apply(p.Mod, tr.Counts); err != nil {
		t.Fatal(err)
	}
	rawAfter, extAfter := countRaw(p.Mod)
	if rawAfter != 0 {
		t.Errorf("raw sites after = %d", rawAfter)
	}
	if extAfter < 3 {
		t.Errorf("explicit calls after = %d", extAfter)
	}
	// Behaviour preserved.
	var out bytes.Buffer
	res, err := irexec.Run(p.Mod, machine.Input{}, &out, nil)
	if err != nil || res.ExitCode != 0 {
		t.Fatalf("run: %v exit %d", err, res.ExitCode)
	}
	if out.String() != "plain\n1\n2 x y\n" {
		t.Errorf("output = %q", out.String())
	}
}

func TestUnobservedRawSiteRejected(t *testing.T) {
	src := `
extern int printf(char *fmt, ...);
extern int input_int(int i);
int main() {
	if (input_int(0) > 0) printf("hi %d\n", 1);
	return 0;
}`
	// Lift with coverage of the printf branch, then apply with EMPTY
	// counts: the raw site was lifted but never observed by this tracer.
	p := liftTo(t, src, []machine.Input{{Ints: []int32{5}}})
	err := varargs.Apply(p.Mod, map[*ir.Value]int{})
	if err == nil {
		t.Error("unobserved raw call site accepted")
	}
}
