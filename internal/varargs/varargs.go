// Package varargs implements the variadic-call refinement of §5.2: calls to
// external functions with variable argument lists are initially lifted in
// BinRec's stack-switching form (OpCallExtRaw, arguments living in emulated
// stack memory). This refinement inspects each call site at runtime — for
// printf-style functions it parses the format string — to determine the
// exact per-site argument count, then rewrites the site into a fully lifted
// call with explicit arguments so that stack symbolization can proceed.
package varargs

import (
	"fmt"

	"wytiwyg/internal/extdb"
	"wytiwyg/internal/ir"
	"wytiwyg/internal/irexec"
	"wytiwyg/internal/machine"
)

// Tracer records observed argument counts per raw variadic call site.
type Tracer struct {
	ip *irexec.Interp
	// Counts is the maximal observed argument count per call site.
	Counts map[*ir.Value]int
	// failed records sites whose format string could not be interpreted.
	failed map[*ir.Value]error
}

// NewTracer returns an empty varargs analysis.
func NewTracer() *Tracer {
	return &Tracer{
		Counts: make(map[*ir.Value]int),
		failed: make(map[*ir.Value]error),
	}
}

// Bind gives the tracer access to the interpreter's memory (the core
// pipeline calls this before each run).
func (t *Tracer) Bind(ip *irexec.Interp) { t.ip = ip }

// Fork returns a fresh tracer for one input's run; per-input argument
// counts merge with Join.
func (t *Tracer) Fork() irexec.Tracer { return NewTracer() }

// Join folds a forked tracer's observations into t: the per-site count is
// the maximum across runs (a max-merge is commutative, so the join order
// does not matter), and failed sites accumulate.
func (t *Tracer) Join(o irexec.Tracer) {
	ot := o.(*Tracer)
	for v, n := range ot.Counts {
		if n > t.Counts[v] {
			t.Counts[v] = n
		}
	}
	for v, err := range ot.failed {
		if _, ok := t.failed[v]; !ok {
			t.failed[v] = err
		}
	}
}

// FnEnter implements irexec.Tracer.
func (t *Tracer) FnEnter(fr *irexec.Frame) {}

// FnExit implements irexec.Tracer.
func (t *Tracer) FnExit(fr *irexec.Frame, ret *ir.Value, rets []uint32) {}

// Phi implements irexec.Tracer.
func (t *Tracer) Phi(fr *irexec.Frame, phi *ir.Value, incoming *ir.Value, val uint32) {}

// CallPre implements irexec.Tracer.
func (t *Tracer) CallPre(fr *irexec.Frame, call *ir.Value, args []uint32) {}

// Exec watches raw variadic calls and derives their exact signatures.
func (t *Tracer) Exec(fr *irexec.Frame, v *ir.Value, args []uint32, res uint32) {
	if v.Op != ir.OpCallExtRaw || t.ip == nil {
		return
	}
	sig, ok := extdb.Lookup(v.Sym)
	if !ok {
		t.failed[v] = fmt.Errorf("external %q not in database", v.Sym)
		return
	}
	count := sig.Params
	for _, eff := range sig.Effects {
		if eff.Kind != extdb.FormatStr {
			continue
		}
		// The format string is fixed argument eff.A; arguments live on the
		// emulated stack at the call's ESP.
		fmtAddr, err := t.ip.Mem.Load(args[0]+uint32(4*eff.A), 4)
		if err != nil {
			t.failed[v] = err
			return
		}
		format, err := t.ip.Mem.CString(fmtAddr)
		if err != nil {
			t.failed[v] = err
			return
		}
		count = sig.Params + machine.CountPrintfArgs(format)
	}
	if count > t.Counts[v] {
		t.Counts[v] = count
	}
}

// Apply rewrites every observed raw call into an explicit-argument call
// (loads from the emulated stack inserted before the call). Raw sites never
// observed are left in place only if they are unreachable; reaching one
// at runtime would mean incomplete coverage, so Apply reports them.
func Apply(mod *ir.Module, counts map[*ir.Value]int) error {
	for _, f := range mod.Funcs {
		for _, b := range f.Blocks {
			for i := 0; i < len(b.Insts); i++ {
				v := b.Insts[i]
				if v.Op != ir.OpCallExtRaw {
					continue
				}
				n, ok := counts[v]
				if !ok {
					return fmt.Errorf("varargs: %s: raw call to %s at %s never observed",
						f.Name, v.Sym, v)
				}
				sp := v.Args[0]
				var loads []*ir.Value
				var args []*ir.Value
				for j := 0; j < n; j++ {
					addr := sp
					if j > 0 {
						k := f.NewValue(ir.OpConst)
						k.Const = int32(4 * j)
						k.Block = b
						add := f.NewValue(ir.OpAdd, sp, k)
						add.Block = b
						loads = append(loads, k, add)
						addr = add
					}
					ld := f.NewValue(ir.OpLoad, addr)
					ld.Size = 4
					ld.Block = b
					loads = append(loads, ld)
					args = append(args, ld)
				}
				v.Op = ir.OpCallExt
				v.Args = args
				// Splice the loads in before the call.
				b.Insts = append(b.Insts[:i], append(loads, b.Insts[i:]...)...)
				i += len(loads)
			}
		}
	}
	return ir.Verify(mod)
}
