package isa

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestRegNames(t *testing.T) {
	cases := map[Reg]string{EAX: "eax", ECX: "ecx", EDX: "edx", EBX: "ebx",
		ESP: "esp", EBP: "ebp", ESI: "esi", EDI: "edi"}
	for r, want := range cases {
		if r.String() != want {
			t.Errorf("Reg(%d).String() = %q, want %q", r, r.String(), want)
		}
		got, ok := RegByName(want)
		if !ok || got != r {
			t.Errorf("RegByName(%q) = %v, %v; want %v, true", want, got, ok, r)
		}
	}
	if _, ok := RegByName("zzz"); ok {
		t.Error("RegByName accepted bogus name")
	}
	if NoReg.String() != "-" {
		t.Errorf("NoReg.String() = %q", NoReg.String())
	}
}

func TestCalleeSaved(t *testing.T) {
	saved := map[Reg]bool{EBX: true, ESI: true, EDI: true, EBP: true, ESP: true}
	for r := Reg(0); r < NumRegs; r++ {
		if r.CalleeSaved() != saved[r] {
			t.Errorf("%v.CalleeSaved() = %v, want %v", r, r.CalleeSaved(), saved[r])
		}
	}
}

func TestCondNegate(t *testing.T) {
	for c := Cond(0); c < NumConds; c++ {
		if c.Negate().Negate() != c {
			t.Errorf("double negation of %v = %v", c, c.Negate().Negate())
		}
		if c.Negate() == c {
			t.Errorf("%v negates to itself", c)
		}
	}
	pairs := [][2]Cond{{CondEQ, CondNE}, {CondLT, CondGE}, {CondLE, CondGT},
		{CondB, CondAE}, {CondBE, CondA}}
	for _, p := range pairs {
		if p[0].Negate() != p[1] {
			t.Errorf("%v.Negate() = %v, want %v", p[0], p[0].Negate(), p[1])
		}
	}
}

func TestOpForms(t *testing.T) {
	if ADD.ImmForm() != ADDI || MOD.ImmForm() != MODI {
		t.Error("ImmForm mapping broken")
	}
	if ADDI.RegForm() != ADD || MODI.RegForm() != MOD {
		t.Error("RegForm mapping broken")
	}
	for op := ADD; op <= MOD; op++ {
		if op.ImmForm().RegForm() != op {
			t.Errorf("round trip for %v broken", op)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("ImmForm of MOV did not panic")
		}
	}()
	MOV.ImmForm()
}

func TestIsControl(t *testing.T) {
	control := []Op{JMP, JCC, JMPR, CALL, CALLR, RET, HALT}
	for _, op := range control {
		if !op.IsControl() {
			t.Errorf("%v not control", op)
		}
	}
	for _, op := range []Op{MOV, LOAD, STORE, PUSH, POP, ADD, SYS, NOP} {
		if op.IsControl() {
			t.Errorf("%v claims to be control", op)
		}
	}
}

func randInstr(r *rand.Rand) Instr {
	in := Instr{
		Op:     Op(r.Intn(int(NumOps))),
		Cond:   Cond(r.Intn(int(NumConds))),
		Dst:    Reg(r.Intn(NumRegs)),
		Src:    Reg(r.Intn(NumRegs)),
		Size:   []uint8{1, 2, 4}[r.Intn(3)],
		Signed: r.Intn(2) == 0,
		Imm:    int32(r.Uint32()),
	}
	if r.Intn(2) == 0 {
		in.Mem = MemRef{
			Base:  Reg(r.Intn(NumRegs)),
			Index: Reg(r.Intn(NumRegs)),
			Scale: []uint8{1, 2, 4, 8}[r.Intn(4)],
			Disp:  int32(r.Uint32()),
		}
	} else {
		in.Mem = MemRef{Base: NoReg, Index: NoReg}
	}
	return in
}

// Property: Encode/Decode round-trips every instruction exactly.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randInstr(r)
		var buf [InstrSize]byte
		Encode(buf[:], &in)
		out, err := Decode(buf[:])
		if err != nil {
			return false
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: EncodeAll/DecodeAll round-trips instruction streams.
func TestEncodeDecodeAll(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		code := make([]Instr, int(n)%37)
		for i := range code {
			code[i] = randInstr(r)
		}
		b := EncodeAll(code)
		if len(b) != len(code)*InstrSize {
			return false
		}
		out, err := DecodeAll(b)
		if err != nil {
			return false
		}
		if len(out) != len(code) {
			return false
		}
		for i := range code {
			if !reflect.DeepEqual(code[i], out[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(make([]byte, 3)); err == nil {
		t.Error("short buffer accepted")
	}
	bad := make([]byte, InstrSize)
	bad[0] = byte(NumOps) + 5
	if _, err := Decode(bad); err == nil {
		t.Error("invalid opcode accepted")
	}
	bad[0] = byte(MOV)
	bad[1] = byte(NumConds) + 1
	if _, err := Decode(bad); err == nil {
		t.Error("invalid condition accepted")
	}
	if _, err := DecodeAll(make([]byte, InstrSize+1)); err == nil {
		t.Error("unaligned stream accepted")
	}
}

func TestUsesDef(t *testing.T) {
	tests := []struct {
		in   Instr
		uses []Reg
		def  Reg
	}{
		{Instr{Op: MOV, Dst: EAX, Src: EBX}, []Reg{EBX}, EAX},
		{Instr{Op: MOVI, Dst: ECX, Imm: 7}, nil, ECX},
		{Instr{Op: ADD, Dst: EAX, Src: ECX}, []Reg{EAX, ECX}, EAX},
		{Instr{Op: ADDI, Dst: EAX, Imm: 4}, []Reg{EAX}, EAX},
		{Instr{Op: LOAD, Dst: EAX, Size: 4, Mem: MemRef{Base: EBP, Index: ECX, Scale: 4, Disp: -8}}, []Reg{EBP, ECX}, EAX},
		{Instr{Op: STORE, Src: EDX, Size: 4, Mem: MemRef{Base: ESP, Index: NoReg, Disp: 4}}, []Reg{EDX, ESP}, NoReg},
		{Instr{Op: PUSH, Src: EBP}, []Reg{EBP, ESP}, NoReg},
		{Instr{Op: POP, Dst: EBP}, []Reg{ESP}, EBP},
		{Instr{Op: RET}, []Reg{ESP}, NoReg},
		{Instr{Op: CALL, Imm: 100}, []Reg{ESP}, NoReg},
		{Instr{Op: CALLR, Src: EAX}, []Reg{EAX, ESP}, NoReg},
		{Instr{Op: MOVLO8, Dst: EAX, Src: ECX}, []Reg{ECX, EAX}, EAX},
		{Instr{Op: JMPR, Src: EDX}, []Reg{EDX}, NoReg},
		{Instr{Op: SET, Cond: CondEQ, Dst: EAX}, nil, EAX},
	}
	for _, tc := range tests {
		if got := tc.in.Uses(); !reflect.DeepEqual(got, tc.uses) {
			t.Errorf("%v Uses() = %v, want %v", tc.in.String(), got, tc.uses)
		}
		if got := tc.in.Def(); got != tc.def {
			t.Errorf("%v Def() = %v, want %v", tc.in.String(), got, tc.def)
		}
	}
}

func TestStringForms(t *testing.T) {
	in := Instr{Op: LOAD, Dst: EAX, Size: 4, Mem: MemRef{Base: EBP, Index: ECX, Scale: 8, Disp: -44}}
	if in.String() != "load4u eax, -44(ebp,ecx,8)" {
		t.Errorf("got %q", in.String())
	}
	in2 := Instr{Op: STORE, Src: ECX, Size: 4, Mem: MemRef{Base: EBP, Index: NoReg, Disp: -20}}
	if in2.String() != "store4 -20(ebp), ecx" {
		t.Errorf("got %q", in2.String())
	}
	in3 := Instr{Op: JCC, Cond: CondNE, Imm: 0x2000}
	if in3.String() != "jne 0x2000" {
		t.Errorf("got %q", in3.String())
	}
}

func TestAddrHelpers(t *testing.T) {
	if !IsExtAddr(ExtBase) || IsExtAddr(ExtBase-1) {
		t.Error("IsExtAddr wrong")
	}
	if !IsCodeAddr(CodeBase, 1) {
		t.Error("entry not a code addr")
	}
	if IsCodeAddr(CodeBase+8, 2) {
		t.Error("unaligned accepted")
	}
	if IsCodeAddr(CodeBase+2*InstrSize, 2) {
		t.Error("out of range accepted")
	}
}
