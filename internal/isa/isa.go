// Package isa defines the synthetic 32-bit instruction set used throughout
// this reproduction. The ISA is deliberately x86-flavoured: it has eight
// general-purpose registers including a hardware stack pointer (ESP) and the
// conventional frame pointer (EBP), push/pop/call/ret instructions that
// implicitly move ESP, two-address arithmetic, condition flags, and memory
// operands of the form base + index*scale + displacement. These are exactly
// the properties the paper's stack-layout analyses depend on: stack
// discipline, register spills, stack-passed arguments, scaled-index array
// addressing, and pointer/integer punning.
//
// Every instruction encodes to a fixed 16-byte form, so code addresses are
// byte addresses that advance in units of InstrSize. This keeps the binary
// image realistic (branch targets are absolute byte addresses inside the
// code section, and jump tables hold code addresses as data) without the
// incidental complexity of variable-length decoding.
package isa

import "fmt"

// Reg names a general-purpose register. The numbering mirrors x86-32 so that
// ESP/EBP keep their conventional roles.
type Reg uint8

// General purpose registers.
const (
	EAX Reg = iota
	ECX
	EDX
	EBX
	ESP
	EBP
	ESI
	EDI

	// NumRegs is the size of the register file.
	NumRegs = 8

	// NoReg marks an absent register slot in a memory operand.
	NoReg Reg = 0xFF
)

var regNames = [NumRegs]string{"eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi"}

func (r Reg) String() string {
	if r == NoReg {
		return "-"
	}
	if int(r) < len(regNames) {
		return regNames[r]
	}
	return fmt.Sprintf("r%d", uint8(r))
}

// Valid reports whether r names an actual register.
func (r Reg) Valid() bool { return r < NumRegs }

// RegByName resolves an assembler-level register name.
func RegByName(name string) (Reg, bool) {
	for i, n := range regNames {
		if n == name {
			return Reg(i), true
		}
	}
	return NoReg, false
}

// CalleeSaved reports whether the platform convention treats r as
// callee-saved. Note that, exactly as §4.1 of the paper stresses, compilers
// may disregard this for internal functions; the dynamic analyses never rely
// on it. It exists for the static baseline and for documentation.
func (r Reg) CalleeSaved() bool {
	switch r {
	case EBX, ESI, EDI, EBP, ESP:
		return true
	}
	return false
}

// Cond is a branch/set condition evaluated against the flags register.
type Cond uint8

// Branch conditions. The L*/G* family is signed, the B*/A* family unsigned,
// mirroring x86 condition codes.
const (
	CondEQ Cond = iota // equal (ZF)
	CondNE             // not equal
	CondLT             // signed <
	CondLE             // signed <=
	CondGT             // signed >
	CondGE             // signed >=
	CondB              // unsigned <
	CondBE             // unsigned <=
	CondA              // unsigned >
	CondAE             // unsigned >=
	NumConds
)

var condNames = [NumConds]string{"eq", "ne", "lt", "le", "gt", "ge", "b", "be", "a", "ae"}

func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cond%d", uint8(c))
}

// Negate returns the condition that is true exactly when c is false.
func (c Cond) Negate() Cond {
	switch c {
	case CondEQ:
		return CondNE
	case CondNE:
		return CondEQ
	case CondLT:
		return CondGE
	case CondLE:
		return CondGT
	case CondGT:
		return CondLE
	case CondGE:
		return CondLT
	case CondB:
		return CondAE
	case CondBE:
		return CondA
	case CondA:
		return CondBE
	case CondAE:
		return CondB
	}
	return c
}

// Op is an instruction opcode.
type Op uint8

// Opcodes. Two-address arithmetic (Dst = Dst op Src / Imm) mirrors x86 and
// is what forces compilers to spill — a behaviour the stack analyses must
// see. MOVLO8/LOADLO8 write only the low byte of the destination and leave
// the upper 24 bits intact; they reproduce the x86 sub-register writes that
// cause the paper's "false derives" (§4.2.3).
const (
	NOP Op = iota

	MOV  // Dst = Src
	MOVI // Dst = Imm

	LOAD   // Dst = mem[Mem], Size bytes, sign/zero extended per Signed
	STORE  // mem[Mem] = Src, Size bytes
	STOREI // mem[Mem] = Imm, Size bytes
	LEA    // Dst = effective address of Mem

	MOVLO8  // Dst = (Dst &^ 0xFF) | (Src & 0xFF)     — sub-register move
	LOADLO8 // Dst = (Dst &^ 0xFF) | mem8[Mem]        — sub-register load

	ADD // Dst = Dst + Src
	SUB // Dst = Dst - Src
	AND // Dst = Dst & Src
	OR  // Dst = Dst | Src
	XOR // Dst = Dst ^ Src
	SHL // Dst = Dst << (Src & 31)
	SHR // Dst = Dst >> (Src & 31) logical
	SAR // Dst = Dst >> (Src & 31) arithmetic
	MUL // Dst = Dst * Src (low 32 bits)
	DIV // Dst = Dst / Src (signed; traps on zero)
	MOD // Dst = Dst % Src (signed; traps on zero)

	ADDI // Dst = Dst + Imm
	SUBI // Dst = Dst - Imm
	ANDI // Dst = Dst & Imm
	ORI  // Dst = Dst | Imm
	XORI // Dst = Dst ^ Imm
	SHLI // Dst = Dst << (Imm & 31)
	SHRI // Dst = Dst >> (Imm & 31) logical
	SARI // Dst = Dst >> (Imm & 31) arithmetic
	MULI // Dst = Dst * Imm
	DIVI // Dst = Dst / Imm (signed)
	MODI // Dst = Dst % Imm (signed)

	NEG // Dst = -Dst
	NOT // Dst = ^Dst

	CMP  // flags <- Dst - Src
	CMPI // flags <- Dst - Imm
	TEST // flags <- Dst & Src
	SET  // Dst = Cond ? 1 : 0

	PUSH  // esp -= 4; mem[esp] = Src
	PUSHI // esp -= 4; mem[esp] = Imm
	POP   // Dst = mem[esp]; esp += 4

	JMP   // pc = Imm (absolute code address)
	JCC   // if Cond { pc = Imm }
	JMPR  // pc = Src (indirect jump; jump tables)
	CALL  // push return address; pc = Imm
	CALLR // push return address; pc = Src (indirect call)
	RET   // pc = pop()

	SYS  // system call; Imm selects the call (see machine package)
	HALT // stop the machine

	NumOps
)

var opNames = [NumOps]string{
	"nop",
	"mov", "movi",
	"load", "store", "storei", "lea",
	"movlo8", "loadlo8",
	"add", "sub", "and", "or", "xor", "shl", "shr", "sar", "mul", "div", "mod",
	"addi", "subi", "andi", "ori", "xori", "shli", "shri", "sari", "muli", "divi", "modi",
	"neg", "not",
	"cmp", "cmpi", "test", "set",
	"push", "pushi", "pop",
	"jmp", "jcc", "jmpr", "call", "callr", "ret",
	"sys", "halt",
}

func (op Op) String() string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	return fmt.Sprintf("op%d", uint8(op))
}

// IsBinOpReg reports whether op is a two-address register-register ALU op.
func (op Op) IsBinOpReg() bool { return op >= ADD && op <= MOD }

// IsBinOpImm reports whether op is a two-address register-immediate ALU op.
func (op Op) IsBinOpImm() bool { return op >= ADDI && op <= MODI }

// ImmForm returns the register-immediate twin of a register-register ALU op.
func (op Op) ImmForm() Op {
	if !op.IsBinOpReg() {
		panic("isa: ImmForm of non-ALU op " + op.String())
	}
	return op - ADD + ADDI
}

// RegForm returns the register-register twin of a register-immediate ALU op.
func (op Op) RegForm() Op {
	if !op.IsBinOpImm() {
		panic("isa: RegForm of non-ALU-imm op " + op.String())
	}
	return op - ADDI + ADD
}

// IsControl reports whether op transfers control.
func (op Op) IsControl() bool {
	switch op {
	case JMP, JCC, JMPR, CALL, CALLR, RET, HALT:
		return true
	}
	return false
}

// MemRef is a memory operand: base + index*scale + disp. Absent registers
// are NoReg; Scale is 1, 2, 4 or 8.
type MemRef struct {
	Base  Reg   // base register (NoReg if absent)
	Index Reg   // index register (NoReg if absent)
	Scale uint8 // index multiplier: 1, 2, 4 or 8
	Disp  int32 // constant displacement
}

// HasBase reports whether the operand includes a base register.
func (m MemRef) HasBase() bool { return m.Base != NoReg }

// HasIndex reports whether the operand includes an index register.
func (m MemRef) HasIndex() bool { return m.Index != NoReg }

func (m MemRef) String() string {
	s := fmt.Sprintf("%d", m.Disp)
	if m.HasBase() {
		s += "(" + m.Base.String()
		if m.HasIndex() {
			s += fmt.Sprintf(",%s,%d", m.Index, m.Scale)
		}
		s += ")"
	} else if m.HasIndex() {
		s += fmt.Sprintf("(,%s,%d)", m.Index, m.Scale)
	}
	return s
}

// Instr is one decoded instruction. Fields that an opcode does not use are
// ignored by the machine and must be zero in canonical encodings (the
// assembler and codegen produce canonical instructions; Decode preserves
// whatever was encoded).
type Instr struct {
	Op     Op     // opcode
	Cond   Cond   // condition for JCC/SETCC/CMOV
	Dst    Reg    // destination register
	Src    Reg    // source register
	Size   uint8  // 1, 2 or 4 for LOAD/STORE/STOREI
	Signed bool   // sign-extend sub-word LOADs
	Imm    int32  // immediate operand
	Mem    MemRef // memory operand
}

// Uses reports the registers an instruction reads.
func (in *Instr) Uses() []Reg {
	var out []Reg
	add := func(r Reg) {
		if r.Valid() {
			out = append(out, r)
		}
	}
	switch {
	case in.Op == MOV || in.Op == PUSH || in.Op == JMPR || in.Op == CALLR:
		add(in.Src)
	case in.Op == MOVLO8:
		add(in.Src)
		add(in.Dst)
	case in.Op == LOAD:
		add(in.Mem.Base)
		add(in.Mem.Index)
	case in.Op == LOADLO8:
		add(in.Mem.Base)
		add(in.Mem.Index)
		add(in.Dst)
	case in.Op == LEA:
		add(in.Mem.Base)
		add(in.Mem.Index)
	case in.Op == STORE:
		add(in.Src)
		add(in.Mem.Base)
		add(in.Mem.Index)
	case in.Op == STOREI:
		add(in.Mem.Base)
		add(in.Mem.Index)
	case in.Op.IsBinOpReg():
		add(in.Dst)
		add(in.Src)
	case in.Op.IsBinOpImm() || in.Op == NEG || in.Op == NOT:
		add(in.Dst)
	case in.Op == CMP || in.Op == TEST:
		add(in.Dst)
		add(in.Src)
	case in.Op == CMPI:
		add(in.Dst)
	}
	if in.Op == PUSH || in.Op == PUSHI || in.Op == POP || in.Op == CALL ||
		in.Op == CALLR || in.Op == RET {
		add(ESP)
	}
	return out
}

// Def returns the register an instruction writes, or NoReg.
func (in *Instr) Def() Reg {
	switch {
	case in.Op == MOV, in.Op == MOVI, in.Op == LOAD, in.Op == LEA,
		in.Op == MOVLO8, in.Op == LOADLO8, in.Op == POP, in.Op == SET:
		return in.Dst
	case in.Op.IsBinOpReg(), in.Op.IsBinOpImm(), in.Op == NEG, in.Op == NOT:
		return in.Dst
	}
	return NoReg
}

func (in *Instr) String() string {
	switch {
	case in.Op == NOP || in.Op == RET || in.Op == HALT:
		return in.Op.String()
	case in.Op == MOV:
		return fmt.Sprintf("mov %s, %s", in.Dst, in.Src)
	case in.Op == MOVI:
		return fmt.Sprintf("movi %s, %d", in.Dst, in.Imm)
	case in.Op == MOVLO8:
		return fmt.Sprintf("movlo8 %s, %s", in.Dst, in.Src)
	case in.Op == LOAD:
		sx := "u"
		if in.Signed {
			sx = "s"
		}
		return fmt.Sprintf("load%d%s %s, %s", in.Size, sx, in.Dst, in.Mem)
	case in.Op == LOADLO8:
		return fmt.Sprintf("loadlo8 %s, %s", in.Dst, in.Mem)
	case in.Op == STORE:
		return fmt.Sprintf("store%d %s, %s", in.Size, in.Mem, in.Src)
	case in.Op == STOREI:
		return fmt.Sprintf("storei%d %s, %d", in.Size, in.Mem, in.Imm)
	case in.Op == LEA:
		return fmt.Sprintf("lea %s, %s", in.Dst, in.Mem)
	case in.Op.IsBinOpReg():
		return fmt.Sprintf("%s %s, %s", in.Op, in.Dst, in.Src)
	case in.Op.IsBinOpImm():
		return fmt.Sprintf("%s %s, %d", in.Op, in.Dst, in.Imm)
	case in.Op == NEG || in.Op == NOT:
		return fmt.Sprintf("%s %s", in.Op, in.Dst)
	case in.Op == CMP:
		return fmt.Sprintf("cmp %s, %s", in.Dst, in.Src)
	case in.Op == CMPI:
		return fmt.Sprintf("cmpi %s, %d", in.Dst, in.Imm)
	case in.Op == TEST:
		return fmt.Sprintf("test %s, %s", in.Dst, in.Src)
	case in.Op == SET:
		return fmt.Sprintf("set%s %s", in.Cond, in.Dst)
	case in.Op == PUSH:
		return fmt.Sprintf("push %s", in.Src)
	case in.Op == PUSHI:
		return fmt.Sprintf("pushi %d", in.Imm)
	case in.Op == POP:
		return fmt.Sprintf("pop %s", in.Dst)
	case in.Op == JMP:
		return fmt.Sprintf("jmp 0x%x", uint32(in.Imm))
	case in.Op == JCC:
		return fmt.Sprintf("j%s 0x%x", in.Cond, uint32(in.Imm))
	case in.Op == JMPR:
		return fmt.Sprintf("jmpr %s", in.Src)
	case in.Op == CALL:
		return fmt.Sprintf("call 0x%x", uint32(in.Imm))
	case in.Op == CALLR:
		return fmt.Sprintf("callr %s", in.Src)
	case in.Op == SYS:
		return fmt.Sprintf("sys %d", in.Imm)
	}
	return in.Op.String()
}
