package isa

import (
	"encoding/binary"
	"fmt"
)

// Fixed 16-byte instruction encoding:
//
//	byte 0    opcode
//	byte 1    condition
//	byte 2    dst register (0xFF if none)
//	byte 3    src register (0xFF if none)
//	byte 4    access size | signed<<7
//	byte 5    mem base register
//	byte 6    mem index register
//	byte 7    mem scale
//	byte 8-11 imm (little-endian int32)
//	byte 12-15 mem disp (little-endian int32)

// Encode writes the instruction into dst, which must be at least InstrSize
// bytes, and returns InstrSize.
func Encode(dst []byte, in *Instr) int {
	_ = dst[InstrSize-1]
	dst[0] = byte(in.Op)
	dst[1] = byte(in.Cond)
	dst[2] = byte(in.Dst)
	dst[3] = byte(in.Src)
	sz := in.Size
	if in.Signed {
		sz |= 0x80
	}
	dst[4] = sz
	dst[5] = byte(in.Mem.Base)
	dst[6] = byte(in.Mem.Index)
	dst[7] = in.Mem.Scale
	binary.LittleEndian.PutUint32(dst[8:], uint32(in.Imm))
	binary.LittleEndian.PutUint32(dst[12:], uint32(in.Mem.Disp))
	return InstrSize
}

// Decode parses one instruction from src, which must be at least InstrSize
// bytes.
func Decode(src []byte) (Instr, error) {
	if len(src) < InstrSize {
		return Instr{}, fmt.Errorf("isa: short instruction: %d bytes", len(src))
	}
	var in Instr
	in.Op = Op(src[0])
	if in.Op >= NumOps {
		return Instr{}, fmt.Errorf("isa: invalid opcode %d", src[0])
	}
	in.Cond = Cond(src[1])
	if in.Cond >= NumConds {
		return Instr{}, fmt.Errorf("isa: invalid condition %d", src[1])
	}
	in.Dst = Reg(src[2])
	in.Src = Reg(src[3])
	in.Size = src[4] & 0x7F
	in.Signed = src[4]&0x80 != 0
	in.Mem.Base = Reg(src[5])
	in.Mem.Index = Reg(src[6])
	in.Mem.Scale = src[7]
	in.Imm = int32(binary.LittleEndian.Uint32(src[8:]))
	in.Mem.Disp = int32(binary.LittleEndian.Uint32(src[12:]))
	return in, nil
}

// EncodeAll encodes a full instruction stream.
func EncodeAll(code []Instr) []byte {
	out := make([]byte, len(code)*InstrSize)
	for i := range code {
		Encode(out[i*InstrSize:], &code[i])
	}
	return out
}

// DecodeAll decodes a full instruction stream.
func DecodeAll(b []byte) ([]Instr, error) {
	if len(b)%InstrSize != 0 {
		return nil, fmt.Errorf("isa: code length %d not a multiple of %d", len(b), InstrSize)
	}
	out := make([]Instr, len(b)/InstrSize)
	for i := range out {
		in, err := Decode(b[i*InstrSize:])
		if err != nil {
			return nil, fmt.Errorf("isa: instruction %d: %w", i, err)
		}
		out[i] = in
	}
	return out, nil
}
