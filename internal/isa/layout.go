package isa

// Address-space layout shared by the machine, the assembler/linker, the
// lifter and the analyses. The map is flat 32-bit:
//
//	CodeBase  .. CodeBase+len(code)   executable image (also readable: jump
//	                                  tables live in data, but code addresses
//	                                  may be loaded as data by PIC idioms)
//	DataBase  ..                      globals and constant data
//	InputBase ..                      harness-provided program inputs
//	HeapBase  ..                      sbrk/malloc region, grows upward
//	StackTop                          initial ESP, stack grows downward
//	ExtBase   ..                      virtual addresses of external (library)
//	                                  functions; CALLs here dispatch natively
const (
	CodeBase  uint32 = 0x0000_1000
	DataBase  uint32 = 0x1000_0000
	InputBase uint32 = 0x1800_0000
	HeapBase  uint32 = 0x2000_0000
	StackTop  uint32 = 0xF000_0000
	ExtBase   uint32 = 0xFF00_0000

	// InstrSize is the fixed encoded size of every instruction.
	InstrSize = 16
)

// IsExtAddr reports whether addr is in the external-function range.
func IsExtAddr(addr uint32) bool { return addr >= ExtBase }

// IsCodeAddr reports whether addr could be a code address for an image with
// n instructions.
func IsCodeAddr(addr uint32, n int) bool {
	return addr >= CodeBase && addr < CodeBase+uint32(n)*InstrSize && (addr-CodeBase)%InstrSize == 0
}
