package coldrec

import (
	"encoding/binary"
	"fmt"

	"wytiwyg/internal/isa"
	"wytiwyg/internal/obj"
)

// tableWindow bounds the backward scan for the jump-table idiom.
const tableWindow = 8

// resolveTable recovers the target set of the indirect jump at pc by
// matching the bounded-jump-table idiom the compiler emits for dense
// switches:
//
//	cmpi  idx, count        ; bound check
//	jae   default
//	load4 tmp, table(,idx,4) ; absolute table base in the data section
//	jmpr  tmp
//
// The scan walks backward from the jmpr, first to the load that defines the
// jump register (failing on any other definition or on intervening control
// flow), then past the guard branch to the cmpi that bounds the index
// register. Without a provable bound the table extent is unknown and the
// candidate is rejected — an unbounded read of the data section could fabricate
// targets. The recovered bound must keep the table inside the data section,
// and every entry must be a valid code address. The guard is assumed to
// dominate the load (true for the idiom); the lifted switch still traps on
// any value outside the recovered set, so a violated assumption degrades to
// a trap, never to silent misexecution.
func (d *scanner) resolveTable(pc, entry uint32) ([]uint32, string) {
	jmpr := &d.img.Code[obj.IndexOf(pc)]

	// Phase 1: find the table load defining the jump register.
	var load *isa.Instr
	cur := pc
	for steps := 0; steps < tableWindow; steps++ {
		if cur == entry || cur == isa.CodeBase {
			break
		}
		cur -= isa.InstrSize
		in := &d.img.Code[obj.IndexOf(cur)]
		if in.Op.IsControl() {
			break // a join point: the defining load is not unique
		}
		if in.Def() == jmpr.Src {
			load = in
			break
		}
	}
	if load == nil || load.Op != isa.LOAD || load.Size != 4 ||
		load.Mem.HasBase() || !load.Mem.HasIndex() || load.Mem.Scale != 4 {
		return nil, fmt.Sprintf("indirect jump at 0x%x does not match the jump-table idiom", pc)
	}
	idx := load.Mem.Index
	tableAddr := uint32(load.Mem.Disp)

	// Phase 2: find the bound guard: the first control instruction above the
	// load must be an unsigned-upper branch, immediately preceded (modulo
	// non-defining instructions) by a cmpi on the index register.
	var bound int64 = -1
	for steps := 0; steps < tableWindow; steps++ {
		if cur == entry || cur == isa.CodeBase {
			break
		}
		cur -= isa.InstrSize
		in := &d.img.Code[obj.IndexOf(cur)]
		if in.Op == isa.JCC && (in.Cond == isa.CondAE || in.Cond == isa.CondA) {
			cmp, reason := d.findGuardCmp(cur, entry, idx)
			if reason != "" {
				return nil, reason
			}
			bound = int64(cmp.Imm)
			if in.Cond == isa.CondA {
				bound++
			}
			break
		}
		if in.Op.IsControl() || in.Def() == idx {
			break
		}
	}
	if bound < 0 {
		return nil, fmt.Sprintf("indirect jump at 0x%x has no provable index bound", pc)
	}
	if bound == 0 || bound > MaxTable {
		return nil, fmt.Sprintf("indirect jump at 0x%x: implausible table bound %d", pc, bound)
	}

	// Phase 3: read the table.
	off := int64(tableAddr) - int64(isa.DataBase)
	if off < 0 || off+4*bound > int64(len(d.img.Data)) {
		return nil, fmt.Sprintf("jump table at 0x%x extends outside the data section", tableAddr)
	}
	var targets []uint32
	for k := int64(0); k < bound; k++ {
		tgt := binary.LittleEndian.Uint32(d.img.Data[off+4*k:])
		if !isa.IsCodeAddr(tgt, d.n) {
			return nil, fmt.Sprintf("jump-table entry %d at 0x%x is not a code address (0x%x)",
				k, tableAddr, tgt)
		}
		targets = append(targets, tgt)
	}
	return sortedUnique(targets), ""
}

// findGuardCmp scans backward from the guard branch for the cmpi that set
// its flags, requiring it to compare the table index register and to reach
// the branch with the index unmodified.
func (d *scanner) findGuardCmp(branch, entry uint32, idx isa.Reg) (*isa.Instr, string) {
	cur := branch
	for steps := 0; steps < tableWindow; steps++ {
		if cur == entry || cur == isa.CodeBase {
			break
		}
		cur -= isa.InstrSize
		in := &d.img.Code[obj.IndexOf(cur)]
		if in.Op == isa.CMPI && in.Dst == idx {
			return in, ""
		}
		if in.Op.IsControl() || in.Op == isa.CMP || in.Op == isa.TEST || in.Def() == idx {
			break
		}
	}
	return nil, fmt.Sprintf("table guard at 0x%x does not bound the index register %s", branch, idx)
}
