package coldrec

import (
	"reflect"
	"strings"
	"testing"

	"wytiwyg/internal/asm"
	"wytiwyg/internal/funcrec"
	"wytiwyg/internal/isa"
	"wytiwyg/internal/machine"
	"wytiwyg/internal/obj"
	"wytiwyg/internal/tracer"
)

// discoverAsm assembles src, traces it on the empty input and runs discovery.
func discoverAsm(t *testing.T, src string) (*obj.Image, *tracer.CFG, *funcrec.Result, *Result) {
	t.Helper()
	img, err := asm.Assemble("t", src, "")
	if err != nil {
		t.Fatal(err)
	}
	return discoverImg(t, img)
}

func discoverImg(t *testing.T, img *obj.Image) (*obj.Image, *tracer.CFG, *funcrec.Result, *Result) {
	t.Helper()
	tr := tracer.New(img)
	if _, err := tr.Run(machine.Input{}, nil); err != nil {
		t.Fatal(err)
	}
	cfg, err := tr.BuildCFG()
	if err != nil {
		t.Fatal(err)
	}
	rec, err := funcrec.Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return img, cfg, rec, Discover(img, cfg.Trace, rec)
}

func rejection(res *Result, name string) (Rejection, bool) {
	for _, r := range res.Rejected {
		if r.Name == name {
			return r, true
		}
	}
	return Rejection{}, false
}

const hotPrefix = `
main:
    pushi 5
    call hot
    addi esp, 4
    halt
hot:
    load4 eax, [esp+4]
    addi eax, 1
    ret
`

func TestDiscoverSimpleCold(t *testing.T) {
	img, _, _, res := discoverAsm(t, hotPrefix+`
cold_add:
    load4 eax, [esp+4]
    load4 ecx, [esp+8]
    add eax, ecx
    ret
`)
	if len(res.Rejected) != 0 {
		t.Fatalf("unexpected rejections: %+v", res.Rejected)
	}
	if len(res.Cands) != 1 {
		t.Fatalf("got %d candidates, want 1", len(res.Cands))
	}
	c := res.Cands[0]
	addr, _ := img.SymAddr("cold_add")
	if c.Entry != addr || c.Name != "cold_add" {
		t.Errorf("candidate %s@%#x, want cold_add@%#x", c.Name, c.Entry, addr)
	}
	if c.Instrs != 4 {
		t.Errorf("Instrs = %d, want 4", c.Instrs)
	}
	if !c.LiveIn[isa.ESP] {
		t.Error("ESP not live at entry of a stack-argument leaf")
	}
}

// A register written on every path before RET is not an entry argument; one
// merely preserved (never written) must stay live-in so the refinement keeps
// it as a pass-through argument.
func TestLivenessKillsWrittenRegs(t *testing.T) {
	_, _, _, res := discoverAsm(t, hotPrefix+`
cold_w:
    movi eax, 7
    ret
`)
	if len(res.Cands) != 1 {
		t.Fatalf("got %d candidates, want 1 (%+v)", len(res.Cands), res.Rejected)
	}
	c := res.Cands[0]
	if c.LiveIn[isa.EAX] {
		t.Error("EAX live at entry despite being written first")
	}
	if !c.LiveIn[isa.EBX] {
		t.Error("preserved EBX not live at entry (pass-through must survive)")
	}
}

func TestRejectSyscall(t *testing.T) {
	_, _, _, res := discoverAsm(t, hotPrefix+`
cold_sys:
    sys 1
    ret
`)
	r, ok := rejection(res, "cold_sys")
	if !ok {
		t.Fatalf("cold_sys not rejected; candidates %+v", res.Cands)
	}
	if !strings.Contains(r.Reason, "syscall") {
		t.Errorf("reason %q, want syscall mention", r.Reason)
	}
}

func TestRejectVariadicExternal(t *testing.T) {
	_, _, _, res := discoverAsm(t, hotPrefix+`
cold_pr:
    movi eax, fmtstr
    push eax
    call @printf
    addi esp, 4
    ret

.data
fmtstr: .asciz "x"
`)
	r, ok := rejection(res, "cold_pr")
	if !ok {
		t.Fatalf("cold_pr not rejected; candidates %+v", res.Cands)
	}
	if !strings.Contains(r.Reason, "variadic") {
		t.Errorf("reason %q, want variadic mention", r.Reason)
	}
}

func TestCascadeRejection(t *testing.T) {
	_, _, _, res := discoverAsm(t, hotPrefix+`
cold_caller:
    call cold_sys
    ret
cold_sys:
    sys 1
    ret
`)
	if len(res.Cands) != 0 {
		t.Fatalf("candidates survived: %+v", res.Cands)
	}
	r, ok := rejection(res, "cold_caller")
	if !ok {
		t.Fatal("cold_caller not rejected")
	}
	if !strings.Contains(r.Reason, "calls rejected candidate") {
		t.Errorf("reason %q, want cascade mention", r.Reason)
	}
}

func TestJumpTableResolved(t *testing.T) {
	img, _, _, res := discoverAsm(t, hotPrefix+`
cold_tbl:
    load4 eax, [esp+4]
    cmpi eax, 3
    jae .tbl_def
    load4 ecx, [eax*4+tbl]
    jmpr ecx
.tbl_c0:
    movi eax, 10
    ret
.tbl_c1:
    movi eax, 20
    ret
.tbl_c2:
    movi eax, 30
    ret
.tbl_def:
    movi eax, 0
    ret

.data
tbl: .table .tbl_c0, .tbl_c1, .tbl_c2
`)
	if len(res.Cands) != 1 {
		t.Fatalf("got %d candidates, want 1 (%+v)", len(res.Cands), res.Rejected)
	}
	c := res.Cands[0]
	// Entry block + dispatch block + 3 cases + default.
	if len(c.Starts) != 6 {
		t.Errorf("got %d blocks, want 6: %#v", len(c.Starts), c.Starts)
	}
	// The dispatch block must list all three table targets as successors.
	entry, _ := img.SymAddr("cold_tbl")
	disp := c.Blocks[entry+3*isa.InstrSize]
	if disp == nil || len(disp.Succs) != 3 {
		t.Fatalf("dispatch block %+v, want 3 successors", disp)
	}
}

func TestJumpTableUnbounded(t *testing.T) {
	_, _, _, res := discoverAsm(t, hotPrefix+`
cold_nb:
    load4 ecx, [eax*4+tbl]
    jmpr ecx
.nb_c0:
    ret

.data
tbl: .table .nb_c0
`)
	r, ok := rejection(res, "cold_nb")
	if !ok {
		t.Fatalf("cold_nb not rejected; candidates %+v", res.Cands)
	}
	if !strings.Contains(r.Reason, "bound") {
		t.Errorf("reason %q, want bound mention", r.Reason)
	}
}

func TestOverlapRejected(t *testing.T) {
	_, _, _, res := discoverAsm(t, hotPrefix+`
cold_x:
    movi eax, 1
    jmp .shmid
cold_y:
    movi eax, 2
    jmp .shmid
.shmid:
    addi eax, 5
    ret
`)
	if len(res.Cands) != 0 {
		t.Fatalf("candidates survived overlap: %+v", res.Cands)
	}
	for _, name := range []string{"cold_x", "cold_y"} {
		r, ok := rejection(res, name)
		if !ok {
			t.Fatalf("%s not rejected", name)
		}
		if !strings.Contains(r.Reason, "shared") {
			t.Errorf("%s reason %q, want sharing mention", name, r.Reason)
		}
	}
}

// An indirect call dispatches over the statically taken entries; with at
// least one recovered taken entry the caller is admitted and the dispatch
// set is exposed.
func TestIndirectCallDispatch(t *testing.T) {
	b := asm.NewBuilder("t")
	b.Func("main")
	b.MovLabelAddr(isa.EBX, "cold_tgt") // taken address in traced code
	b.MovI(isa.EAX, 0)
	b.Halt()
	b.Func("cold_disp")
	b.MovLabelAddr(isa.ECX, "cold_tgt")
	b.CallR(isa.ECX)
	b.Ret()
	b.Func("cold_tgt")
	b.MovI(isa.EAX, 42)
	b.Ret()
	img, err := b.Link("main")
	if err != nil {
		t.Fatal(err)
	}
	img, _, _, res := discoverImg(t, img)
	if len(res.Cands) != 2 {
		t.Fatalf("got %d candidates, want 2 (%+v)", len(res.Cands), res.Rejected)
	}
	tgt, _ := img.SymAddr("cold_tgt")
	if !res.ByEntry(tgt).AddressTaken {
		t.Error("cold_tgt not marked address-taken")
	}
	if len(res.Dispatch) != 1 || res.Dispatch[0] != tgt {
		t.Errorf("dispatch %v, want [%#x]", res.Dispatch, tgt)
	}
	disp, _ := img.SymAddr("cold_disp")
	if c := res.ByEntry(disp); len(c.CallRSites) != 1 {
		t.Errorf("cold_disp CallRSites %v, want one site", c.CallRSites)
	}
}

// Without any recovered taken entry, an indirect call site cannot be lowered
// and its function is rejected.
func TestIndirectCallNoTargets(t *testing.T) {
	_, _, _, res := discoverAsm(t, hotPrefix+`
cold_disp:
    callr ecx
    ret
`)
	r, ok := rejection(res, "cold_disp")
	if !ok {
		t.Fatalf("cold_disp not rejected; candidates %+v", res.Cands)
	}
	if !strings.Contains(r.Reason, "no recovered targets") {
		t.Errorf("reason %q, want dispatch mention", r.Reason)
	}
}

// Merge must be fully reversible: after Unmerge the CFG and function set are
// byte-identical to the pre-merge state (the lift-failure rollback path).
func TestMergeUnmergeRoundtrip(t *testing.T) {
	_, cfg, rec, res := discoverAsm(t, hotPrefix+`
cold_add:
    load4 eax, [esp+4]
    addi eax, 3
    ret
`)
	if len(res.Cands) != 1 {
		t.Fatalf("got %d candidates, want 1 (%+v)", len(res.Cands), res.Rejected)
	}
	preBlocks := len(cfg.Blocks)
	preFuncs := len(rec.Funcs)
	Merge(cfg, rec, res)
	if len(cfg.Blocks) == preBlocks {
		t.Error("merge added no blocks")
	}
	entry := res.Cands[0].Entry
	if rec.ByEntry[entry] == nil || rec.Owner[entry] == nil {
		t.Error("merged function not registered")
	}
	Unmerge(cfg, rec, res)
	if len(cfg.Blocks) != preBlocks || len(rec.Funcs) != preFuncs {
		t.Errorf("unmerge left %d blocks / %d funcs, want %d / %d",
			len(cfg.Blocks), len(rec.Funcs), preBlocks, preFuncs)
	}
	if rec.ByEntry[entry] != nil || rec.Owner[entry] != nil {
		t.Error("unmerge left the cold function registered")
	}
}

// Discovery must be a pure function of the image and trace: two runs yield
// deeply equal results (guards the sorted-iteration discipline).
func TestDiscoverDeterministic(t *testing.T) {
	src := hotPrefix + `
cold_a:
    call cold_b
    ret
cold_b:
    load4 eax, [esp+4]
    ret
cold_bad:
    sys 3
    ret
`
	_, _, _, res1 := discoverAsm(t, src)
	_, _, _, res2 := discoverAsm(t, src)
	if !reflect.DeepEqual(res1.Rejected, res2.Rejected) {
		t.Errorf("rejections differ: %+v vs %+v", res1.Rejected, res2.Rejected)
	}
	if len(res1.Cands) != len(res2.Cands) {
		t.Fatalf("candidate counts differ: %d vs %d", len(res1.Cands), len(res2.Cands))
	}
	for i := range res1.Cands {
		a, b := res1.Cands[i], res2.Cands[i]
		if a.Entry != b.Entry || !reflect.DeepEqual(a.Starts, b.Starts) ||
			a.LiveIn != b.LiveIn || !reflect.DeepEqual(a.calls, b.calls) {
			t.Errorf("candidate %d differs: %+v vs %+v", i, a, b)
		}
	}
}
