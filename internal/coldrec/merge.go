package coldrec

import (
	"sort"

	"wytiwyg/internal/funcrec"
	"wytiwyg/internal/isa"
	"wytiwyg/internal/tracer"
)

// mergeLog records everything Merge added, so Unmerge can restore the
// dynamic structures exactly if lifting the merged module fails.
type mergeLog struct {
	merged    bool
	blocks    []uint32 // keys added to cfg.Blocks
	funcs     []uint32 // entries added to rec (Funcs/ByEntry)
	tails     []uint32 // sites added to cfg.TailJumps and rec.TailCalls
	callSites []uint32 // sites whose CallTargets map Merge created
	callPairs [][2]uint32
}

// Merge splices the accepted candidates into the dynamic structures in
// place: cold blocks join the CFG, cold functions join the recovery result,
// cold tail sites join the tail-jump sets, and indirect-call dispatch sets —
// both at cold call sites and at traced ones — are widened with the
// recovered address-taken entries so an indirect call can reach an
// admitted cold function instead of trapping. Traced functions' bodies are
// never touched. The additions are recorded so Unmerge can undo them.
func Merge(cfg *tracer.CFG, rec *funcrec.Result, res *Result) {
	t := cfg.Trace
	log := &res.log
	log.merged = true
	for _, c := range res.Cands {
		for _, start := range c.Starts {
			cfg.Blocks[start] = c.Blocks[start]
			log.blocks = append(log.blocks, start)
		}
		fn := &funcrec.Function{Name: c.Name, Entry: c.Entry, Blocks: entryFirst(c.Entry, c.Starts)}
		rec.Funcs = append(rec.Funcs, fn)
		rec.ByEntry[c.Entry] = fn
		for _, start := range c.Starts {
			rec.Owner[start] = fn
		}
		log.funcs = append(log.funcs, c.Entry)
		for _, site := range c.TailSites {
			if !cfg.TailJumps[site] {
				cfg.TailJumps[site] = true
				rec.TailCalls[site] = true
				log.tails = append(log.tails, site)
			}
		}
		for _, site := range c.CallRSites {
			res.widen(t, site)
		}
	}
	// Traced indirect call sites only observed the targets the traced
	// inputs exercised; other inputs may dispatch to a recovered cold
	// function through the same site.
	for i := range t.Img.Code {
		if t.Img.Code[i].Op != isa.CALLR {
			continue
		}
		if site := isa.CodeBase + uint32(i)*isa.InstrSize; t.Executed[site] {
			res.widen(t, site)
		}
	}
	sort.Slice(rec.Funcs, func(i, j int) bool { return rec.Funcs[i].Entry < rec.Funcs[j].Entry })
}

// widen adds the recovered dispatch set to the call site's target set,
// logging each addition.
func (r *Result) widen(t *tracer.Trace, site uint32) {
	s := t.CallTargets[site]
	if s == nil {
		s = make(map[uint32]bool)
		t.CallTargets[site] = s
		r.log.callSites = append(r.log.callSites, site)
	}
	for _, e := range r.Dispatch {
		if !s[e] {
			s[e] = true
			r.log.callPairs = append(r.log.callPairs, [2]uint32{site, e})
		}
	}
}

// Unmerge restores the structures Merge modified: the all-or-nothing safety
// net for a lift failure over the merged module.
func Unmerge(cfg *tracer.CFG, rec *funcrec.Result, res *Result) {
	if !res.log.merged {
		return
	}
	t := cfg.Trace
	for _, start := range res.log.blocks {
		delete(cfg.Blocks, start)
		delete(rec.Owner, start)
	}
	drop := make(map[uint32]bool, len(res.log.funcs))
	for _, e := range res.log.funcs {
		delete(rec.ByEntry, e)
		drop[e] = true
	}
	kept := rec.Funcs[:0]
	for _, fn := range rec.Funcs {
		if !drop[fn.Entry] {
			kept = append(kept, fn)
		}
	}
	rec.Funcs = kept
	for _, site := range res.log.tails {
		delete(cfg.TailJumps, site)
		delete(rec.TailCalls, site)
	}
	for _, pair := range res.log.callPairs {
		if s := t.CallTargets[pair[0]]; s != nil {
			delete(s, pair[1])
		}
	}
	for _, site := range res.log.callSites {
		delete(t.CallTargets, site)
	}
	res.log = mergeLog{}
}

// entryFirst orders block starts the way funcrec does: the entry first, the
// rest ascending.
func entryFirst(entry uint32, starts []uint32) []uint32 {
	out := make([]uint32, 0, len(starts))
	out = append(out, entry)
	for _, s := range starts {
		if s != entry {
			out = append(out, s)
		}
	}
	return out
}
