package coldrec

import (
	"fmt"
	"sort"

	"wytiwyg/internal/extdb"
	"wytiwyg/internal/funcrec"
	"wytiwyg/internal/isa"
	"wytiwyg/internal/obj"
	"wytiwyg/internal/tracer"
)

// scanner holds the shared state of one discovery run.
type scanner struct {
	img *obj.Image
	t   *tracer.Trace
	rec *funcrec.Result
	n   int // instruction count of the code section
}

// scanSeeds collects the candidate entry set from statically visible
// evidence: direct call targets anywhere in the code section, code addresses
// materialized as immediates (taken function addresses: the only way this ISA
// can form an indirect-call target), and symbol-table entries. Synthetic
// "__"-prefixed symbols (codegen's stub markers) are skipped so re-lifting a
// recompiled binary does not chase its own stubs.
func (d *scanner) scanSeeds() (seeds, taken map[uint32]bool) {
	seeds = make(map[uint32]bool)
	taken = make(map[uint32]bool)
	for i := range d.img.Code {
		in := &d.img.Code[i]
		switch in.Op {
		case isa.CALL:
			if tgt := uint32(in.Imm); isa.IsCodeAddr(tgt, d.n) {
				seeds[tgt] = true
			}
		case isa.MOVI, isa.PUSHI, isa.STOREI:
			if tgt := uint32(in.Imm); isa.IsCodeAddr(tgt, d.n) {
				seeds[tgt] = true
				taken[tgt] = true
			}
		}
	}
	for _, s := range d.img.Syms {
		if len(s.Name) >= 2 && s.Name[:2] == "__" {
			continue
		}
		if isa.IsCodeAddr(s.Addr, d.n) {
			seeds[s.Addr] = true
		}
	}
	return seeds, taken
}

// instrFact is the per-instruction record of the plausibility walk.
type instrFact struct {
	in *isa.Instr
	// succs are the intra-procedural successor addresses (reachability
	// edges; tail-call targets excluded).
	succs []uint32
	// branchTargets are explicit jump/branch/table targets (block leaders).
	branchTargets []uint32
	// tailTarget is the tail-called entry when tail is set.
	tailTarget uint32
	// callTarget is the direct internal call target when hasCall is set.
	callTarget uint32
	tail       bool
	hasCall    bool
	indirect   bool
	ret        bool
	callSite   bool
}

// build runs the Datalog-Disassembly-style plausibility pass for one
// candidate entry: recursive descent over intra-procedural successors with
// per-instruction validation. It returns the candidate, or a non-empty
// rejection reason.
func (d *scanner) build(entry uint32, all map[uint32]bool) (*Candidate, string) {
	c := &Candidate{
		Entry:  entry,
		Name:   nameAt(d.img, entry),
		Blocks: make(map[uint32]*tracer.Block),
	}
	facts := make(map[uint32]*instrFact)
	work := []uint32{entry}
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		if facts[pc] != nil {
			continue
		}
		if len(facts) >= MaxBody {
			return nil, fmt.Sprintf("body exceeds %d instructions", MaxBody)
		}
		if !isa.IsCodeAddr(pc, d.n) {
			return nil, fmt.Sprintf("control reaches 0x%x outside the code section", pc)
		}
		if d.t.Executed[pc] {
			return nil, fmt.Sprintf("overlaps traced code at 0x%x", pc)
		}
		f, reason := d.classify(pc, entry, all)
		if reason != "" {
			return nil, reason
		}
		facts[pc] = f
		work = append(work, f.succs...)
	}
	c.Instrs = len(facts)

	// Sorted walk over the facts keeps every derived list deterministic.
	pcs := make([]uint32, 0, len(facts))
	for pc := range facts {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	callSet := make(map[uint32]bool)
	for _, pc := range pcs {
		f := facts[pc]
		if f.tail {
			c.TailSites = append(c.TailSites, pc)
			callSet[f.tailTarget] = true
		}
		if f.hasCall {
			callSet[f.callTarget] = true
		}
		if f.indirect {
			c.CallRSites = append(c.CallRSites, pc)
		}
	}
	for tgt := range callSet {
		c.calls = append(c.calls, tgt)
	}
	sort.Slice(c.calls, func(i, j int) bool { return c.calls[i] < c.calls[j] })

	buildBlocks(c, entry, pcs, facts)
	if reason := checkFlags(c, facts); reason != "" {
		return nil, reason
	}
	c.LiveIn = liveness(c, facts)
	return c, ""
}

// classify validates one instruction and computes its control-flow facts.
// entry is the candidate's own entry; all is the full (traced + seed)
// function-entry set fixing the boundary classification.
func (d *scanner) classify(pc, entry uint32, all map[uint32]bool) (*instrFact, string) {
	in := &d.img.Code[obj.IndexOf(pc)]
	f := &instrFact{in: in}
	next := pc + isa.InstrSize
	fallsTo := func() string {
		if !isa.IsCodeAddr(next, d.n) {
			return fmt.Sprintf("falls off the end of the code section at 0x%x", pc)
		}
		if all[next] && next != entry {
			return fmt.Sprintf("falls through into function entry 0x%x", next)
		}
		f.succs = append(f.succs, next)
		return ""
	}
	switch in.Op {
	case isa.SYS:
		// The lifter has no model for a syscall in recompiled code (traced
		// programs only reach one through the runtime veneer).
		return nil, fmt.Sprintf("syscall at 0x%x", pc)
	case isa.JMP:
		tgt := uint32(in.Imm)
		if !isa.IsCodeAddr(tgt, d.n) {
			return nil, fmt.Sprintf("jump to 0x%x outside the code section", tgt)
		}
		if all[tgt] {
			// Mirror funcrec: a jump to a function entry is a tail call
			// (including self tail calls).
			f.tail, f.tailTarget = true, tgt
		} else {
			f.succs = append(f.succs, tgt)
			f.branchTargets = append(f.branchTargets, tgt)
		}
	case isa.JCC:
		tgt := uint32(in.Imm)
		if !isa.IsCodeAddr(tgt, d.n) {
			return nil, fmt.Sprintf("branch to 0x%x outside the code section", tgt)
		}
		if all[tgt] && tgt != entry {
			return nil, fmt.Sprintf("conditional branch into function entry 0x%x", tgt)
		}
		f.succs = append(f.succs, tgt)
		f.branchTargets = append(f.branchTargets, tgt)
		if reason := fallsTo(); reason != "" {
			return nil, reason
		}
	case isa.JMPR:
		targets, reason := d.resolveTable(pc, entry)
		if reason != "" {
			return nil, reason
		}
		for _, tgt := range targets {
			if all[tgt] {
				return nil, fmt.Sprintf("jump-table target 0x%x is a function entry", tgt)
			}
		}
		f.succs = targets
		f.branchTargets = targets
	case isa.CALL:
		tgt := uint32(in.Imm)
		if isa.IsExtAddr(tgt) {
			name, ok := d.img.ExtName(tgt)
			if !ok {
				return nil, fmt.Sprintf("call to unresolved external 0x%x", tgt)
			}
			sig, ok := extdb.Lookup(name)
			if !ok {
				return nil, fmt.Sprintf("call to unknown external %q", name)
			}
			if sig.Variadic {
				// Only tracing can recover per-site variadic argument
				// counts; a static guess would miscompile.
				return nil, fmt.Sprintf("variadic external call to %q at 0x%x", name, pc)
			}
		} else {
			if !isa.IsCodeAddr(tgt, d.n) {
				return nil, fmt.Sprintf("call to 0x%x outside the code section", tgt)
			}
			f.hasCall, f.callTarget = true, tgt
		}
		f.callSite = true
		if reason := fallsTo(); reason != "" {
			return nil, reason
		}
	case isa.CALLR:
		f.callSite = true
		f.indirect = true
		if reason := fallsTo(); reason != "" {
			return nil, reason
		}
	case isa.RET:
		f.ret = true
	case isa.HALT:
	default:
		if reason := fallsTo(); reason != "" {
			return nil, reason
		}
	}
	return f, ""
}

// buildBlocks derives basic blocks over the validated body, mirroring
// tracer.BuildCFG's leader rules so merged cold blocks are shaped exactly
// like traced ones. Tail-call targets appear in Succs (as BuildCFG records
// them) but never created the reachability edge.
func buildBlocks(c *Candidate, entry uint32, pcs []uint32, facts map[uint32]*instrFact) {
	leaders := map[uint32]bool{entry: true}
	for _, pc := range pcs {
		f := facts[pc]
		for _, tgt := range f.branchTargets {
			leaders[tgt] = true
		}
		if f.in.Op.IsControl() && facts[pc+isa.InstrSize] != nil {
			leaders[pc+isa.InstrSize] = true
		}
	}
	for start := range leaders {
		if facts[start] == nil {
			continue
		}
		blk := &tracer.Block{Start: start}
		pc := start
		for {
			f := facts[pc]
			next := pc + isa.InstrSize
			if f.in.Op.IsControl() {
				blk.End = pc
				switch {
				case f.tail:
					blk.Succs = []uint32{f.tailTarget}
				case f.in.Op == isa.JMP, f.in.Op == isa.JMPR, f.in.Op == isa.JCC:
					blk.Succs = sortedUnique(f.succs)
				case f.callSite:
					blk.CallSite = true
					blk.Succs = []uint32{next}
				case f.ret:
					blk.IsRet = true
				}
				break
			}
			if leaders[next] {
				blk.End = pc
				blk.Succs = []uint32{next}
				break
			}
			pc = next
		}
		c.Blocks[start] = blk
	}
	for start := range c.Blocks {
		c.Starts = append(c.Starts, start)
	}
	sort.Slice(c.Starts, func(i, j int) bool { return c.Starts[i] < c.Starts[j] })
}

func sortedUnique(in []uint32) []uint32 {
	out := append([]uint32(nil), in...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	k := 0
	for i, v := range out {
		if i == 0 || v != out[k-1] {
			out[k] = v
			k++
		}
	}
	return out[:k]
}

// checkFlags enforces the lifter's per-block flags discipline: every
// conditional consumer (JCC, SET) must see a CMP/CMPI/TEST earlier in its
// own block.
func checkFlags(c *Candidate, facts map[uint32]*instrFact) string {
	for _, start := range c.Starts {
		b := c.Blocks[start]
		set := false
		for pc := b.Start; pc <= b.End; pc += isa.InstrSize {
			switch in := facts[pc].in; in.Op {
			case isa.CMP, isa.CMPI, isa.TEST:
				set = true
			case isa.JCC, isa.SET:
				if !set {
					return fmt.Sprintf("condition at 0x%x consumed without flags set in its block", pc)
				}
			}
		}
	}
	return ""
}

// liveness computes the may-read-before-write register set at the entry — the
// static argument estimate. Calls conservatively read every register (the
// callee's demands are unknown here); RET reads every register so that
// registers the body merely preserves stay classified as pass-through
// arguments rather than being severed from the caller (regsave would replace
// a dropped parameter with zero, which would break caller-observed
// preservation). External calls read ESP (arguments travel on the stack) and
// define EAX; HALT reads EAX (the exit code).
func liveness(c *Candidate, facts map[uint32]*instrFact) [isa.NumRegs]bool {
	type regSet = uint8 // bitmask over the 8 registers
	const allRegs = regSet(0xFF)

	transfer := func(f *instrFact, live regSet) regSet {
		in := f.in
		switch {
		case f.tail, in.Op == isa.CALLR, f.hasCall:
			return allRegs
		case in.Op == isa.CALL: // external (internal is hasCall)
			live &^= 1 << isa.EAX // the call defines the return register
			live |= 1 << isa.ESP
			return live
		case in.Op == isa.RET:
			return allRegs
		case in.Op == isa.HALT:
			return 1 << isa.EAX
		}
		if def := in.Def(); def.Valid() {
			live &^= 1 << def
		}
		for _, r := range in.Uses() {
			live |= 1 << r
		}
		return live
	}

	liveIn := make(map[uint32]regSet, len(c.Starts))
	for changed := true; changed; {
		changed = false
		// Reverse address order converges fast on mostly-forward CFGs.
		for i := len(c.Starts) - 1; i >= 0; i-- {
			b := c.Blocks[c.Starts[i]]
			var out regSet
			f := facts[b.End]
			if !f.tail && !f.ret && f.in.Op != isa.HALT {
				for _, s := range b.Succs {
					out |= liveIn[s]
				}
			}
			for pc := b.End; ; pc -= isa.InstrSize {
				out = transfer(facts[pc], out)
				if pc == b.Start {
					break
				}
			}
			if out != liveIn[b.Start] {
				liveIn[b.Start] = out
				changed = true
			}
		}
	}
	var out [isa.NumRegs]bool
	entryLive := liveIn[c.Entry]
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		out[r] = entryLive&(1<<r) != 0
	}
	return out
}
