// Package coldrec statically recovers untraced ("cold") code. The dynamic
// pipeline only lifts what the traces executed; every other path in the
// recompiled binary is a trap stub. This package is the static half of the
// hybrid-coverage story (ROADMAP "Hybrid static+dynamic coverage"): starting
// from statically visible call targets, taken function addresses and unexecuted
// symbols, it recursively disassembles candidate functions from the binary
// image with a Datalog-Disassembly-style inference pass — instruction
// plausibility, jump-table resolution, invalid-fallthrough and overlap
// rejection — and merges the survivors into the dynamic CFG so the existing
// lifter can lift them alongside the traced functions.
//
// Discovery is deliberately conservative: a candidate that cannot be proven
// liftable (an unresolved indirect jump, a variadic external call whose
// argument count only tracing could observe, code shared with another
// candidate or with traced blocks) is rejected with a recorded reason and its
// callers cascade-reject with it. Rejection is never fatal — a rejected
// target simply stays behind the same trap stub it would have had without
// static recovery. Admission of the survivors' stack layouts is a separate,
// later judgment: core runs internal/vsa over each lifted cold function and
// degrades those whose frame accesses it cannot prove in-bounds and
// non-escaping (the fallback ladder traced → static-verified → trap stub).
package coldrec

import (
	"fmt"
	"sort"

	"wytiwyg/internal/funcrec"
	"wytiwyg/internal/isa"
	"wytiwyg/internal/obj"
	"wytiwyg/internal/tracer"
)

// MaxBody bounds a candidate's instruction count; larger bodies are rejected
// (runaway disassembly of non-code).
const MaxBody = 4096

// MaxTable bounds the entry count of a recognized jump table.
const MaxTable = 1024

// Candidate is one statically recovered cold function that passed the
// plausibility pass.
type Candidate struct {
	// Entry is the function's entry address.
	Entry uint32
	// Name is the symbol name at Entry, or fn_<hex>.
	Name string
	// Blocks holds the constructed basic blocks, keyed by start address.
	Blocks map[uint32]*tracer.Block
	// Starts lists the block start addresses, sorted ascending.
	Starts []uint32
	// AddressTaken marks entries whose address appears as an immediate
	// somewhere in the code section (a statically visible function pointer).
	AddressTaken bool
	// LiveIn marks the registers that may be read before being written on
	// some path from the entry — the static argument estimate seeded into
	// the saved-register refinement.
	LiveIn [isa.NumRegs]bool
	// TailSites lists block-end addresses classified as tail calls.
	TailSites []uint32
	// CallRSites lists the addresses of indirect call instructions in the
	// body; they dispatch over the address-taken entry set.
	CallRSites []uint32
	// Instrs counts the body's instructions.
	Instrs int

	// calls lists internal direct-call and tail-call target entries, for
	// cascade rejection.
	calls []uint32
}

// Rejection records one candidate the plausibility pass refused, with the
// reason (surfaced in reports; the target keeps its trap stub).
type Rejection struct {
	// Entry is the rejected candidate's entry address.
	Entry uint32
	// Name is the symbol name at Entry, or fn_<hex>.
	Name string
	// Reason says why the candidate was rejected.
	Reason string
}

// Result is the outcome of static discovery over one image.
type Result struct {
	// Cands lists the accepted candidates, sorted by entry address.
	Cands []*Candidate
	// Rejected lists refused candidates, sorted by entry address.
	Rejected []Rejection
	// Seeds counts the distinct cold entry addresses discovery started from.
	Seeds int
	// Dispatch lists the recovered address-taken entries — traced functions
	// and accepted candidates — that indirect calls may reach, sorted.
	Dispatch []uint32

	log mergeLog
}

// ByEntry returns the accepted candidate at an entry, or nil.
func (r *Result) ByEntry(entry uint32) *Candidate {
	for _, c := range r.Cands {
		if c.Entry == entry {
			return c
		}
	}
	return nil
}

// nameAt mirrors funcrec's naming: the symbol at the entry or fn_<hex>.
func nameAt(img *obj.Image, entry uint32) string {
	if n, ok := img.SymName(entry); ok {
		return n
	}
	return fmt.Sprintf("fn_%x", entry)
}

// Discover scans the image for cold function candidates, validates each with
// the plausibility pass, and resolves the cascade: candidates calling or
// tail-calling a rejected candidate are rejected with it, and indirect calls
// require a non-empty recovered dispatch set. The result depends only on the
// image and the trace, never on iteration order.
func Discover(img *obj.Image, t *tracer.Trace, rec *funcrec.Result) *Result {
	d := &scanner{img: img, t: t, rec: rec, n: len(img.Code)}
	seeds, taken := d.scanSeeds()

	// The full entry set — traced entries plus every cold seed — fixes the
	// function-boundary classification (tail calls, branches into other
	// functions) before any candidate is built.
	all := make(map[uint32]bool, len(seeds)+len(rec.ByEntry))
	for e := range rec.ByEntry {
		all[e] = true
	}
	var cold []uint32
	for e := range seeds {
		all[e] = true
		if rec.ByEntry[e] == nil {
			cold = append(cold, e)
		}
	}
	sort.Slice(cold, func(i, j int) bool { return cold[i] < cold[j] })

	res := &Result{Seeds: len(cold)}
	cands := make(map[uint32]*Candidate, len(cold))
	rejected := make(map[uint32]string)
	for _, e := range cold {
		c, reason := d.build(e, all)
		if reason != "" {
			rejected[e] = reason
			continue
		}
		c.AddressTaken = taken[e]
		cands[e] = c
	}

	// Overlap resolution: candidates sharing any instruction are all
	// rejected (single ownership, mirroring funcrec's split discipline —
	// but without a dynamic trace to arbitrate, sharing is a stub).
	owners := make(map[uint32]int)
	for _, c := range cands {
		for _, pc := range c.bodyPCs() {
			owners[pc]++
		}
	}
	for _, e := range cold {
		c := cands[e]
		if c == nil {
			continue
		}
		for _, pc := range c.bodyPCs() {
			if owners[pc] > 1 {
				rejected[e] = fmt.Sprintf("code at 0x%x shared with another candidate", pc)
				delete(cands, e)
				break
			}
		}
	}

	// Cascade fixpoint: rejecting a callee rejects its static callers, and
	// shrinking the dispatch set can invalidate indirect calls.
	for changed := true; changed; {
		changed = false
		dispatch := dispatchSet(rec, cands, taken)
		for _, e := range cold {
			c := cands[e]
			if c == nil {
				continue
			}
			reason := ""
			for _, tgt := range c.calls {
				if rec.ByEntry[tgt] == nil && cands[tgt] == nil {
					reason = fmt.Sprintf("calls rejected candidate 0x%x (%s)", tgt, rejected[tgt])
					break
				}
			}
			if reason == "" && len(c.CallRSites) > 0 && len(dispatch) == 0 {
				reason = "indirect call with no recovered targets"
			}
			if reason != "" {
				rejected[e] = reason
				delete(cands, e)
				changed = true
			}
		}
	}

	for _, e := range cold {
		if c := cands[e]; c != nil {
			res.Cands = append(res.Cands, c)
		} else {
			res.Rejected = append(res.Rejected, Rejection{
				Entry: e, Name: nameAt(img, e), Reason: rejected[e],
			})
		}
	}
	res.Dispatch = dispatchSet(rec, cands, taken)
	return res
}

// dispatchSet collects the sorted address-taken entries that resolve to a
// recovered function: traced entries and accepted candidates.
func dispatchSet(rec *funcrec.Result, cands map[uint32]*Candidate, taken map[uint32]bool) []uint32 {
	var out []uint32
	for e := range taken {
		if rec.ByEntry[e] != nil || cands[e] != nil {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// bodyPCs returns every instruction address of the candidate, sorted.
func (c *Candidate) bodyPCs() []uint32 {
	var out []uint32
	for _, start := range c.Starts {
		b := c.Blocks[start]
		for pc := b.Start; pc <= b.End; pc += isa.InstrSize {
			out = append(out, pc)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
