// Package refcache is the content-addressed refinement cache: recovered
// stack layouts and verification findings persist across wytiwyg runs,
// keyed by a hash of everything the result depends on — the pass version,
// the traced input set, and the relevant machine code (the whole binary
// for program-level entries, the function plus its traced callees for
// function-level entries). Because keys are content hashes, invalidation
// is automatic: recompiling a function, changing the input set, or bumping
// the pass version changes the key and the stale entry is simply never
// found again. Entries live as one JSON file per key under a cache
// directory; a corrupted or truncated entry is indistinguishable from a
// miss (it is deleted and recomputed), so the cache can never make a run
// fail — only faster.
//
// The directory may be shared: by concurrent requests inside one daemon,
// by several processes, and by binaries built at different envelope
// format versions. Entries are written atomically (temp file + rename,
// world-readable), foreign-version entries are left in place and treated
// as plain misses, and corrupt-entry removal is quarantine-based so it
// can never delete an entry a concurrent put just renamed into place.
package refcache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"wytiwyg/internal/analysis"
	"wytiwyg/internal/layout"
)

// Key is the 256-bit content address of one cache entry.
type Key [sha256.Size]byte

// String renders the key as lowercase hex (the on-disk entry name).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// NewKey hashes a domain-separation tag and the dependency parts into a
// key. Each part is length-prefixed so distinct part boundaries can never
// collide ("ab","c" vs "a","bc").
func NewKey(tag string, parts ...[]byte) Key {
	h := sha256.New()
	fmt.Fprintf(h, "%d:%s", len(tag), tag)
	for _, p := range parts {
		fmt.Fprintf(h, "%d:", len(p))
		h.Write(p)
	}
	var k Key
	h.Sum(k[:0])
	return k
}

// FuncEntry is the cached refinement outcome for one function: its
// recovered frame layout and the per-function verification findings.
type FuncEntry struct {
	// Func is the function's recovered name (diagnostic only; the key
	// carries the identity).
	Func string `json:"func"`
	// Frame lists the recovered local stack objects, sorted by offset.
	Frame []layout.Var `json:"frame"`
	// Diags holds the function's lint findings from the run that produced
	// the entry.
	Diags []analysis.Diag `json:"diags"`
}

// ProgramEntry is the cached outcome of a whole binary's refinement: the
// full recovered layout table and the sorted verification report. A hit
// lets a repeat run skip tracing, lifting and every refinement pass.
type ProgramEntry struct {
	// Frames maps function names to their recovered local objects.
	Frames map[string][]layout.Var `json:"frames"`
	// Diags is the full, sorted lint report of the original run.
	Diags []analysis.Diag `json:"diags"`
}

// Stats counts cache traffic for one Cache handle.
type Stats struct {
	Hits, Misses, Puts int // lookup and write tallies
	// Corrupt counts entries that existed but failed to decode (each was
	// removed and counted as a miss too).
	Corrupt int
	// Foreign counts entries written under a different envelope format
	// version. They are someone else's valid data — a shared cache
	// directory may serve binaries built at several format versions — so
	// each is counted as a miss and left untouched on disk.
	Foreign int
}

func (s Stats) String() string {
	return fmt.Sprintf("%d hit(s), %d miss(es), %d new entr(ies)", s.Hits, s.Misses, s.Puts)
}

// Cache is a handle on one on-disk cache directory. All methods are safe
// for concurrent use.
type Cache struct {
	dir string

	mu    sync.Mutex
	stats Stats

	// onCorrupt, when non-nil, runs after a corrupt entry is detected and
	// before it is quarantined — a test seam for interleaving a concurrent
	// put into the removal window.
	onCorrupt func()
}

// version is the on-disk envelope format version. It protects the JSON
// schema; semantic invalidation of results belongs in the key's pass
// version.
const version = 1

// envelope wraps every entry with the format version and the payload.
type envelope struct {
	Version int             `json:"version"`
	Payload json.RawMessage `json:"payload"`
}

// Open returns a cache rooted at dir, creating it if needed.
func Open(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("refcache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// Stats returns a snapshot of the traffic counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// path places an entry in a two-level fan-out (git-style) so directories
// stay small on big corpora.
func (c *Cache) path(k Key) string {
	name := k.String()
	return filepath.Join(c.dir, name[:2], name[2:]+".json")
}

// decodeState classifies one on-disk entry's bytes.
type decodeState int

const (
	// decodeOK: our format version and the payload decoded into out.
	decodeOK decodeState = iota
	// decodeForeign: a well-formed envelope carrying a different format
	// version — valid data belonging to another binary's cache schema.
	decodeForeign
	// decodeCorrupt: truncated, non-JSON, or a same-version payload that
	// does not decode.
	decodeCorrupt
)

// decode classifies data and, on decodeOK, fills out.
func decode(data []byte, out any) decodeState {
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return decodeCorrupt
	}
	if env.Version != version {
		return decodeForeign
	}
	if err := json.Unmarshal(env.Payload, out); err != nil {
		return decodeCorrupt
	}
	return decodeOK
}

// get decodes the entry for k into out. Any failure — absent file,
// unreadable file, corrupt JSON, foreign format version — is a miss.
//
// Only a corrupt entry is ever removed, and never a foreign-version one:
// in a shared cache directory a foreign version means a binary with a
// different envelope schema owns the entry, and deleting it would let an
// old binary destroy a new binary's valid results (and vice versa).
//
// Removal itself must not race with a concurrent put of the same key:
// between reading garbage and unlinking the path, another process can
// rename a freshly computed valid entry into place, and a plain
// os.Remove would then delete good data. The entry is therefore removed
// by renaming it aside to a unique quarantine name first — rename is
// atomic, so the quarantined file is exactly the file that will be
// deleted — and re-checked there: if the quarantined bytes turn out
// valid (the race happened; we grabbed the new entry), it is renamed
// back into place and served as a hit. Entries are content-addressed, so
// any two valid files for the same key are interchangeable and the
// restore can never clobber better data.
func (c *Cache) get(k Key, out any) bool {
	p := c.path(k)
	data, err := os.ReadFile(p)
	if err != nil {
		c.count(func(s *Stats) { s.Misses++ })
		return false
	}
	switch decode(data, out) {
	case decodeOK:
		c.count(func(s *Stats) { s.Hits++ })
		return true
	case decodeForeign:
		c.count(func(s *Stats) { s.Misses++; s.Foreign++ })
		return false
	}
	if c.onCorrupt != nil {
		c.onCorrupt()
	}
	q := fmt.Sprintf("%s.bad-%d-%d", p, os.Getpid(), quarantineSeq.Add(1))
	if os.Rename(p, q) != nil {
		// The entry vanished or moved under us — someone else already
		// handled it; nothing of ours to clean up.
		c.count(func(s *Stats) { s.Misses++; s.Corrupt++ })
		return false
	}
	if data, err := os.ReadFile(q); err == nil {
		switch decode(data, out) {
		case decodeOK:
			// A concurrent put won the race: restore the valid entry and
			// serve it.
			os.Rename(q, p)
			c.count(func(s *Stats) { s.Hits++ })
			return true
		case decodeForeign:
			os.Rename(q, p)
			c.count(func(s *Stats) { s.Misses++; s.Foreign++ })
			return false
		}
	}
	os.Remove(q)
	c.count(func(s *Stats) { s.Misses++; s.Corrupt++ })
	return false
}

// quarantineSeq makes quarantine names unique within a process; the pid
// in the name separates processes sharing the directory.
var quarantineSeq atomic.Int64

// put stores v under k. Entries are written to a temporary file and
// renamed into place so readers never observe a half-written entry.
func (c *Cache) put(k Key, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("refcache: encode: %w", err)
	}
	data, err := json.Marshal(envelope{Version: version, Payload: payload})
	if err != nil {
		return fmt.Errorf("refcache: encode: %w", err)
	}
	p := c.path(k)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("refcache: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), "tmp-*")
	if err != nil {
		return fmt.Errorf("refcache: %w", err)
	}
	_, werr := tmp.Write(data)
	// os.CreateTemp creates the file 0600; a shared multi-user cache
	// directory needs world-readable entries, or every other user's gets
	// are misses and they recompute (and re-put) what is already there.
	merr := tmp.Chmod(0o644)
	cerr := tmp.Close()
	if werr != nil || merr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("refcache: write: %w", errors.Join(werr, merr, cerr))
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("refcache: %w", err)
	}
	c.count(func(s *Stats) { s.Puts++ })
	return nil
}

// GetFunc looks up a function-level entry.
func (c *Cache) GetFunc(k Key) (*FuncEntry, bool) {
	var e FuncEntry
	if !c.get(k, &e) {
		return nil, false
	}
	return &e, true
}

// PutFunc stores a function-level entry.
func (c *Cache) PutFunc(k Key, e *FuncEntry) error { return c.put(k, e) }

// GetProgram looks up a program-level entry.
func (c *Cache) GetProgram(k Key) (*ProgramEntry, bool) {
	var e ProgramEntry
	if !c.get(k, &e) {
		return nil, false
	}
	return &e, true
}

// PutProgram stores a program-level entry.
func (c *Cache) PutProgram(k Key, e *ProgramEntry) error { return c.put(k, e) }

// GetJSON looks up an arbitrary JSON-encodable entry (the serve daemon
// stores whole response payloads this way). The caller owns the key's
// domain tag; the same envelope versioning and corruption handling apply.
func (c *Cache) GetJSON(k Key, out any) bool { return c.get(k, out) }

// PutJSON stores an arbitrary JSON-encodable entry under k.
func (c *Cache) PutJSON(k Key, v any) error { return c.put(k, v) }

// Len counts the entries currently on disk (test and tooling helper). A
// directory that cannot be walked reports the first error alongside the
// partial count — silently swallowing it would present an undercount as
// an exact answer.
func (c *Cache) Len() (int, error) {
	n := 0
	var first error
	filepath.WalkDir(c.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			if first == nil {
				first = err
			}
			return nil
		}
		if !d.IsDir() && filepath.Ext(path) == ".json" {
			n++
		}
		return nil
	})
	if first != nil {
		return n, fmt.Errorf("refcache: walk: %w", first)
	}
	return n, nil
}

func (c *Cache) count(f func(*Stats)) {
	c.mu.Lock()
	f(&c.stats)
	c.mu.Unlock()
}

// DefaultDir returns the conventional cache location: $WYTIWYG_CACHE if
// set, else the wytiwyg subdirectory of the user cache directory.
func DefaultDir() (string, error) {
	if d := os.Getenv("WYTIWYG_CACHE"); d != "" {
		return d, nil
	}
	base, err := os.UserCacheDir()
	if err != nil {
		return "", fmt.Errorf("refcache: no cache directory: %w", err)
	}
	return filepath.Join(base, "wytiwyg"), nil
}

// ProgramFromLayout converts a recovered layout and report into a
// program-level entry.
func ProgramFromLayout(prog *layout.Program, rep *analysis.Report) *ProgramEntry {
	e := &ProgramEntry{Frames: make(map[string][]layout.Var, len(prog.Frames))}
	for _, name := range prog.FuncNames() {
		e.Frames[name] = append([]layout.Var(nil), prog.Frame(name).Vars...)
	}
	if rep != nil {
		e.Diags = append([]analysis.Diag(nil), rep.Diags...)
	}
	return e
}

// LayoutFromProgram reconstructs the layout table and report of a cached
// program-level entry.
func LayoutFromProgram(e *ProgramEntry) (*layout.Program, *analysis.Report) {
	prog := layout.NewProgram()
	for name, vars := range e.Frames {
		fr := &layout.Frame{Func: name, Vars: append([]layout.Var(nil), vars...)}
		fr.Sort()
		prog.Add(fr)
	}
	rep := &analysis.Report{Diags: append([]analysis.Diag(nil), e.Diags...)}
	return prog, rep
}
