package refcache

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"wytiwyg/internal/analysis"
	"wytiwyg/internal/layout"
)

func testFuncEntry() *FuncEntry {
	return &FuncEntry{
		Func: "main",
		Frame: []layout.Var{
			{Name: "v1", Offset: -8, Size: 4},
			{Name: "v2", Offset: -4, Size: 4},
		},
		Diags: []analysis.Diag{
			{Check: "bounds", Severity: analysis.Warn, Func: "main",
				Loc: "main:b2:4", Msg: "unbounded index"},
		},
	}
}

func TestFuncEntryRoundTrip(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := NewKey("func", []byte("pass-1"), []byte("main"))
	if _, ok := c.GetFunc(k); ok {
		t.Fatal("hit on an empty cache")
	}
	want := testFuncEntry()
	if err := c.PutFunc(k, want); err != nil {
		t.Fatal(err)
	}
	got, ok := c.GetFunc(k)
	if !ok {
		t.Fatal("miss after put")
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip changed the entry:\ngot  %+v\nwant %+v", got, want)
	}
	if s := c.Stats(); s.Hits != 1 || s.Misses != 1 || s.Puts != 1 || s.Corrupt != 0 {
		t.Errorf("stats = %+v, want 1 hit, 1 miss, 1 put", s)
	}
	if n, err := c.Len(); n != 1 || err != nil {
		t.Errorf("Len = %d, %v, want 1, nil", n, err)
	}
}

func TestProgramEntryRoundTrip(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	prog := layout.NewProgram()
	prog.Add(&layout.Frame{Func: "main", Vars: []layout.Var{{Name: "x", Offset: -4, Size: 4}}})
	rep := &analysis.Report{Diags: []analysis.Diag{
		{Check: "height", Severity: analysis.Error, Func: "main", Msg: "imbalance"},
	}}
	k := NewKey("program", []byte("image"))
	if err := c.PutProgram(k, ProgramFromLayout(prog, rep)); err != nil {
		t.Fatal(err)
	}
	e, ok := c.GetProgram(k)
	if !ok {
		t.Fatal("miss after put")
	}
	prog2, rep2 := LayoutFromProgram(e)
	if got, want := prog2.Frame("main").String(), prog.Frame("main").String(); got != want {
		t.Errorf("frame changed: got %q, want %q", got, want)
	}
	if got, want := rep2.String(), rep.String(); got != want {
		t.Errorf("report changed: got %q, want %q", got, want)
	}
}

// Content addressing is the invalidation mechanism: any change to the tag
// or any part must move the key, and the part boundaries must be
// unambiguous (no concatenation collisions).
func TestKeySeparation(t *testing.T) {
	base := NewKey("t", []byte("ab"), []byte("c"))
	for name, k := range map[string]Key{
		"different tag":   NewKey("u", []byte("ab"), []byte("c")),
		"different part":  NewKey("t", []byte("ab"), []byte("d")),
		"shifted split":   NewKey("t", []byte("a"), []byte("bc")),
		"merged parts":    NewKey("t", []byte("abc")),
		"extra empty":     NewKey("t", []byte("ab"), []byte("c"), nil),
		"dropped part":    NewKey("t", []byte("ab")),
		"reordered parts": NewKey("t", []byte("c"), []byte("ab")),
	} {
		if k == base {
			t.Errorf("%s collides with the base key", name)
		}
	}
	if NewKey("t", []byte("ab"), []byte("c")) != base {
		t.Error("identical inputs produced different keys")
	}
}

func TestPersistsAcrossOpen(t *testing.T) {
	dir := t.TempDir()
	c1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := NewKey("func", []byte("x"))
	if err := c1.PutFunc(k, testFuncEntry()); err != nil {
		t.Fatal(err)
	}
	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.GetFunc(k); !ok {
		t.Error("entry not visible through a fresh handle on the same directory")
	}
}

// A corrupted entry must behave exactly like a miss: deleted, counted, and
// transparently recomputable. The cache can slow a run down, never fail it.
func TestCorruptEntryRecovered(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := NewKey("func", []byte("x"))
	if err := c.PutFunc(k, testFuncEntry()); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(c.path(k), []byte("{truncated garb"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.GetFunc(k); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	if s := c.Stats(); s.Corrupt != 1 {
		t.Errorf("stats = %+v, want Corrupt 1", s)
	}
	if _, err := os.Stat(c.path(k)); !os.IsNotExist(err) {
		t.Errorf("corrupt entry not removed: %v", err)
	}
	// The slot is reusable: a recompute stores and serves normally.
	if err := c.PutFunc(k, testFuncEntry()); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.GetFunc(k); !ok {
		t.Error("miss after recomputing the corrupt entry")
	}
}

// An entry written by a future (or past) format version is another
// binary's valid data: it must read as a plain miss and SURVIVE the get.
// (The old behaviour deleted it — an older binary sharing a daemon's
// cache directory would destroy a newer binary's entries on every
// lookup.)
func TestForeignVersionSurvivesGet(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := NewKey("func", []byte("x"))
	data, err := json.Marshal(envelope{Version: version + 1, Payload: []byte(`{}`)})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Dir(c.path(k)), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(c.path(k), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.GetFunc(k); ok {
		t.Fatal("foreign-version entry served as a hit")
	}
	if s := c.Stats(); s.Foreign != 1 || s.Corrupt != 0 || s.Misses != 1 {
		t.Errorf("stats = %+v, want Foreign 1, Corrupt 0, Misses 1", s)
	}
	got, err := os.ReadFile(c.path(k))
	if err != nil {
		t.Fatalf("foreign-version entry deleted by get: %v", err)
	}
	if string(got) != string(data) {
		t.Error("foreign-version entry rewritten by get")
	}
	// A second get behaves identically — the entry keeps surviving.
	if _, ok := c.GetFunc(k); ok {
		t.Fatal("foreign-version entry served as a hit on the second get")
	}
	if s := c.Stats(); s.Foreign != 2 {
		t.Errorf("stats = %+v, want Foreign 2", s)
	}
}

// A payload that decodes as JSON but not as the expected entry type (here:
// a severity name the reader does not know) is also corrupt.
func TestUndecodablePayloadTreatedAsCorrupt(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := NewKey("func", []byte("x"))
	if err := c.PutFunc(k, testFuncEntry()); err != nil {
		t.Fatal(err)
	}
	payload := []byte(`{"func":"main","frame":null,"diags":[{"check":"x","severity":"catastrophic","func":"main","msg":"m"}]}`)
	data, err := json.Marshal(envelope{Version: version, Payload: payload})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(c.path(k), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.GetFunc(k); ok {
		t.Fatal("undecodable payload served as a hit")
	}
	if s := c.Stats(); s.Corrupt != 1 {
		t.Errorf("stats = %+v, want Corrupt 1", s)
	}
}

func TestDefaultDirEnvOverride(t *testing.T) {
	t.Setenv("WYTIWYG_CACHE", "/custom/cache")
	d, err := DefaultDir()
	if err != nil {
		t.Fatal(err)
	}
	if d != "/custom/cache" {
		t.Errorf("DefaultDir = %q, want the WYTIWYG_CACHE override", d)
	}
}
