package refcache

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// The corrupt-removal race: a get reads garbage, and before it can remove
// the entry a concurrent put renames a freshly computed valid entry into
// place. The removal must not delete the new entry. The onCorrupt seam
// injects the put into exactly that window; the quarantine-based removal
// then discovers the valid bytes, restores them, and serves the hit.
func TestCorruptRemovalDoesNotDeleteConcurrentPut(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := NewKey("func", []byte("x"))
	if err := os.MkdirAll(filepath.Dir(c.path(k)), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(c.path(k), []byte("{truncated garb"), 0o644); err != nil {
		t.Fatal(err)
	}
	c.onCorrupt = func() {
		c.onCorrupt = nil // fire once
		if err := c.PutFunc(k, testFuncEntry()); err != nil {
			t.Errorf("racing put: %v", err)
		}
	}
	if _, ok := c.GetFunc(k); !ok {
		t.Error("get lost the race with put: valid entry not served")
	}
	// The decisive assertion: the entry the racing put installed is still
	// on disk and still valid.
	if _, ok := c.GetFunc(k); !ok {
		t.Error("racing put's entry was deleted by the corrupt-removal path")
	}
	if s := c.Stats(); s.Corrupt != 0 {
		t.Errorf("stats = %+v, want Corrupt 0 (the entry was never removed)", s)
	}
	if n := quarantineFiles(t, c.dir); n != 0 {
		t.Errorf("%d quarantine file(s) left behind", n)
	}
}

// Without a racing put the quarantine path degenerates to plain removal:
// corrupt entry gone, no quarantine leftovers.
func TestCorruptRemovalLeavesNoQuarantine(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := NewKey("func", []byte("x"))
	if err := c.PutFunc(k, testFuncEntry()); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(c.path(k), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.GetFunc(k); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	if _, err := os.Stat(c.path(k)); !os.IsNotExist(err) {
		t.Errorf("corrupt entry not removed: %v", err)
	}
	if n := quarantineFiles(t, c.dir); n != 0 {
		t.Errorf("%d quarantine file(s) left behind", n)
	}
}

// quarantineFiles counts leftover ".bad-*" files under dir.
func quarantineFiles(t *testing.T, dir string) int {
	t.Helper()
	n := 0
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.Contains(filepath.Base(path), ".bad-") {
			n++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// Concurrent gets, puts and corruptors hammering one key must never lose
// a valid entry or serve garbage; run under -race this also proves the
// handle's internal synchronization. Corruption is injected with the same
// atomic rename discipline real writers use, so a reader observes either
// the valid entry, the garbage, or nothing — never a torn file.
func TestConcurrentGetPutStress(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := NewKey("func", []byte("stress"))
	want := testFuncEntry()
	if err := c.PutFunc(k, want); err != nil {
		t.Fatal(err)
	}
	const iters = 200
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if err := c.PutFunc(k, want); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}()
	}
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if e, ok := c.GetFunc(k); ok && e.Func != want.Func {
					t.Errorf("get served wrong data: %+v", e)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		p := c.path(k)
		for i := 0; i < iters/4; i++ {
			tmp := fmt.Sprintf("%s.garb-%d", p, i)
			if err := os.WriteFile(tmp, []byte("{torn"), 0o644); err != nil {
				continue
			}
			os.Rename(tmp, p)
		}
	}()
	wg.Wait()
	// Quiesced: one final put must be durable and served.
	if err := c.PutFunc(k, want); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.GetFunc(k); !ok {
		t.Error("final get missed after final put — a removal deleted valid data")
	}
	if n := quarantineFiles(t, c.dir); n != 0 {
		t.Errorf("%d quarantine file(s) left behind", n)
	}
}

// Entries must land world-readable: os.CreateTemp's private 0600 mode
// would make a multi-user shared cache directory serve misses (and force
// recomputation) for every user but the writer.
func TestEntryModeWorldReadable(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := NewKey("func", []byte("x"))
	if err := c.PutFunc(k, testFuncEntry()); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(c.path(k))
	if err != nil {
		t.Fatal(err)
	}
	if got := fi.Mode().Perm(); got != 0o644 {
		t.Errorf("entry mode = %o, want 644", got)
	}
}

// Len must surface walk failures instead of presenting a partial count as
// exact.
func TestLenReportsWalkError(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.PutFunc(NewKey("func", []byte("a")), testFuncEntry()); err != nil {
		t.Fatal(err)
	}
	if n, err := c.Len(); n != 1 || err != nil {
		t.Fatalf("Len = %d, %v, want 1, nil", n, err)
	}
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Len(); err == nil {
		t.Error("Len on an unwalkable directory reported no error")
	}
}
