package staticsym_test

import (
	"bytes"
	"errors"
	"testing"

	"wytiwyg/internal/codegen"
	"wytiwyg/internal/core"
	"wytiwyg/internal/irexec"
	"wytiwyg/internal/machine"
	"wytiwyg/internal/minicc/gen"
	"wytiwyg/internal/opt"
	"wytiwyg/internal/staticsym"
)

// prep lifts a binary and runs the refinements SecondWrite's own analyses
// stand in for (register classification + stack-reference folding).
func prep(t *testing.T, src string, prof gen.Profile, inputs []machine.Input) *core.Pipeline {
	t.Helper()
	img, err := gen.Build(src, prof, "t")
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.LiftBinary(img, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.RefineRegSave(); err != nil {
		t.Fatal(err)
	}
	if err := p.RefineVarArgs(); err != nil {
		t.Fatal(err)
	}
	if err := p.RefineStackRef(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestStaticSymbolizeSimple(t *testing.T) {
	src := `
int add3(int a, int b, int c) {
	int x = a + b;
	int y = x + c;
	return y;
}
int main() { return add3(10, 20, 12); }`
	for _, prof := range gen.Profiles {
		p := prep(t, src, prof, nil)
		if _, err := staticsym.Apply(p.Mod, p.SPOffsets); err != nil {
			t.Fatalf("%s: %v", prof.Name, err)
		}
		// Behaviour preserved.
		var nat, got bytes.Buffer
		n, err := machine.Execute(p.Img, machine.Input{}, &nat)
		if err != nil {
			t.Fatal(err)
		}
		r, err := irexec.Run(p.Mod, machine.Input{}, &got, nil)
		if err != nil {
			t.Fatalf("%s: %v", prof.Name, err)
		}
		if r.ExitCode != n.ExitCode {
			t.Errorf("%s: exit %d vs %d", prof.Name, r.ExitCode, n.ExitCode)
		}
	}
}

// Dynamically computed stack addresses force the blob fallback — and the
// blob must still behave correctly.
func TestBlobFallbackBehaviour(t *testing.T) {
	src := `
extern int input_int(int i);
int main() {
	int arr[8];
	int i, s = 0;
	int n = input_int(0);
	for (i = 0; i < 8; i++) arr[i] = i * n;
	for (i = 0; i < 8; i++) s += arr[i];
	return s;
}`
	inputs := []machine.Input{{Ints: []int32{3}}}
	p := prep(t, src, gen.GCC12O0, inputs)
	rec, err := staticsym.Apply(p.Mod, p.SPOffsets)
	if err != nil {
		t.Fatal(err)
	}
	var nat bytes.Buffer
	n, err := machine.Execute(p.Img, inputs[0], &nat)
	if err != nil {
		t.Fatal(err)
	}
	r, err := irexec.Run(p.Mod, inputs[0], nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.ExitCode != n.ExitCode {
		t.Fatalf("exit %d vs %d", r.ExitCode, n.ExitCode)
	}
	// The blob: main's frame must be dominated by one big object (the
	// paper's complaint about SecondWrite).
	fr := rec.Frame("main")
	if fr == nil || len(fr.Vars) == 0 {
		t.Fatal("no recovered frame")
	}
	var maxSize uint32
	for _, v := range fr.Vars {
		if v.Size > maxSize {
			maxSize = v.Size
		}
	}
	if maxSize < 32 {
		t.Errorf("expected a blob covering the array area, largest object is %d bytes: %v",
			maxSize, fr)
	}
	// And optimization+recompilation still works.
	opt.Pipeline(p.Mod)
	img2, err := codegen.Compile(p.Mod, "sw")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := machine.Execute(img2, inputs[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	if r2.ExitCode != n.ExitCode {
		t.Errorf("recompiled exit %d vs %d", r2.ExitCode, n.ExitCode)
	}
}

// Jump tables defeat the static symbolizer (the paper's bzip2/gobmk
// findings).
func TestJumpTableUnsupported(t *testing.T) {
	src := `
extern int input_int(int i);
int classify(int v) {
	switch (v) {
	case 0: return 10;
	case 1: return 20;
	case 2: return 30;
	case 3: return 40;
	case 4: return 50;
	default: return -1;
	}
}
int main() { return classify(input_int(0)); }`
	inputs := []machine.Input{{Ints: []int32{2}}, {Ints: []int32{0}}, {Ints: []int32{4}}}
	p := prep(t, src, gen.GCC12O3, inputs) // O3 profile emits the jump table
	_, err := staticsym.Apply(p.Mod, p.SPOffsets)
	if !errors.Is(err, staticsym.ErrUnsupported) {
		t.Fatalf("err = %v, want ErrUnsupported", err)
	}
}

// Fine splitting: simple frames split at reference boundaries.
func TestFineSplitting(t *testing.T) {
	src := `
int f(int a) {
	int x = a + 1;
	int y = a + 2;
	return x * y;
}
int main() { return f(5); }`
	p := prep(t, src, gen.GCC12O0, nil)
	rec, err := staticsym.Apply(p.Mod, p.SPOffsets)
	if err != nil {
		t.Fatal(err)
	}
	fr := rec.Frame("f")
	if fr == nil {
		t.Fatal("no frame for f")
	}
	if len(fr.Vars) < 2 {
		t.Errorf("static splitter produced %d objects, want >= 2: %v", len(fr.Vars), fr)
	}
}
