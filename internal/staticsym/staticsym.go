// Package staticsym is the reproduction's SecondWrite stand-in: a purely
// static, conservative stack symbolizer used as the comparison system in
// the paper's evaluation (§6). It consumes the same lifted IR as WYTIWYG's
// dynamic refinements but derives stack layouts without executing anything:
//
//   - frames are partitioned at the statically visible direct-reference
//     offsets, with each object's size guessed as the gap to the next
//     reference;
//   - functions "beyond a certain complexity" — any dynamically computed
//     stack address, or too many distinct references — collapse all locals
//     into a single blob symbol, exactly the behaviour the paper observed
//     in SecondWrite;
//   - jump tables defeat it (the paper found SecondWrite's disassembler
//     missing jump-table targets); such programs are reported as failures,
//     producing the "—" cells of Table 1.
package staticsym

import (
	"errors"
	"fmt"
	"sort"

	"wytiwyg/internal/ir"
	"wytiwyg/internal/layout"
	"wytiwyg/internal/stackref"
	"wytiwyg/internal/symbolize"
	"wytiwyg/internal/vartrack"
)

// ErrUnsupported marks binaries the static symbolizer cannot process.
var ErrUnsupported = errors.New("staticsym: unsupported binary")

// BlobThreshold is the distinct-reference count beyond which a frame
// collapses into one symbol.
const BlobThreshold = 12

// Apply statically symbolizes a lifted module (which must already have had
// the saved-register and stack-reference refinements applied — those model
// SecondWrite's own register analysis). It returns the recovered layout.
func Apply(mod *ir.Module, offs map[*ir.Func]stackref.Offsets) (*layout.Program, error) {
	// Jump tables are fatal (missed control-flow targets).
	for _, f := range mod.Funcs {
		for _, b := range f.Blocks {
			if t := b.Term(); t != nil && t.Op == ir.OpSwitch && len(t.Cases) > 1 {
				return nil, fmt.Errorf("%w: jump table in %s", ErrUnsupported, f.Name)
			}
		}
	}

	res := &vartrack.Result{
		Vars:     make(map[*ir.Value]*vartrack.StackVar),
		ByFn:     make(map[*ir.Func][]*vartrack.StackVar),
		ArgSlots: make(map[*ir.Func]map[int]bool),
	}
	id := 0
	for _, f := range mod.Funcs {
		fo := offs[f]
		if fo == nil {
			continue
		}
		BuildFuncVars(res, f, fo, &id)
	}
	return symbolize.Apply(mod, offs, res)
}

// BuildFuncVars derives static stack variables for one function from its
// resolved stack-reference offsets, appending them to res with IDs drawn
// from *id. It is the unit of the static symbolizer, exported so the
// cold-recovery stage can symbolize statically recovered functions that no
// trace ever observed (their layouts are then gated by VSA admission).
func BuildFuncVars(res *vartrack.Result, f *ir.Func, fo stackref.Offsets, id *int) {
	// Distinct negative offsets = candidate variable boundaries;
	// positive offsets = stack arguments.
	offsets := map[int32][]*ir.Value{}
	var negs []int32
	complex := hasDynamicStackAddressing(f, fo)
	for v, c := range fo {
		offsets[c] = append(offsets[c], v)
		if c < 0 {
			negs = append(negs, c)
		} else if c >= 4 {
			slot := int((c - 4) / 4)
			slots := res.ArgSlots[f]
			if slots == nil {
				slots = map[int]bool{}
				res.ArgSlots[f] = slots
			}
			slots[slot] = true
		}
	}
	sort.Slice(negs, func(i, j int) bool { return negs[i] < negs[j] })
	negs = dedup(negs)
	if len(negs) == 0 {
		addArgVars(res, f, offsets, id)
		return
	}

	if complex || len(negs) > BlobThreshold {
		// One blob symbol for the whole local area.
		low := negs[0]
		blob := &vartrack.StackVar{
			ID: *id, Fn: f, SPOff: low, Defined: true,
			Low: 0, High: -low,
		}
		*id++
		res.ByFn[f] = append(res.ByFn[f], blob)
		for c, vals := range offsets {
			if c >= 0 {
				continue
			}
			for _, v := range vals {
				// Every local reference labels the blob; symbolize
				// resolves deltas through the shared group.
				res.Vars[v] = blob
			}
		}
		// Positive (argument) references still get slot variables.
		addArgVars(res, f, offsets, id)
		return
	}

	// Fine splitting: [offset, next offset) per reference.
	for i, c := range negs {
		end := int32(0)
		if i+1 < len(negs) {
			end = negs[i+1]
		}
		sv := &vartrack.StackVar{
			ID: *id, Fn: f, SPOff: c, Defined: true,
			Low: 0, High: end - c,
		}
		*id++
		res.ByFn[f] = append(res.ByFn[f], sv)
		for _, v := range offsets[c] {
			res.Vars[v] = sv
		}
	}
	addArgVars(res, f, offsets, id)
}

// addArgVars creates 4-byte variables for argument-area references, in
// ascending offset order so variable IDs are reproducible.
func addArgVars(res *vartrack.Result, f *ir.Func, offsets map[int32][]*ir.Value, id *int) {
	var pos []int32
	for c := range offsets {
		if c >= 4 {
			pos = append(pos, c)
		}
	}
	sort.Slice(pos, func(i, j int) bool { return pos[i] < pos[j] })
	for _, c := range pos {
		sv := &vartrack.StackVar{
			ID: *id, Fn: f, SPOff: c, Defined: true, Low: 0, High: 4,
		}
		*id++
		res.ByFn[f] = append(res.ByFn[f], sv)
		for _, v := range offsets[c] {
			res.Vars[v] = sv
		}
	}
}

// hasDynamicStackAddressing reports whether any stack pointer is combined
// with a non-constant value — the case static analysis cannot bound
// (§2.2's sp0-44+f3(24)*8 example).
func hasDynamicStackAddressing(f *ir.Func, fo stackref.Offsets) bool {
	for _, b := range f.Blocks {
		for _, v := range b.Insts {
			switch v.Op {
			case ir.OpAdd, ir.OpSub:
				_, a0 := fo[v.Args[0]]
				_, a1 := fo[v.Args[1]]
				k0 := v.Args[0].Op == ir.OpConst
				k1 := v.Args[1].Op == ir.OpConst
				if (a0 && !k1 && !a1) || (a1 && !k0 && !a0) {
					if _, self := fo[v]; !self {
						return true
					}
				}
			}
		}
	}
	return false
}

func dedup(xs []int32) []int32 {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}
