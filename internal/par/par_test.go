package par

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForEachRunsEveryIndex(t *testing.T) {
	for _, jobs := range []int{1, 2, 8, 0} {
		n := 100
		var hits [100]atomic.Int32
		if err := ForEach(jobs, n, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("jobs=%d: index %d ran %d times", jobs, i, got)
			}
		}
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	wantErr := errors.New("boom-3")
	for _, jobs := range []int{1, 4} {
		err := ForEach(jobs, 10, func(i int) error {
			if i == 3 {
				return wantErr
			}
			if i == 7 {
				return errors.New("boom-7")
			}
			return nil
		})
		if !errors.Is(err, wantErr) {
			t.Errorf("jobs=%d: err = %v, want the index-3 error", jobs, err)
		}
	}
}

func TestForEachErrsIsolatesFailures(t *testing.T) {
	errs := ForEachErrs(4, 5, func(i int) error {
		if i%2 == 1 {
			return fmt.Errorf("odd %d", i)
		}
		return nil
	})
	for i, err := range errs {
		if (err != nil) != (i%2 == 1) {
			t.Errorf("index %d: err = %v", i, err)
		}
	}
}

func TestForEachRecoversPanics(t *testing.T) {
	errs := ForEachErrs(4, 4, func(i int) error {
		if i == 2 {
			panic("kaboom")
		}
		return nil
	})
	if errs[2] == nil {
		t.Fatal("panic was not converted into an error")
	}
	for i, err := range errs {
		if i != 2 && err != nil {
			t.Errorf("index %d: unexpected error %v", i, err)
		}
	}
}

func TestMapPreservesInputOrder(t *testing.T) {
	out, err := Map(8, 50, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestN(t *testing.T) {
	if N(0) < 1 || N(-5) < 1 {
		t.Error("N must be at least 1")
	}
	if N(7) != 7 {
		t.Error("explicit job counts pass through")
	}
}
