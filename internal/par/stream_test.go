package par

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// feed sends 0..n-1 on the returned channel from a goroutine and reports
// on fed when the producer has finished (i.e. was never deadlocked).
func feed(n int) (<-chan int, <-chan struct{}) {
	in := make(chan int)
	fed := make(chan struct{})
	go func() {
		defer close(fed)
		defer close(in)
		for i := 0; i < n; i++ {
			in <- i
		}
	}()
	return in, fed
}

// Results must come out in submission order no matter which worker
// finishes first.
func TestOrderedPipeOrder(t *testing.T) {
	in, _ := feed(100)
	p := OrderedPipe(8, 4, in, func(v int) (int, error) {
		// Earlier items sleep longer, maximizing reordering pressure.
		time.Sleep(time.Duration((99-v)%7) * time.Millisecond)
		return v * 2, nil
	})
	var got []int
	for r := range p.Out {
		got = append(got, r)
	}
	if err := p.Err(); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if len(got) != 100 {
		t.Fatalf("got %d results, want 100", len(got))
	}
	for i, r := range got {
		if r != i*2 {
			t.Fatalf("result %d = %d, want %d", i, r, i*2)
		}
	}
}

// The reported error must be the first in input order, not the first in
// time, and results before it are still delivered.
func TestOrderedPipeErrorDeterministic(t *testing.T) {
	in, fed := feed(100)
	p := OrderedPipe(8, 4, in, func(v int) (int, error) {
		switch v {
		case 10:
			return 0, errors.New("item 10 failed") // finishes first
		case 17:
			time.Sleep(5 * time.Millisecond)
			return 0, errors.New("item 17 failed")
		}
		time.Sleep(time.Millisecond)
		return v, nil
	})
	var got []int
	for r := range p.Out {
		got = append(got, r)
	}
	err := p.Err()
	if err == nil || !strings.Contains(err.Error(), "item 10") {
		t.Fatalf("err = %v, want the lowest-index failure (item 10)", err)
	}
	if len(got) != 10 {
		t.Fatalf("got %d results before the failure, want 10", len(got))
	}
	select {
	case <-fed:
	case <-time.After(5 * time.Second):
		t.Fatal("producer deadlocked after abort: input channel was not drained")
	}
}

// A panicking work item surfaces as an error instead of crashing the pool.
func TestOrderedPipePanic(t *testing.T) {
	in, fed := feed(50)
	p := OrderedPipe(4, 2, in, func(v int) (int, error) {
		if v == 20 {
			panic(fmt.Sprintf("bad item %d", v))
		}
		return v, nil
	})
	n := 0
	for range p.Out {
		n++
	}
	err := p.Err()
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v, want a panic-converted error", err)
	}
	if n != 20 {
		t.Fatalf("got %d results before the panic, want 20", n)
	}
	select {
	case <-fed:
	case <-time.After(5 * time.Second):
		t.Fatal("producer deadlocked after panic")
	}
}

// When the consumer stalls, the stage must stop accepting input after its
// bounded windows fill — backpressure, not unbounded buffering.
func TestOrderedPipeBackpressure(t *testing.T) {
	const jobs, buf, total = 2, 4, 1000
	in := make(chan int)
	var sent atomic.Int64
	go func() {
		defer close(in)
		for i := 0; i < total; i++ {
			in <- i
			sent.Add(1)
		}
	}()
	p := OrderedPipe(jobs, buf, in, func(v int) (int, error) { return v, nil })

	// Nobody reads Out. The accepted count must settle at a small bound:
	// out buffer + a result held by each worker + the dispatcher's one +
	// the collector's in-hand item.
	bound := int64(buf + 2*jobs + 3)
	deadline := time.Now().Add(2 * time.Second)
	var last int64 = -1
	for time.Now().Before(deadline) {
		cur := sent.Load()
		if cur == last {
			break
		}
		last = cur
		time.Sleep(20 * time.Millisecond)
	}
	if got := sent.Load(); got > bound {
		t.Fatalf("stage accepted %d items with a stalled consumer, want <= %d", got, bound)
	}

	// Unstall: everything still arrives, in order.
	var got []int
	for r := range p.Out {
		got = append(got, r)
	}
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != total {
		t.Fatalf("got %d results, want %d", len(got), total)
	}
	for i, r := range got {
		if r != i {
			t.Fatalf("result %d = %d, want %d", i, r, i)
		}
	}
}
