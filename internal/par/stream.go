package par

import (
	"fmt"
	"sync"
)

// Pipe is the handle returned by OrderedPipe: a bounded, order-preserving
// parallel stage. Results appear on Out in exactly the order the inputs
// were read from the upstream channel, regardless of which worker finished
// first — the streaming analogue of ForEach's index-addressed slots.
type Pipe[R any] struct {
	// Out delivers results in input order. It is closed when the upstream
	// channel closes and every in-flight item has been released, or when
	// the pipe aborts on an error. Consumers must drain Out to completion.
	Out <-chan R
	// Aborted is closed when the pipe has stopped releasing results
	// because an item failed. Producers feeding the upstream channel may
	// select on it to stop early; the pipe keeps draining the upstream
	// channel after an abort, so producers that keep sending never block.
	Aborted <-chan struct{}

	err  error
	done chan struct{}
}

// Err returns the first in-input-order error (not the first in time), so
// the reported failure is deterministic. Valid once Out has been drained.
func (p *Pipe[R]) Err() error {
	<-p.done
	return p.err
}

// ordered tags an in-flight item with its submission sequence number.
type ordered[T any] struct {
	seq  uint64
	item T
}

type orderedResult[R any] struct {
	seq uint64
	res R
	err error
}

// OrderedPipe spawns a bounded worker stage over an input channel: jobs
// workers apply fn concurrently, and a collector releases results
// downstream strictly in submission order. The reorder window is bounded
// by the worker count and Out is buffered to buf entries, so total
// in-flight items are capped at roughly jobs+buf — when the consumer
// stalls, the stage exerts backpressure all the way to the upstream
// producers instead of buffering without bound.
//
// A panicking fn is converted into an error. On the first in-order error
// the pipe closes Aborted and stops releasing results, but continues
// draining the input channel so upstream producers never deadlock; the
// error is reported by Err after Out closes.
func OrderedPipe[T, R any](jobs, buf int, in <-chan T, fn func(T) (R, error)) *Pipe[R] {
	workers := N(jobs)
	if buf < 1 {
		buf = 1
	}
	out := make(chan R, buf)
	aborted := make(chan struct{})
	p := &Pipe[R]{Out: out, Aborted: aborted, done: make(chan struct{})}

	work := make(chan ordered[T])
	results := make(chan orderedResult[R])

	// Dispatcher: stamp each input with a sequence number. After an abort
	// it keeps reading (and discarding) the input channel so producers
	// blocked on a send always make progress.
	go func() {
		defer close(work)
		var seq uint64
		for item := range in {
			select {
			case <-aborted:
				continue
			default:
			}
			work <- ordered[T]{seq: seq, item: item}
			seq++
		}
	}()

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for job := range work {
				res, err := protectPipe(fn, job.item)
				results <- orderedResult[R]{seq: job.seq, res: res, err: err}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Collector: hold out-of-order completions and release consecutive
	// sequence numbers. The pending map never exceeds the worker count:
	// an out-of-order completion means an earlier item still occupies a
	// worker.
	go func() {
		defer close(p.done)
		defer close(out)
		pending := make(map[uint64]orderedResult[R])
		var next uint64
		failed := false
		for r := range results {
			pending[r.seq] = r
			for {
				pr, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				next++
				if failed {
					continue
				}
				if pr.err != nil {
					p.err = pr.err
					failed = true
					close(aborted)
					continue
				}
				out <- pr.res
			}
		}
	}()
	return p
}

// protectPipe runs fn on one item, converting a panic into an error so a
// bad item cannot take down the stage (the streaming counterpart of
// protect).
func protectPipe[T, R any](fn func(T) (R, error), item T) (res R, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("par: pipe item panicked: %v", r)
		}
	}()
	return fn(item)
}
