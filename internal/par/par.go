// Package par provides the bounded worker pools behind the pipeline's
// parallel stages. Every helper preserves determinism by construction:
// work items are identified by index, results land in index-addressed
// slots, and error selection is by lowest index — so the observable
// outcome of a parallel stage never depends on goroutine scheduling,
// only on the input order. Callers merge per-index results in input
// order afterwards, which is what makes `-j 1` and `-j N` byte-identical
// (see ARCHITECTURE.md, "Determinism invariants").
package par

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// N resolves a user-provided worker count: values < 1 mean "one worker
// per available CPU" (runtime.GOMAXPROCS).
func N(jobs int) int {
	if jobs < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return jobs
}

// ForEach runs fn(i) for every i in [0, n) on min(N(jobs), n) workers and
// waits for all of them. It returns the error of the lowest failing index
// (not the first to fail in time), so the reported error is deterministic.
// A panicking fn is converted into an error carrying the panic value; the
// remaining items still run.
func ForEach(jobs, n int, fn func(i int) error) error {
	errs := ForEachErrs(jobs, n, fn)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ForEachErrs is ForEach returning the full per-index error slice, for
// callers that isolate failures per item instead of failing the stage
// (the pipeline's degraded-function path).
func ForEachErrs(jobs, n int, fn func(i int) error) []error {
	errs := make([]error, n)
	if n == 0 {
		return errs
	}
	workers := N(jobs)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			errs[i] = protect(fn, i)
		}
		return errs
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = protect(fn, i)
			}
		}()
	}
	wg.Wait()
	return errs
}

// Map runs fn(i) for every i in [0, n) and collects the results in input
// order. The error, if any, is the lowest failing index's.
func Map[T any](jobs, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(jobs, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	return out, err
}

// protect runs fn(i), converting a panic into an error so one bad work
// item cannot take down the whole pool.
func protect(fn func(i int) error, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("par: item %d panicked: %v", i, r)
		}
	}()
	return fn(i)
}
