package tracer

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// Digest returns a content digest over the trace's recovered control-flow
// facts: the executed-instruction set, call and jump target sets, external
// call bindings and return sites. The digest is computed over a sorted
// serialization, so it is independent of merge order, worker count and the
// number of inputs that produced the facts (Inputs is deliberately
// excluded). Every downstream stage — CFG construction, function recovery,
// lifting, refinement — is a function of exactly these five fact sets, so
// two traces with equal digests drive the whole pipeline identically. The
// streaming scheduler relies on this to validate refine-ahead speculation:
// a pipeline built from a coverage-complete input prefix is adoptable iff
// the prefix digest equals the final merged digest.
func (t *Trace) Digest() [32]byte {
	h := sha256.New()
	var buf [8]byte
	u32 := func(v uint32) {
		binary.LittleEndian.PutUint32(buf[:4], v)
		h.Write(buf[:4])
	}
	count := func(n int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(n))
		h.Write(buf[:])
	}
	set := func(tag byte, s map[uint32]bool) {
		h.Write([]byte{tag})
		count(len(s))
		for _, a := range sortedAddrs(s) {
			u32(a)
		}
	}
	targets := func(tag byte, m map[uint32]map[uint32]bool) {
		h.Write([]byte{tag})
		count(len(m))
		froms := make([]uint32, 0, len(m))
		for from := range m {
			froms = append(froms, from)
		}
		sort.Slice(froms, func(i, j int) bool { return froms[i] < froms[j] })
		for _, from := range froms {
			u32(from)
			tos := Targets(m, from)
			count(len(tos))
			for _, to := range tos {
				u32(to)
			}
		}
	}

	set('x', t.Executed)
	targets('c', t.CallTargets)
	targets('j', t.JumpTargets)
	set('r', t.RetSites)
	h.Write([]byte{'e'})
	count(len(t.ExtCalls))
	froms := make([]uint32, 0, len(t.ExtCalls))
	for from := range t.ExtCalls {
		froms = append(froms, from)
	}
	sort.Slice(froms, func(i, j int) bool { return froms[i] < froms[j] })
	for _, from := range froms {
		u32(from)
		h.Write([]byte(t.ExtCalls[from]))
		h.Write([]byte{0})
	}

	var out [32]byte
	h.Sum(out[:0])
	return out
}

func sortedAddrs(s map[uint32]bool) []uint32 {
	out := make([]uint32, 0, len(s))
	for a := range s {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
