package tracer_test

import (
	"testing"

	"wytiwyg/internal/asm"
	"wytiwyg/internal/machine"
	"wytiwyg/internal/minicc/gen"
	"wytiwyg/internal/tracer"
)

func TestTraceRecordsTransfers(t *testing.T) {
	img, err := asm.Assemble("t", `
main:
    pushi 2
    call double
    addi esp, 4
    cmpi eax, 4
    jeq .good
    movi eax, 1
    halt
.good:
    movi eax, 0
    halt
double:
    load4 eax, [esp+4]
    add eax, eax
    ret
`, "")
	if err != nil {
		t.Fatal(err)
	}
	tr := tracer.New(img)
	res, err := tr.Run(machine.Input{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 0 {
		t.Fatalf("exit = %d", res.ExitCode)
	}
	if tr.Inputs != 1 {
		t.Errorf("Inputs = %d", tr.Inputs)
	}
	dblAddr, _ := img.SymAddr("double")
	foundCall := false
	for _, targets := range tr.CallTargets {
		if targets[dblAddr] {
			foundCall = true
		}
	}
	if !foundCall {
		t.Error("call to double not recorded")
	}
	if len(tr.RetSites) != 1 {
		t.Errorf("RetSites = %d", len(tr.RetSites))
	}
	if len(tr.Executed) == 0 {
		t.Error("no executed instructions recorded")
	}
}

func TestBuildCFGBlocks(t *testing.T) {
	img, err := asm.Assemble("t", `
main:
    movi eax, 0
    movi ecx, 0
.loop:
    add eax, ecx
    addi ecx, 1
    cmpi ecx, 5
    jlt .loop
    halt
`, "")
	if err != nil {
		t.Fatal(err)
	}
	tr := tracer.New(img)
	if _, err := tr.Run(machine.Input{}, nil); err != nil {
		t.Fatal(err)
	}
	cfg, err := tr.BuildCFG()
	if err != nil {
		t.Fatal(err)
	}
	// Blocks: entry (movi/movi), loop body, halt.
	if len(cfg.Blocks) != 3 {
		t.Errorf("blocks = %d: %v", len(cfg.Blocks), cfg.BlockStarts())
	}
	// The loop block must have two successors (itself and the halt block).
	loopStart, _ := img.SymAddr("main")
	loop := cfg.Blocks[loopStart+2*16]
	if loop == nil {
		t.Fatal("loop block missing")
	}
	if len(loop.Succs) != 2 {
		t.Errorf("loop succs = %v", loop.Succs)
	}
}

func TestMergeTraces(t *testing.T) {
	src := `
extern int input_int(int i);
int main() {
	if (input_int(0) > 0) return 1;
	return 2;
}`
	img, err := gen.Build(src, gen.GCC12O3, "t")
	if err != nil {
		t.Fatal(err)
	}
	t1 := tracer.New(img)
	if _, err := t1.Run(machine.Input{Ints: []int32{5}}, nil); err != nil {
		t.Fatal(err)
	}
	t2 := tracer.New(img)
	if _, err := t2.Run(machine.Input{Ints: []int32{-5}}, nil); err != nil {
		t.Fatal(err)
	}
	only1 := len(t1.Executed)
	t1.Merge(t2)
	if len(t1.Executed) <= only1 {
		t.Errorf("merge did not add coverage: %d -> %d", only1, len(t1.Executed))
	}
	if t1.Inputs != 2 {
		t.Errorf("Inputs after merge = %d", t1.Inputs)
	}
	// RunAll behaves like sequential runs.
	t3 := tracer.New(img)
	if err := t3.RunAll([]machine.Input{{Ints: []int32{5}}, {Ints: []int32{-5}}}, nil); err != nil {
		t.Fatal(err)
	}
	if len(t3.Executed) != len(t1.Executed) {
		t.Errorf("RunAll coverage %d != merged %d", len(t3.Executed), len(t1.Executed))
	}
}

func TestIndirectJumpTargets(t *testing.T) {
	img, err := asm.Assemble("t", `
.data
tbl: .table .c0, .c1
.text
main:
    pushi 0
    call @input_int
    addi esp, 4
    lea edx, [tbl]
    load4 edx, [edx+eax*4]
    jmpr edx
.c0:
    movi eax, 10
    halt
.c1:
    movi eax, 11
    halt
`, "")
	if err != nil {
		t.Fatal(err)
	}
	tr := tracer.New(img)
	if err := tr.RunAll([]machine.Input{
		{Ints: []int32{0}}, {Ints: []int32{1}},
	}, nil); err != nil {
		t.Fatal(err)
	}
	// The jmpr site must have both observed targets.
	found := false
	for _, targets := range tr.JumpTargets {
		if len(targets) == 2 {
			found = true
		}
	}
	if !found {
		t.Error("indirect jump targets not merged across inputs")
	}
	cfg, err := tr.BuildCFG()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Blocks) < 3 {
		t.Errorf("blocks = %d", len(cfg.Blocks))
	}
}
