// Package tracer performs dynamic control-flow recovery: it runs a binary in
// the emulator under a set of user-provided inputs, recording every executed
// instruction and every control transfer. This is the reproduction's
// analogue of BinRec's S2E-based binary tracer, including the merge of
// per-input CFGs into one trace (Figure 4's "Merge CFGs" step).
package tracer

import (
	"fmt"
	"io"
	"sort"

	"wytiwyg/internal/isa"
	"wytiwyg/internal/machine"
	"wytiwyg/internal/obj"
	"wytiwyg/internal/par"
)

// Trace is the merged dynamic CFG information for one binary.
type Trace struct {
	Img *obj.Image // the traced binary
	// Executed marks every instruction address that ran under any input.
	Executed map[uint32]bool
	// CallTargets maps a call-site address to the set of observed callee
	// entry addresses (lifted code only; external calls are not included).
	CallTargets map[uint32]map[uint32]bool
	// ExtCalls maps a call-site address to the external function name.
	ExtCalls map[uint32]string
	// JumpTargets maps each jump/branch site to its observed targets
	// (needed for indirect jumps; direct branches record their one or two
	// outcomes).
	JumpTargets map[uint32]map[uint32]bool
	// RetSites marks addresses of executed ret instructions.
	RetSites map[uint32]bool
	// Inputs counts the merged runs.
	Inputs int
}

// New returns an empty trace for an image.
func New(img *obj.Image) *Trace {
	return &Trace{
		Img:         img,
		Executed:    make(map[uint32]bool),
		CallTargets: make(map[uint32]map[uint32]bool),
		ExtCalls:    make(map[uint32]string),
		JumpTargets: make(map[uint32]map[uint32]bool),
		RetSites:    make(map[uint32]bool),
	}
}

func addTarget(m map[uint32]map[uint32]bool, from, to uint32) {
	s := m[from]
	if s == nil {
		s = make(map[uint32]bool)
		m[from] = s
	}
	s[to] = true
}

// Run executes the binary under one input and merges the observed control
// flow into the trace. Program output is written to out (may be nil).
func (t *Trace) Run(input machine.Input, out io.Writer) (machine.Result, error) {
	m, err := machine.New(t.Img, input, out)
	if err != nil {
		return machine.Result{}, err
	}
	m.InstrHook = func(pc uint32) { t.Executed[pc] = true }
	m.Hook = t.AddTransfer
	if err := m.Run(); err != nil {
		return machine.Result{}, fmt.Errorf("tracer: %w", err)
	}
	t.Inputs++
	return machine.Result{ExitCode: m.ExitCode(), Cycles: m.TotalCycles(), Steps: m.Steps}, nil
}

// AddTransfer folds one observed control transfer into the trace. It is
// the single classification point shared by the phase-barriered tracer
// (Run's machine hook) and the streaming pipeline's merge stage, so both
// modes record identical facts for identical events.
func (t *Trace) AddTransfer(tr machine.Transfer) {
	switch tr.Kind {
	case machine.TransferCall:
		addTarget(t.CallTargets, tr.From, tr.To)
	case machine.TransferExt:
		name, _ := t.Img.ExtName(tr.To)
		t.ExtCalls[tr.From] = name
	case machine.TransferJump:
		addTarget(t.JumpTargets, tr.From, tr.To)
	case machine.TransferBranch:
		addTarget(t.JumpTargets, tr.From, tr.To)
	case machine.TransferRet:
		t.RetSites[tr.From] = true
	}
}

// MarkExecuted records one executed instruction address.
func (t *Trace) MarkExecuted(pc uint32) { t.Executed[pc] = true }

// RunAll merges traces for several inputs (incremental lifting's "provide
// more inputs until coverage suffices").
func (t *Trace) RunAll(inputs []machine.Input, out io.Writer) error {
	return t.RunAllJobs(inputs, out, 1)
}

// RunAllJobs is RunAll over a bounded worker pool: every input is traced
// into its own fresh Trace and the per-input traces are merged into t in
// input order. Because a Trace is a collection of sets and Merge is a
// union, the merged result is identical for every worker count; the
// per-input program output is discarded (out only receives output under
// jobs == 1, where inputs run in order).
func (t *Trace) RunAllJobs(inputs []machine.Input, out io.Writer, jobs int) error {
	if par.N(jobs) == 1 || len(inputs) == 1 {
		for i := range inputs {
			if _, err := t.Run(inputs[i], out); err != nil {
				return fmt.Errorf("input %d: %w", i, err)
			}
		}
		return nil
	}
	subs, err := par.Map(jobs, len(inputs), func(i int) (*Trace, error) {
		sub := New(t.Img)
		if _, err := sub.Run(inputs[i], io.Discard); err != nil {
			return nil, fmt.Errorf("input %d: %w", i, err)
		}
		return sub, nil
	})
	if err != nil {
		return err
	}
	for _, sub := range subs {
		t.Merge(sub)
	}
	return nil
}

// Merge folds another trace for the same image into t.
func (t *Trace) Merge(o *Trace) {
	for a := range o.Executed {
		t.Executed[a] = true
	}
	for from, s := range o.CallTargets {
		for to := range s {
			addTarget(t.CallTargets, from, to)
		}
	}
	for from, name := range o.ExtCalls {
		t.ExtCalls[from] = name
	}
	for from, s := range o.JumpTargets {
		for to := range s {
			addTarget(t.JumpTargets, from, to)
		}
	}
	for a := range o.RetSites {
		t.RetSites[a] = true
	}
	t.Inputs += o.Inputs
}

// Targets returns the sorted observed targets of a transfer site.
func Targets(m map[uint32]map[uint32]bool, from uint32) []uint32 {
	s := m[from]
	out := make([]uint32, 0, len(s))
	for a := range s {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Block is a recovered basic block: a maximal run of executed instructions
// with a single entry at Start.
type Block struct {
	Start uint32 // address of the block's first instruction
	// End is the address of the last instruction in the block.
	End uint32
	// Succs are intra-procedural successor block starts (branch, jump,
	// fall-through and call-return edges). Call and tail-call targets are
	// not included.
	Succs []uint32
	// CallSite is true when the block ends in a call (direct, indirect or
	// external).
	CallSite bool
	// IsRet is true when the block ends in ret.
	IsRet bool
}

// CFG is the block-level dynamic control-flow graph.
type CFG struct {
	Trace  *Trace            // the trace the graph was built from
	Blocks map[uint32]*Block // keyed by start address
	// TailJumps marks jump sites that were classified as tail calls by
	// function recovery (filled in by funcrec, consumed by the lifter).
	TailJumps map[uint32]bool
}

// BuildCFG derives basic blocks from the merged trace.
func (t *Trace) BuildCFG() (*CFG, error) {
	img := t.Img
	leaders := map[uint32]bool{img.Entry: true}
	mark := func(a uint32) {
		if t.Executed[a] {
			leaders[a] = true
		}
	}
	for from, s := range t.JumpTargets {
		for to := range s {
			mark(to)
		}
		mark(from + isa.InstrSize) // instruction after a branch
	}
	for from, s := range t.CallTargets {
		for to := range s {
			mark(to)
		}
		mark(from + isa.InstrSize) // return site
	}
	for from := range t.ExtCalls {
		mark(from + isa.InstrSize)
	}
	for from := range t.RetSites {
		mark(from + isa.InstrSize)
	}

	cfg := &CFG{Trace: t, Blocks: make(map[uint32]*Block), TailJumps: make(map[uint32]bool)}
	for start := range leaders {
		if !t.Executed[start] {
			continue
		}
		blk := &Block{Start: start}
		pc := start
		for {
			in, err := img.InstrAt(pc)
			if err != nil {
				return nil, fmt.Errorf("tracer: block at 0x%x: %w", start, err)
			}
			next := pc + isa.InstrSize
			if in.Op.IsControl() {
				blk.End = pc
				switch in.Op {
				case isa.JMP, isa.JMPR:
					blk.Succs = Targets(t.JumpTargets, pc)
				case isa.JCC:
					blk.Succs = Targets(t.JumpTargets, pc)
				case isa.CALL, isa.CALLR:
					blk.CallSite = true
					if t.Executed[next] {
						blk.Succs = []uint32{next}
					}
				case isa.RET:
					blk.IsRet = true
				case isa.HALT:
				}
				break
			}
			if leaders[next] || !t.Executed[next] {
				blk.End = pc
				if t.Executed[next] && leaders[next] {
					blk.Succs = []uint32{next}
				}
				break
			}
			pc = next
		}
		cfg.Blocks[start] = blk
	}
	return cfg, nil
}

// BlockStarts returns the sorted block start addresses.
func (c *CFG) BlockStarts() []uint32 {
	out := make([]uint32, 0, len(c.Blocks))
	for a := range c.Blocks {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
