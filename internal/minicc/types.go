package minicc

import (
	"fmt"
	"strings"
)

// TypeKind discriminates Type.
type TypeKind uint8

// Type kinds.
const (
	TInt TypeKind = iota
	TChar
	TVoid
	TPtr
	TArray
	TStruct
	TFnPtr // opaque function pointer
)

// Type describes a mini-C type.
type Type struct {
	Kind   TypeKind    // which type this is
	Elem   *Type       // TPtr, TArray
	Len    int         // TArray
	Struct *StructType // TStruct
}

// Singleton basic types.
var (
	IntType   = &Type{Kind: TInt}
	CharType  = &Type{Kind: TChar}
	VoidType  = &Type{Kind: TVoid}
	FnPtrType = &Type{Kind: TFnPtr}
)

// PtrTo returns a pointer type.
func PtrTo(t *Type) *Type { return &Type{Kind: TPtr, Elem: t} }

// ArrayOf returns an array type.
func ArrayOf(t *Type, n int) *Type { return &Type{Kind: TArray, Elem: t, Len: n} }

// StructType is a named struct with laid-out fields.
type StructType struct {
	Name   string  // struct tag
	Fields []Field // members, in declaration order
	size   uint32
	align  uint32
}

// Field is one struct member.
type Field struct {
	Name   string // member name
	Type   *Type  // member type
	Offset uint32 // byte offset within the struct
}

// FieldByName finds a member.
func (s *StructType) FieldByName(name string) (*Field, bool) {
	for i := range s.Fields {
		if s.Fields[i].Name == name {
			return &s.Fields[i], true
		}
	}
	return nil, false
}

// Layout computes field offsets, size and alignment.
func (s *StructType) Layout() error {
	var off, maxAlign uint32
	maxAlign = 1
	for i := range s.Fields {
		f := &s.Fields[i]
		a := f.Type.Align()
		if a > maxAlign {
			maxAlign = a
		}
		off = (off + a - 1) &^ (a - 1)
		f.Offset = off
		sz := f.Type.Size()
		if sz == 0 {
			return fmt.Errorf("minicc: field %s.%s has zero size", s.Name, f.Name)
		}
		off += sz
	}
	s.size = (off + maxAlign - 1) &^ (maxAlign - 1)
	s.align = maxAlign
	return nil
}

// Size returns the size in bytes of a value of this type.
func (t *Type) Size() uint32 {
	switch t.Kind {
	case TInt, TPtr, TFnPtr:
		return 4
	case TChar:
		return 1
	case TVoid:
		return 0
	case TArray:
		return t.Elem.Size() * uint32(t.Len)
	case TStruct:
		return t.Struct.size
	}
	return 0
}

// Align returns the alignment requirement in bytes.
func (t *Type) Align() uint32 {
	switch t.Kind {
	case TInt, TPtr, TFnPtr:
		return 4
	case TChar:
		return 1
	case TArray:
		return t.Elem.Align()
	case TStruct:
		return t.Struct.align
	}
	return 1
}

// IsScalar reports whether values fit in a register (int, char, pointers).
func (t *Type) IsScalar() bool {
	switch t.Kind {
	case TInt, TChar, TPtr, TFnPtr:
		return true
	}
	return false
}

// IsInteger reports int/char.
func (t *Type) IsInteger() bool { return t.Kind == TInt || t.Kind == TChar }

// IsPtr reports pointer (not array).
func (t *Type) IsPtr() bool { return t.Kind == TPtr }

// Decay converts arrays to element pointers (as in C expression contexts).
func (t *Type) Decay() *Type {
	if t.Kind == TArray {
		return PtrTo(t.Elem)
	}
	return t
}

// Equal reports structural type equality.
func (t *Type) Equal(o *Type) bool {
	if t == o {
		return true
	}
	if t == nil || o == nil || t.Kind != o.Kind {
		return false
	}
	switch t.Kind {
	case TPtr:
		return t.Elem.Equal(o.Elem)
	case TArray:
		return t.Len == o.Len && t.Elem.Equal(o.Elem)
	case TStruct:
		return t.Struct == o.Struct
	}
	return true
}

func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	switch t.Kind {
	case TInt:
		return "int"
	case TChar:
		return "char"
	case TVoid:
		return "void"
	case TFnPtr:
		return "fnptr"
	case TPtr:
		return t.Elem.String() + "*"
	case TArray:
		return fmt.Sprintf("%s[%d]", t.Elem, t.Len)
	case TStruct:
		return "struct " + t.Struct.Name
	}
	return "?"
}

// StructString renders a struct definition (for diagnostics).
func (s *StructType) StructString() string {
	var b strings.Builder
	fmt.Fprintf(&b, "struct %s {", s.Name)
	for _, f := range s.Fields {
		fmt.Fprintf(&b, " %s %s@%d;", f.Type, f.Name, f.Offset)
	}
	b.WriteString(" }")
	return b.String()
}
