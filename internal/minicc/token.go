// Package minicc implements a small C-like language: the reproduction's
// stand-in for the C sources of SPECint 2006 and for GCC/Clang. The
// front-end (lexer, parser, type checker) lives here; code generation with
// per-compiler profiles lives in minicc/gen.
//
// The language: int/char/void, pointers, fixed-size (possibly nested)
// arrays, structs, fnptr (an opaque function-pointer type), functions,
// globals, extern (variadic) library functions, string literals, the usual
// statements (if/else, while, for, switch, break, continue, return), and
// the usual expressions including pointer arithmetic, address-of, deref,
// member access, sizeof, pre/post increment and compound assignment.
package minicc

import "fmt"

// Kind classifies a token.
type Kind uint8

// Token kinds.
const (
	EOF Kind = iota
	IDENT
	NUMBER
	STRING
	CHARLIT
	PUNCT   // operators and punctuation; Lit holds the spelling
	KEYWORD // language keyword; Lit holds the spelling
)

// Token is one lexical token.
type Token struct {
	Kind Kind   // token class
	Lit  string // literal spelling (identifiers, strings)
	Num  int32  // value for NUMBER and CHARLIT
	Line int    // 1-based source line
	Col  int    // 1-based source column
}

func (t Token) String() string {
	switch t.Kind {
	case EOF:
		return "end of file"
	case NUMBER:
		return fmt.Sprintf("number %d", t.Num)
	case STRING:
		return fmt.Sprintf("string %q", t.Lit)
	case CHARLIT:
		return fmt.Sprintf("char %q", string(rune(t.Num)))
	default:
		return fmt.Sprintf("%q", t.Lit)
	}
}

var keywords = map[string]bool{
	"int": true, "char": true, "void": true, "struct": true, "fnptr": true,
	"if": true, "else": true, "while": true, "for": true, "return": true,
	"break": true, "continue": true, "switch": true, "case": true,
	"default": true, "sizeof": true, "extern": true,
}

// punct3/punct2 list multi-character operators, longest match first.
var punct2 = []string{
	"<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--", "->",
}

const punct1 = "+-*/%&|^~!<>=(){}[];,.?:"
