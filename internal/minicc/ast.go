package minicc

// The AST. Expressions carry their checked type in Typ after Check runs.

// Program is a parsed translation unit.
type Program struct {
	Structs []*StructType // struct definitions, in declaration order
	Externs []*ExternDecl // external library declarations
	Globals []*GlobalDecl // file-scope variables
	Funcs   []*FuncDecl   // function definitions
}

// FindFunc returns a function by name.
func (p *Program) FindFunc(name string) *FuncDecl {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// ExternDecl declares an external library function.
type ExternDecl struct {
	Name     string  // link name
	Ret      *Type   // return type
	Params   []*Type // fixed parameter types
	Variadic bool    // trailing `...` present
}

// GlobalDecl is a file-scope variable.
type GlobalDecl struct {
	Name    string // variable name
	Type    *Type  // declared type
	InitNum *int32 // scalar initializer, if any
	InitStr string // string initializer for char* globals ("" = none)
	HasStr  bool   // distinguishes InitStr == "" from no initializer
}

// VarDecl is a local variable or parameter.
type VarDecl struct {
	Name string // variable name
	Type *Type  // declared type
	// AddrTaken is set by the checker when &v occurs or when the variable
	// is a non-scalar (arrays/structs are memory objects by nature).
	AddrTaken bool
	// Param marks function parameters.
	Param bool
	// Seq is the declaration order within the function, for deterministic
	// layout.
	Seq int
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Name   string     // function name
	Ret    *Type      // return type
	Params []*VarDecl // parameters, in declaration order
	Body   *Block     // function body
	// Locals collects every VarDecl in the body (filled by the checker).
	Locals []*VarDecl
	// AddressTaken is set when &name occurs somewhere (function pointer).
	AddressTaken bool
}

// --- statements ---

// Stmt is implemented by all statement nodes.
type Stmt interface{ stmt() }

// Block is a `{ ... }` statement list (declarations may be interleaved).
type Block struct {
	Stmts []Stmt // statements in source order
}

// DeclStmt declares a local, with an optional initializer.
type DeclStmt struct {
	Var  *VarDecl // the declared local
	Init Expr     // initializer (may be nil)
}

// ExprStmt evaluates an expression for effect.
type ExprStmt struct {
	X Expr // the evaluated expression
}

// If is if/else.
type If struct {
	Cond Expr // controlling condition
	Then Stmt // taken branch
	Else Stmt // may be nil
}

// While is a while loop.
type While struct {
	Cond Expr // loop condition
	Body Stmt // loop body
}

// For is for(init; cond; post).
type For struct {
	Init Stmt // ExprStmt or DeclStmt or nil
	Cond Expr // may be nil (infinite)
	Post Expr // may be nil
	Body Stmt // loop body
}

// Switch selects among constant cases.
type Switch struct {
	X       Expr    // switched expression
	Cases   []*Case // constant arms, in source order
	Default []Stmt  // may be nil
}

// Case is one `case k:` arm (falls through unless it ends in break).
type Case struct {
	Val  int32  // the case constant
	Body []Stmt // the arm's statements
}

// Return exits the function.
type Return struct {
	X Expr // nil for void return
}

// Break exits the innermost loop or switch.
type Break struct{}

// Continue restarts the innermost loop.
type Continue struct{}

func (*Block) stmt()    {}
func (*DeclStmt) stmt() {}
func (*ExprStmt) stmt() {}
func (*If) stmt()       {}
func (*While) stmt()    {}
func (*For) stmt()      {}
func (*Switch) stmt()   {}
func (*Return) stmt()   {}
func (*Break) stmt()    {}
func (*Continue) stmt() {}

// --- expressions ---

// Expr is implemented by all expression nodes.
type Expr interface {
	expr()
	// Type returns the checked type (valid after Check).
	Type() *Type
}

// typed embeds the checked type into every expression node and provides
// the Expr interface's Type accessor.
type typed struct{ Typ *Type }

// Type returns the checked type (valid after Check).
func (t *typed) Type() *Type { return t.Typ }

// NumLit is an integer (or char) literal.
type NumLit struct {
	typed
	Val int32 // the literal value
}

// StrLit is a string literal (char*).
type StrLit struct {
	typed
	Val string // the literal bytes, unescaped
}

// VarRef names a variable or function. Exactly one of Local/Global/Func/Ext
// is set after checking.
type VarRef struct {
	typed
	Name   string      // the source identifier
	Local  *VarDecl    // resolved local or parameter
	Global *GlobalDecl // resolved file-scope variable
	Func   *FuncDecl   // resolved function (address taken)
	Ext    *ExternDecl // resolved external declaration
}

// Unary is -x, !x, ~x, *x, &x, ++x, --x (Op: "-", "!", "~", "*", "&",
// "++", "--").
type Unary struct {
	typed
	Op string // operator spelling
	X  Expr   // operand
}

// Postfix is x++ or x-- (Op: "++", "--").
type Postfix struct {
	typed
	Op string // operator spelling
	X  Expr   // operand
}

// Binary is a binary operator (arithmetic, comparison, logical &&/||).
type Binary struct {
	typed
	Op   string // operator spelling
	L, R Expr   // operands
}

// Assign is L = R (compound assignments are desugared by the parser).
type Assign struct {
	typed
	L, R Expr // assignee and value
}

// Call invokes a function, extern, or fnptr value.
type Call struct {
	typed
	Fn   Expr   // callee (VarRef or fnptr-valued expression)
	Args []Expr // actual arguments, in source order
}

// Index is a[i].
type Index struct {
	typed
	Arr, Idx Expr // array (or pointer) and subscript
}

// Member is x.f or x->f.
type Member struct {
	typed
	X     Expr   // the struct (or pointer) operand
	Name  string // accessed field name
	Arrow bool   // true for ->, false for .
	Field *Field // set by the checker
}

// Cast is (T)x.
type Cast struct {
	typed
	To *Type // target type
	X  Expr  // operand
}

// SizeofType is sizeof(T) or sizeof(expr); for the expression form the
// checker fills Of from X's type.
type SizeofType struct {
	typed
	Of *Type // the measured type
	X  Expr  // expression form's operand (nil for sizeof(T))
}

func (*NumLit) expr()     {}
func (*StrLit) expr()     {}
func (*VarRef) expr()     {}
func (*Unary) expr()      {}
func (*Postfix) expr()    {}
func (*Binary) expr()     {}
func (*Assign) expr()     {}
func (*Call) expr()       {}
func (*Index) expr()      {}
func (*Member) expr()     {}
func (*Cast) expr()       {}
func (*SizeofType) expr() {}
