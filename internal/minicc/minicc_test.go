package minicc

import (
	"strings"
	"testing"
)

func TestLexBasics(t *testing.T) {
	toks, err := LexAll(`int x = 0x1F; // comment
/* block */ char c = 'a'; s = "hi\n"; a <= b; p->q; i++;`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []string
	for _, tk := range toks {
		switch tk.Kind {
		case KEYWORD:
			kinds = append(kinds, "kw:"+tk.Lit)
		case IDENT:
			kinds = append(kinds, "id:"+tk.Lit)
		case NUMBER:
			kinds = append(kinds, "num")
		case STRING:
			kinds = append(kinds, "str")
		case CHARLIT:
			kinds = append(kinds, "chr")
		case PUNCT:
			kinds = append(kinds, tk.Lit)
		}
	}
	want := "kw:int id:x = num ; kw:char id:c = chr ; id:s = str ; id:a <= id:b ; id:p -> id:q ; id:i ++ ;"
	if got := strings.Join(kinds, " "); got != want {
		t.Errorf("tokens:\n got %s\nwant %s", got, want)
	}
	if toks[3].Num != 0x1F {
		t.Errorf("hex literal = %d", toks[3].Num)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"\"unterminated", "'a", "/* nope", "`", "'\\q'"} {
		if _, err := LexAll(src); err == nil {
			t.Errorf("LexAll(%q) succeeded", src)
		}
	}
}

func TestStructLayout(t *testing.T) {
	st := &StructType{Name: "p", Fields: []Field{
		{Name: "c", Type: CharType},
		{Name: "x", Type: IntType},
		{Name: "d", Type: CharType},
	}}
	if err := st.Layout(); err != nil {
		t.Fatal(err)
	}
	if st.Fields[0].Offset != 0 || st.Fields[1].Offset != 4 || st.Fields[2].Offset != 8 {
		t.Errorf("offsets: %+v", st.Fields)
	}
	ty := &Type{Kind: TStruct, Struct: st}
	if ty.Size() != 12 {
		t.Errorf("size = %d", ty.Size())
	}
	if ty.Align() != 4 {
		t.Errorf("align = %d", ty.Align())
	}
}

func TestTypeBasics(t *testing.T) {
	if IntType.Size() != 4 || CharType.Size() != 1 || PtrTo(IntType).Size() != 4 {
		t.Error("scalar sizes wrong")
	}
	arr := ArrayOf(IntType, 10)
	if arr.Size() != 40 {
		t.Errorf("array size = %d", arr.Size())
	}
	if !arr.Decay().Equal(PtrTo(IntType)) {
		t.Error("array decay wrong")
	}
	nested := ArrayOf(ArrayOf(IntType, 4), 4)
	if nested.Size() != 64 {
		t.Errorf("nested array size = %d", nested.Size())
	}
	if PtrTo(IntType).Equal(PtrTo(CharType)) {
		t.Error("distinct pointers equal")
	}
	if s := nested.String(); s != "int[4][4]" {
		t.Errorf("nested array string = %q", s)
	}
}

const egProgram = `
extern int printf(char *fmt, ...);

struct point { int x; int y; };

int g_total = 5;
char g_name[8];

int helper(int a, int b) {
	return a + b * 2;
}

int main() {
	int i;
	int arr[10];
	struct point p;
	struct point *pp;
	char buf[4];
	for (i = 0; i < 10; i++) {
		arr[i] = helper(i, g_total);
	}
	p.x = arr[2];
	p.y = 0;
	pp = &p;
	pp->y = p.x + 1;
	buf[0] = 'z';
	if (p.x > 3 && pp->y != 0) {
		printf("%d %c\n", pp->y, buf[0]);
	} else {
		printf("small\n");
	}
	while (i > 0) {
		i = i - 1;
		if (i == 3) break;
	}
	switch (i) {
	case 3: i += 10; break;
	case 4: i = 0; break;
	default: i = -1;
	}
	return i;
}
`

func TestParseAndCheckProgram(t *testing.T) {
	prog, err := Compile(egProgram)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Funcs) != 2 || len(prog.Globals) != 2 || len(prog.Externs) != 1 {
		t.Fatalf("decls: %d funcs %d globals %d externs",
			len(prog.Funcs), len(prog.Globals), len(prog.Externs))
	}
	mainFn := prog.FindFunc("main")
	if mainFn == nil {
		t.Fatal("no main")
	}
	if len(mainFn.Locals) != 5 {
		t.Errorf("locals = %d", len(mainFn.Locals))
	}
	// arr, p and buf are memory objects; i and pp are candidates for
	// registers (pp's address is never taken; note &p marks p, not pp).
	byName := map[string]*VarDecl{}
	for _, v := range mainFn.Locals {
		byName[v.Name] = v
	}
	if !byName["arr"].AddrTaken || !byName["p"].AddrTaken || !byName["buf"].AddrTaken {
		t.Error("aggregates not marked address-taken")
	}
	if byName["i"].AddrTaken {
		t.Error("i wrongly marked address-taken")
	}
	if byName["pp"].AddrTaken {
		t.Error("pp wrongly marked address-taken")
	}
}

func TestCheckPointerArithmeticTypes(t *testing.T) {
	prog, err := Compile(`
int f() {
	int a[4];
	int *p;
	int *q;
	int d;
	p = &a[1];
	q = p + 2;
	d = q - p;
	return d + *q;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	_ = prog
}

func TestCheckSizeof(t *testing.T) {
	prog, err := Compile(`
struct s { int a; char b; };
int f() {
	int arr[6];
	return sizeof(arr) + sizeof(int) + sizeof(struct s);
}
`)
	if err != nil {
		t.Fatal(err)
	}
	_ = prog
}

func TestCheckFnPtr(t *testing.T) {
	_, err := Compile(`
int inc(int x) { return x + 1; }
int dec(int x) { return x - 1; }
int apply(fnptr f, int v) { return f(v); }
int main() {
	fnptr g;
	g = &inc;
	return apply(g, 1) + apply(&dec, 5);
}
`)
	if err != nil {
		t.Fatal(err)
	}
}

func TestCheckErrors(t *testing.T) {
	bad := []string{
		`int f() { return x; }`,                                              // undefined ident
		`int f() { int a; a = "s"; return 0; }`,                              // string to int
		`int f(int a) { a(); return 0; }`,                                    // call non-fn
		`int f() { int a[2]; return a; }`,                                    // array return (ptr to int mismatch)
		`void f() { return 1; }`,                                             // value in void fn
		`int f() { return; }`,                                                // missing value
		`int f() { 1 = 2; return 0; }`,                                       // not lvalue
		`int f() { int *p; p = 5; return 0; }`,                               // int to ptr
		`int f() { struct q s; return 0; }`,                                  // unknown struct
		`struct s { int a; }; int f() { struct s v; return v.b; }`,           // no field
		`int f() { int a; int a; return 0; }`,                                // redeclared
		`int f() { switch (1) { case 1: break; case 1: break; } return 0; }`, // dup case
		`int g(int a) { return a; } int f() { return g(); }`,                 // arity
		`int f() { void *p; return *p; }`,                                    // deref void*
	}
	for _, src := range bad {
		if _, err := Compile(src); err == nil {
			t.Errorf("accepted invalid program: %s", src)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`int f( { return 0; }`,
		`int f() { if return; }`,
		`int f() { int a[0]; return 0; }`,
		`int f() { for (;; { } return 0; }`,
		`int 3x() { return 0; }`,
		`int f() { return 1 +; }`,
		`int f() { switch(1) { foo; } return 0; }`,
		`struct s { int a; } int f() { return 0; }`, // missing ; after struct
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("parsed invalid program: %s", src)
		}
	}
}

func TestParseNestedArrays(t *testing.T) {
	prog, err := Compile(`
int f() {
	int m[4][4];
	int i;
	for (i = 0; i < 4; i++) {
		m[i][0] = i;
		m[i][3] = i * 2;
	}
	return m[2][3];
}
`)
	if err != nil {
		t.Fatal(err)
	}
	v := prog.Funcs[0].Locals[0]
	if v.Type.Size() != 64 {
		t.Errorf("m size = %d", v.Type.Size())
	}
}

func TestParseCompoundAndIncDec(t *testing.T) {
	_, err := Compile(`
int f() {
	int i = 3;
	int j;
	i += 4;
	i -= 1;
	i *= 2;
	j = i++;
	j = ++i;
	j = i--;
	--i;
	return i + j;
}
`)
	if err != nil {
		t.Fatal(err)
	}
}

func TestParseComma(t *testing.T) {
	prog, err := Compile(`
int f() {
	int a = 1, b = 2, *p;
	p = &a;
	return a + b + *p;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(prog.Funcs[0].Locals); n != 3 {
		t.Errorf("locals = %d", n)
	}
}

func TestGlobalInitializers(t *testing.T) {
	prog, err := Compile(`
int a = 5;
int b = -3;
char c = 'x';
char *s = "hello";
int arr[4];
int main() { return a + b + c + arr[0]; }
`)
	if err != nil {
		t.Fatal(err)
	}
	if *prog.Globals[0].InitNum != 5 || *prog.Globals[1].InitNum != -3 {
		t.Error("int initializers wrong")
	}
	if *prog.Globals[2].InitNum != 'x' {
		t.Error("char initializer wrong")
	}
	if !prog.Globals[3].HasStr || prog.Globals[3].InitStr != "hello" {
		t.Error("string initializer wrong")
	}
}

func TestVariadicExternArity(t *testing.T) {
	if _, err := Compile(`
extern int printf(char *fmt, ...);
int main() { printf("%d %d\n", 1, 2); return 0; }
`); err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(`
extern int printf(char *fmt, ...);
int main() { printf(); return 0; }
`); err == nil {
		t.Error("too-few-args call accepted")
	}
}
