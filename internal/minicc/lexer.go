package minicc

import (
	"fmt"
	"strings"
)

// Lexer turns source text into tokens.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// SyntaxError is a lexing or parsing error with position information.
type SyntaxError struct {
	Line, Col int    // 1-based source position
	Msg       string // what went wrong
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("minicc: line %d:%d: %s", e.Line, e.Col, e.Msg)
}

func (l *Lexer) errorf(format string, args ...any) error {
	return &SyntaxError{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *Lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peekAt(off int) byte {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *Lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.advance()
		case c == '/' && l.peekAt(1) == '/':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case c == '/' && l.peekAt(1) == '*':
			l.advance()
			l.advance()
			for {
				if l.pos >= len(l.src) {
					return l.errorf("unterminated block comment")
				}
				if l.peekByte() == '*' && l.peekAt(1) == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func (l *Lexer) escape() (byte, error) {
	if l.pos >= len(l.src) {
		return 0, l.errorf("unterminated escape")
	}
	c := l.advance()
	switch c {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case '0':
		return 0, nil
	case '\\', '\'', '"':
		return c, nil
	}
	return 0, l.errorf("unknown escape \\%c", c)
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	tok := Token{Line: l.line, Col: l.col}
	if l.pos >= len(l.src) {
		tok.Kind = EOF
		return tok, nil
	}
	c := l.peekByte()
	switch {
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && (isIdentStart(l.peekByte()) || isDigit(l.peekByte())) {
			l.advance()
		}
		tok.Lit = l.src[start:l.pos]
		if keywords[tok.Lit] {
			tok.Kind = KEYWORD
		} else {
			tok.Kind = IDENT
		}
		return tok, nil

	case isDigit(c):
		start := l.pos
		base := int32(10)
		if c == '0' && (l.peekAt(1) == 'x' || l.peekAt(1) == 'X') {
			base = 16
			l.advance()
			l.advance()
			start = l.pos
		}
		var v int64
		for l.pos < len(l.src) {
			d := l.peekByte()
			var dv int64
			switch {
			case isDigit(d):
				dv = int64(d - '0')
			case base == 16 && d >= 'a' && d <= 'f':
				dv = int64(d-'a') + 10
			case base == 16 && d >= 'A' && d <= 'F':
				dv = int64(d-'A') + 10
			default:
				goto done
			}
			v = v*int64(base) + dv
			l.advance()
		}
	done:
		if l.pos == start {
			return Token{}, l.errorf("malformed number")
		}
		tok.Kind = NUMBER
		tok.Num = int32(v)
		tok.Lit = l.src[start:l.pos]
		return tok, nil

	case c == '"':
		l.advance()
		var b strings.Builder
		for {
			if l.pos >= len(l.src) {
				return Token{}, l.errorf("unterminated string")
			}
			ch := l.advance()
			if ch == '"' {
				break
			}
			if ch == '\\' {
				e, err := l.escape()
				if err != nil {
					return Token{}, err
				}
				b.WriteByte(e)
				continue
			}
			b.WriteByte(ch)
		}
		tok.Kind = STRING
		tok.Lit = b.String()
		return tok, nil

	case c == '\'':
		l.advance()
		if l.pos >= len(l.src) {
			return Token{}, l.errorf("unterminated char literal")
		}
		ch := l.advance()
		if ch == '\\' {
			e, err := l.escape()
			if err != nil {
				return Token{}, err
			}
			ch = e
		}
		if l.pos >= len(l.src) || l.advance() != '\'' {
			return Token{}, l.errorf("unterminated char literal")
		}
		tok.Kind = CHARLIT
		tok.Num = int32(ch)
		tok.Lit = string(ch)
		return tok, nil
	}

	// Multi-character punctuation, longest match first.
	rest := l.src[l.pos:]
	for _, p := range punct2 {
		if strings.HasPrefix(rest, p) {
			l.advance()
			l.advance()
			tok.Kind = PUNCT
			tok.Lit = p
			return tok, nil
		}
	}
	if strings.IndexByte(punct1, c) >= 0 {
		l.advance()
		tok.Kind = PUNCT
		tok.Lit = string(c)
		return tok, nil
	}
	return Token{}, l.errorf("unexpected character %q", string(c))
}

// LexAll tokenizes the whole input (EOF token excluded).
func LexAll(src string) ([]Token, error) {
	l := NewLexer(src)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		if t.Kind == EOF {
			return out, nil
		}
		out = append(out, t)
	}
}
